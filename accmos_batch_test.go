package accmos_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	accmos "accmos"
	"accmos/internal/testcase"
)

// xorSuite copies tcs with every uniform source seed XORed by xor — the
// exact perturbation a batch lane's seedXor (and the generated binary's
// -seed-xor flag) applies to its embedded seeds — so the interpreted
// engines can replay any sweep lane as a standalone run.
func xorSuite(tcs *accmos.TestCases, xor uint64) *accmos.TestCases {
	out := &accmos.TestCases{Sources: append([]testcase.Source(nil), tcs.Sources...)}
	for i := range out.Sources {
		if out.Sources[i].Kind == testcase.Uniform {
			out.Sources[i].Seed ^= xor
		}
	}
	return out
}

// TestBatchMatchesSequentialAllEngines is the acceptance gate for the
// lane-vectorized batch path: a default Sweep (which routes step-bounded
// suites through the generated batch entry point) must be bit-identical
// to the per-run executor — and every lane must also match the three
// interpreted engines replaying the same perturbed suite — at every opt
// level. Batching is a pure scheduling change over shared monotone
// coverage bitmaps; any drift means a lane leaked state into another.
func TestBatchMatchesSequentialAllEngines(t *testing.T) {
	m := sweepModel()
	// Ten seeds with Parallelism 2 split into two batch chunks, so the
	// chunk partitioning and result reassembly are exercised too.
	seeds := []uint64{0, 1, 0xDEAD, 0xBEEF, 42, 0xF00D, 7, 0xFEED, 0xA5A5, 3}
	for _, lvl := range []accmos.OptLevel{accmos.OptO0, accmos.OptO1, accmos.OptO2} {
		t.Run(lvl.String(), func(t *testing.T) {
			opts := accmos.Options{
				Steps:       400,
				Diagnose:    true,
				OptLevel:    lvl,
				TestCases:   accmos.RandomTestCases(m, 77, -100, 100),
				Parallelism: 2,
			}
			batched, err := accmos.Sweep(m, opts, seeds)
			if err != nil {
				t.Fatal(err)
			}
			seq := opts
			seq.DisableBatch = true
			seq.Parallelism = 1
			sequential, err := accmos.Sweep(m, seq, seeds)
			if err != nil {
				t.Fatal(err)
			}
			if len(batched.Runs) != len(seeds) || len(sequential.Runs) != len(seeds) {
				t.Fatalf("runs: batched %d, sequential %d, want %d",
					len(batched.Runs), len(sequential.Runs), len(seeds))
			}
			for i := range seeds {
				a, b := batched.Runs[i], sequential.Runs[i]
				if !a.Batched {
					t.Errorf("run %d: default step-bounded sweep skipped the batch path", i)
				}
				if b.Batched {
					t.Errorf("run %d: DisableBatch run claims batching", i)
				}
				// A batch reports coverage once, OR-merged over its lanes;
				// per-run bitmaps (and reports) exist only per-run.
				if a.Results.Coverage != nil {
					t.Errorf("run %d: batched lane carries per-run coverage", i)
				}
				if a.CoverageReport() != (accmos.CoverageReport{}) {
					t.Errorf("run %d: batched lane coverage report should be zero, got %+v",
						i, a.CoverageReport())
				}
				if a.OutputHash != b.OutputHash {
					t.Errorf("run %d: output hash %x (batched) vs %x (sequential)",
						i, a.OutputHash, b.OutputHash)
				}
				if a.Steps != b.Steps {
					t.Errorf("run %d: steps %d vs %d", i, a.Steps, b.Steps)
				}
				if a.DiagTotal != b.DiagTotal {
					t.Errorf("run %d: diag totals %d vs %d", i, a.DiagTotal, b.DiagTotal)
				}
				if !reflect.DeepEqual(a.DiagCounts, b.DiagCounts) {
					t.Errorf("run %d: diag counts %v vs %v", i, a.DiagCounts, b.DiagCounts)
				}
				if !reflect.DeepEqual(a.FirstDetect, b.FirstDetect) {
					t.Errorf("run %d: first-detect steps %v vs %v", i, a.FirstDetect, b.FirstDetect)
				}
			}
			if batched.MergedCoverage() != sequential.MergedCoverage() {
				t.Errorf("merged coverage diverges: %+v (batched) vs %+v (sequential)",
					batched.MergedCoverage(), sequential.MergedCoverage())
			}

			// Cross-engine oracle: every batch lane equals the interpreted
			// engines running the identically perturbed suite.
			engines := []struct {
				name string
				run  func(*accmos.Model, accmos.Options) (*accmos.Result, error)
			}{
				{"Interpret", accmos.Interpret},
				{"Accelerate", accmos.Accelerate},
				{"RapidAccelerate", accmos.RapidAccelerate},
			}
			for i, xor := range seeds {
				eo := accmos.Options{
					Steps:     opts.Steps,
					Diagnose:  true,
					Coverage:  true,
					OptLevel:  lvl,
					TestCases: xorSuite(opts.TestCases, xor),
				}
				for _, eng := range engines {
					r, err := eng.run(m, eo)
					if err != nil {
						t.Fatalf("%s seed %#x: %v", eng.name, xor, err)
					}
					if r.OutputHash != batched.Runs[i].OutputHash {
						t.Errorf("seed %#x: %s hash %x vs batched lane %x",
							xor, eng.name, r.OutputHash, batched.Runs[i].OutputHash)
					}
					if r.Steps != batched.Runs[i].Steps {
						t.Errorf("seed %#x: %s steps %d vs batched lane %d",
							xor, eng.name, r.Steps, batched.Runs[i].Steps)
					}
				}
			}
		})
	}
}

// TestPooledStepsAndBudgetTogether: a run carrying BOTH a step count and
// a wall-clock budget must honor the step bound on the serve path too.
// The serve request frame carries steps and budgetMs together, the same
// pair spawn-per-run passes as flags; a frame that dropped either bound
// would run budget-only (far past 500 steps) and diverge.
func TestPooledStepsAndBudgetTogether(t *testing.T) {
	m := sweepModel()
	opts := accmos.Options{
		Steps:     500,
		Budget:    30 * time.Second, // ample: the step bound must fire first
		Coverage:  true,
		TestCases: accmos.RandomTestCases(m, 9, -100, 100),
	}
	spawn, err := accmos.Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if spawn.Steps != 500 {
		t.Fatalf("spawn run ignored the step bound: %d steps", spawn.Steps)
	}
	pool := accmos.NewWorkerPool(1)
	defer pool.Close()
	pooled := opts
	pooled.Pool = pool
	for round := 0; round < 2; round++ {
		got, err := accmos.Simulate(m, pooled)
		if err != nil {
			t.Fatal(err)
		}
		if got.Steps != 500 {
			t.Errorf("round %d: serve frame dropped the step bound: %d steps", round, got.Steps)
		}
		if got.OutputHash != spawn.OutputHash {
			t.Errorf("round %d: steps+budget run diverged between spawn and serve", round)
		}
		if got.WorkerReuse != (round > 0) {
			t.Errorf("round %d: WorkerReuse = %v", round, got.WorkerReuse)
		}
	}
}

// TestSweepCancelReturnsPartialSweep: cancellation must surface an error
// AND a well-formed partial SweepResult — unfinished suites leave nil
// entries in Runs that callers can skip, and the merged coverage (over
// whatever completed) stays usable.
func TestSweepCancelReturnsPartialSweep(t *testing.T) {
	m := sweepModel()
	opts := accmos.Options{
		Steps:       1 << 40, // effectively endless: only the cancel ends it
		TestCases:   accmos.RandomTestCases(m, 77, -100, 100),
		Parallelism: 2,
	}
	seeds := []uint64{1, 2, 3, 4}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	sw, err := accmos.SweepContext(ctx, m, opts, seeds)
	if err == nil {
		t.Fatal("a cancelled sweep must return an error")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("error must name the cancellation: %v", err)
	}
	if sw == nil {
		t.Fatal("cancellation must still return the partial sweep")
	}
	if len(sw.Runs) != len(seeds) {
		t.Fatalf("partial sweep has %d run slots, want %d", len(sw.Runs), len(seeds))
	}
	for i, run := range sw.Runs {
		if run == nil {
			continue // unfinished suite: the documented nil slot
		}
		if run.OutputHash == 0 && run.Steps == 0 {
			t.Errorf("run %d: non-nil slot with empty results", i)
		}
	}
	if rep := sw.MergedCoverage(); rep.ActorCovered < 0 {
		t.Errorf("merged coverage of a partial sweep must stay well-formed: %+v", rep)
	}

	// A context canceled before the sweep starts completes no suite.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	sw, err = accmos.SweepContext(pre, m, accmos.Options{
		Steps:     400,
		TestCases: accmos.RandomTestCases(m, 77, -100, 100),
	}, seeds)
	if err == nil {
		t.Fatal("a pre-canceled sweep must return an error")
	}
	if sw == nil || len(sw.Runs) != len(seeds) {
		t.Fatalf("pre-canceled sweep result malformed: %+v", sw)
	}
	for i, run := range sw.Runs {
		if run != nil {
			t.Errorf("run %d completed under a pre-canceled context", i)
		}
	}
	if rep := sw.MergedCoverage(); rep.ActorCovered != 0 {
		t.Errorf("no suite ran; merged coverage should be empty: %+v", rep)
	}
}
