// Benchmark harness: one benchmark per paper artifact. Absolute numbers
// depend on the host; the shape to look for is the one the paper reports —
// AccMoS ns/step far below SSE, SSEac between, SSErac closest, and AccMoS
// reaching more coverage per unit wall-clock time.
//
//	go test -bench=. -benchmem
package accmos_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/codegen"
	"accmos/internal/coverage"
	"accmos/internal/diagnose"
	"accmos/internal/harness"
	"accmos/internal/interp"
	"accmos/internal/rapid"
	"accmos/internal/testcase"
)

// benchModels is the Table 1/2/3 suite.
var benchModels = benchmodels.Names()

// compiledCache avoids recompiling models across benchmarks.
var (
	compiledMu    sync.Mutex
	compiledCache = map[string]*actors.Compiled{}
	binaryCache   = map[string]string{}
	benchWorkDir  string
)

func compiledOf(b *testing.B, name string) *actors.Compiled {
	b.Helper()
	compiledMu.Lock()
	defer compiledMu.Unlock()
	if c, ok := compiledCache[name]; ok {
		return c
	}
	c, err := actors.Compile(benchmodels.MustBuild(name))
	if err != nil {
		b.Fatal(err)
	}
	compiledCache[name] = c
	return c
}

func benchSet(c *actors.Compiled) *testcase.Set {
	return testcase.NewRandomSet(len(c.Inports), 2024, -100, 100)
}

// binaryOf builds (once) the instrumented generated binary for a model.
func binaryOf(b *testing.B, name string, opts codegen.Options) string {
	b.Helper()
	key := fmt.Sprintf("%s|cov=%v|diag=%v", name, opts.Coverage, opts.Diagnose)
	compiledMu.Lock()
	defer compiledMu.Unlock()
	if bin, ok := binaryCache[key]; ok {
		return bin
	}
	if benchWorkDir == "" {
		dir, err := os.MkdirTemp("", "accmos-bench-")
		if err != nil {
			b.Fatal(err)
		}
		benchWorkDir = dir
	}
	c := compiledCache[name]
	opts.TestCases = benchSet(c)
	prog, err := codegen.Generate(c, opts)
	if err != nil {
		b.Fatal(err)
	}
	bin, _, err := harness.Build(prog, filepath.Join(benchWorkDir, sanitizeKey(key)))
	if err != nil {
		b.Fatal(err)
	}
	binaryCache[key] = bin
	return bin
}

func sanitizeKey(s string) string {
	out := []rune(s)
	for i, r := range out {
		switch r {
		case '|', '=', '/':
			out[i] = '_'
		}
	}
	return string(out)
}

// reportPerStep converts a (duration, steps) measurement into the ns/step
// metric the Table 2 comparison is read by.
func reportPerStep(b *testing.B, total time.Duration, steps int64) {
	b.ReportMetric(float64(total.Nanoseconds())/float64(steps), "ns/step")
}

// BenchmarkTable2 measures per-step simulation cost of the four engines on
// every Table 1 model (paper Table 2; 50 M steps there, scaled here).
func BenchmarkTable2(b *testing.B) {
	for _, name := range benchModels {
		name := name
		c := compiledOf(b, name)

		b.Run(name+"/AccMoS", func(b *testing.B) {
			bin := binaryOf(b, name, codegen.Options{Coverage: true, Diagnose: true})
			const steps = 500_000
			var exec time.Duration
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(bin, harness.RunOptions{Steps: steps})
				if err != nil {
					b.Fatal(err)
				}
				exec += time.Duration(res.ExecNanos)
			}
			reportPerStep(b, exec/time.Duration(b.N), steps)
		})

		b.Run(name+"/SSE", func(b *testing.B) {
			e, err := interp.New(c, interp.Options{Coverage: true, Diagnose: true})
			if err != nil {
				b.Fatal(err)
			}
			const steps = 5_000
			set := benchSet(c)
			b.ResetTimer()
			var exec time.Duration
			for i := 0; i < b.N; i++ {
				res, err := e.Run(set, steps)
				if err != nil {
					b.Fatal(err)
				}
				exec += time.Duration(res.ExecNanos)
			}
			reportPerStep(b, exec/time.Duration(b.N), steps)
		})

		b.Run(name+"/SSEac", func(b *testing.B) {
			e, err := interp.NewAccel(c)
			if err != nil {
				b.Fatal(err)
			}
			const steps = 20_000
			set := benchSet(c)
			b.ResetTimer()
			var exec time.Duration
			for i := 0; i < b.N; i++ {
				res, err := e.Run(set, steps)
				if err != nil {
					b.Fatal(err)
				}
				exec += time.Duration(res.ExecNanos)
			}
			reportPerStep(b, exec/time.Duration(b.N), steps)
		})

		b.Run(name+"/SSErac", func(b *testing.B) {
			e, err := rapid.New(c)
			if err != nil {
				b.Fatal(err)
			}
			const steps = 100_000
			set := benchSet(c)
			b.ResetTimer()
			var exec time.Duration
			for i := 0; i < b.N; i++ {
				res, err := e.Run(set, steps)
				if err != nil {
					b.Fatal(err)
				}
				exec += time.Duration(res.ExecNanos)
			}
			reportPerStep(b, exec/time.Duration(b.N), steps)
		})
	}
}

// BenchmarkTable3Coverage races both engines against the same wall-clock
// budget on one representative model and reports the coverage achieved
// (paper Table 3). Read the cov% metrics, not ns/op.
func BenchmarkTable3Coverage(b *testing.B) {
	const modelName = "TWC"
	const budget = 150 * time.Millisecond
	c := compiledOf(b, modelName)
	layout := coverage.NewLayout(c)

	b.Run("AccMoS", func(b *testing.B) {
		bin := binaryOf(b, modelName, codegen.Options{Coverage: true, Diagnose: true})
		for i := 0; i < b.N; i++ {
			res, err := harness.Run(bin, harness.RunOptions{Budget: budget})
			if err != nil {
				b.Fatal(err)
			}
			rep := layout.Report(res.Coverage)
			b.ReportMetric(rep.Cond, "cond%")
			b.ReportMetric(rep.MCDC, "mcdc%")
			b.ReportMetric(float64(res.Steps), "steps")
		}
	})
	b.Run("SSE", func(b *testing.B) {
		e, err := interp.New(c, interp.Options{Coverage: true, Diagnose: true})
		if err != nil {
			b.Fatal(err)
		}
		set := benchSet(c)
		for i := 0; i < b.N; i++ {
			res, err := e.RunFor(set, budget)
			if err != nil {
				b.Fatal(err)
			}
			rep := e.Layout().Report(res.Coverage)
			b.ReportMetric(rep.Cond, "cond%")
			b.ReportMetric(rep.MCDC, "mcdc%")
			b.ReportMetric(float64(res.Steps), "steps")
		}
	})
}

// BenchmarkFigure1Detection measures time-to-detection of the motivating
// overflow for both engines (paper Figure 1 / §1: 184.74 s vs 0.37 s).
func BenchmarkFigure1Detection(b *testing.B) {
	c, err := actors.Compile(benchmodels.Figure1Model())
	if err != nil {
		b.Fatal(err)
	}
	const increment = 2000 // detection near step 2^31/(2*2000) = 536k
	set := &testcase.Set{Sources: []testcase.Source{
		{Kind: testcase.Const, Value: increment},
		{Kind: testcase.Const, Value: increment},
	}}
	maxSteps := int64(1)<<31/(2*increment) + 1000

	b.Run("AccMoS", func(b *testing.B) {
		prog, err := codegen.Generate(c, codegen.Options{
			Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow, TestCases: set,
		})
		if err != nil {
			b.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "fig1bench-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		bin, _, err := harness.Build(prog, dir)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var exec time.Duration
		for i := 0; i < b.N; i++ {
			res, err := harness.Run(bin, harness.RunOptions{Steps: maxSteps})
			if err != nil {
				b.Fatal(err)
			}
			if res.FirstDetectOf(diagnose.WrapOnOverflow) < 0 {
				b.Fatal("overflow not detected")
			}
			exec += time.Duration(res.ExecNanos)
		}
		b.ReportMetric(float64(exec.Nanoseconds())/float64(b.N)/1e6, "ms/detect")
	})
	b.Run("SSE", func(b *testing.B) {
		e, err := interp.New(c, interp.Options{Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var exec time.Duration
		for i := 0; i < b.N; i++ {
			res, err := e.Run(set, maxSteps)
			if err != nil {
				b.Fatal(err)
			}
			if res.FirstDetectOf(diagnose.WrapOnOverflow) < 0 {
				b.Fatal("overflow not detected")
			}
			exec += time.Duration(res.ExecNanos)
		}
		b.ReportMetric(float64(exec.Nanoseconds())/float64(b.N)/1e6, "ms/detect")
	})
}

// BenchmarkCaseStudyDetection measures the §4 CSEV error-1 detection
// latency for both engines.
func BenchmarkCaseStudyDetection(b *testing.B) {
	const rate = 50_000 // overflow near step 42950
	c, err := actors.Compile(benchmodels.CSEVInjected(rate))
	if err != nil {
		b.Fatal(err)
	}
	set := testcase.NewRandomSet(len(c.Inports), 2024, -100, 100)
	maxSteps := benchmodels.OverflowStepOf(rate) * 4

	b.Run("AccMoS", func(b *testing.B) {
		prog, err := codegen.Generate(c, codegen.Options{
			Diagnose:   true,
			StopOnDiag: diagnose.WrapOnOverflow, StopOnActor: "CSEVINJ_QuantityAdd",
			TestCases: set,
		})
		if err != nil {
			b.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "csevbench-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		bin, _, err := harness.Build(prog, dir)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var exec time.Duration
		for i := 0; i < b.N; i++ {
			res, err := harness.Run(bin, harness.RunOptions{Steps: maxSteps})
			if err != nil {
				b.Fatal(err)
			}
			exec += time.Duration(res.ExecNanos)
		}
		b.ReportMetric(float64(exec.Nanoseconds())/float64(b.N)/1e6, "ms/detect")
	})
	b.Run("SSE", func(b *testing.B) {
		e, err := interp.New(c, interp.Options{
			Diagnose:   true,
			StopOnDiag: diagnose.WrapOnOverflow, StopOnActor: "CSEVINJ_QuantityAdd",
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var exec time.Duration
		for i := 0; i < b.N; i++ {
			res, err := e.Run(set, maxSteps)
			if err != nil {
				b.Fatal(err)
			}
			exec += time.Duration(res.ExecNanos)
		}
		b.ReportMetric(float64(exec.Nanoseconds())/float64(b.N)/1e6, "ms/detect")
	})
}

// BenchmarkAblationInstrumentation isolates the cost of the
// simulation-oriented instrumentation inside generated code: the same
// model with no instrumentation, coverage only, diagnosis only, and both
// (the DESIGN.md A1 ablation).
func BenchmarkAblationInstrumentation(b *testing.B) {
	const modelName = "LANS"
	compiledOf(b, modelName)
	cases := []struct {
		label    string
		cov, dia bool
	}{
		{"none", false, false},
		{"coverage", true, false},
		{"diagnosis", false, true},
		{"both", true, true},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.label, func(b *testing.B) {
			bin := binaryOf(b, modelName, codegen.Options{Coverage: tc.cov, Diagnose: tc.dia})
			const steps = 500_000
			var exec time.Duration
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(bin, harness.RunOptions{Steps: steps})
				if err != nil {
					b.Fatal(err)
				}
				exec += time.Duration(res.ExecNanos)
			}
			reportPerStep(b, exec/time.Duration(b.N), steps)
		})
	}
}

// BenchmarkAblationRapidSpecialization isolates the unboxed-register
// specialization's contribution to Rapid-Accelerator speed by comparing
// against a bridge-only build of the same model (DESIGN.md A2).
func BenchmarkAblationRapidSpecialization(b *testing.B) {
	c := compiledOf(b, "LANS")
	set := benchSet(c)
	const steps = 50_000
	run := func(b *testing.B, e *rapid.Engine) {
		var exec time.Duration
		for i := 0; i < b.N; i++ {
			res, err := e.Run(set, steps)
			if err != nil {
				b.Fatal(err)
			}
			exec += time.Duration(res.ExecNanos)
		}
		reportPerStep(b, exec/time.Duration(b.N), steps)
	}
	b.Run("specialized", func(b *testing.B) {
		e, err := rapid.New(c)
		if err != nil {
			b.Fatal(err)
		}
		spec, bridged := e.Stats()
		b.Logf("specialized %d, bridged %d", spec, bridged)
		run(b, e)
	})
	b.Run("bridge-only", func(b *testing.B) {
		e, err := rapid.NewBridgeOnly(c)
		if err != nil {
			b.Fatal(err)
		}
		run(b, e)
	})
}

// BenchmarkAblationCompile measures the one-time cost of the AccMoS
// pipeline front end: generation plus Go compilation.
func BenchmarkAblationCompile(b *testing.B) {
	c := compiledOf(b, "CSEV")
	set := benchSet(c)
	dir, err := os.MkdirTemp("", "compilebench-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := codegen.Generate(c, codegen.Options{Coverage: true, Diagnose: true, TestCases: set})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := harness.Build(prog, filepath.Join(dir, fmt.Sprint(i%4))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneration measures code generation alone (no compiler).
func BenchmarkGeneration(b *testing.B) {
	c := compiledOf(b, "RAC")
	set := benchSet(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Generate(c, codegen.Options{Coverage: true, Diagnose: true, TestCases: set}); err != nil {
			b.Fatal(err)
		}
	}
}
