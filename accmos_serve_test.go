package accmos_test

import (
	"reflect"
	"testing"

	accmos "accmos"
	"accmos/internal/benchmodels"
	"accmos/internal/diagnose"
)

// TestServeModeMatchesOneShot is the acceptance gate for the warm worker
// pool: a sweep executed through serve-mode workers must be bit-identical
// to the spawn-per-run executor — same output hashes, same coverage
// bitmaps, same diagnosis aggregates, per run and merged — at every opt
// level. The pool is a pure scheduling/amortization change; any drift
// here means modelReset failed to restore some piece of generated state
// between requests.
func TestServeModeMatchesOneShot(t *testing.T) {
	cases := []struct {
		name  string
		model *accmos.Model
		steps int64
		diag  bool
	}{
		// CSEV carries data stores — serve mode must zero them between
		// runs, or run N's charge state leaks into run N+1.
		{"CSEV", benchmodels.MustBuild("CSEV"), 1500, true},
		// CSEVINJ fires both injected errors (the latent overflow lands
		// near step 2147 at chargeRate 1e6), so the diagnosis counters,
		// first-detect steps and records all carry state worth resetting.
		{"CSEVInjected", benchmodels.CSEVInjected(1_000_000), 3000, true},
		// The rare-branch switch model exercises coverage-bitmap resets:
		// a leaked bitmap would inflate later runs' coverage.
		{"SweepModel", sweepModel(), 400, false},
	}
	seeds := []uint64{0, 1, 0xDEAD, 0xBEEF, 42, 0xF00D}
	for _, tc := range cases {
		for _, lvl := range []accmos.OptLevel{accmos.OptO0, accmos.OptO1, accmos.OptO2} {
			t.Run(tc.name+"/"+lvl.String(), func(t *testing.T) {
				opts := accmos.Options{
					Steps:       tc.steps,
					Diagnose:    tc.diag,
					OptLevel:    lvl,
					TestCases:   accmos.RandomTestCases(tc.model, 77, -100, 100),
					Parallelism: 1,
				}
				oneShot, err := accmos.Sweep(tc.model, opts, seeds)
				if err != nil {
					t.Fatal(err)
				}
				pooled := opts
				pooled.Workers = 1         // one warm worker, strictly sequential reuse
				pooled.DisableBatch = true // force per-run serve frames; oneShot took the batch path
				served, err := accmos.Sweep(tc.model, pooled, seeds)
				if err != nil {
					t.Fatal(err)
				}
				if len(oneShot.Runs) != len(seeds) || len(served.Runs) != len(seeds) {
					t.Fatalf("runs: one-shot %d, served %d, want %d",
						len(oneShot.Runs), len(served.Runs), len(seeds))
				}
				for i := range seeds {
					a, b := oneShot.Runs[i], served.Runs[i]
					if a.OutputHash != b.OutputHash {
						t.Errorf("run %d: output hash %x (one-shot) vs %x (served)",
							i, a.OutputHash, b.OutputHash)
					}
					if a.Steps != b.Steps {
						t.Errorf("run %d: steps %d vs %d", i, a.Steps, b.Steps)
					}
					// A batch reports coverage once, OR-merged over its
					// lanes (checked against the per-run fold below);
					// per-run bitmaps exist only on the per-run path.
					if a.Results.Coverage != nil {
						t.Errorf("run %d: batched lane carries per-run coverage", i)
					}
					if b.Results.Coverage == nil {
						t.Errorf("run %d: per-run serve path dropped coverage", i)
					}
					if a.DiagTotal != b.DiagTotal {
						t.Errorf("run %d: diag totals %d vs %d", i, a.DiagTotal, b.DiagTotal)
					}
					if !reflect.DeepEqual(a.DiagCounts, b.DiagCounts) {
						t.Errorf("run %d: diag counts %v vs %v", i, a.DiagCounts, b.DiagCounts)
					}
					if !reflect.DeepEqual(a.FirstDetect, b.FirstDetect) {
						t.Errorf("run %d: first-detect steps %v vs %v", i, a.FirstDetect, b.FirstDetect)
					}
					if a.WorkerReuse {
						t.Errorf("run %d: one-shot run claims worker reuse", i)
					}
					if b.WorkerReuse != (i > 0) {
						t.Errorf("run %d: served WorkerReuse = %v, want %v (single sequential worker)",
							i, b.WorkerReuse, i > 0)
					}
				}
				if oneShot.MergedCoverage() != served.MergedCoverage() {
					t.Errorf("merged coverage diverges: %+v vs %+v",
						oneShot.MergedCoverage(), served.MergedCoverage())
				}
			})
		}
	}
}

// TestServeModeResetsMonitorAndCustomState covers the generated state the
// sweep test cannot reach: signal-monitor samples/hits and custom-check
// latches. Three pooled Simulate calls reuse one worker; every repeat
// must reproduce the fresh process's results exactly.
func TestServeModeResetsMonitorAndCustomState(t *testing.T) {
	m := demoModel()
	pool := accmos.NewWorkerPool(1)
	defer pool.Close()
	opts := accmos.Options{
		Steps:    2000,
		Coverage: true,
		Diagnose: true,
		Monitor:  []string{"Acc"},
		Custom: []accmos.CustomCheck{
			{Actor: "Acc", Name: "acc-range", Kind: diagnose.RangeCheck, Lo: -1e7, Hi: 1e7},
			{Actor: "Acc", Name: "acc-delta", Kind: diagnose.DeltaCheck, MaxDelta: 500},
		},
		TestCases: accmos.RandomTestCases(m, 9, 1e3, 2e3),
	}
	want, err := accmos.Simulate(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.DiagTotal == 0 {
		t.Fatal("the custom checks should fire; the test would prove nothing")
	}
	if len(want.Results.Monitor["Acc"]) == 0 {
		t.Fatal("no monitor samples recorded")
	}

	pooledOpts := opts
	pooledOpts.Pool = pool
	for round := 0; round < 3; round++ {
		got, err := accmos.Simulate(m, pooledOpts)
		if err != nil {
			t.Fatal(err)
		}
		if got.WorkerReuse != (round > 0) {
			t.Errorf("round %d: WorkerReuse = %v, want %v", round, got.WorkerReuse, round > 0)
		}
		if got.OutputHash != want.OutputHash {
			t.Errorf("round %d: output hash diverged", round)
		}
		if got.DiagTotal != want.DiagTotal {
			t.Errorf("round %d: diag total %d, want %d", round, got.DiagTotal, want.DiagTotal)
		}
		if !reflect.DeepEqual(got.DiagCounts, want.DiagCounts) {
			t.Errorf("round %d: diag counts %v, want %v", round, got.DiagCounts, want.DiagCounts)
		}
		if !reflect.DeepEqual(got.FirstDetect, want.FirstDetect) {
			t.Errorf("round %d: first-detect %v, want %v", round, got.FirstDetect, want.FirstDetect)
		}
		if !reflect.DeepEqual(got.Results.Monitor, want.Results.Monitor) {
			t.Errorf("round %d: monitor samples diverged", round)
		}
		if !reflect.DeepEqual(got.Results.MonitorHits, want.Results.MonitorHits) {
			t.Errorf("round %d: monitor hits %v, want %v", round, got.Results.MonitorHits, want.Results.MonitorHits)
		}
		if !reflect.DeepEqual(got.Results.Coverage, want.Results.Coverage) {
			t.Errorf("round %d: coverage bitmaps diverged", round)
		}
		if got.CoverageReport() != want.CoverageReport() {
			t.Errorf("round %d: coverage report %+v, want %+v", round, got.CoverageReport(), want.CoverageReport())
		}
	}
	if st := pool.Stats(); st.Spawns != 1 || st.Reuses != 2 {
		t.Errorf("three sequential pooled runs should share one worker: %+v", st)
	}
}

// TestSweepSharedPoolAcrossCalls is the accmosd usage shape: one
// externally owned pool serving multiple Sweep calls over the same model,
// so even the first run of a later sweep reuses a warm worker.
func TestSweepSharedPoolAcrossCalls(t *testing.T) {
	m := sweepModel()
	pool := accmos.NewWorkerPool(1)
	defer pool.Close()
	opts := accmos.Options{
		Steps:       300,
		TestCases:   accmos.RandomTestCases(m, 77, -100, 100),
		Parallelism: 1,
		Pool:        pool,
	}
	seeds := []uint64{1, 2, 3}
	first, err := accmos.Sweep(m, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	second, err := accmos.Sweep(m, opts, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Runs[0].WorkerReuse {
		t.Error("the second sweep's first run should hit the warm worker")
	}
	for i := range seeds {
		if first.Runs[i].OutputHash != second.Runs[i].OutputHash {
			t.Errorf("run %d: repeated sweep diverged", i)
		}
	}
	st := pool.Stats()
	// Step-bounded sweeps route through the batch entry point: one
	// request per sweep, with the second hitting the warm worker.
	if st.Spawns != 1 || st.Reuses != 1 || st.Batches != 2 {
		t.Errorf("one worker should serve both sweeps: %+v", st)
	}
}
