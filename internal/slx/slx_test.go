package slx

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/types"
)

func fixture() *model.Model {
	return model.NewBuilder("RT").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		InSubsystem("CTRL").
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "3"), model.WithOperator("")).
		Add("Sw", "Switch", 3, 1, model.WithOperator(">="), model.WithParam("Threshold", "0.5")).
		InSubsystem("").
		Add("C", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In", "G", 0).
		Wire("G", "Sw", 0).
		Wire("C", "Sw", 1).
		Wire("C", "Sw", 2).
		Wire("Sw", "Out", 0).
		MustBuild()
}

func TestRoundTripPreservesEverything(t *testing.T) {
	m := fixture()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || len(back.Actors) != len(m.Actors) {
		t.Fatalf("shape lost: %s %d", back.Name, len(back.Actors))
	}
	for i, a := range m.Actors {
		b := back.Actors[i]
		if a.Name != b.Name || a.Type != b.Type || a.Operator != b.Operator || a.Subsystem != b.Subsystem {
			t.Errorf("actor %d metadata differs: %+v vs %+v", i, a, b)
		}
		if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
			t.Errorf("actor %d port counts differ", i)
		}
		for k, v := range a.Params {
			if b.Param(k, "") != v {
				t.Errorf("actor %s param %s lost", a.Name, k)
			}
		}
	}
	if len(back.Connections) != len(m.Connections) {
		t.Fatalf("connections %d vs %d", len(back.Connections), len(m.Connections))
	}
	for i := range m.Connections {
		if back.Connections[i] != m.Connections[i] {
			t.Errorf("connection %d differs", i)
		}
	}
	// The round-tripped model must compile identically.
	if _, err := actors.Compile(back); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.xml")
	if err := WriteFile(path, fixture()); err != nil {
		t.Fatal(err)
	}
	m, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "RT" {
		t.Errorf("name = %q", m.Name)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"not xml at all",
		`<model><actors/></model>`, // no name
		`<model name="M"><actors><actor name="A" type="Gain" in="-1" out="1"/></actors></model>`,
		`<model name="M"><actors><actor name="A" type="Gain" in="1" out="1"><param value="x"/></actor></actors></model>`,
		// Unknown connection endpoint (structural validation).
		`<model name="M"><actors><actor name="A" type="Constant" in="0" out="1"/></actors>` +
			`<relationships><signal from="A" fromPort="0" to="B" toPort="0"/></relationships></model>`,
		// Duplicate actor names.
		`<model name="M"><actors><actor name="A" type="Constant" in="0" out="1"/>` +
			`<actor name="A" type="Constant" in="0" out="1"/></actors></model>`,
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	m := fixture()
	var a, b bytes.Buffer
	if err := Encode(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, m); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("encoding is not deterministic (param order?)")
	}
}

// FuzzDecode hardens the model parser: arbitrary bytes must either fail
// cleanly or produce a structurally valid model that elaborates without
// panicking.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := Encode(&seed, fixture()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(`<model name="M"><actors><actor name="A" type="Constant" in="0" out="1"/></actors></model>`))
	f.Add([]byte(`not xml`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Elaboration must never panic on parser-accepted input.
		_, _ = actors.Compile(m)
	})
}
