// Package slx reads and writes the on-disk model format. The layout
// deliberately mirrors how the paper describes Simulink's model storage
// (§3.1): an actors part holding each block's fundamentals — name, type,
// calculation operator, parameters, and input/output port counts, with no
// signal connections — and a relationships part holding every data-flow
// connection between ports. Parsing the actors part is the model parser
// module; reconstructing port wiring and execution order from the
// relationships part is the schedule convert module (actors.Compile).
package slx

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"sort"

	"accmos/internal/model"
)

// xmlModel is the document root.
type xmlModel struct {
	XMLName       xml.Name      `xml:"model"`
	Name          string        `xml:"name,attr"`
	Actors        []xmlActor    `xml:"actors>actor"`
	Relationships []xmlRelation `xml:"relationships>signal"`
}

// xmlActor is one entry of the actors part.
type xmlActor struct {
	Name      string     `xml:"name,attr"`
	Type      string     `xml:"type,attr"`
	Operator  string     `xml:"operator,attr,omitempty"`
	Subsystem string     `xml:"subsystem,attr,omitempty"`
	NumIn     int        `xml:"in,attr"`
	NumOut    int        `xml:"out,attr"`
	Params    []xmlParam `xml:"param"`
}

// xmlParam is one actor parameter.
type xmlParam struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

// xmlRelation is one entry of the relationships part.
type xmlRelation struct {
	From     string `xml:"from,attr"`
	FromPort int    `xml:"fromPort,attr"`
	To       string `xml:"to,attr"`
	ToPort   int    `xml:"toPort,attr"`
}

// Encode writes a model to w as XML.
func Encode(w io.Writer, m *model.Model) error {
	doc := xmlModel{Name: m.Name}
	for _, a := range m.Actors {
		xa := xmlActor{
			Name:      a.Name,
			Type:      string(a.Type),
			Operator:  a.Operator,
			Subsystem: a.Subsystem,
			NumIn:     len(a.Inputs),
			NumOut:    len(a.Outputs),
		}
		keys := make([]string, 0, len(a.Params))
		for k := range a.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			xa.Params = append(xa.Params, xmlParam{Key: k, Value: a.Params[k]})
		}
		doc.Actors = append(doc.Actors, xa)
	}
	for _, c := range m.Connections {
		doc.Relationships = append(doc.Relationships, xmlRelation{
			From: c.SrcActor, FromPort: c.SrcPort,
			To: c.DstActor, ToPort: c.DstPort,
		})
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("slx: encoding model %s: %w", m.Name, err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Decode parses a model document from r. The result is structurally
// validated; semantic validation happens at actors.Compile.
func Decode(r io.Reader) (*model.Model, error) {
	var doc xmlModel
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("slx: parsing model file: %w", err)
	}
	if doc.Name == "" {
		return nil, fmt.Errorf("slx: model has no name")
	}
	m := model.New(doc.Name)
	for _, xa := range doc.Actors {
		if xa.NumIn < 0 || xa.NumOut < 0 || xa.NumIn > 1024 || xa.NumOut > 1024 {
			return nil, fmt.Errorf("slx: actor %q has implausible port counts (%d in, %d out)",
				xa.Name, xa.NumIn, xa.NumOut)
		}
		a := &model.Actor{
			Name:      xa.Name,
			Type:      model.ActorType(xa.Type),
			Operator:  xa.Operator,
			Subsystem: xa.Subsystem,
		}
		// Port names and data types default here; the schedule convert
		// stage resolves them from the relationships part.
		for i := 0; i < xa.NumIn; i++ {
			a.Inputs = append(a.Inputs, model.Port{Name: fmt.Sprintf("in%d", i+1)})
		}
		for i := 0; i < xa.NumOut; i++ {
			a.Outputs = append(a.Outputs, model.Port{Name: fmt.Sprintf("out%d", i+1)})
		}
		for _, p := range xa.Params {
			if p.Key == "" {
				return nil, fmt.Errorf("slx: actor %q has a parameter with no key", xa.Name)
			}
			a.SetParam(p.Key, p.Value)
		}
		if err := m.AddActor(a); err != nil {
			return nil, fmt.Errorf("slx: %w", err)
		}
	}
	for _, rel := range doc.Relationships {
		m.Connect(rel.From, rel.FromPort, rel.To, rel.ToPort)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("slx: %w", err)
	}
	return m, nil
}

// WriteFile writes a model to the named file.
func WriteFile(path string, m *model.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("slx: %w", err)
	}
	defer f.Close()
	if err := Encode(f, m); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a model from the named file.
func ReadFile(path string) (*model.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("slx: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
