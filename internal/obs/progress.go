package obs

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"time"
)

// NewRunID generates a short random correlation ID for a run that has no
// externally assigned one (CLI invocations; daemon jobs reuse the job
// ID). The "r-" prefix keeps run IDs tell-apart from accmosd's "j-" job
// IDs in merged log streams.
func NewRunID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; a fixed fallback still
		// yields a usable (if non-unique) ID rather than an error path
		// nobody handles.
		return "r-000000000000"
	}
	return "r-" + hex.EncodeToString(b[:])
}

// Snapshot is one live progress observation of a running simulation —
// the payload of a generated program's NDJSON heartbeat line and of the
// in-process engines' progress callbacks. Coverage is the percentage of
// raw coverage points set so far (-1 when coverage is not collected).
type Snapshot struct {
	Model        string  `json:"model,omitempty"`
	Engine       string  `json:"engine,omitempty"`
	Steps        int64   `json:"steps"`
	ElapsedNanos int64   `json:"elapsedNanos"`
	StepsPerSec  float64 `json:"stepsPerSec"`
	Coverage     float64 `json:"coverage"`
	Diags        int64   `json:"diags"`
	// Final marks the snapshot emitted after the simulation loop exits.
	Final bool `json:"final,omitempty"`

	// Worker and Suite attribute snapshots flowing out of a parallel
	// sweep: the 1-based worker that observed the snapshot and the
	// 1-based suite index within the sweep. Both are zero (and omitted
	// from the JSON encoding) outside a sweep, so single-run heartbeat
	// streams are unchanged.
	Worker int `json:"worker,omitempty"`
	Suite  int `json:"suite,omitempty"`

	// Run is the request id that produced this snapshot when it came out
	// of a serve-mode worker (empty — and omitted — in one-shot runs,
	// where the process itself identifies the run).
	Run string `json:"run,omitempty"`

	// Corr is the correlation ID of the run that produced this snapshot —
	// the job ID under accmosd, a generated run ID for CLI runs — stamped
	// host-side by the harness, so every NDJSON event is joinable with
	// the run's log lines and trace spans.
	Corr string `json:"corr,omitempty"`
}

// Elapsed returns the run time at the snapshot.
func (s Snapshot) Elapsed() time.Duration { return time.Duration(s.ElapsedNanos) }

// heartbeatPrefix starts every NDJSON heartbeat line a generated program
// writes to stderr, distinguishing the stream from ordinary diagnostics.
// Keep in sync with the emitHeartbeat function in internal/codegen's
// generated runtime.
var heartbeatPrefix = []byte(`{"accmosHB":`)

// IsHeartbeat reports whether a stderr line is a heartbeat record.
func IsHeartbeat(line []byte) bool { return bytes.HasPrefix(line, heartbeatPrefix) }

// ParseHeartbeat decodes one heartbeat line; ok is false for any other
// stderr content (including malformed heartbeats, which callers should
// treat as ordinary diagnostics).
func ParseHeartbeat(line []byte) (Snapshot, bool) {
	if !IsHeartbeat(line) {
		return Snapshot{}, false
	}
	var s Snapshot
	if err := json.Unmarshal(line, &s); err != nil {
		return Snapshot{}, false
	}
	return s, true
}

// DefaultInterval is the heartbeat / progress-tick interval used when a
// caller enables progress reporting without choosing one.
const DefaultInterval = 500 * time.Millisecond

// Reporter throttles progress snapshots for the in-process engines: the
// step loop offers a tick every few thousand steps, and the reporter
// materialises a Snapshot — invoking the callback and appending to the
// timeline — only when the interval has elapsed. A nil *Reporter no-ops,
// so engines create one only when progress reporting is requested.
type Reporter struct {
	Model    string
	Engine   string
	Interval time.Duration
	Callback func(Snapshot)

	// Timeline accumulates every emitted snapshot (the coverage-over-time
	// record surfaced in the final Result).
	Timeline []Snapshot

	start time.Time
	next  time.Time
}

// NewReporter builds a reporter; a non-positive interval selects
// DefaultInterval. The clock starts immediately.
func NewReporter(model, engine string, interval time.Duration, cb func(Snapshot)) *Reporter {
	if interval <= 0 {
		interval = DefaultInterval
	}
	now := time.Now()
	return &Reporter{
		Model: model, Engine: engine, Interval: interval, Callback: cb,
		start: now, next: now.Add(interval),
	}
}

// MaybeTick emits a snapshot if the interval has elapsed. The lazy
// closure supplies coverage % (-1 when uncollected) and the diagnosis
// count, and is only invoked when a snapshot is actually due — keeping
// the per-tick cost of an idle reporter to one time read.
func (r *Reporter) MaybeTick(steps int64, lazy func() (coverage float64, diags int64)) {
	if r == nil {
		return
	}
	now := time.Now()
	if now.Before(r.next) {
		return
	}
	r.next = now.Add(r.Interval)
	cov, diags := lazy()
	r.emit(steps, now, cov, diags, false)
}

// Final emits the end-of-run snapshot unconditionally, so every enabled
// run yields at least one timeline point.
func (r *Reporter) Final(steps int64, coverage float64, diags int64) {
	if r == nil {
		return
	}
	r.emit(steps, time.Now(), coverage, diags, true)
}

func (r *Reporter) emit(steps int64, now time.Time, coverage float64, diags int64, final bool) {
	elapsed := now.Sub(r.start)
	sps := 0.0
	if elapsed > 0 {
		sps = float64(steps) / elapsed.Seconds()
	}
	s := Snapshot{
		Model: r.Model, Engine: r.Engine,
		Steps: steps, ElapsedNanos: elapsed.Nanoseconds(), StepsPerSec: sps,
		Coverage: coverage, Diags: diags, Final: final,
	}
	r.Timeline = append(r.Timeline, s)
	if r.Callback != nil {
		r.Callback(s)
	}
}
