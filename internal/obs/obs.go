// Package obs is the stdlib-only telemetry subsystem threaded through the
// AccMoS pipeline: phase tracing (a lightweight nested-span API over the
// monotonic clock, exportable as a JSON trace and a human summary) and
// live step-loop progress snapshots (decoded from the NDJSON heartbeat
// stream generated programs emit on stderr, or produced directly by the
// in-process engines). It imports nothing from the rest of the repository
// so every layer — codegen, harness, engines, CLIs — can depend on it.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span is one traced pipeline phase. Timestamps are monotonic nanosecond
// offsets from the owning Tracer's construction, so a serialized trace is
// self-consistent regardless of wall-clock adjustments.
type Span struct {
	Name       string  `json:"name"`
	StartNanos int64   `json:"startNanos"`
	EndNanos   int64   `json:"endNanos"`
	Children   []*Span `json:"children,omitempty"`

	tracer *Tracer
}

// Duration returns the span length (zero while the span is still open).
func (s *Span) Duration() time.Duration {
	if s == nil || s.EndNanos < s.StartNanos {
		return 0
	}
	return time.Duration(s.EndNanos - s.StartNanos)
}

// End closes the span. A nil receiver is a no-op so call sites can write
// `defer tr.Start("phase").End()` without checking whether tracing is on.
func (s *Span) End() {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.end(s)
}

// Tracer records a tree of phase spans. The zero value is not usable; a
// nil *Tracer is: every method no-ops, so the pipeline threads an optional
// tracer without nil checks.
type Tracer struct {
	mu    sync.Mutex
	start time.Time
	corr  string
	roots []*Span
	stack []*Span
}

// SetCorr attaches a correlation ID (a job ID under accmosd, a generated
// run ID for CLI runs) to the trace, so its serialized form is joinable
// with log lines, heartbeats and debug bundles carrying the same ID.
// Nil-safe.
func (t *Tracer) SetCorr(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.corr = id
	t.mu.Unlock()
}

// Corr returns the trace's correlation ID ("" when unset). Nil-safe.
func (t *Tracer) Corr() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.corr
}

// NewTracer starts a tracer; all span offsets are relative to this call.
func NewTracer() *Tracer { return &Tracer{start: time.Now()} }

// Start opens a span nested under the innermost still-open span (or at the
// root). Returns nil — safely End()-able — on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, StartNanos: time.Since(t.start).Nanoseconds(), EndNanos: -1, tracer: t}
	if n := len(t.stack); n > 0 {
		p := t.stack[n-1]
		p.Children = append(p.Children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.stack = append(t.stack, s)
	return s
}

// end closes s, implicitly closing any deeper spans left open (a phase
// that returns early via error paths still yields a well-formed tree).
func (t *Tracer) end(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Since(t.start).Nanoseconds()
	for i := len(t.stack) - 1; i >= 0; i-- {
		sp := t.stack[i]
		if sp.EndNanos < 0 {
			sp.EndNanos = now
		}
		if sp == s {
			t.stack = t.stack[:i]
			return
		}
	}
	// s was not on the stack (already ended): nothing to pop.
}

// Trace is the serializable form of a tracer's span tree. Corr is the
// correlation ID shared with the run's log lines and heartbeats.
type Trace struct {
	Corr  string  `json:"corr,omitempty"`
	Spans []*Span `json:"spans"`
}

// Trace snapshots the current span tree. Open spans appear with
// EndNanos -1.
func (t *Tracer) Trace() *Trace {
	if t == nil {
		return &Trace{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &Trace{Corr: t.corr, Spans: t.roots}
}

// WriteJSON serializes the trace as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(t.Trace(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Summary renders the span tree as indented human-readable lines
// ("schedule 1.2ms", nested phases indented beneath their parent).
func (t *Tracer) Summary() string {
	var sb strings.Builder
	var walk func(spans []*Span, depth int)
	walk = func(spans []*Span, depth int) {
		for _, s := range spans {
			fmt.Fprintf(&sb, "%s%-12s %v\n", strings.Repeat("  ", depth), s.Name, s.Duration())
			walk(s.Children, depth+1)
		}
	}
	walk(t.Trace().Spans, 0)
	return sb.String()
}

// Find returns the spans with the given name anywhere in the trace, in
// depth-first order.
func (tr *Trace) Find(name string) []*Span {
	var out []*Span
	var walk func(spans []*Span)
	walk = func(spans []*Span) {
		for _, s := range spans {
			if s.Name == name {
				out = append(out, s)
			}
			walk(s.Children)
		}
	}
	walk(tr.Spans)
	return out
}
