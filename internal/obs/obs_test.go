package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracerNesting(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("simulate")
	inner := tr.Start("schedule")
	inner.End()
	gen := tr.Start("generate")
	gen.End()
	outer.End()
	top := tr.Start("report")
	top.End()

	trace := tr.Trace()
	if len(trace.Spans) != 2 {
		t.Fatalf("want 2 root spans, got %d", len(trace.Spans))
	}
	sim := trace.Spans[0]
	if sim.Name != "simulate" || len(sim.Children) != 2 {
		t.Fatalf("root span: %+v", sim)
	}
	if sim.Children[0].Name != "schedule" || sim.Children[1].Name != "generate" {
		t.Errorf("children: %q, %q", sim.Children[0].Name, sim.Children[1].Name)
	}
	for _, s := range []*Span{sim, sim.Children[0], sim.Children[1], trace.Spans[1]} {
		if s.EndNanos < s.StartNanos {
			t.Errorf("span %s not closed: start %d end %d", s.Name, s.StartNanos, s.EndNanos)
		}
	}
	// Children are contained within the parent's interval.
	for _, c := range sim.Children {
		if c.StartNanos < sim.StartNanos || c.EndNanos > sim.EndNanos {
			t.Errorf("child %s [%d,%d] outside parent [%d,%d]",
				c.Name, c.StartNanos, c.EndNanos, sim.StartNanos, sim.EndNanos)
		}
	}
}

func TestTracerEndClosesAbandonedChildren(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("outer")
	tr.Start("leaked") // never explicitly ended (error-path shape)
	outer.End()
	sp := tr.Trace().Find("leaked")
	if len(sp) != 1 || sp[0].EndNanos < 0 {
		t.Fatalf("leaked span not implicitly closed: %+v", sp)
	}
	if len(tr.Trace().Find("outer")) != 1 {
		t.Fatal("outer span missing")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Start("x").End() // must not panic
	if got := tr.Trace(); len(got.Spans) != 0 {
		t.Errorf("nil tracer trace: %+v", got)
	}
	if tr.Summary() != "" {
		t.Errorf("nil tracer summary: %q", tr.Summary())
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("parse")
	tr.Start("inner").End()
	s.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(tr.Trace())
	again, _ := json.Marshal(&got)
	if string(want) != string(again) {
		t.Errorf("round trip changed trace:\n%s\n%s", want, again)
	}
	if len(got.Find("inner")) != 1 {
		t.Error("nested span lost in round trip")
	}
}

func TestSummary(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("compile")
	tr.Start("link").End()
	s.End()
	sum := tr.Summary()
	if !strings.Contains(sum, "compile") || !strings.Contains(sum, "  link") {
		t.Errorf("summary missing or unindented spans:\n%s", sum)
	}
}

func TestParseHeartbeat(t *testing.T) {
	line := []byte(`{"accmosHB":1,"model":"SPV","engine":"AccMoS","steps":2048,"elapsedNanos":1000000,"stepsPerSec":2048000,"coverage":55.5,"diags":3,"final":true}`)
	s, ok := ParseHeartbeat(line)
	if !ok {
		t.Fatal("heartbeat not recognised")
	}
	if s.Model != "SPV" || s.Engine != "AccMoS" || s.Steps != 2048 ||
		s.Coverage != 55.5 || s.Diags != 3 || !s.Final {
		t.Errorf("decoded: %+v", s)
	}
	if s.Elapsed() != time.Millisecond {
		t.Errorf("elapsed: %v", s.Elapsed())
	}

	for _, bad := range []string{
		"panic: runtime error",
		`{"model":"SPV"}`,
		`{"accmosHB":1,"steps":"not a number"}`,
		"",
	} {
		if _, ok := ParseHeartbeat([]byte(bad)); ok {
			t.Errorf("non-heartbeat accepted: %q", bad)
		}
	}
}

func TestSnapshotHeartbeatRoundTrip(t *testing.T) {
	// A snapshot marshalled with the accmosHB marker must parse back —
	// the host-side contract the generated emitter mirrors.
	s := Snapshot{Model: "M", Engine: "AccMoS", Steps: 7, ElapsedNanos: 9,
		StepsPerSec: 777.5, Coverage: -1, Diags: 2}
	b, err := json.Marshal(struct {
		HB int `json:"accmosHB"`
		Snapshot
	}{1, s})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ParseHeartbeat(b)
	if !ok || got != s {
		t.Errorf("round trip: ok=%v got=%+v want=%+v", ok, got, s)
	}
}

func TestReporterThrottleAndFinal(t *testing.T) {
	var seen []Snapshot
	r := NewReporter("M", "SSE", time.Hour, func(s Snapshot) { seen = append(seen, s) })
	lazyCalls := 0
	for i := int64(0); i < 100; i++ {
		r.MaybeTick(i, func() (float64, int64) { lazyCalls++; return 10, 0 })
	}
	if lazyCalls != 0 || len(seen) != 0 {
		t.Errorf("interval not honoured: %d lazy calls, %d snapshots", lazyCalls, len(seen))
	}
	r.Final(100, 42.0, 5)
	if len(seen) != 1 || !seen[0].Final || seen[0].Steps != 100 || seen[0].Coverage != 42.0 {
		t.Errorf("final snapshot: %+v", seen)
	}
	if len(r.Timeline) != 1 {
		t.Errorf("timeline: %+v", r.Timeline)
	}
}

func TestReporterTicksWhenDue(t *testing.T) {
	r := NewReporter("M", "AccMoS", time.Nanosecond, nil)
	time.Sleep(time.Millisecond)
	r.MaybeTick(10, func() (float64, int64) { return 1, 0 })
	time.Sleep(time.Millisecond)
	r.MaybeTick(20, func() (float64, int64) { return 2, 1 })
	r.Final(30, 3, 2)
	if len(r.Timeline) != 3 {
		t.Fatalf("timeline: %+v", r.Timeline)
	}
	for i := 1; i < len(r.Timeline); i++ {
		prev, cur := r.Timeline[i-1], r.Timeline[i]
		if cur.Steps < prev.Steps || cur.Coverage < prev.Coverage || cur.ElapsedNanos < prev.ElapsedNanos {
			t.Errorf("timeline not monotone at %d: %+v -> %+v", i, prev, cur)
		}
	}
	if r.Timeline[0].StepsPerSec <= 0 {
		t.Errorf("steps/sec: %+v", r.Timeline[0])
	}
}

func TestNilReporterIsSafe(t *testing.T) {
	var r *Reporter
	r.MaybeTick(1, func() (float64, int64) { t.Fatal("lazy called on nil reporter"); return 0, 0 })
	r.Final(1, 0, 0)
}
