package obs

import (
	"encoding/json"
	"sync"
)

// EncodeHeartbeat renders a snapshot as one NDJSON heartbeat line (no
// trailing newline) in the same framing the generated runtime emits on
// stderr, so a host process — e.g. the accmosd daemon re-broadcasting a
// running job's progress — produces a stream ParseHeartbeat round-trips.
func EncodeHeartbeat(s Snapshot) []byte {
	type alias Snapshot // avoid recursing into a custom marshaller later
	b, err := json.Marshal(struct {
		HB int `json:"accmosHB"`
		alias
	}{1, alias(s)})
	if err != nil {
		// Snapshot is a plain value struct; Marshal cannot fail on it.
		return append([]byte{}, heartbeatPrefix...)
	}
	return b
}

// fanoutBuffer bounds each subscriber's channel; a subscriber that falls
// further behind than this loses oldest-first (progress data is lossy by
// nature — the next snapshot supersedes the last).
const fanoutBuffer = 64

// Fanout broadcasts progress snapshots to any number of late-joining
// subscribers — the daemon's bridge between ONE running simulation
// (whose Options.Progress callback publishes here) and MANY live
// /v1/jobs/{id}/events streams. New subscribers first replay the
// bounded history, so a client attaching mid-run still sees how the job
// progressed. Safe for concurrent use; Publish never blocks.
type Fanout struct {
	mu      sync.Mutex
	subs    map[int]*fanoutSub
	next    int
	replay  []Snapshot // bounded history for late subscribers
	max     int
	closed  bool
	dropped int64 // lifetime drops, including departed subscribers
}

// fanoutSub is one subscriber: its delivery channel and how many
// snapshots were dropped on it because it fell behind.
type fanoutSub struct {
	ch      chan Snapshot
	dropped int64
}

// NewFanout creates a fan-out retaining up to replay snapshots for late
// subscribers (<= 0 keeps the DefaultReplay).
func NewFanout(replay int) *Fanout {
	if replay <= 0 {
		replay = DefaultReplay
	}
	return &Fanout{subs: make(map[int]*fanoutSub), max: replay}
}

// FanoutStats reports a fan-out's subscriber health: the number of live
// subscribers, each live subscriber's dropped-snapshot count, and the
// lifetime total across all subscribers ever attached — the signal that
// a consumer (an /events client, the daemon's own bridge) cannot keep up
// with the progress stream.
type FanoutStats struct {
	Subscribers  int     `json:"subscribers"`
	Dropped      []int64 `json:"dropped,omitempty"`
	DroppedTotal int64   `json:"droppedTotal"`
}

// Stats snapshots the fan-out's drop counters.
func (f *Fanout) Stats() FanoutStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FanoutStats{Subscribers: len(f.subs), DroppedTotal: f.dropped}
	for _, sub := range f.subs {
		if sub.dropped > 0 {
			s.Dropped = append(s.Dropped, sub.dropped)
		}
	}
	return s
}

// History returns a copy of the replay window — the most recent
// snapshots published, usable after Close (e.g. for a failed job's debug
// bundle).
func (f *Fanout) History() []Snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Snapshot(nil), f.replay...)
}

// DefaultReplay is the history window a Fanout keeps for subscribers
// that attach after the run started.
const DefaultReplay = 256

// Publish delivers s to every subscriber and appends it to the replay
// history. A subscriber whose buffer is full loses its oldest pending
// snapshot rather than blocking the publisher (the simulation's progress
// callback must never stall on a slow HTTP client).
func (f *Fanout) Publish(s Snapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.replay = append(f.replay, s)
	if len(f.replay) > f.max {
		f.replay = f.replay[len(f.replay)-f.max:]
	}
	for _, sub := range f.subs {
		for {
			select {
			case sub.ch <- s:
			default:
				select {
				case <-sub.ch: // drop oldest, retry
					sub.dropped++
					f.dropped++
					continue
				default:
				}
			}
			break
		}
	}
}

// Subscribe returns a channel that first yields the replay history, then
// live snapshots until the fan-out is closed (the channel is then
// closed) or cancel is called. cancel is idempotent.
func (f *Fanout) Subscribe() (<-chan Snapshot, func()) {
	f.mu.Lock()
	hist := append([]Snapshot(nil), f.replay...)
	need := len(hist) + fanoutBuffer
	ch := make(chan Snapshot, need)
	for _, s := range hist {
		ch <- s
	}
	if f.closed {
		close(ch)
		f.mu.Unlock()
		return ch, func() {}
	}
	id := f.next
	f.next++
	f.subs[id] = &fanoutSub{ch: ch}
	f.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			f.mu.Lock()
			if sub, ok := f.subs[id]; ok {
				delete(f.subs, id)
				close(sub.ch)
			}
			f.mu.Unlock()
		})
	}
	return ch, cancel
}

// Close ends the stream: every subscriber's channel is closed after its
// pending snapshots drain, and future Publish calls are dropped. The
// replay history stays readable by later Subscribe calls (they get the
// history and an immediately-closed channel).
func (f *Fanout) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for id, sub := range f.subs {
		delete(f.subs, id)
		close(sub.ch)
	}
}
