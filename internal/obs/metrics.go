package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the generic metrics layer behind the daemon's /metrics
// endpoint: a registry of counters, gauges and fixed-bucket latency
// histograms, each optionally split by labels, exposed in the Prometheus
// text format so any scraper — and later the fleet coordinator — can
// aggregate daemons. Hot-path updates are lock-cheap: counters and gauges
// are single atomics, label-series lookup takes a read lock, and only
// series creation and histogram observation take a short exclusive lock.

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and lock-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must be >= 0 for the exposed series
// to stay monotonic; Add does not enforce it).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and lock-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histSamples bounds a histogram's quantile reservoir: quantiles are
// computed over the most recent histSamples observations, so a long-lived
// process reports current behaviour, not its whole history. The bucket
// counts (the Prometheus view) are lifetime-cumulative regardless.
const histSamples = 512

// DefLatencyBuckets are the default histogram upper bounds (seconds) for
// pipeline-phase latencies, spanning sub-millisecond schedule phases to
// multi-second compiles.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram accumulates a distribution into fixed buckets (for Prometheus
// exposition) plus a bounded recent-sample reservoir (for the JSON view's
// quantiles). Safe for concurrent use.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	count  int64
	sum    float64
	max    float64
	ring   []float64
	idx    int
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if len(h.ring) < histSamples {
		h.ring = append(h.ring, v)
	} else {
		h.ring[h.idx] = v
		h.idx = (h.idx + 1) % histSamples
	}
	h.mu.Unlock()
}

// HistStats is a point-in-time summary of a histogram: lifetime count,
// sum and max, plus quantiles over the recent-sample reservoir.
type HistStats struct {
	Count         int64
	Sum           float64
	Max           float64
	P50, P90, P99 float64
}

// Stats summarises the histogram.
func (h *Histogram) Stats() HistStats {
	h.mu.Lock()
	s := HistStats{Count: h.count, Sum: h.sum, Max: h.max}
	sorted := append([]float64(nil), h.ring...)
	h.mu.Unlock()
	if len(sorted) == 0 {
		return s
	}
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		return sorted[int(p*float64(len(sorted)-1))]
	}
	s.P50, s.P90, s.P99 = q(0.50), q(0.90), q(0.99)
	return s
}

// snapshot returns the cumulative bucket counts, count and sum for
// exposition.
func (h *Histogram) snapshot() (cumulative []uint64, count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return cumulative, h.count, h.sum
}

// metric kinds in exposition order of their TYPE line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric with all its label series.
type family struct {
	name   string
	help   string
	typ    string
	labels []string  // label names; series values are positional
	bounds []float64 // histogram bucket bounds

	fn func() float64 // func-backed single-series family (nil otherwise)

	mu     sync.RWMutex
	series map[string]*series
}

type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// Registry holds a process's metric families and renders them in the
// Prometheus text exposition format. Families are registered once (at
// construction of the owning component) and updated lock-cheaply from hot
// paths. The zero value is not usable; create with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{byName: make(map[string]*family)} }

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

// CounterVec declares a counter family split by labels; use With to reach
// one series. A label-less family is a vec with zero labels.
type CounterVec struct{ f *family }

// Counter registers a counter family. labels name the label dimensions;
// call With with matching positional values.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, typ: typeCounter, labels: labels, series: make(map[string]*series)}
	r.register(f)
	return &CounterVec{f}
}

// With returns the counter for the given label values, creating it on
// first use. The number of values must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.lookup(values).counter
}

// GaugeVec declares a gauge family split by labels.
type GaugeVec struct{ f *family }

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, typ: typeGauge, labels: labels, series: make(map[string]*series)}
	r.register(f)
	return &GaugeVec{f}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.lookup(values).gauge
}

// HistogramVec declares a histogram family split by labels. bounds are
// the bucket upper bounds in ascending order (nil selects
// DefLatencyBuckets).
type HistogramVec struct{ f *family }

// Histogram registers a histogram family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	f := &family{name: name, help: help, typ: typeHistogram, labels: labels, bounds: bounds, series: make(map[string]*series)}
	r.register(f)
	return &HistogramVec{f}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.lookup(values).hist
}

// Series snapshots the family's current label series as (values, stats)
// pairs — the bridge to a JSON view that keys phase summaries by name.
func (v *HistogramVec) Series() map[string]HistStats {
	v.f.mu.RLock()
	defer v.f.mu.RUnlock()
	out := make(map[string]HistStats, len(v.f.series))
	for _, s := range v.f.series {
		out[strings.Join(s.labelValues, "\xff")] = s.hist.Stats()
	}
	return out
}

// GaugeFunc registers a gauge whose value is read at exposition time —
// how live state (queue depth, warm workers, cache population) is
// exported without a point-in-time snapshot going stale.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeGauge, fn: fn})
}

// CounterFunc registers a counter whose value is read at exposition time,
// for monotonic totals owned by another component (e.g. build-cache
// hits). fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: typeCounter, fn: fn})
}

// lookup finds or creates the series for the given label values.
func (f *family) lookup(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		s.counter = &Counter{}
	case typeGauge:
		s.gauge = &Gauge{}
	case typeHistogram:
		s.hist = newHistogram(f.bounds)
	}
	f.series[key] = s
	return s
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote and newline.
func escapeLabel(v string) string {
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(v string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(v)
}

// formatValue renders a sample value. Integral floats print without an
// exponent or trailing zeros; +Inf prints the exposition spelling.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// labelBlock renders `{k1="v1",k2="v2"}` (empty string for no labels).
// extra appends one preformatted pair (the histogram le bound).
func labelBlock(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extra)
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus renders every family in registration order (series
// sorted within a family), in the text exposition format version 0.0.4.
// Families with no series yet still emit their HELP/TYPE header, so the
// scrapeable skeleton is stable from the first scrape — and golden
// testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	families := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	var sb strings.Builder
	for _, f := range families {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			fmt.Fprintf(&sb, "%s %s\n", f.name, formatValue(f.fn()))
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make([]*series, len(keys))
		for i, k := range keys {
			ordered[i] = f.series[k]
		}
		f.mu.RUnlock()
		for _, s := range ordered {
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, labelBlock(f.labels, s.labelValues, ""), s.counter.Value())
			case typeGauge:
				fmt.Fprintf(&sb, "%s%s %d\n", f.name, labelBlock(f.labels, s.labelValues, ""), s.gauge.Value())
			case typeHistogram:
				cum, count, sum := s.hist.snapshot()
				for i, c := range cum {
					le := "+Inf"
					if i < len(f.bounds) {
						le = formatValue(f.bounds[i])
					}
					extra := `le="` + le + `"`
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, labelBlock(f.labels, s.labelValues, extra), c)
				}
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, labelBlock(f.labels, s.labelValues, ""), formatValue(sum))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, labelBlock(f.labels, s.labelValues, ""), count)
			}
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
