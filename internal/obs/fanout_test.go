package obs

import (
	"testing"
)

func TestEncodeHeartbeatRoundTrip(t *testing.T) {
	in := Snapshot{Model: "CSEV", Engine: "accmos", Steps: 42000, ElapsedNanos: 7, StepsPerSec: 1.5, Coverage: 0.25, Diags: 3}
	line := EncodeHeartbeat(in)
	if !IsHeartbeat(line) {
		t.Fatalf("encoded line is not recognised as a heartbeat: %s", line)
	}
	out, ok := ParseHeartbeat(line)
	if !ok {
		t.Fatalf("ParseHeartbeat rejected an encoded line: %s", line)
	}
	if out != in {
		t.Errorf("round trip changed the snapshot:\n in: %+v\nout: %+v", in, out)
	}
}

func TestFanoutReplayThenLive(t *testing.T) {
	f := NewFanout(8)
	f.Publish(Snapshot{Steps: 1})
	f.Publish(Snapshot{Steps: 2})

	ch, cancel := f.Subscribe()
	defer cancel()
	for want := int64(1); want <= 2; want++ {
		got := <-ch
		if got.Steps != want {
			t.Fatalf("replay snapshot %d: got steps %d", want, got.Steps)
		}
	}
	f.Publish(Snapshot{Steps: 3})
	if got := <-ch; got.Steps != 3 {
		t.Fatalf("live snapshot: got steps %d, want 3", got.Steps)
	}
}

func TestFanoutReplayBound(t *testing.T) {
	f := NewFanout(2)
	for i := int64(1); i <= 5; i++ {
		f.Publish(Snapshot{Steps: i})
	}
	ch, cancel := f.Subscribe()
	defer cancel()
	if got := <-ch; got.Steps != 4 {
		t.Errorf("first replayed snapshot: steps %d, want 4 (history bounded to 2)", got.Steps)
	}
	if got := <-ch; got.Steps != 5 {
		t.Errorf("second replayed snapshot: steps %d, want 5", got.Steps)
	}
}

func TestFanoutCloseEndsSubscribers(t *testing.T) {
	f := NewFanout(4)
	ch, cancel := f.Subscribe()
	defer cancel()
	f.Publish(Snapshot{Steps: 1})
	f.Close()
	f.Publish(Snapshot{Steps: 2}) // dropped: closed

	var got []int64
	for s := range ch {
		got = append(got, s.Steps)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("drained %v, want just the pre-close snapshot [1]", got)
	}

	// Late subscribers still see history, then an immediately-closed
	// channel.
	late, lateCancel := f.Subscribe()
	defer lateCancel()
	if s, ok := <-late; !ok || s.Steps != 1 {
		t.Errorf("late subscriber history: %v %v", s, ok)
	}
	if _, ok := <-late; ok {
		t.Error("late subscriber channel not closed after history")
	}
}

func TestFanoutSlowSubscriberNeverBlocksPublisher(t *testing.T) {
	f := NewFanout(1)
	ch, cancel := f.Subscribe()
	defer cancel()
	const n = fanoutBuffer + 40
	for i := int64(1); i <= n; i++ {
		f.Publish(Snapshot{Steps: i}) // must not block despite no reader
	}
	f.Close()
	var got []int64
	for s := range ch {
		got = append(got, s.Steps)
	}
	if len(got) == 0 || len(got) > fanoutBuffer {
		t.Fatalf("slow subscriber drained %d snapshots, want 1..%d", len(got), fanoutBuffer)
	}
	if last := got[len(got)-1]; last != n {
		t.Errorf("drop-oldest should keep the newest snapshot: last is %d, want %d", last, n)
	}
}

func TestFanoutStatsCountDrops(t *testing.T) {
	f := NewFanout(1)
	_, cancelSlow := f.Subscribe() // never reads: capacity fanoutBuffer
	const n = fanoutBuffer + 25
	for i := int64(1); i <= n; i++ {
		f.Publish(Snapshot{Steps: i})
	}
	st := f.Stats()
	if st.Subscribers != 1 {
		t.Errorf("subscribers = %d, want 1", st.Subscribers)
	}
	// The slow subscriber's buffer holds fanoutBuffer snapshots (its
	// replay share was empty at Subscribe time); everything beyond that
	// displaced an older pending snapshot.
	if want := int64(n - fanoutBuffer); st.DroppedTotal != want {
		t.Errorf("droppedTotal = %d, want %d", st.DroppedTotal, want)
	}
	if len(st.Dropped) != 1 || st.Dropped[0] != st.DroppedTotal {
		t.Errorf("per-subscriber drops %v, want one entry equal to total %d", st.Dropped, st.DroppedTotal)
	}

	// The total survives the subscriber leaving.
	cancelSlow()
	st = f.Stats()
	if st.Subscribers != 0 || st.DroppedTotal != int64(n-fanoutBuffer) {
		t.Errorf("stats after unsubscribe: %+v", st)
	}
	if len(st.Dropped) != 0 {
		t.Errorf("departed subscriber still listed: %v", st.Dropped)
	}
}

func TestFanoutHistory(t *testing.T) {
	f := NewFanout(3)
	for i := int64(1); i <= 5; i++ {
		f.Publish(Snapshot{Steps: i})
	}
	f.Close()
	hist := f.History()
	if len(hist) != 3 || hist[0].Steps != 3 || hist[2].Steps != 5 {
		t.Errorf("history after close: %v, want steps 3..5", hist)
	}
}
