package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGaugeVecs(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("jobs_total", "jobs by state", "state")
	jobs.With("done").Inc()
	jobs.With("done").Add(2)
	jobs.With("failed").Inc()
	if got := jobs.With("done").Value(); got != 3 {
		t.Errorf("done counter = %d, want 3", got)
	}
	if got := jobs.With("failed").Value(); got != 1 {
		t.Errorf("failed counter = %d, want 1", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.With().Set(7)
	g.With().Add(-2)
	if got := g.With().Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestCounterVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("With with wrong arity did not panic")
		}
	}()
	c.With("only-one")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family registration did not panic")
		}
	}()
	r.Gauge("dup_total", "second")
}

func TestHistogramBucketsAndStats(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	// le=0.01 is inclusive: 0.005 and 0.01 land there.
	want := []uint64{2, 3, 4, 5}
	for i, c := range cum {
		if c != want[i] {
			t.Errorf("cumulative bucket %d = %d, want %d (all: %v)", i, c, want[i], cum)
		}
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if math.Abs(sum-5.565) > 1e-12 {
		t.Errorf("sum = %v, want 5.565", sum)
	}
	st := h.Stats()
	if st.Count != 5 || st.Max != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.P50 != 0.05 {
		t.Errorf("p50 = %v, want 0.05", st.P50)
	}
	if st.P99 != 0.5 {
		t.Errorf("p99 = %v, want 0.5 (floor-indexed over 5 samples)", st.P99)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	jobs := r.Counter("accmos_jobs_total", "Jobs by terminal state.", "state")
	jobs.With("done").Add(4)
	jobs.With("failed").Inc()
	r.GaugeFunc("accmos_queue_depth", "Jobs admitted but not running.", func() float64 { return 3 })
	ph := r.Histogram("accmos_phase_seconds", "Phase latency.", []float64{0.5, 1}, "phase")
	ph.With("compile").Observe(0.25)
	ph.With("compile").Observe(2)
	empty := r.Counter("accmos_rejected_total", "Never incremented; header must still print.")
	_ = empty

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP accmos_jobs_total Jobs by terminal state.
# TYPE accmos_jobs_total counter
accmos_jobs_total{state="done"} 4
accmos_jobs_total{state="failed"} 1
# HELP accmos_queue_depth Jobs admitted but not running.
# TYPE accmos_queue_depth gauge
accmos_queue_depth 3
# HELP accmos_phase_seconds Phase latency.
# TYPE accmos_phase_seconds histogram
accmos_phase_seconds_bucket{phase="compile",le="0.5"} 1
accmos_phase_seconds_bucket{phase="compile",le="1"} 1
accmos_phase_seconds_bucket{phase="compile",le="+Inf"} 2
accmos_phase_seconds_sum{phase="compile"} 2.25
accmos_phase_seconds_count{phase="compile"} 2
# HELP accmos_rejected_total Never incremented; header must still print.
# TYPE accmos_rejected_total counter
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("esc_total", `help with \ and
newline`, "name")
	c.With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `# HELP esc_total help with \\ and\nnewline`) {
		t.Errorf("HELP not escaped:\n%s", got)
	}
	if !strings.Contains(got, `esc_total{name="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", got)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "concurrent", "worker")
	h := r.Histogram("conc_seconds", "concurrent", nil, "worker")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.With(id).Inc()
				h.With(id).Observe(float64(j) / 1000)
			}
		}(string(rune('a' + i)))
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := int64(0)
	for i := 0; i < 8; i++ {
		total += c.With(string(rune('a' + i))).Value()
	}
	if total != 8*500 {
		t.Errorf("total = %d, want %d", total, 8*500)
	}
}

func TestTracerCorrPropagates(t *testing.T) {
	tr := NewTracer()
	tr.SetCorr("j-000042")
	tr.Start("phase").End()
	trace := tr.Trace()
	if trace.Corr != "j-000042" {
		t.Errorf("trace corr %q, want j-000042", trace.Corr)
	}
	var nilTr *Tracer
	nilTr.SetCorr("x") // must not panic
	if nilTr.Corr() != "" {
		t.Error("nil tracer corr not empty")
	}
}

func TestNewRunIDShape(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if !strings.HasPrefix(a, "r-") || len(a) != 14 {
		t.Errorf("run id %q has unexpected shape", a)
	}
	if a == b {
		t.Errorf("two run ids collided: %q", a)
	}
}
