package codegen_test

import (
	"go/parser"
	"go/token"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/codegen"
	"accmos/internal/diagnose"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// TestGeneratedSourceParsesForAllBenchmarks parses (go/parser) the program
// generated for every benchmark model with every feature enabled — a fast,
// compiler-free syntactic gate over the full template surface.
func TestGeneratedSourceParsesForAllBenchmarks(t *testing.T) {
	for _, name := range benchmodels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := actors.Compile(benchmodels.MustBuild(name))
			if err != nil {
				t.Fatal(err)
			}
			// Pick a monitorable scalar actor and a custom-checkable one.
			var mon []string
			var customs []diagnose.CustomCheck
			for _, info := range c.Order {
				if len(info.Actor.Outputs) == 1 && info.OutWidth() == 1 {
					mon = []string{info.Actor.Name}
					customs = []diagnose.CustomCheck{{
						Actor: info.Actor.Name, Name: "probe",
						Kind: diagnose.RangeCheck, Lo: -1e9, Hi: 1e9,
					}}
					break
				}
			}
			prog, err := codegen.Generate(c, codegen.Options{
				Coverage:   true,
				Diagnose:   true,
				Monitor:    mon,
				Custom:     customs,
				StopOnDiag: diagnose.WrapOnOverflow,
				TestCases:  testcase.NewRandomSet(len(c.Inports), 1, -10, 10),
			})
			if err != nil {
				t.Fatal(err)
			}
			fset := token.NewFileSet()
			if _, err := parser.ParseFile(fset, "main.go", prog.Source, 0); err != nil {
				t.Fatalf("generated source does not parse: %v", err)
			}
		})
	}
}

// TestGenerateOptionValidation pins the generator's input checks.
func TestGenerateOptionValidation(t *testing.T) {
	c, err := actors.Compile(benchmodels.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	set := testcase.NewRandomSet(len(c.Inports), 1, -1, 1)

	if _, err := codegen.Generate(c, codegen.Options{
		TestCases: set,
		Monitor:   []string{"NoSuchActor"},
	}); err == nil {
		t.Error("unknown monitor actor must fail")
	}
	if _, err := codegen.Generate(c, codegen.Options{
		TestCases: set,
		Custom: []diagnose.CustomCheck{{
			Actor: "Sum", Name: "cb", Kind: diagnose.CallbackCheck,
			Callback: func(int64, types.Value) (bool, string) { return false, "" },
		}},
	}); err == nil {
		t.Error("callback custom check is interpreter-only and must fail in codegen")
	}
	if _, err := codegen.Generate(c, codegen.Options{
		TestCases: set,
		Custom: []diagnose.CustomCheck{{
			Actor: "NoSuch", Name: "r", Kind: diagnose.RangeCheck,
		}},
	}); err == nil {
		t.Error("unknown custom-check actor must fail")
	}
}
