package codegen

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"accmos/internal/actors"
)

// Pipelined step-body emission. A partitioned build slices the schedule
// into contiguous stages (internal/opt/partition) and emits one step
// function per stage over a pipeChunk-step frame: stage p binds the
// cross-partition signals earlier stages produced from the frame, runs
// its statement block and end-of-step updates verbatim, and writes the
// signals later stages consume back into the frame. Because stages are
// contiguous schedule segments, concatenating the stage streams
// reproduces the sequential step body exactly — modelExe drives the
// singleton seqFrame through every stage in order, which is what batch
// lanes and serve requests call, while the pipelined runSim flows ring
// frames through one goroutine per stage.

var (
	reSigVar   = regexp.MustCompile(`\bv\d+_\d+\b`)
	reTCVar    = regexp.MustCompile(`\btcIn(\d+)\b`)
	reDiagFn   = regexp.MustCompile(`^func (diagnose_\w+)\(`)
	reDiagCall = regexp.MustCompile(`\bdiagnose_\w+\(`)
	reDiagSite = regexp.MustCompile(`reportDiag\((\d+),`)
)

// pipeChunk is the steps-per-frame granularity of the pipeline: large
// enough to amortize one channel handoff over many steps, small enough
// that budget checks and heartbeats stay responsive. pipeDepth bounds
// frames in flight (ring-allocated; exactly one goroutine owns a frame
// at any moment, so frame state needs no locks).
const pipeChunkSteps = 64
const pipeDepthFrames = 4

// stageText is the assembled source of one pipeline stage.
type stageText struct {
	body    string   // instrumented statement stream (schedule segment)
	updates []string // this stage's end-of-step state commits
	hash    string   // output-hash folds (final stage only)

	declared []string        // signal vars declared here, emission order
	consumed map[string]bool // cross-partition vars read here
	tcUsed   map[int]bool    // stimulus inputs read here
}

// emitPartitioned renders the partitioned model system: the pframe type,
// fillStimulus, one partStep function per stage, the stage dispatcher,
// the frame-composing modelExe, the diag call-site order table and
// mergeDiags. The caller has already routed instrumentation into
// g.partBodies/g.updateParts.
func (g *Generator) emitPartitioned(sb *strings.Builder, tcExprs []string) error {
	stages, err := g.buildStages(tcExprs)
	if err != nil {
		return err
	}
	declStage, declType := g.declTable()

	// Cross-partition signals: used in a stage after the one declaring
	// them. The frame carries one lane array per shipped signal.
	shipped := map[string]bool{}
	for p, st := range stages {
		for v := range st.consumed {
			owner, ok := declStage[v]
			if !ok {
				return fmt.Errorf("codegen: partition stage %d references unknown signal %s", p, v)
			}
			if owner > p {
				return fmt.Errorf("codegen: partition stage %d references signal %s of later stage %d (illegal cut)", p, v, owner)
			}
			shipped[v] = true
		}
	}
	shipList := make([]string, 0, len(shipped))
	for v := range shipped {
		shipList = append(shipList, v)
	}
	sort.Slice(shipList, func(a, b int) bool {
		if declStage[shipList[a]] != declStage[shipList[b]] {
			return declStage[shipList[a]] < declStage[shipList[b]]
		}
		return shipList[a] < shipList[b]
	})

	// Frame type and ring.
	fmt.Fprintf(sb, `
// pframe is one pipeline frame: a pipeChunk-step slab of stimulus and
// cross-partition signal lanes. Frames flow stage 0 -> %d through SPSC
// channels and recycle through a free list; ownership transfers with the
// send, so no frame field is ever accessed concurrently.
const pipeChunk = %d
const pipeDepth = %d

type pframe struct {
	base int64
	n    int32
	last bool
`, g.parts-1, pipeChunkSteps, pipeDepthFrames)
	for i := range tcExprs {
		fmt.Fprintf(sb, "\ttc%d [pipeChunk]float64\n", i)
	}
	for _, v := range shipList {
		fmt.Fprintf(sb, "\tx_%s [pipeChunk]%s\n", v, declType[v])
	}
	sb.WriteString("}\n\nvar pipeRing [pipeDepth]pframe\nvar seqFrame pframe\n")

	// fillStimulus: the issuing goroutine computes the stimulus exprs, so
	// embedded RNG state advances exactly as the sequential loop would.
	sb.WriteString("\n// fillStimulus computes the test-case stimulus for every step in f\n// on the issuing goroutine (RNG state stays single-owner).\nfunc fillStimulus(f *pframe) {\n")
	sb.WriteString("\tfor fi := int32(0); fi < f.n; fi++ {\n")
	sb.WriteString("\t\tstep := f.base + int64(fi)\n")
	for i, expr := range tcExprs {
		fmt.Fprintf(sb, "\t\tf.tc%d[fi] = %s\n", i, expr)
	}
	sb.WriteString("\t\t_ = step\n\t}\n}\n")

	// Per-stage step functions.
	for p, st := range stages {
		fmt.Fprintf(sb, "\n// partStep%d steps pipeline stage %d (schedule segment %d) over f.\nfunc partStep%d(f *pframe) {\n", p, p, p, p)
		sb.WriteString("\tfor fi := int32(0); fi < f.n; fi++ {\n")
		sb.WriteString("\t\tstep := f.base + int64(fi)\n")
		for i := range tcExprs {
			if st.tcUsed[i] {
				fmt.Fprintf(sb, "\t\ttcIn%d := f.tc%d[fi]\n", i, i)
			}
		}
		binds := make([]string, 0, len(st.consumed))
		for v := range st.consumed {
			binds = append(binds, v)
		}
		sort.Strings(binds)
		for _, v := range binds {
			fmt.Fprintf(sb, "\t\t%s := f.x_%s[fi]\n", v, v)
		}
		writeIndented(sb, st.body)
		sb.WriteString("\t\t// end-of-step state updates\n")
		for _, stmt := range st.updates {
			fmt.Fprintf(sb, "\t\t%s\n", stmt)
		}
		if st.hash != "" {
			sb.WriteString("\t\t// fold root outputs into the equivalence hash\n")
			writeIndented(sb, st.hash)
		}
		produced := 0
		for _, v := range shipList {
			if declStage[v] == p {
				if produced == 0 {
					sb.WriteString("\t\t// ship signals later stages consume\n")
				}
				produced++
				fmt.Fprintf(sb, "\t\tf.x_%s[fi] = %s\n", v, v)
			}
		}
		sb.WriteString("\t\t// silence signals consumed only by position\n")
		sb.WriteString("\t\t_ = step\n")
		for _, v := range st.declared {
			fmt.Fprintf(sb, "\t\t_ = %s\n", v)
		}
		sb.WriteString("\t}\n}\n")
	}

	// Dispatcher for the pipelined runSim workers.
	sb.WriteString("\n// partStep dispatches one stage over a frame.\nfunc partStep(p int, f *pframe) {\n\tswitch p {\n")
	for p := range stages {
		fmt.Fprintf(sb, "\tcase %d:\n\t\tpartStep%d(f)\n", p, p)
	}
	sb.WriteString("\t}\n}\n")

	// modelExe: sequential composition over the singleton frame.
	sb.WriteString("\n// modelExe executes one simulation step by driving the singleton\n// frame through every pipeline stage in schedule order — the stage\n// concatenation is exactly the sequential step body, so batch lanes and\n// serve requests compose with partitioned builds unchanged.\n")
	sb.WriteString("func modelExe(step int64")
	for i := range tcExprs {
		fmt.Fprintf(sb, ", tcIn%d float64", i)
	}
	sb.WriteString(") {\n\tf := &seqFrame\n\tf.base, f.n, f.last = step, 1, false\n")
	for i := range tcExprs {
		fmt.Fprintf(sb, "\tf.tc%d[0] = tcIn%d\n", i, i)
	}
	for p := range stages {
		fmt.Fprintf(sb, "\tpartStep%d(f)\n", p)
	}
	sb.WriteString("}\n")

	g.emitMergeDiags(sb, stages)
	return nil
}

// buildStages assembles each stage's body, updates, hash section and the
// signal/stimulus reference sets driving frame layout.
func (g *Generator) buildStages(tcExprs []string) ([]*stageText, error) {
	stages := make([]*stageText, g.parts)
	for p := range stages {
		stages[p] = &stageText{
			body:     g.partBodies[p].String(),
			consumed: map[string]bool{},
			tcUsed:   map[int]bool{},
		}
	}
	for i, stmt := range g.updates {
		p := g.updateParts[i]
		stages[p].updates = append(stages[p].updates, stmt)
	}
	var hash strings.Builder
	for _, op := range g.c.Outports {
		expr, ok := g.outBindings[op.Actor.Name]
		if !ok {
			return nil, fmt.Errorf("codegen: outport %s was not bound", op.Actor.Name)
		}
		g.emitHash(&hash, expr, op.InKinds[0], op.InWidths[0])
	}
	stages[g.parts-1].hash = hash.String()

	declStage, _ := g.declTable()
	for p, st := range stages {
		text := st.body + "\n" + strings.Join(st.updates, "\n") + "\n" + st.hash
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(strings.TrimLeft(line, "\t "), "//") {
				continue // instrumentation comments can embed actor paths
			}
			for _, v := range reSigVar.FindAllString(line, -1) {
				if owner, ok := declStage[v]; ok && owner != p {
					st.consumed[v] = true
				}
			}
			for _, m := range reTCVar.FindAllStringSubmatch(line, -1) {
				idx, err := strconv.Atoi(m[1])
				if err == nil && idx < len(tcExprs) {
					st.tcUsed[idx] = true
				}
			}
		}
	}

	// Declared-var silencing list, mirroring the sequential emission.
	for i, info := range g.c.Order {
		p := g.partAssign[i]
		if g.opts.Plan != nil && g.opts.Plan.Inlined[info.Actor.Name] {
			continue // fused actors declare no variable
		}
		for port := range info.Actor.Outputs {
			stages[p].declared = append(stages[p].declared, g.varName(info, port))
		}
	}
	return stages, nil
}

// declTable maps every signal variable to its declaring stage and Go
// storage type (the O2 plan can narrow a root's storage).
func (g *Generator) declTable() (map[string]int, map[string]string) {
	declStage := map[string]int{}
	declType := map[string]string{}
	for i, info := range g.c.Order {
		p := g.partAssign[i]
		if g.opts.Plan != nil {
			if g.opts.Plan.Inlined[info.Actor.Name] {
				continue
			}
			if root := g.opts.Plan.Roots[info.Actor.Name]; root != nil {
				v := g.varName(info, 0)
				declStage[v] = p
				declType[v] = actors.GoVarType(root.Store, root.Width)
				continue
			}
		}
		for port := range info.Actor.Outputs {
			v := g.varName(info, port)
			declStage[v] = p
			declType[v] = actors.GoVarType(info.OutKinds[port], info.OutWidths[port])
		}
	}
	return declStage, declType
}

// writeIndented re-emits a statement stream one tab deeper (stage bodies
// were instrumented at modelExe depth; partStep loops sit one deeper).
func writeIndented(sb *strings.Builder, text string) {
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		sb.WriteString("\t")
		sb.WriteString(line)
		sb.WriteString("\n")
	}
}

// emitMergeDiags renders the call-site order table and the merge that
// reconstructs the sequential diagnosis stream from per-slot buffers.
func (g *Generator) emitMergeDiags(sb *strings.Builder, stages []*stageText) {
	m := len(g.diagNames)
	pos := g.diagSitePositions(stages)
	fmt.Fprintf(sb, "\n// diagPos orders diagnosis call sites as the sequential step body\n// visits them (bodies in schedule order, then state updates).\nvar diagPos = [%d]int32{", m)
	for i, p := range pos {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%d", p)
	}
	sb.WriteString("}\n")
	sb.WriteString(`
// mergeDiags folds the per-slot partition-local buffers back into the
// sequential diagnosis stream: records sort by (step, call-site order)
// — exactly the order a sequential run appends them — and the global
// first-maxDiagRecords window is a subset of the per-slot windows, so
// the truncated merge is bit-identical to a sequential run. diagTotal
// is the sum of the per-slot counters. Idempotent.
func mergeDiags() {
	total := int64(0)
	for i := range diagCounts {
		total += diagCounts[i]
	}
	diagTotal = total
	type taggedRec struct {
		rec diagRecord
		pos int32
	}
	var all []taggedRec
	for i := range diagBuf {
		for _, r := range diagBuf[i] {
			all = append(all, taggedRec{rec: r, pos: diagPos[i]})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].rec.Step != all[b].rec.Step {
			return all[a].rec.Step < all[b].rec.Step
		}
		return all[a].pos < all[b].pos
	})
	if len(all) > maxDiagRecords {
		all = all[:maxDiagRecords]
	}
	diagRecords = diagRecords[:0]
	for _, t := range all {
		diagRecords = append(diagRecords, t.rec)
	}
}
`)
}

// diagSitePositions scans the assembled sequential statement stream
// (stage bodies in order, then updates) for diagnosis call sites: direct
// reportDiag statements (custom checks, stateful update-site rules) and
// diagnose_* function calls, whose slots come from the generated
// function text in reportDiag-appearance order.
func (g *Generator) diagSitePositions(stages []*stageText) []int32 {
	m := len(g.diagNames)
	pos := make([]int32, m)
	for i := range pos {
		pos[i] = -1
	}
	fnSlots := g.diagFuncSlots()
	counter := int32(0)
	place := func(slot int) {
		if slot >= 0 && slot < m && pos[slot] < 0 {
			pos[slot] = counter
		}
		counter++
	}
	scan := func(text string) {
		for _, line := range strings.Split(text, "\n") {
			for _, s := range reDiagSite.FindAllStringSubmatch(line, -1) {
				slot, err := strconv.Atoi(s[1])
				if err == nil {
					place(slot)
				}
			}
			for _, call := range reDiagCall.FindAllString(line, -1) {
				name := strings.TrimSuffix(call, "(")
				for _, slot := range fnSlots[name] {
					place(slot)
				}
			}
		}
	}
	for _, st := range stages {
		scan(st.body)
	}
	for _, st := range stages {
		scan(strings.Join(st.updates, "\n"))
	}
	// Slots with no scanned site (defensive) order after all real sites.
	for i := range pos {
		if pos[i] < 0 {
			pos[i] = counter
			counter++
		}
	}
	return pos
}

// diagFuncSlots maps each generated diagnose_* function to the slots it
// reports, in appearance order.
func (g *Generator) diagFuncSlots() map[string][]int {
	out := map[string][]int{}
	cur := ""
	for _, line := range strings.Split(g.diagFuncs.String(), "\n") {
		if mm := reDiagFn.FindStringSubmatch(line); mm != nil {
			cur = mm[1]
			continue
		}
		if cur == "" {
			continue
		}
		for _, s := range reDiagSite.FindAllStringSubmatch(line, -1) {
			if slot, err := strconv.Atoi(s[1]); err == nil {
				out[cur] = append(out[cur], slot)
			}
		}
	}
	return out
}

// emitRunSimPipelined renders the partitioned runSim: the main goroutine
// fills stimulus chunks and steps stage 0, one worker goroutine steps
// each later stage, and frames hand off through buffered SPSC channels.
// The signature matches the sequential runSim, so main() and serveLoop
// are oblivious to partitioning.
func (g *Generator) emitRunSimPipelined(sb *strings.Builder, tcExprs []string) {
	_ = tcExprs
	sb.WriteString(`
// runSim (pipelined build) drives the simulation through partitionCount
// pipeline stages. A step counts as executed only when the final stage
// finishes it; budget checks run once per chunk on the issuing
// goroutine. Exactly one goroutine owns a frame at any moment (SPSC
// handoff + free-list recycling), so stage-private state, index-disjoint
// coverage bytes and per-slot diag/monitor buffers never race; the final
// stage alone folds the output hash. Mid-run heartbeats come from the
// final stage (emitHeartbeatPartial, no shared-state scan); the final
// heartbeat and all result reads happen after the join.
func runSim(steps, budgetMS int64, hbEvery time.Duration, runID string) (int64, time.Duration) {
	hbEnabled := hbEvery > 0
	start := time.Now()
	hbNext := start.Add(hbEvery)
	free := make(chan *pframe, pipeDepth)
	for i := range pipeRing {
		free <- &pipeRing[i]
	}
	var stageCh [partitionCount - 1]chan *pframe
	for i := range stageCh {
		stageCh[i] = make(chan *pframe, pipeDepth)
	}
	finalSteps := int64(0)
	var wg sync.WaitGroup
	for p := 1; p < partitionCount; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			last := p == partitionCount-1
			for f := range stageCh[p-1] {
				partStep(p, f)
				done := f.last
				if !last {
					stageCh[p] <- f
				} else {
					if f.n > 0 {
						finalSteps = f.base + int64(f.n)
					}
					if hbEnabled {
						if now := time.Now(); !now.Before(hbNext) {
							emitHeartbeatPartial(runID, finalSteps, now.Sub(start))
							hbNext = now.Add(hbEvery)
						}
					}
					free <- f
				}
				if done {
					return
				}
			}
		}(p)
	}
	var budget time.Duration
	if budgetMS > 0 {
		budget = time.Duration(budgetMS) * time.Millisecond
	}
	for base := int64(0); steps > 0 || budget > 0; base += pipeChunk {
		if steps > 0 && base >= steps {
			break
		}
		if budget > 0 && time.Since(start) >= budget {
			break
		}
		n := int64(pipeChunk)
		if steps > 0 && base+n > steps {
			n = steps - base
		}
		f := <-free
		f.base, f.n, f.last = base, int32(n), false
		fillStimulus(f)
		partStep(0, f)
		stageCh[0] <- f
	}
	fin := <-free
	fin.base, fin.n, fin.last = 0, 0, true
	stageCh[0] <- fin
	wg.Wait()
	elapsed := time.Since(start)
	if hbEnabled {
		emitHeartbeat(runID, finalSteps, elapsed, true)
	}
	return finalSteps, elapsed
}
`)
}
