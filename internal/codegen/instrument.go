package codegen

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"accmos/internal/actors"
	"accmos/internal/diagnose"
	"accmos/internal/opt/irplan"
	"accmos/internal/types"
)

// instrumentActors is the paper's Algorithm 1: traverse actors in
// execution order, generate each actor's code from its template, then
// attach actor coverage, condition coverage (branch actors), decision
// coverage (boolean logic), MC/DC (combination conditions), the signal
// collect call, and the diagnosis function call — generating the
// diagnosis implementation alongside.
func (g *Generator) instrumentActors() error {
	for i, info := range g.c.Order {
		if g.parts > 1 {
			// Route this actor's statements and state updates into its
			// pipeline stage. Stages are contiguous schedule segments, so
			// concatenating the stage streams reproduces the sequential body.
			g.curPart = g.partAssign[i]
			g.body = g.partBodies[g.curPart]
		}
		if err := g.instrumentActor(info); err != nil {
			return fmt.Errorf("actor %s (%s): %w", info.Actor.Name, info.Actor.Type, err)
		}
	}
	return nil
}

func (g *Generator) instrumentActor(info *actors.Info) error {
	// O2: actors the plan fused or materialized as fused expressions
	// bypass the template path entirely.
	if p := g.opts.Plan; p != nil {
		if p.Inlined[info.Actor.Name] {
			return g.instrumentFused(info)
		}
		if root := p.Roots[info.Actor.Name]; root != nil {
			return g.instrumentRoot(info, root)
		}
	}
	// Declare output variables. Declarations stay outside any enable
	// gate: a disabled actor's outputs are the type's zero values.
	for p := range info.Actor.Outputs {
		name := g.varName(info, p)
		g.outVar[info.Actor.Name] = append(g.outVar[info.Actor.Name], name)
		fmt.Fprintf(g.body, "\tvar %s %s\n", name, actors.GoVarType(info.OutKinds[p], info.OutWidths[p]))
	}

	// Conditional execution: the actor's entire instrumented body runs
	// under its enable signal; end-of-step state updates are gated too.
	prevGate := g.gateCond
	prevBody := g.body
	if info.Gated() {
		enInfo := g.c.Info(info.EnabledBy.Actor)
		enVar := g.varName(enInfo, info.EnabledBy.Port)
		g.gateCond = actors.TruthExpr(enVar, enInfo.OutKinds[info.EnabledBy.Port])
		g.body = &strings.Builder{}
	}

	// Resolve input expressions (driver output variables).
	inExprs := make([]string, info.NumIn())
	for p, src := range info.InSrc {
		drv := g.c.Info(src.Actor)
		inExprs[p] = g.varName(drv, src.Port)
	}

	// Generate the actor's computation (genCodeFromTemp).
	gc := &actors.GenCtx{
		Info:       info,
		In:         inExprs,
		Out:        g.outVar[info.Actor.Name],
		CoverageOn: g.opts.Coverage,
		CondBase:   g.layout.CondBase(info.Actor.Name),
		DecBase:    g.layout.DecBase(info.Actor.Name),
		MCDCBase:   g.layout.MCDCBase(info.Actor.Name),
		Prog:       g,
	}
	fmt.Fprintf(g.body, "\t// -- %s (%s %s)\n", info.Path, info.Actor.Type, info.Operator)
	if err := info.Spec.Gen(gc); err != nil {
		return err
	}
	g.body.WriteString(gc.Body())

	// Actor coverage at the end of the actor's code.
	if g.opts.Coverage {
		fmt.Fprintf(g.body, "\tactorBitmap[%d] = 1\n", g.layout.ActorIndex[info.Actor.Name])
	}

	// Signal collect call (collectList).
	for slot, name := range g.monSlots {
		if name == info.Actor.Name {
			g.emitMonitorCall(info, slot)
		}
	}

	// Diagnosis function call + implementation (diagnoseList).
	if rules := g.rules[info.Actor.Name]; len(rules) > 0 {
		if err := g.emitDiagnose(info, rules, inExprs); err != nil {
			return err
		}
	}

	// Custom signal diagnoses on this actor's output.
	for ci := range g.opts.Custom {
		chk := &g.opts.Custom[ci]
		if chk.Actor == info.Actor.Name {
			g.emitCustomCheck(info, chk)
		}
	}

	// Close the enable gate: indent the gated body one level inside the
	// enable condition and restore the surrounding stream.
	if info.Gated() {
		gated := g.body.String()
		g.body = prevBody
		fmt.Fprintf(g.body, "\tif %s {\n", g.gateCond)
		for _, line := range strings.Split(strings.TrimRight(gated, "\n"), "\n") {
			g.body.WriteString("\t" + line + "\n")
		}
		g.body.WriteString("\t}\n")
	}
	g.gateCond = prevGate
	return nil
}

// instrumentFused emits an actor whose expression the O2 planner inlined
// into its single consumer: no variable, no statement — only the actor
// coverage mark at the actor's own schedule position, so the bitmap's
// end-of-step state is identical to an O0 run (the bit is monotone and
// the fused consumer evaluates the same expression later this step).
func (g *Generator) instrumentFused(info *actors.Info) error {
	fmt.Fprintf(g.body, "\t// -- %s (%s %s) [fused into consumer]\n",
		info.Path, info.Actor.Type, info.Operator)
	if g.opts.Coverage {
		fmt.Fprintf(g.body, "\tactorBitmap[%d] = 1\n", g.layout.ActorIndex[info.Actor.Name])
	}
	return nil
}

// instrumentRoot emits a materialized O2 root: one variable declared in
// the (possibly narrowed) storage kind, assigned from the fused
// expression, followed by the same actor-coverage / monitor / custom
// instrumentation the template path would attach. Lowered actors are
// never gated and never carry diagnosis rules or decision coverage, so
// those hooks cannot apply here.
func (g *Generator) instrumentRoot(info *actors.Info, root *irplan.Root) error {
	name := g.varName(info, 0)
	g.outVar[info.Actor.Name] = append(g.outVar[info.Actor.Name], name)
	fmt.Fprintf(g.body, "\tvar %s %s\n", name, actors.GoVarType(root.Store, root.Width))

	tag := "fused expr"
	if root.Store != root.Kind {
		tag = fmt.Sprintf("fused expr, %s stored as %s", root.Kind, root.Store)
	}
	fmt.Fprintf(g.body, "\t// -- %s (%s %s) [%s]\n", info.Path, info.Actor.Type, info.Operator, tag)
	for _, line := range g.emitter.RootAssign(root) {
		g.body.WriteString("\t" + line + "\n")
	}

	if g.opts.Coverage {
		fmt.Fprintf(g.body, "\tactorBitmap[%d] = 1\n", g.layout.ActorIndex[info.Actor.Name])
	}
	for slot, mon := range g.monSlots {
		if mon == info.Actor.Name {
			g.emitMonitorCall(info, slot)
		}
	}
	for ci := range g.opts.Custom {
		chk := &g.opts.Custom[ci]
		if chk.Actor == info.Actor.Name {
			g.emitCustomCheck(info, chk)
		}
	}
	return nil
}

// emitMonitorCall emits the outputCollect instrumentation for one actor,
// formatting the value exactly as the interpreter's value printer does.
func (g *Generator) emitMonitorCall(info *actors.Info, slot int) {
	out := g.varName(info, 0)
	k := info.OutKind()
	var fmtd string
	if info.OutWidth() > 1 {
		switch {
		case k == types.Bool:
			fmtd = fmt.Sprintf("fmtVecB(%s[:])", out)
		case k.IsSigned():
			fmtd = fmt.Sprintf("fmtVecI(%s[:])", out)
		case k.IsUnsigned():
			fmtd = fmt.Sprintf("fmtVecU(%s[:])", out)
		case k == types.F32:
			fmtd = fmt.Sprintf("fmtVecF32(%s[:])", out)
		default:
			fmtd = fmt.Sprintf("fmtVecF64(%s[:])", out)
		}
		fmt.Fprintf(g.body, "\toutputCollect(%d, step, %s)\n", slot, fmtd)
		return
	}
	switch {
	case k == types.Bool:
		fmtd = fmt.Sprintf("fmtBool(%s)", out)
	case k.IsSigned():
		fmtd = fmt.Sprintf("fmtI64(int64(%s))", out)
	case k.IsUnsigned():
		fmtd = fmt.Sprintf("fmtU64(uint64(%s))", out)
	case k == types.F32:
		fmtd = fmt.Sprintf("fmtF64(float64(%s))", out)
	default:
		fmtd = fmt.Sprintf("fmtF64(float64(%s))", out)
	}
	fmt.Fprintf(g.body, "\toutputCollect(%d, step, %s)\n", slot, fmtd)
}

// emitCustomCheck inlines a range or delta custom signal diagnosis.
func (g *Generator) emitCustomCheck(info *actors.Info, chk *diagnose.CustomCheck) {
	slot := g.DiagSlotFor(info.Actor.Name, diagnose.Custom)
	out := fmt.Sprintf("float64(%s)", g.varName(info, 0))
	if info.OutKind() == types.Bool {
		out = fmt.Sprintf("b2f(%s)", g.varName(info, 0))
	}
	switch chk.Kind {
	case diagnose.RangeCheck:
		fmt.Fprintf(g.body,
			"\tif %s < %s || %s > %s {\n\t\treportDiag(%d, step, fmt.Sprintf(\"%s: value %%g outside [%%g, %%g]\", %s, %s, %s))\n\t}\n",
			out, fLit(chk.Lo), out, fLit(chk.Hi), slot, chk.Name, out, fLit(chk.Lo), fLit(chk.Hi))
	case diagnose.DeltaCheck:
		prev := fmt.Sprintf("cc%d_prev", slot)
		seen := fmt.Sprintf("cc%d_seen", slot)
		g.Global(fmt.Sprintf("var %s float64", prev))
		g.Global(fmt.Sprintf("var %s bool", seen))
		g.Import("math")
		fmt.Fprintf(g.body,
			"\tif %s {\n\t\tif d := math.Abs(%s - %s); d > %s {\n\t\t\treportDiag(%d, step, fmt.Sprintf(\"%s: jump %%g exceeds %%g\", d, %s))\n\t\t}\n\t}\n\t%s = %s\n\t%s = true\n",
			seen, out, prev, fLit(chk.MaxDelta), slot, chk.Name, fLit(chk.MaxDelta), prev, out, seen)
	}
}

// fLit formats a float64 Go literal (exact round-trip).
func fLit(f float64) string {
	switch {
	case math.IsNaN(f):
		return "math.NaN()"
	case math.IsInf(f, 1):
		return "math.Inf(1)"
	case math.IsInf(f, -1):
		return "math.Inf(-1)"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
