package codegen_test

import (
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/diagnose"
	"accmos/internal/harness"
	"accmos/internal/interp"
	"accmos/internal/model"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// compile builds a model or fails the test.
func compile(t *testing.T, m *model.Model) *actors.Compiled {
	t.Helper()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runBoth runs the interpreter and the generated program with identical
// options and steps, returning both results.
func runBoth(t *testing.T, c *actors.Compiled, set *testcase.Set, steps int64,
	iopts interp.Options, gopts codegen.Options) (*simresult.Results, *simresult.Results) {
	t.Helper()
	e, err := interp.New(c, iopts)
	if err != nil {
		t.Fatal(err)
	}
	ir, err := e.Run(set, steps)
	if err != nil {
		t.Fatal(err)
	}
	gopts.TestCases = set
	p, err := codegen.Generate(c, gopts)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := harness.BuildAndRun(p, t.TempDir(), harness.RunOptions{Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	return ir, gr
}

// assertEquivalent checks the cross-engine oracle: identical steps, output
// hash, diagnosis aggregates, and coverage bitmaps.
func assertEquivalent(t *testing.T, ir, gr *simresult.Results) {
	t.Helper()
	if ir.Steps != gr.Steps {
		t.Errorf("steps: interp %d vs generated %d", ir.Steps, gr.Steps)
	}
	if ir.OutputHash != gr.OutputHash {
		t.Errorf("output hash: interp %x vs generated %x", ir.OutputHash, gr.OutputHash)
	}
	if ir.DiagTotal != gr.DiagTotal {
		t.Errorf("diag total: interp %d vs generated %d", ir.DiagTotal, gr.DiagTotal)
	}
	for k, v := range ir.DiagCounts {
		if gr.DiagCounts[k] != v {
			t.Errorf("diag count %q: interp %d vs generated %d", k, v, gr.DiagCounts[k])
		}
	}
	for k := range gr.DiagCounts {
		if _, ok := ir.DiagCounts[k]; !ok {
			t.Errorf("generated-only diagnosis %q x%d", k, gr.DiagCounts[k])
		}
	}
	for k, v := range ir.FirstDetect {
		if gr.FirstDetect[k] != v {
			t.Errorf("first detect %q: interp %d vs generated %d", k, v, gr.FirstDetect[k])
		}
	}
	if (ir.Coverage == nil) != (gr.Coverage == nil) {
		t.Fatalf("coverage presence differs: interp %v generated %v", ir.Coverage != nil, gr.Coverage != nil)
	}
	if ir.Coverage != nil {
		cmp := func(name string, a, b []byte) {
			if len(a) != len(b) {
				t.Errorf("%s bitmap length: %d vs %d", name, len(a), len(b))
				return
			}
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%s bitmap bit %d: interp %d vs generated %d", name, i, a[i], b[i])
				}
			}
		}
		cmp("actor", ir.Coverage.Actor, gr.Coverage.Actor)
		cmp("cond", ir.Coverage.Cond, gr.Coverage.Cond)
		cmp("dec", ir.Coverage.Dec, gr.Coverage.Dec)
		cmp("mcdc", ir.Coverage.MCDC, gr.Coverage.MCDC)
	}
}

func accumulatorModel(t *testing.T) *actors.Compiled {
	t.Helper()
	return compile(t, model.NewBuilder("FIG1").
		Add("InA", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("InB", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "2")).
		Add("AccA", "Sum", 2, 1, model.WithOperator("++")).
		Add("DelayA", "UnitDelay", 1, 1).
		Add("AccB", "Sum", 2, 1, model.WithOperator("++")).
		Add("DelayB", "UnitDelay", 1, 1).
		Add("Total", "Sum", 2, 1, model.WithOperator("++")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("InA", "AccA", 0).
		Wire("DelayA", "AccA", 1).
		Wire("AccA", "DelayA", 0).
		Wire("InB", "AccB", 0).
		Wire("DelayB", "AccB", 1).
		Wire("AccB", "DelayB", 0).
		Wire("AccA", "Total", 0).
		Wire("AccB", "Total", 1).
		Wire("Total", "Out", 0).
		MustBuild())
}

func TestGeneratedMatchesInterpAccumulator(t *testing.T) {
	c := accumulatorModel(t)
	// Positive-biased inputs: the accumulators drift to ~5e9 over 5000
	// steps, well past the int32 limit, so overflow diagnostics fire.
	set := testcase.NewRandomSet(2, 7, 5e5, 1.5e6)
	ir, gr := runBoth(t, c, set, 5000,
		interp.Options{Coverage: true, Diagnose: true},
		codegen.Options{Coverage: true, Diagnose: true})
	assertEquivalent(t, ir, gr)
	if ir.DiagTotal == 0 {
		t.Error("expected overflow diagnostics in this workload")
	}
}

func TestGeneratedStopOnDiag(t *testing.T) {
	c := accumulatorModel(t)
	set := &testcase.Set{Sources: []testcase.Source{
		{Kind: testcase.Const, Value: 1e6},
		{Kind: testcase.Const, Value: 1e6},
	}}
	ir, gr := runBoth(t, c, set, 1_000_000,
		interp.Options{Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow},
		codegen.Options{Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow})
	assertEquivalent(t, ir, gr)
	if gr.Steps > 1200 {
		t.Errorf("generated program ran %d steps; expected early stop near 1074", gr.Steps)
	}
}

func TestGenerateRequiresTestCases(t *testing.T) {
	c := accumulatorModel(t)
	if _, err := codegen.Generate(c, codegen.Options{}); err == nil {
		t.Fatal("missing TestCases must fail")
	}
	if _, err := codegen.Generate(c, codegen.Options{TestCases: &testcase.Set{}}); err == nil {
		t.Fatal("source/inport mismatch must fail")
	}
}

func TestGeneratedSourceShape(t *testing.T) {
	c := accumulatorModel(t)
	p, err := codegen.Generate(c, codegen.Options{
		Coverage: true, Diagnose: true,
		TestCases: testcase.NewRandomSet(2, 1, -1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package main",
		"func modelExe(step int64",
		"func modelInit()",
		"actorBitmap[",
		"diagnose_FIG1_Total(step",
		"func main()",
		"reportDiag(",
	} {
		if !strings.Contains(p.Source, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}
