package codegen_test

import (
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/interp"
	"accmos/internal/model"
	"accmos/internal/rapid"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// gatedModel: a conditionally executed processing block (gain + integrator
// + a diagnosable sum) enabled only while the input exceeds a threshold —
// Simulink enabled-subsystem semantics with reset outputs.
func gatedModel(t *testing.T) *actors.Compiled {
	t.Helper()
	b := model.NewBuilder("GATED")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("En", "CompareToZero", 1, 1, model.WithOperator(">"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "3"), model.WithParam("EnabledBy", "En"))
	b.Add("Acc", "DiscreteIntegrator", 1, 1, model.WithParam("Gain", "0.5"), model.WithParam("EnabledBy", "En"))
	b.Add("SumI", "Sum", 2, 1, model.WithOperator("++"), model.WithOutKind(types.I32), model.WithParam("EnabledBy", "En"))
	b.Add("CvA", "DataTypeConversion", 1, 1, model.WithOutKind(types.I32))
	b.Add("CvB", "DataTypeConversion", 1, 1, model.WithOutKind(types.I32))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Add("Out2", "Outport", 1, 0, model.WithParam("Port", "2"))
	b.Add("Out3", "Outport", 1, 0, model.WithParam("Port", "3"))
	b.Wire("In", "En", 0)
	b.Wire("In", "G", 0)
	b.Wire("G", "Acc", 0)
	b.Wire("G", "CvA", 0)
	b.Wire("Acc", "CvB", 0)
	b.Wire("CvA", "SumI", 0)
	b.Wire("CvB", "SumI", 1)
	b.Wire("G", "Out1", 0)
	b.Wire("Acc", "Out2", 0)
	b.Wire("SumI", "Out3", 0)
	return compile(t, b.MustBuild())
}

func TestGatedEquivalenceAllEngines(t *testing.T) {
	c := gatedModel(t)
	set := testcase.NewRandomSet(1, 31, -10, 10)
	const steps = 3000
	ir, gr := runBoth(t, c, set, steps,
		interp.Options{Coverage: true, Diagnose: true},
		codegen.Options{Coverage: true, Diagnose: true})
	assertEquivalent(t, ir, gr)

	ac, err := interp.NewAccel(c)
	if err != nil {
		t.Fatal(err)
	}
	acRes, err := ac.Run(set, steps)
	if err != nil {
		t.Fatal(err)
	}
	if acRes.OutputHash != ir.OutputHash {
		t.Errorf("SSEac hash %x != SSE %x", acRes.OutputHash, ir.OutputHash)
	}
	rc, err := rapid.New(c)
	if err != nil {
		t.Fatal(err)
	}
	rcRes, err := rc.Run(set, steps)
	if err != nil {
		t.Fatal(err)
	}
	if rcRes.OutputHash != ir.OutputHash {
		t.Errorf("SSErac hash %x != SSE %x", rcRes.OutputHash, ir.OutputHash)
	}
}

func TestGatedActorCoveragePartial(t *testing.T) {
	c := gatedModel(t)
	// Always-negative input: the enable never fires, so the gated actors
	// never execute and actor coverage stays partial in both engines.
	set := &testcase.Set{Sources: []testcase.Source{{Kind: testcase.Const, Value: -1}}}
	ir, gr := runBoth(t, c, set, 50,
		interp.Options{Coverage: true, Diagnose: true},
		codegen.Options{Coverage: true, Diagnose: true})
	assertEquivalent(t, ir, gr)
	e, err := interp.New(c, interp.Options{Coverage: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(set, 50)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.Layout().Report(res.Coverage)
	// 10 actors, 3 gated and never enabled: 7/10 executed.
	if rep.ActorCovered != 7 || rep.ActorTotal != 10 {
		t.Errorf("actor coverage %d/%d, want 7/10", rep.ActorCovered, rep.ActorTotal)
	}
	// Gated actors' diagnostics must not fire while disabled.
	if res.DiagTotal != 0 {
		t.Errorf("diagnostics fired from disabled actors: %v", res.DiagCounts)
	}
}

func TestGatedStateFreezes(t *testing.T) {
	c := gatedModel(t)
	// Alternate enable on/off; the integrator must only accumulate on
	// enabled steps. Input +2 (enabled) alternating with -2 (disabled):
	// each enabled step adds 0.5 * 3*2 = 3 to the accumulator.
	set := &testcase.Set{Sources: []testcase.Source{
		{Kind: testcase.Pulse, Period: 2, Width: 1, High: 2, Low: -2},
	}}
	e, err := interp.New(c, interp.Options{Monitor: []string{"Acc"}, MaxMonitorSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(set, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0", "0", "3", "0", "6", "0", "9", "0"}
	samples := res.Monitor["Acc"]
	// Monitoring is skipped on disabled steps, so samples cover enabled
	// steps only: 0, 3, 6, 9.
	wantEnabled := []string{"0", "3", "6", "9"}
	if len(samples) != len(wantEnabled) {
		t.Fatalf("samples = %v (want %d enabled-step samples)", samples, len(wantEnabled))
	}
	for i, w := range wantEnabled {
		if samples[i].Value != w {
			t.Errorf("enabled sample %d = %s, want %s (full expectation %v)", i, samples[i].Value, w, want)
		}
	}
}

func TestGatedValidation(t *testing.T) {
	b := model.NewBuilder("BADGATE")
	b.Add("C", "Constant", 0, 1, model.WithOutKind(types.F64))
	b.Add("G", "Gain", 1, 1, model.WithParam("EnabledBy", "NoSuch"))
	b.Add("T", "Terminator", 1, 0)
	b.Chain("C", "G", "T")
	if _, err := actors.Compile(b.MustBuild()); err == nil {
		t.Error("unknown enabler must be rejected")
	}
	b2 := model.NewBuilder("SELFGATE")
	b2.Add("C", "Constant", 0, 1, model.WithOutKind(types.F64))
	b2.Add("G", "Gain", 1, 1, model.WithParam("EnabledBy", "G"))
	b2.Add("T", "Terminator", 1, 0)
	b2.Chain("C", "G", "T")
	if _, err := actors.Compile(b2.MustBuild()); err == nil {
		t.Error("self-gating must be rejected")
	}
	// Gating that creates a scheduling cycle is an algebraic loop.
	b3 := model.NewBuilder("CYCLEGATE")
	b3.Add("C", "Constant", 0, 1, model.WithOutKind(types.F64))
	b3.Add("G", "Gain", 1, 1, model.WithParam("EnabledBy", "Cz"))
	b3.Add("Cz", "CompareToZero", 1, 1, model.WithOperator(">"))
	b3.Add("T", "Terminator", 1, 0)
	b3.Wire("C", "G", 0)
	b3.Wire("G", "Cz", 0)
	b3.Wire("Cz", "T", 0)
	if _, err := actors.Compile(b3.MustBuild()); err == nil {
		t.Error("enable cycle must be rejected")
	}
}

func TestVectorMonitorEquivalence(t *testing.T) {
	// Signal monitoring on a vector actor must render samples exactly as
	// the interpreter's value printer does.
	b := model.NewBuilder("VMON")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.I16), model.WithParam("Port", "1"))
	b.Add("CV", "Constant", 0, 1, model.WithOutKind(types.I16), model.WithOutWidth(3),
		model.WithParam("Value", "[1 2 3]"))
	b.Add("SumV", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("Red", "SumOfElements", 1, 1)
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Wire("CV", "SumV", 0)
	b.Wire("In", "SumV", 1)
	b.Wire("SumV", "Red", 0)
	b.Wire("Red", "Out", 0)
	c := compile(t, b.MustBuild())
	set := testcase.NewRandomSet(1, 63, -50, 50)
	ir, gr := runBoth(t, c, set, 40,
		interp.Options{Monitor: []string{"SumV"}, MaxMonitorSamples: 8},
		codegen.Options{Monitor: []string{"SumV"}, MaxMonitorSamples: 8})
	assertEquivalent(t, ir, gr)
	is, gs := ir.Monitor["SumV"], gr.Monitor["SumV"]
	if len(is) != 8 || len(gs) != 8 {
		t.Fatalf("sample counts: interp %d, generated %d", len(is), len(gs))
	}
	for i := range is {
		if is[i] != gs[i] {
			t.Errorf("sample %d: interp %+v vs generated %+v", i, is[i], gs[i])
		}
	}
	if !strings.HasPrefix(is[0].Value, "[") {
		t.Errorf("vector sample not rendered as a vector: %q", is[0].Value)
	}
}
