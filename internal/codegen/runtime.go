package codegen

// runtimeSrc is the static support code embedded in every generated
// program: deterministic conversions (matching types.Convert), the FNV-1a
// output hash (matching simresult.HashU64), value formatting (matching
// types.Value.String), the bounded diagnosis reporter, the signal monitor
// (the paper's outputCollect), and 1-D table interpolation (matching
// actors.Lookup1DInterp — keep in sync).
const runtimeSrc = `
// b2i converts a bool to 0/1.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// b2f converts a bool to 0/1 as float64.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// cvtF2I is the deterministic float->int64 conversion: NaN -> 0,
// out-of-range saturates at the int64 bounds, otherwise truncation.
func cvtF2I(f float64) int64 {
	switch {
	case f != f: // NaN
		return 0
	case f >= 9223372036854775807:
		return 9223372036854775807
	case f <= -9223372036854775808:
		return -9223372036854775808
	default:
		return int64(f)
	}
}

// cvtF2U is the deterministic float->uint64 conversion.
func cvtF2U(f float64) uint64 {
	switch {
	case f != f: // NaN
		return 0
	case f >= 18446744073709551615:
		return 18446744073709551615
	case f < 0:
		return 0
	default:
		return uint64(f)
	}
}

// lookup1D is clamped linear interpolation over ascending breakpoints.
func lookup1D(bp, table []float64, x float64) float64 {
	n := len(bp)
	if x <= bp[0] {
		return table[0]
	}
	if x >= bp[n-1] {
		return table[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bp[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - bp[lo]) / (bp[lo+1] - bp[lo])
	return table[lo] + t*(table[lo+1]-table[lo])
}

// hashU64 folds one 64-bit word into the FNV-1a output hash.
func hashU64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * uint(i))) & 0xff
		h *= 1099511628211
	}
	return h
}

var outputHash uint64 = 14695981039346656037

func hashF64(v float64) { outputHash = hashU64(outputHash, math.Float64bits(v)) }
func hashF32(v float32) { outputHash = hashU64(outputHash, uint64(math.Float32bits(v))) }
func hashI(v int64)     { outputHash = hashU64(outputHash, uint64(v)) }
func hashU(v uint64)    { outputHash = hashU64(outputHash, v) }
func hashB(v bool)      { outputHash = hashU64(outputHash, uint64(b2i(v))) }

// fmtF64 formats a float like the interpreter's value printer.
func fmtF64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func fmtI64(v int64) string   { return strconv.FormatInt(v, 10) }
func fmtU64(v uint64) string  { return strconv.FormatUint(v, 10) }
func fmtBool(v bool) string   { return strconv.FormatBool(v) }

// Vector formatters mirror the interpreter's "[e1 e2 ...]" rendering.
func fmtVecF64(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmtF64(x)
	}
	return s + "]"
}

func fmtVecF32(v []float32) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmtF64(float64(x))
	}
	return s + "]"
}

func fmtVecI[T int8 | int16 | int32 | int64](v []T) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmtI64(int64(x))
	}
	return s + "]"
}

func fmtVecU[T uint8 | uint16 | uint32 | uint64](v []T) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmtU64(uint64(x))
	}
	return s + "]"
}

func fmtVecB(v []bool) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmtBool(x)
	}
	return s + "]"
}

// diagRecord matches the simresult JSON schema for diagnostics.
type diagRecord struct {
	Step   int64  ` + "`json:\"step\"`" + `
	Actor  string ` + "`json:\"actor\"`" + `
	Kind   string ` + "`json:\"kind\"`" + `
	Detail string ` + "`json:\"detail,omitempty\"`" + `
}

// monitorSample matches the simresult JSON schema for monitor samples.
type monitorSample struct {
	Step  int64  ` + "`json:\"step\"`" + `
	Value string ` + "`json:\"value\"`" + `
}

var (
	diagTotal     int64
	diagRecords   []diagRecord
	stopRequested bool

	// seedXor perturbs every embedded uniform test-case seed, so one
	// compiled binary can run many random test suites (-seed-xor).
	seedXor uint64
)

// reportDiag records one diagnostic finding in slot's counters.
func reportDiag(slot int, step int64, detail string) {
	if partitionCount > 1 {
		// Pipelined build: every slot belongs to exactly one pipeline
		// stage, so per-slot counters and buffers are index-disjoint
		// across goroutines. Verbatim records buffer per slot and merge
		// into the sequential stream at result time (mergeDiags), and
		// diagTotal is reconstructed from the counters there. Stop-on-
		// diagnosis requests decline partitioning at generation time, so
		// diagStop/stopRequested are never touched on this path.
		diagCounts[slot]++
		if diagFirst[slot] < 0 {
			diagFirst[slot] = step
		}
		if len(diagBuf[slot]) < maxDiagRecords {
			diagBuf[slot] = append(diagBuf[slot], diagRecord{
				Step: step, Actor: diagActors[slot], Kind: diagKinds[slot], Detail: detail,
			})
		}
		return
	}
	diagTotal++
	diagCounts[slot]++
	if diagFirst[slot] < 0 {
		diagFirst[slot] = step
	}
	if len(diagRecords) < maxDiagRecords {
		diagRecords = append(diagRecords, diagRecord{
			Step: step, Actor: diagActors[slot], Kind: diagKinds[slot], Detail: detail,
		})
	}
	if diagStop[slot] {
		stopRequested = true
	}
}

// outputCollect is the signal-monitor instrumentation: it records the
// actor's output value (bounded) and counts every observation.
func outputCollect(slot int, step int64, value string) {
	monHits[slot]++
	if len(monSamples[slot]) < maxMonitorSamples {
		monSamples[slot] = append(monSamples[slot], monitorSample{Step: step, Value: value})
	}
}

// jsonFloat formats a float for a heartbeat record, mapping the values
// JSON cannot carry (NaN, ±Inf) to 0.
func jsonFloat(f float64) string {
	if f != f || f > math.MaxFloat64 || f < -math.MaxFloat64 {
		return "0"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// emitHeartbeat writes one NDJSON progress record to stderr. The line
// shape is the contract obs.ParseHeartbeat decodes — keep in sync with
// internal/obs. covEnabled is a generated constant; when false the
// coverage field reports -1. runID tags serve-mode heartbeats with the
// request they belong to ("" — and no "run" field — in one-shot mode).
func emitHeartbeat(runID string, steps int64, elapsed time.Duration, final bool) {
	sps := 0.0
	if elapsed > 0 {
		sps = float64(steps) / elapsed.Seconds()
	}
	cov := -1.0
	if covEnabled {
		set, total := 0, 0
		for _, bm := range [][]uint8{actorBitmap[:], condBitmap[:], decBitmap[:], mcdcBitmap[:]} {
			for _, b := range bm {
				if b != 0 {
					set++
				}
			}
			total += len(bm)
		}
		if total > 0 {
			cov = 100 * float64(set) / float64(total)
		} else {
			cov = 100
		}
	}
	fin := ""
	if final {
		fin = ",\"final\":true"
	}
	run := ""
	if runID != "" {
		run = ",\"run\":" + strconv.Quote(runID)
	}
	fmt.Fprintf(os.Stderr,
		"{\"accmosHB\":1,\"model\":%q,\"engine\":\"AccMoS\",\"steps\":%d,\"elapsedNanos\":%d,\"stepsPerSec\":%s,\"coverage\":%s,\"diags\":%d%s%s}\n",
		modelName, steps, elapsed.Nanoseconds(), jsonFloat(sps), jsonFloat(cov), diagTotal, fin, run)
}

// emitHeartbeatPartial is the mid-run heartbeat of a pipelined build: it
// is emitted from the final pipeline stage while earlier stages are still
// writing coverage bitmaps and diag counters, so it reports coverage -1
// and diags 0 instead of scanning shared state. The post-join final
// heartbeat uses emitHeartbeat as usual.
func emitHeartbeatPartial(runID string, steps int64, elapsed time.Duration) {
	sps := 0.0
	if elapsed > 0 {
		sps = float64(steps) / elapsed.Seconds()
	}
	run := ""
	if runID != "" {
		run = ",\"run\":" + strconv.Quote(runID)
	}
	fmt.Fprintf(os.Stderr,
		"{\"accmosHB\":1,\"model\":%q,\"engine\":\"AccMoS\",\"steps\":%d,\"elapsedNanos\":%d,\"stepsPerSec\":%s,\"coverage\":-1,\"diags\":0%s}\n",
		modelName, steps, elapsed.Nanoseconds(), jsonFloat(sps), run)
}

// batchChunk is how many steps a lane runs before runBatch rotates to
// the next lane: large enough to amortize the laneSave/laneLoad state
// swap (multi-KB on big models), small enough that lanes stay
// interleaved and the heartbeat cadence holds.
const batchChunk = 64

// parseSeedList decodes the -batch-seeds flag: comma-separated uint64
// seed-xor values (0x-prefixed hex accepted), one lane per entry.
func parseSeedList(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseUint(f, 0, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty seed list")
	}
	return out, nil
}

// serveRequest is one warm-worker request — a single NDJSON line on
// stdin in serve mode. Keep in sync with the harness worker pool's
// request encoder (internal/harness). A request with accmosBatch set
// runs one lane per seedXors entry through runBatch instead of a
// single run; steps and budgetMs both bound a single run when both are
// positive (whichever is reached first wins).
type serveRequest struct {
	Batch       int      ` + "`json:\"accmosBatch\"`" + `
	ID          string   ` + "`json:\"id\"`" + `
	Steps       int64    ` + "`json:\"steps\"`" + `
	BudgetMS    int64    ` + "`json:\"budgetMs\"`" + `
	SeedXor     uint64   ` + "`json:\"seedXor\"`" + `
	SeedXors    []uint64 ` + "`json:\"seedXors\"`" + `
	HeartbeatMS int64    ` + "`json:\"heartbeatMs\"`" + `
}

// writeFrame emits one NDJSON response frame on stdout and flushes, so
// the host sees exactly one line per request as soon as the run ends.
func writeFrame(out *bufio.Writer, id string, result []byte, errMsg string) {
	out.WriteString("{\"accmosRun\":1,\"id\":")
	out.WriteString(strconv.Quote(id))
	if errMsg != "" {
		out.WriteString(",\"error\":")
		out.WriteString(strconv.Quote(errMsg))
	} else {
		out.WriteString(",\"result\":")
		out.Write(result)
	}
	out.WriteString("}\n")
	out.Flush()
}

// writeBatchFrame emits one batch response: a small header frame naming
// the request id, lane count and the batch's OR-merged coverage, then
// one line per lane result — so the host can split lanes with cheap
// line reads and decode them in parallel instead of scanning one giant
// JSON value.
func writeBatchFrame(out *bufio.Writer, id string, lanes [][]byte, cov []byte) {
	out.WriteString("{\"accmosRun\":1,\"id\":")
	out.WriteString(strconv.Quote(id))
	out.WriteString(",\"laneCount\":")
	out.WriteString(strconv.Itoa(len(lanes)))
	if cov != nil {
		out.WriteString(",\"coverage\":")
		out.Write(cov)
	}
	out.WriteString("}\n")
	for _, lane := range lanes {
		out.Write(lane)
		out.WriteByte('\n')
	}
	out.Flush()
}

// serveLoop is the warm-worker mode behind the -serve flag: read NDJSON
// run requests from stdin, execute each against fully re-initialized
// model state (modelReset), and answer with one NDJSON result frame per
// request on stdout. Heartbeats stay on stderr, tagged with the request
// id. The process exits when stdin reaches EOF — the host closes the
// pipe to retire a worker gracefully.
//
// Request fields are used verbatim: steps and budgetMs each bound the
// run when positive — with both set, whichever is reached first wins;
// with both <= 0, the binary's -steps default applies. heartbeatMs <= 0
// disables heartbeats for that run. Batch requests (accmosBatch set)
// run every seedXors lane through the batched loop and answer with a
// laneCount header frame followed by one result line per lane.
func serveLoop(defSteps int64) {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 64*1024), 8*1024*1024)
	out := bufio.NewWriter(os.Stdout)
	for in.Scan() {
		line := in.Bytes()
		if len(line) == 0 {
			continue
		}
		var req serveRequest
		if err := json.Unmarshal(line, &req); err != nil {
			writeFrame(out, req.ID, nil, "decoding request: "+err.Error())
			continue
		}
		hb := time.Duration(req.HeartbeatMS) * time.Millisecond
		if req.Batch != 0 {
			if len(req.SeedXors) == 0 {
				writeFrame(out, req.ID, nil, "batch request carries no seedXors")
				continue
			}
			if req.BudgetMS > 0 {
				writeFrame(out, req.ID, nil, "batch requests are step-bounded; budgetMs is unsupported")
				continue
			}
			steps := req.Steps
			if steps <= 0 {
				steps = defSteps
			}
			writeBatchFrame(out, req.ID, runBatch(req.SeedXors, steps, hb, req.ID), covJSON())
			continue
		}
		seedXor = req.SeedXor
		modelReset()
		steps := req.Steps
		if steps <= 0 && req.BudgetMS <= 0 {
			steps = defSteps
		}
		executed, elapsed := runSim(steps, req.BudgetMS, hb, req.ID)
		writeFrame(out, req.ID, resultsJSON(executed, elapsed.Nanoseconds(), true), "")
	}
	if err := in.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "accmos: serve: reading requests:", err)
		os.Exit(1)
	}
}
`
