package codegen

import (
	"fmt"
	"strings"

	"accmos/internal/actors"
	"accmos/internal/diagnose"
	"accmos/internal/types"
)

// Diagnosis function generation (paper Figure 4): each actor on the
// diagnose list gets a generated function, called right after the actor's
// code (Figure 5, line 7), that re-derives the error conditions from the
// actor's runtime inputs and output. Detection conditions mirror the
// interpreter's flag semantics exactly, so both engines find the same
// errors at the same steps.

// diagWriter accumulates one diagnosis function body.
type diagWriter struct {
	lines []string
	ind   int
	flags map[string]bool
	tmpN  int
}

// L emits one indented line.
func (d *diagWriter) L(format string, args ...interface{}) {
	d.lines = append(d.lines,
		strings.Repeat("\t", d.ind+1)+fmt.Sprintf(format, args...))
}

// Ls emits each statement on its own line.
func (d *diagWriter) Ls(stmts []string) {
	for _, s := range stmts {
		d.L("%s", s)
	}
}

// block emits a braced block; "else"-heads fuse with the previous closing
// brace per Go's grammar.
func (d *diagWriter) block(head string, fn func()) {
	ind := strings.Repeat("\t", d.ind+1)
	if strings.HasPrefix(head, "else") && len(d.lines) > 0 && d.lines[len(d.lines)-1] == ind+"}" {
		d.lines[len(d.lines)-1] = ind + "} " + head + " {"
	} else {
		d.L("%s {", head)
	}
	d.ind++
	fn()
	d.ind--
	d.L("}")
}

// body renders the accumulated lines.
func (d *diagWriter) body() string {
	if len(d.lines) == 0 {
		return ""
	}
	return strings.Join(d.lines, "\n") + "\n"
}

// flag returns the named flag variable, recording that it must be declared.
func (d *diagWriter) flag(name string) string {
	d.flags[name] = true
	return name
}

func (d *diagWriter) tmp(prefix string) string {
	d.tmpN++
	return fmt.Sprintf("%s%d", prefix, d.tmpN)
}

// emitDiagnose emits the call and the implementation of one actor's
// diagnosis function. DiscreteIntegrator and Counter diagnose inside their
// state-update code instead (their errors arise there), so they are
// skipped here.
func (g *Generator) emitDiagnose(info *actors.Info, rules []diagnose.Kind, inExprs []string) error {
	switch info.Actor.Type {
	case "DiscreteIntegrator", "Counter":
		return nil
	}
	fname := "diagnose_" + sanitize(info.Path)

	// Build the parameter list: step, out (if any), then every input.
	params := []string{"step int64"}
	args := []string{"step"}
	outParam := ""
	if len(info.Actor.Outputs) > 0 {
		outParam = "out"
		params = append(params, fmt.Sprintf("out %s", actors.GoVarType(info.OutKind(), info.OutWidth())))
		args = append(args, g.varName(info, 0))
	}
	for p := range inExprs {
		params = append(params, fmt.Sprintf("in%d %s", p, actors.GoVarType(info.InKinds[p], info.InWidths[p])))
		args = append(args, inExprs[p])
	}

	d := &diagWriter{flags: map[string]bool{}}
	if err := g.diagBody(d, info, rules, outParam); err != nil {
		return err
	}
	reports := g.diagReports(d, info, rules)
	if len(d.lines) == 0 && reports == "" {
		return nil // nothing diagnosable survived
	}

	// Call site.
	fmt.Fprintf(g.body, "\t%s(%s)\n", fname, strings.Join(args, ", "))

	// Function text.
	fmt.Fprintf(&g.diagFuncs, "\n// %s checks %s (%s %s) for: %s\n",
		fname, info.Path, info.Actor.Type, info.Operator, kindList(rules))
	fmt.Fprintf(&g.diagFuncs, "func %s(%s) {\n", fname, strings.Join(params, ", "))
	for _, f := range []string{"ovf", "dbz", "dom", "nan", "oor", "ploss"} {
		if d.flags[f] {
			fmt.Fprintf(&g.diagFuncs, "\t%s := false\n", f)
		}
	}
	g.diagFuncs.WriteString(d.body())
	g.diagFuncs.WriteString(reports)
	g.diagFuncs.WriteString("}\n")
	return nil
}

func kindList(rules []diagnose.Kind) string {
	parts := make([]string, len(rules))
	for i, r := range rules {
		parts[i] = string(r)
	}
	return strings.Join(parts, ", ")
}

// diagReports renders the report statements in the interpreter's canonical
// flag order, followed by the once-only downcast report.
func (g *Generator) diagReports(d *diagWriter, info *actors.Info, rules []diagnose.Kind) string {
	has := func(k diagnose.Kind) bool {
		for _, r := range rules {
			if r == k {
				return true
			}
		}
		return false
	}
	var sb strings.Builder
	rep := func(flagVar string, kind diagnose.Kind) {
		if !d.flags[flagVar] || !has(kind) {
			return
		}
		slot := g.DiagSlotFor(info.Actor.Name, kind)
		fmt.Fprintf(&sb, "\tif %s {\n\t\treportDiag(%d, step, \"\")\n\t}\n", flagVar, slot)
	}
	rep("ovf", diagnose.WrapOnOverflow)
	rep("dbz", diagnose.DivisionByZero)
	rep("dom", diagnose.DomainError)
	rep("nan", diagnose.NaNOrInf)
	rep("oor", diagnose.IndexOutOfBounds)
	if !has(diagnose.IndexOutOfBounds) {
		rep("oor", diagnose.OutOfRange)
	}
	rep("ploss", diagnose.PrecisionLoss)
	if has(diagnose.Downcast) {
		seen := fmt.Sprintf("dcSeen%d", info.Index)
		g.Global(fmt.Sprintf("var %s bool", seen))
		g.InitStmt(fmt.Sprintf("%s = false", seen))
		slot := g.DiagSlotFor(info.Actor.Name, diagnose.Downcast)
		fmt.Fprintf(&sb, "\tif !%s {\n\t\t%s = true\n\t\treportDiag(%d, step, \"output type narrower than input type\")\n\t}\n",
			seen, seen, slot)
	}
	return sb.String()
}

// elem renders parameter p's element expression under loop index ix.
func elem(name string, width int, ix string) string {
	if width > 1 {
		return name + ix
	}
	return name
}

// forWidth wraps fn in an element loop when the actor output is a vector.
func (d *diagWriter) forWidth(width int, fn func(ix string)) {
	if width <= 1 {
		fn("")
		return
	}
	d.block(fmt.Sprintf("for i := 0; i < %d; i++", width), func() { fn("[i]") })
}

// diagBody dispatches recompute emission by actor type.
func (g *Generator) diagBody(d *diagWriter, info *actors.Info, rules []diagnose.Kind, outParam string) error {
	has := func(k diagnose.Kind) bool {
		for _, r := range rules {
			if r == k {
				return true
			}
		}
		return false
	}
	k := info.OutKind()
	inW := func(p int) int { return info.InWidths[p] }
	castElem := func(p int, ix string) string {
		return actors.Cast(elem(fmt.Sprintf("in%d", p), inW(p), ix), info.InKinds[p], k)
	}
	nanCheck := func(expr string) {
		if k.IsFloat() && has(diagnose.NaNOrInf) {
			g.Import("math")
			d.L("%s = %s || %s", d.flag("nan"), "nan", actors.NaNOrInfCond(expr, k))
		}
	}

	switch info.Actor.Type {
	case "Sum":
		signs := info.Aux.(string)
		if !k.IsInteger() && !k.IsFloat() {
			return nil
		}
		d.forWidth(info.OutWidth(), func(ix string) {
			t := d.tmp("t")
			if signs[0] == '+' {
				d.L("%s := %s", t, castElem(0, ix))
			} else if k.IsInteger() {
				d.L("var %s %s", t, k.GoType())
				d.Ls(actors.CheckedSubStmts(k, t, actors.GoZero(k), castElem(0, ix), d.flag("ovf")))
			} else {
				d.L("%s := %s", t, binE(k, actors.GoZero(k), "-", castElem(0, ix)))
				nanCheck(t)
			}
			for i := 1; i < len(signs); i++ {
				nt := d.tmp("t")
				d.L("var %s %s", nt, k.GoType())
				if k.IsInteger() {
					if signs[i] == '+' {
						d.Ls(actors.CheckedAddStmts(k, nt, t, castElem(i, ix), d.flag("ovf")))
					} else {
						d.Ls(actors.CheckedSubStmts(k, nt, t, castElem(i, ix), d.flag("ovf")))
					}
				} else {
					d.L("%s = %s", nt, binE(k, t, string(signs[i]), castElem(i, ix)))
					nanCheck(nt)
				}
				t = nt
			}
			d.L("_ = %s", t)
		})

	case "Product":
		signs := info.Aux.(string)
		if !k.IsInteger() && !k.IsFloat() {
			return nil
		}
		d.forWidth(info.OutWidth(), func(ix string) {
			t := d.tmp("t")
			d.L("var %s %s", t, k.GoType())
			if signs[0] == '*' {
				d.L("%s = %s", t, castElem(0, ix))
			} else {
				one := oneLit(k)
				if k.IsInteger() {
					d.Ls(actors.CheckedDivStmts(k, t, one, castElem(0, ix), d.flag("dbz"), d.flag("ovf")))
				} else {
					d.Ls(actors.CheckedDivStmts(k, t, actors.Cast("1.0", types.F64, k), castElem(0, ix), d.flag("dbz"), ""))
					nanCheck(t)
				}
			}
			for i := 1; i < len(signs); i++ {
				nt := d.tmp("t")
				d.L("var %s %s", nt, k.GoType())
				if signs[i] == '*' {
					if k.IsInteger() {
						d.Ls(actors.CheckedMulStmts(k, nt, t, castElem(i, ix), d.flag("ovf"), d.tmp("m")))
					} else {
						d.L("%s = %s", nt, binE(k, t, "*", castElem(i, ix)))
						nanCheck(nt)
					}
				} else {
					if k.IsInteger() {
						d.Ls(actors.CheckedDivStmts(k, nt, t, castElem(i, ix), d.flag("dbz"), d.flag("ovf")))
					} else {
						d.Ls(actors.CheckedDivStmts(k, nt, t, castElem(i, ix), d.flag("dbz"), ""))
						nanCheck(nt)
					}
				}
				t = nt
			}
			d.L("_ = %s", t)
		})

	case "Gain", "Bias":
		lit := info.Aux.(types.Value).GoLiteral()
		op := "*"
		if info.Actor.Type == "Bias" {
			op = "+"
		}
		d.forWidth(info.OutWidth(), func(ix string) {
			t := d.tmp("t")
			d.L("var %s %s", t, k.GoType())
			if k.IsInteger() {
				if op == "*" {
					d.Ls(actors.CheckedMulStmts(k, t, castElem(0, ix), lit, d.flag("ovf"), d.tmp("m")))
				} else {
					d.Ls(actors.CheckedAddStmts(k, t, castElem(0, ix), lit, d.flag("ovf")))
				}
			} else {
				d.L("%s = %s", t, binE(k, castElem(0, ix), op, lit))
				nanCheck(t)
			}
			d.L("_ = %s", t)
		})

	case "Abs", "UnaryMinus":
		if !k.IsSigned() {
			return nil
		}
		d.forWidth(info.OutWidth(), func(ix string) {
			d.L("%s = %s || (%s < 0 && %s < 0)", d.flag("ovf"), "ovf",
				castElem(0, ix), elem(outParam, info.OutWidth(), ix))
		})

	case "Math", "Sqrt", "Rounding":
		x := d.tmp("x")
		d.forWidth(info.OutWidth(), func(ix string) {
			xe := actors.CastToF64(elem("in0", inW(0), ix), info.InKinds[0])
			d.L("%s := %s", x, xe)
			switch info.Operator {
			case "log", "log10", "log2":
				d.L("%s = %s || %s <= 0", d.flag("dom"), "dom", x)
			case "sqrt":
				d.L("%s = %s || %s < 0", d.flag("dom"), "dom", x)
			case "asin", "acos":
				d.L("%s = %s || %s < -1 || %s > 1", d.flag("dom"), "dom", x, x)
			case "reciprocal":
				d.L("%s = %s || %s == 0", d.flag("dbz"), "dbz", x)
			default:
				d.L("_ = %s", x)
			}
			nanCheck(elem(outParam, info.OutWidth(), ix))
			x = d.tmp("x")
		})

	case "Mod":
		d.forWidth(info.OutWidth(), func(ix string) {
			d.L("%s = %s || %s == %s", d.flag("dbz"), "dbz", castElem(1, ix), actors.GoZero(k))
		})

	case "DataTypeConversion":
		g.dtcChecks(d, info, has, outParam)

	case "Shift":
		if info.Operator != "left" {
			return nil
		}
		n := info.Aux.(int64)
		d.L("%s = %s || (%s >> %d) != %s", d.flag("ovf"), "ovf", outParam, n, actors.Cast("in0", info.InKinds[0], k))

	case "LookupDirect", "MultiportSwitch", "Selector":
		var n int
		ctrl := "in0"
		ctrlKind := info.InKinds[0]
		switch info.Actor.Type {
		case "LookupDirect":
			n = actors.LookupDirectTableLen(info)
		case "MultiportSwitch":
			n = info.NumIn() - 1
		case "Selector":
			if info.NumIn() != 2 {
				return nil
			}
			n = info.InWidths[0]
			ctrl = "in1"
			ctrlKind = info.InKinds[1]
		}
		iv := d.tmp("idx")
		d.L("%s := %s", iv, actors.Cast(ctrl, ctrlKind, types.I64))
		d.L("%s = %s || %s < 1 || %s > %d", d.flag("oor"), "oor", iv, iv, n)

	case "Polynomial", "DotProduct", "SumOfElements", "ProductOfElements", "DeadZone":
		g.miscChecks(d, info, has, outParam, castElem, nanCheck)
	}
	return nil
}

// binE is a local alias for the kind-correct binary expression.
func binE(k types.Kind, a, op, b string) string {
	if k == types.F32 {
		return fmt.Sprintf("float32(float64(%s) %s float64(%s))", a, op, b)
	}
	return fmt.Sprintf("(%s %s %s)", a, op, b)
}

func oneLit(k types.Kind) string {
	v, _ := types.ParseValue(k, "1")
	return v.GoLiteral()
}
