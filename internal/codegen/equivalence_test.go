package codegen_test

import (
	"fmt"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/diagnose"
	"accmos/internal/interp"
	"accmos/internal/model"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// The equivalence suite: for each actor family, build a model exercising
// it, run the interpreter and the generated program on identical random
// stimuli, and require bit-identical output hashes, coverage bitmaps and
// diagnosis aggregates. This is the strongest correctness oracle the
// system has — any divergence between an actor's Eval and Gen shows up
// here.

// chainModel wires In (kind kin) through the given middle actors (each
// 1-in/1-out, pre-added by the configure callback) to outports.
type sinkCounter struct{ n int }

func (s *sinkCounter) out(b *model.Builder, src string, port int) {
	name := fmt.Sprintf("Out%d", s.n)
	b.Add(name, "Outport", 1, 0, model.WithParam("Port", fmt.Sprint(s.n+1)))
	b.Connect(src, port, name, 0)
	s.n++
}

func equivCheck(t *testing.T, name string, c *actors.Compiled, set *testcase.Set, steps int64) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		t.Parallel()
		ir, gr := runBoth(t, c, set, steps,
			interp.Options{Coverage: true, Diagnose: true},
			codegen.Options{Coverage: true, Diagnose: true})
		assertEquivalent(t, ir, gr)
	})
}

func TestEquivalenceMathF64(t *testing.T) {
	b := model.NewBuilder("MATHF")
	s := &sinkCounter{}
	b.Add("InA", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("InB", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "2"))
	b.Add("Sum3", "Sum", 3, 1, model.WithOperator("+-+"))
	b.Add("Prod", "Product", 2, 1, model.WithOperator("*/"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "2.5"))
	b.Add("Bi", "Bias", 1, 1, model.WithParam("Bias", "-3.25"))
	b.Add("Ab", "Abs", 1, 1)
	b.Add("Um", "UnaryMinus", 1, 1)
	b.Add("Exp", "Math", 1, 1, model.WithOperator("tanh"))
	b.Add("Log", "Math", 1, 1, model.WithOperator("log"))
	b.Add("Sq", "Sqrt", 1, 1)
	b.Add("Mm", "MinMax", 3, 1, model.WithOperator("max"))
	b.Add("Sg", "Sign", 1, 1)
	b.Add("Rd", "Rounding", 1, 1, model.WithOperator("floor"))
	b.Add("Poly", "Polynomial", 1, 1, model.WithParam("Coeffs", "[1.5 -2 0.5]"))
	b.Add("Md", "Mod", 2, 1)
	b.Wire("InA", "Sum3", 0)
	b.Wire("InB", "Sum3", 1)
	b.Wire("InA", "Sum3", 2)
	b.Wire("InA", "Prod", 0)
	b.Wire("InB", "Prod", 1)
	b.Wire("Sum3", "G", 0)
	b.Wire("G", "Bi", 0)
	b.Wire("InB", "Ab", 0)
	b.Wire("Ab", "Um", 0)
	b.Wire("Bi", "Exp", 0)
	b.Wire("InA", "Log", 0)
	b.Wire("Ab", "Sq", 0)
	b.Wire("InA", "Mm", 0)
	b.Wire("InB", "Mm", 1)
	b.Wire("Prod", "Mm", 2)
	b.Wire("Um", "Sg", 0)
	b.Wire("InB", "Rd", 0)
	b.Wire("InA", "Poly", 0)
	b.Wire("InA", "Md", 0)
	b.Wire("InB", "Md", 1)
	for _, src := range []string{"Sum3", "Prod", "Exp", "Log", "Sq", "Mm", "Sg", "Rd", "Poly", "Md"} {
		s.out(b, src, 0)
	}
	// Range includes negatives (log/sqrt domain errors) and zeros
	// (division by zero) to exercise diagnosis paths.
	equivCheck(t, "mathF64", compile(t, b.MustBuild()), testcase.NewRandomSet(2, 11, -50, 50), 4000)
}

func TestEquivalenceMathIntKinds(t *testing.T) {
	for _, k := range []types.Kind{types.I8, types.I16, types.I32, types.I64, types.U8, types.U16, types.U32, types.U64} {
		k := k
		b := model.NewBuilder("MATH" + k.GoType())
		s := &sinkCounter{}
		b.Add("InA", "Inport", 0, 1, model.WithOutKind(k), model.WithParam("Port", "1"))
		b.Add("InB", "Inport", 0, 1, model.WithOutKind(k), model.WithParam("Port", "2"))
		b.Add("Sm", "Sum", 2, 1, model.WithOperator("+-"))
		b.Add("Pr", "Product", 2, 1, model.WithOperator("*"))
		b.Add("Dv", "Product", 2, 1, model.WithOperator("*/"))
		b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "3"))
		b.Add("Ab", "Abs", 1, 1)
		b.Add("Um", "UnaryMinus", 1, 1)
		b.Add("Mm", "MinMax", 2, 1, model.WithOperator("min"))
		b.Add("Sg", "Sign", 1, 1)
		b.Add("Md", "Mod", 2, 1)
		b.Wire("InA", "Sm", 0)
		b.Wire("InB", "Sm", 1)
		b.Wire("InA", "Pr", 0)
		b.Wire("InB", "Pr", 1)
		b.Wire("InA", "Dv", 0)
		b.Wire("InB", "Dv", 1)
		b.Wire("Sm", "G", 0)
		b.Wire("InB", "Ab", 0)
		b.Wire("Ab", "Um", 0)
		b.Wire("InA", "Mm", 0)
		b.Wire("InB", "Mm", 1)
		b.Wire("Um", "Sg", 0)
		b.Wire("InA", "Md", 0)
		b.Wire("InB", "Md", 1)
		for _, src := range []string{"Sm", "Pr", "Dv", "G", "Sg", "Mm", "Md"} {
			s.out(b, src, 0)
		}
		lo, hi := -300.0, 300.0
		if k.IsUnsigned() {
			lo = 0
		}
		equivCheck(t, k.GoType(), compile(t, b.MustBuild()), testcase.NewRandomSet(2, 13, lo, hi), 3000)
	}
}

func TestEquivalenceFloat32(t *testing.T) {
	b := model.NewBuilder("MATHF32")
	s := &sinkCounter{}
	b.Add("InA", "Inport", 0, 1, model.WithOutKind(types.F32), model.WithParam("Port", "1"))
	b.Add("InB", "Inport", 0, 1, model.WithOutKind(types.F32), model.WithParam("Port", "2"))
	b.Add("Sm", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("Pr", "Product", 2, 1, model.WithOperator("*/"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "1.7"))
	b.Add("Sn", "Math", 1, 1, model.WithOperator("sin"))
	b.Add("Fl", "DiscreteFilter", 1, 1, model.WithParam("A", "0.9"), model.WithParam("B", "0.1"))
	b.Wire("InA", "Sm", 0)
	b.Wire("InB", "Sm", 1)
	b.Wire("InA", "Pr", 0)
	b.Wire("InB", "Pr", 1)
	b.Wire("Sm", "G", 0)
	b.Wire("G", "Sn", 0)
	b.Wire("Pr", "Fl", 0)
	for _, src := range []string{"Sm", "Pr", "G", "Sn", "Fl"} {
		s.out(b, src, 0)
	}
	equivCheck(t, "f32", compile(t, b.MustBuild()), testcase.NewRandomSet(2, 17, -10, 10), 4000)
}

func TestEquivalenceLogic(t *testing.T) {
	b := model.NewBuilder("LOGIC")
	s := &sinkCounter{}
	b.Add("InA", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("InB", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "2"))
	b.Add("InC", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "3"))
	b.Add("CmpA", "CompareToZero", 1, 1, model.WithOperator(">"))
	b.Add("CmpB", "CompareToConstant", 1, 1, model.WithOperator("<="), model.WithParam("Constant", "5"))
	b.Add("Rel", "RelationalOperator", 2, 1, model.WithOperator(">="))
	for i, op := range []string{"AND", "OR", "NAND", "NOR", "XOR", "NXOR"} {
		b.Add(fmt.Sprintf("L%s", op), "Logic", 3, 1, model.WithOperator(op))
		b.Wire("CmpA", fmt.Sprintf("L%s", op), 0)
		b.Wire("CmpB", fmt.Sprintf("L%s", op), 1)
		b.Wire("Rel", fmt.Sprintf("L%s", op), 2)
		_ = i
	}
	b.Add("LNOT", "Logic", 1, 1, model.WithOperator("NOT"))
	b.Wire("CmpA", "LNOT", 0)
	b.Add("Bw", "BitwiseOperator", 2, 1, model.WithOperator("XOR"))
	b.Add("BwN", "BitwiseOperator", 1, 1, model.WithOperator("NOT"))
	b.Add("Sh", "Shift", 1, 1, model.WithOperator("left"), model.WithParam("Bits", "3"))
	b.Add("Shr", "Shift", 1, 1, model.WithOperator("right"), model.WithParam("Bits", "2"))
	b.Wire("InC", "Bw", 0)
	b.Wire("InC", "Bw", 1)
	b.Wire("InC", "BwN", 0)
	b.Wire("InC", "Sh", 0)
	b.Wire("Sh", "Shr", 0)
	b.Wire("InA", "CmpA", 0)
	b.Wire("InB", "CmpB", 0)
	b.Wire("InA", "Rel", 0)
	b.Wire("InB", "Rel", 1)
	for _, src := range []string{"LAND", "LOR", "LNAND", "LNOR", "LXOR", "LNXOR", "LNOT", "Bw", "BwN", "Sh", "Shr"} {
		s.out(b, src, 0)
	}
	equivCheck(t, "logic", compile(t, b.MustBuild()), testcase.NewRandomSet(3, 19, -1e5, 1e5), 4000)
}

func TestEquivalenceControl(t *testing.T) {
	b := model.NewBuilder("CTRL")
	s := &sinkCounter{}
	b.Add("InA", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("InB", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "2"))
	b.Add("InIdx", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "3"))
	b.Add("Sw", "Switch", 3, 1, model.WithOperator(">"), model.WithParam("Threshold", "0"))
	b.Add("SwZ", "Switch", 3, 1, model.WithOperator("~=0"))
	b.Add("Mps", "MultiportSwitch", 4, 1)
	b.Add("Iff", "If", 3, 1)
	b.Add("CmpA", "CompareToZero", 1, 1, model.WithOperator(">"))
	b.Add("Mg", "Merge", 2, 1)
	b.Add("Rl", "Relay", 1, 1, model.WithParam("OnPoint", "2"), model.WithParam("OffPoint", "-2"))
	b.Add("Sat", "Saturation", 1, 1, model.WithParam("Min", "-3"), model.WithParam("Max", "3"))
	b.Add("Dz", "DeadZone", 1, 1, model.WithParam("Start", "-1"), model.WithParam("End", "1"))
	b.Add("Qz", "Quantizer", 1, 1, model.WithParam("Interval", "0.25"))
	b.Wire("InA", "Sw", 0)
	b.Wire("InB", "Sw", 1)
	b.Wire("InB", "Sw", 2)
	b.Wire("InA", "SwZ", 0)
	b.Wire("InIdx", "SwZ", 1)
	b.Wire("InB", "SwZ", 2)
	b.Wire("InIdx", "Mps", 0)
	b.Wire("InA", "Mps", 1)
	b.Wire("InB", "Mps", 2)
	b.Wire("Sw", "Mps", 3)
	b.Wire("CmpA", "Iff", 0)
	b.Wire("InA", "Iff", 1)
	b.Wire("InB", "Iff", 2)
	b.Wire("InA", "CmpA", 0)
	b.Wire("InA", "Mg", 0)
	b.Wire("InB", "Mg", 1)
	b.Wire("InA", "Rl", 0)
	b.Wire("InB", "Sat", 0)
	b.Wire("InB", "Dz", 0)
	b.Wire("InA", "Qz", 0)
	for _, src := range []string{"Sw", "SwZ", "Mps", "Iff", "Mg", "Rl", "Sat", "Dz", "Qz"} {
		s.out(b, src, 0)
	}
	// Index input spans out-of-range values on purpose (clamping +
	// IndexOutOfBounds diagnosis).
	set := &testcase.Set{Sources: []testcase.Source{
		{Kind: testcase.Uniform, Lo: -5, Hi: 5, Seed: 23},
		{Kind: testcase.Uniform, Lo: -5, Hi: 5, Seed: 29},
		{Kind: testcase.Uniform, Lo: -1, Hi: 6, Seed: 31},
	}}
	equivCheck(t, "control", compile(t, b.MustBuild()), set, 4000)
}

func TestEquivalenceDiscrete(t *testing.T) {
	b := model.NewBuilder("DISC")
	s := &sinkCounter{}
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("InI", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "2"))
	b.Add("Ud", "UnitDelay", 1, 1, model.WithParam("InitialCondition", "1.5"))
	b.Add("Mem", "Memory", 1, 1)
	b.Add("Dl", "Delay", 1, 1, model.WithParam("DelayLength", "7"))
	b.Add("Ig", "DiscreteIntegrator", 1, 1, model.WithParam("Gain", "0.01"))
	b.Add("IgI", "DiscreteIntegrator", 1, 1, model.WithParam("Gain", "3"))
	b.Add("Dd", "DiscreteDerivative", 1, 1)
	b.Add("Fl", "DiscreteFilter", 1, 1, model.WithParam("A", "0.75"), model.WithParam("B", "0.25"))
	b.Add("Zoh", "ZeroOrderHold", 1, 1, model.WithParam("SampleSteps", "5"))
	b.Add("Rlim", "RateLimiter", 1, 1, model.WithParam("RisingLimit", "0.5"), model.WithParam("FallingLimit", "0.25"))
	for _, dst := range []string{"Ud", "Mem", "Dl", "Ig", "Dd", "Fl", "Zoh", "Rlim"} {
		b.Wire("In", dst, 0)
	}
	b.Wire("InI", "IgI", 0)
	for _, src := range []string{"Ud", "Mem", "Dl", "Ig", "IgI", "Dd", "Fl", "Zoh", "Rlim"} {
		s.out(b, src, 0)
	}
	equivCheck(t, "discrete", compile(t, b.MustBuild()), testcase.NewRandomSet(2, 37, -100, 100), 5000)
}

func TestEquivalenceSources(t *testing.T) {
	b := model.NewBuilder("SRC")
	s := &sinkCounter{}
	b.Add("C", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "3.5"))
	b.Add("CI", "Constant", 0, 1, model.WithOutKind(types.I16), model.WithParam("Value", "-7"))
	b.Add("St", "Step", 0, 1, model.WithParam("StepTime", "100"), model.WithParam("Before", "-1"), model.WithParam("After", "2"))
	b.Add("Rp", "Ramp", 0, 1, model.WithParam("Start", "5"), model.WithParam("Slope", "-0.125"))
	b.Add("Ck", "Clock", 0, 1, model.WithParam("SampleTime", "0.5"))
	b.Add("Sw", "SineWave", 0, 1, model.WithParam("Amplitude", "2"), model.WithParam("Frequency", "0.05"))
	b.Add("Pg", "PulseGenerator", 0, 1, model.WithParam("Period", "13"), model.WithParam("Width", "4"), model.WithParam("Amplitude", "6"))
	b.Add("SgSin", "SignalGenerator", 0, 1, model.WithOperator("sine"), model.WithParam("Period", "50"))
	b.Add("SgSq", "SignalGenerator", 0, 1, model.WithOperator("square"), model.WithParam("Period", "20"))
	b.Add("SgSaw", "SignalGenerator", 0, 1, model.WithOperator("sawtooth"), model.WithParam("Period", "30"))
	b.Add("Rn", "RandomNumber", 0, 1, model.WithParam("Seed", "99"), model.WithParam("Min", "-2"), model.WithParam("Max", "2"))
	b.Add("Gd", "Ground", 0, 1, model.WithOutKind(types.I32))
	b.Add("Ct", "Counter", 0, 1, model.WithParam("Start", "10"), model.WithParam("Inc", "3"))
	b.Add("CtF", "Counter", 0, 1, model.WithOutKind(types.F64), model.WithParam("Start", "0.5"), model.WithParam("Inc", "0.25"))
	for _, src := range []string{"C", "CI", "St", "Rp", "Ck", "Sw", "Pg", "SgSin", "SgSq", "SgSaw", "Rn", "Gd", "Ct", "CtF"} {
		s.out(b, src, 0)
	}
	equivCheck(t, "sources", compile(t, b.MustBuild()), &testcase.Set{}, 3000)
}

func TestEquivalenceVectorsAndLookup(t *testing.T) {
	b := model.NewBuilder("VEC")
	s := &sinkCounter{}
	b.Add("InA", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("InIdx", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "2"))
	b.Add("CV", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithOutWidth(3), model.WithParam("Value", "[1.5 -2 4]"))
	b.Add("Mx", "Mux", 2, 1)
	b.Add("SumV", "Sum", 2, 1, model.WithOperator("++")) // vector + broadcast scalar
	b.Add("Soe", "SumOfElements", 1, 1)
	b.Add("Poe", "ProductOfElements", 1, 1)
	b.Add("Dp", "DotProduct", 2, 1)
	b.Add("SelS", "Selector", 1, 1, model.WithParam("Indices", "[3 1]"))
	b.Add("SelD", "Selector", 2, 1)
	b.Add("Dmx", "Demux", 1, 4)
	b.Add("L1", "Lookup1D", 1, 1, model.WithParam("BreakPoints", "[-10 -1 0 1 10]"), model.WithParam("Table", "[5 1 0 1 5]"))
	b.Add("Ld", "LookupDirect", 1, 1, model.WithParam("Table", "[10 20 30 40]"), model.WithOutKind(types.I32))
	b.Add("Dtc", "DataTypeConversion", 1, 1, model.WithOutKind(types.I16))
	b.Wire("CV", "Mx", 0)
	b.Wire("InA", "Mx", 1)
	b.Wire("Mx", "SumV", 0)
	b.Wire("InA", "SumV", 1)
	b.Wire("SumV", "Soe", 0)
	b.Wire("SumV", "Poe", 0)
	b.Wire("Mx", "Dp", 0)
	b.Wire("SumV", "Dp", 1)
	b.Wire("SumV", "SelS", 0)
	b.Wire("SumV", "SelD", 0)
	b.Wire("InIdx", "SelD", 1)
	b.Wire("Mx", "Dmx", 0)
	b.Wire("InA", "L1", 0)
	b.Wire("InIdx", "Ld", 0)
	b.Wire("InA", "Dtc", 0)
	s.out(b, "Soe", 0)
	s.out(b, "Poe", 0)
	s.out(b, "Dp", 0)
	s.out(b, "SelD", 0)
	s.out(b, "L1", 0)
	s.out(b, "Ld", 0)
	s.out(b, "Dtc", 0)
	s.out(b, "Dmx", 0)
	s.out(b, "Dmx", 2)
	// SelS has width 2: route through a SumOfElements to hash it.
	b.Add("SoeSel", "SumOfElements", 1, 1)
	b.Wire("SelS", "SoeSel", 0)
	s.out(b, "SoeSel", 0)
	// Consume the remaining demux ports.
	b.Add("T1", "Terminator", 1, 0)
	b.Add("T2", "Terminator", 1, 0)
	b.Connect("Dmx", 1, "T1", 0)
	b.Connect("Dmx", 3, "T2", 0)
	set := &testcase.Set{Sources: []testcase.Source{
		{Kind: testcase.Uniform, Lo: -20, Hi: 20, Seed: 41},
		{Kind: testcase.Uniform, Lo: -2, Hi: 8, Seed: 43},
	}}
	equivCheck(t, "vectors", compile(t, b.MustBuild()), set, 3000)
}

func TestEquivalenceExtraActors(t *testing.T) {
	b := model.NewBuilder("EXTRA")
	s := &sinkCounter{}
	b.Add("InY", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("InX", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "2"))
	b.Add("Pid", "PIDController", 1, 1,
		model.WithParam("Kp", "1.5"), model.WithParam("Ki", "0.25"), model.WithParam("Kd", "0.75"))
	b.Add("Ma", "MovingAverage", 1, 1, model.WithParam("Window", "5"))
	b.Add("At", "Atan2", 2, 1)
	b.Wire("InY", "Pid", 0)
	b.Wire("Pid", "Ma", 0)
	b.Wire("InY", "At", 0)
	b.Wire("InX", "At", 1)
	for _, src := range []string{"Pid", "Ma", "At"} {
		s.out(b, src, 0)
	}
	equivCheck(t, "extra", compile(t, b.MustBuild()), testcase.NewRandomSet(2, 97, -20, 20), 4000)
}

func TestEquivalenceContinuous(t *testing.T) {
	// The §5 extension: continuous actors under every solver must stay
	// bit-identical between the interpreter and generated code.
	for _, solver := range []string{"euler", "heun", "rk4", "adams"} {
		solver := solver
		b := model.NewBuilder("CONT" + solver)
		s := &sinkCounter{}
		b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
		b.Add("Ig", "Integrator", 1, 1, model.WithOperator(solver), model.WithParam("Dt", "0.01"))
		b.Add("Lag", "FirstOrderLag", 1, 1, model.WithOperator(solver),
			model.WithParam("Dt", "0.05"), model.WithParam("TimeConstant", "0.7"),
			model.WithParam("InitialCondition", "2"))
		b.Add("Lag2", "FirstOrderLag", 1, 1, model.WithOperator(solver),
			model.WithParam("Dt", "0.05"), model.WithParam("TimeConstant", "3"))
		b.Wire("In", "Ig", 0)
		b.Wire("In", "Lag", 0)
		b.Wire("Lag", "Lag2", 0)
		s.out(b, "Ig", 0)
		s.out(b, "Lag", 0)
		s.out(b, "Lag2", 0)
		equivCheck(t, solver, compile(t, b.MustBuild()), testcase.NewRandomSet(1, 83, -5, 5), 3000)
	}
}

func TestEquivalenceDataStores(t *testing.T) {
	b := model.NewBuilder("DST")
	s := &sinkCounter{}
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1"))
	b.Add("DSM", "DataStoreMemory", 0, 0, model.WithParam("Store", "acc"), model.WithOutKind(types.I32), model.WithParam("InitialValue", "100"))
	b.Add("Rd", "DataStoreRead", 0, 1, model.WithParam("Store", "acc"), model.WithOutKind(types.I32))
	b.Add("Add", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("Wr", "DataStoreWrite", 1, 0, model.WithParam("Store", "acc"))
	b.Wire("Rd", "Add", 0)
	b.Wire("In", "Add", 1)
	b.Wire("Add", "Wr", 0)
	s.out(b, "Add", 0)
	equivCheck(t, "datastore", compile(t, b.MustBuild()), testcase.NewRandomSet(1, 47, -1000, 1000), 3000)
}

func TestEquivalenceMonitorAndCustom(t *testing.T) {
	b := model.NewBuilder("MONC")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "3"))
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Chain("In", "G", "Out")
	c := compile(t, b.MustBuild())
	set := testcase.NewRandomSet(1, 53, -10, 10)
	iopts := interp.Options{
		Monitor: []string{"G"},
		Custom:  rangeAndDelta(),
	}
	gopts := codegen.Options{
		Monitor: []string{"G"},
		Custom:  rangeAndDelta(),
	}
	ir, gr := runBoth(t, c, set, 500, iopts, gopts)
	assertEquivalent(t, ir, gr)
	if ir.MonitorHits["G"] != 500 || gr.MonitorHits["G"] != 500 {
		t.Errorf("monitor hits: interp %d, generated %d", ir.MonitorHits["G"], gr.MonitorHits["G"])
	}
	is, gs := ir.Monitor["G"], gr.Monitor["G"]
	if len(is) != len(gs) {
		t.Fatalf("sample counts differ: %d vs %d", len(is), len(gs))
	}
	for i := range is {
		if is[i] != gs[i] {
			t.Errorf("sample %d: interp %+v vs generated %+v", i, is[i], gs[i])
		}
	}
}

func rangeAndDelta() []diagnose.CustomCheck {
	return []diagnose.CustomCheck{
		{Actor: "G", Name: "range", Kind: diagnose.RangeCheck, Lo: -20, Hi: 20},
		{Actor: "G", Name: "delta", Kind: diagnose.DeltaCheck, MaxDelta: 25},
	}
}
