package codegen_test

import (
	"fmt"
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/diagnose"
	"accmos/internal/harness"
	"accmos/internal/interp"
	"accmos/internal/model"
	"accmos/internal/opt/partition"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// The partition oracle: a pipelined build must be bit-identical to the
// sequential build AND to the interpreter — output hash, coverage
// bitmaps, diagnosis aggregates and the verbatim record stream — in
// one-shot and batch-lane modes.

// wideComputeModel: nChains independent transcendental chains merged
// into shared outputs — plenty of legal boundaries.
func wideComputeModel(t *testing.T, nChains, depth int) *actors.Compiled {
	t.Helper()
	b := model.NewBuilder("PARTWIDE")
	for ci := 0; ci < nChains; ci++ {
		in := fmt.Sprintf("In%d", ci)
		b.Add(in, "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", fmt.Sprint(ci+1)))
		prev := in
		for d := 0; d < depth; d++ {
			name := fmt.Sprintf("M%d_%d", ci, d)
			op := []string{"tanh", "sin", "cos", "exp"}[d%4]
			b.Add(name, "Math", 1, 1, model.WithOperator(op))
			b.Wire(prev, name, 0)
			prev = name
		}
		out := fmt.Sprintf("Out%d", ci)
		b.Add(out, "Outport", 1, 0, model.WithParam("Port", fmt.Sprint(ci+1)))
		b.Wire(prev, out, 0)
	}
	return compile(t, b.MustBuild())
}

// messyPartitionModel exercises everything that could go wrong across a
// cut: stateful feedback, a data store read/modify/write, diagnosis-
// firing math (log/sqrt on signed inputs), an enable-gated block, a
// monitor and custom checks — then long chains so a 2-way cut exists.
func messyPartitionModel(t *testing.T) *actors.Compiled {
	t.Helper()
	b := model.NewBuilder("PARTMESS")
	b.Add("InA", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("InB", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "2"))
	// Feedback accumulator (backward state edge).
	b.Add("Del", "UnitDelay", 1, 1)
	b.Add("Fb", "Sum", 2, 1, model.WithOperator("++"))
	b.Wire("InA", "Fb", 0)
	b.Wire("Del", "Fb", 1)
	b.Wire("Fb", "Del", 0)
	// Diagnosis-firing math on signed stimulus.
	b.Add("Lg", "Math", 1, 1, model.WithOperator("log"))
	b.Wire("InB", "Lg", 0)
	b.Add("Sq", "Sqrt", 1, 1)
	b.Wire("InA", "Sq", 0)
	// Gated gain: enable toggles with the sign of InB.
	b.Add("Pos", "CompareToZero", 1, 1, model.WithOperator(">="))
	b.Wire("InB", "Pos", 0)
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "1.5"), model.WithParam("EnabledBy", "Pos"))
	b.Wire("InA", "G", 0)
	// Data store read/modify/write.
	b.Add("Mem", "DataStoreMemory", 0, 0, model.WithParam("Store", "acc"))
	b.Add("AccR", "DataStoreRead", 0, 1, model.WithParam("Store", "acc"), model.WithOutKind(types.F64))
	b.Add("Mix", "Sum", 2, 1, model.WithOperator("++"))
	b.Wire("AccR", "Mix", 0)
	b.Wire("Sq", "Mix", 1)
	b.Add("AccW", "DataStoreWrite", 1, 0, model.WithParam("Store", "acc"))
	b.Wire("Mix", "AccW", 0)
	// Long transcendental tails give the cutter room on both sides.
	prev := "Fb"
	for d := 0; d < 10; d++ {
		name := fmt.Sprintf("TA%d", d)
		b.Add(name, "Math", 1, 1, model.WithOperator("tanh"))
		b.Wire(prev, name, 0)
		prev = name
	}
	tailA := prev
	prev = "Lg"
	for d := 0; d < 10; d++ {
		name := fmt.Sprintf("TB%d", d)
		b.Add(name, "Math", 1, 1, model.WithOperator("sin"))
		b.Wire(prev, name, 0)
		prev = name
	}
	tailB := prev
	b.Add("Join", "Sum", 3, 1, model.WithOperator("+++"))
	b.Wire(tailA, "Join", 0)
	b.Wire(tailB, "Join", 1)
	b.Wire("G", "Join", 2)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Wire("Join", "Out1", 0)
	b.Add("Out2", "Outport", 1, 0, model.WithParam("Port", "2"))
	b.Wire("Mix", "Out2", 0)
	return compile(t, b.MustBuild())
}

func messyOpts() codegen.Options {
	return codegen.Options{
		Coverage: true,
		Diagnose: true,
		Monitor:  []string{"Fb"},
		Custom: []diagnose.CustomCheck{
			{Actor: "Mix", Name: "range", Kind: diagnose.RangeCheck, Lo: -1e6, Hi: 25},
		},
	}
}

// assertIdenticalResults compares two generated runs field by field,
// including the verbatim diag record stream (stronger than the
// cross-engine oracle, which compares aggregates).
func assertIdenticalResults(t *testing.T, seq, par *simresult.Results) {
	t.Helper()
	assertEquivalent(t, seq, par)
	if len(seq.Diags) != len(par.Diags) {
		t.Fatalf("diag records: sequential %d vs partitioned %d", len(seq.Diags), len(par.Diags))
	}
	for i := range seq.Diags {
		if seq.Diags[i] != par.Diags[i] {
			t.Errorf("diag record %d: sequential %+v vs partitioned %+v", i, seq.Diags[i], par.Diags[i])
		}
	}
	for k, vs := range seq.Monitor {
		vp := par.Monitor[k]
		if len(vs) != len(vp) {
			t.Fatalf("monitor %q: %d vs %d samples", k, len(vs), len(vp))
			continue
		}
		for i := range vs {
			if vs[i] != vp[i] {
				t.Errorf("monitor %q sample %d: %+v vs %+v", k, i, vs[i], vp[i])
			}
		}
	}
}

func buildPair(t *testing.T, c *actors.Compiled, base codegen.Options, set *testcase.Set, k int) (*codegen.Program, *codegen.Program) {
	t.Helper()
	base.TestCases = set
	seq, err := codegen.Generate(c, base)
	if err != nil {
		t.Fatal(err)
	}
	plan := partition.Build(c, k)
	if plan.Usable < 2 {
		t.Fatalf("no usable %d-way cut: %s", k, plan.Declined)
	}
	popts := base
	popts.Partition = plan
	par, err := codegen.Generate(c, popts)
	if err != nil {
		t.Fatal(err)
	}
	if par.Partitions != plan.Usable {
		t.Fatalf("Program.Partitions = %d, want %d", par.Partitions, plan.Usable)
	}
	return seq, par
}

func TestPartitionedEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		c     *actors.Compiled
		opts  codegen.Options
		set   *testcase.Set
		steps int64
		ks    []int
	}{
		{
			name:  "wide",
			c:     wideComputeModel(t, 8, 6),
			opts:  codegen.Options{Coverage: true, Diagnose: true},
			set:   testcase.NewRandomSet(8, 41, -30, 30),
			steps: 3000,
			ks:    []int{2, 4},
		},
		{
			name:  "messy",
			c:     messyPartitionModel(t),
			opts:  messyOpts(),
			set:   testcase.NewRandomSet(2, 43, -40, 40),
			steps: 3000,
			ks:    []int{2},
		},
	}
	for _, tc := range cases {
		tc := tc
		for _, k := range tc.ks {
			k := k
			t.Run(fmt.Sprintf("%s/%dway", tc.name, k), func(t *testing.T) {
				t.Parallel()
				seqProg, parProg := buildPair(t, tc.c, tc.opts, tc.set, k)
				dir := t.TempDir()
				seqRes, err := harness.BuildAndRun(seqProg, dir, harness.RunOptions{Steps: tc.steps})
				if err != nil {
					t.Fatal(err)
				}
				parRes, err := harness.BuildAndRun(parProg, dir, harness.RunOptions{Steps: tc.steps})
				if err != nil {
					t.Fatal(err)
				}
				assertIdenticalResults(t, seqRes, parRes)

				// Third leg: the interpreter agrees with the pipelined build.
				e, err := interp.New(tc.c, interp.Options{Coverage: true, Diagnose: true,
					Monitor: tc.opts.Monitor, Custom: tc.opts.Custom})
				if err != nil {
					t.Fatal(err)
				}
				ir, err := e.Run(tc.set, tc.steps)
				if err != nil {
					t.Fatal(err)
				}
				assertEquivalent(t, ir, parRes)
			})
		}
	}
}

// Batch lanes and partitioned builds compose: modelExe drives the
// singleton frame through all stages, so runBatch on a partitioned
// binary must match the sequential binary lane for lane.
func TestPartitionedBatchLanes(t *testing.T) {
	c := messyPartitionModel(t)
	set := testcase.NewRandomSet(2, 47, -40, 40)
	seqProg, parProg := buildPair(t, c, messyOpts(), set, 2)
	dir := t.TempDir()
	seqBin, _, err := harness.Build(seqProg, dir)
	if err != nil {
		t.Fatal(err)
	}
	parBin, _, err := harness.Build(parProg, dir)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []uint64{0, 1, 2, 0xdeadbeef}
	seqLanes, seqCov, err := harness.RunBatch(t.Context(), seqBin, harness.RunOptions{Steps: 1500}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	parLanes, parCov, err := harness.RunBatch(t.Context(), parBin, harness.RunOptions{Steps: 1500}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqLanes) != len(parLanes) {
		t.Fatalf("lane counts: %d vs %d", len(seqLanes), len(parLanes))
	}
	for i := range seqLanes {
		if seqLanes[i].OutputHash != parLanes[i].OutputHash {
			t.Errorf("lane %d hash: sequential %x vs partitioned %x", i, seqLanes[i].OutputHash, parLanes[i].OutputHash)
		}
		if seqLanes[i].DiagTotal != parLanes[i].DiagTotal {
			t.Errorf("lane %d diagTotal: %d vs %d", i, seqLanes[i].DiagTotal, parLanes[i].DiagTotal)
		}
	}
	if (seqCov == nil) != (parCov == nil) {
		t.Fatalf("batch coverage presence differs")
	}
	if seqCov != nil {
		for i := range seqCov.Actor {
			if seqCov.Actor[i] != parCov.Actor[i] {
				t.Fatalf("batch actor bitmap differs at %d", i)
			}
		}
	}
}

// A usable partition plan must change the build-cache key; a declined
// one must not (it emits sequential source and may share the artifact).
func TestPartitionHashDistinct(t *testing.T) {
	c := wideComputeModel(t, 8, 6)
	set := testcase.NewRandomSet(8, 53, -10, 10)
	base := codegen.Options{Coverage: true, TestCases: set}
	seq, err := codegen.Generate(c, base)
	if err != nil {
		t.Fatal(err)
	}
	popts := base
	popts.Partition = partition.Build(c, 2)
	par, err := codegen.Generate(c, popts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Hash() == par.Hash() {
		t.Fatal("2-way and 1-way builds share a hash")
	}
	dopts := base
	dopts.Partition = &partition.Plan{Requested: 4, Usable: 1, Declined: "test"}
	dec, err := codegen.Generate(c, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash() != seq.Hash() {
		t.Fatal("declined partition plan must share the sequential hash")
	}
	if dec.Source != seq.Source {
		t.Fatal("declined partition plan must emit sequential source")
	}
}

// StopOnDiag runs decline partitioning at generation time.
func TestPartitionStopOnDiagDeclines(t *testing.T) {
	c := messyPartitionModel(t)
	set := testcase.NewRandomSet(2, 59, -40, 40)
	opts := messyOpts()
	opts.TestCases = set
	opts.StopOnDiag = diagnose.DomainError
	opts.Partition = partition.Build(c, 2)
	p, err := codegen.Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Partitions != 1 {
		t.Fatalf("StopOnDiag build got %d partitions, want sequential", p.Partitions)
	}
	if strings.Contains(p.Source, "partStep0") {
		t.Fatal("StopOnDiag build emitted pipelined code")
	}
}

// The emitted pipelined source carries the expected shape.
func TestPartitionedSourceShape(t *testing.T) {
	c := wideComputeModel(t, 8, 6)
	set := testcase.NewRandomSet(8, 61, -10, 10)
	opts := codegen.Options{Coverage: true, Diagnose: true, TestCases: set}
	opts.Partition = partition.Build(c, 2)
	p, err := codegen.Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"const partitionCount = 2",
		"type pframe struct",
		"func fillStimulus(f *pframe)",
		"func partStep0(f *pframe)",
		"func partStep1(f *pframe)",
		"func mergeDiags()",
		"var diagPos",
		"emitHeartbeatPartial",
		"stageCh[0] <- f",
	} {
		if !strings.Contains(p.Source, want) {
			t.Errorf("partitioned source is missing %q", want)
		}
	}
}
