package codegen_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/testcase"
)

// The determinism hammer: a 4-way pipelined build compiled with the race
// detector must survive repeated runs with zero data-race reports and
// byte-identical results every time. The harness deliberately builds
// generated programs without -race (production binaries), so this test
// compiles the emitted source itself.
func TestPartitionedRaceHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("race hammer is slow; skipped in -short mode")
	}
	c := wideComputeModel(t, 8, 6)
	set := testcase.NewRandomSet(8, 67, -25, 25)
	// Every instrumentation surface the pipelined emitter must keep
	// partition-local: coverage bitmaps, diag slots, the frame hand-off.
	seqProg, parProg := buildPair(t, c, codegen.Options{Coverage: true, Diagnose: true}, set, 4)

	dir := t.TempDir()
	const steps = 2000
	ref, err := harness.BuildAndRun(seqProg, dir, harness.RunOptions{Steps: steps})
	if err != nil {
		t.Fatal(err)
	}

	src := filepath.Join(dir, "part_race.go")
	if err := os.WriteFile(src, []byte(parProg.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "part_race")
	cmd := exec.Command("go", "build", "-race", "-o", bin, src)
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := cmd.CombinedOutput(); err != nil {
		if strings.Contains(string(out), "requires cgo") {
			t.Skipf("race detector unavailable here: %s", out)
		}
		t.Fatalf("go build -race: %v\n%s", err, out)
	}

	// The race runtime exits non-zero on any detected race, so a clean
	// harness.Run already implies no report; the repeated runs then pin
	// down scheduling-order determinism, not just memory safety.
	for run := 0; run < 5; run++ {
		res, err := harness.RunContext(context.Background(), bin, harness.RunOptions{Steps: steps})
		if err != nil {
			t.Fatalf("race run %d: %v", run, err)
		}
		assertIdenticalResults(t, ref, res)
		if t.Failed() {
			t.Fatalf("race run %d diverged from the sequential reference", run)
		}
	}
}
