// Package codegen is the paper's primary contribution: simulation-oriented
// code generation for dataflow models. It translates a compiled model into
// a self-contained Go program instrumented for runtime actor information
// collection (signal monitor), coverage collection (actor / condition /
// decision / MC/DC bitmaps), and calculation diagnosis (generated
// diagnostic functions per actor type and operator), then synthesises the
// simulation main function with test-case import and result output —
// the three-step pipeline of the paper's Figure 2 and Algorithm 1.
package codegen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"accmos/internal/actors"
	"accmos/internal/coverage"
	"accmos/internal/diagnose"
	"accmos/internal/obs"
	"accmos/internal/opt/iremit"
	"accmos/internal/opt/irplan"
	"accmos/internal/opt/partition"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// Options configures generation, mirroring interp.Options so experiments
// can run both engines with identical functionality enabled.
type Options struct {
	Coverage bool
	Diagnose bool
	// Monitor lists actor names whose outputs are signal-monitored (the
	// collectList of Algorithm 1). Monitored actors must have scalar
	// outputs.
	Monitor []string
	// Custom lists custom signal diagnoses. CallbackCheck is not
	// supported in generated code (a Go closure cannot be serialised);
	// use RangeCheck or DeltaCheck.
	Custom []diagnose.CustomCheck
	// MaxDiagRecords bounds verbatim diagnostic records (default 64).
	MaxDiagRecords int
	// MaxMonitorSamples bounds per-actor monitor samples (default 16).
	MaxMonitorSamples int
	// StopOnDiag stops the simulation loop at the end of the step in
	// which this diagnosis kind first fires. StopOnActor optionally
	// narrows the trigger to one actor path.
	StopOnDiag  diagnose.Kind
	StopOnActor string
	// TestCases embeds the stimulus generators; required.
	TestCases *testcase.Set
	// DefaultSteps is the -steps default baked into the binary.
	DefaultSteps int64
	// Trace records "instrument" and "generate" phase spans (nil ok).
	Trace *obs.Tracer

	// Layout overrides the coverage layout (default: derived from c). The
	// optimizer passes the ORIGINAL model's layout here so an optimized
	// program's bitmaps stay shape- and slot-identical to an O0 run.
	// Every scheduled actor must be present in the override.
	Layout *coverage.Layout
	// Premark holds coverage bits the optimizer proved statically for
	// removed instrumentation sites; they are set once in modelInit.
	Premark *coverage.Raw
	// Opt labels the optimization level that produced c (e.g. "O0",
	// "O1"). It feeds Program.Hash so distinct levels never collide in
	// the build cache, even when they happen to emit identical source.
	Opt string
	// Plan carries the O2 middle-end's fusion/hoist/narrow decisions
	// (nil below O2). Actors the plan inlined emit no statement; planned
	// roots emit one fused assignment in their storage kind.
	Plan *irplan.Plan
	// Partition carries a goroutine-pipelining plan (nil or Usable < 2 =
	// sequential). Partitioned generation is declined when StopOnDiag is
	// set: mid-step stop requests would have to propagate across pipeline
	// stages mid-flight, which cannot reproduce the sequential stop step.
	Partition *partition.Plan
}

func (o *Options) fillDefaults() {
	if o.MaxDiagRecords == 0 {
		o.MaxDiagRecords = 64
	}
	if o.MaxMonitorSamples == 0 {
		o.MaxMonitorSamples = 16
	}
	if o.DefaultSteps == 0 {
		o.DefaultSteps = 1000
	}
}

// Program is a generated simulation program.
type Program struct {
	Source string
	Model  string
	Layout *coverage.Layout
	// Opt is the optimization level label ("O0", "O1", "O2"; "" for
	// direct Generate calls that bypass the optimizer).
	Opt string
	// Partitions is the effective pipeline width baked into the program
	// (1 = sequential, including declined partition requests).
	Partitions int
}

// Hash returns a stable hex key identifying the program: the SHA-256 of
// the model name, the opt level and the source text. The source embeds
// the model structure, every codegen option (coverage, diagnosis,
// monitors, stop conditions, default steps) and the test-case constants,
// so two programs share a hash exactly when `go build` would produce the
// same binary — this is the build-cache key and the harness's
// artifact-name suffix. The opt level is hashed separately because two
// levels can emit identical source (no pass fired) yet must never serve
// each other's cache entries: a later submission at the other level would
// otherwise inherit the wrong label in results and metrics. The effective
// partition width is hashed for the same reason: a declined K-way request
// emits sequential source and must share the sequential cache entry,
// while a usable K-way build must never collide with the 1-way build.
func (p *Program) Hash() string {
	parts := p.Partitions
	if parts < 1 {
		parts = 1
	}
	h := sha256.New()
	h.Write([]byte(p.Model))
	h.Write([]byte{0})
	h.Write([]byte(p.Opt))
	h.Write([]byte{0})
	h.Write([]byte(fmt.Sprintf("P%d", parts)))
	h.Write([]byte{0})
	h.Write([]byte(p.Source))
	return hex.EncodeToString(h.Sum(nil))
}

// stateVar is one tracked mutable global: its name and its Go type.
// Plain assignment of the type must copy the value (scalars and arrays —
// the shapes actor templates emit); slice-typed runtime state
// (diagRecords, monSamples) is handled explicitly by laneState.
type stateVar struct {
	name, typ string
}

// Generator drives one generation run and implements actors.ProgramSink.
type Generator struct {
	c    *actors.Compiled
	opts Options

	layout *coverage.Layout

	imports map[string]bool
	globals []string
	inits   []string
	updates []string

	// Partitioned generation: parts is the effective pipeline width (1 =
	// sequential). partAssign maps schedule index -> partition; curPart
	// tracks the partition of the actor being instrumented so statement
	// sinks (body writes, UpdateStmt) land in the right stage; updateParts
	// records the owning partition per updates entry; partBodies holds one
	// step-statement stream per stage (g.body aliases the current one).
	parts       int
	partAssign  []int
	curPart     int
	updateParts []int
	partBodies  []*strings.Builder

	// stateVars lists every mutable zero-valued global ("var NAME TYPE"):
	// the per-run state modelReset restores to its fresh-process value
	// before replaying modelInit, and the state the batch entry point
	// swaps in and out per seed lane (laneState holds one field per
	// entry). Initializer-bearing declarations (read-only tables) and
	// function declarations are excluded — they carry no per-run state.
	stateVars []stateVar

	// outVar names each actor output's generated variable.
	outVar map[string][]string

	// outBindings maps outport order position -> bound input expression.
	outBindings map[string]string

	storeVars  map[string]string
	storeKinds map[string]types.Kind

	// diag slot assignment: key "actor|kind" -> slot.
	diagSlots map[string]int
	diagNames []string // slot -> "path|kind"
	diagStop  []bool

	// monitor slot assignment.
	monSlots []string // slot -> actor name
	monPaths []string // slot -> path

	rules map[string][]diagnose.Kind

	// gateCond is the enable condition of the actor currently being
	// instrumented ("" when unconditional); UpdateStmt wraps state commits
	// with it so disabled actors freeze their state.
	gateCond string

	body      *strings.Builder
	diagFuncs strings.Builder

	// emitter renders O2 fused expressions (nil plan → unused).
	emitter *iremit.Emitter
}

// Generate produces the instrumented simulation program for a compiled
// model.
func Generate(c *actors.Compiled, opts Options) (*Program, error) {
	opts.fillDefaults()
	if opts.TestCases == nil {
		return nil, fmt.Errorf("codegen: Options.TestCases is required")
	}
	if len(opts.TestCases.Sources) != len(c.Inports) {
		return nil, fmt.Errorf("codegen: %d test-case sources for %d inports",
			len(opts.TestCases.Sources), len(c.Inports))
	}
	if err := opts.TestCases.Validate(); err != nil {
		return nil, err
	}
	layout := opts.Layout
	if layout == nil {
		layout = coverage.NewLayout(c)
	} else {
		// A layout override must cover every scheduled actor; a missing
		// name would silently alias instrumentation onto slot 0.
		for _, info := range c.Order {
			if _, ok := layout.ActorIndex[info.Actor.Name]; !ok {
				return nil, fmt.Errorf("codegen: layout override is missing actor %q", info.Actor.Name)
			}
		}
	}
	if opts.Premark != nil {
		if len(opts.Premark.Actor) != len(layout.ActorPaths) ||
			len(opts.Premark.Cond) != layout.CondBits ||
			len(opts.Premark.Dec) != layout.DecBits ||
			len(opts.Premark.MCDC) != layout.MCDCBits {
			return nil, fmt.Errorf("codegen: premark bitmap sizes do not match the coverage layout")
		}
	}
	// Effective pipeline width: a plan only takes hold when its cut is
	// usable and no stop-on-diagnosis is requested (a mid-step stop cannot
	// be replayed bit-identically across pipeline stages).
	parts := 1
	var assign []int
	if pp := opts.Partition; pp != nil && pp.Usable >= 2 && opts.StopOnDiag == "" {
		if len(pp.Assign) != len(c.Order) {
			return nil, fmt.Errorf("codegen: partition plan covers %d actors, schedule has %d",
				len(pp.Assign), len(c.Order))
		}
		parts = pp.Usable
		assign = pp.Assign
	}
	g := &Generator{
		c:           c,
		opts:        opts,
		body:        &strings.Builder{},
		parts:       parts,
		partAssign:  assign,
		layout:      layout,
		imports:     map[string]bool{"flag": true, "fmt": true, "os": true, "time": true, "encoding/json": true},
		outVar:      make(map[string][]string),
		outBindings: make(map[string]string),
		storeVars:   make(map[string]string),
		storeKinds:  make(map[string]types.Kind),
		diagSlots:   make(map[string]int),
		rules:       make(map[string][]diagnose.Kind),
	}
	g.emitter = &iremit.Emitter{
		VarName: func(index, port int) string { return fmt.Sprintf("v%d_%d", index, port) },
		Plan:    opts.Plan,
	}
	if parts > 1 {
		g.partBodies = make([]*strings.Builder, parts)
		for i := range g.partBodies {
			g.partBodies[i] = &strings.Builder{}
		}
		g.body = g.partBodies[0]
	}
	ins := opts.Trace.Start("instrument")
	if err := g.prepare(); err != nil {
		ins.End()
		return nil, err
	}
	if err := g.instrumentActors(); err != nil {
		ins.End()
		return nil, err
	}
	if g.emitter.NeedMath {
		g.Import("math")
	}
	ins.End()
	gen := opts.Trace.Start("generate")
	src, err := g.synthesize()
	gen.End()
	if err != nil {
		return nil, err
	}
	return &Program{Source: src, Model: c.Model.Name, Layout: g.layout, Opt: opts.Opt, Partitions: parts}, nil
}

// prepare assigns data-store variables, diagnosis slots, monitor slots and
// validates custom checks.
func (g *Generator) prepare() error {
	for _, ds := range g.c.DataStores {
		name := actors.StoreName(ds)
		if _, dup := g.storeVars[name]; dup {
			return fmt.Errorf("codegen: duplicate data store %q", name)
		}
		v := fmt.Sprintf("ds_%s", sanitize(name))
		g.storeVars[name] = v
		k := actors.StoreKind(ds)
		g.storeKinds[name] = k
		g.Global(fmt.Sprintf("var %s %s", v, k.GoType()))
		g.inits = append(g.inits, fmt.Sprintf("%s = %s", v, actors.StoreInit(ds).GoLiteral()))
	}

	allocSlot := func(info *actors.Info, kind diagnose.Kind) {
		key := info.Actor.Name + "|" + string(kind)
		if _, dup := g.diagSlots[key]; dup {
			return
		}
		g.diagSlots[key] = len(g.diagNames)
		g.diagNames = append(g.diagNames, info.Path+"|"+string(kind))
		stop := g.opts.StopOnDiag != "" && kind == g.opts.StopOnDiag &&
			(g.opts.StopOnActor == "" || info.Path == g.opts.StopOnActor)
		g.diagStop = append(g.diagStop, stop)
	}
	if g.opts.Diagnose {
		for _, info := range g.c.Order {
			rs := diagnose.RulesFor(info)
			if len(rs) > 0 {
				g.rules[info.Actor.Name] = rs
				for _, k := range rs {
					allocSlot(info, k)
				}
			}
		}
	}
	for i := range g.opts.Custom {
		chk := &g.opts.Custom[i]
		if err := chk.Validate(); err != nil {
			return err
		}
		if chk.Kind == diagnose.CallbackCheck {
			return fmt.Errorf("codegen: custom check %q: CallbackCheck is interpreter-only", chk.Name)
		}
		info := g.c.Info(chk.Actor)
		if info == nil {
			return fmt.Errorf("codegen: custom check %q references unknown actor %q", chk.Name, chk.Actor)
		}
		if len(info.Actor.Outputs) == 0 || info.OutWidth() > 1 {
			return fmt.Errorf("codegen: custom check %q: actor %q must have a scalar output", chk.Name, chk.Actor)
		}
		allocSlot(info, diagnose.Custom)
	}
	for _, name := range g.opts.Monitor {
		info := g.c.Info(name)
		if info == nil {
			return fmt.Errorf("codegen: monitor references unknown actor %q", name)
		}
		if len(info.Actor.Outputs) == 0 {
			return fmt.Errorf("codegen: monitored actor %q has no output", name)
		}
		g.monSlots = append(g.monSlots, name)
		g.monPaths = append(g.monPaths, info.Path)
	}
	// O2 hoisted loop invariants: one global per folded subtree, assigned
	// its pre-computed value in modelInit. Being stateVars they round-trip
	// through modelReset (zeroed, then reassigned by the init replay) and
	// the batch lane save/restore — both are value-preserving.
	if p := g.opts.Plan; p != nil {
		for _, h := range p.Hoisted {
			g.Global(fmt.Sprintf("var %s %s", h.Name, h.Val.Kind.GoType()))
			lit := h.Val.GoLiteral()
			if strings.Contains(lit, "math.") {
				g.Import("math")
			}
			g.inits = append(g.inits, fmt.Sprintf("%s = %s", h.Name, lit))
		}
	}
	return nil
}

// sanitize turns an arbitrary identifier-ish string into a Go identifier
// fragment.
func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// ---- actors.ProgramSink implementation ----

// Global registers a package-level declaration. Declarations of the
// shape "var NAME TYPE" (mutable state relying on Go zero values) are
// additionally tracked for modelReset; declarations with initializers
// (constant tables) and func declarations are emitted verbatim only.
func (g *Generator) Global(decl string) {
	g.globals = append(g.globals, decl)
	if body, ok := strings.CutPrefix(decl, "var "); ok && !strings.Contains(body, "=") {
		if name, typ, ok := strings.Cut(body, " "); ok {
			g.stateVars = append(g.stateVars, stateVar{name: name, typ: typ})
		}
	}
}

// InitStmt registers a modelInit statement.
func (g *Generator) InitStmt(stmt string) { g.inits = append(g.inits, stmt) }

// UpdateStmt registers an end-of-step statement, gated by the current
// actor's enable condition when it executes conditionally.
func (g *Generator) UpdateStmt(stmt string) {
	if g.gateCond != "" {
		stmt = fmt.Sprintf("if %s { %s }", g.gateCond, stmt)
	}
	g.updates = append(g.updates, stmt)
	g.updateParts = append(g.updateParts, g.curPart)
}

// Import requests an import.
func (g *Generator) Import(pkg string) { g.imports[pkg] = true }

// ExternalInput returns the stimulus expression for an Inport, converted
// from the raw float64 test-case value to the port kind — the same path
// the interpreter takes through types.Convert.
func (g *Generator) ExternalInput(info *actors.Info) string {
	for i, ip := range g.c.Inports {
		if ip == info {
			return actors.Cast(fmt.Sprintf("tcIn%d", i), types.F64, info.OutKind())
		}
	}
	return "0 /* unbound inport */"
}

// BindOutput records an Outport's source expression for hashing.
func (g *Generator) BindOutput(info *actors.Info, expr string) {
	g.outBindings[info.Actor.Name] = expr
}

// DataStoreVar returns the variable name of a named store.
func (g *Generator) DataStoreVar(name string) string { return g.storeVars[name] }

// DataStoreKind returns the declared kind of a named store.
func (g *Generator) DataStoreKind(name string) types.Kind { return g.storeKinds[name] }

// DiagSlotFor returns the report slot for (actor, kind), or -1.
func (g *Generator) DiagSlotFor(actor string, kind diagnose.Kind) int {
	if slot, ok := g.diagSlots[actor+"|"+string(kind)]; ok {
		return slot
	}
	return -1
}

// DiagSlot implements actors.ProgramSink for actor templates.
func (g *Generator) DiagSlot(info *actors.Info, kind string) int {
	return g.DiagSlotFor(info.Actor.Name, diagnose.Kind(kind))
}

// varName returns the generated variable for an actor's output port.
func (g *Generator) varName(info *actors.Info, port int) string {
	return fmt.Sprintf("v%d_%d", info.Index, port)
}

// sortedImports returns the import list, sorted.
func (g *Generator) sortedImports() []string {
	out := make([]string, 0, len(g.imports))
	for p := range g.imports {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
