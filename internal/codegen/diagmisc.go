package codegen

import (
	"fmt"

	"accmos/internal/actors"
	"accmos/internal/diagnose"
	"accmos/internal/types"
)

// dtcChecks emits the DataTypeConversion diagnosis: out-of-range and
// precision-loss conditions per (source, target) kind pair, mirroring
// types.Convert's flag semantics case by case.
func (g *Generator) dtcChecks(d *diagWriter, info *actors.Info, has func(diagnose.Kind) bool, outParam string) {
	from := info.InKinds[0]
	to := info.OutKind()
	w := info.OutWidth()
	d.forWidth(w, func(ix string) {
		in := elem("in0", info.InWidths[0], ix)
		out := elem(outParam, w, ix)
		switch {
		case to == types.Bool || from == types.Bool:
			// Bool conversions are always lossless in the flag sense.
		case to.IsSigned() && from.IsSigned():
			if has(diagnose.OutOfRange) {
				d.L("%s = %s || int64(%s) != int64(%s)", d.flag("oor"), "oor", out, in)
			}
		case to.IsSigned() && from.IsUnsigned():
			if has(diagnose.OutOfRange) {
				d.L("%s = %s || uint64(%s) > 9223372036854775807 || int64(%s) != int64(%s)",
					d.flag("oor"), "oor", in, out, in)
			}
		case to.IsUnsigned() && from.IsSigned():
			if has(diagnose.OutOfRange) {
				d.L("%s = %s || int64(%s) < 0 || uint64(%s) != uint64(%s)",
					d.flag("oor"), "oor", in, out, in)
			}
		case to.IsUnsigned() && from.IsUnsigned():
			if has(diagnose.OutOfRange) {
				d.L("%s = %s || uint64(%s) != uint64(%s)", d.flag("oor"), "oor", out, in)
			}
		case to.IsInteger() && from.IsFloat():
			g.Import("math")
			f := d.tmp("f")
			d.L("%s := float64(%s)", f, in)
			if has(diagnose.PrecisionLoss) {
				d.L("%s = %s || (%s != math.Trunc(%s) && !math.IsNaN(%s))", d.flag("ploss"), "ploss", f, f, f)
			}
			if has(diagnose.OutOfRange) {
				oor := d.flag("oor")
				if to.IsSigned() {
					d.block(fmt.Sprintf("if math.IsNaN(%s) || %s >= 9223372036854775807 || %s <= -9223372036854775808", f, f, f), func() {
						d.L("%s = true", oor)
					})
					d.block(fmt.Sprintf("else if int64(%s) != int64(%s)", out, f), func() {
						d.L("%s = true", oor)
					})
				} else {
					d.block(fmt.Sprintf("if math.IsNaN(%s) || %s >= 18446744073709551615 || %s < 0", f, f, f), func() {
						d.L("%s = true", oor)
					})
					d.block(fmt.Sprintf("else if uint64(%s) != uint64(%s)", out, f), func() {
						d.L("%s = true", oor)
					})
				}
			}
		case to.IsFloat() && from.IsInteger():
			// Only 64-bit integers can lose precision (rule gate).
			if has(diagnose.PrecisionLoss) {
				if from == types.I64 && to == types.F64 {
					d.L("%s = %s || int64(float64(%s)) != %s", d.flag("ploss"), "ploss", in, in)
				} else if from == types.U64 && to == types.F64 {
					d.L("%s = %s || uint64(float64(%s)) != %s", d.flag("ploss"), "ploss", in, in)
				} else if to == types.F32 {
					f := d.tmp("f")
					d.L("%s := float64(%s)", f, in)
					d.L("%s = %s || float64(float32(%s)) != %s", d.flag("ploss"), "ploss", f, f)
				}
			}
		case to == types.F32 && from == types.F64:
			// Narrowing float: interp flags PrecisionLoss only, which the
			// DataTypeConversion rule set does not include for this pair,
			// so there is nothing to report.
		}
	})
}

// miscChecks covers Polynomial, DotProduct, the element reducers, and
// DeadZone.
func (g *Generator) miscChecks(d *diagWriter, info *actors.Info, has func(diagnose.Kind) bool,
	outParam string, castElem func(int, string) string, nanCheck func(string)) {
	k := info.OutKind()
	switch info.Actor.Type {
	case "Polynomial":
		nanCheck(outParam)

	case "DotProduct":
		if !k.IsInteger() && !k.IsFloat() {
			return
		}
		width := info.InWidths[0]
		if info.InWidths[1] > width {
			width = info.InWidths[1]
		}
		acc := d.tmp("acc")
		d.L("var %s %s", acc, k.GoType())
		wrap := func(fn func(ix string)) {
			if width <= 1 {
				fn("")
			} else {
				d.block(fmt.Sprintf("for i := 0; i < %d; i++", width), func() { fn("[i]") })
			}
		}
		wrap(func(ix string) {
			p := d.tmp("p")
			n := d.tmp("n")
			d.L("var %s %s", p, k.GoType())
			d.L("var %s %s", n, k.GoType())
			if k.IsInteger() {
				d.Ls(actors.CheckedMulStmts(k, p, castElem(0, ix), castElem(1, ix), d.flag("ovf"), d.tmp("m")))
				d.Ls(actors.CheckedAddStmts(k, n, acc, p, d.flag("ovf")))
			} else {
				d.L("%s = %s", p, binE(k, castElem(0, ix), "*", castElem(1, ix)))
				nanCheck(p)
				d.L("%s = %s", n, binE(k, acc, "+", p))
				nanCheck(n)
			}
			d.L("%s = %s", acc, n)
		})
		d.L("_ = %s", acc)

	case "SumOfElements", "ProductOfElements":
		if !k.IsInteger() && !k.IsFloat() {
			return
		}
		width := info.InWidths[0]
		isSum := info.Actor.Type == "SumOfElements"
		acc := d.tmp("acc")
		if isSum {
			d.L("var %s %s", acc, k.GoType())
		} else {
			d.L("%s := %s", acc, oneLit(k))
		}
		wrap := func(fn func(ix string)) {
			if width <= 1 {
				fn("")
			} else {
				d.block(fmt.Sprintf("for i := 0; i < %d; i++", width), func() { fn("[i]") })
			}
		}
		wrap(func(ix string) {
			n := d.tmp("n")
			d.L("var %s %s", n, k.GoType())
			if k.IsInteger() {
				if isSum {
					d.Ls(actors.CheckedAddStmts(k, n, acc, castElem(0, ix), d.flag("ovf")))
				} else {
					d.Ls(actors.CheckedMulStmts(k, n, acc, castElem(0, ix), d.flag("ovf"), d.tmp("m")))
				}
			} else {
				op := "+"
				if !isSum {
					op = "*"
				}
				d.L("%s = %s", n, binE(k, acc, op, castElem(0, ix)))
				nanCheck(n)
			}
			d.L("%s = %s", acc, n)
		})
		d.L("_ = %s", acc)

	case "DeadZone":
		if !k.IsInteger() {
			return
		}
		start, end, ok := actors.DeadZoneBounds(info)
		if !ok {
			return
		}
		t := d.tmp("t")
		d.L("%s := %s", t, castElem(0, ""))
		d.block(fmt.Sprintf("if %s < %s", t, start.GoLiteral()), func() {
			r := d.tmp("r")
			d.L("var %s %s", r, k.GoType())
			d.Ls(actors.CheckedSubStmts(k, r, t, start.GoLiteral(), d.flag("ovf")))
			d.L("_ = %s", r)
		})
		d.block(fmt.Sprintf("else if %s > %s", t, end.GoLiteral()), func() {
			r := d.tmp("r")
			d.L("var %s %s", r, k.GoType())
			d.Ls(actors.CheckedSubStmts(k, r, t, end.GoLiteral(), d.flag("ovf")))
			d.L("_ = %s", r)
		})
	}
}
