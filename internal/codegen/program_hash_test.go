package codegen_test

import (
	"testing"

	"accmos/internal/codegen"
	"accmos/internal/model"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

func hashModel(t *testing.T, name string) *model.Model {
	t.Helper()
	return model.NewBuilder(name).
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "3")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
}

func generateFor(t *testing.T, name string, opts codegen.Options) *codegen.Program {
	t.Helper()
	c := compile(t, hashModel(t, name))
	if opts.TestCases == nil {
		opts.TestCases = testcase.NewRandomSet(1, 7, -1, 1)
	}
	p, err := codegen.Generate(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramHashStable(t *testing.T) {
	a := generateFor(t, "PH", codegen.Options{Coverage: true})
	b := generateFor(t, "PH", codegen.Options{Coverage: true})
	if a.Hash() != b.Hash() {
		t.Error("two generations of the same model and options must hash identically")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(a.Hash()))
	}
}

// TestProgramHashOptLevelNeverCollides pins the cache-key regression: two
// optimization levels can legitimately emit byte-identical source (when no
// pass fires on a model), yet an -O0 and an -O1 program must never share a
// build-cache entry — the level is hashed independently of the source.
func TestProgramHashOptLevelNeverCollides(t *testing.T) {
	src := "package main\nfunc main() {}\n"
	plain := &codegen.Program{Model: "PH", Source: src}
	o0 := &codegen.Program{Model: "PH", Source: src, Opt: "O0"}
	o1 := &codegen.Program{Model: "PH", Source: src, Opt: "O1"}
	if o0.Hash() == o1.Hash() {
		t.Error("O0 and O1 programs with identical source must hash differently")
	}
	if plain.Hash() == o0.Hash() || plain.Hash() == o1.Hash() {
		t.Error("an untagged program must not collide with a level-tagged one")
	}
}

func TestProgramHashDiscriminates(t *testing.T) {
	base := generateFor(t, "PH", codegen.Options{Coverage: true})
	seen := map[string]string{base.Hash(): "base"}
	variants := map[string]*codegen.Program{
		"coverage off":    generateFor(t, "PH", codegen.Options{}),
		"diagnosis on":    generateFor(t, "PH", codegen.Options{Coverage: true, Diagnose: true}),
		"other steps":     generateFor(t, "PH", codegen.Options{Coverage: true, DefaultSteps: 777}),
		"other testcases": generateFor(t, "PH", codegen.Options{Coverage: true, TestCases: testcase.NewRandomSet(1, 8, -1, 1)}),
		"other model":     generateFor(t, "PH2", codegen.Options{Coverage: true}),
		"opt O0":          generateFor(t, "PH", codegen.Options{Coverage: true, Opt: "O0"}),
		"opt O1":          generateFor(t, "PH", codegen.Options{Coverage: true, Opt: "O1"}),
	}
	for what, p := range variants {
		h := p.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("%s collides with %s", what, prev)
		}
		seen[h] = what
	}
}
