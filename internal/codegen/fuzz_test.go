package codegen_test

import (
	"fmt"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/codegen"
	"accmos/internal/interp"
	"accmos/internal/rapid"
	"accmos/internal/testcase"
)

// TestRandomModelEquivalence synthesises random model shapes across the
// compute/control spectrum and requires all four engines to agree
// bit-for-bit. This is the repository's randomized end-to-end property:
// any actor template whose Eval, Gen, or rapid specialization drift apart
// fails here with a concrete seed to reproduce.
func TestRandomModelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several generated programs")
	}
	trials := []struct {
		seed        uint64
		actors      int
		computeFrac float64
	}{
		{9001, 40, 0.9},
		{9002, 60, 0.5},
		{9003, 80, 0.2},
		{9004, 120, 0.7},
		{9005, 50, 0.0},
		{9006, 70, 1.0},
		{9007, 200, 0.35}, // large, control/gate-heavy
		{9008, 150, 0.65}, // large, mixed
	}
	for _, tr := range trials {
		tr := tr
		t.Run(fmt.Sprintf("seed%d_n%d_c%.1f", tr.seed, tr.actors, tr.computeFrac), func(t *testing.T) {
			t.Parallel()
			m := benchmodels.Synthesize(benchmodels.Profile{
				Name:        fmt.Sprintf("RND%d", tr.seed),
				Actors:      tr.actors,
				Subsystems:  3,
				ComputeFrac: tr.computeFrac,
				Seed:        tr.seed,
				Inports:     3,
				Outports:    2,
			})
			c, err := actors.Compile(m)
			if err != nil {
				t.Fatal(err)
			}
			set := testcase.NewRandomSet(len(c.Inports), tr.seed^0xABCD, -100, 100)
			const steps = 2000

			ir, gr := runBoth(t, c, set, steps,
				interp.Options{Coverage: true, Diagnose: true},
				codegen.Options{Coverage: true, Diagnose: true})
			assertEquivalent(t, ir, gr)

			ac, err := interp.NewAccel(c)
			if err != nil {
				t.Fatal(err)
			}
			acRes, err := ac.Run(set, steps)
			if err != nil {
				t.Fatal(err)
			}
			if acRes.OutputHash != ir.OutputHash {
				t.Errorf("SSEac hash %x != SSE %x", acRes.OutputHash, ir.OutputHash)
			}
			rc, err := rapid.New(c)
			if err != nil {
				t.Fatal(err)
			}
			rcRes, err := rc.Run(set, steps)
			if err != nil {
				t.Fatal(err)
			}
			if rcRes.OutputHash != ir.OutputHash {
				t.Errorf("SSErac hash %x != SSE %x", rcRes.OutputHash, ir.OutputHash)
			}
		})
	}
}
