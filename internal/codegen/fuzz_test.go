package codegen_test

import (
	"fmt"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/interp"
	"accmos/internal/opt"
	"accmos/internal/rapid"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
)

// TestRandomModelEquivalence synthesises random model shapes across the
// compute/control spectrum and requires all four engines to agree
// bit-for-bit. This is the repository's randomized end-to-end property:
// any actor template whose Eval, Gen, or rapid specialization drift apart
// fails here with a concrete seed to reproduce.
func TestRandomModelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several generated programs")
	}
	trials := []struct {
		seed        uint64
		actors      int
		computeFrac float64
	}{
		{9001, 40, 0.9},
		{9002, 60, 0.5},
		{9003, 80, 0.2},
		{9004, 120, 0.7},
		{9005, 50, 0.0},
		{9006, 70, 1.0},
		{9007, 200, 0.35}, // large, control/gate-heavy
		{9008, 150, 0.65}, // large, mixed
	}
	for _, tr := range trials {
		tr := tr
		t.Run(fmt.Sprintf("seed%d_n%d_c%.1f", tr.seed, tr.actors, tr.computeFrac), func(t *testing.T) {
			t.Parallel()
			m := benchmodels.Synthesize(benchmodels.Profile{
				Name:        fmt.Sprintf("RND%d", tr.seed),
				Actors:      tr.actors,
				Subsystems:  3,
				ComputeFrac: tr.computeFrac,
				Seed:        tr.seed,
				Inports:     3,
				Outports:    2,
			})
			c, err := actors.Compile(m)
			if err != nil {
				t.Fatal(err)
			}
			set := testcase.NewRandomSet(len(c.Inports), tr.seed^0xABCD, -100, 100)
			const steps = 2000

			ir, gr := runBoth(t, c, set, steps,
				interp.Options{Coverage: true, Diagnose: true},
				codegen.Options{Coverage: true, Diagnose: true})
			assertEquivalent(t, ir, gr)

			ac, err := interp.NewAccel(c)
			if err != nil {
				t.Fatal(err)
			}
			acRes, err := ac.Run(set, steps)
			if err != nil {
				t.Fatal(err)
			}
			if acRes.OutputHash != ir.OutputHash {
				t.Errorf("SSEac hash %x != SSE %x", acRes.OutputHash, ir.OutputHash)
			}
			rc, err := rapid.New(c)
			if err != nil {
				t.Fatal(err)
			}
			rcRes, err := rc.Run(set, steps)
			if err != nil {
				t.Fatal(err)
			}
			if rcRes.OutputHash != ir.OutputHash {
				t.Errorf("SSErac hash %x != SSE %x", rcRes.OutputHash, ir.OutputHash)
			}
		})
	}
}

// runAtLevel runs one model at the given optimization level on all four
// engines with coverage and diagnosis instrumentation, returning the
// interpreter and generated-program results after asserting the two
// uninstrumented accelerator engines agree on the output hash.
func runAtLevel(t *testing.T, c *actors.Compiled, set *testcase.Set, steps int64, level opt.Level) (*simresult.Results, *simresult.Results) {
	t.Helper()
	or, err := opt.Optimize(c, opt.Options{Level: level, Coverage: true, Diagnose: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := interp.New(or.Compiled, interp.Options{
		Coverage: true, Diagnose: true, Layout: or.Layout, Premark: or.Premark,
	})
	if err != nil {
		t.Fatal(err)
	}
	ir, err := e.Run(set, steps)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(or.Compiled, codegen.Options{
		Coverage: true, Diagnose: true, TestCases: set,
		Layout: or.Layout, Premark: or.Premark, Opt: level.String(),
		Plan: or.Plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := harness.BuildAndRun(p, t.TempDir(), harness.RunOptions{Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []string{"SSEac", "SSErac"} {
		var res *simresult.Results
		switch eng {
		case "SSEac":
			ac, err := interp.NewAccel(or.Compiled)
			if err != nil {
				t.Fatal(err)
			}
			res, err = ac.Run(set, steps)
			if err != nil {
				t.Fatal(err)
			}
		case "SSErac":
			rc, err := rapid.New(or.Compiled)
			if err != nil {
				t.Fatal(err)
			}
			res, err = rc.Run(set, steps)
			if err != nil {
				t.Fatal(err)
			}
		}
		if res.OutputHash != ir.OutputHash {
			t.Errorf("%s hash %x != SSE %x at %s", eng, res.OutputHash, ir.OutputHash, level)
		}
	}
	return ir, gr
}

// runPlainAtLevel is runAtLevel without coverage or diagnosis — the
// configuration where O2 fusion fires on every eligible chain instead of
// declining behind instrumentation, so it is the strongest oracle for
// fused-expression arithmetic. Returns the generated program's results
// after checking all in-process engines agree.
func runPlainAtLevel(t *testing.T, c *actors.Compiled, set *testcase.Set, steps int64, level opt.Level) *simresult.Results {
	t.Helper()
	or, err := opt.Optimize(c, opt.Options{Level: level})
	if err != nil {
		t.Fatal(err)
	}
	if level >= opt.O2 && or.FusedExprs == 0 && or.ActorsAfter > 10 {
		t.Logf("warning: O2 fused nothing on a %d-actor model", or.ActorsAfter)
	}
	e, err := interp.New(or.Compiled, interp.Options{Layout: or.Layout, Premark: or.Premark})
	if err != nil {
		t.Fatal(err)
	}
	ir, err := e.Run(set, steps)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Generate(or.Compiled, codegen.Options{
		TestCases: set, Layout: or.Layout, Premark: or.Premark,
		Opt: level.String(), Plan: or.Plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := harness.BuildAndRun(p, t.TempDir(), harness.RunOptions{Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if gr.OutputHash != ir.OutputHash {
		t.Errorf("generated hash %x != SSE %x at %s (plain)", gr.OutputHash, ir.OutputHash, level)
	}
	return gr
}

// TestOptShapeEquivalence runs the optimizer benchmark shapes — the
// models built to maximize what each pass removes — through the same
// four-engine, two-level oracle as the random trials.
func TestOptShapeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several generated programs")
	}
	for _, name := range benchmodels.OptNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := actors.Compile(benchmodels.MustBuildOpt(name))
			if err != nil {
				t.Fatal(err)
			}
			set := testcase.NewRandomSet(len(c.Inports), 4242, -100, 100)
			const steps = 1500
			i0, g0 := runAtLevel(t, c, set, steps, opt.O0)
			i1, g1 := runAtLevel(t, c, set, steps, opt.O1)
			i2, g2 := runAtLevel(t, c, set, steps, opt.O2)
			assertEquivalent(t, i0, g0)
			assertEquivalent(t, i1, g1)
			assertEquivalent(t, i2, g2)
			assertEquivalent(t, i0, i1)
			assertEquivalent(t, g0, g1)
			assertEquivalent(t, g0, g2) // fused step loop matches O0 bit for bit
		})
	}
}

// TestRandomModelOptEquivalence is the optimizer's randomized soundness
// property: for random model shapes, an -O1 run must be observationally
// identical to the -O0 run on every engine — same output hashes, same
// coverage bitmaps (premarked bits included), same diagnosis aggregates.
func TestRandomModelOptEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles several generated programs")
	}
	trials := []struct {
		seed        uint64
		actors      int
		computeFrac float64
	}{
		{7101, 50, 0.9},
		{7102, 80, 0.5},
		{7103, 120, 0.25},
		{7104, 160, 0.7},
	}
	for _, tr := range trials {
		tr := tr
		t.Run(fmt.Sprintf("seed%d_n%d_c%.2f", tr.seed, tr.actors, tr.computeFrac), func(t *testing.T) {
			t.Parallel()
			m := benchmodels.Synthesize(benchmodels.Profile{
				Name:        fmt.Sprintf("OPTRND%d", tr.seed),
				Actors:      tr.actors,
				Subsystems:  3,
				ComputeFrac: tr.computeFrac,
				Seed:        tr.seed,
				Inports:     3,
				Outports:    2,
			})
			c, err := actors.Compile(m)
			if err != nil {
				t.Fatal(err)
			}
			set := testcase.NewRandomSet(len(c.Inports), tr.seed^0x5151, -100, 100)
			const steps = 1500

			i0, g0 := runAtLevel(t, c, set, steps, opt.O0)
			i1, g1 := runAtLevel(t, c, set, steps, opt.O1)
			i2, g2 := runAtLevel(t, c, set, steps, opt.O2)
			assertEquivalent(t, i0, g0) // engines agree at O0
			assertEquivalent(t, i1, g1) // engines agree at O1
			assertEquivalent(t, i2, g2) // engines agree at O2
			assertEquivalent(t, i0, i1) // levels agree on the interpreter
			assertEquivalent(t, g0, g1) // levels agree on the generated program
			assertEquivalent(t, g0, g2) // fused/hoisted/narrowed codegen matches O0

			// Without instrumentation nothing declines fusion, so this
			// pair is the strong oracle for the fused step loop.
			p0 := runPlainAtLevel(t, c, set, steps, opt.O0)
			p2 := runPlainAtLevel(t, c, set, steps, opt.O2)
			if p0.OutputHash != p2.OutputHash {
				t.Errorf("plain O2 hash %x != plain O0 %x", p2.OutputHash, p0.OutputHash)
			}
		})
	}
}
