package codegen_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/codegen"
	"accmos/internal/model"
	"accmos/internal/opt"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// goldenChainModel isolates expression fusion: a single-consumer
// Gain→Bias→Abs chain that O2 collapses into one root assignment.
func goldenChainModel() *model.Model {
	b := model.NewBuilder("GoldChain")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "2.5"))
	b.Connect("In1", 0, "G", 0)
	b.Add("B", "Bias", 1, 1, model.WithParam("Bias", "-1"))
	b.Connect("G", 0, "B", 0)
	b.Add("A", "Abs", 1, 1)
	b.Connect("B", 0, "A", 0)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("A", 0, "Out1", 0)
	return b.MustBuild()
}

// goldenHoistModel isolates invariant hoisting: a constant sqrt chain
// beside a data store (which keeps O1's folding passes off), evaluated at
// plan time and emitted as one hoisted global.
func goldenHoistModel() *model.Model {
	b := model.NewBuilder("GoldHoist")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("K", "Constant", 0, 1, model.WithParam("Value", "2"))
	b.Add("R", "Sqrt", 1, 1, model.WithOperator("sqrt"))
	b.Connect("K", 0, "R", 0)
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "3"))
	b.Connect("R", 0, "G", 0)
	b.Add("Mix", "Sum", 2, 1, model.WithOperator("++"))
	b.Connect("In1", 0, "Mix", 0)
	b.Connect("G", 0, "Mix", 1)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("Mix", 0, "Out1", 0)
	b.Add("Store", "DataStoreMemory", 0, 0, model.WithParam("Store", "acc"),
		model.WithParam("OutDataType", "double"), model.WithParam("InitialValue", "0"))
	b.Add("Wr", "DataStoreWrite", 1, 0, model.WithParam("Store", "acc"))
	b.Connect("In1", 0, "Wr", 0)
	b.Add("Rd", "DataStoreRead", 0, 1, model.WithParam("Store", "acc"),
		model.WithParam("OutDataType", "double"))
	b.Add("Out2", "Outport", 1, 0, model.WithParam("Port", "2"))
	b.Connect("Rd", 0, "Out2", 0)
	return b.MustBuild()
}

// goldenNarrowModel isolates storage narrowing: saturation-bounded int32
// biases with two consumers each, so they materialize as roots whose
// intervals fit int8 storage, while their single-consumer Sum layer fuses
// into the final assignment.
func goldenNarrowModel() *model.Model {
	b := model.NewBuilder("GoldNarrow")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1"))
	b.Add("S", "Saturation", 1, 1, model.WithParam("Min", "0"), model.WithParam("Max", "50"))
	b.Connect("In1", 0, "S", 0)
	b.Add("C0", "Bias", 1, 1, model.WithParam("Bias", "1"))
	b.Connect("S", 0, "C0", 0)
	b.Add("C1", "Bias", 1, 1, model.WithParam("Bias", "2"))
	b.Connect("S", 0, "C1", 0)
	b.Add("L0", "Sum", 2, 1, model.WithOperator("++"))
	b.Connect("C0", 0, "L0", 0)
	b.Connect("C1", 0, "L0", 1)
	b.Add("L1", "Sum", 2, 1, model.WithOperator("+-"))
	b.Connect("C1", 0, "L1", 0)
	b.Connect("C0", 0, "L1", 1)
	b.Add("T", "Sum", 2, 1, model.WithOperator("++"))
	b.Connect("L0", 0, "T", 0)
	b.Connect("L1", 0, "T", 1)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("T", 0, "Out1", 0)
	return b.MustBuild()
}

// stepBody slices the parts of the generated source the O2 middle-end
// shapes: the hoisted invariant globals and the modelExe body down to the
// end-of-step marker. Everything else (main, harness plumbing, test-case
// constants) is covered by the equivalence suites and would only churn
// the goldens.
func stepBody(t *testing.T, src string) string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, "var hx") {
			out = append(out, line)
		}
	}
	start := strings.Index(src, "func modelExe(")
	if start < 0 {
		t.Fatal("generated source has no modelExe")
	}
	end := strings.Index(src[start:], "\t// end-of-step state updates")
	if end < 0 {
		t.Fatal("generated source has no end-of-step marker")
	}
	out = append(out, strings.Split(strings.TrimRight(src[start:start+end], "\n"), "\n")...)
	return strings.Join(out, "\n") + "\n"
}

// TestGeneratedO2Golden pins the emitted fused step loop for the three
// O2 transformations — chain fusion, invariant hoisting and width
// narrowing — against testdata/*.golden. The equivalence suites prove
// the code is correct; this test proves it stays the code we intend
// (fused actors emit no statement, hoists become hxN globals, narrowed
// roots store their narrow kind). Run with UPDATE_GOLDEN=1 to regenerate
// after an intentional emission change.
func TestGeneratedO2Golden(t *testing.T) {
	cases := []struct {
		name  string
		model *model.Model
	}{
		{"chain_fusion", goldenChainModel()},
		{"invariant_hoist", goldenHoistModel()},
		{"width_narrowing", goldenNarrowModel()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := actors.Compile(tc.model)
			if err != nil {
				t.Fatal(err)
			}
			or, err := opt.Optimize(c, opt.Options{Level: opt.O2})
			if err != nil {
				t.Fatal(err)
			}
			if or.FusedExprs == 0 {
				t.Fatalf("%s: O2 fused nothing — the golden would not exercise the middle end", tc.name)
			}
			set := testcase.NewRandomSet(len(c.Inports), 7, -100, 100)
			prog, err := codegen.Generate(or.Compiled, codegen.Options{
				TestCases: set, Opt: "O2",
				Layout: or.Layout, Premark: or.Premark, Plan: or.Plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := stepBody(t, prog.Source)
			golden := filepath.Join("testdata", tc.name+".golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s", golden)
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("emitted step loop drifted from %s\n--- got ---\n%s--- want ---\n%s",
					golden, got, want)
			}
		})
	}
}
