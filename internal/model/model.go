// Package model defines the in-memory representation of a dataflow model:
// actors (blocks), their typed ports, the signal connections between them,
// and subsystem grouping. It mirrors the two-part structure the paper
// describes for Simulink model files — an actors part holding per-actor
// fundamentals (name, type, operator, port counts) and a relationships part
// holding every signal connection.
package model

import (
	"fmt"
	"sort"
	"strings"

	"accmos/internal/types"
)

// ActorType names a block type ("Sum", "Product", "UnitDelay", ...). The
// set of valid types is defined by the actors registry.
type ActorType string

// Port describes one input or output of an actor. Kind and Width on input
// ports are resolved during elaboration from the driving actor's output.
type Port struct {
	Name  string
	Kind  types.Kind
	Width int
}

// Actor is one block instance. Params carries type-specific configuration
// as strings exactly as stored in the model file (e.g. "Value" for
// Constant, "Gain" for Gain, "Limits" for Saturation).
type Actor struct {
	Name      string
	Type      ActorType
	Operator  string
	Subsystem string // owning subsystem label; "" for the model root
	Params    map[string]string
	Inputs    []Port
	Outputs   []Port
}

// Param returns the named parameter or def when absent.
func (a *Actor) Param(name, def string) string {
	if v, ok := a.Params[name]; ok {
		return v
	}
	return def
}

// SetParam sets a parameter, allocating the map on first use.
func (a *Actor) SetParam(name, value string) {
	if a.Params == nil {
		a.Params = make(map[string]string)
	}
	a.Params[name] = value
}

// PortRef identifies one output port of one actor.
type PortRef struct {
	Actor string
	Port  int
}

// String renders the reference as "actor:port".
func (r PortRef) String() string { return fmt.Sprintf("%s:%d", r.Actor, r.Port) }

// Connection is one entry of the relationships part: a directed signal from
// an output port to an input port.
type Connection struct {
	SrcActor string
	SrcPort  int
	DstActor string
	DstPort  int
}

// Model is a complete flat model. Actors holds stable declaration order;
// lookup by name goes through Actor().
type Model struct {
	Name        string
	Actors      []*Actor
	Connections []Connection

	byName map[string]*Actor
}

// New creates an empty model.
func New(name string) *Model {
	return &Model{Name: name, byName: make(map[string]*Actor)}
}

// AddActor appends a to the model. The actor name must be unique.
func (m *Model) AddActor(a *Actor) error {
	if a.Name == "" {
		return fmt.Errorf("model %s: actor with empty name", m.Name)
	}
	if m.byName == nil {
		m.byName = make(map[string]*Actor)
	}
	if _, dup := m.byName[a.Name]; dup {
		return fmt.Errorf("model %s: duplicate actor name %q", m.Name, a.Name)
	}
	m.Actors = append(m.Actors, a)
	m.byName[a.Name] = a
	return nil
}

// Actor returns the named actor or nil.
func (m *Model) Actor(name string) *Actor {
	if m.byName == nil {
		m.rebuildIndex()
	}
	return m.byName[name]
}

func (m *Model) rebuildIndex() {
	m.byName = make(map[string]*Actor, len(m.Actors))
	for _, a := range m.Actors {
		m.byName[a.Name] = a
	}
}

// Connect records a signal from srcActor's output port srcPort to dstActor's
// input port dstPort.
func (m *Model) Connect(srcActor string, srcPort int, dstActor string, dstPort int) {
	m.Connections = append(m.Connections, Connection{srcActor, srcPort, dstActor, dstPort})
}

// Path returns the paper-style unique actor path:
// MODEL_SUBSYSTEM_ACTOR, or MODEL_ACTOR for root-level actors.
func (m *Model) Path(a *Actor) string {
	if a.Subsystem == "" {
		return m.Name + "_" + a.Name
	}
	return m.Name + "_" + a.Subsystem + "_" + a.Name
}

// Subsystems returns the sorted distinct non-root subsystem labels.
func (m *Model) Subsystems() []string {
	seen := make(map[string]bool)
	for _, a := range m.Actors {
		if a.Subsystem != "" {
			seen[a.Subsystem] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// ActorsOfType returns actors with the given type, in declaration order.
func (m *Model) ActorsOfType(t ActorType) []*Actor {
	var out []*Actor
	for _, a := range m.Actors {
		if a.Type == t {
			out = append(out, a)
		}
	}
	return out
}

// Driver returns the connection feeding the given input port, if any.
func (m *Model) Driver(actor string, inPort int) (Connection, bool) {
	for _, c := range m.Connections {
		if c.DstActor == actor && c.DstPort == inPort {
			return c, true
		}
	}
	return Connection{}, false
}

// Consumers returns the connections fed by the given output port.
func (m *Model) Consumers(actor string, outPort int) []Connection {
	var out []Connection
	for _, c := range m.Connections {
		if c.SrcActor == actor && c.SrcPort == outPort {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks structural well-formedness: connection endpoints exist,
// port indices are in range, and every input port has exactly one driver.
// Type-level validation (port counts per actor type, operator legality)
// belongs to the actors registry's elaboration.
func (m *Model) Validate() error {
	var errs []string
	if m.byName == nil || len(m.byName) != len(m.Actors) {
		m.rebuildIndex()
	}
	drivers := make(map[[2]interface{}]int)
	for _, c := range m.Connections {
		src := m.byName[c.SrcActor]
		if src == nil {
			errs = append(errs, fmt.Sprintf("connection references unknown source actor %q", c.SrcActor))
			continue
		}
		dst := m.byName[c.DstActor]
		if dst == nil {
			errs = append(errs, fmt.Sprintf("connection references unknown destination actor %q", c.DstActor))
			continue
		}
		if c.SrcPort < 0 || c.SrcPort >= len(src.Outputs) {
			errs = append(errs, fmt.Sprintf("%s has no output port %d", c.SrcActor, c.SrcPort))
		}
		if c.DstPort < 0 || c.DstPort >= len(dst.Inputs) {
			errs = append(errs, fmt.Sprintf("%s has no input port %d", c.DstActor, c.DstPort))
		}
		drivers[[2]interface{}{c.DstActor, c.DstPort}]++
	}
	for key, n := range drivers {
		if n > 1 {
			errs = append(errs, fmt.Sprintf("input %v:%v has %d drivers", key[0], key[1], n))
		}
	}
	for _, a := range m.Actors {
		for i := range a.Inputs {
			if drivers[[2]interface{}{a.Name, i}] == 0 {
				errs = append(errs, fmt.Sprintf("input %s:%d is unconnected", a.Name, i))
			}
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		return fmt.Errorf("model %s invalid:\n  %s", m.Name, strings.Join(errs, "\n  "))
	}
	return nil
}

// Clone returns a deep copy of the model, so experiments can mutate a copy
// (e.g. inject errors) without touching the shared benchmark definition.
func (m *Model) Clone() *Model {
	out := New(m.Name)
	for _, a := range m.Actors {
		ca := &Actor{
			Name:      a.Name,
			Type:      a.Type,
			Operator:  a.Operator,
			Subsystem: a.Subsystem,
			Inputs:    append([]Port(nil), a.Inputs...),
			Outputs:   append([]Port(nil), a.Outputs...),
		}
		if a.Params != nil {
			ca.Params = make(map[string]string, len(a.Params))
			for k, v := range a.Params {
				ca.Params[k] = v
			}
		}
		if err := out.AddActor(ca); err != nil {
			// Clone of a valid model cannot collide; a collision means the
			// source was corrupted, which is a programming error.
			panic(err)
		}
	}
	out.Connections = append([]Connection(nil), m.Connections...)
	return out
}

// Stats summarises a model for reports (Table 1 columns).
type Stats struct {
	Actors     int
	Subsystems int
}

// Stats returns the actor and subsystem counts.
func (m *Model) Stats() Stats {
	return Stats{Actors: len(m.Actors), Subsystems: len(m.Subsystems())}
}
