package model

import (
	"strings"
	"testing"

	"accmos/internal/types"
)

func twoActorModel(t *testing.T) *Model {
	t.Helper()
	m := New("M")
	a := &Actor{Name: "A", Type: "Constant", Outputs: []Port{{Name: "out1"}}}
	b := &Actor{Name: "B", Type: "Outport", Inputs: []Port{{Name: "in1"}}}
	if err := m.AddActor(a); err != nil {
		t.Fatal(err)
	}
	if err := m.AddActor(b); err != nil {
		t.Fatal(err)
	}
	m.Connect("A", 0, "B", 0)
	return m
}

func TestAddActorDuplicate(t *testing.T) {
	m := New("M")
	if err := m.AddActor(&Actor{Name: "X"}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddActor(&Actor{Name: "X"}); err == nil {
		t.Fatal("duplicate name must be rejected")
	}
	if err := m.AddActor(&Actor{}); err == nil {
		t.Fatal("empty name must be rejected")
	}
}

func TestValidateOK(t *testing.T) {
	m := twoActorModel(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateUnknownEndpoints(t *testing.T) {
	m := twoActorModel(t)
	m.Connect("Nope", 0, "B", 0)
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown source") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidatePortRange(t *testing.T) {
	m := twoActorModel(t)
	m.Connect("A", 5, "B", 0)
	if err := m.Validate(); err == nil {
		t.Fatal("out-of-range source port must be rejected")
	}
}

func TestValidateMultipleDrivers(t *testing.T) {
	m := twoActorModel(t)
	c := &Actor{Name: "C", Type: "Constant", Outputs: []Port{{Name: "out1"}}}
	if err := m.AddActor(c); err != nil {
		t.Fatal(err)
	}
	m.Connect("C", 0, "B", 0)
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "2 drivers") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateUnconnectedInput(t *testing.T) {
	m := New("M")
	if err := m.AddActor(&Actor{Name: "B", Type: "Outport", Inputs: []Port{{Name: "in1"}}}); err != nil {
		t.Fatal(err)
	}
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "unconnected") {
		t.Fatalf("err = %v", err)
	}
}

func TestPath(t *testing.T) {
	m := New("MODEL")
	root := &Actor{Name: "ADD1"}
	sub := &Actor{Name: "ADD2", Subsystem: "SUBSYSTEM"}
	if got := m.Path(root); got != "MODEL_ADD1" {
		t.Errorf("root path = %q", got)
	}
	if got := m.Path(sub); got != "MODEL_SUBSYSTEM_ADD2" {
		t.Errorf("subsystem path = %q", got)
	}
}

func TestSubsystemsAndStats(t *testing.T) {
	m := New("M")
	for _, spec := range []struct{ name, sub string }{
		{"a", "S1"}, {"b", "S2"}, {"c", "S1"}, {"d", ""},
	} {
		if err := m.AddActor(&Actor{Name: spec.name, Subsystem: spec.sub}); err != nil {
			t.Fatal(err)
		}
	}
	subs := m.Subsystems()
	if len(subs) != 2 || subs[0] != "S1" || subs[1] != "S2" {
		t.Errorf("Subsystems() = %v", subs)
	}
	st := m.Stats()
	if st.Actors != 4 || st.Subsystems != 2 {
		t.Errorf("Stats() = %+v", st)
	}
}

func TestDriverAndConsumers(t *testing.T) {
	m := twoActorModel(t)
	c, ok := m.Driver("B", 0)
	if !ok || c.SrcActor != "A" {
		t.Errorf("Driver = %+v, %v", c, ok)
	}
	if _, ok := m.Driver("A", 0); ok {
		t.Error("A has no input driver")
	}
	cons := m.Consumers("A", 0)
	if len(cons) != 1 || cons[0].DstActor != "B" {
		t.Errorf("Consumers = %+v", cons)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := twoActorModel(t)
	m.Actor("A").SetParam("Value", "1")
	c := m.Clone()
	c.Actor("A").SetParam("Value", "2")
	c.Actor("A").Outputs[0].Kind = types.F64
	if m.Actor("A").Param("Value", "") != "1" {
		t.Error("clone shares params with original")
	}
	if m.Actor("A").Outputs[0].Kind != types.Invalid {
		t.Error("clone shares port slices with original")
	}
	c.Connect("A", 0, "B", 0)
	if len(m.Connections) != 1 {
		t.Error("clone shares connection slice")
	}
}

func TestActorsOfType(t *testing.T) {
	m := twoActorModel(t)
	if got := m.ActorsOfType("Constant"); len(got) != 1 || got[0].Name != "A" {
		t.Errorf("ActorsOfType = %v", got)
	}
	if got := m.ActorsOfType("Gain"); got != nil {
		t.Errorf("expected nil, got %v", got)
	}
}

func TestParamHelpers(t *testing.T) {
	a := &Actor{Name: "X"}
	if got := a.Param("Value", "def"); got != "def" {
		t.Errorf("default = %q", got)
	}
	a.SetParam("Value", "42")
	if got := a.Param("Value", "def"); got != "42" {
		t.Errorf("set = %q", got)
	}
}

func TestBuilder(t *testing.T) {
	m, err := NewBuilder("B").
		Add("In", "Inport", 0, 1, WithOutKind(types.I32)).
		Add("G", "Gain", 1, 1, WithParam("Gain", "2")).
		InSubsystem("S").
		Add("Out", "Outport", 1, 0).
		Chain("In", "G", "Out").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Actor("G").Param("Gain", "") != "2" {
		t.Error("param lost")
	}
	if m.Actor("Out").Subsystem != "S" {
		t.Error("subsystem label lost")
	}
	if m.Actor("In").Param("OutDataType", "") != "int32" {
		t.Error("WithOutKind lost")
	}
	if len(m.Connections) != 2 {
		t.Errorf("connections = %d", len(m.Connections))
	}
}

func TestBuilderErrors(t *testing.T) {
	_, err := NewBuilder("B").
		Add("X", "Constant", 0, 1).
		Add("X", "Constant", 0, 1).
		Build()
	if err == nil {
		t.Fatal("duplicate actor must surface from Build")
	}
}

func TestBuilderMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild must panic on invalid model")
		}
	}()
	NewBuilder("B").Add("Out", "Outport", 1, 0).MustBuild()
}
