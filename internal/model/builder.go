package model

import (
	"fmt"

	"accmos/internal/types"
)

// Builder provides a fluent API for constructing models in code. Errors are
// accumulated and reported once by Build, so construction code stays linear.
type Builder struct {
	m    *Model
	errs []error
	sub  string
}

// NewBuilder starts building a model with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{m: New(name)}
}

// InSubsystem sets the subsystem label applied to subsequently added actors.
// Pass "" to return to the model root.
func (b *Builder) InSubsystem(label string) *Builder {
	b.sub = label
	return b
}

// ActorOpt configures an actor being added through the builder.
type ActorOpt func(*Actor)

// WithOperator sets the actor's operator string.
func WithOperator(op string) ActorOpt {
	return func(a *Actor) { a.Operator = op }
}

// WithParam sets one actor parameter.
func WithParam(key, value string) ActorOpt {
	return func(a *Actor) { a.SetParam(key, value) }
}

// WithOutKind overrides the actor's output data type.
func WithOutKind(k types.Kind) ActorOpt {
	return func(a *Actor) { a.SetParam("OutDataType", k.String()) }
}

// WithOutWidth overrides the actor's output signal width.
func WithOutWidth(w int) ActorOpt {
	return func(a *Actor) { a.SetParam("OutWidth", fmt.Sprint(w)) }
}

// Add creates an actor with the given name, type and port counts, applying
// opts, and returns the builder for chaining. Port kinds are left to
// elaboration.
func (b *Builder) Add(name string, t ActorType, nIn, nOut int, opts ...ActorOpt) *Builder {
	a := &Actor{Name: name, Type: t, Subsystem: b.sub}
	for i := 0; i < nIn; i++ {
		a.Inputs = append(a.Inputs, Port{Name: fmt.Sprintf("in%d", i+1)})
	}
	for i := 0; i < nOut; i++ {
		a.Outputs = append(a.Outputs, Port{Name: fmt.Sprintf("out%d", i+1)})
	}
	for _, opt := range opts {
		opt(a)
	}
	if err := b.m.AddActor(a); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Connect wires src's output port srcPort to dst's input port dstPort.
func (b *Builder) Connect(src string, srcPort int, dst string, dstPort int) *Builder {
	b.m.Connect(src, srcPort, dst, dstPort)
	return b
}

// Wire is shorthand for connecting output 0 of src to input dstPort of dst.
func (b *Builder) Wire(src, dst string, dstPort int) *Builder {
	return b.Connect(src, 0, dst, dstPort)
}

// Chain wires output 0 of each name to input 0 of the next, forming a
// pipeline.
func (b *Builder) Chain(names ...string) *Builder {
	for i := 0; i+1 < len(names); i++ {
		b.Connect(names[i], 0, names[i+1], 0)
	}
	return b
}

// Err returns the accumulated construction errors, if any.
func (b *Builder) Err() error {
	if len(b.errs) > 0 {
		return fmt.Errorf("builder: %d errors, first: %w", len(b.errs), b.errs[0])
	}
	return nil
}

// Build validates and returns the model.
func (b *Builder) Build() (*Model, error) {
	if err := b.Err(); err != nil {
		return nil, err
	}
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustBuild is Build for construction code where a malformed model is a
// programming error (benchmark definitions, tests).
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
