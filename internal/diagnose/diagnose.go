// Package diagnose implements the paper's calculation-diagnosis layer
// (§3.2.B): a rule library keyed by actor type and operator that decides
// which error classes each actor is checked for, the runtime records those
// checks produce, and the custom signal diagnosis mechanism (range, delta,
// and callback checks). The same rules drive the interpreter's flag
// filtering and the code generator's diagnosis-function emission, keeping
// the two engines' findings identical.
package diagnose

import (
	"fmt"

	"accmos/internal/actors"
	"accmos/internal/types"
)

// Kind names one diagnosable error class.
type Kind string

// The error classes AccMoS diagnoses — the set SSE enables by default per
// the paper, plus NaN/Inf propagation for float models.
const (
	WrapOnOverflow   Kind = "WrapOnOverflow"
	Downcast         Kind = "Downcast"
	DivisionByZero   Kind = "DivisionByZero"
	PrecisionLoss    Kind = "PrecisionLoss"
	IndexOutOfBounds Kind = "IndexOutOfBounds"
	DomainError      Kind = "DomainError"
	NaNOrInf         Kind = "NaNOrInf"
	OutOfRange       Kind = "OutOfRange"
	Custom           Kind = "Custom"
)

// Record is one diagnostic finding.
type Record struct {
	Step   int64  `json:"step"`
	Actor  string `json:"actor"` // paper-style actor path
	Kind   Kind   `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// String renders the record in the paper's warning style.
func (r Record) String() string {
	return fmt.Sprintf("WARNING: %s occur on %s at step %d%s", r.Kind, r.Actor, r.Step, optDetail(r.Detail))
}

func optDetail(d string) string {
	if d == "" {
		return ""
	}
	return " (" + d + ")"
}

// RulesFor returns the error classes diagnosed for an actor, derived from
// its type and operator exactly as the paper describes: a Product actor
// with a "/" operator is checked for division by zero, the same actor with
// only "*" is not, and so on. An empty result means the actor gets no
// diagnosis function.
func RulesFor(info *actors.Info) []Kind {
	var ks []Kind
	add := func(k Kind) { ks = append(ks, k) }
	outInt := info.OutKind().IsInteger()
	outFloat := info.OutKind().IsFloat()

	switch info.Actor.Type {
	case "Sum", "Bias", "DotProduct", "SumOfElements":
		if outInt {
			add(WrapOnOverflow)
		}
		if outFloat {
			add(NaNOrInf)
		}
		if hasDowncast(info) {
			add(Downcast)
		}
	case "Product", "ProductOfElements":
		if outInt {
			add(WrapOnOverflow)
		}
		if outFloat {
			add(NaNOrInf)
		}
		for i := 0; i < len(info.Operator); i++ {
			if info.Operator[i] == '/' {
				add(DivisionByZero)
				break
			}
		}
		if info.Actor.Type == "Product" && hasDowncast(info) {
			add(Downcast)
		}
	case "Gain", "DiscreteIntegrator", "Counter":
		if outInt {
			add(WrapOnOverflow)
		}
		if outFloat {
			add(NaNOrInf)
		}
	case "Abs", "UnaryMinus":
		if info.OutKind().IsSigned() {
			add(WrapOnOverflow)
		}
	case "Math", "Sqrt", "Rounding":
		switch info.Operator {
		case "log", "log10", "log2", "sqrt", "asin", "acos":
			add(DomainError)
		case "reciprocal":
			add(DivisionByZero)
		}
		if outFloat {
			add(NaNOrInf)
		}
	case "Mod":
		add(DivisionByZero)
	case "DataTypeConversion":
		if hasDowncast(info) {
			add(Downcast)
			add(OutOfRange)
		}
		if info.InKinds[0].IsFloat() && info.OutKind().IsInteger() {
			add(PrecisionLoss)
		}
		if info.InKinds[0] == types.I64 || info.InKinds[0] == types.U64 {
			if info.OutKind().IsFloat() {
				add(PrecisionLoss)
			}
		}
	case "Shift":
		if info.Operator == "left" {
			add(WrapOnOverflow)
		}
	case "LookupDirect", "MultiportSwitch":
		add(IndexOutOfBounds)
	case "Selector":
		if info.NumIn() == 2 {
			add(IndexOutOfBounds)
		}
	case "Polynomial":
		if outFloat {
			add(NaNOrInf)
		}
	case "DeadZone":
		if outInt {
			add(WrapOnOverflow)
		}
	}
	return ks
}

// hasDowncast reports whether any input kind is strictly wider than the
// output kind — the paper's sizeof()-based downcast condition.
func hasDowncast(info *actors.Info) bool {
	out := info.OutKind()
	for _, ik := range info.InKinds {
		if ik == types.Invalid {
			continue
		}
		if !out.Wider(ik) {
			return true
		}
	}
	return false
}

// FlagKinds translates raised operation flags into the error classes they
// evidence, filtered by the actor's rule set. The order is fixed so both
// engines report findings identically.
func FlagKinds(rules []Kind, flags types.OpResult) []Kind {
	has := func(k Kind) bool {
		for _, r := range rules {
			if r == k {
				return true
			}
		}
		return false
	}
	var out []Kind
	if flags.Overflow && has(WrapOnOverflow) {
		out = append(out, WrapOnOverflow)
	}
	if flags.DivByZero && has(DivisionByZero) {
		out = append(out, DivisionByZero)
	}
	if flags.DomainErr && has(DomainError) {
		out = append(out, DomainError)
	}
	if flags.NaNOrInf && has(NaNOrInf) {
		out = append(out, NaNOrInf)
	}
	if flags.OutOfRange {
		switch {
		case has(IndexOutOfBounds):
			out = append(out, IndexOutOfBounds)
		case has(OutOfRange):
			out = append(out, OutOfRange)
		}
	}
	if flags.PrecisionLoss && has(PrecisionLoss) {
		out = append(out, PrecisionLoss)
	}
	return out
}

// CustomKind selects a custom signal diagnosis flavor (§3.2.B Custom
// Signal Diagnose).
type CustomKind int

// Custom check flavors.
const (
	// RangeCheck fires when the monitored value leaves [Lo, Hi].
	RangeCheck CustomKind = iota
	// DeltaCheck fires when the value jumps by more than MaxDelta between
	// consecutive steps (sudden signal change detection).
	DeltaCheck
	// CallbackCheck delegates to a user Go callback. Interpreter only: a
	// Go closure cannot be serialised into generated code.
	CallbackCheck
)

// CustomCheck is a user-defined signal diagnosis attached to one actor's
// output. Name appears in the produced records.
type CustomCheck struct {
	Actor    string // actor name within the model
	Name     string
	Kind     CustomKind
	Lo, Hi   float64 // RangeCheck bounds
	MaxDelta float64 // DeltaCheck threshold
	// Callback returns (fired, detail). Only used with CallbackCheck.
	Callback func(step int64, v types.Value) (bool, string)
}

// Validate rejects ill-formed checks early.
func (c *CustomCheck) Validate() error {
	if c.Actor == "" {
		return fmt.Errorf("diagnose: custom check %q has no actor", c.Name)
	}
	switch c.Kind {
	case RangeCheck:
		if c.Lo > c.Hi {
			return fmt.Errorf("diagnose: custom check %q has Lo > Hi", c.Name)
		}
	case DeltaCheck:
		if c.MaxDelta < 0 {
			return fmt.Errorf("diagnose: custom check %q has negative MaxDelta", c.Name)
		}
	case CallbackCheck:
		if c.Callback == nil {
			return fmt.Errorf("diagnose: custom check %q has nil callback", c.Name)
		}
	default:
		return fmt.Errorf("diagnose: custom check %q has unknown kind %d", c.Name, c.Kind)
	}
	return nil
}

// Sink accumulates findings with bounded storage: the first Cap records
// are kept verbatim, all findings are counted per (actor, kind), and the
// first step at which each (actor, kind) fired is recorded — that first
// step is the error-detection metric the paper's case study measures.
type Sink struct {
	Cap         int
	Records     []Record
	Counts      map[string]int64
	FirstDetect map[string]int64
	Total       int64
}

// NewSink creates a sink keeping at most cap verbatim records.
func NewSink(cap int) *Sink {
	return &Sink{
		Cap:         cap,
		Counts:      make(map[string]int64),
		FirstDetect: make(map[string]int64),
	}
}

// Key builds the canonical "<actor>|<kind>" aggregation key.
func Key(actor string, kind Kind) string { return actor + "|" + string(kind) }

// Report records one finding.
func (s *Sink) Report(r Record) {
	s.Total++
	k := Key(r.Actor, r.Kind)
	s.Counts[k]++
	if _, seen := s.FirstDetect[k]; !seen {
		s.FirstDetect[k] = r.Step
	}
	if len(s.Records) < s.Cap {
		s.Records = append(s.Records, r)
	}
}
