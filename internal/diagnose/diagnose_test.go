package diagnose

import (
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/types"
)

// infoFor compiles a tiny model around one actor and returns its info.
func infoFor(t *testing.T, typ model.ActorType, op string, inKinds []types.Kind, outKind types.Kind, params map[string]string) *actors.Info {
	t.Helper()
	b := model.NewBuilder("D")
	opts := []model.ActorOpt{}
	if op != "" {
		opts = append(opts, model.WithOperator(op))
	}
	if outKind != types.Invalid {
		opts = append(opts, model.WithOutKind(outKind))
	}
	for k, v := range params {
		opts = append(opts, model.WithParam(k, v))
	}
	b.Add("X", typ, len(inKinds), 1, opts...)
	for i, k := range inKinds {
		src := "C" + string(rune('0'+i))
		val := "1"
		if k.IsFloat() {
			val = "1.5"
		}
		b.Add(src, "Constant", 0, 1, model.WithOutKind(k), model.WithParam("Value", val))
		b.Wire(src, "X", i)
	}
	b.Add("T", "Terminator", 1, 0)
	b.Wire("X", "T", 0)
	c, err := actors.Compile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return c.Info("X")
}

func hasKind(ks []Kind, k Kind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}

func TestRulesForSum(t *testing.T) {
	intSum := infoFor(t, "Sum", "++", []types.Kind{types.I32, types.I32}, types.Invalid, nil)
	ks := RulesFor(intSum)
	if !hasKind(ks, WrapOnOverflow) {
		t.Errorf("int Sum rules = %v, want WrapOnOverflow", ks)
	}
	if hasKind(ks, DivisionByZero) || hasKind(ks, NaNOrInf) {
		t.Errorf("int Sum rules = %v", ks)
	}
	floatSum := infoFor(t, "Sum", "++", []types.Kind{types.F64, types.F64}, types.Invalid, nil)
	ks = RulesFor(floatSum)
	if !hasKind(ks, NaNOrInf) || hasKind(ks, WrapOnOverflow) {
		t.Errorf("float Sum rules = %v", ks)
	}
	// Narrower output than inputs: the paper's downcast condition.
	narrowSum := infoFor(t, "Sum", "++", []types.Kind{types.I32, types.I32}, types.I16, nil)
	if !hasKind(RulesFor(narrowSum), Downcast) {
		t.Error("narrow Sum must have Downcast rule")
	}
}

func TestRulesForProductOperatorSensitivity(t *testing.T) {
	// The paper's example: a Product with "/" diagnoses division by zero,
	// the same actor with only "*" does not.
	div := infoFor(t, "Product", "*/", []types.Kind{types.I32, types.I32}, types.Invalid, nil)
	if !hasKind(RulesFor(div), DivisionByZero) {
		t.Error(`Product "*/" must diagnose division by zero`)
	}
	mul := infoFor(t, "Product", "**", []types.Kind{types.I32, types.I32}, types.Invalid, nil)
	if hasKind(RulesFor(mul), DivisionByZero) {
		t.Error(`Product "**" must not diagnose division by zero`)
	}
}

func TestRulesForMathOperators(t *testing.T) {
	log := infoFor(t, "Math", "log", []types.Kind{types.F64}, types.Invalid, nil)
	if !hasKind(RulesFor(log), DomainError) {
		t.Error("log must diagnose domain errors")
	}
	rec := infoFor(t, "Math", "reciprocal", []types.Kind{types.F64}, types.Invalid, nil)
	if !hasKind(RulesFor(rec), DivisionByZero) {
		t.Error("reciprocal must diagnose division by zero")
	}
	sin := infoFor(t, "Math", "sin", []types.Kind{types.F64}, types.Invalid, nil)
	if hasKind(RulesFor(sin), DomainError) {
		t.Error("sin has no domain error")
	}
}

func TestRulesForConversionAndLookup(t *testing.T) {
	dtc := infoFor(t, "DataTypeConversion", "", []types.Kind{types.F64}, types.I16, nil)
	ks := RulesFor(dtc)
	if !hasKind(ks, Downcast) || !hasKind(ks, OutOfRange) || !hasKind(ks, PrecisionLoss) {
		t.Errorf("F64->I16 conversion rules = %v", ks)
	}
	widen := infoFor(t, "DataTypeConversion", "", []types.Kind{types.I16}, types.I64, nil)
	if len(RulesFor(widen)) != 0 {
		t.Errorf("widening conversion rules = %v, want none", RulesFor(widen))
	}
	ld := infoFor(t, "LookupDirect", "", []types.Kind{types.I32}, types.Invalid,
		map[string]string{"Table": "[1 2 3]"})
	if !hasKind(RulesFor(ld), IndexOutOfBounds) {
		t.Error("LookupDirect must diagnose index out of bounds")
	}
}

func TestRulesForAbsAndShift(t *testing.T) {
	abs := infoFor(t, "Abs", "", []types.Kind{types.I8}, types.Invalid, nil)
	if !hasKind(RulesFor(abs), WrapOnOverflow) {
		t.Error("signed Abs must diagnose overflow (abs(MIN))")
	}
	absU := infoFor(t, "Abs", "", []types.Kind{types.U8}, types.Invalid, nil)
	if len(RulesFor(absU)) != 0 {
		t.Error("unsigned Abs has nothing to diagnose")
	}
	shl := infoFor(t, "Shift", "left", []types.Kind{types.I32}, types.Invalid, nil)
	if !hasKind(RulesFor(shl), WrapOnOverflow) {
		t.Error("left Shift must diagnose overflow")
	}
	shr := infoFor(t, "Shift", "right", []types.Kind{types.I32}, types.Invalid, nil)
	if len(RulesFor(shr)) != 0 {
		t.Error("right Shift has nothing to diagnose")
	}
}

func TestFlagKindsFilterAndOrder(t *testing.T) {
	rules := []Kind{WrapOnOverflow, DivisionByZero, NaNOrInf}
	flags := types.OpResult{Overflow: true, DivByZero: true, DomainErr: true, NaNOrInf: true}
	got := FlagKinds(rules, flags)
	want := []Kind{WrapOnOverflow, DivisionByZero, NaNOrInf} // DomainErr filtered (not in rules)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (canonical order)", got, want)
		}
	}
	if len(FlagKinds(nil, flags)) != 0 {
		t.Error("no rules -> no findings")
	}
	if len(FlagKinds(rules, types.OpResult{})) != 0 {
		t.Error("no flags -> no findings")
	}
}

func TestFlagKindsOutOfRangeRouting(t *testing.T) {
	flags := types.OpResult{OutOfRange: true}
	got := FlagKinds([]Kind{IndexOutOfBounds}, flags)
	if len(got) != 1 || got[0] != IndexOutOfBounds {
		t.Errorf("got %v", got)
	}
	got = FlagKinds([]Kind{OutOfRange}, flags)
	if len(got) != 1 || got[0] != OutOfRange {
		t.Errorf("got %v", got)
	}
	// IndexOutOfBounds takes precedence when both are in the rule set.
	got = FlagKinds([]Kind{OutOfRange, IndexOutOfBounds}, flags)
	if len(got) != 1 || got[0] != IndexOutOfBounds {
		t.Errorf("got %v", got)
	}
}

func TestCustomCheckValidate(t *testing.T) {
	good := []CustomCheck{
		{Actor: "X", Name: "r", Kind: RangeCheck, Lo: 0, Hi: 1},
		{Actor: "X", Name: "d", Kind: DeltaCheck, MaxDelta: 5},
		{Actor: "X", Name: "c", Kind: CallbackCheck, Callback: func(int64, types.Value) (bool, string) { return false, "" }},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	bad := []CustomCheck{
		{Name: "no-actor", Kind: RangeCheck},
		{Actor: "X", Name: "inv-range", Kind: RangeCheck, Lo: 2, Hi: 1},
		{Actor: "X", Name: "neg-delta", Kind: DeltaCheck, MaxDelta: -1},
		{Actor: "X", Name: "nil-cb", Kind: CallbackCheck},
		{Actor: "X", Name: "bad-kind", Kind: CustomKind(99)},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected error", c.Name)
		}
	}
}

func TestSinkAggregation(t *testing.T) {
	s := NewSink(2)
	for step := int64(0); step < 5; step++ {
		s.Report(Record{Step: step + 10, Actor: "M_X", Kind: WrapOnOverflow})
	}
	s.Report(Record{Step: 3, Actor: "M_Y", Kind: DivisionByZero})
	if s.Total != 6 {
		t.Errorf("total = %d", s.Total)
	}
	if len(s.Records) != 2 {
		t.Errorf("records capped at %d, got %d", 2, len(s.Records))
	}
	if s.Counts[Key("M_X", WrapOnOverflow)] != 5 {
		t.Errorf("counts = %v", s.Counts)
	}
	if s.FirstDetect[Key("M_X", WrapOnOverflow)] != 10 {
		t.Errorf("first detect = %v", s.FirstDetect)
	}
	if s.FirstDetect[Key("M_Y", DivisionByZero)] != 3 {
		t.Errorf("first detect = %v", s.FirstDetect)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Step: 7, Actor: "M_SUB_ADD2", Kind: WrapOnOverflow, Detail: "x"}
	s := r.String()
	if !strings.Contains(s, "WrapOnOverflow") || !strings.Contains(s, "M_SUB_ADD2") ||
		!strings.Contains(s, "step 7") || !strings.Contains(s, "(x)") {
		t.Errorf("Record.String() = %q", s)
	}
}
