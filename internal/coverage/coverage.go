// Package coverage implements the four model coverage metrics the paper
// instruments (§3.2.A): actor coverage, condition coverage, decision
// coverage, and modified condition/decision coverage (MC/DC, masking
// semantics). The Layout computed from a compiled model fixes one bitmap
// slot arrangement shared by the interpreted engine and the generated
// code, so both report identical percentages from identical executions.
package coverage

import (
	"fmt"

	"accmos/internal/actors"
)

// Group locates one actor's slots inside a metric bitmap.
type Group struct {
	Actor string // actor name (not path: engine-side lookups use names)
	Path  string
	Base  int // first slot index
	Count int // number of logical points (branches / conditions)
}

// Layout is the coverage model of one compiled model.
type Layout struct {
	// ActorIndex maps actor name -> actor bitmap slot.
	ActorIndex map[string]int
	ActorPaths []string // slot -> path

	// Cond groups: one slot per branch.
	Cond      []Group
	CondIndex map[string]int // actor name -> index into Cond
	CondBits  int

	// Dec groups: two slots per decision (true outcome, false outcome).
	Dec      []Group
	DecIndex map[string]int
	DecBits  int

	// MCDC groups: two slots per condition (determined-while-true,
	// determined-while-false).
	MCDC      []Group
	MCDCIndex map[string]int
	MCDCBits  int
}

// NewLayout derives the coverage model from a compiled model, walking
// actors in execution order so slot assignment is deterministic.
func NewLayout(c *actors.Compiled) *Layout {
	l := &Layout{
		ActorIndex: make(map[string]int, len(c.Order)),
		CondIndex:  make(map[string]int),
		DecIndex:   make(map[string]int),
		MCDCIndex:  make(map[string]int),
	}
	for _, info := range c.Order {
		name := info.Actor.Name
		l.ActorIndex[name] = len(l.ActorPaths)
		l.ActorPaths = append(l.ActorPaths, info.Path)

		if info.IsBranchActor() {
			n := info.Branches()
			l.CondIndex[name] = len(l.Cond)
			l.Cond = append(l.Cond, Group{Actor: name, Path: info.Path, Base: l.CondBits, Count: n})
			l.CondBits += n
		}
		if info.ContainsBooleanLogic() {
			l.DecIndex[name] = len(l.Dec)
			l.Dec = append(l.Dec, Group{Actor: name, Path: info.Path, Base: l.DecBits, Count: 1})
			l.DecBits += 2
		}
		if info.IsCombinationCondition() {
			n := info.NumIn()
			l.MCDCIndex[name] = len(l.MCDC)
			l.MCDC = append(l.MCDC, Group{Actor: name, Path: info.Path, Base: l.MCDCBits, Count: n})
			l.MCDCBits += 2 * n
		}
	}
	return l
}

// CondBase returns the condition bitmap base for an actor, or -1.
func (l *Layout) CondBase(actor string) int {
	if i, ok := l.CondIndex[actor]; ok {
		return l.Cond[i].Base
	}
	return -1
}

// DecBase returns the decision bitmap base for an actor, or -1.
func (l *Layout) DecBase(actor string) int {
	if i, ok := l.DecIndex[actor]; ok {
		return l.Dec[i].Base
	}
	return -1
}

// MCDCBase returns the MC/DC bitmap base for an actor, or -1.
func (l *Layout) MCDCBase(actor string) int {
	if i, ok := l.MCDCIndex[actor]; ok {
		return l.MCDC[i].Base
	}
	return -1
}

// Raw holds the four bitmaps. Slots are bytes (0 or 1): the paper's
// actorBitmap[actorID] = 1 instrumentation, one byte per point.
type Raw struct {
	Actor []byte `json:"actor"`
	Cond  []byte `json:"cond"`
	Dec   []byte `json:"dec"`
	MCDC  []byte `json:"mcdc"`
}

// NewRaw allocates zeroed bitmaps sized for the layout.
func (l *Layout) NewRaw() *Raw {
	return &Raw{
		Actor: make([]byte, len(l.ActorPaths)),
		Cond:  make([]byte, l.CondBits),
		Dec:   make([]byte, l.DecBits),
		MCDC:  make([]byte, l.MCDCBits),
	}
}

// Merge ors other's bits into r (for aggregating across runs).
func (r *Raw) Merge(other *Raw) error {
	if len(r.Actor) != len(other.Actor) || len(r.Cond) != len(other.Cond) ||
		len(r.Dec) != len(other.Dec) || len(r.MCDC) != len(other.MCDC) {
		return fmt.Errorf("coverage: merging incompatible bitmaps")
	}
	or := func(dst, src []byte) {
		for i, b := range src {
			if b != 0 {
				dst[i] = 1
			}
		}
	}
	or(r.Actor, other.Actor)
	or(r.Cond, other.Cond)
	or(r.Dec, other.Dec)
	or(r.MCDC, other.MCDC)
	return nil
}

// Progress returns the covered and total raw points across all four
// bitmaps — the cheap single-number coverage indicator used by progress
// heartbeats (the generated runtime inlines the same count).
func (r *Raw) Progress() (set, total int) {
	for _, bm := range [][]byte{r.Actor, r.Cond, r.Dec, r.MCDC} {
		for _, b := range bm {
			if b != 0 {
				set++
			}
		}
		total += len(bm)
	}
	return set, total
}

// ProgressPercent renders Progress as a percentage, or -1 when the raw
// bitmaps are absent.
func ProgressPercent(r *Raw) float64 {
	if r == nil {
		return -1
	}
	set, total := r.Progress()
	if total == 0 {
		return 100
	}
	return 100 * float64(set) / float64(total)
}

// Report holds the four percentages (0..100) plus raw point counts.
type Report struct {
	Actor float64 `json:"actor"`
	Cond  float64 `json:"cond"`
	Dec   float64 `json:"dec"`
	MCDC  float64 `json:"mcdc"`

	ActorCovered, ActorTotal int
	CondCovered, CondTotal   int
	DecCovered, DecTotal     int
	MCDCCovered, MCDCTotal   int
}

// Report computes metric percentages from raw bitmaps.
//
//   - Actor: executed actors / all actors.
//   - Condition: executed branches / all branches.
//   - Decision: observed boolean outcomes / (2 × decisions).
//   - MC/DC: conditions shown to independently determine their decision
//     (both determinations observed) / all conditions.
func (l *Layout) Report(r *Raw) Report {
	var rep Report
	rep.ActorTotal = len(l.ActorPaths)
	for _, b := range r.Actor {
		if b != 0 {
			rep.ActorCovered++
		}
	}
	rep.CondTotal = l.CondBits
	for _, b := range r.Cond {
		if b != 0 {
			rep.CondCovered++
		}
	}
	rep.DecTotal = l.DecBits
	for _, b := range r.Dec {
		if b != 0 {
			rep.DecCovered++
		}
	}
	for _, g := range l.MCDC {
		rep.MCDCTotal += g.Count
		for ci := 0; ci < g.Count; ci++ {
			if r.MCDC[g.Base+2*ci] != 0 && r.MCDC[g.Base+2*ci+1] != 0 {
				rep.MCDCCovered++
			}
		}
	}
	pct := func(cov, tot int) float64 {
		if tot == 0 {
			return 100
		}
		return 100 * float64(cov) / float64(tot)
	}
	rep.Actor = pct(rep.ActorCovered, rep.ActorTotal)
	rep.Cond = pct(rep.CondCovered, rep.CondTotal)
	rep.Dec = pct(rep.DecCovered, rep.DecTotal)
	rep.MCDC = pct(rep.MCDCCovered, rep.MCDCTotal)
	return rep
}

// Uncovered lists the coverage points a run missed, as human-readable
// "metric path detail" lines — what a developer reads to write the next
// test case. The order is deterministic (layout order).
func (l *Layout) Uncovered(r *Raw) []string {
	var out []string
	for i, b := range r.Actor {
		if b == 0 && i < len(l.ActorPaths) {
			out = append(out, fmt.Sprintf("actor    %s never executed", l.ActorPaths[i]))
		}
	}
	for _, g := range l.Cond {
		for k := 0; k < g.Count; k++ {
			if g.Base+k < len(r.Cond) && r.Cond[g.Base+k] == 0 {
				out = append(out, fmt.Sprintf("cond     %s branch %d never taken", g.Path, k))
			}
		}
	}
	for _, g := range l.Dec {
		if g.Base < len(r.Dec) && r.Dec[g.Base] == 0 {
			out = append(out, fmt.Sprintf("decision %s never true", g.Path))
		}
		if g.Base+1 < len(r.Dec) && r.Dec[g.Base+1] == 0 {
			out = append(out, fmt.Sprintf("decision %s never false", g.Path))
		}
	}
	for _, g := range l.MCDC {
		for ci := 0; ci < g.Count; ci++ {
			tSeen := g.Base+2*ci < len(r.MCDC) && r.MCDC[g.Base+2*ci] != 0
			fSeen := g.Base+2*ci+1 < len(r.MCDC) && r.MCDC[g.Base+2*ci+1] != 0
			switch {
			case !tSeen && !fSeen:
				out = append(out, fmt.Sprintf("mc/dc    %s condition %d never shown to determine the decision", g.Path, ci+1))
			case !tSeen:
				out = append(out, fmt.Sprintf("mc/dc    %s condition %d not shown determining while true", g.Path, ci+1))
			case !fSeen:
				out = append(out, fmt.Sprintf("mc/dc    %s condition %d not shown determining while false", g.Path, ci+1))
			}
		}
	}
	return out
}

// Collector records coverage events from the interpreted engine into a Raw
// using the same masking MC/DC semantics the generated code inlines.
type Collector struct {
	Layout *Layout
	Raw    *Raw
}

// NewCollector allocates a collector over a fresh Raw.
func NewCollector(l *Layout) *Collector {
	return &Collector{Layout: l, Raw: l.NewRaw()}
}

// Actor marks the actor-coverage slot for the named actor.
func (c *Collector) Actor(name string) {
	if i, ok := c.Layout.ActorIndex[name]; ok {
		c.Raw.Actor[i] = 1
	}
}

// Branch marks branch k of the named branch actor.
func (c *Collector) Branch(name string, k int) {
	if i, ok := c.Layout.CondIndex[name]; ok {
		g := c.Layout.Cond[i]
		if k >= 0 && k < g.Count {
			c.Raw.Cond[g.Base+k] = 1
		}
	}
}

// Decision marks the observed boolean outcome of the named decision actor.
func (c *Collector) Decision(name string, outcome bool) {
	if i, ok := c.Layout.DecIndex[name]; ok {
		g := c.Layout.Dec[i]
		if outcome {
			c.Raw.Dec[g.Base] = 1
		} else {
			c.Raw.Dec[g.Base+1] = 1
		}
	}
}

// MCDC applies the masking determination rule for the actor's operator to
// one observed evaluation. MCDCDetermines defines the rule; the generated
// code inlines the same logic per condition.
func (c *Collector) MCDC(name, op string, conds []bool) {
	i, ok := c.Layout.MCDCIndex[name]
	if !ok || len(conds) < 2 {
		return
	}
	g := c.Layout.MCDC[i]
	n := g.Count
	if len(conds) < n {
		n = len(conds)
	}
	for ci := 0; ci < n; ci++ {
		if !MCDCDetermines(op, conds, ci) {
			continue
		}
		if conds[ci] {
			c.Raw.MCDC[g.Base+2*ci] = 1
		} else {
			c.Raw.MCDC[g.Base+2*ci+1] = 1
		}
	}
}

// MCDCDetermines reports whether condition ci independently determines the
// decision outcome under masking semantics for the given operator:
//
//	AND/NAND: ci determines iff every other condition is true.
//	OR/NOR:   ci determines iff every other condition is false.
//	XOR/NXOR: every condition always determines.
func MCDCDetermines(op string, conds []bool, ci int) bool {
	switch op {
	case "AND", "NAND":
		for j, cj := range conds {
			if j != ci && !cj {
				return false
			}
		}
		return true
	case "OR", "NOR":
		for j, cj := range conds {
			if j != ci && cj {
				return false
			}
		}
		return true
	case "XOR", "NXOR":
		return true
	}
	return false
}
