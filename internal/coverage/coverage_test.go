package coverage

import (
	"strings"
	"testing"
	"testing/quick"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/types"
)

func layoutFixture(t *testing.T) (*actors.Compiled, *Layout) {
	t.Helper()
	m := model.NewBuilder("COV").
		Add("A", "Inport", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Port", "1")).
		Add("B", "Inport", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Port", "2")).
		Add("And", "Logic", 2, 1, model.WithOperator("AND")).
		Add("Not", "Logic", 1, 1, model.WithOperator("NOT")).
		Add("Sw", "Switch", 3, 1).
		Add("Sat", "Saturation", 1, 1, model.WithParam("Min", "0"), model.WithParam("Max", "1")).
		Add("C", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "1")).
		Add("O1", "Outport", 1, 0, model.WithParam("Port", "1")).
		Add("O2", "Outport", 1, 0, model.WithParam("Port", "2")).
		Add("T1", "Terminator", 1, 0).
		Wire("A", "And", 0).
		Wire("B", "And", 1).
		Wire("A", "Not", 0).
		Wire("C", "Sw", 0).
		Wire("And", "Sw", 1).
		Wire("C", "Sw", 2).
		Wire("Sw", "Sat", 0).
		Wire("Sat", "O1", 0).
		Wire("And", "O2", 0).
		Wire("Not", "T1", 0).
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return c, NewLayout(c)
}

func TestLayoutShape(t *testing.T) {
	_, l := layoutFixture(t)
	if len(l.ActorPaths) != 10 {
		t.Errorf("actor points = %d", len(l.ActorPaths))
	}
	// Branch actors: Switch (2) + Saturation (3) = 5 condition bits.
	if l.CondBits != 5 {
		t.Errorf("cond bits = %d, want 5", l.CondBits)
	}
	// Boolean logic: And, Not -> 2 decisions, 4 bits.
	if l.DecBits != 4 {
		t.Errorf("dec bits = %d, want 4", l.DecBits)
	}
	// Combination conditions: And (2 inputs) -> 2 conditions, 4 bits.
	if l.MCDCBits != 4 {
		t.Errorf("mcdc bits = %d, want 4", l.MCDCBits)
	}
	if l.CondBase("Sw") != 0 || l.CondBase("Sat") != 2 {
		t.Errorf("cond bases: Sw=%d Sat=%d", l.CondBase("Sw"), l.CondBase("Sat"))
	}
	if l.CondBase("And") != -1 || l.DecBase("Sw") != -1 || l.MCDCBase("Not") != -1 {
		t.Error("absent groups must return -1")
	}
}

func TestCollectorAndReport(t *testing.T) {
	_, l := layoutFixture(t)
	col := NewCollector(l)
	col.Actor("And")
	col.Actor("Sw")
	col.Branch("Sw", 0)
	col.Branch("Sat", 2)
	col.Decision("And", true)
	col.Decision("And", false)
	col.Decision("Not", true)
	col.MCDC("And", "AND", []bool{true, true})  // both determine while true
	col.MCDC("And", "AND", []bool{false, true}) // cond 0 determines while false
	rep := l.Report(col.Raw)
	if rep.ActorCovered != 2 || rep.ActorTotal != 10 {
		t.Errorf("actor %d/%d", rep.ActorCovered, rep.ActorTotal)
	}
	if rep.CondCovered != 2 || rep.CondTotal != 5 {
		t.Errorf("cond %d/%d", rep.CondCovered, rep.CondTotal)
	}
	if rep.DecCovered != 3 || rep.DecTotal != 4 {
		t.Errorf("dec %d/%d", rep.DecCovered, rep.DecTotal)
	}
	// Condition 0: determined true (TT) and false (FT) -> covered.
	// Condition 1: determined true only -> not covered.
	if rep.MCDCCovered != 1 || rep.MCDCTotal != 2 {
		t.Errorf("mcdc %d/%d", rep.MCDCCovered, rep.MCDCTotal)
	}
	if rep.Actor != 20 {
		t.Errorf("actor%% = %g", rep.Actor)
	}
}

func TestCollectorIgnoresUnknownAndOutOfRange(t *testing.T) {
	_, l := layoutFixture(t)
	col := NewCollector(l)
	col.Actor("NoSuch")
	col.Branch("Sw", 99)
	col.Branch("NoSuch", 0)
	col.Decision("NoSuch", true)
	col.MCDC("NoSuch", "AND", []bool{true, true})
	col.MCDC("And", "AND", []bool{true}) // fewer than 2 conds: ignored
	rep := l.Report(col.Raw)
	if rep.ActorCovered != 0 || rep.CondCovered != 0 || rep.DecCovered != 0 || rep.MCDCCovered != 0 {
		t.Errorf("stray events leaked into coverage: %+v", rep)
	}
}

func TestMCDCDetermines(t *testing.T) {
	cases := []struct {
		op    string
		conds []bool
		ci    int
		want  bool
	}{
		{"AND", []bool{true, true, true}, 0, true},
		{"AND", []bool{true, false, true}, 0, false},
		{"AND", []bool{true, false, true}, 1, true},
		{"NAND", []bool{true, true}, 1, true},
		{"OR", []bool{false, false}, 0, true},
		{"OR", []bool{false, true}, 0, false},
		{"OR", []bool{false, true}, 1, true},
		{"NOR", []bool{false, false}, 1, true},
		{"XOR", []bool{true, false, true}, 2, true},
		{"NXOR", []bool{false, false}, 0, true},
		{"NOT", []bool{true}, 0, false}, // NOT is not a combination op here
	}
	for _, c := range cases {
		if got := MCDCDetermines(c.op, c.conds, c.ci); got != c.want {
			t.Errorf("MCDCDetermines(%s, %v, %d) = %v, want %v", c.op, c.conds, c.ci, got, c.want)
		}
	}
}

// Property: for AND, flipping a condition that "determines" must flip the
// decision outcome — the definition of MC/DC independence.
func TestQuickMCDCDeterminesFlipsOutcome(t *testing.T) {
	and := func(cs []bool) bool {
		out := true
		for _, c := range cs {
			out = out && c
		}
		return out
	}
	f := func(a, b, c bool, pick uint8) bool {
		conds := []bool{a, b, c}
		ci := int(pick) % 3
		if !MCDCDetermines("AND", conds, ci) {
			return true
		}
		flipped := append([]bool(nil), conds...)
		flipped[ci] = !flipped[ci]
		return and(conds) != and(flipped)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: same for OR.
func TestQuickMCDCDeterminesFlipsOutcomeOR(t *testing.T) {
	or := func(cs []bool) bool {
		out := false
		for _, c := range cs {
			out = out || c
		}
		return out
	}
	f := func(a, b, c bool, pick uint8) bool {
		conds := []bool{a, b, c}
		ci := int(pick) % 3
		if !MCDCDetermines("OR", conds, ci) {
			return true
		}
		flipped := append([]bool(nil), conds...)
		flipped[ci] = !flipped[ci]
		return or(conds) != or(flipped)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRawMerge(t *testing.T) {
	_, l := layoutFixture(t)
	a, b := l.NewRaw(), l.NewRaw()
	a.Actor[0] = 1
	b.Actor[1] = 1
	b.Cond[2] = 1
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Actor[0] != 1 || a.Actor[1] != 1 || a.Cond[2] != 1 {
		t.Errorf("merge lost bits: %+v", a)
	}
	bad := &Raw{Actor: make([]byte, 1)}
	if err := a.Merge(bad); err == nil {
		t.Error("incompatible merge must error")
	}
}

func TestReportEmptyMetricIs100(t *testing.T) {
	m := model.NewBuilder("NONE").
		Add("C", "Constant", 0, 1).
		Add("T", "Terminator", 1, 0).
		Wire("C", "T", 0).
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLayout(c)
	rep := l.Report(l.NewRaw())
	if rep.Cond != 100 || rep.Dec != 100 || rep.MCDC != 100 {
		t.Errorf("empty metrics should report 100%%: %+v", rep)
	}
	if rep.Actor != 0 {
		t.Errorf("no actors executed: %g", rep.Actor)
	}
}

func TestUncoveredListing(t *testing.T) {
	_, l := layoutFixture(t)
	col := NewCollector(l)
	// Execute everything except the Not actor; take only one Switch branch;
	// observe only the true outcome of And.
	for _, a := range []string{"A", "B", "And", "Sw", "Sat", "C", "O1", "O2", "T1"} {
		col.Actor(a)
	}
	col.Branch("Sw", 0)
	col.Branch("Sat", 0)
	col.Branch("Sat", 1)
	col.Branch("Sat", 2)
	col.Decision("And", true)
	col.Decision("Not", true)
	col.Decision("Not", false)
	col.MCDC("And", "AND", []bool{true, true})
	missed := l.Uncovered(col.Raw)
	wantSubstrings := []string{
		"COV_Not never executed",
		"COV_Sw branch 1 never taken",
		"COV_And never false",
		"condition 1 not shown determining while false",
		"condition 2 not shown determining while false",
	}
	joined := ""
	for _, m := range missed {
		joined += m + "\n"
	}
	for _, want := range wantSubstrings {
		found := false
		for _, m := range missed {
			if strings.Contains(m, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %q in uncovered listing:\n%s", want, joined)
		}
	}
	// Fully-covered points must not appear.
	for _, m := range missed {
		if strings.Contains(m, "COV_Sat") {
			t.Errorf("Sat is fully covered but listed: %s", m)
		}
	}
}
