package server

import (
	"context"
	"fmt"

	accmos "accmos"
	"accmos/internal/obs"
)

// Runner executes one admitted job. The default is the full AccMoS
// pipeline (PipelineRunner); tests and alternative backends substitute
// their own via Config.Runner. progress receives live snapshots to
// re-broadcast on the job's events stream; tr records the pipeline phase
// spans that feed the /metrics latency histograms.
type Runner func(ctx context.Context, spec JobSpec, tr *accmos.Tracer, progress func(obs.Snapshot)) (*Outcome, error)

// specOptions maps a validated JobSpec to the facade options its run
// uses. PipelineRunner and ProgramKey share it: the coordinator's
// routing key is only useful if it is computed from EXACTLY the options
// the runner will execute with — any drift and repeat models stop
// landing on their warm node.
func specOptions(spec JobSpec, cache *accmos.BuildCache, pool *accmos.WorkerPool, tr *accmos.Tracer, progress func(obs.Snapshot)) accmos.Options {
	opts := accmos.Options{
		Steps:         spec.Steps,
		Budget:        spec.Budget,
		Coverage:      spec.Coverage,
		Diagnose:      spec.Diagnose,
		OptLevel:      spec.OptLevel,
		Partitions:    spec.Partitions,
		Timeout:       spec.Timeout,
		Cache:         cache,
		Pool:          pool,
		RunID:         spec.Corr,
		Trace:         tr,
		Progress:      progress,
		ProgressEvery: spec.Heartbeat,
	}
	if spec.Seed != 0 {
		lo, hi := spec.Lo, spec.Hi
		if lo == 0 && hi == 0 {
			lo, hi = -1, 1
		}
		opts.TestCases = accmos.RandomTestCases(spec.Model, spec.Seed, lo, hi)
	}
	return opts
}

// ProgramKey returns the build-cache content hash the spec's generated
// program will carry — without compiling anything. Sweep jobs force
// coverage on, exactly as accmos.Sweep does, so the key matches the
// artifact the runner really produces. The fleet coordinator hashes this
// key onto its node ring for affinity routing and artifact shipping.
func ProgramKey(spec JobSpec) (string, error) {
	opts := specOptions(spec, nil, nil, nil, nil)
	if len(spec.SweepSeeds) > 0 {
		opts.Coverage = true
	}
	return accmos.ProgramHash(spec.Model, opts)
}

// PipelineRunner builds the production runner: generate, compile through
// the shared bounded cache, execute under the job's context, and shape
// the outcome for the job record. One cache across all jobs is the whole
// point of the daemon — the second submission of an identical model pays
// no compile. The optional pool extends the same amortization to process
// startup: jobs sharing an artifact run through its warm serve-mode
// workers (nil = spawn per run).
func PipelineRunner(cache *accmos.BuildCache, pool *accmos.WorkerPool) Runner {
	return func(ctx context.Context, spec JobSpec, tr *accmos.Tracer, progress func(obs.Snapshot)) (*Outcome, error) {
		opts := specOptions(spec, cache, pool, tr, progress)

		if len(spec.SweepSeeds) > 0 {
			opts.DisableBatch = spec.DisableBatch
			sw, err := accmos.SweepContext(ctx, spec.Model, opts, spec.SweepSeeds)
			if err != nil {
				return nil, fmt.Errorf("sweep: %w", err)
			}
			merged := sw.MergedCoverage()
			out := &Outcome{SweepRuns: len(sw.Runs), Merged: &merged}
			if len(sw.Runs) > 0 && sw.Runs[0] != nil {
				out.CacheHit = sw.Runs[0].CacheHit
				out.Opt = sw.Runs[0].Opt
				out.Part = sw.Runs[0].Part
				out.Batched = sw.Runs[0].Batched
				out.ArtifactHash = sw.Runs[0].ArtifactHash
			}
			return out, nil
		}

		res, err := accmos.SimulateContext(ctx, spec.Model, opts)
		if err != nil {
			return nil, err
		}
		out := &Outcome{
			Results: res.Results, CacheHit: res.CacheHit, WorkerReuse: res.WorkerReuse,
			Opt: res.Opt, Part: res.Part, ArtifactHash: res.ArtifactHash,
		}
		if spec.Coverage {
			rep := res.CoverageReport()
			out.Coverage = &rep
		}
		return out, nil
	}
}
