package server

import (
	"io"
	"net/http"
	"regexp"
)

// DigestHeader carries the SHA-256 (hex) of an artifact's bytes on
// GET/PUT /v1/artifacts/{hash} exchanges — the integrity check Import
// enforces, so a truncated or corrupted transfer can never enter a
// node's cache.
const DigestHeader = "X-Accmos-Digest"

// artifactKeyRE vets the {hash} path element: build-cache keys are
// lowercase hex SHA-256 strings. Rejecting anything else keeps crafted
// keys out of file names.
var artifactKeyRE = regexp.MustCompile(`^[0-9a-f]{16,64}$`)

// maxArtifactBytes bounds a PUT /v1/artifacts body. Generated simulation
// binaries are a few MiB; 256 MiB is far above any real artifact while
// still refusing an unbounded upload.
const maxArtifactBytes = 256 << 20

// handleArtifactGet serves the compiled binary cached under the content
// hash, with its digest in X-Accmos-Digest — the fleet layer's artifact
// export: a model compiled on this node becomes downloadable by any
// peer (coordinator-mediated). 404 when the hash is not resident.
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if !artifactKeyRE.MatchString(key) {
		writeError(w, http.StatusBadRequest, "malformed artifact hash")
		return
	}
	data, digest, err := s.cache.Export(key)
	if err != nil {
		writeError(w, http.StatusNotFound, "artifact %s not cached here", key)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(DigestHeader, digest)
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(data)
	}
}

// handleArtifactPut imports a compiled binary under the content hash —
// the receiving half of a fleet artifact transfer. The X-Accmos-Digest
// header is mandatory and must match the body's SHA-256; a mismatch is a
// 400 and nothing is installed. On success the node's next job for the
// same program is a build-cache hit: compiled anywhere, compiled
// everywhere.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("hash")
	if !artifactKeyRE.MatchString(key) {
		writeError(w, http.StatusBadRequest, "malformed artifact hash")
		return
	}
	digest := r.Header.Get(DigestHeader)
	if digest == "" {
		writeError(w, http.StatusBadRequest, "missing %s header", DigestHeader)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxArtifactBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading artifact body: %v", err)
		return
	}
	if err := s.cache.Import(key, digest, data); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.metrics.countArtifactImport()
	s.cfg.Logger.Info("artifact imported", "hash", key, "bytes", len(data))
	w.WriteHeader(http.StatusNoContent)
}
