// Package server implements accmosd, the simulation-as-a-service layer:
// an HTTP/JSON daemon that accepts model submissions (SLX XML or JSON
// IR), validates them with internal/lint, compiles them through a shared
// bounded build cache, and executes them on a bounded in-process job
// queue with per-job priorities, admission control, cancellation and
// graceful drain. It turns the one-shot CLI pipeline into the long-lived
// service the paper's drop-in-replacement pitch implies — where the
// content-hash build cache finally amortizes compiles ACROSS requests,
// not just within one process invocation.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a model           -> 202 SubmitResponse
//	GET    /v1/jobs/{id}        job status + results     -> 200 JobView
//	GET    /v1/jobs/{id}/events live NDJSON heartbeats   -> 200 stream
//	GET    /v1/jobs/{id}/debug  failure forensics        -> 200 DebugBundle
//	DELETE /v1/jobs/{id}        cancel                   -> 200 JobView
//	GET    /healthz             liveness / drain state
//	GET    /metrics             queue, cache and latency counters
//	                            (JSON; ?format=prom for Prometheus text)
//
// Every job's ID doubles as its correlation ID: log lines, trace spans,
// heartbeats on the events stream and debug bundles all carry it, so one
// job's telemetry is joinable across the daemon and its child processes.
package server

import (
	"time"

	accmos "accmos"
	"accmos/internal/coverage"
	"accmos/internal/obs"
	"accmos/internal/simresult"
)

// SubmitRequest is the POST /v1/jobs body. The model document format is
// auto-detected: a document starting with '{' is the JSON IR, anything
// else the two-part SLX XML.
type SubmitRequest struct {
	// Model is the model document itself (not a path — the daemon never
	// reads the client's filesystem).
	Model string `json:"model"`

	// Priority orders queued jobs: higher runs first, FIFO within a
	// priority level.
	Priority int `json:"priority,omitempty"`

	// Steps bounds the simulation length (default 1000); BudgetMS bounds
	// wall clock instead when positive.
	Steps    int64 `json:"steps,omitempty"`
	BudgetMS int64 `json:"budgetMs,omitempty"`
	// TimeoutMS kills the job's generated binary past this deadline;
	// capped by (and defaulting to) the daemon's -job-timeout.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`

	Coverage bool `json:"coverage,omitempty"`
	Diagnose bool `json:"diagnose,omitempty"`

	// OptLevel selects the optimizing middle-end level for this job
	// (0, 1 or 2). Absent = the daemon's -opt default. Distinct levels
	// never share build-cache entries.
	OptLevel *int `json:"optLevel,omitempty"`

	// Partitions pipelines the generated step loop across N goroutine
	// partitions for this job: 0 or 1 = sequential, N >= 2 = request an
	// N-way cut, -1 = auto from the runner's GOMAXPROCS. Absent = the
	// daemon's -partitions default. Partitioned and sequential builds of
	// one model never share a build-cache entry, and results stay
	// bit-identical either way.
	Partitions *int `json:"partitions,omitempty"`

	// Seed (with Lo/Hi bounds, default [-1, 1]) selects deterministic
	// uniform random stimuli; zero keeps the facade default.
	Seed uint64  `json:"seed,omitempty"`
	Lo   float64 `json:"lo,omitempty"`
	Hi   float64 `json:"hi,omitempty"`

	// SweepSeeds, when non-empty, runs one coverage sweep suite per seed
	// against a single compiled binary instead of a single simulation.
	SweepSeeds []uint64 `json:"sweepSeeds,omitempty"`

	// Batch controls lane-vectorized batch execution for sweep jobs:
	// absent or true keeps the default (batch whenever the sweep is
	// step-bounded), false forces one request per suite. Results are
	// bit-identical either way.
	Batch *bool `json:"batch,omitempty"`

	// HeartbeatMS is the progress-snapshot interval for the job's events
	// stream (default 250 ms).
	HeartbeatMS int64 `json:"heartbeatMs,omitempty"`

	// Tenant names the submitting tenant for fleet-level quota accounting
	// and fair scheduling. A single accmosd ignores it; the coordinator
	// applies per-tenant token-bucket quotas to it ("" = the anonymous
	// tenant).
	Tenant string `json:"tenant,omitempty"`
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	ID         string   `json:"id"`
	State      JobState `json:"state"`
	QueueDepth int      `json:"queueDepth"`
}

// JobState is a job's lifecycle position.
type JobState string

// Job lifecycle: queued -> running -> done | failed | canceled.
const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// LintLine is one lint finding in wire form.
type LintLine struct {
	Severity string `json:"severity"`
	// Rule is the stable machine-readable rule slug (e.g. "DeadActors");
	// clients filter on it rather than parsing Message.
	Rule    string `json:"rule,omitempty"`
	Actor   string `json:"actor"`
	Message string `json:"message"`
}

// JobView is the GET /v1/jobs/{id} payload (and the final record of an
// events stream).
type JobView struct {
	ID          string     `json:"id"`
	State       JobState   `json:"state"`
	Model       string     `json:"model,omitempty"`
	Priority    int        `json:"priority,omitempty"`
	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`

	// QueueNanos is time spent waiting for a worker; RunNanos the
	// execution span (admission to completion excludes neither compile
	// nor cache effects — see Phases and CacheHit for the split).
	QueueNanos int64 `json:"queueNanos,omitempty"`
	RunNanos   int64 `json:"runNanos,omitempty"`

	// CacheHit reports the generated binary came from the build cache,
	// so this job paid no compile; WorkerReuse that an already-warm
	// serve-mode worker executed it, so it paid no process startup;
	// Phases holds the traced per-phase nanoseconds
	// (schedule/instrument/generate/compile/run).
	CacheHit    bool             `json:"cacheHit,omitempty"`
	WorkerReuse bool             `json:"workerReuse,omitempty"`
	Phases      map[string]int64 `json:"phases,omitempty"`

	// Lint carries the advisory findings recorded at admission (a model
	// with error-severity findings is rejected and never becomes a job).
	Lint []LintLine `json:"lint,omitempty"`

	Error string `json:"error,omitempty"`

	// Result holds the simulation outcome of a done single-run job;
	// Coverage its computed report. Sweep jobs report the suite count
	// and merged coverage instead.
	Result         *simresult.Results `json:"result,omitempty"`
	Coverage       *coverage.Report   `json:"coverage,omitempty"`
	SweepRuns      int                `json:"sweepRuns,omitempty"`
	Batched        bool               `json:"batched,omitempty"`
	MergedCoverage *coverage.Report   `json:"mergedCoverage,omitempty"`

	// Opt reports what the optimizing middle-end did for this job
	// (level, actors before/after, per-pass rewrite counts).
	Opt *accmos.OptStats `json:"opt,omitempty"`

	// Part reports the partitioning decision behind the job's generated
	// run: usable partition count, cut signals, balance, or why a K-way
	// request fell back to sequential. Nil when partitioning was never
	// requested (or the job ran on an in-process engine).
	Part *accmos.PartStats `json:"part,omitempty"`

	// ArtifactHash is the content-hash build-cache key of the binary this
	// job executed — the handle GET /v1/artifacts/{hash} serves, and what
	// a fleet coordinator records to route repeat models to warm nodes.
	ArtifactHash string `json:"artifactHash,omitempty"`
}

// ErrorResponse is the structured error body every non-2xx endpoint
// returns. Lint carries the blocking findings of a rejected submission.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSec mirrors the Retry-After header on 429s.
	RetryAfterSec int        `json:"retryAfterSec,omitempty"`
	Lint          []LintLine `json:"lint,omitempty"`
}

// PhaseStats summarises one pipeline phase's latency distribution over
// recent jobs.
type PhaseStats struct {
	Count      int64 `json:"count"`
	TotalNanos int64 `json:"totalNanos"`
	MaxNanos   int64 `json:"maxNanos"`
	P50Nanos   int64 `json:"p50Nanos"`
	P90Nanos   int64 `json:"p90Nanos"`
	P99Nanos   int64 `json:"p99Nanos"`
}

// CacheView is the build-cache section of /metrics.
type CacheView struct {
	Entries   int     `json:"entries"`
	Limit     int     `json:"limit"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
}

// OptTotals aggregates optimizing-middle-end activity across finished
// jobs: how many ran at each level, how many scheduled actors the
// pipeline saw and kept in total, and what the O2 typed-lowering stage
// did to them. ActorsEffective is the post-fusion step-loop statement
// total — the denominator for any ns-per-actor-step derived from these
// counters (below O2 it equals ActorsAfter).
type OptTotals struct {
	O0Jobs          int64 `json:"o0Jobs"`
	O1Jobs          int64 `json:"o1Jobs"`
	O2Jobs          int64 `json:"o2Jobs"`
	ActorsBefore    int64 `json:"actorsBefore"`
	ActorsAfter     int64 `json:"actorsAfter"`
	ActorsEffective int64 `json:"actorsEffective"`
	FusedExprs      int64 `json:"fusedExprs"`
	HoistedExprs    int64 `json:"hoistedExprs"`
	NarrowedSignals int64 `json:"narrowedSignals"`
}

// WorkerPoolView is the warm-worker-pool section of /metrics: how many
// serve-mode processes were spawned, how many runs an already-warm
// worker served (the amortized process startups), how many workers were
// killed and left to respawn after a deadline or protocol error, and how
// many are parked idle right now (Warm, a live gauge).
type WorkerPoolView struct {
	PerArtifact int   `json:"perArtifact"`
	Spawns      int64 `json:"spawns"`
	Reuses      int64 `json:"reuses"`
	Respawns    int64 `json:"respawns"`
	Artifacts   int   `json:"artifacts"`
	Warm        int   `json:"warm"`
}

// PartTotals aggregates partitioned-execution activity across finished
// jobs: how many jobs actually ran a pipelined step loop, how many had
// their partition request declined to sequential, the partitions those
// runs spanned and the cross-partition signals they shipped per step.
type PartTotals struct {
	PartitionedJobs int64 `json:"partitionedJobs"`
	DeclinedJobs    int64 `json:"declinedJobs"`
	Partitions      int64 `json:"partitions"`
	CutSignals      int64 `json:"cutSignals"`
}

// MetricsView is the GET /metrics payload (the JSON rendering of the
// same registry ?format=prom exposes as Prometheus text).
type MetricsView struct {
	QueueDepth  int              `json:"queueDepth"`
	Running     int              `json:"running"`
	Workers     int              `json:"workers"`
	Draining    bool             `json:"draining"`
	UptimeNanos int64            `json:"uptimeNanos"`
	Jobs        map[string]int64 `json:"jobs"`
	// EventsDropped counts progress snapshots lost across all job event
	// streams because a subscriber fell behind (lifetime total).
	EventsDropped int64                 `json:"eventsDropped"`
	Cache         CacheView             `json:"cache"`
	WorkerPool    *WorkerPoolView       `json:"workerPool,omitempty"`
	Opt           OptTotals             `json:"opt"`
	Part          PartTotals            `json:"part"`
	Phases        map[string]PhaseStats `json:"phases,omitempty"`
}

// DebugBundle is the GET /v1/jobs/{id}/debug payload: the bounded
// forensic record the daemon captures the moment a job reaches failed or
// canceled — what died (correlated by the job ID), why (reason, exit
// code, deadline), the evidence (stderr tail, last heartbeats, phase
// trace) and the daemon state around it (queue, cache, pool). It is
// retained with the job record, so the post-mortem survives until
// retention evicts the job.
type DebugBundle struct {
	ID   string `json:"id"`
	Corr string `json:"corr"`

	State       JobState   `json:"state"`
	Model       string     `json:"model,omitempty"`
	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`

	// Error is the full error text; Reason its machine-readable class
	// (a harness Reason* constant, "canceled", or "error" for
	// non-execution failures). ExitCode is the generated binary's exit
	// status (-1 when unknown); TimeoutMS the deadline that fired on a
	// timeout; Bin the binary that was executing.
	Error     string `json:"error,omitempty"`
	Reason    string `json:"reason,omitempty"`
	ExitCode  int    `json:"exitCode"`
	TimeoutMS int64  `json:"timeoutMs,omitempty"`
	Bin       string `json:"bin,omitempty"`

	// StderrTail holds the last non-heartbeat stderr lines of the
	// generated binary; Heartbeats the last progress snapshots before
	// death (each stamped with Corr); Trace the pipeline phase spans;
	// Phases the flattened per-phase nanoseconds.
	StderrTail []string         `json:"stderrTail,omitempty"`
	Heartbeats []obs.Snapshot   `json:"heartbeats,omitempty"`
	Trace      *obs.Trace       `json:"trace,omitempty"`
	Phases     map[string]int64 `json:"phases,omitempty"`

	// Daemon state at capture time, for correlating the failure with
	// load (was the queue saturated? the cache thrashing?).
	QueueDepth int             `json:"queueDepth"`
	Running    int             `json:"running"`
	Cache      CacheView       `json:"cache"`
	WorkerPool *WorkerPoolView `json:"workerPool,omitempty"`
}

// HealthView is the GET /healthz payload: enough readiness detail for a
// fleet coordinator or an external load balancer to make routing
// decisions from one probe — how much work is queued and running against
// what capacity, and whether the daemon is refusing new work.
type HealthView struct {
	Status     string `json:"status"` // "ok" | "draining"
	QueueDepth int    `json:"queueDepth"`
	Running    int    `json:"running"`
	// Draining reports the daemon refuses new submissions (503). The
	// Status string says so too; the flag is the machine-readable form.
	Draining bool `json:"draining"`
	// Workers is the configured simulation concurrency; QueueCap the
	// admission bound beyond which submissions get 429.
	Workers  int `json:"workers"`
	QueueCap int `json:"queueCap"`
	// UptimeNanos is time since the daemon started.
	UptimeNanos int64 `json:"uptimeNanos"`
}
