package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	accmos "accmos"
	"accmos/internal/obs"
	"accmos/internal/server"
)

// scrape fetches /metrics with an explicit query string and Accept
// header, returning the response and its body.
func scrape(t *testing.T, ts *httptest.Server, query, accept string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %q: %s: %s", query, resp.Status, body)
	}
	return resp, string(body)
}

// promSkeleton reduces a Prometheus exposition to its # HELP / # TYPE
// lines — the stable family skeleton, independent of sample values.
func promSkeleton(exposition string) string {
	var sb strings.Builder
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "# ") {
			sb.WriteString(line)
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// promValues parses sample lines ("name{labels} value") into a map keyed
// by the full series name including its label block.
func promValues(t *testing.T, exposition string) map[string]float64 {
	t.Helper()
	vals := make(map[string]float64)
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("malformed sample value in %q: %v", line, err)
		}
		vals[line[:idx]] = v
	}
	return vals
}

// TestMetricsPrometheusGoldenSkeleton pins the exposition's family
// skeleton (every # HELP / # TYPE line, in registration order) against
// testdata/metrics.prom.golden. Run with UPDATE_GOLDEN=1 to regenerate
// after intentionally adding or renaming a metric.
func TestMetricsPrometheusGoldenSkeleton(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	resp, body := scrape(t, ts, "?format=prom", "")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want text/plain; version=0.0.4", ct)
	}
	got := promSkeleton(body)
	golden := filepath.Join("testdata", "metrics.prom.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition skeleton drifted from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestMetricsExpositionWellFormed checks structural invariants of the
// Prometheus text: every sample belongs to an announced family, every
// histogram ends with +Inf == _count, and counters never carry a
// negative value.
func TestMetricsExpositionWellFormed(t *testing.T) {
	runner, release, _, _ := blockingRunner()
	_ = release
	release()
	_, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})
	id := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "WF", "2.0")})
	waitJob(t, ts, id)

	_, body := scrape(t, ts, "?format=prom", "")
	announced := make(map[string]bool)
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			announced[strings.Fields(line)[2]] = true
		}
	}
	vals := promValues(t, body)
	for series, v := range vals {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !announced[name] && !announced[base] {
			t.Errorf("sample %q has no # TYPE header", series)
		}
		if strings.HasSuffix(name, "_total") && v < 0 {
			t.Errorf("counter %q is negative: %v", series, v)
		}
	}
	// Histogram consistency: +Inf bucket must equal the series count.
	// accmosd_phase_seconds_bucket{phase="x",le="+Inf"} must match
	// accmosd_phase_seconds_count{phase="x"}.
	for series, v := range vals {
		if !strings.Contains(series, `le="+Inf"`) {
			continue
		}
		name := series[:strings.IndexByte(series, '{')]
		labels := series[strings.IndexByte(series, '{')+1 : len(series)-1]
		var kept []string
		for _, l := range strings.Split(labels, ",") {
			if !strings.HasPrefix(l, `le=`) {
				kept = append(kept, l)
			}
		}
		countName := strings.Replace(name, "_bucket", "_count", 1)
		if len(kept) > 0 {
			countName += "{" + strings.Join(kept, ",") + "}"
		}
		if cv, ok := vals[countName]; !ok || cv != v {
			t.Errorf("+Inf bucket %v != count %v for %s", v, cv, countName)
		}
	}
}

// TestMetricsFormatNegotiation covers the format selection matrix: the
// query parameter always wins, Accept headers steer otherwise, and the
// bare curl default stays JSON for backward compatibility.
func TestMetricsFormatNegotiation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})
	cases := []struct {
		query, accept string
		wantProm      bool
	}{
		{"", "", false},                                  // bare default: JSON
		{"", "*/*", false},                               // curl default: JSON
		{"", "application/json", false},                  // explicit JSON
		{"?format=json", "text/plain", false},            // query beats Accept
		{"?format=prom", "", true},                       // query opt-in
		{"?format=prometheus", "application/json", true}, // query beats Accept
		{"", "text/plain", true},                         // scraper Accept
		{"", "application/openmetrics-text;version=1.0.0,text/plain;q=0.5", true},
	}
	for _, tc := range cases {
		resp, body := scrape(t, ts, tc.query, tc.accept)
		ct := resp.Header.Get("Content-Type")
		isProm := strings.HasPrefix(ct, "text/plain")
		if isProm != tc.wantProm {
			t.Errorf("query=%q accept=%q: content type %q, want prom=%v", tc.query, tc.accept, ct, tc.wantProm)
			continue
		}
		if tc.wantProm {
			if !strings.Contains(body, "# TYPE accmosd_jobs_total counter") {
				t.Errorf("query=%q accept=%q: prom body missing jobs family", tc.query, tc.accept)
			}
		} else {
			var mv server.MetricsView
			if err := json.Unmarshal([]byte(body), &mv); err != nil {
				t.Errorf("query=%q accept=%q: JSON body does not decode: %v", tc.query, tc.accept, err)
			}
		}
	}
}

// TestMetricsChurnMonotonicAndFormatsAgree hammers the daemon with
// submissions and cancellations from several goroutines while other
// goroutines scrape both representations, then asserts (a) every
// accmosd_jobs_total series only ever moved up and (b) the final JSON
// and Prometheus views agree exactly. Run under -race this also proves
// the registry is data-race free against live traffic.
func TestMetricsChurnMonotonicAndFormatsAgree(t *testing.T) {
	runner := func(ctx context.Context, spec server.JobSpec, tr *accmos.Tracer, progress func(obs.Snapshot)) (*server.Outcome, error) {
		progress(obs.Snapshot{Steps: 1})
		select {
		case <-time.After(time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if strings.HasSuffix(spec.ModelName, "F") {
			return nil, fmt.Errorf("induced failure")
		}
		return &server.Outcome{}, nil
	}
	_, ts := newTestServer(t, server.Config{Workers: 4, QueueDepth: 256, Runner: runner})

	const (
		submitters = 4
		perWorker  = 25
	)
	var wg sync.WaitGroup
	ids := make(chan string, submitters*perWorker)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				suffix := "OK"
				if i%5 == 0 {
					suffix = "F"
				}
				name := fmt.Sprintf("M%d_%d%s", g, i, suffix)
				resp, payload := submit(t, ts, server.SubmitRequest{Model: slxDoc(t, name, "1.0")})
				if resp.StatusCode != http.StatusAccepted {
					continue // queue-full rejections are legitimate churn
				}
				var ack server.SubmitResponse
				if err := json.Unmarshal(payload, &ack); err == nil {
					ids <- ack.ID
					if i%7 == 0 {
						req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+ack.ID, nil)
						if r, err := http.DefaultClient.Do(req); err == nil {
							r.Body.Close()
						}
					}
				}
			}
		}(g)
	}

	// Scrapers run until the submitters finish, checking monotonicity of
	// every accmosd_jobs_total series across successive prom scrapes.
	stop := make(chan struct{})
	var scrWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrWG.Add(1)
		go func() {
			defer scrWG.Done()
			prev := make(map[string]float64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, body := scrape(t, ts, "?format=prom", "")
				vals := promValues(t, body)
				for series, v := range vals {
					if !strings.HasPrefix(series, "accmosd_jobs_total") {
						continue
					}
					if p, ok := prev[series]; ok && v < p {
						t.Errorf("counter %s went backwards: %v -> %v", series, p, v)
					}
					prev[series] = v
				}
				getMetrics(t, ts) // concurrent JSON scrape, same registry
			}
		}()
	}

	wg.Wait()
	close(ids)
	for id := range ids {
		waitJob(t, ts, id)
	}
	close(stop)
	scrWG.Wait()

	// Quiescent now: the two representations must agree sample for sample.
	mv := getMetrics(t, ts)
	_, body := scrape(t, ts, "?format=prom", "")
	vals := promValues(t, body)
	for _, state := range []string{"submitted", "done", "failed", "canceled", "rejected"} {
		series := fmt.Sprintf(`accmosd_jobs_total{state=%q}`, state)
		if vals[series] != float64(mv.Jobs[state]) {
			t.Errorf("jobs[%s]: prom %v != json %d", state, vals[series], mv.Jobs[state])
		}
	}
	if vals["accmosd_events_dropped_total"] != float64(mv.EventsDropped) {
		t.Errorf("events dropped: prom %v != json %d", vals["accmosd_events_dropped_total"], mv.EventsDropped)
	}
	if mv.Jobs["done"] == 0 || mv.Jobs["failed"] == 0 {
		t.Errorf("churn produced no terminal jobs: %v", mv.Jobs)
	}
	if got := vals["accmosd_queue_depth"]; got != 0 {
		t.Errorf("queue depth %v after quiescence", got)
	}
}

// getDebug fetches a job's debug bundle, asserting the expected status.
func getDebug(t *testing.T, ts *httptest.Server, id string, wantStatus int) *server.DebugBundle {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/debug")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("debug %s: %s (want %d): %s", id, resp.Status, wantStatus, payload)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var b server.DebugBundle
	if err := json.Unmarshal(payload, &b); err != nil {
		t.Fatal(err)
	}
	return &b
}

// TestFailedJobDebugBundle: a stub runner fails with a structured
// RunError; the captured bundle carries the error's forensics and the
// job's correlation ID on every layer (bundle, heartbeats, trace), and
// successful jobs have no bundle.
func TestFailedJobDebugBundle(t *testing.T) {
	runner := func(ctx context.Context, spec server.JobSpec, tr *accmos.Tracer, progress func(obs.Snapshot)) (*server.Outcome, error) {
		defer tr.Start("simulate").End()
		progress(obs.Snapshot{Steps: 10})
		progress(obs.Snapshot{Steps: 20})
		if spec.ModelName == "DBGF" {
			return nil, &accmos.RunError{
				Model:      spec.ModelName,
				Bin:        "/fake/bin/DBGF",
				Corr:       spec.Corr,
				Reason:     accmos.ReasonExit,
				ExitCode:   7,
				StderrTail: []string{"panic: numerical instability"},
			}
		}
		return &server.Outcome{}, nil
	}
	_, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})

	failID := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "DBGF", "1.0")})
	if v := waitJob(t, ts, failID); v.State != server.JobFailed {
		t.Fatalf("state %s, want failed", v.State)
	}
	b := getDebug(t, ts, failID, http.StatusOK)
	if b.ID != failID || b.Corr != failID {
		t.Errorf("bundle id/corr %q/%q, want both %q", b.ID, b.Corr, failID)
	}
	if b.Reason != accmos.ReasonExit || b.ExitCode != 7 {
		t.Errorf("reason %q exit %d, want exit/7", b.Reason, b.ExitCode)
	}
	if b.Bin != "/fake/bin/DBGF" {
		t.Errorf("bin %q", b.Bin)
	}
	if len(b.StderrTail) != 1 || !strings.Contains(b.StderrTail[0], "numerical instability") {
		t.Errorf("stderr tail %q", b.StderrTail)
	}
	if len(b.Heartbeats) == 0 {
		t.Fatal("bundle has no heartbeats")
	}
	for i, hb := range b.Heartbeats {
		if hb.Corr != failID {
			t.Errorf("heartbeat %d corr %q, want %q", i, hb.Corr, failID)
		}
	}
	if b.Trace == nil || b.Trace.Corr != failID {
		t.Errorf("trace corr: %+v", b.Trace)
	}
	if _, ok := b.Phases["simulate"]; !ok {
		t.Errorf("phases missing the simulate span: %v", b.Phases)
	}
	if b.State != server.JobFailed || b.Error == "" {
		t.Errorf("bundle state/error: %q / %q", b.State, b.Error)
	}

	okID := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "DBGOK", "1.0")})
	if v := waitJob(t, ts, okID); v.State != server.JobDone {
		t.Fatalf("state %s, want done", v.State)
	}
	getDebug(t, ts, okID, http.StatusNotFound)
	getDebug(t, ts, "j-999999", http.StatusNotFound)
}

// TestCanceledJobDebugBundle: canceling a running job also captures a
// bundle, classified "canceled".
func TestCanceledJobDebugBundle(t *testing.T) {
	runner, release, _, _ := blockingRunner()
	defer release()
	_, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})
	id := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "CNCL", "1.0")})
	waitState(t, ts, id, server.JobRunning)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := waitJob(t, ts, id); v.State != server.JobCanceled {
		t.Fatalf("state %s, want canceled", v.State)
	}
	b := getDebug(t, ts, id, http.StatusOK)
	if b.Reason != "canceled" || b.Corr != id {
		t.Errorf("bundle reason %q corr %q", b.Reason, b.Corr)
	}
}

// TestRealPipelineTimeoutForensics drives the REAL pipeline into a
// wall-clock timeout (an effectively unbounded simulation with a tight
// deadline and fast heartbeats) and checks the complete forensic chain:
// the job fails with reason "timeout", and the bundle, its heartbeats
// and its trace all carry the job's correlation ID.
func TestRealPipelineTimeoutForensics(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a real program")
	}
	cache := accmos.NewBuildCache(t.TempDir())
	defer cache.Remove()
	_, ts := newTestServer(t, server.Config{Workers: 1, Cache: cache})

	id := submitOK(t, ts, server.SubmitRequest{
		Model:       slxDoc(t, "TMO", "3.0"),
		Steps:       1 << 40,
		TimeoutMS:   1500,
		HeartbeatMS: 25,
	})
	v := waitJob(t, ts, id)
	if v.State != server.JobFailed {
		t.Fatalf("state %s (err %q), want failed", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "timeout") {
		t.Errorf("job error %q does not mention the timeout", v.Error)
	}

	b := getDebug(t, ts, id, http.StatusOK)
	if b.Reason != accmos.ReasonTimeout {
		t.Errorf("bundle reason %q, want timeout", b.Reason)
	}
	if b.Corr != id {
		t.Errorf("bundle corr %q, want %q", b.Corr, id)
	}
	if b.TimeoutMS != 1500 {
		t.Errorf("bundle timeoutMs %d, want 1500", b.TimeoutMS)
	}
	if b.Bin == "" {
		t.Error("bundle has no binary path")
	}
	if len(b.Heartbeats) == 0 {
		t.Fatal("no heartbeats captured before the kill")
	}
	for i, hb := range b.Heartbeats {
		if hb.Corr != id {
			t.Errorf("heartbeat %d corr %q, want %q", i, hb.Corr, id)
		}
	}
	if b.Trace == nil || b.Trace.Corr != id {
		t.Fatalf("trace missing or uncorrelated: %+v", b.Trace)
	}
	// The failure must also be visible in both metric representations.
	mv := getMetrics(t, ts)
	if mv.Jobs["failed"] != 1 {
		t.Errorf("json failed count %d, want 1", mv.Jobs["failed"])
	}
	_, body := scrape(t, ts, "?format=prom", "")
	if vals := promValues(t, body); vals[`accmosd_jobs_total{state="failed"}`] != 1 {
		t.Errorf("prom failed count %v, want 1", vals[`accmosd_jobs_total{state="failed"}`])
	}
}
