package server

import (
	"fmt"
	"time"

	accmos "accmos"
	"accmos/internal/lint"
)

// AdmissionError is a submission rejected before it ever became a job:
// the model failed to parse, elaborate, or passed lint with blocking
// findings. Both accmosd's submit handler and the fleet coordinator map
// it to a structured 400.
type AdmissionError struct {
	Msg string
	// Lint carries the blocking findings when lint caused the rejection.
	Lint []LintLine
}

func (e *AdmissionError) Error() string { return e.Msg }

// SpecFromRequest validates a submission and builds the runnable JobSpec:
// parse, elaborate, lint-gate, then map the wire fields onto the spec
// with the daemon's defaults (opt level, heartbeat) and the job-timeout
// clamp applied. It is the single admission path shared by a standalone
// accmosd and the fleet coordinator, so a model admitted by the
// coordinator is never rejected by the runner it lands on. The returned
// findings are the full advisory list recorded on the job.
func SpecFromRequest(req SubmitRequest, defaultOpt accmos.OptLevel, defaultPartitions int, jobTimeout time.Duration) (JobSpec, []lint.Finding, error) {
	if req.Model == "" {
		return JobSpec{}, nil, &AdmissionError{Msg: "submission has no model document"}
	}
	m, err := accmos.LoadModelBytes([]byte(req.Model))
	if err != nil {
		return JobSpec{}, nil, &AdmissionError{Msg: fmt.Sprintf("parsing model: %v", err)}
	}
	compiled, err := accmos.Compile(m)
	if err != nil {
		return JobSpec{}, nil, &AdmissionError{Msg: fmt.Sprintf("elaborating model: %v", err)}
	}
	findings := lint.Check(compiled)
	if blocking := lint.Errors(findings); len(blocking) > 0 {
		return JobSpec{}, findings, &AdmissionError{
			Msg:  fmt.Sprintf("model %s failed lint with %d error(s)", m.Name, len(blocking)),
			Lint: lintLines(blocking),
		}
	}

	spec := JobSpec{
		ModelName:  m.Name,
		Model:      m,
		Steps:      req.Steps,
		Budget:     time.Duration(req.BudgetMS) * time.Millisecond,
		Timeout:    time.Duration(req.TimeoutMS) * time.Millisecond,
		Coverage:   req.Coverage,
		Diagnose:   req.Diagnose,
		OptLevel:   defaultOpt,
		Partitions: defaultPartitions,
		Seed:       req.Seed,
		Lo:         req.Lo,
		Hi:         req.Hi,
		SweepSeeds: req.SweepSeeds,
		Heartbeat:  defaultHeartbeat,
	}
	if req.Batch != nil {
		spec.DisableBatch = !*req.Batch
	}
	if req.OptLevel != nil {
		lv, err := accmos.OptLevelFromInt(*req.OptLevel)
		if err != nil {
			return JobSpec{}, findings, &AdmissionError{Msg: fmt.Sprintf("optLevel: %v", err)}
		}
		spec.OptLevel = lv
	}
	if req.Partitions != nil {
		if *req.Partitions < accmos.PartitionsAuto {
			return JobSpec{}, findings, &AdmissionError{Msg: fmt.Sprintf("partitions: invalid count %d (want 0, 1, N >= 2 or -1 for auto)", *req.Partitions)}
		}
		spec.Partitions = *req.Partitions
	}
	if req.HeartbeatMS > 0 {
		spec.Heartbeat = time.Duration(req.HeartbeatMS) * time.Millisecond
	}
	if cap := jobTimeout; cap > 0 && (spec.Timeout <= 0 || spec.Timeout > cap) {
		spec.Timeout = cap
	}
	return spec, findings, nil
}
