package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"accmos/internal/server"
)

// TestArtifactExportImportBetweenDaemons is the fleet transfer path over
// real HTTP: a job compiled on daemon A is exported by content hash,
// shipped to daemon B, and B's first job for the same model is a
// build-cache hit — compiled anywhere, compiled everywhere.
func TestArtifactExportImportBetweenDaemons(t *testing.T) {
	_, tsA := newTestServer(t, server.Config{Workers: 1, PoolWorkers: -1})
	_, tsB := newTestServer(t, server.Config{Workers: 1, PoolWorkers: -1})

	doc := slxDoc(t, "XFER", "3")
	view := waitJob(t, tsA, submitOK(t, tsA, server.SubmitRequest{Model: doc, Steps: 50}))
	if view.State != server.JobDone {
		t.Fatalf("seed job: %s (%s)", view.State, view.Error)
	}
	if view.ArtifactHash == "" {
		t.Fatal("done job reports no artifact hash")
	}
	if view.CacheHit {
		t.Fatal("first compile reported a cache hit")
	}

	// Export from A with its digest.
	resp, err := http.Get(tsA.URL + "/v1/artifacts/" + view.ArtifactHash)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %s: %s", resp.Status, data)
	}
	digest := resp.Header.Get(server.DigestHeader)
	if digest == "" || len(data) == 0 {
		t.Fatalf("export returned %d bytes, digest %q", len(data), digest)
	}

	// A corrupted transfer must be rejected by B.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0xff
	if code, body := putArtifact(t, tsB, view.ArtifactHash, digest, corrupt); code != http.StatusBadRequest {
		t.Fatalf("corrupt import: got %d (%s), want 400", code, body)
	} else if !strings.Contains(string(body), "digest mismatch") {
		t.Fatalf("corrupt import rejection: %s", body)
	}
	// A missing digest header is refused outright.
	if code, _ := putArtifact(t, tsB, view.ArtifactHash, "", data); code != http.StatusBadRequest {
		t.Fatalf("import without digest: got %d, want 400", code)
	}

	// The intact transfer installs, and B's first job pays no compile.
	if code, body := putArtifact(t, tsB, view.ArtifactHash, digest, data); code != http.StatusNoContent {
		t.Fatalf("import: got %d (%s), want 204", code, body)
	}
	warm := waitJob(t, tsB, submitOK(t, tsB, server.SubmitRequest{Model: doc, Steps: 50}))
	if warm.State != server.JobDone {
		t.Fatalf("warm job on B: %s (%s)", warm.State, warm.Error)
	}
	if !warm.CacheHit {
		t.Error("job on B after artifact import still compiled")
	}
	if warm.ArtifactHash != view.ArtifactHash {
		t.Errorf("artifact hash diverged across daemons: %s vs %s", warm.ArtifactHash, view.ArtifactHash)
	}
	// And both runs computed the same result.
	if view.Result == nil || warm.Result == nil || view.Result.OutputHash != warm.Result.OutputHash {
		t.Errorf("imported binary diverged: %+v vs %+v", warm.Result, view.Result)
	}

	// The imported artifact is exportable from B (round trip).
	resp2, err := http.Get(tsB.URL + "/v1/artifacts/" + view.ArtifactHash)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get(server.DigestHeader) != digest {
		t.Errorf("re-export from B: %s digest %q", resp2.Status, resp2.Header.Get(server.DigestHeader))
	}
}

func putArtifact(t *testing.T, ts *httptest.Server, hash, digest string, data []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/artifacts/"+hash, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if digest != "" {
		req.Header.Set(server.DigestHeader, digest)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func TestArtifactEndpointRejectsUnknownAndMalformed(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1, PoolWorkers: -1})
	resp, err := http.Get(ts.URL + "/v1/artifacts/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown artifact: got %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/artifacts/..%2Fescape")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
		t.Errorf("malformed artifact key: got %d, want 400/404", resp.StatusCode)
	}
}

// TestHealthzReadinessDetail pins the /healthz readiness contract the
// coordinator and external load balancers route on: queue depth, running
// count, capacity and the draining flag.
func TestHealthzReadinessDetail(t *testing.T) {
	runner, release, _, _ := blockingRunner()
	srv, ts := newTestServer(t, server.Config{Workers: 1, QueueDepth: 7, Runner: runner, PoolWorkers: -1})
	defer release()

	id := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "HZ", "2")})
	waitState(t, ts, id, server.JobRunning)
	// A second job sits queued behind the blocked worker.
	submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "HZ2", "4")})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hv server.HealthView
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	if hv.Status != "ok" || hv.Draining {
		t.Errorf("health status: %+v", hv)
	}
	if hv.Running != 1 || hv.QueueDepth != 1 {
		t.Errorf("running/queued: %+v, want 1/1", hv)
	}
	if hv.Workers != 1 || hv.QueueCap != 7 {
		t.Errorf("capacity: %+v, want workers 1 / queueCap 7", hv)
	}
	if hv.UptimeNanos <= 0 {
		t.Errorf("uptime missing: %+v", hv)
	}
	if got := srv.Health(); got.Workers != 1 || got.QueueCap != 7 {
		t.Errorf("Server.Health(): %+v", got)
	}
	release()
}
