package server

import (
	"sort"
	"sync"
	"time"

	accmos "accmos"
	"accmos/internal/obs"
)

// phaseSamples bounds the per-phase latency reservoir: quantiles are
// computed over the most recent phaseSamples observations, so a
// long-lived daemon reports current behaviour, not its whole history.
const phaseSamples = 512

// phaseHist accumulates one pipeline phase's latency distribution.
type phaseHist struct {
	count int64
	total time.Duration
	max   time.Duration
	ring  []int64
	idx   int
}

func (h *phaseHist) add(d time.Duration) {
	h.count++
	h.total += d
	if d > h.max {
		h.max = d
	}
	if len(h.ring) < phaseSamples {
		h.ring = append(h.ring, d.Nanoseconds())
		return
	}
	h.ring[h.idx] = d.Nanoseconds()
	h.idx = (h.idx + 1) % phaseSamples
}

func (h *phaseHist) stats() PhaseStats {
	s := PhaseStats{
		Count:      h.count,
		TotalNanos: h.total.Nanoseconds(),
		MaxNanos:   h.max.Nanoseconds(),
	}
	if len(h.ring) == 0 {
		return s
	}
	sorted := append([]int64(nil), h.ring...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	q := func(p float64) int64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	s.P50Nanos, s.P90Nanos, s.P99Nanos = q(0.50), q(0.90), q(0.99)
	return s
}

// metrics aggregates the daemon's counters; independent of the Server
// mutex so /metrics never contends with the scheduler.
type metrics struct {
	mu        sync.Mutex
	submitted int64
	done      int64
	failed    int64
	canceled  int64
	rejected  int64 // 429s: work refused by admission control
	opt       OptTotals
	phases    map[string]*phaseHist
}

func newMetrics() *metrics {
	return &metrics{phases: make(map[string]*phaseHist)}
}

func (m *metrics) count(field *int64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

// recordTrace folds every span of a completed job's phase trace into the
// per-phase histograms. Nested spans are walked depth-first, so e.g. the
// "compile" span inside a traced pipeline lands in the "compile" bucket
// whatever its parent.
func (m *metrics) recordTrace(tr *obs.Tracer) {
	if tr == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var walk func(spans []*obs.Span)
	walk = func(spans []*obs.Span) {
		for _, s := range spans {
			if d := s.Duration(); d > 0 || s.EndNanos >= s.StartNanos {
				h := m.phases[s.Name]
				if h == nil {
					h = &phaseHist{}
					m.phases[s.Name] = h
				}
				h.add(d)
			}
			walk(s.Children)
		}
	}
	walk(tr.Trace().Spans)
}

// recordOpt folds one finished job's optimizer stats into the totals.
func (m *metrics) recordOpt(o *accmos.OptStats) {
	if o == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if o.Level == "O0" {
		m.opt.O0Jobs++
	} else {
		m.opt.O1Jobs++
	}
	m.opt.ActorsBefore += int64(o.ActorsBefore)
	m.opt.ActorsAfter += int64(o.ActorsAfter)
}

func (m *metrics) optTotals() OptTotals {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.opt
}

func (m *metrics) jobCounts() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return map[string]int64{
		"submitted": m.submitted,
		"done":      m.done,
		"failed":    m.failed,
		"canceled":  m.canceled,
		"rejected":  m.rejected,
	}
}

func (m *metrics) phaseStats() map[string]PhaseStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]PhaseStats, len(m.phases))
	for name, h := range m.phases {
		out[name] = h.stats()
	}
	return out
}
