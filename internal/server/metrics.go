package server

import (
	"io"
	"math"
	"time"

	accmos "accmos"
	"accmos/internal/obs"
)

// jobStates enumerates the accmosd_jobs_total label values. Every series
// is pre-created at startup so the exposed skeleton — and the JSON
// counters map — is complete and stable from the first scrape.
var jobStates = []string{"submitted", "done", "failed", "canceled", "rejected"}

// metrics is the daemon's telemetry: an obs.Registry exposed both as the
// legacy JSON MetricsView and as Prometheus text exposition. Counter and
// histogram updates are lock-cheap and independent of the Server mutex;
// live state (queue depth, warm workers, cache population) is exported
// through scrape-time gauge funcs so it can never go stale.
type metrics struct {
	reg *obs.Registry

	jobs        *obs.CounterVec   // accmosd_jobs_total{state}
	phases      *obs.HistogramVec // accmosd_phase_seconds{phase}
	optJobs     *obs.CounterVec   // accmosd_opt_jobs_total{level}
	optActors   *obs.CounterVec   // accmosd_opt_actors_total{stage}
	optFused    *obs.Counter      // accmosd_opt_fused_exprs_total
	optHoisted  *obs.Counter      // accmosd_opt_hoisted_exprs_total
	optNarrowed *obs.Counter      // accmosd_opt_narrowed_signals_total
	partJobs    *obs.CounterVec   // accmosd_partition_jobs_total{outcome}
	partParts   *obs.Counter      // accmosd_partitions_total
	partCut     *obs.Counter      // accmosd_partition_cut_signals_total
	imports     *obs.Counter      // accmosd_artifact_imports_total
}

// newMetrics builds the registry. Registration order is the exposition
// order, and families with no samples yet still print their HELP/TYPE
// header, so the scrape skeleton is golden-testable. s provides the live
// state the gauge funcs read; its cache/pool/mutex must be initialised
// before the first scrape (they are — New registers routes afterwards).
func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	m.jobs = reg.Counter("accmosd_jobs_total",
		"Jobs by lifecycle event: submitted at admission, done/failed/canceled at completion, rejected at 429 admission refusals.",
		"state")
	for _, st := range jobStates {
		m.jobs.With(st)
	}
	reg.GaugeFunc("accmosd_queue_depth", "Jobs admitted but not yet running.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queue))
	})
	reg.GaugeFunc("accmosd_running_jobs", "Jobs currently executing.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.running)
	})
	reg.GaugeFunc("accmosd_workers", "Configured concurrent job executors.", func() float64 {
		return float64(s.cfg.Workers)
	})
	reg.GaugeFunc("accmosd_draining", "1 while the daemon refuses new work and drains, 0 otherwise.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("accmosd_uptime_seconds", "Seconds since the daemon started.", func() float64 {
		return time.Since(s.start).Seconds()
	})

	m.phases = reg.Histogram("accmosd_phase_seconds",
		"Pipeline phase latency (schedule/optimize/instrument/generate/compile/run) over completed jobs.",
		nil, "phase")

	m.optJobs = reg.Counter("accmosd_opt_jobs_total",
		"Completed jobs by optimizing-middle-end level.", "level")
	m.optJobs.With("O0")
	m.optJobs.With("O1")
	m.optJobs.With("O2")
	m.optActors = reg.Counter("accmosd_opt_actors_total",
		"Scheduled actors the optimizer saw (stage=before), kept (stage=after) and emitted as step-loop statements after O2 fusion (stage=effective), summed over completed jobs.",
		"stage")
	m.optActors.With("before")
	m.optActors.With("after")
	m.optActors.With("effective")
	m.optFused = reg.Counter("accmosd_opt_fused_exprs_total",
		"Actors inlined into a consumer expression by O2 typed lowering, summed over completed jobs.").With()
	m.optHoisted = reg.Counter("accmosd_opt_hoisted_exprs_total",
		"Loop-invariant subexpressions hoisted to init-time globals by O2, summed over completed jobs.").With()
	m.optNarrowed = reg.Counter("accmosd_opt_narrowed_signals_total",
		"Signals stored at a narrower width than their semantic kind by O2, summed over completed jobs.").With()

	m.partJobs = reg.Counter("accmosd_partition_jobs_total",
		"Completed jobs that requested partitioned execution, by outcome: partitioned ran a goroutine-pipelined step loop, declined fell back to sequential.",
		"outcome")
	m.partJobs.With("partitioned")
	m.partJobs.With("declined")
	m.partParts = reg.Counter("accmosd_partitions_total",
		"Goroutine partitions spanned by partitioned jobs, summed over completed jobs.").With()
	m.partCut = reg.Counter("accmosd_partition_cut_signals_total",
		"Cross-partition signals shipped per step by partitioned jobs, summed over completed jobs.").With()

	reg.GaugeFunc("accmosd_cache_entries", "Compiled binaries resident in the build cache.", func() float64 {
		return float64(s.cache.Stats().Entries)
	})
	reg.CounterFunc("accmosd_cache_hits_total", "Build-cache hits (jobs that paid no compile).", func() float64 {
		return float64(s.cache.Stats().Hits)
	})
	reg.CounterFunc("accmosd_cache_misses_total", "Build-cache misses (jobs that compiled).", func() float64 {
		return float64(s.cache.Stats().Misses)
	})
	reg.CounterFunc("accmosd_cache_evictions_total", "Build-cache evictions.", func() float64 {
		return float64(s.cache.Stats().Evictions)
	})

	m.imports = reg.Counter("accmosd_artifact_imports_total",
		"Compiled binaries installed into the build cache by fleet artifact transfer (PUT /v1/artifacts).").With()

	reg.CounterFunc("accmosd_events_dropped_total",
		"Progress snapshots dropped across all job event streams because a subscriber fell behind.",
		func() float64 { return float64(s.eventsDropped()) })

	if s.pool != nil {
		reg.CounterFunc("accmosd_pool_spawns_total", "Serve-mode worker processes started.", func() float64 {
			return float64(s.pool.Stats().Spawns)
		})
		reg.CounterFunc("accmosd_pool_reuses_total", "Runs served by an already-warm worker.", func() float64 {
			return float64(s.pool.Stats().Reuses)
		})
		reg.CounterFunc("accmosd_pool_respawns_total", "Workers killed after a deadline or protocol error.", func() float64 {
			return float64(s.pool.Stats().Respawns)
		})
		reg.GaugeFunc("accmosd_pool_warm_workers", "Worker processes currently parked idle.", func() float64 {
			return float64(s.pool.Stats().Warm)
		})
		reg.GaugeFunc("accmosd_pool_artifacts", "Distinct compiled artifacts with a worker set.", func() float64 {
			return float64(s.pool.Stats().Artifacts)
		})
	}
	return m
}

// countJob bumps one accmosd_jobs_total series.
func (m *metrics) countJob(state string) { m.jobs.With(state).Inc() }

// countArtifactImport records one fleet artifact transfer landing here.
func (m *metrics) countArtifactImport() { m.imports.Inc() }

// writePrometheus renders the registry in the text exposition format.
func (m *metrics) writePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// recordTrace folds every span of a completed job's phase trace into the
// per-phase histograms. Nested spans are walked depth-first, so e.g. the
// "compile" span inside a traced pipeline lands in the "compile" bucket
// whatever its parent.
func (m *metrics) recordTrace(tr *accmos.Tracer) {
	if tr == nil {
		return
	}
	var walk func(spans []*obs.Span)
	walk = func(spans []*obs.Span) {
		for _, s := range spans {
			if d := s.Duration(); d > 0 || s.EndNanos >= s.StartNanos {
				m.phases.With(s.Name).Observe(d.Seconds())
			}
			walk(s.Children)
		}
	}
	walk(tr.Trace().Spans)
}

// recordOpt folds one finished job's optimizer stats into the totals.
func (m *metrics) recordOpt(o *accmos.OptStats) {
	if o == nil {
		return
	}
	switch o.Level {
	case "O0":
		m.optJobs.With("O0").Inc()
	case "O2":
		m.optJobs.With("O2").Inc()
	default:
		m.optJobs.With("O1").Inc()
	}
	m.optActors.With("before").Add(int64(o.ActorsBefore))
	m.optActors.With("after").Add(int64(o.ActorsAfter))
	m.optActors.With("effective").Add(int64(o.EffectiveActors))
	m.optFused.Add(int64(o.FusedExprs))
	m.optHoisted.Add(int64(o.HoistedExprs))
	m.optNarrowed.Add(int64(o.NarrowedSignals))
}

// recordPart folds one finished job's partitioning decision into the
// totals. Jobs that never requested partitioning carry no PartStats and
// count nowhere.
func (m *metrics) recordPart(p *accmos.PartStats) {
	if p == nil {
		return
	}
	if p.Usable >= 2 {
		m.partJobs.With("partitioned").Inc()
		m.partParts.Add(int64(p.Usable))
		m.partCut.Add(int64(p.CutEdges))
		return
	}
	m.partJobs.With("declined").Inc()
}

func (m *metrics) partTotals() PartTotals {
	return PartTotals{
		PartitionedJobs: m.partJobs.With("partitioned").Value(),
		DeclinedJobs:    m.partJobs.With("declined").Value(),
		Partitions:      m.partParts.Value(),
		CutSignals:      m.partCut.Value(),
	}
}

func (m *metrics) optTotals() OptTotals {
	return OptTotals{
		O0Jobs:          m.optJobs.With("O0").Value(),
		O1Jobs:          m.optJobs.With("O1").Value(),
		O2Jobs:          m.optJobs.With("O2").Value(),
		ActorsBefore:    m.optActors.With("before").Value(),
		ActorsAfter:     m.optActors.With("after").Value(),
		ActorsEffective: m.optActors.With("effective").Value(),
		FusedExprs:      m.optFused.Value(),
		HoistedExprs:    m.optHoisted.Value(),
		NarrowedSignals: m.optNarrowed.Value(),
	}
}

func (m *metrics) jobCounts() map[string]int64 {
	out := make(map[string]int64, len(jobStates))
	for _, st := range jobStates {
		out[st] = m.jobs.With(st).Value()
	}
	return out
}

// secondsToNanos converts a histogram's float seconds back to the JSON
// view's integer nanoseconds.
func secondsToNanos(s float64) int64 { return int64(math.Round(s * 1e9)) }

func (m *metrics) phaseStats() map[string]PhaseStats {
	series := m.phases.Series()
	out := make(map[string]PhaseStats, len(series))
	for name, st := range series {
		out[name] = PhaseStats{
			Count:      st.Count,
			TotalNanos: secondsToNanos(st.Sum),
			MaxNanos:   secondsToNanos(st.Max),
			P50Nanos:   secondsToNanos(st.P50),
			P90Nanos:   secondsToNanos(st.P90),
			P99Nanos:   secondsToNanos(st.P99),
		}
	}
	return out
}
