package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	accmos "accmos"
	"accmos/internal/lint"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/server"
	"accmos/internal/slx"
	"accmos/internal/types"
)

// slxDoc serializes a tiny Inport -> Gain -> Outport model to the SLX
// wire form a client would submit. gain varies the document (and so the
// build-cache key) between tests.
func slxDoc(t *testing.T, name, gain string) string {
	t.Helper()
	m := model.NewBuilder(name).
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", gain)).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	var buf bytes.Buffer
	if err := slx.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// newTestServer starts a server (draining it at cleanup) plus an httptest
// front end.
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, req server.SubmitRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	return resp, payload
}

func submitOK(t *testing.T, ts *httptest.Server, req server.SubmitRequest) string {
	t.Helper()
	resp, payload := submit(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, payload)
	}
	var ack server.SubmitResponse
	if err := json.Unmarshal(payload, &ack); err != nil {
		t.Fatal(err)
	}
	return ack.ID
}

func getJob(t *testing.T, ts *httptest.Server, id string) server.JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: %s: %s", id, resp.Status, payload)
	}
	var v server.JobView
	if err := json.Unmarshal(payload, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitJob(t *testing.T, ts *httptest.Server, id string) server.JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v := getJob(t, ts, id)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitState(t *testing.T, ts *httptest.Server, id string, want server.JobState) server.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, ts, id)
		if v.State == want {
			return v
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getMetrics(t *testing.T, ts *httptest.Server) server.MetricsView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mv server.MetricsView
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	return mv
}

// blockingRunner returns a stub runner that holds every job until release
// is closed (honouring job cancellation), recording execution order.
func blockingRunner() (server.Runner, func(), *[]string, *sync.Mutex) {
	release := make(chan struct{})
	var (
		once  sync.Once
		mu    sync.Mutex
		order []string
	)
	runner := func(ctx context.Context, spec server.JobSpec, tr *accmos.Tracer, progress func(obs.Snapshot)) (*server.Outcome, error) {
		mu.Lock()
		order = append(order, spec.ModelName)
		mu.Unlock()
		select {
		case <-release:
			return &server.Outcome{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return runner, func() { once.Do(func() { close(release) }) }, &order, &mu
}

// TestSubmitPollCacheHit is the acceptance path: the same model submitted
// twice through the REAL pipeline produces exactly one compile — the
// second job reports a cache hit, its compile phase collapses, and the
// daemon's /metrics hit counter moves.
func TestSubmitPollCacheHit(t *testing.T) {
	cache := accmos.NewBuildCache(t.TempDir())
	defer cache.Remove()
	_, ts := newTestServer(t, server.Config{Workers: 1, Cache: cache})

	req := server.SubmitRequest{Model: slxDoc(t, "CHT", "2"), Steps: 50, Coverage: true}
	cold := waitJob(t, ts, submitOK(t, ts, req))
	if cold.State != server.JobDone {
		t.Fatalf("cold job: %s (%s)", cold.State, cold.Error)
	}
	if cold.CacheHit {
		t.Error("first submission cannot be a cache hit")
	}
	if cold.Result == nil || cold.Result.Steps != 50 {
		t.Fatalf("cold job result: %+v", cold.Result)
	}
	if cold.Coverage == nil {
		t.Error("coverage requested but absent")
	}
	coldCompile := cold.Phases["compile"]
	if coldCompile <= 0 {
		t.Fatalf("cold job recorded no compile phase: %v", cold.Phases)
	}

	warm := waitJob(t, ts, submitOK(t, ts, req))
	if warm.State != server.JobDone {
		t.Fatalf("warm job: %s (%s)", warm.State, warm.Error)
	}
	if !warm.CacheHit {
		t.Error("identical second submission missed the cache")
	}
	if warmCompile := warm.Phases["compile"]; warmCompile >= coldCompile/2 {
		t.Errorf("warm compile phase %dns not amortized (cold %dns)", warmCompile, coldCompile)
	}

	mv := getMetrics(t, ts)
	if mv.Cache.Hits < 1 || mv.Cache.Misses < 1 {
		t.Errorf("cache counters: %+v, want >=1 hit and >=1 miss", mv.Cache)
	}
	if mv.Jobs["done"] != 2 {
		t.Errorf("job counters: %+v, want done=2", mv.Jobs)
	}
	if _, ok := mv.Phases["compile"]; !ok {
		t.Errorf("metrics missing compile phase histogram: %v", mv.Phases)
	}
}

func TestQueueFullReturns429WithRetryAfter(t *testing.T) {
	runner, release, _, _ := blockingRunner()
	defer release()
	_, ts := newTestServer(t, server.Config{
		Workers: 1, QueueDepth: 2, RetryAfter: 3 * time.Second, Runner: runner,
	})

	doc := slxDoc(t, "QF", "2")
	first := submitOK(t, ts, server.SubmitRequest{Model: doc})
	waitState(t, ts, first, server.JobRunning) // occupies the only worker
	q1 := submitOK(t, ts, server.SubmitRequest{Model: doc})
	q2 := submitOK(t, ts, server.SubmitRequest{Model: doc})

	resp, payload := submit(t, ts, server.SubmitRequest{Model: doc})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: %s: %s", resp.Status, payload)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After header %q, want %q", got, "3")
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(payload, &er); err != nil {
		t.Fatal(err)
	}
	if er.RetryAfterSec != 3 || !strings.Contains(er.Error, "queue is full") {
		t.Errorf("429 body: %+v", er)
	}

	release()
	for _, id := range []string{first, q1, q2} {
		if v := waitJob(t, ts, id); v.State != server.JobDone {
			t.Errorf("job %s after release: %s (%s)", id, v.State, v.Error)
		}
	}
	if mv := getMetrics(t, ts); mv.Jobs["rejected"] != 1 {
		t.Errorf("rejected counter: %+v", mv.Jobs)
	}
}

func TestPriorityOrdersQueuedJobs(t *testing.T) {
	runner, release, order, mu := blockingRunner()
	defer release()
	_, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})

	blocker := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "BLK", "2")})
	waitState(t, ts, blocker, server.JobRunning)
	low := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "LOW", "2"), Priority: 0})
	high := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "HIGH", "2"), Priority: 5})

	release()
	waitJob(t, ts, low)
	waitJob(t, ts, high)

	mu.Lock()
	got := append([]string(nil), *order...)
	mu.Unlock()
	want := []string{"BLK", "HIGH", "LOW"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("execution order %v, want %v", got, want)
	}
}

func TestCancelQueuedAndRunningJobs(t *testing.T) {
	runner, release, _, _ := blockingRunner()
	defer release()
	_, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})

	doc := slxDoc(t, "CAN", "2")
	running := submitOK(t, ts, server.SubmitRequest{Model: doc})
	waitState(t, ts, running, server.JobRunning)
	queued := submitOK(t, ts, server.SubmitRequest{Model: doc})

	del := func(id string) server.JobView {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: %s", id, resp.Status)
		}
		var v server.JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	if v := del(queued); v.State != server.JobCanceled {
		t.Errorf("queued job after DELETE: %s, want canceled immediately", v.State)
	}
	del(running) // running: cancellation is asynchronous
	if v := waitJob(t, ts, running); v.State != server.JobCanceled {
		t.Errorf("running job after DELETE: %s (%s)", v.State, v.Error)
	}
	if mv := getMetrics(t, ts); mv.Jobs["canceled"] != 2 {
		t.Errorf("canceled counter: %+v", mv.Jobs)
	}
}

func TestEventsStreamNDJSON(t *testing.T) {
	runner := func(ctx context.Context, spec server.JobSpec, tr *accmos.Tracer, progress func(obs.Snapshot)) (*server.Outcome, error) {
		for i := int64(1); i <= 3; i++ {
			progress(obs.Snapshot{Model: spec.ModelName, Steps: i * 10})
		}
		return &server.Outcome{}, nil
	}
	_, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})

	id := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "EV", "2")})
	waitJob(t, ts, id)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}

	var (
		beats []obs.Snapshot
		final *server.JobView
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if s, ok := obs.ParseHeartbeat(line); ok {
			beats = append(beats, s)
			continue
		}
		var rec struct {
			Job *server.JobView `json:"accmosJob"`
		}
		if err := json.Unmarshal(line, &rec); err != nil || rec.Job == nil {
			t.Fatalf("unparseable NDJSON line: %s (%v)", line, err)
		}
		final = rec.Job
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(beats) != 3 {
		t.Errorf("got %d heartbeats, want 3 (replayed)", len(beats))
	}
	for i, b := range beats {
		if want := int64(i+1) * 10; b.Steps != want {
			t.Errorf("heartbeat %d: steps %d, want %d", i, b.Steps, want)
		}
	}
	if final == nil {
		t.Fatal("stream ended without a final accmosJob record")
	}
	if final.ID != id || final.State != server.JobDone {
		t.Errorf("final record: %+v", final)
	}
}

func TestDrainCompletesInFlightAndRefusesNew(t *testing.T) {
	runner, release, _, _ := blockingRunner()
	defer release()
	srv, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})

	doc := slxDoc(t, "DR", "2")
	running := submitOK(t, ts, server.SubmitRequest{Model: doc})
	waitState(t, ts, running, server.JobRunning)
	queued := submitOK(t, ts, server.SubmitRequest{Model: doc})

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// The drain flag flips under the server mutex; poll until visible.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp, payload := submit(t, ts, server.SubmitRequest{Model: doc}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: %s: %s", resp.Status, payload)
	}

	release()
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Admitted work finished rather than being dropped.
	if v := getJob(t, ts, running); v.State != server.JobDone {
		t.Errorf("running job after drain: %s (%s)", v.State, v.Error)
	}
	if v := getJob(t, ts, queued); v.State != server.JobDone {
		t.Errorf("queued job after drain: %s (%s)", v.State, v.Error)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	runner, release, _, _ := blockingRunner()
	defer release() // never released before the deadline
	srv, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})

	id := submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "STUCK", "2")})
	waitState(t, ts, id, server.JobRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain past deadline: %v, want DeadlineExceeded", err)
	}
	if v := getJob(t, ts, id); v.State != server.JobCanceled {
		t.Errorf("straggler after bounded drain: %s", v.State)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})

	expect := func(status int, body []byte, wantCode int, wantSub string) {
		t.Helper()
		if status != wantCode {
			t.Errorf("status %d, want %d (%s)", status, wantCode, body)
		}
		if !strings.Contains(string(body), wantSub) {
			t.Errorf("body %s does not mention %q", body, wantSub)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	expect(resp.StatusCode, payload, http.StatusBadRequest, "decoding request")

	r2, p2 := submit(t, ts, server.SubmitRequest{})
	expect(r2.StatusCode, p2, http.StatusBadRequest, "no model document")

	r3, p3 := submit(t, ts, server.SubmitRequest{Model: "<bogus"})
	expect(r3.StatusCode, p3, http.StatusBadRequest, "parsing model")

	// Unknown job ids.
	r4, err := http.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r4.Body)
	r4.Body.Close()
	if r4.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job GET: %d", r4.StatusCode)
	}
}

// TestSubmitLintRejection proves a model lint marks unsafe never reaches
// codegen: the daemon answers 400 with the blocking findings.
func TestSubmitLintRejection(t *testing.T) {
	_, ts := newTestServer(t, server.Config{Workers: 1})

	m := model.NewBuilder("WIDE").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"), model.WithOutWidth(lint.MaxSignalWidth+1)).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	var buf bytes.Buffer
	if err := slx.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}

	resp, payload := submit(t, ts, server.SubmitRequest{Model: buf.String()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lint-blocked model: %s: %s", resp.Status, payload)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(payload, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "failed lint") {
		t.Errorf("error %q does not mention lint", er.Error)
	}
	if len(er.Lint) == 0 {
		t.Fatal("rejection carries no lint findings")
	}
	for _, l := range er.Lint {
		if l.Severity != string(lint.Error) {
			t.Errorf("blocking finding with severity %q: %+v", l.Severity, l)
		}
		if !strings.Contains(l.Message, "exceeds the supported maximum") {
			t.Errorf("unexpected blocking finding: %+v", l)
		}
	}
}

// TestFailedJobReportsError drives a stub runner failure through the job
// record.
func TestFailedJobReportsError(t *testing.T) {
	runner := func(ctx context.Context, spec server.JobSpec, tr *accmos.Tracer, progress func(obs.Snapshot)) (*server.Outcome, error) {
		return nil, fmt.Errorf("simulated backend failure")
	}
	_, ts := newTestServer(t, server.Config{Workers: 1, Runner: runner})

	v := waitJob(t, ts, submitOK(t, ts, server.SubmitRequest{Model: slxDoc(t, "FAIL", "2")}))
	if v.State != server.JobFailed {
		t.Fatalf("state %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "simulated backend failure") {
		t.Errorf("job error %q", v.Error)
	}
	if mv := getMetrics(t, ts); mv.Jobs["failed"] != 1 {
		t.Errorf("failed counter: %+v", mv.Jobs)
	}
}
