package server

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	accmos "accmos"
	"accmos/internal/lint"
	"accmos/internal/obs"
)

// Config shapes one daemon instance.
type Config struct {
	// Workers is the number of concurrent job executors (default
	// GOMAXPROCS). Each running job may itself spawn a generated binary,
	// so this is the daemon's simulation concurrency.
	Workers int
	// QueueDepth bounds the number of ADMITTED-but-not-running jobs;
	// beyond it, submissions get 429 + Retry-After instead of unbounded
	// memory growth (default 64).
	QueueDepth int
	// CacheEntries bounds the shared build cache (default 128; <0 leaves
	// it unbounded). Ignored when Cache is supplied.
	CacheEntries int
	// Cache overrides the daemon's private build cache, e.g. to share
	// one across embedded servers in tests.
	Cache *accmos.BuildCache
	// RetryAfter is the hint returned with 429s (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds a submission body (default 8 MiB).
	MaxBodyBytes int64
	// JobTimeout caps every job's execution; a request asking for more
	// (or for none) is clamped to it. Zero = no cap.
	JobTimeout time.Duration
	// PoolWorkers bounds the warm serve-mode processes the daemon keeps
	// per compiled artifact, shared across jobs — the process-startup
	// analogue of the build cache (default 2; < 0 disables the pool and
	// spawns one process per run).
	PoolWorkers int
	// DefaultOptLevel is the optimizing-middle-end level applied to
	// submissions that do not choose one (zero value = the facade
	// default, O1).
	DefaultOptLevel accmos.OptLevel

	// DefaultPartitions is the partition request applied to submissions
	// that do not set partitions themselves (0 = sequential, -1 = auto).
	DefaultPartitions int
	// RetainJobs bounds how many finished job records stay queryable
	// (default 4096, oldest evicted first).
	RetainJobs int
	// Runner executes admitted jobs (default: PipelineRunner over the
	// daemon's cache). A test seam and a hook for remote backends.
	Runner Runner
	// Logf receives operational log lines (default: discarded).
	Logf func(format string, args ...interface{})
	// Logger receives structured operational logs; every per-job record
	// carries a "corr" attribute equal to the job ID, joinable with the
	// job's trace spans, heartbeats and debug bundle (default:
	// discarded).
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 128
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.PoolWorkers == 0 {
		c.PoolWorkers = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// defaultHeartbeat is the events-stream snapshot interval when a
// submission does not choose one.
const defaultHeartbeat = 250 * time.Millisecond

// Server is one accmosd instance: job store, scheduler and HTTP surface.
// Create with New, serve its Handler, stop with Drain.
type Server struct {
	cfg   Config
	cache *accmos.BuildCache
	pool  *accmos.WorkerPool // nil when PoolWorkers < 0
	mux   *http.ServeMux
	start time.Time

	mu        sync.Mutex
	cond      *sync.Cond
	queue     jobHeap
	jobs      map[string]*job
	doneOrder []string // terminal job ids, oldest first (retention)
	seq       int64
	running   int
	draining  bool
	// evictedDrops accumulates the dropped-snapshot totals of evicted
	// jobs' fanouts, so accmosd_events_dropped_total stays monotonic
	// across retention.
	evictedDrops int64

	wg      sync.WaitGroup
	metrics *metrics
}

// eventsDropped sums dropped progress snapshots across every retained
// job's event stream plus the evicted remainder — a lifetime total.
func (s *Server) eventsDropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := s.evictedDrops
	for _, j := range s.jobs {
		total += j.fanout.Stats().DroppedTotal
	}
	return total
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	cache := cfg.Cache
	if cache == nil {
		cache = accmos.NewBuildCache("")
		if cfg.CacheEntries > 0 {
			cache.SetLimit(cfg.CacheEntries)
		}
	}
	var pool *accmos.WorkerPool
	if cfg.PoolWorkers > 0 {
		pool = accmos.NewWorkerPool(cfg.PoolWorkers)
	}
	if cfg.Runner == nil {
		cfg.Runner = PipelineRunner(cache, pool)
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		pool:  pool,
		jobs:  make(map[string]*job),
		start: time.Now(),
	}
	s.metrics = newMetrics(s)
	s.cond = sync.NewCond(&s.mu)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/debug", s.handleDebug)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/artifacts/{hash}", s.handleArtifactGet)
	s.mux.HandleFunc("PUT /v1/artifacts/{hash}", s.handleArtifactPut)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the daemon's build cache (read-only use: stats).
func (s *Server) Cache() *accmos.BuildCache { return s.cache }

// Pool exposes the daemon's warm worker pool (nil when disabled;
// read-only use: stats).
func (s *Server) Pool() *accmos.WorkerPool { return s.pool }

// Drain gracefully stops the scheduler: new submissions are refused with
// 503, already-admitted jobs (queued and running) are completed, and the
// call returns when the pool is idle. If ctx expires first, every
// remaining job is canceled, the pool is awaited, and the context error
// is returned — bounded shutdown either way.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	queued, running := len(s.queue), s.running
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cfg.Logger.Info("draining", "queued", queued, "running", running)

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	// Once the executors are idle no job can reach the pool again, so
	// its warm child processes are safe to kill.
	closePool := func() {
		if s.pool != nil {
			s.pool.Close()
		}
	}
	select {
	case <-idle:
		closePool()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.queue {
			j.cancelRequested = true
		}
		for _, j := range s.jobs {
			if j.state == JobRunning && j.cancelRun != nil {
				j.cancelRequested = true
				j.cancelRun()
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		<-idle
		closePool()
		return ctx.Err()
	}
}

// worker pops queued jobs until the server drains dry.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return // draining and drained
		}
		j := heap.Pop(&s.queue).(*job)
		if j.state != JobQueued { // canceled while queued
			s.mu.Unlock()
			continue
		}
		if j.cancelRequested {
			s.finishLocked(j, JobCanceled, "canceled while queued", nil)
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(context.Background())
		j.state = JobRunning
		j.started = time.Now()
		j.cancelRun = cancel
		s.running++
		s.mu.Unlock()

		s.execute(j, ctx, cancel)
	}
}

func (s *Server) execute(j *job, ctx context.Context, cancel context.CancelFunc) {
	defer cancel()
	tr := accmos.NewTracer()
	tr.SetCorr(j.id)
	// Stamp the correlation ID on every snapshot crossing the fanout:
	// the pipeline runner stamps heartbeats itself, but stub runners (and
	// future remote backends) publish raw snapshots.
	progress := func(snap obs.Snapshot) {
		if snap.Corr == "" {
			snap.Corr = j.id
		}
		j.fanout.Publish(snap)
	}
	outcome, err := s.cfg.Runner(ctx, j.spec, tr, progress)

	s.mu.Lock()
	s.running--
	j.runErr = err
	switch {
	case err == nil:
		j.outcome = outcome
		if outcome != nil {
			j.cacheHit = outcome.CacheHit
		}
		s.finishLocked(j, JobDone, "", tr)
	case j.cancelRequested || errors.Is(err, context.Canceled) || ctx.Err() != nil:
		s.finishLocked(j, JobCanceled, err.Error(), tr)
	default:
		s.finishLocked(j, JobFailed, err.Error(), tr)
	}
	s.mu.Unlock()
}

// finishLocked moves a job to a terminal state: stamps times, folds the
// trace into the metrics histograms and the job's phase map, closes the
// events stream, and enforces finished-job retention. Caller holds s.mu.
func (s *Server) finishLocked(j *job, state JobState, errMsg string, tr *accmos.Tracer) {
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancelRun = nil
	if tr != nil {
		s.metrics.recordTrace(tr)
		j.phases = phaseTotals(tr)
	}
	if j.outcome != nil {
		s.metrics.recordOpt(j.outcome.Opt)
		s.metrics.recordPart(j.outcome.Part)
	}
	switch state {
	case JobDone:
		s.metrics.countJob("done")
	case JobFailed:
		s.metrics.countJob("failed")
	case JobCanceled:
		s.metrics.countJob("canceled")
	}
	if state == JobFailed || state == JobCanceled {
		s.captureDebugLocked(j, tr)
	}
	j.fanout.Close()
	close(j.done)
	s.cfg.Logf("accmosd: job %s %s (%s)", j.id, state, j.spec.ModelName)
	attrs := []interface{}{
		"corr", j.id, "state", string(state), "model", j.spec.ModelName,
	}
	if !j.started.IsZero() {
		attrs = append(attrs,
			"queueMs", j.started.Sub(j.submitted).Milliseconds(),
			"runMs", j.finished.Sub(j.started).Milliseconds())
	}
	if errMsg != "" {
		reason := "error"
		if d := j.debug; d != nil {
			reason = d.Reason
		}
		attrs = append(attrs, "reason", reason, "err", firstLine(errMsg))
		s.cfg.Logger.Error("job finished", attrs...)
	} else {
		s.cfg.Logger.Info("job finished", attrs...)
	}

	s.doneOrder = append(s.doneOrder, j.id)
	for len(s.doneOrder) > s.cfg.RetainJobs {
		if old := s.jobs[s.doneOrder[0]]; old != nil {
			s.evictedDrops += old.fanout.Stats().DroppedTotal
		}
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
	s.cond.Broadcast()
}

// debugHeartbeats bounds the snapshots a debug bundle keeps when the
// failure carried no structured run error (stub runners, cancellations):
// the tail of the fanout's replay history.
const debugHeartbeats = 8

// captureDebugLocked records the failure forensics on the job: the
// structured run error's evidence when the harness produced one, the
// event stream's trailing heartbeats otherwise, plus the trace and the
// daemon state around the failure. Caller holds s.mu; everything stored
// is bounded.
func (s *Server) captureDebugLocked(j *job, tr *accmos.Tracer) {
	b := &DebugBundle{
		ID:          j.id,
		Corr:        j.id,
		State:       j.state,
		Model:       j.spec.ModelName,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
		ExitCode:    -1,
		Phases:      j.phases,
		QueueDepth:  len(s.queue),
		Running:     s.running,
		Cache:       cacheView(s.cache.Stats()),
		WorkerPool:  s.poolView(),
	}
	if !j.started.IsZero() {
		t := j.started
		b.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		b.FinishedAt = &t
	}
	var re *accmos.RunError
	if errors.As(j.runErr, &re) {
		b.Reason = re.Reason
		b.ExitCode = re.ExitCode
		b.TimeoutMS = re.Timeout.Milliseconds()
		b.Bin = re.Bin
		b.StderrTail = re.StderrTail
		b.Heartbeats = re.Heartbeats
	} else if j.state == JobCanceled {
		b.Reason = "canceled"
	} else {
		b.Reason = "error"
	}
	if len(b.Heartbeats) == 0 {
		hist := j.fanout.History()
		if len(hist) > debugHeartbeats {
			hist = hist[len(hist)-debugHeartbeats:]
		}
		b.Heartbeats = hist
	}
	if tr != nil {
		b.Trace = tr.Trace()
	}
	j.debug = b
}

// firstLine truncates a multi-line error message for a log attribute (the
// full text stays on the job record and its debug bundle).
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// phaseTotals flattens a trace into per-phase total nanoseconds.
func phaseTotals(tr *accmos.Tracer) map[string]int64 {
	out := make(map[string]int64)
	var walk func(spans []*obs.Span)
	walk = func(spans []*obs.Span) {
		for _, sp := range spans {
			out[sp.Name] += sp.Duration().Nanoseconds()
			walk(sp.Children)
		}
	}
	walk(tr.Trace().Spans)
	return out
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		return
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	spec, findings, err := SpecFromRequest(req, s.cfg.DefaultOptLevel, s.cfg.DefaultPartitions, s.cfg.JobTimeout)
	if err != nil {
		var adm *AdmissionError
		if errors.As(err, &adm) && len(adm.Lint) > 0 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: adm.Msg, Lint: adm.Lint})
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission control: a draining daemon refuses outright; a full
	// queue sheds load with 429 + Retry-After instead of accepting
	// unbounded work.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.metrics.countJob("rejected")
		sec := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
		if sec < 1 {
			sec = 1
		}
		s.cfg.Logger.Warn("submission rejected", "model", spec.ModelName, "queueDepth", s.cfg.QueueDepth)
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:         fmt.Sprintf("queue is full (%d jobs)", s.cfg.QueueDepth),
			RetryAfterSec: sec,
		})
		return
	}
	s.seq++
	id := fmt.Sprintf("j-%06d", s.seq)
	spec.Corr = id // the job ID doubles as the run's correlation ID
	j := &job{
		id:        id,
		seq:       s.seq,
		priority:  req.Priority,
		spec:      spec,
		lint:      lintLines(findings),
		state:     JobQueued,
		submitted: time.Now(),
		fanout:    obs.NewFanout(0),
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	heap.Push(&s.queue, j)
	depth := len(s.queue)
	s.cond.Signal()
	s.mu.Unlock()

	s.metrics.countJob("submitted")
	s.cfg.Logf("accmosd: job %s queued (%s, depth %d)", j.id, spec.ModelName, depth)
	s.cfg.Logger.Info("job queued",
		"corr", j.id, "model", spec.ModelName, "priority", req.Priority, "queueDepth", depth)
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.id, State: JobQueued, QueueDepth: depth})
}

func lintLines(fs []lint.Finding) []LintLine {
	out := make([]LintLine, len(fs))
	for i, f := range fs {
		out[i] = LintLine{Severity: string(f.Severity), Rule: f.Rule, Actor: f.Actor, Message: f.Message}
	}
	return out
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	v := j.view()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	switch j.state {
	case JobQueued:
		s.finishLocked(j, JobCanceled, "canceled while queued", nil)
	case JobRunning:
		j.cancelRequested = true
		if j.cancelRun != nil {
			j.cancelRun()
		}
	}
	v := j.view()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

// handleEvents streams the job's live progress as NDJSON: one heartbeat
// line per snapshot (the same framing generated binaries emit on
// stderr), terminated by one {"accmosJob": ...} record carrying the
// job's final state. A client attaching mid-run first receives the
// replayed history; a client on a finished job receives the history and
// the final record immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush() // commit headers before the first (possibly delayed) snapshot

	snaps, cancel := j.fanout.Subscribe()
	defer cancel()
	for {
		select {
		case snap, ok := <-snaps:
			if !ok { // job reached a terminal state
				s.mu.Lock()
				v := j.view()
				s.mu.Unlock()
				final, _ := json.Marshal(struct {
					Job JobView `json:"accmosJob"`
				}{v})
				w.Write(final)
				w.Write([]byte("\n"))
				flush()
				return
			}
			w.Write(obs.EncodeHeartbeat(snap))
			w.Write([]byte("\n"))
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Health snapshots the daemon's readiness detail — the same view
// /healthz serves. The fleet agent embeds it in heartbeats so the
// coordinator's routing decisions (load-aware spill, eviction) work from
// live queue depth, running count and the draining flag.
func (s *Server) Health() HealthView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := HealthView{
		Status:      "ok",
		QueueDepth:  len(s.queue),
		Running:     s.running,
		Draining:    s.draining,
		Workers:     s.cfg.Workers,
		QueueCap:    s.cfg.QueueDepth,
		UptimeNanos: time.Since(s.start).Nanoseconds(),
	}
	if s.draining {
		v.Status = "draining"
	}
	return v
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	v := s.Health()
	if v.Draining {
		writeJSON(w, http.StatusServiceUnavailable, v)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// wantsPrometheus decides the /metrics rendering: ?format=prom (or
// =prometheus) forces the text exposition, ?format=json forces JSON, and
// with no format parameter the Accept header decides — a Prometheus
// scraper advertises text/plain or application/openmetrics-text, while
// curl's */* (and the existing JSON consumers) keep the JSON default.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		s.metrics.writePrometheus(w)
		return
	}
	s.mu.Lock()
	depth := len(s.queue)
	running := s.running
	draining := s.draining
	s.mu.Unlock()
	view := MetricsView{
		QueueDepth:    depth,
		Running:       running,
		Workers:       s.cfg.Workers,
		Draining:      draining,
		UptimeNanos:   time.Since(s.start).Nanoseconds(),
		Jobs:          s.metrics.jobCounts(),
		EventsDropped: s.eventsDropped(),
		Cache:         cacheView(s.cache.Stats()),
		WorkerPool:    s.poolView(),
		Opt:           s.metrics.optTotals(),
		Part:          s.metrics.partTotals(),
		Phases:        s.metrics.phaseStats(),
	}
	writeJSON(w, http.StatusOK, view)
}

// cacheView shapes build-cache stats for the wire.
func cacheView(cs accmos.CacheStats) CacheView {
	return CacheView{
		Entries:   cs.Entries,
		Limit:     cs.Limit,
		Hits:      cs.Hits,
		Misses:    cs.Misses,
		Evictions: cs.Evictions,
		HitRate:   cs.HitRate(),
	}
}

// poolView shapes worker-pool stats for the wire (nil when disabled).
func (s *Server) poolView() *WorkerPoolView {
	if s.pool == nil {
		return nil
	}
	ws := s.pool.Stats()
	return &WorkerPoolView{
		PerArtifact: s.pool.PerArtifact(),
		Spawns:      ws.Spawns,
		Reuses:      ws.Reuses,
		Respawns:    ws.Respawns,
		Artifacts:   ws.Artifacts,
		Warm:        ws.Warm,
	}
}

// handleDebug serves a failed or canceled job's forensic bundle. A job
// that finished cleanly (or is still pending) has none — that is a 404
// with a state-specific message, not an error in the daemon.
func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	bundle := j.debug
	state := j.state
	s.mu.Unlock()
	if bundle == nil {
		writeError(w, http.StatusNotFound, "job %s has no debug bundle (state %s; bundles are captured for failed and canceled jobs)", j.id, state)
		return
	}
	writeJSON(w, http.StatusOK, bundle)
}
