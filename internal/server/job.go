package server

import (
	"time"

	accmos "accmos"
	"accmos/internal/coverage"
	"accmos/internal/obs"
	"accmos/internal/simresult"
)

// JobSpec is the validated, parsed form of a submission — everything the
// runner needs, with the model already decoded and admission-checked.
type JobSpec struct {
	ModelName string
	Model     *accmos.Model

	// Corr is the job's correlation ID (= the job ID). The runner
	// threads it into the facade so trace spans, heartbeats and run
	// errors all carry it.
	Corr string

	Steps      int64
	Budget     time.Duration
	Timeout    time.Duration
	Coverage   bool
	Diagnose   bool
	OptLevel   accmos.OptLevel
	Partitions int
	Seed       uint64
	Lo, Hi     float64
	SweepSeeds []uint64
	// DisableBatch forces sweep suites through per-run dispatch instead
	// of the lane-vectorized batch entry point.
	DisableBatch bool
	Heartbeat    time.Duration
}

// Outcome is what a runner returns for a completed job.
type Outcome struct {
	// Results is the single-run outcome (nil for sweep jobs).
	Results  *simresult.Results
	Coverage *coverage.Report
	// CacheHit reports the binary came from the build cache.
	CacheHit bool
	// WorkerReuse reports the run was served by an already-warm
	// serve-mode worker (single-run jobs through a pool).
	WorkerReuse bool
	// SweepRuns and Merged describe a sweep job's outcome; Batched
	// reports its suites ran through the lane-vectorized entry point.
	SweepRuns int
	Batched   bool
	Merged    *coverage.Report
	// Opt reports what the optimizing middle-end did.
	Opt *accmos.OptStats
	// Part reports the partitioning decision behind the generated run
	// (nil when partitioning was never requested).
	Part *accmos.PartStats
	// ArtifactHash is the content-hash key of the compiled program — the
	// build-cache key a fleet coordinator uses to track which nodes hold
	// which binaries.
	ArtifactHash string
}

// job is the server-side record of one submission. All fields except
// fanout and done are guarded by the Server mutex; fanout has its own
// lock, and done is closed exactly once under the Server mutex.
type job struct {
	id       string
	seq      int64
	priority int
	spec     JobSpec
	lint     []LintLine

	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	runErr    error // the raw runner error (errors.As target for forensics)
	outcome   *Outcome
	phases    map[string]int64
	cacheHit  bool
	debug     *DebugBundle // captured at finish for failed/canceled jobs

	cancelRequested bool
	cancelRun       func() // non-nil while running

	fanout *obs.Fanout
	done   chan struct{} // closed on terminal state
	index  int           // heap position; -1 once popped
}

// view renders the job for the wire. Caller holds the Server mutex.
func (j *job) view() JobView {
	v := JobView{
		ID:          j.id,
		State:       j.state,
		Model:       j.spec.ModelName,
		Priority:    j.priority,
		SubmittedAt: j.submitted,
		CacheHit:    j.cacheHit,
		Phases:      j.phases,
		Lint:        j.lint,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
		v.QueueNanos = j.started.Sub(j.submitted).Nanoseconds()
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
		if !j.started.IsZero() {
			v.RunNanos = j.finished.Sub(j.started).Nanoseconds()
		}
	}
	if o := j.outcome; o != nil {
		v.Result = o.Results
		v.Coverage = o.Coverage
		v.SweepRuns = o.SweepRuns
		v.Batched = o.Batched
		v.MergedCoverage = o.Merged
		v.Opt = o.Opt
		v.Part = o.Part
		v.WorkerReuse = o.WorkerReuse
		v.ArtifactHash = o.ArtifactHash
	}
	return v
}

// jobHeap orders queued jobs by priority (higher first), then submission
// order (FIFO within a priority level). Implements container/heap.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].seq < h[b].seq
}

func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}

func (h *jobHeap) Push(x interface{}) {
	j := x.(*job)
	j.index = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}
