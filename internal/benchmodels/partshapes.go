package benchmodels

import (
	"fmt"

	"accmos/internal/model"
	"accmos/internal/types"
)

// Partition-sensitive benchmark shapes. Both are compute-heavy enough
// that a goroutine-pipelined step loop has real work to overlap, and
// both schedule as contiguous per-chain runs (the topo-sort tie-break is
// alphabetical, and each chain's names sort together), so the partition
// cutter finds legal, balanced boundaries with few crossing signals:
//
//   - PARTL "longlanes": a few very deep transcendental chains joined
//     only at the end — cutting between chains ships just the finished
//     lane tails.
//   - PARTW "widefan": many medium chains with independent outports —
//     boundaries exist between every chain, so any K divides evenly.
//
// The chains rotate through host-compiler-opaque libm calls (tanh, sin,
// cos), so per-actor cost is real at every opt level and O1/O2 cannot
// fold the work away.

// partLChains/partLDepth size PARTL: 4 lanes x 120 actors ≈ 480
// heavyweight actors, enough for a 4-way cut above the auto-K
// min-actors threshold.
const (
	partLChains = 4
	partLDepth  = 120
	partWChains = 16
	partWDepth  = 30
)

// PartNames returns the partition benchmark shapes in suite order.
func PartNames() []string { return []string{"PARTL", "PARTW"} }

// PartDescription returns the one-line functionality string of a
// partition benchmark shape.
func PartDescription(name string) string {
	switch name {
	case "PARTL":
		return "Few deep transcendental lanes joined late (pipelined partitions)"
	case "PARTW":
		return "Many medium independent chains fanned wide (balanced partitions)"
	}
	return ""
}

// BuildPart constructs the named partition benchmark shape.
func BuildPart(name string) (*model.Model, error) {
	switch name {
	case "PARTL":
		return PartLongLanes(), nil
	case "PARTW":
		return PartWideFan(), nil
	}
	return nil, fmt.Errorf("benchmodels: unknown partition shape %q (have %v)", name, PartNames())
}

// MustBuildPart is BuildPart for tests and benchmarks.
func MustBuildPart(name string) *model.Model {
	m, err := BuildPart(name)
	if err != nil {
		panic(err)
	}
	return m
}

// partChain grows one transcendental chain of the given depth from src,
// rotating libm operators, and returns the tail actor name.
func partChain(b *model.Builder, stem, src string, depth int) string {
	ops := []string{"tanh", "sin", "cos"}
	prev := src
	for d := 0; d < depth; d++ {
		n := fmt.Sprintf("%s_%03d", stem, d)
		b.Add(n, "Math", 1, 1, model.WithOperator(ops[d%len(ops)]))
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	return prev
}

// PartLongLanes builds PARTL: partLChains deep lanes from independent
// inports, summed once at the very end. The only inter-lane edges are
// the lane tails into the final Sum, so a K-way cut between lanes ships
// K-1 signals per boundary at most.
func PartLongLanes() *model.Model {
	b := model.NewBuilder("PARTL")
	tails := make([]string, partLChains)
	for c := 0; c < partLChains; c++ {
		// Chain-prefixed names keep each lane contiguous in the
		// alphabetical topo tie-break, so lane boundaries cut only tails.
		in := fmt.Sprintf("L%d_0in", c)
		b.Add(in, "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", fmt.Sprint(c+1)))
		tails[c] = partChain(b, fmt.Sprintf("L%d", c), in, partLDepth)
	}
	op := ""
	for range tails {
		op += "+"
	}
	b.Add("ZJoin", "Sum", partLChains, 1, model.WithOperator(op))
	for c, tail := range tails {
		b.Connect(tail, 0, "ZJoin", c)
	}
	b.Add("ZOut", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("ZJoin", 0, "ZOut", 0)
	return b.MustBuild()
}

// PartWideFan builds PARTW: partWChains medium chains, each with its own
// outport — no cross-chain edges at all, so every inter-chain boundary
// is legal and cuts only the signals the refiner cannot avoid (none).
func PartWideFan() *model.Model {
	b := model.NewBuilder("PARTW")
	for c := 0; c < partWChains; c++ {
		// Chain-prefixed names (inport sorts first, outport last within
		// the chain) make every chain a contiguous schedule block with no
		// edges leaving it.
		in := fmt.Sprintf("W%02d_0in", c)
		b.Add(in, "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", fmt.Sprint(c+1)))
		tail := partChain(b, fmt.Sprintf("W%02d", c), in, partWDepth)
		out := fmt.Sprintf("W%02d_zout", c)
		b.Add(out, "Outport", 1, 0, model.WithParam("Port", fmt.Sprint(c+1)))
		b.Connect(tail, 0, out, 0)
	}
	return b.MustBuild()
}
