package benchmodels_test

import (
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/diagnose"
	"accmos/internal/interp"
	"accmos/internal/lint"
	"accmos/internal/testcase"
)

func TestTable1Counts(t *testing.T) {
	want := map[string][2]int{ // published #Actor, #SubSystem
		"CPUT": {275, 27}, "CSEV": {152, 17}, "FMTM": {276, 42},
		"LANS": {570, 39}, "LEDLC": {170, 31}, "RAC": {667, 57},
		"SPV": {131, 16}, "TCP": {330, 42}, "TWC": {214, 13}, "UTPC": {214, 21},
	}
	if len(benchmodels.Names()) != len(want) {
		t.Fatalf("have %d models, want %d", len(benchmodels.Names()), len(want))
	}
	for name, counts := range want {
		m, err := benchmodels.Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := m.Stats()
		if st.Actors != counts[0] {
			t.Errorf("%s actors = %d, want %d", name, st.Actors, counts[0])
		}
		if st.Subsystems != counts[1] {
			t.Errorf("%s subsystems = %d, want %d", name, st.Subsystems, counts[1])
		}
		if benchmodels.Description(name) == "" {
			t.Errorf("%s has no description", name)
		}
	}
}

func TestAllModelsCompileAndSimulate(t *testing.T) {
	for _, name := range benchmodels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := actors.Compile(benchmodels.MustBuild(name))
			if err != nil {
				t.Fatal(err)
			}
			e, err := interp.New(c, interp.Options{Coverage: true, Diagnose: true})
			if err != nil {
				t.Fatal(err)
			}
			set := testcase.NewRandomSet(len(c.Inports), 7, -100, 100)
			res, err := e.Run(set, 200)
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps != 200 {
				t.Errorf("steps = %d", res.Steps)
			}
			rep := e.Layout().Report(res.Coverage)
			if rep.Actor <= 0 {
				t.Error("no actor coverage at all")
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := benchmodels.MustBuild("LANS")
	b := benchmodels.MustBuild("LANS")
	if len(a.Actors) != len(b.Actors) || len(a.Connections) != len(b.Connections) {
		t.Fatal("construction is not deterministic in size")
	}
	for i := range a.Actors {
		if a.Actors[i].Name != b.Actors[i].Name || a.Actors[i].Type != b.Actors[i].Type {
			t.Fatalf("actor %d differs: %v vs %v", i, a.Actors[i], b.Actors[i])
		}
	}
	for i := range a.Connections {
		if a.Connections[i] != b.Connections[i] {
			t.Fatalf("connection %d differs", i)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := benchmodels.Build("NOPE"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestFigure1Overflows(t *testing.T) {
	c, err := actors.Compile(benchmodels.Figure1Model())
	if err != nil {
		t.Fatal(err)
	}
	e, err := interp.New(c, interp.Options{Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow})
	if err != nil {
		t.Fatal(err)
	}
	set := &testcase.Set{Sources: []testcase.Source{
		{Kind: testcase.Const, Value: 1e6},
		{Kind: testcase.Const, Value: 1e6},
	}}
	res, err := e.Run(set, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDetectOf(diagnose.WrapOnOverflow) < 0 {
		t.Fatal("Figure 1 model must overflow")
	}
}

func TestCSEVInjectedErrors(t *testing.T) {
	const rate = 1_000_000
	c, err := actors.Compile(benchmodels.CSEVInjected(rate))
	if err != nil {
		t.Fatal(err)
	}
	e, err := interp.New(c, interp.Options{Diagnose: true})
	if err != nil {
		t.Fatal(err)
	}
	set := testcase.NewRandomSet(len(c.Inports), 5, -10, 10)
	res, err := e.Run(set, benchmodels.OverflowStepOf(rate)+100)
	if err != nil {
		t.Fatal(err)
	}
	// Error 1: the quantity accumulator overflow appears late.
	first := res.FirstDetect["CSEVINJ_QuantityAdd|WrapOnOverflow"]
	want := benchmodels.OverflowStepOf(rate)
	if first < want-2 || first > want+2 {
		t.Errorf("quantity overflow first at %d, predicted %d (counts: %v)", first, want, res.DiagSummary())
	}
	// Error 2: the downcast on the power product appears immediately.
	if step, ok := res.FirstDetect["CSEVINJ_ChargePower|Downcast"]; !ok || step != 0 {
		t.Errorf("power downcast first detect = %d, %v; want step 0", step, ok)
	}
	// The int16 power output actually wraps, too.
	if _, ok := res.FirstDetect["CSEVINJ_ChargePower|WrapOnOverflow"]; !ok {
		t.Error("power product should wrap on overflow with int16 output")
	}
}

func TestBaseCSEVHasNoQuantityOverflow(t *testing.T) {
	c, err := actors.Compile(benchmodels.MustBuild("CSEV"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := interp.New(c, interp.Options{Diagnose: true})
	if err != nil {
		t.Fatal(err)
	}
	set := testcase.NewRandomSet(len(c.Inports), 5, -10, 10)
	res, err := e.Run(set, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.FirstDetect["CSEV_QuantityAdd|WrapOnOverflow"]; ok {
		t.Error("production CSEV must not overflow its quantity store this quickly")
	}
}

func TestBenchmarksFullyConnected(t *testing.T) {
	// The connectivity invariant: every actor in every benchmark model
	// influences some model output (zero dead logic under the static
	// checks), as in production controllers.
	for _, name := range benchmodels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			c, err := actors.Compile(benchmodels.MustBuild(name))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range lint.Check(c) {
				if strings.Contains(f.Message, "dead logic") {
					t.Errorf("%s", f)
				}
			}
		})
	}
}
