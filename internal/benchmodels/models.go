package benchmodels

import (
	"fmt"
	"sort"

	"accmos/internal/model"
	"accmos/internal/types"
)

// Table 1 profiles. Computation-heavy mixes match the paper's analysis:
// "LANS, LEDLC, SPV, and TCP ... contain more computational actors than
// other models", which is why their code-generation speedups are highest.
var profiles = map[string]Profile{
	"CPUT":  {Name: "CPUT", Actors: 275, Subsystems: 27, ComputeFrac: 0.40, Seed: 101, Inports: 4, Outports: 3},
	"CSEV":  {Name: "CSEV", Actors: 152, Subsystems: 17, ComputeFrac: 0.45, Seed: 102, Inports: 3, Outports: 2},
	"FMTM":  {Name: "FMTM", Actors: 276, Subsystems: 42, ComputeFrac: 0.40, Seed: 103, Inports: 6, Outports: 3},
	"LANS":  {Name: "LANS", Actors: 570, Subsystems: 39, ComputeFrac: 0.85, Seed: 104, Inports: 5, Outports: 4},
	"LEDLC": {Name: "LEDLC", Actors: 170, Subsystems: 31, ComputeFrac: 0.85, Seed: 105, Inports: 3, Outports: 2},
	"RAC":   {Name: "RAC", Actors: 667, Subsystems: 57, ComputeFrac: 0.45, Seed: 106, Inports: 6, Outports: 4},
	"SPV":   {Name: "SPV", Actors: 131, Subsystems: 16, ComputeFrac: 0.85, Seed: 107, Inports: 3, Outports: 2},
	"TCP":   {Name: "TCP", Actors: 330, Subsystems: 42, ComputeFrac: 0.80, Seed: 108, Inports: 4, Outports: 3},
	"TWC":   {Name: "TWC", Actors: 214, Subsystems: 13, ComputeFrac: 0.45, Seed: 109, Inports: 4, Outports: 3},
	"UTPC":  {Name: "UTPC", Actors: 214, Subsystems: 21, ComputeFrac: 0.45, Seed: 110, Inports: 4, Outports: 3},
}

// descriptions reproduce Table 1's functionality column.
var descriptions = map[string]string{
	"CPUT":  "AutoSAR CPU task dispatch system",
	"CSEV":  "Charging system of electric vehicle",
	"FMTM":  "Factory Multi-point Temperature Monitor",
	"LANS":  "LAN Switch controller",
	"LEDLC": "LED light controller",
	"RAC":   "Robotic arm controller",
	"SPV":   "Solar PV panel output control",
	"TCP":   "TCP three-way handshake protocol",
	"TWC":   "Train wheel speed controller",
	"UTPC":  "Underwater thruster power control",
}

// Names returns the benchmark model names in Table 1 order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Description returns the Table 1 functionality string.
func Description(name string) string { return descriptions[name] }

// ProfileOf returns the published profile for a benchmark model.
func ProfileOf(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// Build constructs the named benchmark model.
func Build(name string) (*model.Model, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("benchmodels: unknown model %q (have %v)", name, Names())
	}
	s := newSynth(p)
	outs := s.boundary()
	cores[name](s)
	s.fill()
	return s.finish(outs), nil
}

// MustBuild is Build for tests and benchmarks.
func MustBuild(name string) *model.Model {
	m, err := Build(name)
	if err != nil {
		panic(err)
	}
	return m
}

// cores hold the hand-written domain skeleton of each model.
var cores = map[string]func(*synth){
	"CPUT":  coreCPUT,
	"CSEV":  func(s *synth) { coreCSEV(s, false, "1") },
	"FMTM":  coreFMTM,
	"LANS":  coreLANS,
	"LEDLC": coreLEDLC,
	"RAC":   coreRAC,
	"SPV":   coreSPV,
	"TCP":   coreTCP,
	"TWC":   coreTWC,
	"UTPC":  coreUTPC,
}

// intIndexSource adds a small int32 index source cycling 1..n, seeding the
// integer pool used by dispatch switches.
func (s *synth) intIndexSource(stem string, n int) string {
	ct := s.addRoot(s.name(stem+"Ct"), "Counter", 0, 1, model.WithParam("Inc", "1"))
	md := s.addRoot(s.name(stem+"Md"), "Mod", 2, 1)
	nC := s.addRoot(s.name(stem+"N"), "Constant", 0, 1,
		model.WithOutKind(types.I32), model.WithParam("Value", fmt.Sprint(n)))
	bi := s.addRoot(s.name(stem+"Bi"), "Bias", 1, 1, model.WithParam("Bias", "1"))
	s.b.Connect(ct, 0, md, 0)
	s.b.Connect(nC, 0, md, 1)
	s.b.Connect(md, 0, bi, 0)
	s.pushI32(bi)
	return bi
}

// pidLoop adds a discrete PI controller around an input signal: the
// canonical control-loop core shared by several domain models.
func (s *synth) pidLoop(stem string, src sigRef, kp, ki string) string {
	errS := s.addRoot(s.name(stem+"Err"), "Sum", 2, 1, model.WithOperator("+-"))
	p := s.addRoot(s.name(stem+"P"), "Gain", 1, 1, model.WithParam("Gain", kp))
	i := s.addRoot(s.name(stem+"I"), "DiscreteIntegrator", 1, 1, model.WithParam("Gain", ki))
	u := s.addRoot(s.name(stem+"U"), "Sum", 2, 1, model.WithOperator("++"))
	sat := s.addRoot(s.name(stem+"Sat"), "Saturation", 1, 1,
		model.WithParam("Min", "-50"), model.WithParam("Max", "50"))
	fb := s.addRoot(s.name(stem+"Fb"), "DiscreteFilter", 1, 1,
		model.WithParam("A", "0.9"), model.WithParam("B", "0.1"))
	// The feedback path needs a unit delay: DiscreteFilter has direct
	// feedthrough, so closing the loop through it alone would be an
	// algebraic loop.
	dly := s.addRoot(s.name(stem+"Z"), "UnitDelay", 1, 1)
	s.b.Connect(src.actor, src.port, errS, 0)
	s.b.Connect(dly, 0, errS, 1)
	s.b.Connect(errS, 0, p, 0)
	s.b.Connect(errS, 0, i, 0)
	s.b.Connect(p, 0, u, 0)
	s.b.Connect(i, 0, u, 1)
	s.b.Connect(u, 0, sat, 0)
	s.b.Connect(sat, 0, fb, 0)
	s.b.Connect(fb, 0, dly, 0)
	s.pushF64(errS)
	s.pushF64(u)
	s.pushF64(sat)
	return sat
}

func coreCPUT(s *synth) {
	// Task dispatch: a rotating task index drives a MultiportSwitch that
	// selects per-task load signals; queue lengths accumulate leakily.
	idx := s.intIndexSource("Task", 3)
	mps := s.addRoot("Dispatch", "MultiportSwitch", 4, 1)
	s.b.Connect(idx, 0, mps, 0)
	for p := 1; p <= 3; p++ {
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, mps, p)
	}
	s.pushF64(mps)
	q := s.addRoot("QueueLen", "DiscreteIntegrator", 1, 1, model.WithParam("Gain", "0.001"))
	s.b.Connect(mps, 0, q, 0)
	s.pushF64(q)
	over := s.addRoot("Overload", "CompareToConstant", 1, 1,
		model.WithOperator(">"), model.WithParam("Constant", "10"))
	s.b.Connect(q, 0, over, 0)
	s.pushBool(over)
}

// coreCSEV builds the EV charging core. With inject=true the saturation
// guard on the charge accumulator is removed (case-study error 1: wrap on
// overflow in the "quantity" data store) and the charging-power product
// gets a short-int output narrower than its int inputs (error 2: wrap on
// overflow through downcast).
func coreCSEV(s *synth, inject bool, chargeRate string) {
	// Mode selection: charging mode index picks rated voltage/current.
	idx := s.intIndexSource("Mode", 3)
	volt := s.addRoot("RatedVoltage", "LookupDirect", 1, 1,
		model.WithParam("Table", "[220 380 750]"), model.WithOutKind(types.I32))
	curr := s.addRoot("RatedCurrent", "LookupDirect", 1, 1,
		model.WithParam("Table", "[16 32 250]"), model.WithOutKind(types.I32))
	s.b.Connect(idx, 0, volt, 0)
	s.b.Connect(idx, 0, curr, 0)

	// Charging power = U * I. The injected variant narrows the output to
	// int16, the paper's second injected error.
	powerOpts := []model.ActorOpt{model.WithOperator("**")}
	if inject {
		powerOpts = append(powerOpts, model.WithOutKind(types.I16))
	}
	power := s.addRoot("ChargePower", "Product", 2, 1, powerOpts...)
	s.b.Connect(volt, 0, power, 0)
	s.b.Connect(curr, 0, power, 1)

	// Charged-electricity quantity: a global data store accumulating the
	// charge rate — the paper's first injected error site.
	s.addRoot("QuantityStore", "DataStoreMemory", 0, 0,
		model.WithParam("Store", "quantity"), model.WithOutKind(types.I32))
	rd := s.addRoot("QuantityRead", "DataStoreRead", 0, 1,
		model.WithParam("Store", "quantity"), model.WithOutKind(types.I32))
	rate := s.addRoot("ChargeRate", "Constant", 0, 1,
		model.WithOutKind(types.I32), model.WithParam("Value", chargeRate))
	acc := s.addRoot("QuantityAdd", "Sum", 2, 1, model.WithOperator("++"))
	s.b.Connect(rd, 0, acc, 0)
	s.b.Connect(rate, 0, acc, 1)
	wr := s.addRoot("QuantityWrite", "DataStoreWrite", 1, 0, model.WithParam("Store", "quantity"))
	if inject {
		s.b.Connect(acc, 0, wr, 0)
	} else {
		guard := s.addRoot("QuantityGuard", "Saturation", 1, 1,
			model.WithParam("Min", "0"), model.WithParam("Max", "2000000000"))
		s.b.Connect(acc, 0, guard, 0)
		s.b.Connect(guard, 0, wr, 0)
	}

	// Monitoring path back into the float world.
	soc := s.addRoot("SOC", "DataTypeConversion", 1, 1, model.WithOutKind(types.F64))
	s.b.Connect(rd, 0, soc, 0)
	s.pushF64(soc)
	pw := s.addRoot("PowerF", "DataTypeConversion", 1, 1, model.WithOutKind(types.F64))
	s.b.Connect(power, 0, pw, 0)
	s.pushF64(pw)
}

func coreFMTM(s *synth) {
	// Multi-point temperature monitoring: calibrate each sensor input,
	// compare against alarm thresholds, aggregate the hottest point.
	cal := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		src := s.f64[i%len(s.f64)]
		lt := s.addRoot(s.name("Calib"), "Lookup1D", 1, 1,
			model.WithParam("BreakPoints", "[-100 -50 0 50 100]"),
			model.WithParam("Table", "[-98 -49.5 0.25 50.5 101]"))
		s.b.Connect(src.actor, src.port, lt, 0)
		s.pushF64(lt)
		cal = append(cal, lt)
		alarm := s.addRoot(s.name("Alarm"), "CompareToConstant", 1, 1,
			model.WithOperator(">"), model.WithParam("Constant", "85"))
		s.b.Connect(lt, 0, alarm, 0)
		s.pushBool(alarm)
	}
	hot := s.addRoot("Hottest", "MinMax", 3, 1, model.WithOperator("max"))
	for p, c := range cal {
		s.b.Connect(c, 0, hot, p)
	}
	s.pushF64(hot)
}

func coreLANS(s *synth) {
	// LAN switch: per-port byte counters and utilisation ratios.
	for i := 0; i < 3; i++ {
		src := s.f64[i%len(s.f64)]
		abs := s.addRoot(s.name("Load"), "Abs", 1, 1)
		s.b.Connect(src.actor, src.port, abs, 0)
		ctr := s.addRoot(s.name("Bytes"), "DiscreteIntegrator", 1, 1, model.WithParam("Gain", "0.0001"))
		s.b.Connect(abs, 0, ctr, 0)
		util := s.addRoot(s.name("Util"), "Gain", 1, 1, model.WithParam("Gain", "0.01"))
		s.b.Connect(ctr, 0, util, 0)
		s.pushF64(abs)
		s.pushF64(ctr)
		s.pushF64(util)
	}
}

func coreLEDLC(s *synth) {
	// LED controller: PWM duty from a gamma-corrected brightness demand.
	pwm := s.addRoot("PWM", "PulseGenerator", 0, 1,
		model.WithParam("Period", "32"), model.WithParam("Width", "12"))
	s.pushF64(pwm)
	bright := s.pickF64()
	gamma := s.addRoot("Gamma", "Polynomial", 1, 1, model.WithParam("Coeffs", "[0.004 0.1 0.02]"))
	s.b.Connect(bright.actor, bright.port, gamma, 0)
	duty := s.addRoot("Duty", "Product", 2, 1, model.WithOperator("**"))
	s.b.Connect(gamma, 0, duty, 0)
	s.b.Connect(pwm, 0, duty, 1)
	lim := s.addRoot("DutyLim", "Saturation", 1, 1,
		model.WithParam("Min", "0"), model.WithParam("Max", "1"))
	s.b.Connect(duty, 0, lim, 0)
	s.pushF64(gamma)
	s.pushF64(lim)
}

func coreRAC(s *synth) {
	// Robotic arm: PI loops per joint.
	for i := 0; i < 3; i++ {
		s.pidLoop(fmt.Sprintf("J%d", i+1), s.f64[i%len(s.f64)], "2.5", "0.05")
	}
}

func coreSPV(s *synth) {
	// Solar PV: irradiance to panel power curve with an MPPT-style
	// perturb-and-observe comparator.
	irr := s.pickF64()
	curve := s.addRoot("PVCurve", "Polynomial", 1, 1, model.WithParam("Coeffs", "[-0.002 0.3 0.1]"))
	s.b.Connect(irr.actor, irr.port, curve, 0)
	prev := s.addRoot("PrevPower", "UnitDelay", 1, 1)
	s.b.Connect(curve, 0, prev, 0)
	rising := s.addRoot("PowerRising", "RelationalOperator", 2, 1, model.WithOperator(">"))
	s.b.Connect(curve, 0, rising, 0)
	s.b.Connect(prev, 0, rising, 1)
	s.pushF64(curve)
	s.pushF64(prev)
	s.pushBool(rising)
}

func coreTCP(s *synth) {
	// Three-way handshake: connection state held in a data store stepped
	// by SYN/ACK conditions.
	s.addRoot("ConnState", "DataStoreMemory", 0, 0,
		model.WithParam("Store", "connState"), model.WithOutKind(types.I32))
	st := s.addRoot("StateRead", "DataStoreRead", 0, 1,
		model.WithParam("Store", "connState"), model.WithOutKind(types.I32))
	syn := s.addRoot("SynSeen", "CompareToZero", 1, 1, model.WithOperator(">"))
	src := s.pickF64()
	s.b.Connect(src.actor, src.port, syn, 0)
	one := s.addRoot("One", "Constant", 0, 1, model.WithOutKind(types.I32), model.WithParam("Value", "1"))
	advanced := s.addRoot("Advance", "Sum", 2, 1, model.WithOperator("++"))
	s.b.Connect(st, 0, advanced, 0)
	s.b.Connect(one, 0, advanced, 1)
	wrapped := s.addRoot("StateMod", "Mod", 2, 1)
	three := s.addRoot("Three", "Constant", 0, 1, model.WithOutKind(types.I32), model.WithParam("Value", "3"))
	s.b.Connect(advanced, 0, wrapped, 0)
	s.b.Connect(three, 0, wrapped, 1)
	next := s.addRoot("NextState", "If", 3, 1)
	s.b.Connect(syn, 0, next, 0)
	s.b.Connect(wrapped, 0, next, 1)
	s.b.Connect(st, 0, next, 2)
	wr := s.addRoot("StateWrite", "DataStoreWrite", 1, 0, model.WithParam("Store", "connState"))
	s.b.Connect(next, 0, wr, 0)
	estab := s.addRoot("Established", "CompareToConstant", 1, 1,
		model.WithOperator("=="), model.WithParam("Constant", "2"))
	s.b.Connect(next, 0, estab, 0)
	s.pushBool(estab)
	stF := s.addRoot("StateF", "DataTypeConversion", 1, 1, model.WithOutKind(types.F64))
	s.b.Connect(next, 0, stF, 0)
	s.pushF64(stF)
}

func coreTWC(s *synth) {
	// Train wheel speed: PI speed loop plus slip-detection relay braking.
	sat := s.pidLoop("Spd", s.pickF64(), "1.5", "0.02")
	slip := s.addRoot("SlipDet", "DiscreteDerivative", 1, 1)
	s.b.Connect(sat, 0, slip, 0)
	brake := s.addRoot("Brake", "Relay", 1, 1,
		model.WithParam("OnPoint", "5"), model.WithParam("OffPoint", "1"),
		model.WithParam("OnValue", "1"), model.WithParam("OffValue", "0"))
	s.b.Connect(slip, 0, brake, 0)
	s.pushF64(slip)
	s.pushF64(brake)
}

func coreUTPC(s *synth) {
	// Underwater thruster: depth-pressure compensation and power limit.
	depth := s.pickF64()
	press := s.addRoot("Pressure", "Gain", 1, 1, model.WithParam("Gain", "0.101"))
	s.b.Connect(depth.actor, depth.port, press, 0)
	demand := s.pickF64()
	thrust := s.addRoot("Thrust", "Product", 2, 1, model.WithOperator("**"))
	s.b.Connect(demand.actor, demand.port, thrust, 0)
	s.b.Connect(press, 0, thrust, 1)
	lim := s.addRoot("PowerLim", "RateLimiter", 1, 1,
		model.WithParam("RisingLimit", "2"), model.WithParam("FallingLimit", "4"))
	s.b.Connect(thrust, 0, lim, 0)
	s.pushF64(press)
	s.pushF64(lim)
}
