package benchmodels

import (
	"fmt"

	"accmos/internal/model"
	"accmos/internal/types"
)

// Optimizer-sensitive benchmark shapes. Each one isolates a structure the
// internal/opt pipeline targets, at a scale where the O0-vs-O1 wall-clock
// gap is measurable:
//
//   - OPTC "constheavy": a large constant subgraph feeding a tiny live
//     chain — constant folding collapses it to one literal.
//   - OPTD "dupbranches": many identical parallel branches — CSE merges
//     them and dead-actor elimination drops the orphaned duplicates.
//   - OPTI "deadisland": a large disconnected island that influences no
//     outport — dead-actor elimination removes it wholesale.
//
// The removable regions use diagnosis-rule-free actor types (Constant,
// Saturation, Sign, MinMax), so the passes also fire when the equivalence
// harness runs them with coverage and diagnosis instrumentation on.

// OptNames returns the optimizer benchmark shapes in suite order: the
// O1-sensitive trio followed by the O2-sensitive quartet (opt2shapes.go).
func OptNames() []string {
	return append([]string{"OPTC", "OPTD", "OPTI"}, Opt2Names()...)
}

// OptDescription returns the one-line functionality string of an
// optimizer benchmark shape.
func OptDescription(name string) string {
	switch name {
	case "OPTC":
		return "Constant subgraph feeding a live chain (constant folding)"
	case "OPTD":
		return "Duplicated parallel branches (CSE + dead-actor elimination)"
	case "OPTI":
		return "Unreachable island beside a live chain (dead-actor elimination)"
	}
	return opt2Description(name)
}

// BuildOpt constructs the named optimizer benchmark shape.
func BuildOpt(name string) (*model.Model, error) {
	switch name {
	case "OPTC":
		return OptConstHeavy(), nil
	case "OPTD":
		return OptDupBranches(), nil
	case "OPTI":
		return OptDeadIsland(), nil
	}
	if m := buildOpt2(name); m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("benchmodels: unknown opt shape %q (have %v)", name, OptNames())
}

// MustBuildOpt is BuildOpt for tests and benchmarks.
func MustBuildOpt(name string) *model.Model {
	m, err := BuildOpt(name)
	if err != nil {
		panic(err)
	}
	return m
}

// minMaxTree reduces the signals to one via a binary MinMax merge tree,
// returning the root actor name. stem keeps the node names unique.
func minMaxTree(b *model.Builder, stem string, leaves []string) string {
	level := leaves
	t := 0
	for len(level) > 1 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			n := fmt.Sprintf("%s%02d", stem, t)
			t++
			b.Add(n, "MinMax", 2, 1, model.WithOperator("max"))
			b.Connect(level[i], 0, n, 0)
			b.Connect(level[i+1], 0, n, 1)
			next = append(next, n)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// OptConstHeavy builds OPTC: 24 constant-fed chains merged by a MinMax
// tree, whose single constant result joins the live input path. Constant
// folding reduces the ~190-actor constant region to one literal;
// dead-actor elimination then sweeps the folded leftovers, leaving about
// five live actors. Odd chains interleave Math(tanh) blocks: a host
// compiler cannot fold a math-library call, so the generated program
// pays real per-step cost at O0 — the probing fold removes it at O1.
func OptConstHeavy() *model.Model {
	b := model.NewBuilder("OPTC")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	const chains, depth = 24, 6
	var leaves []string
	for c := 0; c < chains; c++ {
		k := fmt.Sprintf("K%02d", c)
		// Distinct values per chain so CSE cannot short-circuit the
		// folding work this shape exists to measure.
		b.Add(k, "Constant", 0, 1, model.WithParam("Value", fmt.Sprintf("%g", 0.25*float64(c)-3)))
		prev := k
		for d := 0; d < depth; d++ {
			var s string
			if c%2 == 1 && d%2 == 1 {
				s = fmt.Sprintf("Fn%02d_%d", c, d)
				b.Add(s, "Math", 1, 1, model.WithOperator("tanh"))
			} else {
				s = fmt.Sprintf("Sat%02d_%d", c, d)
				b.Add(s, "Saturation", 1, 1,
					model.WithParam("Min", fmt.Sprintf("%g", -10+float64(d))),
					model.WithParam("Max", fmt.Sprintf("%g", 10-float64(d))))
			}
			b.Connect(prev, 0, s, 0)
			prev = s
		}
		leaves = append(leaves, prev)
	}
	root := minMaxTree(b, "Tr", leaves)
	b.Add("Blend", "MinMax", 2, 1, model.WithOperator("min"))
	b.Connect("In1", 0, "Blend", 0)
	b.Connect(root, 0, "Blend", 1)
	b.Add("Lim", "Saturation", 1, 1, model.WithParam("Min", "-5"), model.WithParam("Max", "5"))
	b.Connect("Blend", 0, "Lim", 0)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("Lim", 0, "Out1", 0)
	return b.MustBuild()
}

// OptDupBranches builds OPTD: twenty byte-identical Saturation→Sign→
// MinMax branches off the same input, reduced by a MinMax tree. CSE
// rewires every consumer to one representative branch — which also
// collapses each tree level — and dead-actor elimination removes the
// orphaned duplicates.
func OptDupBranches() *model.Model {
	b := model.NewBuilder("OPTD")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	const chains = 20
	var leaves []string
	for c := 0; c < chains; c++ {
		sat := fmt.Sprintf("SatA%02d", c)
		b.Add(sat, "Saturation", 1, 1, model.WithParam("Min", "-2"), model.WithParam("Max", "2"))
		b.Connect("In1", 0, sat, 0)
		sg := fmt.Sprintf("SgnA%02d", c)
		b.Add(sg, "Sign", 1, 1)
		b.Connect(sat, 0, sg, 0)
		mm := fmt.Sprintf("MixA%02d", c)
		b.Add(mm, "MinMax", 2, 1, model.WithOperator("max"))
		b.Connect(sat, 0, mm, 0)
		b.Connect(sg, 0, mm, 1)
		leaves = append(leaves, mm)
	}
	root := minMaxTree(b, "Tr", leaves)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect(root, 0, "Out1", 0)
	return b.MustBuild()
}

// OptDeadIsland builds OPTI: a three-actor live path beside a large
// constant-fed Sign/MinMax island that reaches no outport. The island is
// valid (dangling outputs lint as Info) but observationally inert, so
// dead-actor elimination removes all of it — the island deliberately
// avoids branch and boolean actors so removal stays legal even with
// coverage instrumentation on. Odd chains swap Sign for Math(tanh) so
// the generated program pays real (host-compiler-opaque) per-step cost
// at O0.
func OptDeadIsland() *model.Model {
	b := model.NewBuilder("OPTI")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("Lim", "Saturation", 1, 1, model.WithParam("Min", "-1"), model.WithParam("Max", "1"))
	b.Connect("In1", 0, "Lim", 0)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("Lim", 0, "Out1", 0)

	const chains, depth = 12, 8
	for c := 0; c < chains; c++ {
		k := fmt.Sprintf("IK%02d", c)
		b.Add(k, "Constant", 0, 1, model.WithParam("Value", fmt.Sprintf("%g", 0.5*float64(c)-2)))
		prev := k
		for d := 0; d < depth; d++ {
			var n string
			switch {
			case d%2 == 0 && c%2 == 1:
				n = fmt.Sprintf("IFn%02d_%d", c, d)
				b.Add(n, "Math", 1, 1, model.WithOperator("tanh"))
				b.Connect(prev, 0, n, 0)
			case d%2 == 0:
				n = fmt.Sprintf("ISg%02d_%d", c, d)
				b.Add(n, "Sign", 1, 1)
				b.Connect(prev, 0, n, 0)
			default:
				n = fmt.Sprintf("IMx%02d_%d", c, d)
				b.Add(n, "MinMax", 2, 1, model.WithOperator("max"))
				b.Connect(prev, 0, n, 0)
				b.Connect(k, 0, n, 1)
			}
			prev = n
		}
	}
	return b.MustBuild()
}
