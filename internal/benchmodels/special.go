package benchmodels

import (
	"fmt"

	"accmos/internal/model"
	"accmos/internal/types"
)

// Figure1Model reconstructs the paper's motivating example (Figure 1): a
// sample model that accumulates its two inputs and combines the results,
// so the combining Sum actor wraps on overflow only after long simulation.
func Figure1Model() *model.Model {
	return model.NewBuilder("FIG1").
		Add("InA", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("InB", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "2")).
		Add("AccA", "Sum", 2, 1, model.WithOperator("++")).
		Add("DelayA", "UnitDelay", 1, 1).
		Add("AccB", "Sum", 2, 1, model.WithOperator("++")).
		Add("DelayB", "UnitDelay", 1, 1).
		Add("Sum", "Sum", 2, 1, model.WithOperator("++")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("InA", "AccA", 0).
		Wire("DelayA", "AccA", 1).
		Wire("AccA", "DelayA", 0).
		Wire("InB", "AccB", 0).
		Wire("DelayB", "AccB", 1).
		Wire("AccB", "DelayB", 0).
		Wire("AccA", "Sum", 0).
		Wire("AccB", "Sum", 1).
		Wire("Sum", "Out", 0).
		MustBuild()
}

// CSEVInjected builds the CSEV model with the two manually injected
// errors of the paper's case study (§4):
//
//  1. wrap on overflow in the int32 "quantity" data store, which
//     accumulates chargeRate every step without the production model's
//     saturation guard — it manifests only after ~2^31/chargeRate steps;
//  2. wrap on overflow through a downcast: the charging-power product's
//     output type is int16 while rated voltage and current are int32, so
//     U*I wraps immediately.
//
// chargeRate tunes how long error 1 stays latent; the paper charges for
// hundreds of seconds before detection.
func CSEVInjected(chargeRate int64) *model.Model {
	p := profiles["CSEV"]
	p.Name = "CSEVINJ"
	s := newSynth(p)
	outs := s.boundary()
	coreCSEV(s, true, fmt.Sprint(chargeRate))
	s.fill()
	return s.finish(outs)
}

// Synthesize builds a purely synthetic model from an arbitrary profile
// (no domain core). Randomized cross-engine equivalence tests use it to
// sweep model shapes beyond the fixed benchmark suite.
func Synthesize(p Profile) *model.Model {
	s := newSynth(p)
	outs := s.boundary()
	s.fill()
	return s.finish(outs)
}

// OverflowStepOf predicts the step at which CSEVInjected's quantity store
// first wraps: the store starts at 0 and gains chargeRate per step.
func OverflowStepOf(chargeRate int64) int64 {
	// The store holds (k+1)*chargeRate after step k; the first wrapped
	// addition happens when that product exceeds MaxInt32.
	return (1<<31 - 1) / chargeRate
}
