package benchmodels

import (
	"fmt"

	"accmos/internal/model"
	"accmos/internal/types"
)

// O2-sensitive benchmark shapes. The O1 trio (OPTC/OPTD/OPTI) collapses
// to a handful of actors before the O2 middle-end ever runs, so these
// four isolate what the typed-lowering stage itself buys:
//
//   - OPTF "fusechains": long scalar single-consumer arithmetic chains
//     that O1 cannot remove (every actor depends on the input) — fusion
//     collapses the whole step body into one expression.
//   - OPTV "fusevectors": the same shape over wide vector signals, where
//     fusion additionally merges one element loop per actor into a
//     single loop with no intermediate array stores.
//   - OPTH "hoistchains": constant tanh chains beside a data store. The
//     store makes O1's edge-rewriting passes decline, so O1 pays the
//     math calls every step; O2's plan-time folding hoists the entire
//     constant region into one precomputed global.
//   - OPTN "narrowlattice": a lattice of wide int32 vector adders over
//     saturation-bounded values. Every node has two consumers, so
//     nothing fuses — the win is interval-driven storage narrowing to
//     int8/int16 arrays.

// Opt2Names returns the O2-sensitive shapes in suite order.
func Opt2Names() []string { return []string{"OPTF", "OPTV", "OPTH", "OPTN"} }

// opt2Description returns the one-line functionality string of an
// O2-sensitive shape ("" for unknown names).
func opt2Description(name string) string {
	switch name {
	case "OPTF":
		return "Scalar single-consumer arithmetic chains (O2 expression fusion)"
	case "OPTV":
		return "Wide vector arithmetic chains (O2 loop fusion)"
	case "OPTH":
		return "Constant math chains beside a data store (O2 invariant hoisting)"
	case "OPTN":
		return "Bounded int32 vector lattice (O2 storage narrowing)"
	}
	return ""
}

// buildOpt2 constructs the named O2-sensitive shape (nil for unknown
// names).
func buildOpt2(name string) *model.Model {
	switch name {
	case "OPTF":
		return OptFuseChains()
	case "OPTV":
		return OptFuseVectors()
	case "OPTH":
		return OptHoistChains()
	case "OPTN":
		return OptNarrowLattice()
	}
	return nil
}

// sumTree reduces the signals to one via a binary Sum merge tree,
// returning the root actor name.
func sumTree(b *model.Builder, stem string, leaves []string) string {
	level := leaves
	t := 0
	for len(level) > 1 {
		var next []string
		for i := 0; i+1 < len(level); i += 2 {
			n := fmt.Sprintf("%s%02d", stem, t)
			t++
			b.Add(n, "Sum", 2, 1, model.WithOperator("++"))
			b.Connect(level[i], 0, n, 0)
			b.Connect(level[i+1], 0, n, 1)
			next = append(next, n)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}

// arithChain appends a Gain/Bias/UnaryMinus/Abs chain of the given depth
// hanging off src, returning the last actor name. salt keeps parameter
// values distinct across chains so CSE cannot merge them at O1 — the
// chains must survive to O2 for fusion to have anything to do. Every
// stage is single-consumer with no branch/boolean actors, so the O2
// analyzer lowers the whole chain when instrumentation is off.
func arithChain(b *model.Builder, stem, src string, depth, salt int) string {
	prev := src
	for d := 0; d < depth; d++ {
		n := fmt.Sprintf("%s_%d", stem, d)
		switch d % 4 {
		case 0:
			b.Add(n, "Gain", 1, 1, model.WithParam("Gain",
				fmt.Sprintf("%g", 1.0+0.125*float64(d%7)+0.015625*float64(salt))))
		case 1:
			b.Add(n, "Bias", 1, 1, model.WithParam("Bias",
				fmt.Sprintf("%g", 0.25*float64(d%5)-0.5+0.03125*float64(salt))))
		case 2:
			b.Add(n, "UnaryMinus", 1, 1)
		default:
			b.Add(n, "Abs", 1, 1)
		}
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	return prev
}

// fanOut muxes n copies of a scalar source into one width-n vector.
func fanOut(b *model.Builder, name, src string, n int) string {
	b.Add(name, "Mux", n, 1)
	for p := 0; p < n; p++ {
		b.Connect(src, 0, name, p)
	}
	return name
}

// OptFuseChains builds OPTF: 16 scalar arithmetic chains of depth 8 off
// the live input, merged by a Sum tree. O1 removes nothing (every actor
// depends on In1); O2 fuses the ~143 lowered actors into one generated
// expression.
func OptFuseChains() *model.Model {
	b := model.NewBuilder("OPTF")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	const chains, depth = 16, 8
	var leaves []string
	for c := 0; c < chains; c++ {
		leaves = append(leaves, arithChain(b, fmt.Sprintf("C%02d", c), "In1", depth, c))
	}
	root := sumTree(b, "Tr", leaves)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect(root, 0, "Out1", 0)
	return b.MustBuild()
}

// OptFuseVectors builds OPTV: the OPTF shape over width-16 vector
// signals (a scalar inport fanned out through a Mux). At O1 every actor
// emits its own element loop and intermediate array store; O2 fuses them
// into a single loop over one expression.
func OptFuseVectors() *model.Model {
	b := model.NewBuilder("OPTV")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	fan := fanOut(b, "Fan", "In1", 16)
	const chains, depth = 12, 8
	var leaves []string
	for c := 0; c < chains; c++ {
		leaves = append(leaves, arithChain(b, fmt.Sprintf("V%02d", c), fan, depth, c))
	}
	root := sumTree(b, "Tr", leaves)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect(root, 0, "Out1", 0)
	return b.MustBuild()
}

// OptHoistChains builds OPTH: 16 constant tanh/Gain chains merged by a
// Sum tree into the live path, beside a small data-store loop. The data
// store makes O1's constant folding and CSE decline (their edge rewrites
// could reorder read/write scheduling ties), so O1 executes ~48 tanh
// calls per step; O2's plan-time folder evaluates the whole constant
// region once with the engines' own staged ops and emits it as one
// hoisted global.
func OptHoistChains() *model.Model {
	b := model.NewBuilder("OPTH")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	const chains, depth = 16, 6
	var leaves []string
	for c := 0; c < chains; c++ {
		k := fmt.Sprintf("HK%02d", c)
		b.Add(k, "Constant", 0, 1, model.WithParam("Value", fmt.Sprintf("%g", 0.125*float64(c)-1)))
		prev := k
		for d := 0; d < depth; d++ {
			var n string
			if d%2 == 0 {
				n = fmt.Sprintf("HFn%02d_%d", c, d)
				b.Add(n, "Math", 1, 1, model.WithOperator("tanh"))
			} else {
				n = fmt.Sprintf("HG%02d_%d", c, d)
				b.Add(n, "Gain", 1, 1, model.WithParam("Gain", fmt.Sprintf("%g", 1.0+0.0625*float64(c))))
			}
			b.Connect(prev, 0, n, 0)
			prev = n
		}
		leaves = append(leaves, prev)
	}
	root := sumTree(b, "HTr", leaves)
	b.Add("Mix", "Sum", 2, 1, model.WithOperator("++"))
	b.Connect("In1", 0, "Mix", 0)
	b.Connect(root, 0, "Mix", 1)
	b.Add("Lim", "Saturation", 1, 1, model.WithParam("Min", "-6"), model.WithParam("Max", "6"))
	b.Connect("Mix", 0, "Lim", 0)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("Lim", 0, "Out1", 0)

	// The data-store loop that keeps O1's edge-rewriting passes off.
	b.Add("Store", "DataStoreMemory", 0, 0, model.WithParam("Store", "acc"),
		model.WithParam("OutDataType", "double"), model.WithParam("InitialValue", "0"))
	b.Add("Wr", "DataStoreWrite", 1, 0, model.WithParam("Store", "acc"))
	b.Connect("In1", 0, "Wr", 0)
	b.Add("Rd", "DataStoreRead", 0, 1, model.WithParam("Store", "acc"),
		model.WithParam("OutDataType", "double"))
	b.Add("Out2", "Outport", 1, 0, model.WithParam("Port", "2"))
	b.Connect("Rd", 0, "Out2", 0)
	return b.MustBuild()
}

// OptNarrowLattice builds OPTN: width-16 int32 vector adder layers over a
// saturation-bounded input. Each adder output feeds two consumers in the
// next layer, so fusion declines everywhere (multi-use) and the shape
// isolates storage narrowing: layer intervals grow 100, 200, ...,
// 6400 — int8 storage for the first layer, int16 for the rest — which
// quarters (then halves) the per-step array traffic against O1's int32.
func OptNarrowLattice() *model.Model {
	b := model.NewBuilder("OPTN")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1"))
	b.Add("Bound", "Saturation", 1, 1, model.WithParam("Min", "0"), model.WithParam("Max", "50"))
	b.Connect("In1", 0, "Bound", 0)
	// The Mux fan-out carries the clamp's [0,50] fact onto the vector.
	fanOut(b, "Clamp", "Bound", 16)

	// Distinct per-lane biases keep CSE from merging the lattice at O1
	// (every lane would otherwise compute the same value); each lane
	// interval stays [i, 50+i], so the first layers narrow to int8.
	const layers, width = 8, 10
	prev := make([]string, width)
	for i := range prev {
		n := fmt.Sprintf("B%d", i)
		b.Add(n, "Bias", 1, 1, model.WithParam("Bias", fmt.Sprintf("%d", i)))
		b.Connect("Clamp", 0, n, 0)
		prev[i] = n
	}
	for l := 0; l < layers; l++ {
		next := make([]string, width)
		for i := 0; i < width; i++ {
			n := fmt.Sprintf("L%d_%d", l, i)
			b.Add(n, "Sum", 2, 1, model.WithOperator("++"))
			b.Connect(prev[i], 0, n, 0)
			b.Connect(prev[(i+1)%width], 0, n, 1)
			next[i] = n
		}
		prev = next
	}
	// Collapse the last layer pairwise down to one outport so every
	// lattice node keeps exactly two lowered consumers.
	root := sumTree(b, "NTr", prev)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect(root, 0, "Out1", 0)
	return b.MustBuild()
}
