// Package benchmodels defines the benchmark suite: deterministic
// reconstructions of the paper's ten industrial models (Table 1) with the
// published actor and subsystem counts and the computation-vs-control mix
// the paper's analysis describes, plus the Figure-1 motivating model and
// the CSEV error-injection variants of the case study (§4).
//
// Each model combines a hand-written domain core (the characteristic
// structure: charging accumulators, dispatch switches, control loops) with
// deterministically synthesised filler logic that brings the model to the
// exact published size. All synthesis is seeded and reproducible.
package benchmodels

import (
	"fmt"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/types"
)

// Profile describes one benchmark model's published shape.
type Profile struct {
	Name        string
	Actors      int     // Table 1 #Actor
	Subsystems  int     // Table 1 #SubSystem
	ComputeFrac float64 // fraction of synthesised actors that are computational
	Seed        uint64
	Inports     int
	Outports    int
}

// sigRef is a pooled signal: an actor output usable as a wiring source.
type sigRef struct {
	actor string
	port  int
}

// synth carries synthesis state.
type synth struct {
	b      *model.Builder
	p      Profile
	n      int // actors added so far
	nameID int
	rng    uint64

	f64      []sigRef // scalar float64 signals
	i32      []sigRef // scalar int32 signals
	bool_    []sigRef // scalar boolean signals
	rareBool []sigRef // booleans that fire rarely (gate enabled blocks)

	// consumed tracks which float signals already feed something, so the
	// synthesiser can prefer dangling ones — keeping the model connected
	// the way real controllers are (almost every block influences an
	// output).
	consumed map[sigRef]bool

	subs []string
	subI int
}

func newSynth(p Profile) *synth {
	s := &synth{
		b:        model.NewBuilder(p.Name),
		p:        p,
		rng:      p.Seed*2862933555777941757 + 3037000493,
		consumed: make(map[sigRef]bool),
	}
	for i := 0; i < p.Subsystems; i++ {
		s.subs = append(s.subs, fmt.Sprintf("S%02d", i+1))
	}
	return s
}

// next returns a deterministic pseudo-random value in [0, n).
func (s *synth) next(n int) int {
	s.rng = actors.LCGNext(s.rng)
	return int((s.rng >> 33) % uint64(n))
}

// chance returns true with probability p.
func (s *synth) chance(p float64) bool {
	s.rng = actors.LCGNext(s.rng)
	return actors.LCGFloat(s.rng) < p
}

// name allocates a unique actor name with the given stem.
func (s *synth) name(stem string) string {
	s.nameID++
	return fmt.Sprintf("%s%d", stem, s.nameID)
}

// sub returns the next subsystem label round-robin, so every label is
// populated.
func (s *synth) sub() string {
	if len(s.subs) == 0 {
		return ""
	}
	l := s.subs[s.subI%len(s.subs)]
	s.subI++
	return l
}

// add registers an actor, counting it and placing it in a subsystem.
func (s *synth) add(name string, t model.ActorType, nIn, nOut int, opts ...model.ActorOpt) string {
	s.b.InSubsystem(s.sub())
	s.b.Add(name, t, nIn, nOut, opts...)
	s.n++
	return name
}

// addRoot registers an actor at the model root (for boundary actors).
func (s *synth) addRoot(name string, t model.ActorType, nIn, nOut int, opts ...model.ActorOpt) string {
	s.b.InSubsystem("")
	s.b.Add(name, t, nIn, nOut, opts...)
	s.n++
	return name
}

// pools

// pickF64 prefers dangling (not yet consumed) signals, falling back to a
// recency-biased random pick. Filler logic then forms one connected flow
// whose ancestry covers most of the model, so the outports wired at
// finish() observe nearly everything — like a real controller, where
// almost all blocks influence some output. The result is marked consumed.
func (s *synth) pickF64() sigRef {
	var ref sigRef
	switch {
	case s.chance(0.7) && s.anyDangling():
		ref = s.pickDangling()
	case len(s.f64) > 10 && s.chance(0.5):
		ref = s.f64[len(s.f64)-10+s.next(10)]
	default:
		ref = s.f64[s.next(len(s.f64))]
	}
	s.consumed[ref] = true
	return ref
}

func (s *synth) anyDangling() bool {
	for _, r := range s.f64 {
		if !s.consumed[r] {
			return true
		}
	}
	return false
}

func (s *synth) pickDangling() sigRef {
	var d []sigRef
	for _, r := range s.f64 {
		if !s.consumed[r] {
			d = append(d, r)
		}
	}
	return d[s.next(len(d))]
}
func (s *synth) pickI32() sigRef { return s.i32[s.next(len(s.i32))] }

// pickBool prefers dangling booleans for the same connectivity reason as
// pickF64.
func (s *synth) pickBool() sigRef {
	var d []sigRef
	for _, r := range s.bool_ {
		if !s.consumed[r] {
			d = append(d, r)
		}
	}
	var ref sigRef
	if len(d) > 0 && s.chance(0.8) {
		ref = d[s.next(len(d))]
	} else {
		ref = s.bool_[s.next(len(s.bool_))]
	}
	s.consumed[ref] = true
	return ref
}

// danglingBools counts booleans nothing consumes yet.
func (s *synth) danglingBools() int {
	n := 0
	for _, r := range s.bool_ {
		if !s.consumed[r] {
			n++
		}
	}
	return n
}

func (s *synth) pushF64(a string)  { s.f64 = append(s.f64, sigRef{a, 0}) }
func (s *synth) pushI32(a string)  { s.i32 = append(s.i32, sigRef{a, 0}) }
func (s *synth) pushBool(a string) { s.bool_ = append(s.bool_, sigRef{a, 0}) }

// boundary creates the model's inports (float stimuli) and outports
// (wired at finish).
func (s *synth) boundary() []string {
	for i := 0; i < s.p.Inports; i++ {
		name := s.addRoot(fmt.Sprintf("In%d", i+1), "Inport", 0, 1,
			model.WithOutKind(types.F64), model.WithParam("Port", fmt.Sprint(i+1)))
		s.pushF64(name)
	}
	outs := make([]string, s.p.Outports)
	for i := range outs {
		outs[i] = s.addRoot(fmt.Sprintf("Out%d", i+1), "Outport", 1, 0,
			model.WithParam("Port", fmt.Sprint(i+1)))
	}
	return outs
}

// fill synthesises actors until the exact published count is reached,
// maintaining a connectivity invariant as it goes: whenever too many
// signals dangle unconsumed, collector logic (OR-reduction over booleans,
// If-selection into the float flow, Sum-reduction over floats) folds them
// back in. The result is a model where — like a production controller —
// almost every block influences some model output.
func (s *synth) fill() {
	const tail = 16 // worst-case actors the final absorption can need
	for s.n < s.p.Actors-tail {
		if s.danglingBools() >= 8 && s.absorbBools() {
			continue
		}
		if s.danglingF64() >= 12 {
			s.absorbF64()
			continue
		}
		budget := s.p.Actors - tail - s.n
		if s.chance(s.p.ComputeFrac) {
			s.addCompute(budget)
		} else {
			s.addControl(budget)
		}
	}
	// Final absorption: every residual boolean, then the float leftovers.
	for s.danglingBools() > 0 && s.n < s.p.Actors {
		s.collIf()
	}
	for s.danglingF64() > 1 && s.n < s.p.Actors {
		s.absorbF64()
	}
	// Exact fill: pass-through gains extend the dangling trunk without
	// ever abandoning it, so exactly one dangling signal remains for the
	// outports.
	for s.n < s.p.Actors {
		s.padGain()
	}
}

// padGain appends one gain that always consumes the current dangling
// trunk (never a random signal), preserving the single-trunk invariant.
func (s *synth) padGain() {
	var src sigRef
	found := false
	for _, r := range s.f64 {
		if !s.consumed[r] {
			src = r
			found = true
		}
	}
	if !found {
		src = s.f64[len(s.f64)-1]
	}
	s.consumed[src] = true
	a := s.add(s.name("Pad"), "Gain", 1, 1, model.WithParam("Gain", "1.03125"))
	s.b.Connect(src.actor, src.port, a, 0)
	s.pushF64(a)
}

// danglingF64 counts float signals nothing consumes yet.
func (s *synth) danglingF64() int {
	n := 0
	for _, r := range s.f64 {
		if !s.consumed[r] {
			n++
		}
	}
	return n
}

// absorbBools OR-reduces up to eight dangling booleans and routes the
// result into the float flow through an If selector (2 actors).
func (s *synth) absorbBools() bool {
	var d []sigRef
	for _, r := range s.bool_ {
		if !s.consumed[r] {
			d = append(d, r)
		}
	}
	if len(d) < 2 {
		return false
	}
	k := len(d)
	if k > 8 {
		k = 8
	}
	a := s.add(s.name("CollB"), "Logic", k, 1, model.WithOperator("OR"))
	for p := 0; p < k; p++ {
		s.consumed[d[p]] = true
		s.b.Connect(d[p].actor, d[p].port, a, p)
	}
	s.pushBool(a)
	s.consumed[sigRef{a, 0}] = true
	iff := s.add(s.name("CollIf"), "If", 3, 1)
	x, y := s.pickF64(), s.pickF64()
	s.b.Connect(a, 0, iff, 0)
	s.b.Connect(x.actor, x.port, iff, 1)
	s.b.Connect(y.actor, y.port, iff, 2)
	s.pushF64(iff)
	return true
}

// collIf routes one residual boolean into the float flow (1 actor).
func (s *synth) collIf() {
	var en sigRef
	found := false
	for _, r := range s.bool_ {
		if !s.consumed[r] {
			en = r
			found = true
		}
	}
	if !found {
		return
	}
	s.consumed[en] = true
	a := s.add(s.name("CollIf"), "If", 3, 1)
	x, y := s.pickF64(), s.pickF64()
	s.b.Connect(en.actor, en.port, a, 0)
	s.b.Connect(x.actor, x.port, a, 1)
	s.b.Connect(y.actor, y.port, a, 2)
	s.pushF64(a)
}

// absorbF64 Sum-reduces up to eight dangling float signals (1 actor).
func (s *synth) absorbF64() {
	var d []sigRef
	for _, r := range s.f64 {
		if !s.consumed[r] {
			d = append(d, r)
		}
	}
	if len(d) < 2 {
		return
	}
	k := len(d)
	if k > 8 {
		k = 8
	}
	ops := ""
	for i := 0; i < k; i++ {
		ops += "+"
	}
	a := s.add(s.name("CollF"), "Sum", k, 1, model.WithOperator(ops))
	for p := 0; p < k; p++ {
		s.consumed[d[p]] = true
		s.b.Connect(d[p].actor, d[p].port, a, p)
	}
	s.pushF64(a)
}

// fillerMathOps keeps filler outputs bounded so synthesised value flows do
// not diverge to infinity under long random stimulation.
var fillerMathOps = []string{"sin", "cos", "tanh"}

// addCompute adds one computational actor (the kind the paper credits for
// the largest code-generation speedups).
func (s *synth) addCompute(budget int) {
	switch s.next(10) {
	case 0, 1: // Sum of 2-3 float signals
		nIn := 2 + s.next(2)
		var ops string
		if nIn == 2 {
			ops = []string{"++", "+-"}[s.next(2)]
		} else {
			ops = []string{"++-", "+-+", "+++"}[s.next(3)]
		}
		a := s.add(s.name("Add"), "Sum", nIn, 1, model.WithOperator(ops))
		for p := 0; p < nIn; p++ {
			src := s.pickF64()
			s.b.Connect(src.actor, src.port, a, p)
		}
		s.pushF64(a)
	case 2: // Product
		op := []string{"**", "*/"}[s.next(2)]
		a := s.add(s.name("Mul"), "Product", 2, 1, model.WithOperator(op))
		x, y := s.pickF64(), s.pickF64()
		s.b.Connect(x.actor, x.port, a, 0)
		s.b.Connect(y.actor, y.port, a, 1)
		s.pushF64(a)
	case 3: // Gain
		g := fmt.Sprintf("%g", []float64{0.5, 1.25, 2, -0.75, 3.5}[s.next(5)])
		a := s.add(s.name("Gain"), "Gain", 1, 1, model.WithParam("Gain", g))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	case 4: // Math unary
		op := fillerMathOps[s.next(len(fillerMathOps))]
		a := s.add(s.name("Fn"), "Math", 1, 1, model.WithOperator(op))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	case 5: // Bias
		a := s.add(s.name("Bias"), "Bias", 1, 1, model.WithParam("Bias", "0.125"))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	case 6: // Abs
		a := s.add(s.name("Abs"), "Abs", 1, 1)
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	case 7: // leaky accumulator: Gain(0.99) closed through UnitDelay
		if budget < 3 {
			s.addSimpleCompute()
			return
		}
		sum := s.add(s.name("AccS"), "Sum", 2, 1, model.WithOperator("++"))
		gn := s.add(s.name("AccG"), "Gain", 1, 1, model.WithParam("Gain", "0.96875"))
		dl := s.add(s.name("AccD"), "UnitDelay", 1, 1)
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, sum, 0)
		s.b.Connect(dl, 0, sum, 1)
		s.b.Connect(sum, 0, gn, 0)
		s.b.Connect(gn, 0, dl, 0)
		s.pushF64(sum)
		s.pushF64(gn)
	case 8: // first-order filter
		a := s.add(s.name("Filt"), "DiscreteFilter", 1, 1,
			model.WithParam("A", "0.875"), model.WithParam("B", "0.125"))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	case 9: // Polynomial
		a := s.add(s.name("Poly"), "Polynomial", 1, 1, model.WithParam("Coeffs", "[0.01 -0.2 1.5 0.25]"))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	}
}

// addSimpleCompute is the budget-1 fallback.
func (s *synth) addSimpleCompute() {
	a := s.add(s.name("Gain"), "Gain", 1, 1, model.WithParam("Gain", "1.5"))
	src := s.pickF64()
	s.b.Connect(src.actor, src.port, a, 0)
	s.pushF64(a)
}

// addControl adds one control-logic actor (branching / boolean logic),
// which the paper notes benefits less from compiled execution.
func (s *synth) addControl(budget int) {
	if len(s.bool_) < 2 {
		// Seed the boolean pool first.
		s.addComparator()
		return
	}
	switch s.next(11) {
	case 0: // Switch
		a := s.add(s.name("Sw"), "Switch", 3, 1,
			model.WithOperator(">="), model.WithParam("Threshold", "0"))
		x, c, y := s.pickF64(), s.pickF64(), s.pickF64()
		s.b.Connect(x.actor, x.port, a, 0)
		s.b.Connect(c.actor, c.port, a, 1)
		s.b.Connect(y.actor, y.port, a, 2)
		s.pushF64(a)
	case 1: // Logic over boolean pool
		nIn := 2 + s.next(2)
		op := []string{"AND", "OR", "XOR", "NAND"}[s.next(4)]
		a := s.add(s.name("Lg"), "Logic", nIn, 1, model.WithOperator(op))
		for p := 0; p < nIn; p++ {
			src := s.pickBool()
			s.b.Connect(src.actor, src.port, a, p)
		}
		s.pushBool(a)
	case 2:
		if s.danglingBools() >= 3 {
			// Plenty of unconsumed conditions: absorb them with logic
			// instead of minting more.
			nIn := 2 + s.next(2)
			op := []string{"AND", "OR", "XOR"}[s.next(3)]
			a := s.add(s.name("Lg"), "Logic", nIn, 1, model.WithOperator(op))
			for p := 0; p < nIn; p++ {
				src := s.pickBool()
				s.b.Connect(src.actor, src.port, a, p)
			}
			s.pushBool(a)
			return
		}
		s.addComparator()
	case 3: // If selection driven by a boolean
		a := s.add(s.name("If"), "If", 3, 1)
		c, x, y := s.pickBool(), s.pickF64(), s.pickF64()
		s.b.Connect(c.actor, c.port, a, 0)
		s.b.Connect(x.actor, x.port, a, 1)
		s.b.Connect(y.actor, y.port, a, 2)
		s.pushF64(a)
	case 4: // Saturation
		a := s.add(s.name("Sat"), "Saturation", 1, 1,
			model.WithParam("Min", "-100"), model.WithParam("Max", "100"))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	case 5: // Relay
		a := s.add(s.name("Rly"), "Relay", 1, 1,
			model.WithParam("OnPoint", "1"), model.WithParam("OffPoint", "-1"),
			model.WithParam("OnValue", "1"), model.WithParam("OffValue", "0"))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	case 6: // DeadZone
		a := s.add(s.name("Dz"), "DeadZone", 1, 1,
			model.WithParam("Start", "-0.5"), model.WithParam("End", "0.5"))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushF64(a)
	case 7: // MultiportSwitch driven by an int index
		if len(s.i32) == 0 || budget < 2 {
			s.addComparator()
			return
		}
		a := s.add(s.name("Mps"), "MultiportSwitch", 4, 1)
		idx := s.pickI32()
		s.b.Connect(idx.actor, idx.port, a, 0)
		for p := 1; p <= 3; p++ {
			src := s.pickF64()
			s.b.Connect(src.actor, src.port, a, p)
		}
		s.pushF64(a)
	case 8: // rare-event threshold: this decision's true outcome needs
		// many random samples, so coverage keeps climbing with step count
		// — the effect Table 3 measures.
		thr := []string{"99.9", "99.99", "99.999", "-99.9", "-99.99"}[s.next(5)]
		op := ">"
		if thr[0] == '-' {
			op = "<"
		}
		a := s.add(s.name("Rare"), "CompareToConstant", 1, 1,
			model.WithOperator(op), model.WithParam("Constant", thr))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushBool(a)
		s.rareBool = append(s.rareBool, sigRef{a, 0})
	case 9: // time-gated switch: its second branch executes only after a
		// long horizon (Step source flips late), again rewarding engines
		// that execute more steps per unit time.
		if budget < 2 {
			s.addComparator()
			return
		}
		stepTime := []string{"5000", "50000", "500000", "5000000"}[s.next(4)]
		gate := s.add(s.name("Gate"), "Step", 0, 1,
			model.WithParam("StepTime", stepTime),
			model.WithParam("Before", "0"), model.WithParam("After", "1"))
		sw := s.add(s.name("GSw"), "Switch", 3, 1,
			model.WithOperator("~=0"))
		x, y := s.pickF64(), s.pickF64()
		s.b.Connect(x.actor, x.port, sw, 0)
		s.b.Connect(gate, 0, sw, 1)
		s.b.Connect(y.actor, y.port, sw, 2)
		s.pushF64(sw)
	case 10: // conditionally executed block (enabled-subsystem shape):
		// the gated actors only execute — and only count as covered —
		// while their enable signal is true, which is what keeps the
		// Table 3 actor-coverage column climbing with step count.
		if budget < 2 {
			s.addComparator()
			return
		}
		var en sigRef
		if len(s.rareBool) > 0 && s.chance(0.6) {
			en = s.rareBool[s.next(len(s.rareBool))]
		} else {
			en = s.pickBool()
		}
		g := s.add(s.name("EnG"), "Gain", 1, 1,
			model.WithParam("Gain", "1.5"), model.WithParam("EnabledBy", en.actor))
		ig := s.add(s.name("EnI"), "DiscreteIntegrator", 1, 1,
			model.WithParam("Gain", "0.01"), model.WithParam("EnabledBy", en.actor))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, g, 0)
		s.b.Connect(g, 0, ig, 0)
		s.pushF64(g)
		s.pushF64(ig)
	}
}

// addComparator seeds the boolean pool from a float signal.
func (s *synth) addComparator() {
	if s.chance(0.5) {
		a := s.add(s.name("Cmp"), "CompareToZero", 1, 1,
			model.WithOperator([]string{">", ">=", "<"}[s.next(3)]))
		src := s.pickF64()
		s.b.Connect(src.actor, src.port, a, 0)
		s.pushBool(a)
		return
	}
	a := s.add(s.name("Rel"), "RelationalOperator", 2, 1,
		model.WithOperator([]string{">", "<=", ">="}[s.next(3)]))
	x, y := s.pickF64(), s.pickF64()
	s.b.Connect(x.actor, x.port, a, 0)
	s.b.Connect(y.actor, y.port, a, 1)
	s.pushBool(a)
}

// finish wires the outports to the remaining dangling signals first (so
// as few chains as possible end unobserved), then to the pool tail, and
// builds the model.
func (s *synth) finish(outs []string) *model.Model {
	var dangling []sigRef
	for _, r := range s.f64 {
		if !s.consumed[r] {
			dangling = append(dangling, r)
		}
	}
	for i, out := range outs {
		var src sigRef
		if i < len(dangling) {
			src = dangling[len(dangling)-1-i] // latest dangling first
		} else {
			src = s.f64[len(s.f64)-1-(i%len(s.f64))]
		}
		s.consumed[src] = true
		s.b.Connect(src.actor, src.port, out, 0)
	}
	return s.b.MustBuild()
}
