package benchmodels

import (
	"testing"

	"accmos/internal/actors"
	"accmos/internal/opt/partition"
)

// The partition shapes exist to exercise the cutter: both must accept
// 2- and 4-way cuts with near-ideal balance, or the partition benchmark
// measures nothing.
func TestPartShapesCut(t *testing.T) {
	for _, name := range PartNames() {
		m := MustBuildPart(name)
		if PartDescription(name) == "" {
			t.Errorf("%s has no description", name)
		}
		c, err := actors.Compile(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, k := range []int{2, 4} {
			p := partition.Build(c, k)
			if p.Usable != k {
				t.Errorf("%s %d-way: usable %d (%s)", name, k, p.Usable, p.Declined)
				continue
			}
			if p.Balance > 1.3 {
				t.Errorf("%s %d-way: balance %.2f too skewed", name, k, p.Balance)
			}
			t.Logf("%s %d-way: cut %d, balance %.2f", name, k, p.CutEdges, p.Balance)
		}
	}
}

func TestBuildPartUnknown(t *testing.T) {
	if _, err := BuildPart("NOPE"); err == nil {
		t.Fatal("unknown shape must error")
	}
}
