// Package rapid implements the SSE Rapid Accelerator mode substitute: the
// model is fully precompiled into specialized closures over unboxed
// machine registers (a flat uint64 payload array), with host
// synchronisation batched instead of per-step. As in the real Rapid
// Accelerator mode, runtime diagnostics, coverage collection, and signal
// monitoring are unavailable. Actor types without a specialized template
// fall back to a boxed bridge around the registry's Eval, guaranteeing
// bit-identical semantics with the other engines at reduced speed.
package rapid

import (
	"fmt"
	"math"
	"sync"
	"time"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// syncBatch is the host-transfer interval in steps, the rapid-mode
// analogue of Accelerator mode's per-step exchange.
const syncBatch = 4096

// Engine is the precompiled rapid simulator.
type Engine struct {
	c *actors.Compiled

	// Scalar signal registers: canonical uint64 payloads (signed values
	// sign-extended, floats as IEEE bits — float32 as 32-bit bits).
	bits []uint64
	// Vector signal registers, boxed.
	vals []types.Value

	scalarSlot map[model.PortRef]int // -1 entries live in vectorSlot
	vectorSlot map[model.PortRef]int

	slotKind map[model.PortRef]types.Kind

	steps   []func(step int64) // eval closures, execution order
	updates []func(step int64) // state-commit closures

	// outHash describes root outports for hashing.
	outHash []func(h uint64) uint64

	// host sync
	hostMu  sync.Mutex
	hostBuf []uint64

	streams []*testcase.Stream

	// bridge state for fallback actors
	ecs    []actors.EvalCtx
	states []actors.State

	stores     map[string]types.Value
	storeKinds map[string]types.Kind

	resets []func()

	forceBridge          bool
	specialized, bridged int

	// progress reporting (SetProgress)
	progress      func(obs.Snapshot)
	progressEvery time.Duration
}

// SetProgress enables periodic progress snapshots during Run/RunFor:
// every interval (obs.DefaultInterval when zero) the callback — which may
// be nil to only record the result Timeline — receives the live step
// count. Rapid mode has no coverage or diagnostics, so snapshots report
// Coverage -1 and Diags 0.
func (e *Engine) SetProgress(every time.Duration, fn func(obs.Snapshot)) {
	e.progressEvery = every
	e.progress = fn
}

// encode converts a scalar boxed value to its canonical register payload.
func encode(v types.Value) uint64 {
	switch {
	case v.Kind == types.Bool:
		if v.B {
			return 1
		}
		return 0
	case v.Kind.IsSigned():
		return uint64(v.I)
	case v.Kind.IsUnsigned():
		return v.U
	case v.Kind == types.F32:
		return uint64(math.Float32bits(float32(v.F)))
	default:
		return math.Float64bits(v.F)
	}
}

// decode converts a register payload back to a boxed value of kind k.
func decode(bits uint64, k types.Kind) types.Value {
	switch {
	case k == types.Bool:
		return types.Value{Kind: k, B: bits != 0}
	case k.IsSigned():
		return types.Value{Kind: k, I: int64(bits)}
	case k.IsUnsigned():
		return types.Value{Kind: k, U: bits}
	case k == types.F32:
		return types.Value{Kind: k, F: float64(math.Float32frombits(uint32(bits)))}
	default:
		return types.Value{Kind: k, F: math.Float64frombits(bits)}
	}
}

// truthy evaluates boolean conversion on a register payload.
func truthy(bits uint64, k types.Kind) bool {
	switch {
	case k.IsFloat():
		return decode(bits, k).F != 0
	default:
		return bits != 0
	}
}

// New precompiles a rapid engine for the model.
func New(c *actors.Compiled) (*Engine, error) { return build(c, false) }

// NewBridgeOnly compiles every actor through the boxed fallback bridge —
// the ablation isolating how much the unboxed register specialization
// contributes to Rapid-Accelerator speed.
func NewBridgeOnly(c *actors.Compiled) (*Engine, error) { return build(c, true) }

func build(c *actors.Compiled, forceBridge bool) (*Engine, error) {
	e := &Engine{
		forceBridge: forceBridge,
		c:           c,
		scalarSlot:  make(map[model.PortRef]int),
		vectorSlot:  make(map[model.PortRef]int),
		slotKind:    make(map[model.PortRef]types.Kind),
		stores:      make(map[string]types.Value),
		storeKinds:  make(map[string]types.Kind),
	}
	for _, info := range c.Order {
		for p := range info.Actor.Outputs {
			ref := model.PortRef{Actor: info.Actor.Name, Port: p}
			e.slotKind[ref] = info.OutKinds[p]
			if info.OutWidths[p] > 1 {
				e.vectorSlot[ref] = len(e.vals)
				e.vals = append(e.vals, types.Value{})
			} else {
				e.scalarSlot[ref] = len(e.bits)
				e.bits = append(e.bits, 0)
			}
		}
	}
	for _, ds := range c.DataStores {
		e.storeKinds[actors.StoreName(ds)] = actors.StoreKind(ds)
	}
	e.ecs = make([]actors.EvalCtx, len(c.Order))
	e.states = make([]actors.State, len(c.Order))

	for i, info := range c.Order {
		switch info.Actor.Type {
		case "DataStoreRead", "DataStoreWrite":
			if _, ok := e.storeKinds[actors.StoreName(info)]; !ok {
				return nil, fmt.Errorf("rapid: %s references unknown data store %q",
					info.Actor.Name, actors.StoreName(info))
			}
		}
		if err := e.compileActor(i, info); err != nil {
			return nil, err
		}
	}
	// Output hashing closures.
	for _, info := range c.Outports {
		src := info.InSrc[0]
		k := e.slotKind[src]
		if idx, ok := e.scalarSlot[src]; ok {
			e.outHash = append(e.outHash, func(h uint64) uint64 {
				return simresult.HashU64(h, e.bits[idx])
			})
		} else {
			vi := e.vectorSlot[src]
			e.outHash = append(e.outHash, func(h uint64) uint64 {
				return hashBoxed(h, e.vals[vi])
			})
		}
		_ = k
	}
	e.hostBuf = make([]uint64, len(c.Outports))
	return e, nil
}

// hashBoxed mirrors the interpreter's value hashing for vector outputs.
func hashBoxed(h uint64, v types.Value) uint64 {
	if v.Elems != nil {
		for _, el := range v.Elems {
			h = hashBoxed(h, el)
		}
		return h
	}
	return simresult.HashU64(h, encode(v))
}

// Stats reports how many actors were specialized vs bridged (for the
// ablation benchmarks).
func (e *Engine) Stats() (specialized, bridged int) { return e.specialized, e.bridged }

// DSRead implements actors.DataStoreAccess for bridged actors.
func (e *Engine) DSRead(name string) types.Value { return e.stores[name] }

// DSWrite implements actors.DataStoreAccess for bridged actors.
func (e *Engine) DSWrite(name string, v types.Value) {
	k, ok := e.storeKinds[name]
	if !ok {
		return
	}
	cv, _ := types.Convert(v, k)
	e.stores[name] = cv
}

// Run simulates for the given number of steps.
func (e *Engine) Run(tcs *testcase.Set, steps int64) (*simresult.Results, error) {
	return e.run(tcs, steps, 0)
}

// RunFor simulates until the wall-clock budget elapses.
func (e *Engine) RunFor(tcs *testcase.Set, budget time.Duration) (*simresult.Results, error) {
	return e.run(tcs, 1<<62, budget)
}

func (e *Engine) run(tcs *testcase.Set, maxSteps int64, budget time.Duration) (*simresult.Results, error) {
	if len(tcs.Sources) != len(e.c.Inports) {
		return nil, fmt.Errorf("rapid: %d test-case sources for %d inports", len(tcs.Sources), len(e.c.Inports))
	}
	if err := tcs.Validate(); err != nil {
		return nil, err
	}
	// Reset.
	for i := range e.bits {
		e.bits[i] = 0
	}
	for i := range e.vals {
		e.vals[i] = types.Value{}
	}
	for i, info := range e.c.Order {
		e.states[i] = actors.State{}
		if info.Spec.Init != nil {
			info.Spec.Init(info, &e.states[i])
		}
	}
	for _, ds := range e.c.DataStores {
		e.stores[actors.StoreName(ds)] = actors.StoreInit(ds)
	}
	for _, r := range e.resets {
		r()
	}
	e.streams = tcs.Streams()

	var rep *obs.Reporter
	if e.progress != nil || e.progressEvery > 0 {
		rep = obs.NewReporter(e.c.Model.Name, "SSErac", e.progressEvery, e.progress)
	}
	noCoverage := func() (float64, int64) { return -1, 0 }

	hash := uint64(simresult.FNVOffset)
	start := time.Now()
	var step int64
	for step = 0; step < maxSteps; step++ {
		if budget > 0 && step%1024 == 0 && time.Since(start) >= budget {
			break
		}
		if rep != nil && step%1024 == 0 {
			rep.MaybeTick(step, noCoverage)
		}
		for _, f := range e.steps {
			f(step)
		}
		for _, f := range e.updates {
			f(step)
		}
		for _, f := range e.outHash {
			hash = f(hash)
		}
		if step%syncBatch == syncBatch-1 {
			e.hostTransfer()
		}
	}
	e.hostTransfer()
	elapsed := time.Since(start)
	res := &simresult.Results{
		Model:      e.c.Model.Name,
		Engine:     "SSErac",
		Steps:      step,
		ExecNanos:  elapsed.Nanoseconds(),
		OutputHash: hash,
	}
	if rep != nil {
		rep.Final(step, -1, 0)
		res.Timeline = rep.Timeline
	}
	return res, nil
}

// hostTransfer copies the current root outputs to the host buffer under
// the host lock — the batched data exchange with the supervising tool.
func (e *Engine) hostTransfer() {
	e.hostMu.Lock()
	for i, info := range e.c.Outports {
		src := info.InSrc[0]
		if idx, ok := e.scalarSlot[src]; ok {
			e.hostBuf[i] = e.bits[idx]
		}
	}
	e.hostMu.Unlock()
}
