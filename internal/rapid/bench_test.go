package rapid_test

import (
	"fmt"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/rapid"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// BenchmarkRapidPerActorStep reports the Rapid-Accelerator cost on a
// fully-specialized chain (unboxed registers, batched sync) — the number
// to compare against the interp package's per-actor-step benchmarks and
// the root Table 2 AccMoS bench.
func BenchmarkRapidPerActorStep(b *testing.B) {
	const n = 100
	mb := model.NewBuilder("CHAIN")
	mb.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	prev := "In"
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("G%d", i)
		mb.Add(name, "Gain", 1, 1, model.WithParam("Gain", "1.0000001"))
		mb.Wire(prev, name, 0)
		prev = name
	}
	mb.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	mb.Wire(prev, "Out", 0)
	c, err := actors.Compile(mb.MustBuild())
	if err != nil {
		b.Fatal(err)
	}
	e, err := rapid.New(c)
	if err != nil {
		b.Fatal(err)
	}
	if spec, bridged := e.Stats(); bridged != 0 {
		b.Fatalf("chain should fully specialize (spec %d, bridged %d)", spec, bridged)
	}
	set := testcase.NewRandomSet(1, 1, -1, 1)
	const steps = 20000
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(set, steps)
		if err != nil {
			b.Fatal(err)
		}
		total += res.ExecNanos
	}
	b.ReportMetric(float64(total)/float64(b.N)/float64(steps)/float64(n+2), "ns/actor-step")
}
