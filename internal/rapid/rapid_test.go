package rapid_test

import (
	"fmt"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/interp"
	"accmos/internal/model"
	"accmos/internal/rapid"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// The fast engines carry no instrumentation, so their correctness oracle
// is hash equality against the reference interpreter on the same streams.

func compileModel(t *testing.T, m *model.Model) *actors.Compiled {
	t.Helper()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// crossCheck runs SSE, SSEac and SSErac on the same model/streams and
// requires identical output hashes.
func crossCheck(t *testing.T, c *actors.Compiled, set *testcase.Set, steps int64) {
	t.Helper()
	sse, err := interp.New(c, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := sse.Run(set, steps)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := interp.NewAccel(c)
	if err != nil {
		t.Fatal(err)
	}
	acRes, err := ac.Run(set, steps)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rapid.New(c)
	if err != nil {
		t.Fatal(err)
	}
	rcRes, err := rc.Run(set, steps)
	if err != nil {
		t.Fatal(err)
	}
	if acRes.OutputHash != refRes.OutputHash {
		t.Errorf("SSEac hash %x != SSE hash %x", acRes.OutputHash, refRes.OutputHash)
	}
	if rcRes.OutputHash != refRes.OutputHash {
		t.Errorf("SSErac hash %x != SSE hash %x", rcRes.OutputHash, refRes.OutputHash)
	}
	if acRes.Steps != steps || rcRes.Steps != steps {
		t.Errorf("step counts: ac %d rac %d want %d", acRes.Steps, rcRes.Steps, steps)
	}
}

func TestFastEnginesMatchSSEMixedModel(t *testing.T) {
	for _, k := range []types.Kind{types.I16, types.I32, types.U32, types.F32, types.F64} {
		k := k
		t.Run(k.GoType(), func(t *testing.T) {
			t.Parallel()
			b := model.NewBuilder("MIX" + k.GoType())
			b.Add("InA", "Inport", 0, 1, model.WithOutKind(k), model.WithParam("Port", "1"))
			b.Add("InB", "Inport", 0, 1, model.WithOutKind(k), model.WithParam("Port", "2"))
			b.Add("Sm", "Sum", 3, 1, model.WithOperator("++-"))
			b.Add("Pr", "Product", 2, 1, model.WithOperator("*/"))
			b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "3"))
			b.Add("Bi", "Bias", 1, 1, model.WithParam("Bias", "7"))
			b.Add("D", "UnitDelay", 1, 1)
			b.Add("Cz", "CompareToZero", 1, 1, model.WithOperator(">"))
			b.Add("Cc", "CompareToConstant", 1, 1, model.WithOperator("<"), model.WithParam("Constant", "20"))
			b.Add("Rel", "RelationalOperator", 2, 1, model.WithOperator(">="))
			b.Add("Lg", "Logic", 3, 1, model.WithOperator("AND"))
			b.Add("Sw", "Switch", 3, 1, model.WithOperator(">="), model.WithParam("Threshold", "1"))
			// Bridged types mixed in: Saturation, Abs, Math.
			satMin := "-50"
			if k.IsUnsigned() {
				satMin = "5"
			}
			b.Add("Sat", "Saturation", 1, 1, model.WithParam("Min", satMin), model.WithParam("Max", "50"))
			b.Add("Ab", "Abs", 1, 1)
			b.Wire("InA", "Sm", 0)
			b.Wire("InB", "Sm", 1)
			b.Wire("D", "Sm", 2)
			b.Wire("Sm", "D", 0)
			b.Wire("InA", "Pr", 0)
			b.Wire("InB", "Pr", 1)
			b.Wire("Sm", "G", 0)
			b.Wire("G", "Bi", 0)
			b.Wire("InA", "Cz", 0)
			b.Wire("InB", "Cc", 0)
			b.Wire("InA", "Rel", 0)
			b.Wire("InB", "Rel", 1)
			b.Wire("Cz", "Lg", 0)
			b.Wire("Cc", "Lg", 1)
			b.Wire("Rel", "Lg", 2)
			b.Wire("Bi", "Sw", 0)
			b.Wire("InB", "Sw", 1)
			b.Wire("Pr", "Sw", 2)
			b.Wire("Sw", "Sat", 0)
			b.Wire("InB", "Ab", 0)
			n := 0
			for _, src := range []string{"Sm", "Pr", "Sw", "Lg", "Sat", "Ab"} {
				out := fmt.Sprintf("Out%d", n)
				b.Add(out, "Outport", 1, 0, model.WithParam("Port", fmt.Sprint(n+1)))
				b.Wire(src, out, 0)
				n++
			}
			c := compileModel(t, b.MustBuild())
			lo := -100.0
			if k.IsUnsigned() {
				lo = 0
			}
			crossCheck(t, c, testcase.NewRandomSet(2, 61, lo, 100), 4000)
		})
	}
}

func TestRapidSpecializationCoverage(t *testing.T) {
	// The mixed model must actually exercise the specialized templates —
	// otherwise the rapid engine silently degrades to bridge-everything.
	b := model.NewBuilder("SPEC")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("C", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "2"))
	b.Add("Sm", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "1.5"))
	b.Add("D", "UnitDelay", 1, 1)
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Wire("In", "Sm", 0)
	b.Wire("C", "Sm", 1)
	b.Wire("Sm", "G", 0)
	b.Wire("G", "D", 0)
	b.Wire("D", "Out", 0)
	c := compileModel(t, b.MustBuild())
	e, err := rapid.New(c)
	if err != nil {
		t.Fatal(err)
	}
	spec, bridged := e.Stats()
	if spec < 5 {
		t.Errorf("specialized %d actors, want >= 5 (In, C, Sm, G, D)", spec)
	}
	if bridged != 0 {
		t.Errorf("bridged %d actors, want 0", bridged)
	}
}

func TestRapidSourceCountMismatch(t *testing.T) {
	b := model.NewBuilder("M")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Wire("In", "Out", 0)
	c := compileModel(t, b.MustBuild())
	e, err := rapid.New(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&testcase.Set{}, 10); err == nil {
		t.Fatal("source mismatch must error")
	}
	ac, err := interp.NewAccel(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Run(&testcase.Set{}, 10); err == nil {
		t.Fatal("accel source mismatch must error")
	}
}

func TestFastEnginesDataStores(t *testing.T) {
	b := model.NewBuilder("DS")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1"))
	b.Add("DSM", "DataStoreMemory", 0, 0, model.WithParam("Store", "q"), model.WithOutKind(types.I32)).
		Add("Rd", "DataStoreRead", 0, 1, model.WithParam("Store", "q"), model.WithOutKind(types.I32)).
		Add("Add", "Sum", 2, 1, model.WithOperator("++")).
		Add("Wr", "DataStoreWrite", 1, 0, model.WithParam("Store", "q")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("Rd", "Add", 0).
		Wire("In", "Add", 1).
		Wire("Add", "Wr", 0).
		Wire("Add", "Out", 0)
	c := compileModel(t, b.MustBuild())
	crossCheck(t, c, testcase.NewRandomSet(1, 71, -100, 100), 2000)
}

func TestRapidRunForBudget(t *testing.T) {
	b := model.NewBuilder("B")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"))
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Chain("In", "G", "Out")
	c := compileModel(t, b.MustBuild())
	e, err := rapid.New(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunFor(testcase.NewRandomSet(1, 3, 0, 1), 20_000_000) // 20ms
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps within budget")
	}
}

func TestBridgeOnlyMatchesSpecialized(t *testing.T) {
	// The ablation build must be semantically identical to the specialized
	// build — only slower.
	b := model.NewBuilder("ABL")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1"))
	b.Add("Sm", "Sum", 2, 1, model.WithOperator("+-"))
	b.Add("D", "UnitDelay", 1, 1)
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "3"))
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Wire("In", "Sm", 0)
	b.Wire("D", "Sm", 1)
	b.Wire("Sm", "D", 0)
	b.Wire("Sm", "G", 0)
	b.Wire("G", "Out", 0)
	c := compileModel(t, b.MustBuild())
	set := testcase.NewRandomSet(1, 21, -1000, 1000)
	spec, err := rapid.New(c)
	if err != nil {
		t.Fatal(err)
	}
	bridge, err := rapid.NewBridgeOnly(c)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := spec.Stats(); n == 0 {
		t.Error("specialized build specialized nothing")
	}
	if _, n := bridge.Stats(); n == 0 {
		t.Error("bridge-only build bridged nothing")
	}
	rs, err := spec.Run(set, 3000)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := bridge.Run(set, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if rs.OutputHash != rb.OutputHash {
		t.Errorf("bridge-only hash %x != specialized %x", rb.OutputHash, rs.OutputHash)
	}
}
