package rapid

import (
	"math"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/types"
)

// compileActor translates one actor into closures. Specialized templates
// cover the hot scalar cases; everything else goes through the boxed
// bridge, which reuses the registry's Eval/Update and is therefore exact
// by construction.
func (e *Engine) compileActor(i int, info *actors.Info) error {
	switch info.Actor.Type {
	case "Outport", "Terminator", "Scope", "Display", "ToWorkspace", "DataStoreMemory":
		return nil // sinks: no computation (Outport is hashed by the run loop)
	}
	if e.forceBridge || info.Gated() {
		// Conditionally executed actors run through the bridge with an
		// enable gate; the specialization templates stay gate-free.
		e.bridged++
		e.bridge(i, info)
		return nil
	}
	if fn, ufn, ok := e.specialize(i, info); ok {
		e.specialized++
		if fn != nil {
			e.steps = append(e.steps, fn)
		}
		if ufn != nil {
			e.updates = append(e.updates, ufn)
		}
		return nil
	}
	e.bridged++
	e.bridge(i, info)
	return nil
}

// scalarIn returns the register index of input p when it is scalar and of
// kind k (the same-kind fast path), or ok=false.
func (e *Engine) scalarIn(info *actors.Info, p int, k types.Kind) (int, bool) {
	if info.InWidths[p] > 1 || info.InKinds[p] != k {
		return 0, false
	}
	idx, ok := e.scalarSlot[info.InSrc[p]]
	return idx, ok
}

// anyScalarIn returns the register index and kind of input p when scalar.
func (e *Engine) anyScalarIn(info *actors.Info, p int) (int, types.Kind, bool) {
	if info.InWidths[p] > 1 {
		return 0, 0, false
	}
	idx, ok := e.scalarSlot[info.InSrc[p]]
	return idx, info.InKinds[p], ok
}

func (e *Engine) outReg(info *actors.Info) (int, bool) {
	if info.OutWidth() > 1 {
		return 0, false
	}
	idx, ok := e.scalarSlot[model.PortRef{Actor: info.Actor.Name, Port: 0}]
	return idx, ok
}

// allSameKindScalar gathers all input registers when every input is a
// scalar of kind k.
func (e *Engine) allSameKindScalar(info *actors.Info, k types.Kind) ([]int, bool) {
	refs := make([]int, info.NumIn())
	for p := range refs {
		idx, ok := e.scalarIn(info, p, k)
		if !ok {
			return nil, false
		}
		refs[p] = idx
	}
	return refs, true
}

// specialize builds an unboxed closure when a template applies.
func (e *Engine) specialize(i int, info *actors.Info) (fn, ufn func(int64), ok bool) {
	k := info.OutKind()
	o, haveOut := e.outReg(info)

	switch info.Actor.Type {
	case "Constant":
		if !haveOut {
			vi := e.vectorSlot[model.PortRef{Actor: info.Actor.Name, Port: 0}]
			v := info.Aux.(types.Value)
			e.resets = append(e.resets, func() { e.vals[vi] = v })
			return nil, nil, true
		}
		bitsVal := encode(info.Aux.(types.Value))
		e.resets = append(e.resets, func() { e.bits[o] = bitsVal })
		return nil, nil, true

	case "Inport":
		if !haveOut {
			return nil, nil, false
		}
		si := -1
		for idx, ip := range e.c.Inports {
			if ip == info {
				si = idx
			}
		}
		if si < 0 {
			return nil, nil, false
		}
		kk := k
		return func(step int64) {
			v, _ := types.Convert(types.FloatVal(types.F64, e.streams[si].At(step)), kk)
			e.bits[o] = encode(v)
		}, nil, true

	case "Sum":
		if !haveOut || k == types.Bool {
			return nil, nil, false
		}
		refs, sameKind := e.allSameKindScalar(info, k)
		if !sameKind {
			return nil, nil, false
		}
		signs := info.Aux.(string)
		return e.sumClosure(k, o, refs, signs), nil, true

	case "Product":
		if !haveOut || k == types.Bool {
			return nil, nil, false
		}
		refs, sameKind := e.allSameKindScalar(info, k)
		if !sameKind {
			return nil, nil, false
		}
		signs := info.Aux.(string)
		return e.productClosure(k, o, refs, signs), nil, true

	case "Gain", "Bias":
		if !haveOut || k == types.Bool {
			return nil, nil, false
		}
		in, sameKind := e.scalarIn(info, 0, k)
		if !sameKind {
			return nil, nil, false
		}
		c := info.Aux.(types.Value)
		mul := info.Actor.Type == "Gain"
		return e.affineClosure(k, o, in, c, mul), nil, true

	case "UnitDelay", "Memory":
		if !haveOut {
			return nil, nil, false
		}
		in, sameKind := e.scalarIn(info, 0, k)
		if !sameKind {
			return nil, nil, false
		}
		s := len(e.bits)
		e.bits = append(e.bits, 0)
		init := encode(info.Aux.(types.Value))
		e.resets = append(e.resets, func() { e.bits[s] = init })
		return func(int64) { e.bits[o] = e.bits[s] },
			func(int64) { e.bits[s] = e.bits[in] },
			true

	case "Switch":
		if !haveOut {
			return nil, nil, false
		}
		a, okA := e.scalarIn(info, 0, k)
		b, okB := e.scalarIn(info, 2, k)
		ci, ck, okC := e.anyScalarIn(info, 1)
		if !okA || !okB || !okC {
			return nil, nil, false
		}
		// The threshold lives in the actors package's private aux; re-read
		// it from the validated parameter instead.
		thr := 0.0
		if s := info.Actor.Param("Threshold", "0"); s != "" {
			v, err := types.ParseValue(types.F64, s)
			if err == nil {
				thr = v.F
			}
		}
		op := info.Operator
		return func(int64) {
			cf := decode(e.bits[ci], ck).AsFloat()
			var pass bool
			switch op {
			case ">=":
				pass = cf >= thr
			case ">":
				pass = cf > thr
			default: // "~=0"
				pass = cf != 0
			}
			if pass {
				e.bits[o] = e.bits[a]
			} else {
				e.bits[o] = e.bits[b]
			}
		}, nil, true

	case "Logic":
		if !haveOut {
			return nil, nil, false
		}
		n := info.NumIn()
		refs := make([]int, n)
		kinds := make([]types.Kind, n)
		for p := 0; p < n; p++ {
			idx, kk, okIn := e.anyScalarIn(info, p)
			if !okIn {
				return nil, nil, false
			}
			refs[p] = idx
			kinds[p] = kk
		}
		op := info.Operator
		return func(int64) {
			out := evalLogic(op, func(j int) bool { return truthy(e.bits[refs[j]], kinds[j]) }, n)
			if out {
				e.bits[o] = 1
			} else {
				e.bits[o] = 0
			}
		}, nil, true

	case "RelationalOperator":
		if !haveOut {
			return nil, nil, false
		}
		a, ka, okA := e.anyScalarIn(info, 0)
		b, kb, okB := e.anyScalarIn(info, 1)
		if !okA || !okB {
			return nil, nil, false
		}
		op := info.Operator
		return func(int64) {
			c := types.Compare(decode(e.bits[a], ka), decode(e.bits[b], kb))
			if relHolds(op, c) {
				e.bits[o] = 1
			} else {
				e.bits[o] = 0
			}
		}, nil, true

	case "CompareToZero", "CompareToConstant":
		if !haveOut {
			return nil, nil, false
		}
		a, ka, okA := e.anyScalarIn(info, 0)
		if !okA {
			return nil, nil, false
		}
		var ref types.Value
		if info.Actor.Type == "CompareToZero" {
			ref = types.Zero(ka)
		} else {
			ref = info.Aux.(types.Value)
		}
		op := info.Operator
		return func(int64) {
			c := types.Compare(decode(e.bits[a], ka), ref)
			if relHolds(op, c) {
				e.bits[o] = 1
			} else {
				e.bits[o] = 0
			}
		}, nil, true
	}
	return nil, nil, false
}

// evalLogic applies a boolean combination operator over n conditions.
func evalLogic(op string, cond func(int) bool, n int) bool {
	switch op {
	case "AND", "NAND":
		out := true
		for j := 0; j < n && out; j++ {
			out = cond(j)
		}
		if op == "NAND" {
			return !out
		}
		return out
	case "OR", "NOR":
		out := false
		for j := 0; j < n && !out; j++ {
			out = cond(j)
		}
		if op == "NOR" {
			return !out
		}
		return out
	case "XOR", "NXOR":
		out := false
		for j := 0; j < n; j++ {
			out = out != cond(j)
		}
		if op == "NXOR" {
			return !out
		}
		return out
	case "NOT":
		return !cond(0)
	}
	return false
}

// relHolds mirrors the relational semantics of the actors registry
// (types.Compare returns -2 for NaN-incomparable pairs).
func relHolds(op string, c int) bool {
	switch op {
	case "==":
		return c == 0
	case "~=":
		return c != 0
	case "<":
		return c == -1
	case "<=":
		return c == -1 || c == 0
	case ">":
		return c == 1
	case ">=":
		return c == 1 || c == 0
	}
	return false
}

// sumClosure builds the unboxed Sum template for kind k.
func (e *Engine) sumClosure(k types.Kind, o int, refs []int, signs string) func(int64) {
	switch {
	case k.IsSigned():
		sh := uint(64 - k.Bits())
		return func(int64) {
			acc := int64(e.bits[refs[0]])
			if signs[0] == '-' {
				acc = (0 - acc) << sh >> sh
			}
			for j := 1; j < len(refs); j++ {
				b := int64(e.bits[refs[j]])
				if signs[j] == '+' {
					acc = (acc + b) << sh >> sh
				} else {
					acc = (acc - b) << sh >> sh
				}
			}
			e.bits[o] = uint64(acc)
		}
	case k.IsUnsigned():
		mask := maskFor(k)
		return func(int64) {
			acc := e.bits[refs[0]]
			if signs[0] == '-' {
				acc = (0 - acc) & mask
			}
			for j := 1; j < len(refs); j++ {
				b := e.bits[refs[j]]
				if signs[j] == '+' {
					acc = (acc + b) & mask
				} else {
					acc = (acc - b) & mask
				}
			}
			e.bits[o] = acc
		}
	case k == types.F32:
		return func(int64) {
			acc := math.Float32frombits(uint32(e.bits[refs[0]]))
			if signs[0] == '-' {
				acc = float32(0 - float64(acc))
			}
			for j := 1; j < len(refs); j++ {
				b := math.Float32frombits(uint32(e.bits[refs[j]]))
				if signs[j] == '+' {
					acc = float32(float64(acc) + float64(b))
				} else {
					acc = float32(float64(acc) - float64(b))
				}
			}
			e.bits[o] = uint64(math.Float32bits(acc))
		}
	default: // F64
		return func(int64) {
			acc := math.Float64frombits(e.bits[refs[0]])
			if signs[0] == '-' {
				acc = 0 - acc
			}
			for j := 1; j < len(refs); j++ {
				b := math.Float64frombits(e.bits[refs[j]])
				if signs[j] == '+' {
					acc += b
				} else {
					acc -= b
				}
			}
			e.bits[o] = math.Float64bits(acc)
		}
	}
}

// productClosure builds the unboxed Product template for kind k.
func (e *Engine) productClosure(k types.Kind, o int, refs []int, signs string) func(int64) {
	switch {
	case k.IsSigned():
		sh := uint(64 - k.Bits())
		return func(int64) {
			var acc int64
			if signs[0] == '*' {
				acc = int64(e.bits[refs[0]])
			} else {
				d := int64(e.bits[refs[0]])
				if d == 0 {
					acc = 0
				} else {
					acc = (1 / d) << sh >> sh
				}
			}
			for j := 1; j < len(refs); j++ {
				b := int64(e.bits[refs[j]])
				if signs[j] == '*' {
					acc = (acc * b) << sh >> sh
				} else if b == 0 {
					acc = 0
				} else {
					acc = (acc / b) << sh >> sh
				}
			}
			e.bits[o] = uint64(acc)
		}
	case k.IsUnsigned():
		mask := maskFor(k)
		return func(int64) {
			var acc uint64
			if signs[0] == '*' {
				acc = e.bits[refs[0]]
			} else {
				d := e.bits[refs[0]]
				if d == 0 {
					acc = 0
				} else {
					acc = (1 / d) & mask
				}
			}
			for j := 1; j < len(refs); j++ {
				b := e.bits[refs[j]]
				if signs[j] == '*' {
					acc = (acc * b) & mask
				} else if b == 0 {
					acc = 0
				} else {
					acc = (acc / b) & mask
				}
			}
			e.bits[o] = acc
		}
	case k == types.F32:
		return func(int64) {
			var acc float32
			if signs[0] == '*' {
				acc = math.Float32frombits(uint32(e.bits[refs[0]]))
			} else {
				acc = float32(float64(float32(1)) / float64(math.Float32frombits(uint32(e.bits[refs[0]]))))
			}
			for j := 1; j < len(refs); j++ {
				b := math.Float32frombits(uint32(e.bits[refs[j]]))
				if signs[j] == '*' {
					acc = float32(float64(acc) * float64(b))
				} else {
					acc = float32(float64(acc) / float64(b))
				}
			}
			e.bits[o] = uint64(math.Float32bits(acc))
		}
	default: // F64
		return func(int64) {
			var acc float64
			if signs[0] == '*' {
				acc = math.Float64frombits(e.bits[refs[0]])
			} else {
				acc = 1 / math.Float64frombits(e.bits[refs[0]])
			}
			for j := 1; j < len(refs); j++ {
				b := math.Float64frombits(e.bits[refs[j]])
				if signs[j] == '*' {
					acc *= b
				} else {
					acc /= b
				}
			}
			e.bits[o] = math.Float64bits(acc)
		}
	}
}

// affineClosure builds Gain (mul) / Bias (add) for kind k.
func (e *Engine) affineClosure(k types.Kind, o, in int, c types.Value, mul bool) func(int64) {
	switch {
	case k.IsSigned():
		sh := uint(64 - k.Bits())
		cv := c.I
		if mul {
			return func(int64) { e.bits[o] = uint64((int64(e.bits[in]) * cv) << sh >> sh) }
		}
		return func(int64) { e.bits[o] = uint64((int64(e.bits[in]) + cv) << sh >> sh) }
	case k.IsUnsigned():
		mask := maskFor(k)
		cv := c.U
		if mul {
			return func(int64) { e.bits[o] = (e.bits[in] * cv) & mask }
		}
		return func(int64) { e.bits[o] = (e.bits[in] + cv) & mask }
	case k == types.F32:
		cv := float64(float32(c.F))
		if mul {
			return func(int64) {
				e.bits[o] = uint64(math.Float32bits(float32(float64(math.Float32frombits(uint32(e.bits[in]))) * cv)))
			}
		}
		return func(int64) {
			e.bits[o] = uint64(math.Float32bits(float32(float64(math.Float32frombits(uint32(e.bits[in]))) + cv)))
		}
	default:
		cv := c.F
		if mul {
			return func(int64) { e.bits[o] = math.Float64bits(math.Float64frombits(e.bits[in]) * cv) }
		}
		return func(int64) { e.bits[o] = math.Float64bits(math.Float64frombits(e.bits[in]) + cv) }
	}
}

// maskFor returns the payload mask for an unsigned kind.
func maskFor(k types.Kind) uint64 {
	if k.Bits() >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k.Bits())) - 1
}

// bridge compiles a fallback closure pair around the registry Eval/Update.
func (e *Engine) bridge(i int, info *actors.Info) {
	ec := &e.ecs[i]
	ec.Info = info
	ec.In = make([]types.Value, info.NumIn())
	ec.Outs = make([]types.Value, len(info.Actor.Outputs))
	ec.State = &e.states[i]
	ec.DS = e

	type inRef struct {
		scalar bool
		idx    int
		kind   types.Kind
	}
	ins := make([]inRef, info.NumIn())
	for p, src := range info.InSrc {
		if idx, ok := e.scalarSlot[src]; ok {
			ins[p] = inRef{scalar: true, idx: idx, kind: e.slotKind[src]}
		} else {
			ins[p] = inRef{scalar: false, idx: e.vectorSlot[src]}
		}
	}
	type outRef struct {
		scalar bool
		idx    int
	}
	outs := make([]outRef, len(info.Actor.Outputs))
	for p := range outs {
		ref := model.PortRef{Actor: info.Actor.Name, Port: p}
		if idx, ok := e.scalarSlot[ref]; ok {
			outs[p] = outRef{scalar: true, idx: idx}
		} else {
			outs[p] = outRef{scalar: false, idx: e.vectorSlot[ref]}
		}
	}

	fetch := func() {
		for p := range ins {
			if ins[p].scalar {
				ec.In[p] = decode(e.bits[ins[p].idx], ins[p].kind)
			} else {
				ec.In[p] = e.vals[ins[p].idx]
			}
		}
	}
	var si = -1
	if info.Actor.Type == "Inport" {
		for idx, ip := range e.c.Inports {
			if ip == info {
				si = idx
			}
		}
	}

	// Conditional execution: resolve the enable register and the typed
	// zero outputs written while disabled.
	gateIdx := -1
	var gateKind types.Kind
	var zeroVals []types.Value
	if info.Gated() {
		idx, ok := e.scalarSlot[info.EnabledBy]
		if !ok {
			// The enabler is guaranteed scalar by elaboration.
			panic("rapid: enable signal without scalar register")
		}
		gateIdx = idx
		gateKind = e.slotKind[info.EnabledBy]
		zeroVals = make([]types.Value, len(outs))
		for p := range outs {
			zeroVals[p] = types.ZeroVector(info.OutKinds[p], info.OutWidths[p])
		}
	}
	enabled := func() bool {
		return gateIdx < 0 || truthy(e.bits[gateIdx], gateKind)
	}

	e.steps = append(e.steps, func(step int64) {
		if si >= 0 {
			// Stimulus streams advance every step regardless of gating, as
			// in every other engine.
			ec.ExternalIn = types.FloatVal(types.F64, e.streams[si].At(step))
		}
		if !enabled() {
			for p := range outs {
				if outs[p].scalar {
					e.bits[outs[p].idx] = 0
				} else {
					e.vals[outs[p].idx] = zeroVals[p]
				}
			}
			return
		}
		ec.Step = step
		ec.Conds = ec.Conds[:0]
		fetch()
		info.Spec.Eval(ec)
		for p := range outs {
			if outs[p].scalar {
				e.bits[outs[p].idx] = encode(ec.Outs[p])
			} else {
				e.vals[outs[p].idx] = ec.Outs[p]
			}
		}
	})
	if info.Spec.Update != nil {
		e.updates = append(e.updates, func(step int64) {
			if !enabled() {
				return
			}
			ec.Step = step
			fetch()
			info.Spec.Update(ec)
		})
	}
}
