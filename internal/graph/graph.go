// Package graph implements the directed computation graph used by the
// schedule-convert stage: deterministic topological sorting (the paper's
// data-flow labeling method) and algebraic-loop detection via strongly
// connected components.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Digraph is a directed graph over string-identified nodes. Edges are
// deduplicated; node and edge insertion order does not affect results —
// all algorithms break ties by node ID so schedules are deterministic.
type Digraph struct {
	nodes map[string]bool
	succ  map[string]map[string]bool
	pred  map[string]map[string]bool
}

// New returns an empty graph.
func New() *Digraph {
	return &Digraph{
		nodes: make(map[string]bool),
		succ:  make(map[string]map[string]bool),
		pred:  make(map[string]map[string]bool),
	}
}

// AddNode ensures the node exists.
func (g *Digraph) AddNode(id string) {
	g.nodes[id] = true
}

// AddEdge adds a directed edge from -> to, creating the nodes as needed.
func (g *Digraph) AddEdge(from, to string) {
	g.AddNode(from)
	g.AddNode(to)
	if g.succ[from] == nil {
		g.succ[from] = make(map[string]bool)
	}
	if !g.succ[from][to] {
		g.succ[from][to] = true
		if g.pred[to] == nil {
			g.pred[to] = make(map[string]bool)
		}
		g.pred[to][from] = true
	}
}

// HasEdge reports whether the edge from -> to exists.
func (g *Digraph) HasEdge(from, to string) bool { return g.succ[from][to] }

// Len returns the node count.
func (g *Digraph) Len() int { return len(g.nodes) }

// Nodes returns all node IDs, sorted.
func (g *Digraph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CycleError reports the strongly connected components that prevent a
// topological order — in the modeling domain, algebraic loops.
type CycleError struct {
	Cycles [][]string
}

// Error lists every algebraic loop.
func (e *CycleError) Error() string {
	parts := make([]string, len(e.Cycles))
	for i, c := range e.Cycles {
		parts[i] = strings.Join(c, " -> ")
	}
	return fmt.Sprintf("graph: %d algebraic loop(s): %s", len(e.Cycles), strings.Join(parts, "; "))
}

// TopoSort returns a deterministic topological order of all nodes (Kahn's
// algorithm with a sorted ready set). If cycles exist it returns a
// *CycleError listing every non-trivial strongly connected component.
func (g *Digraph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for n := range g.nodes {
		indeg[n] = len(g.pred[n])
	}
	ready := make([]string, 0, len(g.nodes))
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	order := make([]string, 0, len(g.nodes))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		next := make([]string, 0, len(g.succ[n]))
		for s := range g.succ[n] {
			indeg[s]--
			if indeg[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Strings(next)
		ready = mergeSorted(ready, next)
	}
	if len(order) != len(g.nodes) {
		cycles := g.nontrivialSCCs()
		return nil, &CycleError{Cycles: cycles}
	}
	return order, nil
}

// mergeSorted merges two sorted string slices into one sorted slice.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// nontrivialSCCs returns the strongly connected components with more than
// one node, or single nodes with self-loops, each sorted internally, the
// list sorted by first element. Uses Tarjan's algorithm iteratively to
// avoid stack overflow on deep graphs.
func (g *Digraph) nontrivialSCCs() [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	counter := 0

	type frame struct {
		node string
		succ []string
		next int
	}

	sortedSucc := func(n string) []string {
		out := make([]string, 0, len(g.succ[n]))
		for s := range g.succ[n] {
			out = append(out, s)
		}
		sort.Strings(out)
		return out
	}

	for _, start := range g.Nodes() {
		if _, seen := index[start]; seen {
			continue
		}
		callStack := []frame{{node: start, succ: sortedSucc(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			if f.next < len(f.succ) {
				w := f.succ[f.next]
				f.next++
				if _, seen := index[w]; !seen {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{node: w, succ: sortedSucc(w)})
				} else if onStack[w] {
					if index[w] < low[f.node] {
						low[f.node] = index[w]
					}
				}
				continue
			}
			// All successors processed: pop and propagate lowlink.
			v := f.node
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 || g.succ[v][v] {
					sort.Strings(comp)
					sccs = append(sccs, comp)
				}
			}
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}

// Reachable returns the set of nodes reachable from the given roots
// (including the roots), used for dead-actor analysis.
func (g *Digraph) Reachable(roots ...string) map[string]bool {
	seen := make(map[string]bool)
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] || !g.nodes[n] {
			continue
		}
		seen[n] = true
		for s := range g.succ[n] {
			if !seen[s] {
				queue = append(queue, s)
			}
		}
	}
	return seen
}
