package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func TestTopoSortLinear(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[2] != "c" {
		t.Errorf("order = %v", order)
	}
}

func TestTopoSortDeterministicTieBreak(t *testing.T) {
	g := New()
	// b and a are both sources; deterministic order must pick "a" first.
	g.AddNode("b")
	g.AddNode("a")
	g.AddEdge("b", "z")
	g.AddEdge("a", "z")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "z"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoSortRespectsAllEdges(t *testing.T) {
	// Random DAG: edges only from lower to higher index, shuffled insert
	// order. Verify the returned order satisfies every edge.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := New()
		n := 30
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('A'+i/26)) + string(rune('a'+i%26))
		}
		type edge struct{ from, to string }
		var edges []edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					edges = append(edges, edge{ids[i], ids[j]})
				}
			}
		}
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for i := range ids {
			g.AddNode(ids[i])
		}
		for _, e := range edges {
			g.AddEdge(e.from, e.to)
		}
		order, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		pos := make(map[string]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range edges {
			if pos[e.from] >= pos[e.to] {
				t.Fatalf("edge %s->%s violated in %v", e.from, e.to, order)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	g.AddEdge("x", "y") // acyclic side component
	_, err := g.TopoSort()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CycleError, got %v", err)
	}
	if len(ce.Cycles) != 1 || len(ce.Cycles[0]) != 3 {
		t.Errorf("cycles = %v", ce.Cycles)
	}
}

func TestSelfLoop(t *testing.T) {
	g := New()
	g.AddEdge("a", "a")
	_, err := g.TopoSort()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CycleError, got %v", err)
	}
	if len(ce.Cycles) != 1 || len(ce.Cycles[0]) != 1 || ce.Cycles[0][0] != "a" {
		t.Errorf("cycles = %v", ce.Cycles)
	}
}

func TestMultipleCycles(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	g.AddEdge("c", "d")
	g.AddEdge("d", "c")
	_, err := g.TopoSort()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CycleError, got %v", err)
	}
	if len(ce.Cycles) != 2 {
		t.Errorf("cycles = %v", ce.Cycles)
	}
	if ce.Error() == "" {
		t.Error("empty error string")
	}
}

func TestDeepGraphNoStackOverflow(t *testing.T) {
	// Tarjan is iterative; a 100k-node chain plus a closing edge must not
	// blow the stack.
	g := New()
	const n = 100000
	prev := "n0000000"
	g.AddNode(prev)
	for i := 1; i < n; i++ {
		id := "n" + pad(i)
		g.AddEdge(prev, id)
		prev = id
	}
	g.AddEdge(prev, "n0000000")
	_, err := g.TopoSort()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CycleError, got %v", err)
	}
	if len(ce.Cycles) != 1 || len(ce.Cycles[0]) != n {
		t.Errorf("got %d cycles, first len %d", len(ce.Cycles), len(ce.Cycles[0]))
	}
}

func pad(i int) string {
	s := ""
	for d := 1000000; d >= 1; d /= 10 {
		s += string(rune('0' + (i/d)%10))
	}
	return s
}

func TestHasEdgeAndDedup(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("a", "b")
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Error("HasEdge wrong")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestReachable(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("x", "y")
	r := g.Reachable("a")
	if !r["a"] || !r["b"] || !r["c"] || r["x"] {
		t.Errorf("Reachable = %v", r)
	}
	r = g.Reachable("a", "x")
	if !r["y"] {
		t.Error("multi-root reachability missed y")
	}
	if g.Reachable("missing")["missing"] {
		t.Error("unknown root must not be reachable")
	}
}
