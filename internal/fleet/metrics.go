package fleet

import (
	"io"

	"accmos/internal/obs"
)

// fleetJobStates enumerates fleet_jobs_total label values; every series
// is pre-created so the exposition skeleton is complete from the first
// scrape, mirroring accmosd's own registry discipline.
var fleetJobStates = []string{"submitted", "done", "failed", "canceled", "rejected"}

// metrics is the coordinator's telemetry: fleet_* families aggregated
// over the whole fleet, exposed as Prometheus text and mirrored into
// the JSON MetricsView. Counters are bumped at decision points; live
// topology numbers are scrape-time gauge funcs over coordinator state.
type metrics struct {
	reg *obs.Registry

	jobs         *obs.CounterVec // fleet_jobs_total{state}
	warmRoutes   *obs.Counter    // fleet_warm_routes_total
	spillRoutes  *obs.Counter    // fleet_spill_routes_total
	transfers    *obs.Counter    // fleet_artifact_transfers_total
	retries      *obs.Counter    // fleet_retries_total
	evictions    *obs.Counter    // fleet_node_evictions_total
	quotaRejects *obs.Counter    // fleet_quota_rejections_total
	nodeHits     *obs.GaugeVec   // fleet_node_cache_hits{node}
	nodeMisses   *obs.GaugeVec   // fleet_node_cache_misses{node}
}

func newMetrics(c *Coordinator) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	m.jobs = reg.Counter("fleet_jobs_total",
		"Fleet jobs by lifecycle event: submitted at admission, done/failed/canceled at completion, rejected at quota or admission refusals.",
		"state")
	for _, st := range fleetJobStates {
		m.jobs.With(st)
	}
	reg.GaugeFunc("fleet_nodes", "Runner nodes registered with the coordinator.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.nodes))
	})
	reg.GaugeFunc("fleet_live_nodes", "Runner nodes with a fresh heartbeat.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, nd := range c.nodes {
			if nd.alive {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("fleet_queue_depth", "Jobs accepted by the coordinator but not yet dispatched.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.queue))
	})
	reg.GaugeFunc("fleet_inflight_jobs", "Jobs dispatched to a runner and not yet terminal.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, j := range c.jobs {
			if j.state == stateDispatched {
				n++
			}
		}
		return float64(n)
	})

	m.warmRoutes = reg.Counter("fleet_warm_routes_total",
		"Dispatches whose target node already held the job's compiled artifact (no compile, no transfer).").With()
	m.spillRoutes = reg.Counter("fleet_spill_routes_total",
		"Dispatches diverted off the consistent-hash home node because it was loaded or dead.").With()
	m.transfers = reg.Counter("fleet_artifact_transfers_total",
		"Compiled artifacts shipped between nodes (GET from a holder, PUT to the dispatch target).").With()
	m.retries = reg.Counter("fleet_retries_total",
		"Jobs requeued after their runner died mid-flight.").With()
	m.evictions = reg.Counter("fleet_node_evictions_total",
		"Runner nodes evicted after missing their heartbeat deadline.").With()
	m.quotaRejects = reg.Counter("fleet_quota_rejections_total",
		"Submissions refused by per-tenant token-bucket quotas.").With()

	m.nodeHits = reg.Gauge("fleet_node_cache_hits",
		"Build-cache hits reported by each node's last heartbeat.", "node")
	m.nodeMisses = reg.Gauge("fleet_node_cache_misses",
		"Build-cache misses reported by each node's last heartbeat.", "node")
	return m
}

func (m *metrics) writePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

func (m *metrics) jobCounts() map[string]int64 {
	out := make(map[string]int64, len(fleetJobStates))
	for _, st := range fleetJobStates {
		out[st] = m.jobs.With(st).Value()
	}
	return out
}
