// Package fleet turns a set of accmosd daemons into one service: a
// coordinator accepts the ordinary /v1/jobs API, shards jobs across
// registered runner nodes by consistent hash on the generated program's
// content hash (so repeat models land on nodes whose build cache is
// already warm), ships compiled artifacts between nodes when routing
// must deviate, retries jobs off dead runners, and survives its own
// restarts through an append-only job store.
package fleet

import (
	"hash/fnv"
	"sort"
	"sync"
)

// defaultVnodes is the virtual-node fanout per physical node. 64 points
// per node keeps the ring's load split within a few percent of even for
// small fleets without making Add/Remove noticeable.
const defaultVnodes = 64

type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Lookup maps a key
// to a preference list of distinct nodes: the first entry is the key's
// home (stable under unrelated membership changes, so repeat programs
// keep hitting the same warm cache), and later entries are the spill
// order when the home is loaded or dead.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

// NewRing builds an empty ring; vnodes <= 0 selects the default fanout.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a node's virtual points. Adding a present node is a no-op,
// so join and heartbeat can both call it unconditionally.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(node + "#" + itoa(i)), node})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a node's points; keys homed on it move to their next
// clockwise node while every other key keeps its home.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the number of physical nodes on the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Lookup returns up to n distinct nodes for key, in preference order:
// the owner of the first point clockwise of hash(key), then the owners
// of subsequent points, deduplicated. n <= 0 means every node.
func (r *Ring) Lookup(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// itoa is strconv.Itoa for the small non-negative ints used in vnode
// labels, avoiding the import for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
