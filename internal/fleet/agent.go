package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"accmos/internal/server"
)

// Agent is the runner-side half of the fleet protocol: an ordinary
// accmosd joins a coordinator and keeps heartbeating its health and
// cache stats. Heartbeats double as registration (the coordinator
// upserts unknown nodes), so a coordinator restart heals itself — the
// fleet reassembles within one heartbeat interval with no operator
// action.
type Agent struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// Advertise is the URL peers should reach this runner at.
	Advertise string
	// Server is the local daemon whose health and cache stats the
	// heartbeat reports.
	Server *server.Server
	// Interval between heartbeats (default 1s). The coordinator's
	// DeadAfter should be a few multiples of it.
	Interval time.Duration
	// Client performs the HTTP calls (default: 5s timeout).
	Client *http.Client
	// Logger receives join/retry logs (default: discarded).
	Logger *slog.Logger
}

// Run joins the coordinator (retrying with capped backoff until the
// first heartbeat lands) and then heartbeats until ctx is canceled.
func (a *Agent) Run(ctx context.Context) error {
	if a.Coordinator == "" || a.Advertise == "" || a.Server == nil {
		return fmt.Errorf("fleet agent needs Coordinator, Advertise and Server")
	}
	interval := a.Interval
	if interval <= 0 {
		interval = time.Second
	}
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	log := a.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	// First contact, with capped backoff so a runner started before its
	// coordinator still joins.
	backoff := interval / 4
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	for {
		if err := a.beat(client); err == nil {
			log.Info("joined fleet", "coordinator", a.Coordinator, "advertise", a.Advertise)
			break
		} else {
			log.Warn("fleet join failed; retrying", "coordinator", a.Coordinator, "err", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}

	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
		if err := a.beat(client); err != nil {
			log.Warn("heartbeat failed", "coordinator", a.Coordinator, "err", err)
		}
	}
}

// beat posts one heartbeat carrying this runner's current readiness
// and build-cache counters.
func (a *Agent) beat(client *http.Client) error {
	hb := Heartbeat{
		URL:    a.Advertise,
		Health: a.Server.Health(),
		Cache:  a.Server.Cache().Stats(),
	}
	payload, err := json.Marshal(hb)
	if err != nil {
		return err
	}
	resp, err := client.Post(a.Coordinator+"/v1/fleet/heartbeat", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("coordinator: %s", resp.Status)
	}
	return nil
}
