package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	accmos "accmos"
	"accmos/internal/fleet"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/server"
	"accmos/internal/slx"
	"accmos/internal/types"
)

// slxDoc serializes a tiny Inport -> Gain -> Outport model; gain varies
// the document (and so the program hash / routing key) between tests.
func slxDoc(t *testing.T, name, gain string) string {
	t.Helper()
	m := model.NewBuilder(name).
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", gain)).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	var buf bytes.Buffer
	if err := slx.Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func startCoordinator(t *testing.T, cfg fleet.Config) (*fleet.Coordinator, *httptest.Server) {
	t.Helper()
	c, err := fleet.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

// startRunner brings up an ordinary accmosd and a fleet agent that
// heartbeats it to the coordinator. The returned stop function kills
// both (simulating node death when called mid-test).
func startRunner(t *testing.T, coordURL string, cfg server.Config) (*server.Server, *httptest.Server, func()) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	cfg.PoolWorkers = -1
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	agent := &fleet.Agent{
		Coordinator: coordURL,
		Advertise:   ts.URL,
		Server:      srv,
		Interval:    50 * time.Millisecond,
	}
	go agent.Run(ctx)

	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			ts.Close()
		})
	}
	t.Cleanup(func() {
		stop()
		dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer dcancel()
		srv.Drain(dctx)
	})
	return srv, ts, stop
}

func submitFleet(t *testing.T, ts *httptest.Server, req server.SubmitRequest) string {
	t.Helper()
	payload, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub server.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	return sub.ID
}

func getFleetJob(t *testing.T, ts *httptest.Server, id string) fleet.JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: %s", id, resp.Status)
	}
	var v fleet.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitFleetJob(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) fleet.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getFleetJob(t, ts, id)
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (node %s, retries %d)", id, v.State, v.Node, v.Retries)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// waitLive blocks until n runners are live on the coordinator, so ring
// membership is settled before tests make routing assertions.
func waitLive(t *testing.T, c *fleet.Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Health().LiveNodes < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d runners went live", c.Health().LiveNodes, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fleetMetrics(t *testing.T, ts *httptest.Server) fleet.MetricsView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mv fleet.MetricsView
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	return mv
}

// TestFleetEquivalenceAndWarmRouting is the core fleet contract: a job
// through the coordinator produces bit-identical results to the same
// job on a standalone accmosd, and a repeat model routes to the node
// that already compiled it — warm, with zero artifact transfers.
func TestFleetEquivalenceAndWarmRouting(t *testing.T) {
	coord, coordTS := startCoordinator(t, fleet.Config{
		DeadAfter: 2 * time.Second,
		PollEvery: 20 * time.Millisecond,
	})
	startRunner(t, coordTS.URL, server.Config{})
	startRunner(t, coordTS.URL, server.Config{})
	waitLive(t, coord, 2)

	// The reference: the same jobs on a plain accmosd.
	ref := server.New(server.Config{Workers: 2, PoolWorkers: -1})
	refTS := httptest.NewServer(ref.Handler())
	t.Cleanup(refTS.Close)

	doc := slxDoc(t, "EQ", "1.5")
	single := server.SubmitRequest{Model: doc, Steps: 200, Seed: 11, Coverage: true}
	sweep := server.SubmitRequest{Model: doc, Steps: 120, SweepSeeds: []uint64{1, 2, 3, 4}}

	refSingle := submitWait(t, refTS, single)
	refSweep := submitWait(t, refTS, sweep)

	v1 := waitFleetJob(t, coordTS, submitFleet(t, coordTS, single), 90*time.Second)
	if v1.State != server.JobDone {
		t.Fatalf("fleet single job: %s (%s)", v1.State, v1.Error)
	}
	if v1.Node == "" || v1.ArtifactHash == "" {
		t.Errorf("placement fields missing: node %q hash %q", v1.Node, v1.ArtifactHash)
	}
	if v1.Result == nil || refSingle.Result == nil || v1.Result.OutputHash != refSingle.Result.OutputHash {
		t.Errorf("fleet result diverged from single node: %+v vs %+v", v1.Result, refSingle.Result)
	}
	if v1.ArtifactHash != refSingle.ArtifactHash {
		t.Errorf("program hash diverged: coordinator %s vs standalone %s", v1.ArtifactHash, refSingle.ArtifactHash)
	}

	v2 := waitFleetJob(t, coordTS, submitFleet(t, coordTS, sweep), 90*time.Second)
	if v2.State != server.JobDone {
		t.Fatalf("fleet sweep job: %s (%s)", v2.State, v2.Error)
	}
	if v2.SweepRuns != refSweep.SweepRuns {
		t.Errorf("sweep runs: fleet %d vs standalone %d", v2.SweepRuns, refSweep.SweepRuns)
	}
	got, _ := json.Marshal(v2.MergedCoverage)
	want, _ := json.Marshal(refSweep.MergedCoverage)
	if !bytes.Equal(got, want) {
		t.Errorf("merged coverage diverged:\nfleet:      %s\nstandalone: %s", got, want)
	}

	// Repeat the single job: the ring homes the same key on the same
	// node, which already holds the artifact — a warm route, no compile,
	// no transfer.
	before := fleetMetrics(t, coordTS)
	v3 := waitFleetJob(t, coordTS, submitFleet(t, coordTS, single), 90*time.Second)
	if v3.State != server.JobDone {
		t.Fatalf("repeat job: %s (%s)", v3.State, v3.Error)
	}
	if v3.Node != v1.Node {
		t.Errorf("repeat model routed to %s, first ran on %s", v3.Node, v1.Node)
	}
	if !v3.CacheHit {
		t.Error("repeat model recompiled — warm routing broken")
	}
	if v3.Result.OutputHash != refSingle.Result.OutputHash {
		t.Errorf("repeat result diverged: %d vs %d", v3.Result.OutputHash, refSingle.Result.OutputHash)
	}
	after := fleetMetrics(t, coordTS)
	if after.WarmRoutes <= before.WarmRoutes {
		t.Errorf("warm routes did not increase: %d -> %d", before.WarmRoutes, after.WarmRoutes)
	}
	if after.Transfers != 0 {
		t.Errorf("artifact transfers = %d, want 0 (no spill happened)", after.Transfers)
	}
}

// submitWait runs one job on a plain accmosd test server.
func submitWait(t *testing.T, ts *httptest.Server, req server.SubmitRequest) server.JobView {
	t.Helper()
	payload, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var sub server.SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("reference submit: %s", resp.Status)
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v server.JobView
		json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if v.State.Terminal() {
			if v.State != server.JobDone {
				t.Fatalf("reference job: %s (%s)", v.State, v.Error)
			}
			return v
		}
		if time.Now().After(deadline) {
			t.Fatal("reference job stuck")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFleetSpillShipsArtifact forces the home node to look loaded so
// the next repeat of a warm model spills to a cold node — and the
// coordinator ships the compiled artifact there instead of paying a
// second compile.
func TestFleetSpillShipsArtifact(t *testing.T) {
	coord, coordTS := startCoordinator(t, fleet.Config{
		DeadAfter: 2 * time.Second,
		// Slow polling widens the window in which the coordinator still
		// counts the first dispatch as in-flight, making the spill
		// deterministic.
		PollEvery: 400 * time.Millisecond,
		SpillLoad: 1,
	})
	startRunner(t, coordTS.URL, server.Config{})
	startRunner(t, coordTS.URL, server.Config{})
	waitLive(t, coord, 2)

	doc := slxDoc(t, "SPILL", "2.25")
	req := server.SubmitRequest{Model: doc, Steps: 100, Seed: 7}

	// Seed the artifact on the home node.
	v0 := waitFleetJob(t, coordTS, submitFleet(t, coordTS, req), 90*time.Second)
	if v0.State != server.JobDone {
		t.Fatalf("seed job: %s (%s)", v0.State, v0.Error)
	}
	home := v0.Node

	// Two rapid submissions: the first re-occupies the home node; with
	// SpillLoad=1 the second must spill to the other node, artifact in
	// tow.
	idA := submitFleet(t, coordTS, req)
	idB := submitFleet(t, coordTS, req)
	vA := waitFleetJob(t, coordTS, idA, 90*time.Second)
	vB := waitFleetJob(t, coordTS, idB, 90*time.Second)
	if vA.State != server.JobDone || vB.State != server.JobDone {
		t.Fatalf("jobs: %s/%s (%s/%s)", vA.State, vB.State, vA.Error, vB.Error)
	}
	if vA.Node != home {
		t.Errorf("first repeat ran on %s, want home %s", vA.Node, home)
	}
	if vB.Node == home {
		t.Fatalf("second repeat did not spill off %s", home)
	}
	if !vB.CacheHit {
		t.Error("spilled job compiled — artifact transfer did not precede it")
	}
	if vA.Result.OutputHash != v0.Result.OutputHash || vB.Result.OutputHash != v0.Result.OutputHash {
		t.Errorf("results diverged across nodes: %d / %d / %d",
			v0.Result.OutputHash, vA.Result.OutputHash, vB.Result.OutputHash)
	}
	mv := fleetMetrics(t, coordTS)
	if mv.SpillRoutes < 1 {
		t.Errorf("spill routes = %d, want >= 1", mv.SpillRoutes)
	}
	if mv.Transfers < 1 {
		t.Errorf("artifact transfers = %d, want >= 1", mv.Transfers)
	}
}

// TestFleetRetriesJobsOffDeadRunner kills a runner mid-job: the
// coordinator must evict it on the heartbeat deadline and retry the
// job on the survivor, with a result identical to a healthy run.
func TestFleetRetriesJobsOffDeadRunner(t *testing.T) {
	_, coordTS := startCoordinator(t, fleet.Config{
		DeadAfter: 500 * time.Millisecond,
		PollEvery: 20 * time.Millisecond,
		RetryBase: 50 * time.Millisecond,
	})

	// Runner 1 accepts the job but never finishes it — a hang that turns
	// into a death when we stop its heartbeat.
	stuck := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(stuck) }) }
	defer release()
	_, _, stop1 := startRunner(t, coordTS.URL, server.Config{
		Runner: func(ctx context.Context, spec server.JobSpec, tr *accmos.Tracer, progress func(obs.Snapshot)) (*server.Outcome, error) {
			select {
			case <-stuck:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
	})

	doc := slxDoc(t, "RETRY", "4.5")
	req := server.SubmitRequest{Model: doc, Steps: 150, Seed: 9}
	id := submitFleet(t, coordTS, req)

	// Wait until the job is dispatched to runner 1.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if v := getFleetJob(t, coordTS, id); v.State == server.JobRunning && v.Node != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never dispatched to the stuck runner")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A healthy runner joins; then the stuck one dies.
	startRunner(t, coordTS.URL, server.Config{})
	release()
	stop1()

	v := waitFleetJob(t, coordTS, id, 90*time.Second)
	if v.State != server.JobDone {
		t.Fatalf("job after runner death: %s (%s)", v.State, v.Error)
	}
	if v.Retries < 1 {
		t.Errorf("retries = %d, want >= 1", v.Retries)
	}

	// Same job on a plain accmosd for the equivalence check.
	ref := server.New(server.Config{Workers: 1, PoolWorkers: -1})
	refTS := httptest.NewServer(ref.Handler())
	t.Cleanup(refTS.Close)
	refView := submitWait(t, refTS, req)
	if v.Result == nil || v.Result.OutputHash != refView.Result.OutputHash {
		t.Errorf("retried result diverged: %+v vs %+v", v.Result, refView.Result)
	}

	mv := fleetMetrics(t, coordTS)
	if mv.Retries < 1 || mv.Evictions < 1 {
		t.Errorf("retries=%d evictions=%d, want both >= 1", mv.Retries, mv.Evictions)
	}
}

// TestCoordinatorRestartRecovery submits jobs with no runners alive,
// kills the coordinator, and verifies a new coordinator over the same
// store recovers and eventually completes them.
func TestCoordinatorRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	c1, err := fleet.NewCoordinator(fleet.Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(c1.Handler())
	docA := slxDoc(t, "RECA", "6.5")
	docB := slxDoc(t, "RECB", "7.5")
	idA := submitFleet(t, ts1, server.SubmitRequest{Model: docA, Steps: 80, Seed: 1, Tenant: "acme"})
	idB := submitFleet(t, ts1, server.SubmitRequest{Model: docB, Steps: 80, Seed: 2})
	if v := getFleetJob(t, ts1, idA); v.State != server.JobQueued {
		t.Fatalf("job with no runners should be queued, got %s", v.State)
	}
	ts1.Close()
	c1.Close()

	// Second life: same store, jobs must come back queued.
	_, ts2 := startCoordinator(t, fleet.Config{
		StoreDir:  dir,
		DeadAfter: 2 * time.Second,
		PollEvery: 20 * time.Millisecond,
	})
	vA := getFleetJob(t, ts2, idA)
	vB := getFleetJob(t, ts2, idB)
	if vA.State != server.JobQueued || vB.State != server.JobQueued {
		t.Fatalf("recovered jobs not queued: %s / %s", vA.State, vB.State)
	}
	if vA.Tenant != "acme" {
		t.Errorf("tenant lost across restart: %+v", vA)
	}
	if vA.Epoch < 1 {
		t.Errorf("recovered job should have a bumped epoch, got %d", vA.Epoch)
	}

	// A runner joins the reborn coordinator; the recovered jobs run.
	startRunner(t, ts2.URL, server.Config{})
	fA := waitFleetJob(t, ts2, idA, 90*time.Second)
	fB := waitFleetJob(t, ts2, idB, 90*time.Second)
	if fA.State != server.JobDone || fB.State != server.JobDone {
		t.Fatalf("recovered jobs: %s / %s (%s / %s)", fA.State, fB.State, fA.Error, fB.Error)
	}
	if fA.Result == nil || fB.Result == nil {
		t.Fatal("recovered jobs have no results")
	}

	// New submissions must not collide with recovered ids.
	idC := submitFleet(t, ts2, server.SubmitRequest{Model: docA, Steps: 80, Seed: 1})
	if idC == idA || idC == idB {
		t.Fatalf("id collision after recovery: %s", idC)
	}
	if fC := waitFleetJob(t, ts2, idC, 90*time.Second); fC.State != server.JobDone {
		t.Fatalf("post-recovery job: %s (%s)", fC.State, fC.Error)
	}
}

// TestTenantQuotaGate verifies per-tenant token buckets reject the
// over-quota tenant with 429 while others proceed.
func TestTenantQuotaGate(t *testing.T) {
	_, coordTS := startCoordinator(t, fleet.Config{
		TenantRate:  0.001, // effectively: burst only, no refill during the test
		TenantBurst: 2,
	})
	doc := slxDoc(t, "QUOTA", "8.5")
	post := func(tenant string) int {
		payload, _ := json.Marshal(server.SubmitRequest{Model: doc, Steps: 10, Tenant: tenant})
		resp, err := http.Post(coordTS.URL+"/v1/jobs", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		return resp.StatusCode
	}
	if got := post("acme"); got != http.StatusAccepted {
		t.Fatalf("first submission: %d", got)
	}
	if got := post("acme"); got != http.StatusAccepted {
		t.Fatalf("second submission (burst): %d", got)
	}
	if got := post("acme"); got != http.StatusTooManyRequests {
		t.Fatalf("third submission: %d, want 429", got)
	}
	if got := post("rival"); got != http.StatusAccepted {
		t.Fatalf("other tenant blocked: %d", got)
	}
	if mv := fleetMetrics(t, coordTS); mv.QuotaRejections != 1 {
		t.Errorf("quota rejections = %d, want 1", mv.QuotaRejections)
	}
}

// TestFleetTopologyAndHealth pins /v1/fleet/nodes and /healthz.
func TestFleetTopologyAndHealth(t *testing.T) {
	c, coordTS := startCoordinator(t, fleet.Config{DeadAfter: 2 * time.Second})
	if hv := c.Health(); hv.Status != "no-runners" {
		t.Errorf("empty fleet health = %q, want no-runners", hv.Status)
	}
	startRunner(t, coordTS.URL, server.Config{})
	startRunner(t, coordTS.URL, server.Config{})

	deadline := time.Now().Add(10 * time.Second)
	for {
		if hv := c.Health(); hv.LiveNodes == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("runners never showed up live")
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err := http.Get(coordTS.URL + "/v1/fleet/nodes")
	if err != nil {
		t.Fatal(err)
	}
	var nodes []fleet.NodeView
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nodes) != 2 {
		t.Fatalf("topology lists %d nodes, want 2", len(nodes))
	}
	for _, n := range nodes {
		if !n.Alive || n.URL == "" {
			t.Errorf("node not alive in topology: %+v", n)
		}
		if n.Health.Workers == 0 {
			t.Errorf("heartbeat health empty: %+v", n)
		}
	}

	// Prometheus exposition includes the fleet families.
	promResp, err := http.Get(coordTS.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(promResp.Body)
	promResp.Body.Close()
	for _, family := range []string{
		"fleet_jobs_total", "fleet_live_nodes", "fleet_warm_routes_total",
		"fleet_artifact_transfers_total", "fleet_retries_total",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(family)) {
			t.Errorf("prometheus exposition missing %s", family)
		}
	}
	if testing.Verbose() {
		fmt.Println(buf.String())
	}
}
