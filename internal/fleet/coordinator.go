package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	accmos "accmos"
	"accmos/internal/server"
)

// Config tunes a Coordinator.
type Config struct {
	// DeadAfter evicts a runner that has not heartbeated for this long;
	// its in-flight jobs are retried elsewhere (default 5s).
	DeadAfter time.Duration
	// PollEvery is the interval at which dispatched jobs are polled on
	// their runner (default 50ms).
	PollEvery time.Duration
	// MaxRetries bounds how many times one job is re-dispatched after
	// runner deaths or dispatch failures before it fails (default 3).
	MaxRetries int
	// RetryBase/RetryMax shape the capped exponential backoff between a
	// job's retries (defaults 100ms / 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// SpillLoad is the in-flight job count on a key's home node beyond
	// which dispatch considers less-loaded nodes (default 4; the warm
	// node is still preferred below this threshold because a cache hit
	// is usually worth more than perfect balance).
	SpillLoad int
	// TenantRate/TenantBurst set the per-tenant token-bucket quota in
	// jobs per second (rate 0 = unlimited; burst 0 defaults to rate).
	TenantRate  float64
	TenantBurst float64
	// StoreDir, when set, persists the job log there: accepted jobs
	// survive a coordinator restart and are re-dispatched on recovery.
	StoreDir string
	// DefaultOptLevel and JobTimeout are the admission defaults, matching
	// the accmosd flags of the same name. They apply at the coordinator
	// so rejection happens before any network hop.
	DefaultOptLevel accmos.OptLevel
	// DefaultPartitions is the partition request for submissions that do
	// not set partitions (0 = sequential, -1 = auto on the runner).
	DefaultPartitions int
	JobTimeout        time.Duration
	// MaxBodyBytes bounds a submission body (default 8 MiB).
	MaxBodyBytes int64
	// RetainJobs bounds finished job records kept queryable (default 4096).
	RetainJobs int
	// Vnodes is the consistent-hash virtual-node fanout (default 64).
	Vnodes int
	// Client performs all runner HTTP calls (default: a client with a
	// 30s overall timeout).
	Client *http.Client
	// Logger receives structured operational logs (default: discarded).
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.DeadAfter <= 0 {
		c.DeadAfter = 5 * time.Second
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 50 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.SpillLoad <= 0 {
		c.SpillLoad = 4
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// Job states as the coordinator tracks them. Queued and dispatched are
// coordinator-side; terminal states mirror the runner's verdict.
const (
	stateQueued     = "queued"
	stateDispatched = "dispatched"
	stateDone       = "done"
	stateFailed     = "failed"
	stateCanceled   = "canceled"
)

// fjob is one fleet job. Epoch is the at-most-once guard: every
// re-dispatch (retry, cancel, recovery) increments it, and a poll
// goroutine only applies results while its epoch is still current — a
// result from a runner presumed dead can never clobber the retry's.
type fjob struct {
	id     string
	tenant string
	req    server.SubmitRequest
	key    string // program content hash: the routing and artifact key

	state       string
	node        string // dispatch target while dispatched; last node after
	remoteID    string
	epoch       int
	retries     int
	notBefore   time.Time
	submittedAt time.Time
	errMsg      string
	view        *server.JobView // latest view polled from the runner
}

// JobView is the coordinator's GET /v1/jobs/{id} payload: the runner's
// own view (verbatim — results, phases, cache bits) plus the fleet
// placement fields.
type JobView struct {
	server.JobView
	Node    string `json:"node,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Epoch   int    `json:"epoch,omitempty"`
	Retries int    `json:"retries,omitempty"`
}

// nodeState is everything the coordinator knows about one runner.
type nodeState struct {
	url      string
	alive    bool
	lastSeen time.Time
	health   server.HealthView
	cache    accmos.CacheStats
	inflight int // coordinator-dispatched jobs not yet terminal
}

// Coordinator is the fleet's front door: it speaks the same /v1/jobs
// API as a single accmosd, but behind it jobs are sharded across
// runner nodes by consistent hash on the generated program's content
// hash, artifacts are shipped to cold nodes, dead runners' jobs are
// retried, and accepted work survives coordinator restarts.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	client  *http.Client
	mux     *http.ServeMux
	metrics *metrics
	quotas  *Quotas
	ring    *Ring
	store   *Store
	start   time.Time
	done    chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	nodes     map[string]*nodeState
	jobs      map[string]*fjob
	queue     []*fjob
	holders   map[string]map[string]bool // program key -> nodes holding its artifact
	doneOrder []string
	nextID    int
	closed    bool
}

// NewCoordinator builds and starts a coordinator: recovers any jobs
// pending in the store, then runs the dispatcher and the heartbeat
// reaper until Close.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg.fillDefaults()
	c := &Coordinator{
		cfg:     cfg,
		log:     cfg.Logger,
		client:  cfg.Client,
		quotas:  NewQuotas(cfg.TenantRate, cfg.TenantBurst),
		ring:    NewRing(cfg.Vnodes),
		start:   time.Now(),
		done:    make(chan struct{}),
		nodes:   make(map[string]*nodeState),
		jobs:    make(map[string]*fjob),
		holders: make(map[string]map[string]bool),
	}
	c.cond = sync.NewCond(&c.mu)
	c.metrics = newMetrics(c)

	if cfg.StoreDir != "" {
		store, pending, err := Open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		c.store = store
		for _, p := range pending {
			c.recover(p)
		}
		if err := store.Compact(pendingSnapshot(c)); err != nil {
			c.log.Warn("job store compaction failed", "err", err)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("POST /v1/fleet/join", c.handleJoin)
	mux.HandleFunc("POST /v1/fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /v1/fleet/nodes", c.handleNodes)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux = mux

	go c.dispatcher()
	go c.reaper()
	return c, nil
}

// Handler exposes the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Close stops the dispatcher, reaper and poll loops and releases the
// store. Queued jobs stay in the store and recover on the next start.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.cond.Broadcast()
	if c.store != nil {
		c.store.Close()
	}
}

// recover requeues one job from the store with a bumped epoch. A job
// that had been dispatched before the crash may have completed on its
// runner — the new coordinator cannot know, so it re-runs it
// (at-least-once across restarts; harmless because simulation is
// deterministic and results are content-addressed).
func (c *Coordinator) recover(p PendingJob) {
	j := &fjob{
		id:          p.ID,
		tenant:      p.Tenant,
		req:         p.Req,
		state:       stateQueued,
		epoch:       p.Epoch + 1,
		retries:     p.Retries,
		submittedAt: time.Now(),
	}
	if spec, _, err := server.SpecFromRequest(p.Req, c.cfg.DefaultOptLevel, c.cfg.DefaultPartitions, c.cfg.JobTimeout); err == nil {
		if key, err := server.ProgramKey(spec); err == nil {
			j.key = key
		}
	}
	c.jobs[j.id] = j
	c.queue = append(c.queue, j)
	if n := numericSuffix(p.ID); n >= c.nextID {
		c.nextID = n + 1
	}
	c.log.Info("job recovered from store", "corr", j.id, "epoch", j.epoch)
}

// numericSuffix parses the trailing digit run of a job id, so a
// restarted coordinator resumes minting above every recovered id.
func numericSuffix(id string) int {
	i := len(id)
	for i > 0 && id[i-1] >= '0' && id[i-1] <= '9' {
		i--
	}
	n := 0
	for ; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return n
}

func pendingSnapshot(c *Coordinator) []PendingJob {
	var out []PendingJob
	for _, j := range c.queue {
		out = append(out, PendingJob{ID: j.id, Tenant: j.tenant, Req: j.req, Epoch: j.epoch, Retries: j.retries})
	}
	return out
}

func (c *Coordinator) appendWAL(rec Record) {
	if c.store == nil {
		return
	}
	if err := c.store.Append(rec); err != nil {
		c.log.Warn("job store append failed", "op", rec.Op, "corr", rec.ID, "err", err)
	}
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, server.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.SubmitRequest
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding submission: %v", err)
		return
	}
	if !c.quotas.Allow(req.Tenant, time.Now()) {
		c.metrics.quotaRejects.Inc()
		c.metrics.jobs.With("rejected").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, server.ErrorResponse{
			Error:         fmt.Sprintf("tenant %q over quota", req.Tenant),
			RetryAfterSec: 1,
		})
		return
	}
	// Admit here — same path as a standalone accmosd — so a rejection
	// costs no dispatch, and compute the program's content hash, which
	// is both the routing key and the artifact handle.
	spec, _, err := server.SpecFromRequest(req, c.cfg.DefaultOptLevel, c.cfg.DefaultPartitions, c.cfg.JobTimeout)
	if err != nil {
		c.metrics.jobs.With("rejected").Inc()
		if ae, ok := err.(*server.AdmissionError); ok {
			writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: ae.Msg, Lint: ae.Lint})
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := server.ProgramKey(spec)
	if err != nil {
		c.metrics.jobs.With("rejected").Inc()
		writeError(w, http.StatusBadRequest, "generating program: %v", err)
		return
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "coordinator shutting down")
		return
	}
	id := fmt.Sprintf("f-%06d", c.nextID)
	c.nextID++
	j := &fjob{
		id: id, tenant: req.Tenant, req: req, key: key,
		state: stateQueued, submittedAt: time.Now(),
	}
	c.jobs[id] = j
	c.queue = append(c.queue, j)
	depth := len(c.queue)
	c.mu.Unlock()

	c.appendWAL(Record{Op: "submit", ID: id, Tenant: req.Tenant, Req: &req})
	c.metrics.jobs.With("submitted").Inc()
	c.log.Info("job accepted", "corr", id, "tenant", req.Tenant, "key", key[:12])
	c.cond.Broadcast()
	writeJSON(w, http.StatusAccepted, server.SubmitResponse{ID: id, State: server.JobQueued, QueueDepth: depth})
}

// viewLocked renders a job in wire form. For dispatched jobs the
// embedded view is whatever the last poll saw; placement fields are
// always the coordinator's own truth.
func (c *Coordinator) viewLocked(j *fjob) JobView {
	var v JobView
	if j.view != nil {
		v.JobView = *j.view
	}
	v.ID = j.id
	v.SubmittedAt = j.submittedAt
	v.Tenant = j.tenant
	v.Node = j.node
	v.Epoch = j.epoch
	v.Retries = j.retries
	switch j.state {
	case stateQueued:
		v.State = server.JobQueued
	case stateDispatched:
		if v.State == "" || v.State.Terminal() {
			v.State = server.JobRunning
		}
	case stateDone:
		v.State = server.JobDone
	case stateFailed:
		v.State = server.JobFailed
	case stateCanceled:
		v.State = server.JobCanceled
	}
	if j.errMsg != "" && v.Error == "" {
		v.Error = j.errMsg
	}
	return v
}

func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	v := c.viewLocked(j)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	var remote, remoteID string
	switch j.state {
	case stateQueued:
		c.removeQueuedLocked(j)
		c.finishLocked(j, stateCanceled, "canceled by client")
	case stateDispatched:
		remote, remoteID = j.node, j.remoteID
		j.epoch++ // orphan the poll goroutine: its result must not land
		if n := c.nodes[j.node]; n != nil {
			n.inflight--
		}
		c.finishLocked(j, stateCanceled, "canceled by client")
	}
	v := c.viewLocked(j)
	c.mu.Unlock()
	if remote != "" {
		req, _ := http.NewRequest(http.MethodDelete, remote+"/v1/jobs/"+remoteID, nil)
		if resp, err := c.client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// handleEvents proxies the runner's live NDJSON stream for a dispatched
// job; for a queued or finished job it emits the current view as a
// single line, mirroring a completed accmosd stream.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	j, ok := c.jobs[r.PathValue("id")]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	node, remoteID, state := j.node, j.remoteID, j.state
	v := c.viewLocked(j)
	c.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	if state != stateDispatched {
		json.NewEncoder(w).Encode(v)
		return
	}
	resp, err := c.client.Get(node + "/v1/jobs/" + remoteID + "/events")
	if err != nil || resp.StatusCode != http.StatusOK {
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		json.NewEncoder(w).Encode(v)
		return
	}
	defer resp.Body.Close()
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			w.Write(buf[:n])
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// JoinRequest registers a runner with the coordinator.
type JoinRequest struct {
	URL string `json:"url"`
}

// Heartbeat is a runner's periodic liveness + load report. The
// coordinator upserts unknown nodes, so a heartbeat doubles as (re-)
// registration — after a coordinator restart the fleet reassembles
// itself within one heartbeat interval, no operator action needed.
type Heartbeat struct {
	URL    string            `json:"url"`
	Health server.HealthView `json:"health"`
	Cache  accmos.CacheStats `json:"cache"`
}

func (c *Coordinator) upsertNode(url string, hb *Heartbeat) {
	c.mu.Lock()
	n, ok := c.nodes[url]
	if !ok {
		n = &nodeState{url: url}
		c.nodes[url] = n
		c.log.Info("node joined", "node", url)
	}
	revived := !n.alive
	n.alive = true
	n.lastSeen = time.Now()
	if hb != nil {
		n.health = hb.Health
		n.cache = hb.Cache
		c.metrics.nodeHits.With(url).Set(hb.Cache.Hits)
		c.metrics.nodeMisses.With(url).Set(hb.Cache.Misses)
	}
	c.mu.Unlock()
	c.ring.Add(url)
	if revived {
		c.cond.Broadcast()
	}
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		writeError(w, http.StatusBadRequest, "join needs a url")
		return
	}
	c.upsertNode(req.URL, nil)
	c.mu.Lock()
	nodes := len(c.nodes)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "nodes": nodes})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil || hb.URL == "" {
		writeError(w, http.StatusBadRequest, "heartbeat needs a url")
		return
	}
	c.upsertNode(hb.URL, &hb)
	w.WriteHeader(http.StatusNoContent)
}

// NodeView is one runner in GET /v1/fleet/nodes.
type NodeView struct {
	URL       string            `json:"url"`
	Alive     bool              `json:"alive"`
	AgeNanos  int64             `json:"lastHeartbeatAgeNanos"`
	Inflight  int               `json:"inflight"`
	Artifacts int               `json:"artifacts"`
	HitRate   float64           `json:"cacheHitRate"`
	Health    server.HealthView `json:"health"`
	Cache     accmos.CacheStats `json:"cache"`
}

func (c *Coordinator) nodeViews() []NodeView {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]NodeView, 0, len(c.nodes))
	for _, n := range c.nodes {
		held := 0
		for _, set := range c.holders {
			if set[n.url] {
				held++
			}
		}
		out = append(out, NodeView{
			URL: n.url, Alive: n.alive, AgeNanos: now.Sub(n.lastSeen).Nanoseconds(),
			Inflight: n.inflight, Artifacts: held, HitRate: n.cache.HitRate(),
			Health: n.health, Cache: n.cache,
		})
	}
	sortNodeViews(out)
	return out
}

func sortNodeViews(v []NodeView) {
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k].URL < v[k-1].URL; k-- {
			v[k], v[k-1] = v[k-1], v[k]
		}
	}
}

func (c *Coordinator) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.nodeViews())
}

// HealthView is the coordinator's /healthz payload.
type HealthView struct {
	Status      string `json:"status"`
	Role        string `json:"role"`
	QueueDepth  int    `json:"queueDepth"`
	Inflight    int    `json:"inflight"`
	Nodes       int    `json:"nodes"`
	LiveNodes   int    `json:"liveNodes"`
	UptimeNanos int64  `json:"uptimeNanos"`
}

// Health snapshots the coordinator's readiness.
func (c *Coordinator) Health() HealthView {
	c.mu.Lock()
	defer c.mu.Unlock()
	hv := HealthView{
		Status: "ok", Role: "coordinator",
		QueueDepth: len(c.queue), Nodes: len(c.nodes),
		UptimeNanos: time.Since(c.start).Nanoseconds(),
	}
	for _, n := range c.nodes {
		if n.alive {
			hv.LiveNodes++
		}
	}
	for _, j := range c.jobs {
		if j.state == stateDispatched {
			hv.Inflight++
		}
	}
	if hv.LiveNodes == 0 {
		hv.Status = "no-runners"
	}
	return hv
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Health())
}

// MetricsView is the coordinator's JSON /metrics payload; ?format=prom
// selects Prometheus text exposition of the same registry.
type MetricsView struct {
	Jobs            map[string]int64 `json:"jobs"`
	QueueDepth      int              `json:"queueDepth"`
	Inflight        int              `json:"inflight"`
	WarmRoutes      int64            `json:"warmRoutes"`
	SpillRoutes     int64            `json:"spillRoutes"`
	Transfers       int64            `json:"artifactTransfers"`
	Retries         int64            `json:"retries"`
	Evictions       int64            `json:"nodeEvictions"`
	QuotaRejections int64            `json:"quotaRejections"`
	Nodes           []NodeView       `json:"nodes"`
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if f := r.URL.Query().Get("format"); f == "prom" || f == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.metrics.writePrometheus(w)
		return
	}
	hv := c.Health()
	writeJSON(w, http.StatusOK, MetricsView{
		Jobs:            c.metrics.jobCounts(),
		QueueDepth:      hv.QueueDepth,
		Inflight:        hv.Inflight,
		WarmRoutes:      c.metrics.warmRoutes.Value(),
		SpillRoutes:     c.metrics.spillRoutes.Value(),
		Transfers:       c.metrics.transfers.Value(),
		Retries:         c.metrics.retries.Value(),
		Evictions:       c.metrics.evictions.Value(),
		QuotaRejections: c.metrics.quotaRejects.Value(),
		Nodes:           c.nodeViews(),
	})
}

// ---- scheduling ----

// removeQueuedLocked drops j from the dispatch queue.
func (c *Coordinator) removeQueuedLocked(j *fjob) {
	for i, q := range c.queue {
		if q == j {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// finishLocked records a terminal state and trims old records.
func (c *Coordinator) finishLocked(j *fjob, state, errMsg string) {
	j.state = state
	if errMsg != "" && j.errMsg == "" {
		j.errMsg = errMsg
	}
	switch state {
	case stateDone:
		c.metrics.jobs.With("done").Inc()
		c.appendWAL(Record{Op: "done", ID: j.id})
	case stateFailed:
		c.metrics.jobs.With("failed").Inc()
		c.appendWAL(Record{Op: "fail", ID: j.id, Err: j.errMsg})
	case stateCanceled:
		c.metrics.jobs.With("canceled").Inc()
		c.appendWAL(Record{Op: "cancel", ID: j.id})
	}
	c.doneOrder = append(c.doneOrder, j.id)
	for len(c.doneOrder) > c.cfg.RetainJobs {
		delete(c.jobs, c.doneOrder[0])
		c.doneOrder = c.doneOrder[1:]
	}
	c.log.Info("job finished", "corr", j.id, "state", state, "node", j.node, "retries", j.retries)
}

// nextReadyLocked pops the first queued job whose backoff has elapsed,
// provided at least one live node exists. The second return is the
// soonest notBefore among still-waiting jobs (zero when none wait).
func (c *Coordinator) nextReadyLocked(now time.Time) (*fjob, time.Time) {
	anyLive := false
	for _, n := range c.nodes {
		if n.alive {
			anyLive = true
			break
		}
	}
	if !anyLive {
		return nil, time.Time{}
	}
	var soonest time.Time
	for i, j := range c.queue {
		if j.notBefore.After(now) {
			if soonest.IsZero() || j.notBefore.Before(soonest) {
				soonest = j.notBefore
			}
			continue
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		return j, time.Time{}
	}
	return nil, soonest
}

// chooseLocked picks the dispatch target for key: the consistent-hash
// home unless it is overloaded, in which case the least-loaded live
// node (preferring artifact holders) takes the job. Returns the
// target, whether it already holds the artifact, whether the route
// spilled off the home, and a live holder to transfer from when cold.
func (c *Coordinator) chooseLocked(key string) (target string, warm, spilled bool, source string) {
	prefs := c.ring.Lookup(key, 0)
	var live []string
	for _, u := range prefs {
		if n := c.nodes[u]; n != nil && n.alive {
			live = append(live, u)
		}
	}
	if len(live) == 0 {
		return "", false, false, ""
	}
	target = live[0]
	load := func(u string) int { return c.nodes[u].inflight }
	if load(target) >= c.cfg.SpillLoad && len(live) > 1 {
		// Home is saturated: spill to the least-loaded live node, with
		// warm holders winning ties so spill still prefers a free ride.
		best := target
		for _, u := range live[1:] {
			if load(u) < load(best) || (load(u) == load(best) && c.holders[key][u] && !c.holders[key][best]) {
				best = u
			}
		}
		if best != target && load(best) < load(target) {
			target = best
			spilled = true
		}
	}
	warm = c.holders[key][target]
	if !warm {
		for u := range c.holders[key] {
			if n := c.nodes[u]; n != nil && n.alive && u != target {
				source = u
				break
			}
		}
	}
	return target, warm, spilled, source
}

// dispatcher is the scheduling loop: one dispatch at a time, blocking
// on the cond until a job is ready and a node is live. Serial dispatch
// keeps placement decisions consistent (each sees the inflight counts
// left by the previous) at a throughput far beyond what job runtimes
// make relevant.
func (c *Coordinator) dispatcher() {
	for {
		c.mu.Lock()
		var j *fjob
		for {
			if c.closed {
				c.mu.Unlock()
				return
			}
			var wakeAt time.Time
			j, wakeAt = c.nextReadyLocked(time.Now())
			if j != nil {
				break
			}
			if !wakeAt.IsZero() {
				// Backoffs pending: arrange a wake-up at the soonest one.
				d := time.Until(wakeAt)
				time.AfterFunc(d, c.cond.Broadcast)
			}
			c.cond.Wait()
		}
		target, warm, spilled, source := c.chooseLocked(j.key)
		if target == "" {
			c.queue = append([]*fjob{j}, c.queue...)
			c.cond.Wait()
			c.mu.Unlock()
			continue
		}
		epoch := j.epoch
		c.mu.Unlock()
		c.dispatch(j, epoch, target, warm, spilled, source)
	}
}

// dispatch ships the artifact if needed and submits the job to target.
func (c *Coordinator) dispatch(j *fjob, epoch int, target string, warm, spilled bool, source string) {
	if spilled {
		c.metrics.spillRoutes.Inc()
	}
	if warm {
		c.metrics.warmRoutes.Inc()
	} else if source != "" {
		if err := c.transfer(j.key, source, target); err != nil {
			c.log.Warn("artifact transfer failed; target will compile", "corr", j.id, "from", source, "to", target, "err", err)
		} else {
			c.metrics.transfers.Inc()
			c.mu.Lock()
			c.holdLocked(j.key, target)
			c.mu.Unlock()
		}
	}

	payload, _ := json.Marshal(j.req)
	resp, err := c.client.Post(target+"/v1/jobs", "application/json", bytes.NewReader(payload))
	if err != nil {
		c.requeue(j, epoch, fmt.Sprintf("dispatch to %s: %v", target, err))
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var sub server.SubmitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			c.requeue(j, epoch, fmt.Sprintf("dispatch to %s: bad ack: %v", target, err))
			return
		}
		c.mu.Lock()
		if j.epoch != epoch || j.state != stateQueued {
			// Canceled while we were on the wire; reap the orphan.
			c.mu.Unlock()
			req, _ := http.NewRequest(http.MethodDelete, target+"/v1/jobs/"+sub.ID, nil)
			if resp, err := c.client.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			return
		}
		j.state = stateDispatched
		j.node = target
		j.remoteID = sub.ID
		if n := c.nodes[target]; n != nil {
			n.inflight++
		}
		c.mu.Unlock()
		c.appendWAL(Record{Op: "dispatch", ID: j.id, Node: target, Epoch: epoch})
		c.log.Info("job dispatched", "corr", j.id, "node", target, "remote", sub.ID, "warm", warm, "spilled", spilled)
		go c.poll(j, epoch, target, sub.ID)
	case resp.StatusCode == http.StatusTooManyRequests:
		// Back off briefly without burning a retry: the runner is alive,
		// just full.
		c.mu.Lock()
		j.notBefore = time.Now().Add(c.cfg.RetryBase)
		c.queue = append(c.queue, j)
		c.mu.Unlock()
		time.AfterFunc(c.cfg.RetryBase, c.cond.Broadcast)
	default:
		// The runner rejected the job outright (4xx admission, 5xx).
		c.mu.Lock()
		c.finishLocked(j, stateFailed, fmt.Sprintf("runner %s refused job: %s: %s", target, resp.Status, truncate(body, 512)))
		c.mu.Unlock()
	}
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// requeue puts a failed dispatch back with capped exponential backoff,
// or fails it once retries are exhausted.
func (c *Coordinator) requeue(j *fjob, epoch int, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j.epoch != epoch || j.state != stateQueued && j.state != stateDispatched {
		return
	}
	j.epoch++
	j.retries++
	j.node = ""
	j.remoteID = ""
	if j.retries > c.cfg.MaxRetries {
		c.finishLocked(j, stateFailed, reason+" (retries exhausted)")
		return
	}
	backoff := c.cfg.RetryBase << (j.retries - 1)
	if backoff > c.cfg.RetryMax {
		backoff = c.cfg.RetryMax
	}
	j.state = stateQueued
	j.notBefore = time.Now().Add(backoff)
	c.queue = append(c.queue, j)
	c.metrics.retries.Inc()
	c.appendWAL(Record{Op: "retry", ID: j.id, Epoch: j.epoch, Retries: j.retries, Err: reason})
	c.log.Warn("job requeued", "corr", j.id, "retry", j.retries, "backoff", backoff, "reason", reason)
	time.AfterFunc(backoff, c.cond.Broadcast)
}

// holdLocked records that node holds key's compiled artifact.
func (c *Coordinator) holdLocked(key, node string) {
	if key == "" {
		return
	}
	set := c.holders[key]
	if set == nil {
		set = make(map[string]bool)
		c.holders[key] = set
	}
	set[node] = true
}

// transfer ships key's artifact from one node's cache to another:
// GET from the holder (bytes + digest), PUT to the target, which
// verifies the digest before installing.
func (c *Coordinator) transfer(key, from, to string) error {
	resp, err := c.client.Get(from + "/v1/artifacts/" + key)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("holder: %s", resp.Status)
	}
	digest := resp.Header.Get(server.DigestHeader)
	req, err := http.NewRequest(http.MethodPut, to+"/v1/artifacts/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set(server.DigestHeader, digest)
	req.Header.Set("Content-Type", "application/octet-stream")
	putResp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("target: %s", putResp.Status)
	}
	return nil
}

// poll tracks one dispatched job on its runner until it is terminal.
// The captured epoch is the at-most-once guard: if the job was retried
// or canceled meanwhile, this goroutine's observations are stale and
// must not be applied.
func (c *Coordinator) poll(j *fjob, epoch int, node, remoteID string) {
	t := time.NewTicker(c.cfg.PollEvery)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		c.mu.Lock()
		stale := j.epoch != epoch || j.state != stateDispatched
		c.mu.Unlock()
		if stale {
			return
		}
		resp, err := c.client.Get(node + "/v1/jobs/" + remoteID)
		if err != nil {
			// Node unreachable — the reaper decides whether it is dead;
			// keep polling until our epoch is invalidated.
			continue
		}
		var v server.JobView
		decodeErr := json.NewDecoder(resp.Body).Decode(&v)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || decodeErr != nil {
			continue
		}
		c.mu.Lock()
		if j.epoch != epoch || j.state != stateDispatched {
			c.mu.Unlock()
			return
		}
		j.view = &v
		if v.State.Terminal() {
			if n := c.nodes[node]; n != nil {
				n.inflight--
			}
			if v.State == server.JobDone && v.ArtifactHash != "" {
				c.holdLocked(v.ArtifactHash, node)
			}
			switch v.State {
			case server.JobDone:
				c.finishLocked(j, stateDone, "")
			case server.JobFailed:
				c.finishLocked(j, stateFailed, v.Error)
			case server.JobCanceled:
				c.finishLocked(j, stateCanceled, v.Error)
			}
			c.mu.Unlock()
			c.cond.Broadcast()
			return
		}
		c.mu.Unlock()
	}
}

// reaper evicts nodes that miss the heartbeat deadline and retries
// their in-flight jobs elsewhere.
func (c *Coordinator) reaper() {
	interval := c.cfg.DeadAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		var evicted []string
		c.mu.Lock()
		for url, n := range c.nodes {
			if n.alive && now.Sub(n.lastSeen) > c.cfg.DeadAfter {
				n.alive = false
				n.inflight = 0
				evicted = append(evicted, url)
				c.metrics.evictions.Inc()
				// The node's cached artifacts die with it for routing
				// purposes; if it rejoins, completions will re-record them.
				for _, set := range c.holders {
					delete(set, url)
				}
			}
		}
		var orphans []*fjob
		for _, j := range c.jobs {
			if j.state == stateDispatched {
				for _, url := range evicted {
					if j.node == url {
						orphans = append(orphans, j)
					}
				}
			}
		}
		c.mu.Unlock()
		for _, url := range evicted {
			c.ring.Remove(url)
			c.log.Warn("node evicted: heartbeat deadline missed", "node", url, "deadAfter", c.cfg.DeadAfter)
		}
		for _, j := range orphans {
			c.mu.Lock()
			epoch := j.epoch
			c.mu.Unlock()
			c.requeue(j, epoch, fmt.Sprintf("runner %s died", j.node))
		}
		if len(evicted) > 0 {
			c.cond.Broadcast()
		}
	}
}
