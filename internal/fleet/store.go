package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"accmos/internal/server"
)

// Record is one append-only job-store entry. The WAL is a JSONL file of
// these; replaying it reconstructs every job the coordinator had
// accepted but not finished, which is exactly what must survive a
// coordinator restart (finished jobs only need their terminal marker so
// replay can drop them).
type Record struct {
	// Op is the lifecycle event: submit, dispatch, retry, done, fail,
	// cancel.
	Op     string `json:"op"`
	ID     string `json:"id"`
	Tenant string `json:"tenant,omitempty"`
	// Req is the original wire submission, kept verbatim on submit
	// records so a recovered job re-admits through the same path as a
	// fresh one.
	Req     *server.SubmitRequest `json:"req,omitempty"`
	Node    string                `json:"node,omitempty"`
	Epoch   int                   `json:"epoch,omitempty"`
	Retries int                   `json:"retries,omitempty"`
	Err     string                `json:"err,omitempty"`
}

// PendingJob is a job reconstructed from the store: accepted, possibly
// dispatched, but with no terminal record. The coordinator requeues
// these on startup with a bumped epoch — at-least-once across a
// coordinator crash, which is safe because simulation is deterministic.
type PendingJob struct {
	ID      string
	Tenant  string
	Req     server.SubmitRequest
	Epoch   int
	Retries int
	// Dispatched reports the job had been sent to a runner before the
	// restart (its result, if any, is orphaned — the new coordinator
	// re-runs it).
	Dispatched bool
}

// Store is the coordinator's durable job log: a snapshot of live jobs
// plus an append-only WAL of everything since. Open replays snapshot
// then WAL; Compact folds the WAL back into a fresh snapshot.
type Store struct {
	dir string

	mu  sync.Mutex
	wal *os.File
}

const (
	snapshotFile = "snapshot.jsonl"
	walFile      = "wal.jsonl"
)

// Open loads the store at dir (created if missing), returning the jobs
// that were live at the last shutdown and a handle for further appends.
func Open(dir string) (*Store, []PendingJob, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("job store: %w", err)
	}
	live := make(map[string]*PendingJob)
	var order []string
	apply := func(rec Record) {
		switch rec.Op {
		case "submit":
			if rec.Req == nil {
				return
			}
			live[rec.ID] = &PendingJob{ID: rec.ID, Tenant: rec.Tenant, Req: *rec.Req, Epoch: rec.Epoch, Retries: rec.Retries}
			order = append(order, rec.ID)
		case "dispatch":
			if j := live[rec.ID]; j != nil {
				j.Dispatched = true
				j.Epoch = rec.Epoch
			}
		case "retry":
			if j := live[rec.ID]; j != nil {
				j.Dispatched = false
				j.Epoch = rec.Epoch
				j.Retries = rec.Retries
			}
		case "done", "fail", "cancel":
			delete(live, rec.ID)
		}
	}
	for _, name := range []string{snapshotFile, walFile} {
		if err := replayFile(filepath.Join(dir, name), apply); err != nil {
			return nil, nil, err
		}
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("job store: %w", err)
	}
	var pending []PendingJob
	for _, id := range order {
		if j := live[id]; j != nil {
			pending = append(pending, *j)
		}
	}
	sort.SliceStable(pending, func(a, b int) bool { return pending[a].ID < pending[b].ID })
	return &Store{dir: dir, wal: wal}, pending, nil
}

// replayFile feeds every record of a JSONL file to apply; a missing
// file is an empty log. A trailing torn line (a crash mid-append) is
// tolerated; any earlier malformed line is corruption and reported.
func replayFile(path string, apply func(Record)) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("job store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var deferredErr error
	for sc.Scan() {
		if deferredErr != nil {
			return fmt.Errorf("job store: corrupt record in %s: %w", filepath.Base(path), deferredErr)
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Only fatal if another line follows; a torn final line is
			// the expected shape of a crash mid-write.
			deferredErr = err
			continue
		}
		apply(rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("job store: reading %s: %w", filepath.Base(path), err)
	}
	return nil
}

// Append durably logs one record. Errors are returned, not fatal: the
// coordinator keeps serving from memory and reports degraded
// durability.
func (s *Store) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err = s.wal.Write(append(data, '\n'))
	return err
}

// Compact rewrites the snapshot as one submit record per live job and
// truncates the WAL — called after recovery so the log never grows
// across restarts.
func (s *Store) Compact(pending []PendingJob) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for i := range pending {
		j := &pending[i]
		req := j.Req
		if err := enc.Encode(Record{Op: "submit", ID: j.ID, Tenant: j.Tenant, Req: &req, Epoch: j.Epoch, Retries: j.Retries}); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return err
	}
	// Truncate the WAL only after the snapshot is durable.
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	_, err = s.wal.Seek(0, 0)
	return err
}

// Close releases the WAL handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Close()
}
