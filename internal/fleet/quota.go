package fleet

import (
	"sync"
	"time"
)

// Quotas is a per-tenant token-bucket admission gate: each tenant gets
// burst tokens refilled at rate per second, and a submission that finds
// the bucket empty is rejected with 429 before any parsing or
// scheduling work is spent on it. Rate <= 0 disables the gate.
type Quotas struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuotas builds the gate. burst <= 0 defaults to rate (a full
// second's allowance), so NewQuotas(5, 0) means "5 jobs/s, burst 5".
func NewQuotas(rate, burst float64) *Quotas {
	if burst <= 0 {
		burst = rate
	}
	return &Quotas{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// Allow spends one token from tenant's bucket at time now, reporting
// whether the submission may proceed. now is explicit so tests drive
// the clock.
func (q *Quotas) Allow(tenant string, now time.Time) bool {
	if q == nil || q.rate <= 0 {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
