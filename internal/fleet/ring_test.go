package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"accmos/internal/server"
)

// openAppend reopens the WAL for raw appends, to fake a torn write.
func openAppend(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
}

func TestRingLookupDistinctAndStable(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"http://a", "http://b", "http://c", "http://d"}
	for _, n := range nodes {
		r.Add(n)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	prefs := r.Lookup("some-program-hash", 0)
	if len(prefs) != 4 {
		t.Fatalf("Lookup returned %d nodes, want 4", len(prefs))
	}
	seen := map[string]bool{}
	for _, n := range prefs {
		if seen[n] {
			t.Fatalf("duplicate node %s in preference list %v", n, prefs)
		}
		seen[n] = true
	}
	// Same key, same list — routing must be deterministic.
	for i := 0; i < 5; i++ {
		again := r.Lookup("some-program-hash", 0)
		for k := range again {
			if again[k] != prefs[k] {
				t.Fatalf("lookup unstable: %v vs %v", again, prefs)
			}
		}
	}
}

// TestRingHomeStability is the property warm routing rests on: removing
// one node only moves the keys homed on it; every other key keeps its
// home (so its warm cache).
func TestRingHomeStability(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"http://a", "http://b", "http://c", "http://d"} {
		r.Add(n)
	}
	const keys = 500
	home := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("hash-%04d", i)
		home[k] = r.Lookup(k, 1)[0]
	}
	r.Remove("http://c")
	moved := 0
	for k, h := range home {
		now := r.Lookup(k, 1)[0]
		if h == "http://c" {
			if now == "http://c" {
				t.Fatalf("key %s still homed on removed node", k)
			}
			continue
		}
		if now != h {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys homed on surviving nodes moved after an unrelated removal", moved)
	}
	// Re-adding restores the original homes exactly.
	r.Add("http://c")
	for k, h := range home {
		if now := r.Lookup(k, 1)[0]; now != h {
			t.Fatalf("key %s home %s != original %s after re-add", k, now, h)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	counts := map[string]int{}
	for _, n := range []string{"http://a", "http://b", "http://c", "http://d"} {
		r.Add(n)
	}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("hash-%05d", i), 1)[0]]++
	}
	for n, got := range counts {
		if got < keys/4/3 || got > keys/4*3 {
			t.Errorf("node %s owns %d of %d keys — ring badly unbalanced: %v", n, got, keys, counts)
		}
	}
}

func TestQuotaTokenBucket(t *testing.T) {
	q := NewQuotas(2, 2) // 2 jobs/s, burst 2
	now := time.Unix(1000, 0)
	if !q.Allow("acme", now) || !q.Allow("acme", now) {
		t.Fatal("burst tokens refused")
	}
	if q.Allow("acme", now) {
		t.Fatal("third immediate submission allowed past burst")
	}
	// Tenants are isolated.
	if !q.Allow("other", now) {
		t.Fatal("fresh tenant refused")
	}
	// Half a second refills one token at rate 2/s.
	now = now.Add(500 * time.Millisecond)
	if !q.Allow("acme", now) {
		t.Fatal("refilled token refused")
	}
	if q.Allow("acme", now) {
		t.Fatal("second token allowed before refill")
	}
	// Idle time never accumulates past burst.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if !q.Allow("acme", now) {
			t.Fatalf("token %d refused after long idle", i)
		}
	}
	if q.Allow("acme", now) {
		t.Fatal("burst cap not enforced after long idle")
	}
	// Disabled gate admits everything.
	var off *Quotas
	if !off.Allow("anyone", now) || !NewQuotas(0, 0).Allow("anyone", now) {
		t.Fatal("disabled quota refused a submission")
	}
}

func TestStoreRecoversPendingJobs(t *testing.T) {
	dir := t.TempDir()
	st, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh store has %d pending jobs", len(pending))
	}
	req := func(model string) *server.SubmitRequest {
		return &server.SubmitRequest{Model: model, Steps: 10, Tenant: "acme"}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(st.Append(Record{Op: "submit", ID: "f-000001", Tenant: "acme", Req: req("m1")}))
	must(st.Append(Record{Op: "submit", ID: "f-000002", Tenant: "acme", Req: req("m2")}))
	must(st.Append(Record{Op: "dispatch", ID: "f-000001", Node: "http://a", Epoch: 0}))
	must(st.Append(Record{Op: "submit", ID: "f-000003", Req: req("m3")}))
	must(st.Append(Record{Op: "done", ID: "f-000001"}))
	must(st.Append(Record{Op: "dispatch", ID: "f-000002", Node: "http://a", Epoch: 0}))
	must(st.Append(Record{Op: "retry", ID: "f-000002", Epoch: 1, Retries: 1}))
	must(st.Close())

	st2, pending, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 {
		t.Fatalf("recovered %d jobs, want 2 (got %+v)", len(pending), pending)
	}
	if pending[0].ID != "f-000002" || pending[1].ID != "f-000003" {
		t.Fatalf("wrong pending ids: %+v", pending)
	}
	if pending[0].Epoch != 1 || pending[0].Retries != 1 || pending[0].Dispatched {
		t.Errorf("retry state lost: %+v", pending[0])
	}
	if pending[0].Req.Model != "m2" || pending[0].Tenant != "acme" {
		t.Errorf("submission not preserved: %+v", pending[0])
	}

	// Compaction folds the WAL into the snapshot; a third open sees the
	// same pending set.
	must(st2.Compact(pending))
	must(st2.Close())
	_, pending3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending3) != 2 || pending3[0].ID != "f-000002" || pending3[0].Epoch != 1 {
		t.Fatalf("post-compaction recovery wrong: %+v", pending3)
	}
}

// TestStoreToleratesTornTail simulates a crash mid-append: a truncated
// final line is skipped, everything before it replays.
func TestStoreToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(Record{Op: "submit", ID: "f-000001", Req: &server.SubmitRequest{Model: "m"}}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	f, err := openAppend(dir)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"submit","id":"f-0000`) // torn: no newline, invalid JSON
	f.Close()

	_, pending, err := Open(dir)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(pending) != 1 || pending[0].ID != "f-000001" {
		t.Fatalf("recovered %+v", pending)
	}
}
