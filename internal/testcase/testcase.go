// Package testcase generates and transports simulation inputs (the
// paper's "test cases import"). Sources are deterministic: the same Set
// drives the interpreted engines and the generated program with
// bit-identical float64 sequences, so cross-engine output hashes are
// comparable. EmitGo renders each source as Go code embedded in generated
// programs; its formulas must stay in lockstep with At.
package testcase

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"accmos/internal/actors"
)

// SourceKind selects a test-case source flavor.
type SourceKind int

// Source flavors.
const (
	Const SourceKind = iota
	Uniform
	Ramp
	Sine
	Pulse
	Table
)

// Source describes one input port's stimulus.
type Source struct {
	Kind SourceKind

	Value float64 // Const

	Lo, Hi float64 // Uniform range
	Seed   uint64  // Uniform LCG seed

	Start, Slope float64 // Ramp

	Amp, Freq, Phase float64 // Sine

	Period, Width int64   // Pulse timing
	High, Low     float64 // Pulse levels

	Values []float64 // Table, cycled
}

// Validate rejects ill-formed sources.
func (s *Source) Validate() error {
	switch s.Kind {
	case Const, Ramp, Sine:
		return nil
	case Uniform:
		if s.Hi < s.Lo {
			return fmt.Errorf("testcase: uniform Hi < Lo")
		}
		return nil
	case Pulse:
		if s.Period <= 0 {
			return fmt.Errorf("testcase: pulse period %d must be positive", s.Period)
		}
		return nil
	case Table:
		if len(s.Values) == 0 {
			return fmt.Errorf("testcase: empty table source")
		}
		return nil
	}
	return fmt.Errorf("testcase: unknown source kind %d", s.Kind)
}

// Set is one stimulus per input port, in the model's inport order.
type Set struct {
	Sources []Source
}

// Validate checks every source.
func (s *Set) Validate() error {
	for i := range s.Sources {
		if err := s.Sources[i].Validate(); err != nil {
			return fmt.Errorf("source %d: %w", i, err)
		}
	}
	return nil
}

// NewRandomSet builds n uniform sources over [lo, hi] with per-port seeds
// derived from seed — the "equivalent test cases generated through a
// random approach" of the paper's coverage experiment.
func NewRandomSet(n int, seed uint64, lo, hi float64) *Set {
	set := &Set{Sources: make([]Source, n)}
	for i := range set.Sources {
		set.Sources[i] = Source{
			Kind: Uniform,
			Lo:   lo, Hi: hi,
			Seed: seed + uint64(i)*0x9E3779B97F4A7C15,
		}
	}
	return set
}

// Stream is the runtime form of a source: sequential state plus the
// generation formula.
type Stream struct {
	src   Source
	state uint64
}

// Streams instantiates runtime streams for every source.
func (s *Set) Streams() []*Stream {
	out := make([]*Stream, len(s.Sources))
	for i := range s.Sources {
		out[i] = &Stream{src: s.Sources[i], state: s.Sources[i].Seed}
	}
	return out
}

// At returns the stimulus value for the given step. Uniform sources must
// be called with strictly increasing steps (they advance an LCG); the
// other kinds are pure functions of step.
func (st *Stream) At(step int64) float64 {
	s := &st.src
	switch s.Kind {
	case Const:
		return s.Value
	case Uniform:
		st.state = actors.LCGNext(st.state)
		return actors.LCGFloat(st.state)*(s.Hi-s.Lo) + s.Lo
	case Ramp:
		return s.Start + s.Slope*float64(step)
	case Sine:
		return s.Amp * math.Sin(s.Freq*float64(step)+s.Phase)
	case Pulse:
		if step%s.Period < s.Width {
			return s.High
		}
		return s.Low
	case Table:
		return s.Values[int(step%int64(len(s.Values)))]
	}
	return 0
}

// WriteCSV materialises the first steps values of every source as CSV, one
// row per step, one column per source.
func (s *Set) WriteCSV(w io.Writer, steps int64) error {
	cw := csv.NewWriter(w)
	streams := s.Streams()
	row := make([]string, len(streams))
	for step := int64(0); step < steps; step++ {
		for i, st := range streams {
			row[i] = strconv.FormatFloat(st.At(step), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a CSV produced by WriteCSV (or any numeric CSV) into a Set
// of Table sources that cycle through the file's rows.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("testcase: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("testcase: empty CSV")
	}
	n := len(rows[0])
	set := &Set{Sources: make([]Source, n)}
	for i := 0; i < n; i++ {
		set.Sources[i] = Source{Kind: Table, Values: make([]float64, 0, len(rows))}
	}
	for ri, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("testcase: row %d has %d columns, want %d", ri, len(row), n)
		}
		for i, cell := range row {
			f, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("testcase: row %d col %d: %w", ri, i, err)
			}
			set.Sources[i].Values = append(set.Sources[i].Values, f)
		}
	}
	return set, nil
}

// EmitGo renders source i as Go code for generated programs. It returns
// package-level declarations, modelInit statements, and the expression
// yielding the float64 stimulus inside the simulation loop (which may
// reference the loop variable "step"). The formulas mirror At exactly.
func EmitGo(s *Source, prefix string) (globals, inits []string, expr string) {
	lit := func(f float64) string {
		switch {
		case math.IsNaN(f):
			return "math.NaN()"
		case math.IsInf(f, 1):
			return "math.Inf(1)"
		case math.IsInf(f, -1):
			return "math.Inf(-1)"
		}
		str := strconv.FormatFloat(f, 'g', -1, 64)
		for _, c := range str {
			if c == '.' || c == 'e' || c == 'E' {
				return str
			}
		}
		return str + ".0"
	}
	switch s.Kind {
	case Const:
		return nil, nil, lit(s.Value)
	case Uniform:
		sv := prefix + "_seed"
		globals = []string{fmt.Sprintf("var %s uint64", sv)}
		// seedXor is the generated program's -seed-xor flag: sweeping it
		// reruns the same binary over fresh random suites.
		inits = []string{fmt.Sprintf("%s = %d ^ seedXor", sv, s.Seed)}
		// The advance must happen inside the loop; emit a helper function
		// so the expression stays self-contained.
		fn := prefix + "_next"
		globals = append(globals, fmt.Sprintf(
			"func %s() float64 {\n\t%s = %s*%d + %d\n\treturn float64(%s>>11)/9007199254740992.0*((%s)-(%s)) + (%s)\n}",
			fn, sv, sv, uint64(actors.LCGMul), uint64(actors.LCGInc), sv, lit(s.Hi), lit(s.Lo), lit(s.Lo)))
		return globals, inits, fn + "()"
	case Ramp:
		return nil, nil, fmt.Sprintf("(%s + %s*float64(step))", lit(s.Start), lit(s.Slope))
	case Sine:
		return nil, nil, fmt.Sprintf("(%s * math.Sin(%s*float64(step)+%s))", lit(s.Amp), lit(s.Freq), lit(s.Phase))
	case Pulse:
		fn := prefix + "_pulse"
		globals = []string{fmt.Sprintf(
			"func %s(step int64) float64 {\n\tif step%%%d < %d {\n\t\treturn %s\n\t}\n\treturn %s\n}",
			fn, s.Period, s.Width, lit(s.High), lit(s.Low))}
		return globals, nil, fn + "(step)"
	case Table:
		tv := prefix + "_table"
		decl := fmt.Sprintf("var %s = []float64{", tv)
		for i, v := range s.Values {
			if i > 0 {
				decl += ", "
			}
			decl += lit(v)
		}
		decl += "}"
		globals = []string{decl}
		return globals, nil, fmt.Sprintf("%s[int(step%%%d)]", tv, len(s.Values))
	}
	return nil, nil, "0.0"
}

// NeedsMath reports whether the emitted expression references package math.
func NeedsMath(s *Source) bool {
	if s.Kind == Sine {
		return true
	}
	check := func(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
	switch s.Kind {
	case Const:
		return check(s.Value)
	case Uniform:
		return check(s.Lo) || check(s.Hi)
	case Ramp:
		return check(s.Start) || check(s.Slope)
	case Pulse:
		return check(s.High) || check(s.Low)
	case Table:
		for _, v := range s.Values {
			if check(v) {
				return true
			}
		}
	}
	return false
}
