package testcase

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSourceValidate(t *testing.T) {
	good := []Source{
		{Kind: Const, Value: 3},
		{Kind: Uniform, Lo: -1, Hi: 1},
		{Kind: Ramp}, {Kind: Sine},
		{Kind: Pulse, Period: 5},
		{Kind: Table, Values: []float64{1}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []Source{
		{Kind: Uniform, Lo: 1, Hi: -1},
		{Kind: Pulse, Period: 0},
		{Kind: Table},
		{Kind: SourceKind(42)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad[%d]: expected error", i)
		}
	}
}

func TestStreamSemantics(t *testing.T) {
	set := &Set{Sources: []Source{
		{Kind: Const, Value: 2.5},
		{Kind: Ramp, Start: 1, Slope: 2},
		{Kind: Pulse, Period: 4, Width: 2, High: 9, Low: -1},
		{Kind: Table, Values: []float64{10, 20, 30}},
		{Kind: Sine, Amp: 3, Freq: 0.5, Phase: 1},
	}}
	streams := set.Streams()
	for step := int64(0); step < 8; step++ {
		if got := streams[0].At(step); got != 2.5 {
			t.Errorf("const@%d = %g", step, got)
		}
		if got := streams[1].At(step); got != 1+2*float64(step) {
			t.Errorf("ramp@%d = %g", step, got)
		}
		wantPulse := -1.0
		if step%4 < 2 {
			wantPulse = 9
		}
		if got := streams[2].At(step); got != wantPulse {
			t.Errorf("pulse@%d = %g, want %g", step, got, wantPulse)
		}
		if got := streams[3].At(step); got != []float64{10, 20, 30}[step%3] {
			t.Errorf("table@%d = %g", step, got)
		}
		if got := streams[4].At(step); got != 3*math.Sin(0.5*float64(step)+1) {
			t.Errorf("sine@%d = %g", step, got)
		}
	}
}

func TestUniformDeterministicAndInRange(t *testing.T) {
	src := Source{Kind: Uniform, Lo: -5, Hi: 5, Seed: 99}
	s1 := (&Set{Sources: []Source{src}}).Streams()[0]
	s2 := (&Set{Sources: []Source{src}}).Streams()[0]
	for step := int64(0); step < 1000; step++ {
		a, b := s1.At(step), s2.At(step)
		if a != b {
			t.Fatalf("nondeterministic at %d: %g vs %g", step, a, b)
		}
		if a < -5 || a >= 5 {
			t.Fatalf("out of range at %d: %g", step, a)
		}
	}
}

func TestNewRandomSetDistinctSeeds(t *testing.T) {
	set := NewRandomSet(3, 7, 0, 1)
	if len(set.Sources) != 3 {
		t.Fatalf("sources = %d", len(set.Sources))
	}
	seen := map[uint64]bool{}
	for _, s := range set.Sources {
		if seen[s.Seed] {
			t.Fatal("duplicate per-port seed")
		}
		seen[s.Seed] = true
	}
	streams := set.Streams()
	if streams[0].At(0) == streams[1].At(0) && streams[0].At(1) == streams[1].At(1) {
		t.Error("ports produce identical streams")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	set := &Set{Sources: []Source{
		{Kind: Ramp, Start: 0, Slope: 0.5},
		{Kind: Uniform, Lo: -1, Hi: 1, Seed: 3},
	}}
	var buf bytes.Buffer
	if err := set.WriteCSV(&buf, 16); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	orig := set.Streams()
	loaded := back.Streams()
	for step := int64(0); step < 16; step++ {
		for p := 0; p < 2; p++ {
			if orig[p].At(step) != loaded[p].At(step) {
				t.Fatalf("port %d step %d differs", p, step)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV must fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric cell must fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged rows must fail")
	}
}

func TestEmitGoShapes(t *testing.T) {
	cases := []Source{
		{Kind: Const, Value: -2.5},
		{Kind: Uniform, Lo: -1e6, Hi: 1e6, Seed: 5},
		{Kind: Ramp, Start: -3, Slope: 0.25},
		{Kind: Sine, Amp: 1, Freq: 0.1},
		{Kind: Pulse, Period: 7, Width: 3, High: 1, Low: 0},
		{Kind: Table, Values: []float64{1, -2, 3.5}},
	}
	for i := range cases {
		globals, inits, expr := EmitGo(&cases[i], "tcX")
		if expr == "" {
			t.Errorf("case %d: empty expression", i)
		}
		_ = globals
		_ = inits
	}
	// Uniform must emit its seed state and advance helper.
	globals, inits, expr := EmitGo(&cases[1], "tc9")
	joined := strings.Join(globals, "\n")
	if !strings.Contains(joined, "tc9_seed") || !strings.Contains(joined, "func tc9_next()") {
		t.Errorf("uniform globals missing pieces:\n%s", joined)
	}
	if len(inits) != 1 || !strings.Contains(inits[0], "tc9_seed = 5") {
		t.Errorf("uniform inits = %v", inits)
	}
	if expr != "tc9_next()" {
		t.Errorf("uniform expr = %q", expr)
	}
	// Negative bounds must be parenthesised (no "--" token).
	if strings.Contains(joined, "--") {
		t.Errorf("emitted '--' token:\n%s", joined)
	}
}

func TestNeedsMath(t *testing.T) {
	if !NeedsMath(&Source{Kind: Sine}) {
		t.Error("sine needs math")
	}
	if NeedsMath(&Source{Kind: Const, Value: 1}) {
		t.Error("plain const does not need math")
	}
	if !NeedsMath(&Source{Kind: Const, Value: math.Inf(1)}) {
		t.Error("Inf const needs math")
	}
}

// Property: uniform values stay within [Lo, Hi) across seeds and steps.
func TestQuickUniformRange(t *testing.T) {
	f := func(seed uint64, rawLo, span float64) bool {
		lo := math.Mod(rawLo, 1e6)
		hi := lo + math.Abs(math.Mod(span, 1e6)) + 1e-9
		st := (&Set{Sources: []Source{{Kind: Uniform, Lo: lo, Hi: hi, Seed: seed}}}).Streams()[0]
		for step := int64(0); step < 64; step++ {
			v := st.At(step)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
