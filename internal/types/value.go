package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is the boxed runtime representation used by the interpreted engines.
// Exactly one payload field is meaningful, selected by Kind:
//
//	Bool              -> B
//	I8..I64           -> I (already wrapped to the kind's range)
//	U8..U64           -> U (already wrapped)
//	F32, F64          -> F (F32 values are rounded through float32)
//
// A Value with non-nil Elems is a vector whose element kind is Kind; the
// scalar payload fields are then unused.
type Value struct {
	Kind  Kind
	B     bool
	I     int64
	U     uint64
	F     float64
	Elems []Value
}

// IsVector reports whether v carries a vector payload.
func (v Value) IsVector() bool { return v.Elems != nil }

// Width returns 1 for scalars and the element count for vectors.
func (v Value) Width() int {
	if v.Elems != nil {
		return len(v.Elems)
	}
	return 1
}

// BoolVal constructs a boolean scalar.
func BoolVal(b bool) Value { return Value{Kind: Bool, B: b} }

// IntVal constructs a signed-integer scalar of kind k, wrapping i into range.
func IntVal(k Kind, i int64) Value { return Value{Kind: k, I: WrapInt(k, i)} }

// UintVal constructs an unsigned-integer scalar of kind k, wrapping u.
func UintVal(k Kind, u uint64) Value { return Value{Kind: k, U: WrapUint(k, u)} }

// FloatVal constructs a floating-point scalar of kind k.
func FloatVal(k Kind, f float64) Value {
	if k == F32 {
		f = float64(float32(f))
	}
	return Value{Kind: k, F: f}
}

// VectorVal constructs a vector of element kind k from elems. The elements
// are normalised to kind k.
func VectorVal(k Kind, elems ...Value) Value {
	out := Value{Kind: k, Elems: make([]Value, len(elems))}
	for i, e := range elems {
		c, _ := Convert(e, k)
		out.Elems[i] = c
	}
	return out
}

// Zero returns the zero value of kind k.
func Zero(k Kind) Value { return Value{Kind: k} }

// ZeroVector returns a width-element vector of zero values of kind k.
func ZeroVector(k Kind, width int) Value {
	if width <= 1 {
		return Zero(k)
	}
	elems := make([]Value, width)
	for i := range elems {
		elems[i] = Zero(k)
	}
	return Value{Kind: k, Elems: elems}
}

// WrapInt wraps i into the range of signed kind k (two's-complement wrap).
func WrapInt(k Kind, i int64) int64 {
	switch k {
	case I8:
		return int64(int8(i))
	case I16:
		return int64(int16(i))
	case I32:
		return int64(int32(i))
	default:
		return i
	}
}

// WrapUint wraps u into the range of unsigned kind k.
func WrapUint(k Kind, u uint64) uint64 {
	switch k {
	case U8:
		return uint64(uint8(u))
	case U16:
		return uint64(uint16(u))
	case U32:
		return uint64(uint32(u))
	default:
		return u
	}
}

// AsFloat converts v's scalar payload to float64 regardless of kind.
func (v Value) AsFloat() float64 {
	switch {
	case v.Kind == Bool:
		if v.B {
			return 1
		}
		return 0
	case v.Kind.IsSigned():
		return float64(v.I)
	case v.Kind.IsUnsigned():
		return float64(v.U)
	default:
		return v.F
	}
}

// AsInt converts v's scalar payload to int64, truncating floats toward zero.
func (v Value) AsInt() int64 {
	switch {
	case v.Kind == Bool:
		if v.B {
			return 1
		}
		return 0
	case v.Kind.IsSigned():
		return v.I
	case v.Kind.IsUnsigned():
		return int64(v.U)
	default:
		return int64(v.F)
	}
}

// AsBool converts v to a truth value (non-zero is true), matching Simulink's
// implicit boolean conversion at logic-actor inputs.
func (v Value) AsBool() bool {
	switch {
	case v.Kind == Bool:
		return v.B
	case v.Kind.IsSigned():
		return v.I != 0
	case v.Kind.IsUnsigned():
		return v.U != 0
	default:
		return v.F != 0
	}
}

// Elem returns element i of a vector, or v itself for scalars (broadcast).
func (v Value) Elem(i int) Value {
	if v.Elems == nil {
		return v
	}
	return v.Elems[i]
}

// ConvertResult carries loss information detected during a type conversion,
// feeding the downcast / precision-loss / out-of-range diagnoses.
type ConvertResult struct {
	OutOfRange    bool // source value not representable; result wrapped/saturated
	PrecisionLoss bool // fractional part or low-order bits discarded
}

// Convert converts v to kind k with C-style semantics (wrap on integer
// overflow, truncation toward zero for float->int) and reports losses.
func Convert(v Value, k Kind) (Value, ConvertResult) {
	var res ConvertResult
	if v.Elems != nil {
		out := Value{Kind: k, Elems: make([]Value, len(v.Elems))}
		for i, e := range v.Elems {
			c, r := Convert(e, k)
			out.Elems[i] = c
			res.OutOfRange = res.OutOfRange || r.OutOfRange
			res.PrecisionLoss = res.PrecisionLoss || r.PrecisionLoss
		}
		return out, res
	}
	if v.Kind == k {
		return v, res
	}
	switch {
	case k == Bool:
		return BoolVal(v.AsBool()), res
	case k.IsSigned():
		var i int64
		switch {
		case v.Kind == Bool:
			i = v.AsInt()
		case v.Kind.IsSigned():
			i = v.I
		case v.Kind.IsUnsigned():
			if v.U > uint64(math.MaxInt64) {
				res.OutOfRange = true
			}
			i = int64(v.U)
		default:
			f := v.F
			if f != math.Trunc(f) && !math.IsNaN(f) {
				res.PrecisionLoss = true
			}
			// Deterministic float->int: NaN maps to 0, out-of-range
			// saturates at the int64 bounds before the kind-level wrap.
			// Go's native conversion is implementation-defined out of
			// range, so both the interpreter and generated code use this
			// exact rule (see the cvtF2I helper emitted by codegen).
			switch {
			case math.IsNaN(f):
				res.OutOfRange = true
				i = 0
			case f >= 9223372036854775807:
				res.OutOfRange = true
				i = math.MaxInt64
			case f <= -9223372036854775808:
				res.OutOfRange = true
				i = math.MinInt64
			default:
				i = int64(f)
			}
		}
		w := WrapInt(k, i)
		if w != i {
			res.OutOfRange = true
		}
		return Value{Kind: k, I: w}, res
	case k.IsUnsigned():
		var u uint64
		switch {
		case v.Kind == Bool:
			u = uint64(v.AsInt())
		case v.Kind.IsSigned():
			if v.I < 0 {
				res.OutOfRange = true
			}
			u = uint64(v.I)
		case v.Kind.IsUnsigned():
			u = v.U
		default:
			f := v.F
			if f != math.Trunc(f) && !math.IsNaN(f) {
				res.PrecisionLoss = true
			}
			// Deterministic float->uint, mirroring the cvtF2U helper.
			switch {
			case math.IsNaN(f):
				res.OutOfRange = true
				u = 0
			case f >= 18446744073709551615:
				res.OutOfRange = true
				u = math.MaxUint64
			case f < 0:
				res.OutOfRange = true
				u = 0
			default:
				u = uint64(f)
			}
		}
		w := WrapUint(k, u)
		if w != u {
			res.OutOfRange = true
		}
		return Value{Kind: k, U: w}, res
	case k == F32:
		f := v.AsFloat()
		g := float64(float32(f))
		if g != f && !math.IsNaN(f) {
			res.PrecisionLoss = true
		}
		return Value{Kind: F32, F: g}, res
	default: // F64
		f := v.AsFloat()
		if v.Kind == I64 && int64(f) != v.I {
			res.PrecisionLoss = true
		}
		if v.Kind == U64 && uint64(f) != v.U {
			res.PrecisionLoss = true
		}
		return Value{Kind: F64, F: f}, res
	}
}

// Equal reports exact payload equality of two values (same kind, same bits).
func Equal(a, b Value) bool {
	if a.Kind != b.Kind || (a.Elems == nil) != (b.Elems == nil) {
		return false
	}
	if a.Elems != nil {
		if len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !Equal(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	}
	switch {
	case a.Kind == Bool:
		return a.B == b.B
	case a.Kind.IsSigned():
		return a.I == b.I
	case a.Kind.IsUnsigned():
		return a.U == b.U
	default:
		return math.Float64bits(a.F) == math.Float64bits(b.F)
	}
}

// String renders the value for diagnostics and result logs.
func (v Value) String() string {
	if v.Elems != nil {
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.Elems {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	}
	switch {
	case v.Kind == Bool:
		return strconv.FormatBool(v.B)
	case v.Kind.IsSigned():
		return strconv.FormatInt(v.I, 10)
	case v.Kind.IsUnsigned():
		return strconv.FormatUint(v.U, 10)
	case v.Kind.IsFloat():
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return fmt.Sprintf("<%s>", v.Kind)
	}
}

// ParseValue parses a literal of kind k as stored in model files.
func ParseValue(k Kind, s string) (Value, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		fields := strings.Fields(s[1 : len(s)-1])
		elems := make([]Value, 0, len(fields))
		for _, f := range fields {
			e, err := ParseValue(k, f)
			if err != nil {
				return Value{}, err
			}
			elems = append(elems, e)
		}
		return Value{Kind: k, Elems: elems}, nil
	}
	switch {
	case k == Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			// Accept numeric booleans ("0"/"1.0").
			f, ferr := strconv.ParseFloat(s, 64)
			if ferr != nil {
				return Value{}, fmt.Errorf("types: bad boolean literal %q", s)
			}
			b = f != 0
		}
		return BoolVal(b), nil
	case k.IsSigned():
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: bad %s literal %q", k, s)
		}
		return IntVal(k, i), nil
	case k.IsUnsigned():
		u, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: bad %s literal %q", k, s)
		}
		return UintVal(k, u), nil
	default:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: bad %s literal %q", k, s)
		}
		return FloatVal(k, f), nil
	}
}

// GoLiteral renders v as a Go expression of kind k's Go type, used by the
// code generator when materialising constants.
func (v Value) GoLiteral() string {
	if v.Elems != nil {
		var sb strings.Builder
		fmt.Fprintf(&sb, "[%d]%s{", len(v.Elems), v.Kind.GoType())
		for i, e := range v.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.scalarGoLiteral())
		}
		sb.WriteByte('}')
		return sb.String()
	}
	return v.scalarGoLiteral()
}

func (v Value) scalarGoLiteral() string {
	switch {
	case v.Kind == Bool:
		return strconv.FormatBool(v.B)
	case v.Kind.IsSigned():
		return fmt.Sprintf("%s(%d)", v.Kind.GoType(), v.I)
	case v.Kind.IsUnsigned():
		return fmt.Sprintf("%s(%d)", v.Kind.GoType(), v.U)
	default:
		f := v.F
		switch {
		case math.IsNaN(f):
			return fmt.Sprintf("%s(math.NaN())", v.Kind.GoType())
		case math.IsInf(f, 1):
			return fmt.Sprintf("%s(math.Inf(1))", v.Kind.GoType())
		case math.IsInf(f, -1):
			return fmt.Sprintf("%s(math.Inf(-1))", v.Kind.GoType())
		}
		s := strconv.FormatFloat(f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return fmt.Sprintf("%s(%s)", v.Kind.GoType(), s)
	}
}
