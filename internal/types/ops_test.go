package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddWrapAndOverflowSigned(t *testing.T) {
	v, res := Add(I8, IntVal(I8, 120), IntVal(I8, 10))
	if v.I != WrapInt(I8, 130) {
		t.Errorf("wrap value = %d", v.I)
	}
	if !res.Overflow {
		t.Error("120+10 in i8 must flag overflow")
	}
	v, res = Add(I8, IntVal(I8, -100), IntVal(I8, -100))
	if !res.Overflow || v.I != WrapInt(I8, -200) {
		t.Errorf("negative overflow: %v %+v", v, res)
	}
	_, res = Add(I8, IntVal(I8, 100), IntVal(I8, -100))
	if res.Overflow {
		t.Error("mixed signs cannot overflow on add")
	}
}

func TestAddOverflowUnsigned(t *testing.T) {
	v, res := Add(U8, UintVal(U8, 200), UintVal(U8, 100))
	if v.U != 44 || !res.Overflow {
		t.Errorf("u8 200+100: %v %+v", v, res)
	}
}

func TestSubOverflow(t *testing.T) {
	_, res := Sub(I32, IntVal(I32, math.MaxInt32), IntVal(I32, -1))
	if !res.Overflow {
		t.Error("MaxInt32 - (-1) must overflow")
	}
	_, res = Sub(I32, IntVal(I32, 5), IntVal(I32, 3))
	if res.Overflow {
		t.Error("5-3 must not overflow")
	}
	_, res = Sub(U16, UintVal(U16, 3), UintVal(U16, 5))
	if !res.Overflow {
		t.Error("unsigned borrow must flag overflow")
	}
}

func TestMulOverflow(t *testing.T) {
	_, res := Mul(I16, IntVal(I16, 300), IntVal(I16, 300))
	if !res.Overflow {
		t.Error("300*300 in i16 must overflow")
	}
	v, res := Mul(I16, IntVal(I16, 100), IntVal(I16, 100))
	if res.Overflow || v.I != 10000 {
		t.Errorf("100*100: %v %+v", v, res)
	}
	_, res = Mul(U32, UintVal(U32, 1<<20), UintVal(U32, 1<<20))
	if !res.Overflow {
		t.Error("2^40 in u32 must overflow")
	}
}

func TestDivByZero(t *testing.T) {
	v, res := Div(I32, IntVal(I32, 7), IntVal(I32, 0))
	if !res.DivByZero || v.I != 0 {
		t.Errorf("int div by zero: %v %+v", v, res)
	}
	v, res = Div(F64, FloatVal(F64, 1), FloatVal(F64, 0))
	if !res.DivByZero || !res.NaNOrInf || !math.IsInf(v.F, 1) {
		t.Errorf("float div by zero: %v %+v", v, res)
	}
}

func TestDivIntMinOverflow(t *testing.T) {
	_, res := Div(I8, IntVal(I8, -128), IntVal(I8, -1))
	if !res.Overflow {
		t.Error("INT8_MIN / -1 must flag overflow")
	}
}

func TestMod(t *testing.T) {
	v, res := Mod(I32, IntVal(I32, 7), IntVal(I32, 3))
	if v.I != 1 || res.Any() {
		t.Errorf("7 mod 3: %v %+v", v, res)
	}
	_, res = Mod(I32, IntVal(I32, 7), IntVal(I32, 0))
	if !res.DivByZero {
		t.Error("mod by zero must flag")
	}
	v, _ = Mod(F64, FloatVal(F64, 7.5), FloatVal(F64, 2))
	if v.F != 1.5 {
		t.Errorf("float mod = %v", v.F)
	}
}

func TestNegAndAbs(t *testing.T) {
	v, res := Neg(I8, IntVal(I8, -128))
	if !res.Overflow || v.I != -128 {
		t.Errorf("-(-128) in i8: %v %+v", v, res)
	}
	v, res = Abs(I8, IntVal(I8, -128))
	if !res.Overflow {
		t.Error("abs(INT8_MIN) must flag overflow")
	}
	v, res = Abs(I8, IntVal(I8, -5))
	if v.I != 5 || res.Any() {
		t.Errorf("abs(-5): %v %+v", v, res)
	}
	v, _ = Abs(F64, FloatVal(F64, -2.5))
	if v.F != 2.5 {
		t.Errorf("abs(-2.5) = %v", v.F)
	}
}

func TestCompare(t *testing.T) {
	if Compare(IntVal(I32, 1), IntVal(I32, 2)) != -1 {
		t.Error("1 < 2")
	}
	if Compare(FloatVal(F64, 2), IntVal(I32, 2)) != 0 {
		t.Error("2.0 == 2 across kinds")
	}
	if Compare(UintVal(U8, 9), IntVal(I8, 3)) != 1 {
		t.Error("9 > 3 across signs")
	}
	if Compare(FloatVal(F64, math.NaN()), FloatVal(F64, 1)) != -2 {
		t.Error("NaN compares incomparable")
	}
}

func TestMathUnary(t *testing.T) {
	v, res := MathUnary("sqrt", F64, FloatVal(F64, 9))
	if v.F != 3 || res.Any() {
		t.Errorf("sqrt(9): %v %+v", v, res)
	}
	_, res = MathUnary("sqrt", F64, FloatVal(F64, -1))
	if !res.DomainErr {
		t.Error("sqrt(-1) must flag domain error")
	}
	_, res = MathUnary("log", F64, FloatVal(F64, 0))
	if !res.DomainErr {
		t.Error("log(0) must flag domain error")
	}
	_, res = MathUnary("reciprocal", F64, FloatVal(F64, 0))
	if !res.DivByZero {
		t.Error("1/0 must flag div by zero")
	}
	v, _ = MathUnary("floor", F64, FloatVal(F64, 2.9))
	if v.F != 2 {
		t.Errorf("floor(2.9) = %v", v.F)
	}
	_, res = MathUnary("nosuchfn", F64, FloatVal(F64, 1))
	if !res.DomainErr {
		t.Error("unknown function must flag domain error")
	}
}

func TestMathGoExprCoversInterpretedSet(t *testing.T) {
	names := []string{"exp", "log", "log10", "log2", "sqrt", "sin", "cos", "tan",
		"asin", "acos", "atan", "sinh", "cosh", "tanh", "reciprocal", "square",
		"floor", "ceil", "round", "fix"}
	for _, n := range names {
		if MathGoExpr(n, "x") == "" {
			t.Errorf("no Go expression for %q", n)
		}
	}
	if MathGoExpr("bogus", "x") != "" {
		t.Error("unknown name must map to empty string")
	}
}

func TestVectorBroadcast(t *testing.T) {
	vec := VectorVal(I32, IntVal(I32, 1), IntVal(I32, 2), IntVal(I32, 3))
	out, res := Add(I32, vec, IntVal(I32, 10))
	if !out.IsVector() || out.Width() != 3 {
		t.Fatalf("broadcast shape: %v", out)
	}
	for i, want := range []int64{11, 12, 13} {
		if out.Elems[i].I != want {
			t.Errorf("elem %d = %d, want %d", i, out.Elems[i].I, want)
		}
	}
	if res.Any() {
		t.Errorf("unexpected flags %+v", res)
	}
}

func TestBooleanArithmetic(t *testing.T) {
	v, _ := Add(Bool, BoolVal(true), BoolVal(true))
	if v.B {
		t.Error("bool add is XOR: true+true = false")
	}
	v, _ = Mul(Bool, BoolVal(true), BoolVal(true))
	if !v.B {
		t.Error("bool mul is AND")
	}
	_, res := Div(Bool, BoolVal(true), BoolVal(false))
	if !res.DivByZero {
		t.Error("bool div by false flags DivByZero")
	}
}

// Property: Add result always equals the two's-complement wrap of the wide sum.
func TestQuickAddMatchesWrap(t *testing.T) {
	f := func(a, b int32) bool {
		v, _ := Add(I32, IntVal(I32, int64(a)), IntVal(I32, int64(b)))
		return v.I == int64(a+b) // Go int32 addition wraps identically
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: overflow flag on signed add is set iff the mathematical sum is
// out of range.
func TestQuickAddOverflowIffOutOfRange(t *testing.T) {
	f := func(a, b int16) bool {
		_, res := Add(I16, IntVal(I16, int64(a)), IntVal(I16, int64(b)))
		wide := int64(a) + int64(b)
		out := wide < I16.MinInt() || wide > int64(I16.MaxInt())
		return res.Overflow == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: same for subtraction.
func TestQuickSubOverflowIffOutOfRange(t *testing.T) {
	f := func(a, b int16) bool {
		_, res := Sub(I16, IntVal(I16, int64(a)), IntVal(I16, int64(b)))
		wide := int64(a) - int64(b)
		out := wide < I16.MinInt() || wide > int64(I16.MaxInt())
		return res.Overflow == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: same for multiplication.
func TestQuickMulOverflowIffOutOfRange(t *testing.T) {
	f := func(a, b int16) bool {
		_, res := Mul(I16, IntVal(I16, int64(a)), IntVal(I16, int64(b)))
		wide := int64(a) * int64(b)
		out := wide < I16.MinInt() || wide > int64(I16.MaxInt())
		return res.Overflow == out
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: unsigned add overflow flag matches carry-out.
func TestQuickUnsignedAddOverflow(t *testing.T) {
	f := func(a, b uint16) bool {
		_, res := Add(U16, UintVal(U16, uint64(a)), UintVal(U16, uint64(b)))
		return res.Overflow == (uint64(a)+uint64(b) > U16.MaxInt())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric for non-NaN floats.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := IntVal(I32, int64(a)), IntVal(I32, int64(b))
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
