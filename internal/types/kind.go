// Package types implements the Simulink-like data-type system shared by all
// simulation engines: the set of signal kinds (bool, sized integers, floats),
// a boxed runtime Value, and wrap-on-overflow arithmetic with error detection
// (wrap on overflow, downcast, precision loss, division by zero).
package types

import "fmt"

// Kind identifies a signal data type. The zero Kind is invalid so that
// uninitialised values are caught early.
type Kind uint8

// Signal data types, matching Simulink's built-in numeric types.
const (
	Invalid Kind = iota
	Bool
	I8
	I16
	I32
	I64
	U8
	U16
	U32
	U64
	F32
	F64
)

var kindNames = [...]string{
	Invalid: "invalid",
	Bool:    "boolean",
	I8:      "int8",
	I16:     "int16",
	I32:     "int32",
	I64:     "int64",
	U8:      "uint8",
	U16:     "uint16",
	U32:     "uint32",
	U64:     "uint64",
	F32:     "single",
	F64:     "double",
}

// goNames maps each kind to the Go type emitted by the code generator.
var goNames = [...]string{
	Invalid: "invalid",
	Bool:    "bool",
	I8:      "int8",
	I16:     "int16",
	I32:     "int32",
	I64:     "int64",
	U8:      "uint8",
	U16:     "uint16",
	U32:     "uint32",
	U64:     "uint64",
	F32:     "float32",
	F64:     "float64",
}

// String returns the Simulink-style type name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// GoType returns the Go type name the code generator emits for k.
func (k Kind) GoType() string {
	if int(k) < len(goNames) {
		return goNames[k]
	}
	return "invalid"
}

// ParseKind converts a type name as stored in model files back to a Kind.
// Both Simulink-style names ("double", "single", "boolean") and Go-style
// names ("float64", "float32", "bool") are accepted.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "boolean", "bool":
		return Bool, nil
	case "int8":
		return I8, nil
	case "int16":
		return I16, nil
	case "int32":
		return I32, nil
	case "int64":
		return I64, nil
	case "uint8":
		return U8, nil
	case "uint16":
		return U16, nil
	case "uint32":
		return U32, nil
	case "uint64":
		return U64, nil
	case "single", "float32":
		return F32, nil
	case "double", "float64":
		return F64, nil
	}
	return Invalid, fmt.Errorf("types: unknown data type %q", s)
}

// AllKinds lists every valid kind, in declaration order. It is used by
// property-based tests to sweep the full type lattice.
func AllKinds() []Kind {
	return []Kind{Bool, I8, I16, I32, I64, U8, U16, U32, U64, F32, F64}
}

// IsInteger reports whether k is a signed or unsigned integer type.
func (k Kind) IsInteger() bool { return k >= I8 && k <= U64 }

// IsSigned reports whether k is a signed integer type.
func (k Kind) IsSigned() bool { return k >= I8 && k <= I64 }

// IsUnsigned reports whether k is an unsigned integer type.
func (k Kind) IsUnsigned() bool { return k >= U8 && k <= U64 }

// IsFloat reports whether k is a floating-point type.
func (k Kind) IsFloat() bool { return k == F32 || k == F64 }

// IsNumeric reports whether k is integer or float.
func (k Kind) IsNumeric() bool { return k.IsInteger() || k.IsFloat() }

// Bits returns the width of the type in bits (1 for Bool).
func (k Kind) Bits() int {
	switch k {
	case Bool:
		return 1
	case I8, U8:
		return 8
	case I16, U16:
		return 16
	case I32, U32, F32:
		return 32
	case I64, U64, F64:
		return 64
	}
	return 0
}

// SizeBytes returns the storage size in bytes, matching the sizeof()
// comparisons the paper's generated diagnostic code performs.
func (k Kind) SizeBytes() int {
	b := k.Bits()
	if b == 1 {
		return 1
	}
	return b / 8
}

// MinInt returns the smallest representable value for a signed integer kind.
func (k Kind) MinInt() int64 {
	switch k {
	case I8:
		return -1 << 7
	case I16:
		return -1 << 15
	case I32:
		return -1 << 31
	case I64:
		return -1 << 63
	}
	return 0
}

// MaxInt returns the largest representable value for an integer kind,
// expressed as uint64 so U64's maximum is representable.
func (k Kind) MaxInt() uint64 {
	switch k {
	case Bool:
		return 1
	case I8:
		return 1<<7 - 1
	case I16:
		return 1<<15 - 1
	case I32:
		return 1<<31 - 1
	case I64:
		return 1<<63 - 1
	case U8:
		return 1<<8 - 1
	case U16:
		return 1<<16 - 1
	case U32:
		return 1<<32 - 1
	case U64:
		return 1<<64 - 1
	}
	return 0
}

// Wider reports whether k can represent every value of other without loss.
// It defines the downcast lattice used by the downcast diagnosis.
func (k Kind) Wider(other Kind) bool {
	if k == other {
		return true
	}
	switch {
	case other == Bool:
		return true
	case k == F64:
		// float64 holds all 32-bit-or-narrower integers and float32 exactly;
		// 64-bit integers may lose precision.
		return other != I64 && other != U64
	case k == F32:
		return other == I8 || other == I16 || other == U8 || other == U16
	case k.IsSigned() && other.IsSigned():
		return k.Bits() >= other.Bits()
	case k.IsUnsigned() && other.IsUnsigned():
		return k.Bits() >= other.Bits()
	case k.IsSigned() && other.IsUnsigned():
		return k.Bits() > other.Bits()
	}
	return false
}

// Promote returns the common computation kind for a binary operation over
// kinds a and b, approximating Simulink's type propagation: floats dominate,
// then the wider integer, preferring signedness of the wider operand.
func Promote(a, b Kind) Kind {
	if a == b {
		return a
	}
	if a == F64 || b == F64 {
		return F64
	}
	if a == F32 || b == F32 {
		return F32
	}
	if a == Bool {
		return b
	}
	if b == Bool {
		return a
	}
	// Both integers.
	if a.Bits() == b.Bits() {
		if a.IsSigned() {
			return a
		}
		return b
	}
	if a.Bits() > b.Bits() {
		return a
	}
	return b
}
