package types

import "testing"

// Micro-benchmarks for the boxed arithmetic layer — the dominant cost of
// the interpreted engines, and therefore the denominator of the paper's
// speedup claims.

func BenchmarkAddI32(b *testing.B) {
	x, y := IntVal(I32, 123456), IntVal(I32, 654321)
	for i := 0; i < b.N; i++ {
		v, _ := Add(I32, x, y)
		x = v
	}
	_ = x
}

func BenchmarkMulF64(b *testing.B) {
	x, y := FloatVal(F64, 1.0000001), FloatVal(F64, 0.9999999)
	for i := 0; i < b.N; i++ {
		v, _ := Mul(F64, x, y)
		x = v
	}
	_ = x
}

func BenchmarkDivI64Guarded(b *testing.B) {
	x, y := IntVal(I64, 1<<40), IntVal(I64, 3)
	var acc int64
	for i := 0; i < b.N; i++ {
		v, _ := Div(I64, x, y)
		acc += v.I
	}
	_ = acc
}

func BenchmarkConvertF64ToI16(b *testing.B) {
	v := FloatVal(F64, 1234.5)
	var acc int64
	for i := 0; i < b.N; i++ {
		c, _ := Convert(v, I16)
		acc += c.I
	}
	_ = acc
}

func BenchmarkCompare(b *testing.B) {
	x, y := FloatVal(F64, 1.5), IntVal(I32, 2)
	var acc int
	for i := 0; i < b.N; i++ {
		acc += Compare(x, y)
	}
	_ = acc
}

func BenchmarkMathUnarySin(b *testing.B) {
	v := FloatVal(F64, 0.7)
	for i := 0; i < b.N; i++ {
		v, _ = MathUnary("sin", F64, v)
	}
	_ = v
}
