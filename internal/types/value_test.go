package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWrapInt(t *testing.T) {
	cases := []struct {
		k    Kind
		in   int64
		want int64
	}{
		{I8, 127, 127}, {I8, 128, -128}, {I8, -129, 127},
		{I16, 40000, 40000 - 65536},
		{I32, math.MaxInt32 + 1, math.MinInt32},
		{I64, math.MaxInt64, math.MaxInt64},
	}
	for _, c := range cases {
		if got := WrapInt(c.k, c.in); got != c.want {
			t.Errorf("WrapInt(%v, %d) = %d, want %d", c.k, c.in, got, c.want)
		}
	}
}

func TestWrapUint(t *testing.T) {
	if got := WrapUint(U8, 256); got != 0 {
		t.Errorf("WrapUint(U8, 256) = %d", got)
	}
	if got := WrapUint(U16, 65537); got != 1 {
		t.Errorf("WrapUint(U16, 65537) = %d", got)
	}
}

func TestConvertIntWidening(t *testing.T) {
	v, res := Convert(IntVal(I8, -5), I32)
	if v.Kind != I32 || v.I != -5 || res.OutOfRange || res.PrecisionLoss {
		t.Errorf("widen I8->I32: %v %+v", v, res)
	}
}

func TestConvertDowncastFlags(t *testing.T) {
	v, res := Convert(IntVal(I32, 300), I8)
	if !res.OutOfRange {
		t.Error("I32(300)->I8 must flag OutOfRange")
	}
	if v.I != WrapInt(I8, 300) {
		t.Errorf("wrapped value = %d", v.I)
	}
	_, res = Convert(IntVal(I32, 100), I8)
	if res.OutOfRange {
		t.Error("I32(100)->I8 fits; no flag expected")
	}
}

func TestConvertFloatToIntPrecisionLoss(t *testing.T) {
	v, res := Convert(FloatVal(F64, 3.75), I32)
	if v.I != 3 || !res.PrecisionLoss {
		t.Errorf("3.75->I32: %v %+v", v, res)
	}
	_, res = Convert(FloatVal(F64, 4.0), I32)
	if res.PrecisionLoss {
		t.Error("4.0->I32 must not flag precision loss")
	}
}

func TestConvertNegativeToUnsigned(t *testing.T) {
	v, res := Convert(IntVal(I32, -1), U8)
	if !res.OutOfRange {
		t.Error("-1->U8 must flag OutOfRange")
	}
	if v.U != 255 {
		t.Errorf("wrap(-1)->U8 = %d", v.U)
	}
}

func TestConvertNaN(t *testing.T) {
	_, res := Convert(FloatVal(F64, math.NaN()), I32)
	if !res.OutOfRange {
		t.Error("NaN->int must flag OutOfRange")
	}
}

func TestConvertI64ToF64PrecisionLoss(t *testing.T) {
	_, res := Convert(IntVal(I64, (1<<53)+1), F64)
	if !res.PrecisionLoss {
		t.Error("2^53+1 -> F64 must flag precision loss")
	}
	_, res = Convert(IntVal(I64, 1<<53), F64)
	if res.PrecisionLoss {
		t.Error("2^53 -> F64 is exact")
	}
}

func TestConvertBool(t *testing.T) {
	v, _ := Convert(IntVal(I32, 42), Bool)
	if !v.B {
		t.Error("42 -> bool must be true")
	}
	v, _ = Convert(FloatVal(F64, 0), Bool)
	if v.B {
		t.Error("0.0 -> bool must be false")
	}
}

func TestConvertVector(t *testing.T) {
	vec := VectorVal(I32, IntVal(I32, 1), IntVal(I32, 300))
	out, res := Convert(vec, I8)
	if !out.IsVector() || out.Width() != 2 {
		t.Fatalf("vector shape lost: %v", out)
	}
	if !res.OutOfRange {
		t.Error("element 300 -> I8 must flag OutOfRange")
	}
	if out.Elems[0].I != 1 {
		t.Errorf("elem 0 = %d", out.Elems[0].I)
	}
}

func TestValueAccessors(t *testing.T) {
	if IntVal(I32, -7).AsFloat() != -7 {
		t.Error("AsFloat(int)")
	}
	if UintVal(U32, 9).AsInt() != 9 {
		t.Error("AsInt(uint)")
	}
	if !FloatVal(F64, 0.5).AsBool() {
		t.Error("AsBool(0.5) must be true")
	}
	if BoolVal(true).AsFloat() != 1 {
		t.Error("AsFloat(true)")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(I32, -4), "-4"},
		{UintVal(U8, 200), "200"},
		{BoolVal(true), "true"},
		{FloatVal(F64, 2.5), "2.5"},
		{VectorVal(I16, IntVal(I16, 1), IntVal(I16, 2)), "[1 2]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	cases := []struct {
		k Kind
		s string
	}{
		{I32, "-42"}, {U64, "18446744073709551615"}, {Bool, "true"},
		{F64, "3.14159"}, {I16, "[1 -2 3]"},
	}
	for _, c := range cases {
		v, err := ParseValue(c.k, c.s)
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", c.k, c.s, err)
		}
		back, err := ParseValue(c.k, v.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", v.String(), err)
		}
		if !Equal(v, back) {
			t.Errorf("round trip %q -> %v -> %v", c.s, v, back)
		}
	}
}

func TestParseValueNumericBool(t *testing.T) {
	v, err := ParseValue(Bool, "1")
	if err != nil || !v.B {
		t.Errorf("ParseValue(Bool, 1) = %v, %v", v, err)
	}
}

func TestParseValueErrors(t *testing.T) {
	if _, err := ParseValue(I32, "abc"); err == nil {
		t.Error("bad int literal must error")
	}
	if _, err := ParseValue(F64, "1.2.3"); err == nil {
		t.Error("bad float literal must error")
	}
	if _, err := ParseValue(I8, "[1 bad]"); err == nil {
		t.Error("bad vector element must error")
	}
}

func TestGoLiteral(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(I32, -3), "int32(-3)"},
		{FloatVal(F64, 2), "float64(2.0)"},
		{BoolVal(false), "false"},
		{UintVal(U8, 7), "uint8(7)"},
		{FloatVal(F64, math.Inf(1)), "float64(math.Inf(1))"},
	}
	for _, c := range cases {
		if got := c.v.GoLiteral(); got != c.want {
			t.Errorf("GoLiteral() = %q, want %q", got, c.want)
		}
	}
	vec := VectorVal(I8, IntVal(I8, 1), IntVal(I8, 2))
	if got := vec.GoLiteral(); got != "[2]int8{int8(1), int8(2)}" {
		t.Errorf("vector GoLiteral = %q", got)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(IntVal(I32, 5), IntVal(I32, 5)) {
		t.Error("equal ints")
	}
	if Equal(IntVal(I32, 5), IntVal(I64, 5)) {
		t.Error("different kinds must not be Equal")
	}
	if Equal(IntVal(I32, 5), VectorVal(I32, IntVal(I32, 5))) {
		t.Error("scalar vs vector must not be Equal")
	}
	if !Equal(FloatVal(F64, math.NaN()), FloatVal(F64, math.NaN())) {
		t.Error("NaN bit-equality expected")
	}
}

// Property: converting any int64 to a signed kind and back through int64
// preserves the wrapped residue (i.e. Convert is consistent with WrapInt).
func TestQuickConvertSignedConsistency(t *testing.T) {
	f := func(x int64) bool {
		for _, k := range []Kind{I8, I16, I32, I64} {
			v, _ := Convert(IntVal(I64, x), k)
			if v.I != WrapInt(k, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: widening then narrowing via a wider kind is the identity for
// values already in range.
func TestQuickWidenNarrowIdentity(t *testing.T) {
	f := func(x int8) bool {
		v := IntVal(I8, int64(x))
		w, _ := Convert(v, I64)
		back, res := Convert(w, I8)
		return Equal(v, back) && !res.OutOfRange
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Convert never reports OutOfRange when the target is Wider than
// the source for integer payloads.
func TestQuickWiderNeverOutOfRange(t *testing.T) {
	f := func(x int16) bool {
		v := IntVal(I16, int64(x))
		for _, k := range []Kind{I32, I64, F32, F64} {
			if !k.Wider(I16) {
				continue
			}
			if _, res := Convert(v, k); res.OutOfRange {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// FuzzParseValue hardens the literal parser across every kind.
func FuzzParseValue(f *testing.F) {
	f.Add(uint8(3), "-42")
	f.Add(uint8(10), "3.14")
	f.Add(uint8(1), "true")
	f.Add(uint8(2), "[1 2 3]")
	f.Fuzz(func(t *testing.T, kindByte uint8, s string) {
		kinds := AllKinds()
		k := kinds[int(kindByte)%len(kinds)]
		v, err := ParseValue(k, s)
		if err != nil {
			return
		}
		// Accepted literals must round-trip through String.
		back, err := ParseValue(k, v.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", v.String(), s, err)
		}
		if !Equal(v, back) {
			t.Fatalf("round trip %q -> %v -> %v", s, v, back)
		}
	})
}
