package types

import "math"

// OpResult carries the error flags a calculation can raise. The flags map
// one-to-one onto the paper's calculation-diagnosis categories.
type OpResult struct {
	Overflow      bool // wrap on overflow occurred
	DivByZero     bool // division by zero attempted
	DomainErr     bool // math domain violation (sqrt of negative, log of non-positive, ...)
	NaNOrInf      bool // floating-point result is NaN or infinite
	OutOfRange    bool // conversion out of range
	PrecisionLoss bool // conversion discarded fractional part or low-order bits
}

// Merge ors other's flags into r.
func (r *OpResult) Merge(other OpResult) {
	r.Overflow = r.Overflow || other.Overflow
	r.DivByZero = r.DivByZero || other.DivByZero
	r.DomainErr = r.DomainErr || other.DomainErr
	r.NaNOrInf = r.NaNOrInf || other.NaNOrInf
	r.OutOfRange = r.OutOfRange || other.OutOfRange
	r.PrecisionLoss = r.PrecisionLoss || other.PrecisionLoss
}

// Any reports whether any error flag is set.
func (r OpResult) Any() bool {
	return r.Overflow || r.DivByZero || r.DomainErr || r.NaNOrInf ||
		r.OutOfRange || r.PrecisionLoss
}

// Add computes a+b in kind k with wrap semantics, flagging overflow.
func Add(k Kind, a, b Value) (Value, OpResult) {
	return binaryOp(k, a, b, addScalar)
}

// Sub computes a-b in kind k with wrap semantics, flagging overflow.
func Sub(k Kind, a, b Value) (Value, OpResult) {
	return binaryOp(k, a, b, subScalar)
}

// Mul computes a*b in kind k with wrap semantics, flagging overflow.
func Mul(k Kind, a, b Value) (Value, OpResult) {
	return binaryOp(k, a, b, mulScalar)
}

// Div computes a/b in kind k, flagging division by zero. Integer division
// by zero yields zero (the generated code guards the same way); float
// division by zero yields ±Inf and sets both DivByZero and NaNOrInf.
func Div(k Kind, a, b Value) (Value, OpResult) {
	return binaryOp(k, a, b, divScalar)
}

// Mod computes the remainder a mod b in kind k (math.Mod for floats).
func Mod(k Kind, a, b Value) (Value, OpResult) {
	return binaryOp(k, a, b, modScalar)
}

func binaryOp(k Kind, a, b Value, f func(Kind, Value, Value) (Value, OpResult)) (Value, OpResult) {
	var res OpResult
	ca, r1 := Convert(a, k)
	cb, r2 := Convert(b, k)
	res.OutOfRange = r1.OutOfRange || r2.OutOfRange
	res.PrecisionLoss = r1.PrecisionLoss || r2.PrecisionLoss
	if ca.Elems != nil || cb.Elems != nil {
		width := ca.Width()
		if cb.Width() > width {
			width = cb.Width()
		}
		out := Value{Kind: k, Elems: make([]Value, width)}
		for i := 0; i < width; i++ {
			v, r := f(k, ca.Elem(i), cb.Elem(i))
			out.Elems[i] = v
			res.Merge(r)
		}
		return out, res
	}
	v, r := f(k, ca, cb)
	res.Merge(r)
	return v, res
}

func addScalar(k Kind, a, b Value) (Value, OpResult) {
	var res OpResult
	switch {
	case k == Bool:
		return BoolVal(a.B != b.B), res // XOR, matching boolean sum semantics
	case k.IsSigned():
		sum := WrapInt(k, a.I+b.I)
		// Signed overflow: both operands' signs differ from the result's sign.
		// Operands and result are sign-extended within k's range, so the
		// int64 sign bit stands in for k's sign bit.
		if (a.I^sum)&(b.I^sum) < 0 {
			res.Overflow = true
		}
		return Value{Kind: k, I: sum}, res
	case k.IsUnsigned():
		sum := WrapUint(k, a.U+b.U)
		if sum < a.U || sum < b.U {
			res.Overflow = true
		}
		return Value{Kind: k, U: sum}, res
	default:
		f := a.F + b.F
		if k == F32 {
			f = float64(float32(f))
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			res.NaNOrInf = true
		}
		return Value{Kind: k, F: f}, res
	}
}

func subScalar(k Kind, a, b Value) (Value, OpResult) {
	var res OpResult
	switch {
	case k == Bool:
		return BoolVal(a.B != b.B), res
	case k.IsSigned():
		diff := WrapInt(k, a.I-b.I)
		// Overflow iff the operands' signs differ and the result's sign
		// differs from the minuend's.
		if (a.I^b.I)&(a.I^diff) < 0 {
			res.Overflow = true
		}
		return Value{Kind: k, I: diff}, res
	case k.IsUnsigned():
		diff := WrapUint(k, a.U-b.U)
		if b.U > a.U {
			res.Overflow = true
		}
		return Value{Kind: k, U: diff}, res
	default:
		f := a.F - b.F
		if k == F32 {
			f = float64(float32(f))
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			res.NaNOrInf = true
		}
		return Value{Kind: k, F: f}, res
	}
}

func mulScalar(k Kind, a, b Value) (Value, OpResult) {
	var res OpResult
	switch {
	case k == Bool:
		return BoolVal(a.B && b.B), res
	case k.IsSigned():
		prod := WrapInt(k, a.I*b.I)
		if a.I != 0 && b.I != 0 {
			wide := a.I * b.I
			if wide/a.I != b.I || WrapInt(k, wide) != wide {
				res.Overflow = true
			}
		}
		return Value{Kind: k, I: prod}, res
	case k.IsUnsigned():
		prod := WrapUint(k, a.U*b.U)
		if a.U != 0 && b.U != 0 {
			wide := a.U * b.U
			if wide/a.U != b.U || WrapUint(k, wide) != wide {
				res.Overflow = true
			}
		}
		return Value{Kind: k, U: prod}, res
	default:
		f := a.F * b.F
		if k == F32 {
			f = float64(float32(f))
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			res.NaNOrInf = true
		}
		return Value{Kind: k, F: f}, res
	}
}

func divScalar(k Kind, a, b Value) (Value, OpResult) {
	var res OpResult
	switch {
	case k == Bool:
		if !b.B {
			res.DivByZero = true
			return BoolVal(false), res
		}
		return a, res
	case k.IsSigned():
		if b.I == 0 {
			res.DivByZero = true
			return Value{Kind: k}, res
		}
		q := a.I / b.I
		// INT_MIN / -1 overflows.
		if a.I == k.MinInt() && b.I == -1 {
			res.Overflow = true
			q = WrapInt(k, q)
		}
		return Value{Kind: k, I: WrapInt(k, q)}, res
	case k.IsUnsigned():
		if b.U == 0 {
			res.DivByZero = true
			return Value{Kind: k}, res
		}
		return Value{Kind: k, U: a.U / b.U}, res
	default:
		if b.F == 0 {
			res.DivByZero = true
		}
		f := a.F / b.F
		if k == F32 {
			f = float64(float32(f))
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			res.NaNOrInf = true
		}
		return Value{Kind: k, F: f}, res
	}
}

func modScalar(k Kind, a, b Value) (Value, OpResult) {
	var res OpResult
	switch {
	case k == Bool:
		return BoolVal(false), res
	case k.IsSigned():
		if b.I == 0 {
			res.DivByZero = true
			return Value{Kind: k}, res
		}
		if a.I == k.MinInt() && b.I == -1 {
			return Value{Kind: k}, res
		}
		return Value{Kind: k, I: a.I % b.I}, res
	case k.IsUnsigned():
		if b.U == 0 {
			res.DivByZero = true
			return Value{Kind: k}, res
		}
		return Value{Kind: k, U: a.U % b.U}, res
	default:
		if b.F == 0 {
			res.DivByZero = true
		}
		f := math.Mod(a.F, b.F)
		if k == F32 {
			f = float64(float32(f))
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			res.NaNOrInf = true
		}
		return Value{Kind: k, F: f}, res
	}
}

// Neg computes -a in kind k with wrap semantics (negating the minimum signed
// value overflows).
func Neg(k Kind, a Value) (Value, OpResult) {
	return Sub(k, Zero(k), a)
}

// Abs computes |a| in kind k, flagging the abs(INT_MIN) overflow.
func Abs(k Kind, a Value) (Value, OpResult) {
	var res OpResult
	ca, r := Convert(a, k)
	res.OutOfRange = r.OutOfRange
	if ca.Elems != nil {
		out := Value{Kind: k, Elems: make([]Value, len(ca.Elems))}
		for i, e := range ca.Elems {
			v, rr := Abs(k, e)
			out.Elems[i] = v
			res.Merge(rr)
		}
		return out, res
	}
	switch {
	case k == Bool, k.IsUnsigned():
		return ca, res
	case k.IsSigned():
		if ca.I == k.MinInt() {
			res.Overflow = true
			return ca, res
		}
		if ca.I < 0 {
			return Value{Kind: k, I: -ca.I}, res
		}
		return ca, res
	default:
		return Value{Kind: k, F: math.Abs(ca.F)}, res
	}
}

// Compare returns -1, 0, or +1 ordering a relative to b after promoting both
// to a common kind. NaN compares as incomparable and returns -2.
func Compare(a, b Value) int {
	k := Promote(a.Kind, b.Kind)
	ca, _ := Convert(a, k)
	cb, _ := Convert(b, k)
	switch {
	case k == Bool:
		switch {
		case ca.B == cb.B:
			return 0
		case cb.B:
			return -1
		default:
			return 1
		}
	case k.IsSigned():
		switch {
		case ca.I < cb.I:
			return -1
		case ca.I > cb.I:
			return 1
		default:
			return 0
		}
	case k.IsUnsigned():
		switch {
		case ca.U < cb.U:
			return -1
		case ca.U > cb.U:
			return 1
		default:
			return 0
		}
	default:
		switch {
		case math.IsNaN(ca.F) || math.IsNaN(cb.F):
			return -2
		case ca.F < cb.F:
			return -1
		case ca.F > cb.F:
			return 1
		default:
			return 0
		}
	}
}

// MathUnary applies a named unary math function in float64 and converts the
// result to kind k, flagging domain errors. Supported names match the Math
// actor's operator set.
func MathUnary(name string, k Kind, a Value) (Value, OpResult) {
	var res OpResult
	if a.Elems != nil {
		out := Value{Kind: k, Elems: make([]Value, len(a.Elems))}
		for i, e := range a.Elems {
			v, r := MathUnary(name, k, e)
			out.Elems[i] = v
			res.Merge(r)
		}
		return out, res
	}
	x := a.AsFloat()
	var f float64
	switch name {
	case "exp":
		f = math.Exp(x)
	case "log":
		if x <= 0 {
			res.DomainErr = true
		}
		f = math.Log(x)
	case "log10":
		if x <= 0 {
			res.DomainErr = true
		}
		f = math.Log10(x)
	case "log2":
		if x <= 0 {
			res.DomainErr = true
		}
		f = math.Log2(x)
	case "sqrt":
		if x < 0 {
			res.DomainErr = true
		}
		f = math.Sqrt(x)
	case "sin":
		f = math.Sin(x)
	case "cos":
		f = math.Cos(x)
	case "tan":
		f = math.Tan(x)
	case "asin":
		if x < -1 || x > 1 {
			res.DomainErr = true
		}
		f = math.Asin(x)
	case "acos":
		if x < -1 || x > 1 {
			res.DomainErr = true
		}
		f = math.Acos(x)
	case "atan":
		f = math.Atan(x)
	case "sinh":
		f = math.Sinh(x)
	case "cosh":
		f = math.Cosh(x)
	case "tanh":
		f = math.Tanh(x)
	case "reciprocal":
		if x == 0 {
			res.DivByZero = true
		}
		f = 1 / x
	case "square":
		f = x * x
	case "floor":
		f = math.Floor(x)
	case "ceil":
		f = math.Ceil(x)
	case "round":
		f = math.Round(x)
	case "fix":
		f = math.Trunc(x)
	default:
		res.DomainErr = true
		f = math.NaN()
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		res.NaNOrInf = true
	}
	out, cr := Convert(FloatVal(F64, f), k)
	res.OutOfRange = res.OutOfRange || cr.OutOfRange
	return out, res
}

// MathGoExpr returns the Go expression the code generator emits for the
// named unary math function applied to expression x (a float64 expression),
// or "" if the name is unknown.
func MathGoExpr(name, x string) string {
	switch name {
	case "exp":
		return "math.Exp(" + x + ")"
	case "log":
		return "math.Log(" + x + ")"
	case "log10":
		return "math.Log10(" + x + ")"
	case "log2":
		return "math.Log2(" + x + ")"
	case "sqrt":
		return "math.Sqrt(" + x + ")"
	case "sin":
		return "math.Sin(" + x + ")"
	case "cos":
		return "math.Cos(" + x + ")"
	case "tan":
		return "math.Tan(" + x + ")"
	case "asin":
		return "math.Asin(" + x + ")"
	case "acos":
		return "math.Acos(" + x + ")"
	case "atan":
		return "math.Atan(" + x + ")"
	case "sinh":
		return "math.Sinh(" + x + ")"
	case "cosh":
		return "math.Cosh(" + x + ")"
	case "tanh":
		return "math.Tanh(" + x + ")"
	case "reciprocal":
		return "(1 / (" + x + "))"
	case "square":
		return "((" + x + ") * (" + x + "))"
	case "floor":
		return "math.Floor(" + x + ")"
	case "ceil":
		return "math.Ceil(" + x + ")"
	case "round":
		return "math.Round(" + x + ")"
	case "fix":
		return "math.Trunc(" + x + ")"
	}
	return ""
}
