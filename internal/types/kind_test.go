package types

import (
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
}

func TestParseKindGoNames(t *testing.T) {
	cases := map[string]Kind{
		"bool": Bool, "float32": F32, "float64": F64,
		"int8": I8, "uint64": U64,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", s, err)
		}
		if got != want {
			t.Errorf("ParseKind(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestParseKindUnknown(t *testing.T) {
	if _, err := ParseKind("fixdt(1,16,4)"); err == nil {
		t.Fatal("expected error for unsupported type")
	}
}

func TestKindPredicates(t *testing.T) {
	if !I32.IsInteger() || !I32.IsSigned() || I32.IsUnsigned() || I32.IsFloat() {
		t.Error("I32 predicates wrong")
	}
	if !U16.IsUnsigned() || U16.IsSigned() {
		t.Error("U16 predicates wrong")
	}
	if !F32.IsFloat() || F32.IsInteger() {
		t.Error("F32 predicates wrong")
	}
	if Bool.IsNumeric() {
		t.Error("Bool must not be numeric")
	}
	if !F64.IsNumeric() || !U8.IsNumeric() {
		t.Error("F64/U8 must be numeric")
	}
}

func TestKindBitsAndSize(t *testing.T) {
	cases := []struct {
		k     Kind
		bits  int
		bytes int
	}{
		{Bool, 1, 1}, {I8, 8, 1}, {I16, 16, 2}, {I32, 32, 4}, {I64, 64, 8},
		{U8, 8, 1}, {U32, 32, 4}, {F32, 32, 4}, {F64, 64, 8},
	}
	for _, c := range cases {
		if got := c.k.Bits(); got != c.bits {
			t.Errorf("%v.Bits() = %d, want %d", c.k, got, c.bits)
		}
		if got := c.k.SizeBytes(); got != c.bytes {
			t.Errorf("%v.SizeBytes() = %d, want %d", c.k, got, c.bytes)
		}
	}
}

func TestKindRanges(t *testing.T) {
	if I8.MinInt() != -128 || I8.MaxInt() != 127 {
		t.Errorf("I8 range = [%d, %d]", I8.MinInt(), I8.MaxInt())
	}
	if I32.MinInt() != -2147483648 || I32.MaxInt() != 2147483647 {
		t.Errorf("I32 range = [%d, %d]", I32.MinInt(), I32.MaxInt())
	}
	if U8.MaxInt() != 255 || U64.MaxInt() != ^uint64(0) {
		t.Errorf("unsigned maxima wrong: U8=%d U64=%d", U8.MaxInt(), U64.MaxInt())
	}
}

func TestWiderLattice(t *testing.T) {
	wider := []struct{ a, b Kind }{
		{I16, I8}, {I32, I16}, {I64, I32},
		{U16, U8}, {U64, U32},
		{I16, U8}, {I32, U16}, {I64, U32},
		{F64, I32}, {F64, U32}, {F64, F32}, {F32, I16}, {F32, U16},
		{I8, Bool}, {F32, Bool}, {U8, Bool},
	}
	for _, c := range wider {
		if !c.a.Wider(c.b) {
			t.Errorf("%v should be wider than %v", c.a, c.b)
		}
	}
	narrower := []struct{ a, b Kind }{
		{I8, I16}, {U8, I8}, {I8, U8}, // same width, different sign: lossy both ways
		{F32, I32}, {F64, I64}, {F64, U64}, {F32, U32},
		{U32, I16}, // unsigned cannot hold negatives
	}
	for _, c := range narrower {
		if c.a.Wider(c.b) {
			t.Errorf("%v must not be wider than %v", c.a, c.b)
		}
	}
	for _, k := range AllKinds() {
		if !k.Wider(k) {
			t.Errorf("%v must be wider than itself", k)
		}
	}
}

func TestPromote(t *testing.T) {
	cases := []struct{ a, b, want Kind }{
		{I32, I32, I32},
		{I32, F64, F64},
		{F32, I64, F32},
		{I8, I32, I32},
		{U8, U32, U32},
		{I32, U32, I32}, // same width: signed wins
		{I16, U32, U32}, // wider wins
		{Bool, I32, I32},
		{Bool, Bool, Bool},
	}
	for _, c := range cases {
		if got := Promote(c.a, c.b); got != c.want {
			t.Errorf("Promote(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Promote(c.b, c.a); got != c.want {
			t.Errorf("Promote(%v, %v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestGoType(t *testing.T) {
	if F64.GoType() != "float64" || Bool.GoType() != "bool" || U16.GoType() != "uint16" {
		t.Error("GoType mapping wrong")
	}
}
