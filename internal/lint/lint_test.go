package lint

import (
	"fmt"
	"strings"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/model"
	"accmos/internal/types"
)

func check(t *testing.T, m *model.Model) []Finding {
	t.Helper()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return Check(c)
}

func hasFinding(fs []Finding, actorSub, msgSub string) bool {
	for _, f := range fs {
		if strings.Contains(f.Actor, actorSub) && strings.Contains(f.Message, msgSub) {
			return true
		}
	}
	return false
}

func TestLintDeadLogicAndDangling(t *testing.T) {
	m := model.NewBuilder("L").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("Live", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("Dead", "Gain", 1, 1, model.WithParam("Gain", "3")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("In", "Live", 0).
		Wire("In", "Dead", 0). // Dead's output goes nowhere
		Wire("Live", "Out", 0).
		MustBuild()
	fs := check(t, m)
	if !hasFinding(fs, "L_Dead", "dead logic") {
		t.Errorf("missing dead-logic finding: %v", fs)
	}
	if !hasFinding(fs, "L_Dead", "never consumed") {
		t.Errorf("missing dangling-output finding: %v", fs)
	}
	if hasFinding(fs, "L_Live", "dead logic") {
		t.Errorf("Live flagged dead: %v", fs)
	}
}

func TestLintConstantConditions(t *testing.T) {
	m := model.NewBuilder("L").
		Add("C", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "1")).
		Add("A", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "2")).
		Add("B", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "3")).
		Add("Sw", "Switch", 3, 1).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("A", "Sw", 0).
		Wire("C", "Sw", 1).
		Wire("B", "Sw", 2).
		Wire("Sw", "Out", 0).
		MustBuild()
	fs := check(t, m)
	if !hasFinding(fs, "L_Sw", "one branch is unreachable") {
		t.Errorf("missing constant-control finding: %v", fs)
	}
}

func TestLintDowncastAndDivZeroAndZeroGain(t *testing.T) {
	m := model.NewBuilder("L").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("Zero", "Constant", 0, 1, model.WithOutKind(types.I32), model.WithParam("Value", "0")).
		Add("Narrow", "Sum", 2, 1, model.WithOperator("++"), model.WithOutKind(types.I16)).
		Add("Div", "Product", 2, 1, model.WithOperator("*/")).
		Add("G0", "Gain", 1, 1, model.WithParam("Gain", "0")).
		Add("O1", "Outport", 1, 0, model.WithParam("Port", "1")).
		Add("O2", "Outport", 1, 0, model.WithParam("Port", "2")).
		Add("O3", "Outport", 1, 0, model.WithParam("Port", "3")).
		Wire("In", "Narrow", 0).
		Wire("In", "Narrow", 1).
		Wire("In", "Div", 0).
		Wire("Zero", "Div", 1).
		Wire("In", "G0", 0).
		Wire("Narrow", "O1", 0).
		Wire("Div", "O2", 0).
		Wire("G0", "O3", 0).
		MustBuild()
	fs := check(t, m)
	if !hasFinding(fs, "L_Narrow", "downcast") {
		t.Errorf("missing downcast finding: %v", fs)
	}
	if !hasFinding(fs, "L_Div", "constant zero") {
		t.Errorf("missing div-by-zero finding: %v", fs)
	}
	if !hasFinding(fs, "L_G0", "gain is zero") {
		t.Errorf("missing zero-gain finding: %v", fs)
	}
}

func TestLintCoupledConditionsAndConstEnable(t *testing.T) {
	m := model.NewBuilder("L").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Port", "1")).
		Add("And", "Logic", 2, 1, model.WithOperator("AND")).
		Add("On", "Constant", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Value", "true")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"), model.WithParam("EnabledBy", "On"), model.WithOutKind(types.F64)).
		Add("Cv", "DataTypeConversion", 1, 1, model.WithOutKind(types.F64)).
		Add("O1", "Outport", 1, 0, model.WithParam("Port", "1")).
		Add("O2", "Outport", 1, 0, model.WithParam("Port", "2")).
		Wire("In", "And", 0).
		Wire("In", "And", 1). // same source twice: coupled
		Wire("In", "Cv", 0).
		Wire("Cv", "G", 0).
		Wire("And", "O1", 0).
		Wire("G", "O2", 0).
		MustBuild()
	fs := check(t, m)
	if !hasFinding(fs, "L_And", "coupled conditions") {
		t.Errorf("missing coupled-conditions finding: %v", fs)
	}
	if !hasFinding(fs, "L_G", "permanently enabled") {
		t.Errorf("missing constant-enable finding: %v", fs)
	}
}

func TestLintCleanModelIsQuiet(t *testing.T) {
	m := model.NewBuilder("L").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	if fs := check(t, m); len(fs) != 0 {
		t.Errorf("clean model produced findings: %v", fs)
	}
}

func TestLintBenchmarksRunClean(t *testing.T) {
	// The benchmark models may legitimately contain dangling filler
	// outputs; the lint must at least run and stay deterministic.
	c, err := actors.Compile(benchmodels.MustBuild("CSEV"))
	if err != nil {
		t.Fatal(err)
	}
	a := Check(c)
	b := Check(c)
	if len(a) != len(b) {
		t.Fatal("lint is nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("lint ordering is nondeterministic")
		}
	}
}

func TestLintSignalWidthError(t *testing.T) {
	m := model.NewBuilder("L").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"), model.WithOutWidth(MaxSignalWidth+1)).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	fs := check(t, m)
	if !hasFinding(fs, "L_G", "exceeds the supported maximum") {
		t.Fatalf("missing width finding: %v", fs)
	}
	blocking := Errors(fs)
	if len(blocking) == 0 {
		t.Fatalf("width finding is not error severity: %v", fs)
	}
	for _, f := range blocking {
		if f.Severity != Error {
			t.Errorf("Errors returned a %s finding: %v", f.Severity, f)
		}
	}
	// A width at the bound is fine.
	ok := model.NewBuilder("L").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"), model.WithOutWidth(MaxSignalWidth)).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	if blocking := Errors(check(t, ok)); len(blocking) != 0 {
		t.Errorf("width at the bound must not block: %v", blocking)
	}
}

func TestLintErrorsSortFirst(t *testing.T) {
	m := model.NewBuilder("L").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "0"), model.WithOutWidth(MaxSignalWidth+1)).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "Out").
		MustBuild()
	fs := check(t, m)
	var sawNonError bool
	for _, f := range fs {
		if f.Actor != "L_G" {
			continue
		}
		if f.Severity != Error {
			sawNonError = true
		} else if sawNonError {
			t.Fatalf("error finding sorted after a lesser severity: %v", fs)
		}
	}
}

func TestLintNoFusion(t *testing.T) {
	// A long chain of opaque actors (Sign never lowers) on a model past
	// the size gate: the O2 plan fuses nothing, so the informational
	// finding fires once, attached to the model name.
	b := model.NewBuilder("NF")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	prev := "In"
	for i := 0; i < NoFusionMinActors; i++ {
		n := "S" + string(rune('A'+i))
		b.Add(n, "Sign", 1, 1)
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect(prev, 0, "Out", 0)
	fs := check(t, b.MustBuild())
	var hits int
	for _, f := range fs {
		if f.Rule == RuleNoFusion {
			hits++
			if f.Severity != Info {
				t.Errorf("NoFusion severity = %s, want info", f.Severity)
			}
			if f.Actor != "NF" {
				t.Errorf("NoFusion actor = %q, want the model name", f.Actor)
			}
		}
	}
	if hits != 1 {
		t.Fatalf("NoFusion findings = %d, want 1: %v", hits, fs)
	}

	// A fusion-heavy benchmark shape must stay clean.
	c, err := actors.Compile(benchmodels.MustBuildOpt("OPTF"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Check(c) {
		if f.Rule == RuleNoFusion {
			t.Fatalf("OPTF flagged NoFusion despite fusing: %v", f)
		}
	}

	// Below the size gate the rule stays silent even with zero fusion.
	small := model.NewBuilder("NFS").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("S", "Sign", 1, 1).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "S", "Out").
		MustBuild()
	for _, f := range check(t, small) {
		if f.Rule == RuleNoFusion {
			t.Fatalf("small model flagged NoFusion below the size gate: %v", f)
		}
	}
}

func TestLintNoPartition(t *testing.T) {
	// A data store read at the top of the schedule and written at the
	// bottom pins the whole schedule into one segment: no legal cut, so
	// the informational finding fires once, attached to the model name.
	b := model.NewBuilder("NP")
	b.Add("Mem", "DataStoreMemory", 0, 0, model.WithParam("Store", "s"))
	b.Add("ARd", "DataStoreRead", 0, 1, model.WithParam("Store", "s"), model.WithOutKind(types.F64))
	prev := "ARd"
	for i := 0; i < NoPartitionMinActors; i++ {
		n := fmt.Sprintf("S%03d", i)
		b.Add(n, "Sign", 1, 1)
		b.Connect(prev, 0, n, 0)
		prev = n
	}
	b.Add("ZWr", "DataStoreWrite", 1, 0, model.WithParam("Store", "s"))
	b.Connect(prev, 0, "ZWr", 0)
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect(prev, 0, "Out", 0)
	fs := check(t, b.MustBuild())
	var hits int
	for _, f := range fs {
		if f.Rule == RuleNoPartition {
			hits++
			if f.Severity != Info {
				t.Errorf("NoPartition severity = %s, want info", f.Severity)
			}
			if f.Actor != "NP" {
				t.Errorf("NoPartition actor = %q, want the model name", f.Actor)
			}
		}
	}
	if hits != 1 {
		t.Fatalf("NoPartition findings = %d, want 1: %v", hits, fs)
	}

	// The partition benchmark shapes must stay clean.
	for _, name := range benchmodels.PartNames() {
		c, err := actors.Compile(benchmodels.MustBuildPart(name))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range Check(c) {
			if f.Rule == RuleNoPartition {
				t.Fatalf("%s flagged NoPartition despite cutting: %v", name, f)
			}
		}
	}

	// Below the size gate the rule stays silent even though a tiny model
	// never cuts.
	small := model.NewBuilder("NPS").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("S", "Sign", 1, 1).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "S", "Out").
		MustBuild()
	for _, f := range check(t, small) {
		if f.Rule == RuleNoPartition {
			t.Fatalf("small model flagged NoPartition below the size gate: %v", f)
		}
	}
}
