// Package lint implements static model diagnosis: structural checks that
// find suspicious model constructs before any simulation runs — the
// "logical errors, incorrect assumptions, and unintended behaviors" the
// paper's simulation workflow hunts for, caught where a static pass
// suffices. It complements the runtime calculation diagnosis in
// internal/diagnose.
package lint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"accmos/internal/actors"
	"accmos/internal/diagnose"
	"accmos/internal/opt"
	"accmos/internal/opt/ir"
	"accmos/internal/opt/irplan"
	"accmos/internal/opt/partition"
)

// Severity ranks a finding.
type Severity string

// Severities. Error findings mark models that must not reach code
// generation (a serving layer rejects them at admission); warnings and
// infos are advisory.
const (
	Error   Severity = "error"
	Warning Severity = "warning"
	Info    Severity = "info"
)

// MaxSignalWidth caps the vector width any one signal may carry. Code
// generation materialises vector signals as fixed-size arrays in the
// generated program, so an absurd OutWidth in a submitted model would
// balloon generated-source size and compile time — a resource-exhaustion
// hazard for a long-lived daemon accepting third-party models.
const MaxSignalWidth = 65536

// Rule slugs: the stable machine-readable names of the static rules, so
// clients (e.g. accmosd admission responses) can filter findings without
// parsing messages.
const (
	RuleMaxSignalWidth       = "MaxSignalWidth"
	RuleDeadActors           = "DeadActors"
	RuleDanglingOutput       = "DanglingOutput"
	RuleDowncast             = "Downcast"
	RuleConstantBranch       = "ConstantBranch"
	RuleDivByConstZero       = "DivByConstZero"
	RuleZeroGain             = "ZeroGain"
	RuleDegenerateSaturation = "DegenerateSaturation"
	RuleCoupledConditions    = "CoupledConditions"
	RuleConstantEnable       = "ConstantEnable"
	RuleNoFusion             = "NoFusion"
	RuleNoPartition          = "NoPartition"
)

// NoFusionMinActors gates the NoFusion rule: below this actor count the
// absence of fusable chains is expected, not a modeling smell.
const NoFusionMinActors = 20

// NoPartitionMinActors gates the NoPartition rule: below this actor
// count a sequential step loop is the right answer anyway.
const NoPartitionMinActors = 2 * partition.MinActorsPerPartition

// Finding is one static diagnosis.
type Finding struct {
	Severity Severity
	Rule     string // stable rule slug (Rule* constants)
	Actor    string // paper-style path
	Message  string
}

// String renders the finding as "severity: actor: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Severity, f.Actor, f.Message)
}

// Check runs every static rule over a compiled model. Findings are sorted
// by actor path, warnings before infos within an actor.
func Check(c *actors.Compiled) []Finding {
	var out []Finding
	add := func(sev Severity, rule string, info *actors.Info, format string, args ...interface{}) {
		out = append(out, Finding{Severity: sev, Rule: rule, Actor: info.Path, Message: fmt.Sprintf(format, args...)})
	}

	constDriver := func(info *actors.Info, port int) (*actors.Info, bool) {
		src := info.InSrc[port]
		if src.Actor == "" {
			return nil, false
		}
		drv := c.Info(src.Actor)
		if drv != nil && drv.Actor.Type == "Constant" {
			return drv, true
		}
		return nil, false
	}

	// Reverse reachability from the model's observable effects — the same
	// analysis the optimizer's dead-actor pass runs, so lint flags
	// exactly the actors -O1 would consider dead.
	influences := opt.Influencers(c, opt.ObservableRoots(c))

	for _, info := range c.Order {
		a := info.Actor

		// Rule: signal width beyond the supported bound — generated code
		// would unroll into an array of that size, so a malformed or
		// hostile model must be stopped before codegen.
		for i, w := range info.OutWidths {
			if w > MaxSignalWidth {
				add(Error, RuleMaxSignalWidth, info, "output %d width %d exceeds the supported maximum %d", i, w, MaxSignalWidth)
			}
		}

		// Rule: actor influences no observable output.
		switch a.Type {
		case "Outport", "Terminator", "Scope", "Display", "ToWorkspace", "DataStoreWrite", "DataStoreMemory":
		default:
			if !influences[a.Name] {
				add(Warning, RuleDeadActors, info, "influences no model output or data store (dead logic)")
			}
		}

		// Rule: dangling outputs (computed but never consumed).
		for p := range a.Outputs {
			if len(c.Model.Consumers(a.Name, p)) == 0 {
				add(Info, RuleDanglingOutput, info, "output %d is computed but never consumed", p)
			}
		}

		// Rule: static downcast (the paper's sizeof-based condition).
		for _, k := range diagnose.RulesFor(info) {
			if k == diagnose.Downcast {
				add(Warning, RuleDowncast, info, "output type %s is narrower than its inputs (downcast, wrap on overflow possible)", info.OutKind())
			}
		}

		// Rule: constant branch conditions — the branch structure can
		// never be exercised, so condition coverage is capped.
		switch a.Type {
		case "Switch":
			if drv, ok := constDriver(info, 1); ok {
				add(Warning, RuleConstantBranch, info, "control input is the constant %q: one branch is unreachable",
					drv.Actor.Param("Value", "0"))
			}
		case "If":
			if drv, ok := constDriver(info, 0); ok {
				add(Warning, RuleConstantBranch, info, "condition input is the constant %q: one branch is unreachable",
					drv.Actor.Param("Value", "0"))
			}
		case "MultiportSwitch":
			if drv, ok := constDriver(info, 0); ok {
				add(Warning, RuleConstantBranch, info, "index input is the constant %q: all other ports are unreachable",
					drv.Actor.Param("Value", "0"))
			}
		}

		// Rule: division by a constant zero.
		if a.Type == "Product" {
			signs := info.Operator
			for p := 0; p < len(signs) && p < info.NumIn(); p++ {
				if signs[p] != '/' {
					continue
				}
				if drv, ok := constDriver(info, p); ok {
					if f, err := strconv.ParseFloat(strings.TrimSpace(drv.Actor.Param("Value", "0")), 64); err == nil && f == 0 {
						add(Warning, RuleDivByConstZero, info, "divides by the constant zero on input %d", p)
					}
				}
			}
		}

		// Rule: zero gain wipes its signal.
		if a.Type == "Gain" {
			if f, err := strconv.ParseFloat(strings.TrimSpace(a.Param("Gain", "1")), 64); err == nil && f == 0 {
				add(Warning, RuleZeroGain, info, "gain is zero: the output is constant zero")
			}
		}

		// Rule: degenerate saturation.
		if a.Type == "Saturation" && a.Param("Min", "") != "" && a.Param("Min", "") == a.Param("Max", "") {
			add(Warning, RuleDegenerateSaturation, info, "saturation bounds are equal: the output is the constant %s", a.Param("Min", ""))
		}

		// Rule: logic over duplicated condition sources — MC/DC can never
		// demonstrate independence of coupled conditions.
		if a.Type == "Logic" && info.NumIn() >= 2 {
			seen := map[string]int{}
			for p, src := range info.InSrc {
				key := src.String()
				if prev, dup := seen[key]; dup {
					add(Warning, RuleCoupledConditions, info, "inputs %d and %d share the same source %s: coupled conditions make MC/DC unsatisfiable", prev, p, key)
				} else {
					seen[key] = p
				}
			}
		}

		// Rule: constant enable signal — the gate never changes.
		if info.Gated() {
			drv := c.Info(info.EnabledBy.Actor)
			if drv != nil && drv.Actor.Type == "Constant" {
				add(Warning, RuleConstantEnable, info, "enable signal is the constant %q: the actor is permanently %s",
					drv.Actor.Param("Value", "0"), enabledWord(drv.Actor.Param("Value", "0")))
			}
		}
	}

	// Rule: O2 fusion rate zero on a non-trivial model. The typed-lowering
	// plan is rebuilt here with instrumentation off — the configuration a
	// perf-sensitive sweep uses — so the finding predicts exactly what
	// -O2 would do. Informational: heavy state, gating or multi-consumer
	// fan-out can be legitimate, but on a large model it usually means the
	// arithmetic is shaped so the middle end cannot help.
	if len(c.Order) >= NoFusionMinActors {
		plan := irplan.Build(ir.Analyze(c, ir.Config{}))
		if plan.Stats.FusedExprs == 0 {
			out = append(out, Finding{
				Severity: Info, Rule: RuleNoFusion, Actor: c.Model.Name,
				Message: fmt.Sprintf("no actor fuses at -O2 (%d actors, %d lowerable): every chain is broken by state, gating or multi-consumer fan-out",
					len(c.Order), plan.Stats.LoweredActors),
			})
		}
	}

	// Rule: a 2-way partition request collapses to sequential on a
	// non-trivial model. Mirrors NoFusion: informational, because dense
	// state feedback or a schedule-spanning data store can be legitimate —
	// but on a large model it means -partitions (and auto partitioning on
	// multi-core runners) can never pipeline the step loop.
	if len(c.Order) >= NoPartitionMinActors {
		if plan := partition.Build(c, 2); plan.Usable < 2 {
			out = append(out, Finding{
				Severity: Info, Rule: RuleNoPartition, Actor: c.Model.Name,
				Message: fmt.Sprintf("no usable partition cut at -partitions 2 (%d actors): %s",
					len(c.Order), plan.Declined),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Actor != out[j].Actor {
			return out[i].Actor < out[j].Actor
		}
		if out[i].Severity != out[j].Severity {
			return severityRank(out[i].Severity) < severityRank(out[j].Severity)
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// severityRank orders findings within one actor: errors, then warnings,
// then infos.
func severityRank(s Severity) int {
	switch s {
	case Error:
		return 0
	case Warning:
		return 1
	default:
		return 2
	}
}

// Errors filters the findings that must block code generation.
func Errors(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}

func enabledWord(v string) string {
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err == nil && f == 0 {
		return "disabled"
	}
	if b, err := strconv.ParseBool(strings.TrimSpace(v)); err == nil && !b {
		return "disabled"
	}
	return "enabled"
}
