package iremit

import (
	"fmt"
	"strings"
	"testing"

	"accmos/internal/opt/ir"
	"accmos/internal/opt/irplan"
	"accmos/internal/types"
)

func testEmitter(p *irplan.Plan) *Emitter {
	return &Emitter{
		VarName: func(index, port int) string { return fmt.Sprintf("v%d_%d", index, port) },
		Plan:    p,
	}
}

func ref(actor string, index int, k types.Kind, w int) *ir.Ref {
	return &ir.Ref{Actor: actor, Index: index, Port: 0, K: k, W: w}
}

func TestExprBinFloat32Rounding(t *testing.T) {
	em := testEmitter(nil)
	e := &ir.Bin{Op: "+", K: types.F32, A: ref("a", 1, types.F32, 1), B: ref("b", 2, types.F32, 1)}
	got := em.Expr(e, false)
	want := "float32(float64(v1_0) + float64(v2_0))"
	if got != want {
		t.Fatalf("F32 add = %q, want %q", got, want)
	}
	// F64 stays plain infix.
	e64 := &ir.Bin{Op: "*", K: types.F64, A: ref("a", 1, types.F64, 1), B: ref("b", 2, types.F64, 1)}
	if got := em.Expr(e64, false); got != "(v1_0 * v2_0)" {
		t.Fatalf("F64 mul = %q", got)
	}
}

func TestExprNarrowedRefWidens(t *testing.T) {
	p := &irplan.Plan{Narrowed: map[string]types.Kind{
		"ni": types.I16,
		"nf": types.F32,
	}}
	em := testEmitter(p)
	if got := em.Expr(ref("ni", 3, types.I32, 1), false); got != "int32(v3_0)" {
		t.Fatalf("narrowed int read = %q, want int32(v3_0)", got)
	}
	if got := em.Expr(ref("nf", 4, types.F64, 1), false); got != "float64(v4_0)" {
		t.Fatalf("narrowed float read = %q, want float64(v4_0)", got)
	}
	if got := em.Expr(ref("plain", 5, types.I32, 1), false); got != "v5_0" {
		t.Fatalf("plain read = %q", got)
	}
}

func TestExprVectorIndexing(t *testing.T) {
	em := testEmitter(nil)
	vec := ref("v", 1, types.F64, 4)
	scalar := ref("s", 2, types.F64, 1)
	e := &ir.Bin{Op: "+", K: types.F64, A: vec, B: scalar}
	// Element context: the vector ref indexes, the scalar broadcasts.
	if got := em.Expr(e, true); got != "(v1_0[i] + v2_0)" {
		t.Fatalf("vec expr = %q", got)
	}
	if got := em.Expr(e, false); got != "(v1_0 + v2_0)" {
		t.Fatalf("scalar-context expr = %q", got)
	}
}

func TestExprMathAndCasts(t *testing.T) {
	em := testEmitter(nil)
	e := &ir.Cast{From: types.F64, To: types.I32,
		X: &ir.Call{Op: "sqrt", X: ref("x", 1, types.F64, 1)}}
	got := em.Expr(e, false)
	if !strings.Contains(got, "math.Sqrt(v1_0)") {
		t.Fatalf("call render = %q", got)
	}
	if !strings.Contains(got, "cvtF2I") {
		t.Fatalf("float->int cast must saturate via cvtF2I: %q", got)
	}
	if !em.NeedMath {
		t.Fatal("sqrt must set NeedMath")
	}
}

func TestExprCmpAndLogic(t *testing.T) {
	em := testEmitter(nil)
	cmp := &ir.Cmp{Op: "~=", K: types.F64, A: ref("a", 1, types.F64, 1), B: ref("b", 2, types.F64, 1)}
	if got := em.Expr(cmp, false); got != "(v1_0 != v2_0)" {
		t.Fatalf("~= render = %q", got)
	}
	// Ordering booleans goes through b2i like the Relational template.
	bcmp := &ir.Cmp{Op: "<", K: types.Bool, A: ref("a", 1, types.Bool, 1), B: ref("b", 2, types.Bool, 1)}
	if got := em.Expr(bcmp, false); got != "(b2i(v1_0) < b2i(v2_0))" {
		t.Fatalf("bool < render = %q", got)
	}
	nor := &ir.Logic{Op: "NOR", Args: []ir.Expr{ref("a", 1, types.Bool, 1), ref("b", 2, types.Bool, 1)}}
	if got := em.Expr(nor, false); got != "!(v1_0 || v2_0)" {
		t.Fatalf("NOR render = %q", got)
	}
}

func TestRootAssignScalarAndVector(t *testing.T) {
	em := testEmitter(nil)
	scalar := &irplan.Root{Name: "s", Index: 7, Kind: types.F64, Store: types.F64, Width: 1,
		Expr: &ir.Bin{Op: "+", K: types.F64, A: ref("a", 1, types.F64, 1), B: ref("b", 2, types.F64, 1)}}
	lines := em.RootAssign(scalar)
	if len(lines) != 1 || lines[0] != "v7_0 = (v1_0 + v2_0)" {
		t.Fatalf("scalar assign = %q", lines)
	}
	vec := &irplan.Root{Name: "v", Index: 8, Kind: types.F64, Store: types.F64, Width: 3,
		Expr: &ir.Bin{Op: "+", K: types.F64, A: ref("a", 1, types.F64, 3), B: ref("b", 2, types.F64, 3)}}
	lines = em.RootAssign(vec)
	if len(lines) != 3 || lines[0] != "for i := 0; i < 3; i++ {" ||
		lines[1] != "\tv8_0[i] = (v1_0[i] + v2_0[i])" || lines[2] != "}" {
		t.Fatalf("vector assign = %q", lines)
	}
}

func TestRootAssignNarrowedStorage(t *testing.T) {
	em := testEmitter(nil)
	// Integer narrowing converts the semantic-kind expression on store.
	ni := &irplan.Root{Name: "n", Index: 9, Kind: types.I32, Store: types.I16, Width: 1,
		Expr: &ir.Bin{Op: "+", K: types.I32, A: ref("a", 1, types.I32, 1), B: ref("b", 2, types.I32, 1)}}
	lines := em.RootAssign(ni)
	if lines[0] != "v9_0 = int16((v1_0 + v2_0))" {
		t.Fatalf("narrowed int assign = %q", lines[0])
	}
	// F32 narrowing re-rooted the tree already: no conversion wrapper.
	nf := &irplan.Root{Name: "f", Index: 10, Kind: types.F64, Store: types.F32, Width: 1,
		Expr: &ir.Bin{Op: "*", K: types.F32, A: ref("a", 1, types.F32, 1), B: ref("b", 2, types.F32, 1)}}
	lines = em.RootAssign(nf)
	if lines[0] != "v10_0 = float32(float64(v1_0) * float64(v2_0))" {
		t.Fatalf("f32-narrowed assign = %q", lines[0])
	}
}

func TestExprHoistRefAndShift(t *testing.T) {
	em := testEmitter(nil)
	if got := em.Expr(&ir.HoistRef{Name: "hx3", K: types.F64}, false); got != "hx3" {
		t.Fatalf("hoist ref = %q", got)
	}
	sh := &ir.Shift{Op: "right", N: 2, K: types.I32, X: ref("x", 1, types.I32, 1)}
	if got := em.Expr(sh, false); got != "(v1_0 >> 2)" {
		t.Fatalf("shift render = %q", got)
	}
	bn := &ir.BNot{K: types.U8, X: ref("x", 1, types.U8, 1)}
	if got := em.Expr(bn, false); got != "(^v1_0)" {
		t.Fatalf("bnot render = %q", got)
	}
}
