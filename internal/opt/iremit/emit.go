// Package iremit renders planned O2 expression trees into Go source.
// It is the third stage of the O2 middle-end (analyzer → planner →
// emitter) and the only one that knows how the code generator names
// signal variables.
//
// Emission reuses the exact casting helpers the per-actor templates use
// (actors.Cast, binExpr's float32-through-float64 rounding,
// types.MathGoExpr), so a fused expression performs operation-for-
// operation the same arithmetic as the statements it replaces. One rule
// has no template counterpart: a multi-operation expression over
// literals alone must never be emitted, because Go folds constant
// expressions at compile time with exact arithmetic instead of the
// runtime's per-operation rounding — the planner guarantees such trees
// were already folded to a single literal (or hoisted global) with the
// engines' own ops.
package iremit

import (
	"fmt"
	"strings"

	"accmos/internal/actors"
	"accmos/internal/opt/ir"
	"accmos/internal/opt/irplan"
	"accmos/internal/types"
)

// Emitter renders expressions for one generated program.
type Emitter struct {
	// VarName maps (schedule index, output port) to the generated
	// variable name, decoupling emission from the generator's naming.
	VarName func(index, port int) string
	// Plan supplies narrowing decisions so Refs to narrowed signals
	// widen back to their semantic kind on read. May be nil.
	Plan *irplan.Plan
	// NeedMath is set when emitted code references the math package.
	NeedMath bool
}

// Expr renders e as a Go expression. vec selects element context: Refs
// to vector signals index with [i] (scalars broadcast), matching the
// templates' ForEachOut discipline.
func (em *Emitter) Expr(e ir.Expr, vec bool) string {
	switch n := e.(type) {
	case *ir.Ref:
		name := em.VarName(n.Index, n.Port)
		if vec && n.W > 1 {
			name += "[i]"
		}
		if em.Plan != nil {
			if store, ok := em.Plan.NarrowedKind(n.Actor); ok {
				// Widen narrowed storage back to the semantic kind; the
				// value round-trips exactly by the narrowing criterion.
				if n.K == types.F64 && store == types.F32 {
					return fmt.Sprintf("float64(%s)", name)
				}
				return fmt.Sprintf("%s(%s)", n.K.GoType(), name)
			}
		}
		return name
	case *ir.Lit:
		lit := n.Val.GoLiteral()
		if strings.Contains(lit, "math.") {
			em.NeedMath = true
		}
		return lit
	case *ir.HoistRef:
		return n.Name
	case *ir.Bin:
		a, b := em.Expr(n.A, vec), em.Expr(n.B, vec)
		if n.K == types.F32 && (n.Op == "+" || n.Op == "-" || n.Op == "*" || n.Op == "/") {
			return fmt.Sprintf("float32(float64(%s) %s float64(%s))", a, n.Op, b)
		}
		return fmt.Sprintf("(%s %s %s)", a, n.Op, b)
	case *ir.Call:
		x := em.Expr(n.X, vec)
		if n.Op == "abs" {
			em.NeedMath = true
			return fmt.Sprintf("math.Abs(%s)", x)
		}
		if n.Op != "reciprocal" && n.Op != "square" {
			em.NeedMath = true
		}
		return types.MathGoExpr(n.Op, x)
	case *ir.Mod2:
		em.NeedMath = true
		return fmt.Sprintf("math.Mod(float64(%s), float64(%s))",
			em.Expr(n.A, vec), em.Expr(n.B, vec))
	case *ir.Cast:
		return actors.Cast(em.Expr(n.X, vec), n.From, n.To)
	case *ir.Cmp:
		a, b := em.Expr(n.A, vec), em.Expr(n.B, vec)
		op := relGoOp(n.Op)
		if n.K == types.Bool && n.Op != "==" && n.Op != "~=" {
			// Order comparison on booleans routes through 0/1 integers,
			// matching the Relational templates.
			return fmt.Sprintf("(b2i(%s) %s b2i(%s))", a, op, b)
		}
		return fmt.Sprintf("(%s %s %s)", a, op, b)
	case *ir.Logic:
		if n.Op == "NOT" {
			return "!" + em.Expr(n.Args[0], vec)
		}
		joiner, negate := " && ", false
		switch n.Op {
		case "AND":
		case "NAND":
			negate = true
		case "OR":
			joiner = " || "
		case "NOR":
			joiner, negate = " || ", true
		case "XOR":
			joiner = " != "
		case "NXOR":
			joiner, negate = " != ", true
		}
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = em.Expr(a, vec)
		}
		expr := "(" + strings.Join(parts, joiner) + ")"
		if negate {
			expr = "!" + expr
		}
		return expr
	case *ir.BNot:
		return fmt.Sprintf("(^%s)", em.Expr(n.X, vec))
	case *ir.Shift:
		op := "<<"
		if n.Op == "right" {
			op = ">>"
		}
		return fmt.Sprintf("(%s %s %d)", em.Expr(n.X, vec), op, n.N)
	}
	return "/* iremit: unknown node */"
}

// relGoOp maps the model relational operator to Go's.
func relGoOp(op string) string {
	if op == "~=" {
		return "!="
	}
	return op
}

// RootAssign renders the fused assignment statement(s) for one planned
// root. Lines come back without leading indentation; vector roots emit
// an element loop with one extra tab on the body line.
func (em *Emitter) RootAssign(r *irplan.Root) []string {
	name := em.VarName(r.Index, 0)
	// store converts the semantic-kind expression into the (possibly
	// narrowed) storage kind. Exact by the narrowing criterion.
	store := func(expr string) string {
		if r.Store == r.Kind || (r.Kind == types.F64 && r.Store == types.F32) {
			// F32 narrowing already re-rooted the tree at the float32
			// subexpression, so no conversion is needed either way.
			return expr
		}
		return fmt.Sprintf("%s(%s)", r.Store.GoType(), expr)
	}
	if r.Width <= 1 {
		return []string{fmt.Sprintf("%s = %s", name, store(em.Expr(r.Expr, false)))}
	}
	return []string{
		fmt.Sprintf("for i := 0; i < %d; i++ {", r.Width),
		fmt.Sprintf("\t%s[i] = %s", name, store(em.Expr(r.Expr, true))),
		"}",
	}
}
