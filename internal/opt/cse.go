package opt

import (
	"fmt"
	"sort"
	"strings"

	"accmos/internal/actors"
	"accmos/internal/model"
)

// cse merges duplicate actors: when two actors have identical type,
// operator, params and (representative-resolved) inputs, every consumer of
// the duplicate is rewired to the representative. The duplicate itself is
// NOT removed here — it keeps executing with identical instrumentation
// until dce decides, under its own soundness rules, whether it may go.
// That split is what makes cse itself unconditionally instrumentation-
// sound: rewiring consumers to an identical producer changes no value,
// no coverage bit and no diagnosis record.
func (s *session) cse(c *actors.Compiled) (*model.Model, int, error) {
	if hasDataStores(c) {
		return nil, 0, nil // rescheduling hazard; see hasDataStores
	}
	repl := make(map[string]string) // duplicate name -> representative name
	resolve := func(n string) string {
		for {
			r, ok := repl[n]
			if !ok {
				return n
			}
			n = r
		}
	}
	seen := make(map[string]string) // structural key -> representative name
	for _, info := range c.Order {
		if !cseEligible(info) {
			continue
		}
		key := cseKey(info, resolve)
		if rep, dup := seen[key]; dup {
			repl[info.Actor.Name] = rep
		} else {
			seen[key] = info.Actor.Name
		}
	}
	if len(repl) == 0 {
		return nil, 0, nil
	}
	m2 := c.Model.Clone()
	for i := range m2.Connections {
		cn := &m2.Connections[i]
		if r := resolve(cn.SrcActor); r != cn.SrcActor {
			cn.SrcActor = r
		}
	}
	for _, a := range m2.Actors {
		if en := a.Param("EnabledBy", ""); en != "" {
			if r := resolve(en); r != en {
				a.SetParam("EnabledBy", r)
			}
		}
	}
	return m2, len(repl), nil
}

// cseEligible excludes actors whose identity matters beyond their
// computed outputs. Stateful actors remain eligible: identical params and
// identical inputs drive identical deterministic state trajectories
// (RandomNumber streams are seeded from the Seed param, not the name).
func cseEligible(info *actors.Info) bool {
	switch info.Actor.Type {
	case "Inport", "Outport",
		"DataStoreRead", "DataStoreWrite", "DataStoreMemory":
		return false
	}
	if len(info.Actor.Outputs) == 0 {
		return false
	}
	if info.Gated() {
		// Distinct enable histories could diverge even with equal inputs;
		// and rewiring consumers to a disabled actor would feed them that
		// actor's zero outputs.
		return false
	}
	return true
}

// cseKey is the structural identity of an actor: type, resolved operator,
// sorted params and representative-resolved input references. Walked in
// schedule order, so input references always resolve through earlier
// merges (chains of duplicates collapse in one pass).
func cseKey(info *actors.Info, resolve func(string) string) string {
	var sb strings.Builder
	sb.WriteString(string(info.Actor.Type))
	sb.WriteByte(0)
	sb.WriteString(info.Operator)
	sb.WriteByte(0)
	keys := make([]string, 0, len(info.Actor.Params))
	for k := range info.Actor.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s\x00", k, info.Actor.Params[k])
	}
	sb.WriteByte(1)
	for _, src := range info.InSrc {
		fmt.Fprintf(&sb, "%s:%d\x00", resolve(src.Actor), src.Port)
	}
	fmt.Fprintf(&sb, "\x01out:%d", len(info.Actor.Outputs))
	return sb.String()
}
