package ir

import (
	"testing"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/types"
)

func analyze(t *testing.T, m *model.Model, cfg Config) *Graph {
	t.Helper()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatalf("compile %s: %v", m.Name, err)
	}
	return Analyze(c, cfg)
}

// chainModel is a pure arithmetic chain: In1 -> Gain(2) -> Bias(1) ->
// Sum(+-, with In1) -> Out1, plus a UnitDelay tap off the Gain.
func chainModel() *model.Model {
	b := model.NewBuilder("CHAIN")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"))
	b.Add("B", "Bias", 1, 1, model.WithParam("Bias", "1"))
	b.Add("S", "Sum", 2, 1, model.WithOperator("+-"))
	b.Add("D", "UnitDelay", 1, 1)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Add("Out2", "Outport", 1, 0, model.WithParam("Port", "2"))
	b.Connect("In1", 0, "G", 0)
	b.Connect("G", 0, "B", 0)
	b.Connect("B", 0, "S", 0)
	b.Connect("In1", 0, "S", 1)
	b.Connect("G", 0, "D", 0)
	b.Connect("S", 0, "Out1", 0)
	b.Connect("D", 0, "Out2", 0)
	return b.MustBuild()
}

func TestAnalyzeLowersArithmetic(t *testing.T) {
	g := analyze(t, chainModel(), Config{})
	for _, name := range []string{"G", "B", "S"} {
		n := g.ByName[name]
		if n == nil || n.Lowered == nil {
			t.Fatalf("%s: not lowered (decline %q)", name, n.Decline)
		}
	}
	if n := g.ByName["D"]; n.Lowered != nil || n.Decline != "stateful" {
		t.Fatalf("UnitDelay: want stateful decline, got %v / %q", n.Lowered, n.Decline)
	}
	if n := g.ByName["In1"]; n.Lowered != nil || n.Decline != "opaque actor type" {
		t.Fatalf("Inport: want opaque decline, got %v / %q", n.Lowered, n.Decline)
	}
	// G feeds B and D: two uses. B feeds S: one use.
	if n := g.ByName["G"]; len(n.UsedBy) != 2 {
		t.Fatalf("G uses = %v, want 2", n.UsedBy)
	}
	if n := g.ByName["B"]; len(n.UsedBy) != 1 || n.UsedBy[0].Consumer != "S" {
		t.Fatalf("B uses = %v, want [S]", n.UsedBy)
	}
}

func TestAnalyzeSumTree(t *testing.T) {
	g := analyze(t, chainModel(), Config{})
	// S has signs "+-": castK(0) - castK(1), both F64 so Refs directly.
	bin, ok := g.ByName["S"].Lowered.(*Bin)
	if !ok || bin.Op != "-" || bin.K != types.F64 {
		t.Fatalf("S tree = %v", g.ByName["S"].Lowered)
	}
	if r, ok := bin.A.(*Ref); !ok || r.Actor != "B" {
		t.Fatalf("S lhs = %v, want Ref{B}", bin.A)
	}
	if r, ok := bin.B.(*Ref); !ok || r.Actor != "In1" {
		t.Fatalf("S rhs = %v, want Ref{In1}", bin.B)
	}
}

func TestAnalyzeInstrumentationDeclines(t *testing.T) {
	// With Diagnose on, Sum/Gain/Bias carry overflow/precision rules and
	// must stay opaque.
	g := analyze(t, chainModel(), Config{Diagnose: true})
	for _, name := range []string{"G", "B", "S"} {
		if n := g.ByName[name]; n.Lowered != nil || n.Decline != "diagnosis rules" {
			t.Fatalf("%s with -diag: got %v / %q, want diagnosis-rules decline", name, n.Lowered, n.Decline)
		}
	}

	// With Coverage on, boolean-out actors carry decision bitmaps.
	b := model.NewBuilder("LOGIC")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Port", "1"))
	b.Add("In2", "Inport", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Port", "2"))
	b.Add("L", "Logic", 2, 1, model.WithOperator("AND"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("In1", 0, "L", 0)
	b.Connect("In2", 0, "L", 1)
	b.Connect("L", 0, "Out1", 0)
	gl := analyze(t, b.MustBuild(), Config{Coverage: true})
	if n := gl.ByName["L"]; n.Lowered != nil || n.Decline != "decision coverage" {
		t.Fatalf("Logic with -cov: got %v / %q", n.Lowered, n.Decline)
	}
	// Without coverage the same actor lowers.
	gl = analyze(t, b.MustBuild(), Config{})
	if n := gl.ByName["L"]; n.Lowered == nil {
		t.Fatalf("Logic without -cov declined: %q", n.Decline)
	}
}

func TestAnalyzeMustMaterialize(t *testing.T) {
	g := analyze(t, chainModel(), Config{Monitored: map[string]bool{"B": true}, StopOn: "G"})
	if !g.ByName["B"].MustMaterialize {
		t.Fatal("monitored B must materialize")
	}
	if !g.ByName["G"].MustMaterialize {
		t.Fatal("stop-on G must materialize")
	}
	if g.ByName["S"].MustMaterialize {
		t.Fatal("S must not materialize")
	}
	// Lowering itself is unaffected: materialized actors still lower.
	if g.ByName["B"].Lowered == nil {
		t.Fatal("monitored B should still lower")
	}
}

func TestAnalyzeFacts(t *testing.T) {
	b := model.NewBuilder("FACTS")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1"))
	b.Add("Sat", "Saturation", 1, 1, model.WithParam("Min", "-5"), model.WithParam("Max", "100"))
	b.Add("Sgn", "Sign", 1, 1)
	b.Add("Cmp", "CompareToZero", 1, 1, model.WithOperator(">"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Add("Out2", "Outport", 1, 0, model.WithParam("Port", "2"))
	b.Add("Out3", "Outport", 1, 0, model.WithParam("Port", "3"))
	b.Connect("In1", 0, "Sat", 0)
	b.Connect("In1", 0, "Sgn", 0)
	b.Connect("In1", 0, "Cmp", 0)
	b.Connect("Sat", 0, "Out1", 0)
	b.Connect("Sgn", 0, "Out2", 0)
	b.Connect("Cmp", 0, "Out3", 0)
	g := analyze(t, b.MustBuild(), Config{})
	if f := g.ByName["Sat"].Fact; !f.OK || f.Lo != -5 || f.Hi != 100 {
		t.Fatalf("Saturation fact = %+v, want [-5,100]", f)
	}
	if f := g.ByName["Sgn"].Fact; !f.OK || f.Lo != -1 || f.Hi != 1 {
		t.Fatalf("Sign fact = %+v, want [-1,1]", f)
	}
	if f := g.ByName["Cmp"].Fact; !f.OK || f.Lo != 0 || f.Hi != 1 {
		t.Fatalf("bool fact = %+v, want [0,1]", f)
	}
}

func TestWalkRewriteLeaf(t *testing.T) {
	tree := &Bin{Op: "+", K: types.F64,
		A: &Ref{Actor: "a", K: types.F64, W: 1},
		B: &Cast{From: types.I32, To: types.F64, X: &Ref{Actor: "b", K: types.I32, W: 1}},
	}
	var refs int
	Walk(tree, func(e Expr) {
		if _, ok := e.(*Ref); ok {
			refs++
		}
	})
	if refs != 2 {
		t.Fatalf("Walk saw %d refs, want 2", refs)
	}

	// Rewrite replaces the Ref to "a" with a literal; the original tree
	// must be untouched (Rewrite copies).
	lit := &Lit{Val: types.FloatVal(types.F64, 3)}
	out := Rewrite(tree, func(e Expr) Expr {
		if r, ok := e.(*Ref); ok && r.Actor == "a" {
			return lit
		}
		return e
	})
	if _, ok := out.(*Bin).A.(*Lit); !ok {
		t.Fatalf("Rewrite did not substitute: %v", out)
	}
	if _, ok := tree.A.(*Ref); !ok {
		t.Fatal("Rewrite mutated the input tree")
	}

	if !IsLeaf(&Ref{}) || !IsLeaf(&Lit{Val: types.FloatVal(types.F64, 0)}) || !IsLeaf(&HoistRef{}) {
		t.Fatal("Ref/Lit/HoistRef are leaves")
	}
	if IsLeaf(tree) {
		t.Fatal("Bin is not a leaf")
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Lo: -5, Hi: 100, OK: true}
	if !iv.Contains(-128, 127) {
		t.Fatal("[-5,100] fits int8 range")
	}
	if iv.Contains(0, 255) {
		t.Fatal("[-5,100] does not fit an unsigned range")
	}
	if (Interval{}).Contains(-128, 127) {
		t.Fatal("unknown interval fits nothing")
	}
	if p := Point(7); !p.OK || p.Lo != 7 || p.Hi != 7 {
		t.Fatalf("Point(7) = %+v", p)
	}
}
