package ir

import (
	"accmos/internal/actors"
	"accmos/internal/diagnose"
	"accmos/internal/types"
)

// Config tells the analyzer which observation features are active, since
// lowering eligibility depends on them: an actor is only lowerable when
// replacing its template emission with a fused expression cannot change
// coverage bitmaps, diagnosis records, monitor samples or stop behavior.
type Config struct {
	Coverage bool
	Diagnose bool
	// Monitored / Custom / StopOn name actors (by name or path) whose
	// output variable the instrumentation reads after the actor runs.
	// They may still be lowered to a fused expression, but must stay
	// materialized under their own variable (never inlined, never
	// narrowed).
	Monitored map[string]bool
	Custom    map[string]bool
	StopOn    string
}

// Use is one data-input consumption of a node's output.
type Use struct {
	Consumer string
	Port     int
}

// Node is one scheduled actor with its lowering outcome.
type Node struct {
	Name     string
	Path     string
	Index    int
	Type     string
	Operator string
	Kind     types.Kind
	Width    int

	// Lowered is the actor's expression tree with Ref leaves for every
	// input, or nil when the actor stays opaque (template-emitted).
	// Decline carries the reason when nil.
	Lowered Expr
	Decline string

	// MustMaterialize pins a lowered node under its own variable:
	// monitors, custom checks or stop conditions read it by name.
	MustMaterialize bool

	// UsedBy lists data-input uses; EnableUses counts actors gated by
	// this node's output (an opaque consumption: the gate condition
	// reads the materialized variable).
	UsedBy     []Use
	EnableUses int

	// Fact is a value-range fact for signals the analyzer cannot lower
	// but can still bound (Saturation clamps, Sign, boolean outputs).
	Fact Interval
}

// Graph is the lowering result over one compiled model, in schedule
// order.
type Graph struct {
	Nodes  []*Node
	ByName map[string]*Node
}

// Analyze lowers every eligible actor of c into the expression IR and
// records the use graph the planner needs. It never modifies c.
func Analyze(c *actors.Compiled, cfg Config) *Graph {
	g := &Graph{ByName: make(map[string]*Node, len(c.Order))}
	for _, info := range c.Order {
		n := &Node{
			Name:     info.Actor.Name,
			Path:     info.Path,
			Index:    info.Index,
			Type:     string(info.Actor.Type),
			Operator: info.Operator,
			Kind:     info.OutKind(),
			Width:    info.OutWidth(),
		}
		n.MustMaterialize = cfg.Monitored[n.Name] || cfg.Monitored[info.Path] ||
			cfg.Custom[n.Name] || cfg.Custom[info.Path] ||
			(cfg.StopOn != "" && (cfg.StopOn == n.Name || cfg.StopOn == info.Path))
		n.Lowered, n.Decline = lower(c, info, cfg)
		n.Fact = fact(g, info)
		g.Nodes = append(g.Nodes, n)
		g.ByName[n.Name] = n
	}
	// Second pass: record uses now that every node exists.
	for _, info := range c.Order {
		for p, src := range info.InSrc {
			if src.Actor == "" {
				continue
			}
			if d := g.ByName[src.Actor]; d != nil {
				d.UsedBy = append(d.UsedBy, Use{Consumer: info.Actor.Name, Port: p})
			}
		}
		if info.Gated() {
			if d := g.ByName[info.EnabledBy.Actor]; d != nil {
				d.EnableUses++
			}
		}
	}
	return g
}

// fact returns a value-range fact for signals whose producer bounds its
// output: clamps and signs bound unconditionally, a Mux is bounded by
// the union of its (already-analyzed — schedule order) driver facts.
// These power width narrowing through opaque actors.
func fact(g *Graph, info *actors.Info) Interval {
	k := info.OutKind()
	switch {
	case k == types.Bool:
		return Interval{Lo: 0, Hi: 1, OK: true}
	case info.Actor.Type == "Sign" && k.IsInteger():
		if k.IsUnsigned() {
			return Interval{Lo: 0, Hi: 1, OK: true}
		}
		return Interval{Lo: -1, Hi: 1, OK: true}
	case info.Actor.Type == "Saturation" && k.IsInteger():
		lo, hi, ok := actors.SaturationBounds(info)
		if !ok {
			return Interval{}
		}
		l, lok := intOf(lo)
		h, hok := intOf(hi)
		if lok && hok {
			return Interval{Lo: l, Hi: h, OK: true}
		}
	case info.Actor.Type == "Mux" && k.IsInteger():
		var out Interval
		for p, src := range info.InSrc {
			d := g.ByName[src.Actor]
			if d == nil || src.Port != 0 || !d.Fact.OK || info.InKinds[p] != k {
				return Interval{}
			}
			if !out.OK {
				out = d.Fact
				continue
			}
			if d.Fact.Lo < out.Lo {
				out.Lo = d.Fact.Lo
			}
			if d.Fact.Hi > out.Hi {
				out.Hi = d.Fact.Hi
			}
		}
		return out
	}
	return Interval{}
}

// intOf extracts an integer value as int64, rejecting unsigned values
// beyond int64 range.
func intOf(v types.Value) (int64, bool) {
	switch {
	case v.Kind == types.Bool:
		if v.B {
			return 1, true
		}
		return 0, true
	case v.Kind.IsSigned():
		return v.I, true
	case v.Kind.IsUnsigned():
		if v.U > uint64(1)<<63-1 {
			return 0, false
		}
		return int64(v.U), true
	}
	return 0, false
}

// lower builds the expression tree for one actor, or explains why it
// stays opaque. The trees mirror the Gen templates in internal/actors
// operation for operation (same casts, same rounding discipline, same
// evaluation order), which is what keeps O0 and O2 bit-identical.
func lower(c *actors.Compiled, info *actors.Info, cfg Config) (Expr, string) {
	if info.Spec.Stateful {
		return nil, "stateful"
	}
	if info.Gated() {
		return nil, "gated"
	}
	if len(info.Actor.Outputs) != 1 {
		return nil, "not single-output"
	}
	if cfg.Diagnose && len(diagnose.RulesFor(info)) > 0 {
		// The generated diagnosis block reads the template's input
		// expressions and flags; a fused emission has neither.
		return nil, "diagnosis rules"
	}
	if cfg.Coverage && (info.Spec.BooleanOut || info.Spec.Branch) {
		// Decision/condition/MC/DC instrumentation is part of the
		// template body; fusing would drop those marks.
		return nil, "decision coverage"
	}

	k := info.OutKind()
	// in returns input p as a Ref to its driver.
	in := func(p int) Expr {
		src := info.InSrc[p]
		d := c.Info(src.Actor)
		return &Ref{Actor: src.Actor, Index: d.Index, Port: src.Port,
			K: info.InKinds[p], W: info.InWidths[p]}
	}
	// castK mirrors castIn: input p converted to kind kk.
	castK := func(p int, kk types.Kind) Expr {
		x := in(p)
		if info.InKinds[p] == kk {
			return x
		}
		return &Cast{From: info.InKinds[p], To: kk, X: x}
	}

	switch info.Actor.Type {
	case "Constant":
		v := info.Aux.(types.Value)
		if v.Width() > 1 || info.OutWidth() > 1 {
			return nil, "vector constant"
		}
		return &Lit{Val: v}, ""

	case "Sum":
		signs := info.Aux.(string)
		var expr Expr
		if signs[0] == '+' {
			expr = castK(0, k)
		} else {
			expr = &Bin{Op: "-", K: k, A: &Lit{Val: types.Zero(k)}, B: castK(0, k)}
		}
		for i := 1; i < info.NumIn(); i++ {
			expr = &Bin{Op: string(signs[i]), K: k, A: expr, B: castK(i, k)}
		}
		return expr, ""

	case "Product":
		if !k.IsFloat() {
			// The integer template guards zero divisors with branchy
			// statements; only the pure-expression float path lowers.
			return nil, "integer product"
		}
		signs := info.Aux.(string)
		var expr Expr
		if signs[0] == '*' {
			expr = castK(0, k)
		} else {
			one, _ := types.ParseValue(k, "1")
			expr = &Bin{Op: "/", K: k, A: &Lit{Val: one}, B: castK(0, k)}
		}
		for i := 1; i < info.NumIn(); i++ {
			expr = &Bin{Op: string(signs[i]), K: k, A: expr, B: castK(i, k)}
		}
		return expr, ""

	case "Gain":
		return &Bin{Op: "*", K: k, A: castK(0, k), B: &Lit{Val: info.Aux.(types.Value)}}, ""

	case "Bias":
		return &Bin{Op: "+", K: k, A: castK(0, k), B: &Lit{Val: info.Aux.(types.Value)}}, ""

	case "UnaryMinus":
		return &Bin{Op: "-", K: k, A: &Lit{Val: types.Zero(k)}, B: castK(0, k)}, ""

	case "Abs":
		switch {
		case k.IsFloat():
			return &Cast{From: types.F64, To: k,
				X: &Call{Op: "abs", X: &Cast{From: k, To: types.F64, X: castK(0, k)}}}, ""
		case k.IsUnsigned() || k == types.Bool:
			return castK(0, k), ""
		}
		return nil, "signed abs"

	case "Math", "Sqrt", "Rounding":
		x := castK(0, types.F64)
		return &Cast{From: types.F64, To: k, X: &Call{Op: info.Operator, X: x}}, ""

	case "Mod":
		if !k.IsFloat() {
			return nil, "integer mod"
		}
		return &Cast{From: types.F64, To: k, X: &Mod2{A: castK(0, k), B: castK(1, k)}}, ""

	case "RelationalOperator":
		pk := types.Promote(info.InKinds[0], info.InKinds[1])
		return &Cmp{Op: info.Operator, K: pk, A: castK(0, pk), B: castK(1, pk)}, ""

	case "CompareToConstant":
		cv := info.Aux.(types.Value)
		pk := types.Promote(info.InKinds[0], cv.Kind)
		lit, _ := types.Convert(cv, pk)
		return &Cmp{Op: info.Operator, K: pk, A: castK(0, pk), B: &Lit{Val: lit}}, ""

	case "CompareToZero":
		zk := info.InKinds[0]
		return &Cmp{Op: info.Operator, K: zk, A: in(0), B: &Lit{Val: types.Zero(zk)}}, ""

	case "Logic":
		args := make([]Expr, info.NumIn())
		for i := range args {
			args[i] = castK(i, types.Bool)
		}
		return &Logic{Op: info.Operator, Args: args}, ""

	case "BitwiseOperator":
		if info.Operator == "NOT" {
			return &BNot{K: k, X: castK(0, k)}, ""
		}
		goOp := map[string]string{"AND": "&", "OR": "|", "XOR": "^"}[info.Operator]
		expr := castK(0, k)
		for i := 1; i < info.NumIn(); i++ {
			expr = &Bin{Op: goOp, K: k, A: expr, B: castK(i, k)}
		}
		return expr, ""

	case "Shift":
		return &Shift{Op: info.Operator, N: info.Aux.(int64), K: k, X: castK(0, k)}, ""

	case "DataTypeConversion":
		return castK(0, k), ""
	}
	return nil, "opaque actor type"
}
