// Package ir defines the typed expression IR the O2 middle-end lowers
// eligible actors into, plus the analyzer that performs the lowering.
//
// The O2 pipeline is staged like a small compiler (following the
// analyzer → planner → emitter split):
//
//   - ir (this package) lowers each eligible actor of the O1-optimized
//     graph into a per-actor expression tree whose leaves are Refs to the
//     actor's input signals, and records the use graph plus value facts.
//   - irplan decides which producers get inlined into their single
//     consumer, folds and hoists loop-invariant subtrees, and narrows
//     signal storage by inferred value range.
//   - iremit renders planned trees back into Go expressions that are
//     operation-for-operation equivalent to the per-actor templates in
//     internal/actors, so O0 and O2 runs stay bit-identical.
//
// Only the code generator consumes the result; the in-process engines
// (interpreter, accelerated, rapid) execute the same actors.Compiled at
// O2 as at O1, which is exactly what makes the four-engine equivalence
// oracle meaningful.
package ir

import (
	"fmt"
	"strings"

	"accmos/internal/types"
)

// Expr is one node of the typed expression IR. Every node knows its
// result kind; widths live on Refs (all lowered operations are
// elementwise, so a tree's width is its root actor's output width and
// scalar leaves broadcast).
type Expr interface {
	Kind() types.Kind
	String() string
}

// Ref reads a materialized signal: output port Port of the actor with
// the given schedule index. K and W are the producer's output kind and
// width as seen by the consumer.
type Ref struct {
	Actor string
	Index int
	Port  int
	K     types.Kind
	W     int
}

// Lit is a scalar compile-time constant.
type Lit struct {
	Val types.Value
}

// HoistRef reads a loop-invariant global the planner hoisted out of the
// step loop. The analyzer never produces these; they appear after
// irplan's fold/hoist stage.
type HoistRef struct {
	Name string
	K    types.Kind
}

// Bin is a binary operation in kind K with the generated templates'
// rounding discipline (float32 operations run through float64 and round
// once). Op is a Go operator: "+", "-", "*", "/" for arithmetic and
// "&", "|", "^" for integer bitwise combination.
type Bin struct {
	Op   string
	K    types.Kind
	A, B Expr
}

// Call is a float64 → float64 math unary ("exp", "tanh", "abs",
// "floor", ...). The operand must already be F64; the result is F64 and
// callers wrap it in a Cast back to the actor's kind, mirroring
// genMathUnary.
type Call struct {
	Op string
	X  Expr
}

// Mod2 is float64 math.Mod over two operands of the actor's float kind
// (the emitter widens each to float64, matching the Mod template). The
// result is F64.
type Mod2 struct {
	A, B Expr
}

// Cast converts between kinds with actors.Cast semantics (int → float
// via float64, float → int via cvtF2I/cvtF2U, bool bridging via b2i).
type Cast struct {
	From, To types.Kind
	X        Expr
}

// Cmp is a relational comparison in the promoted kind K producing Bool.
// Op is the model-level operator ("==", "~=", "<", "<=", ">", ">=");
// the emitter maps "~=" to "!=" and routes Bool order comparisons
// through b2i, exactly like the Relational templates.
type Cmp struct {
	Op   string
	K    types.Kind
	A, B Expr
}

// Logic is a boolean combination ("AND", "OR", "NAND", "NOR", "XOR",
// "NXOR", "NOT") over Bool operands.
type Logic struct {
	Op   string
	Args []Expr
}

// BNot is integer bitwise complement in kind K.
type BNot struct {
	K types.Kind
	X Expr
}

// Shift shifts by a constant bit count in kind K. Op is "left" or
// "right".
type Shift struct {
	Op string
	N  int64
	K  types.Kind
	X  Expr
}

func (r *Ref) Kind() types.Kind      { return r.K }
func (l *Lit) Kind() types.Kind      { return l.Val.Kind }
func (h *HoistRef) Kind() types.Kind { return h.K }
func (b *Bin) Kind() types.Kind      { return b.K }
func (c *Call) Kind() types.Kind     { return types.F64 }
func (m *Mod2) Kind() types.Kind     { return types.F64 }
func (c *Cast) Kind() types.Kind     { return c.To }
func (c *Cmp) Kind() types.Kind      { return types.Bool }
func (l *Logic) Kind() types.Kind    { return types.Bool }
func (b *BNot) Kind() types.Kind     { return b.K }
func (s *Shift) Kind() types.Kind    { return s.K }

func (r *Ref) String() string      { return fmt.Sprintf("ref(%s:%d)", r.Actor, r.Port) }
func (l *Lit) String() string      { return "lit(" + l.Val.String() + ")" }
func (h *HoistRef) String() string { return "hoist(" + h.Name + ")" }
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s):%s", b.A, b.Op, b.B, b.K)
}
func (c *Call) String() string { return fmt.Sprintf("%s(%s)", c.Op, c.X) }
func (m *Mod2) String() string { return fmt.Sprintf("mod(%s, %s)", m.A, m.B) }
func (c *Cast) String() string { return fmt.Sprintf("cast[%s->%s](%s)", c.From, c.To, c.X) }
func (c *Cmp) String() string  { return fmt.Sprintf("(%s %s %s):%s", c.A, c.Op, c.B, c.K) }
func (l *Logic) String() string {
	parts := make([]string, len(l.Args))
	for i, a := range l.Args {
		parts[i] = a.String()
	}
	return l.Op + "(" + strings.Join(parts, ", ") + ")"
}
func (b *BNot) String() string  { return fmt.Sprintf("bnot(%s)", b.X) }
func (s *Shift) String() string { return fmt.Sprintf("shift[%s %d](%s)", s.Op, s.N, s.X) }

// IsLeaf reports whether e is free to duplicate or broadcast: reading it
// costs one load (or nothing), so inlining it never re-evaluates work.
func IsLeaf(e Expr) bool {
	switch e.(type) {
	case *Ref, *Lit, *HoistRef:
		return true
	}
	return false
}

// Walk calls fn for e and every subexpression.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch n := e.(type) {
	case *Bin:
		Walk(n.A, fn)
		Walk(n.B, fn)
	case *Call:
		Walk(n.X, fn)
	case *Mod2:
		Walk(n.A, fn)
		Walk(n.B, fn)
	case *Cast:
		Walk(n.X, fn)
	case *Cmp:
		Walk(n.A, fn)
		Walk(n.B, fn)
	case *Logic:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *BNot:
		Walk(n.X, fn)
	case *Shift:
		Walk(n.X, fn)
	}
}

// Rewrite returns a copy of e with fn applied bottom-up: children are
// rewritten first, then fn maps the rebuilt node. fn returning its
// argument means "keep".
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	switch n := e.(type) {
	case *Bin:
		e = &Bin{Op: n.Op, K: n.K, A: Rewrite(n.A, fn), B: Rewrite(n.B, fn)}
	case *Call:
		e = &Call{Op: n.Op, X: Rewrite(n.X, fn)}
	case *Mod2:
		e = &Mod2{A: Rewrite(n.A, fn), B: Rewrite(n.B, fn)}
	case *Cast:
		e = &Cast{From: n.From, To: n.To, X: Rewrite(n.X, fn)}
	case *Cmp:
		e = &Cmp{Op: n.Op, K: n.K, A: Rewrite(n.A, fn), B: Rewrite(n.B, fn)}
	case *Logic:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Rewrite(a, fn)
		}
		e = &Logic{Op: n.Op, Args: args}
	case *BNot:
		e = &BNot{K: n.K, X: Rewrite(n.X, fn)}
	case *Shift:
		e = &Shift{Op: n.Op, N: n.N, K: n.K, X: Rewrite(n.X, fn)}
	}
	return fn(e)
}

// Interval is an inclusive integer value range fact. OK=false means
// unknown (or not an integer-valued signal).
type Interval struct {
	Lo, Hi int64
	OK     bool
}

// Point returns the single-value interval [v, v].
func Point(v int64) Interval { return Interval{Lo: v, Hi: v, OK: true} }

// Contains reports whether iv fits entirely inside [lo, hi].
func (iv Interval) Contains(lo, hi int64) bool {
	return iv.OK && iv.Lo >= lo && iv.Hi <= hi
}
