package irplan

import (
	"testing"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/opt/ir"
	"accmos/internal/types"
)

func plan(t *testing.T, m *model.Model, cfg ir.Config) *Plan {
	t.Helper()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatalf("compile %s: %v", m.Name, err)
	}
	return Build(ir.Analyze(c, cfg))
}

// fuseChain: In1 -> Gain -> Bias -> Sqrt -> Out1. Every intermediate has
// exactly one consumer, so the whole chain fuses into the Sqrt root.
func fuseChain() *model.Model {
	b := model.NewBuilder("FUSE")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"))
	b.Add("B", "Bias", 1, 1, model.WithParam("Bias", "1"))
	b.Add("R", "Sqrt", 1, 1, model.WithOperator("sqrt"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Chain("In1", "G", "B", "R", "Out1")
	return b.MustBuild()
}

func TestBuildFusesSingleConsumerChain(t *testing.T) {
	p := plan(t, fuseChain(), ir.Config{})
	if !p.Inlined["G"] || !p.Inlined["B"] {
		t.Fatalf("G,B should inline; inlined=%v", p.Inlined)
	}
	if p.Inlined["R"] {
		t.Fatal("R feeds an opaque Outport and must stay a root")
	}
	root := p.Roots["R"]
	if root == nil {
		t.Fatal("R has no root")
	}
	// The fused tree must contain the In1 ref but no refs to G or B.
	var g, b, in int
	ir.Walk(root.Expr, func(e ir.Expr) {
		if r, ok := e.(*ir.Ref); ok {
			switch r.Actor {
			case "G":
				g++
			case "B":
				b++
			case "In1":
				in++
			}
		}
	})
	if g != 0 || b != 0 || in != 1 {
		t.Fatalf("fused tree refs: G=%d B=%d In1=%d, want 0/0/1", g, b, in)
	}
	if p.Stats.FusedExprs != 2 {
		t.Fatalf("FusedExprs = %d, want 2", p.Stats.FusedExprs)
	}
}

func TestBuildMultiUseBlocksFusion(t *testing.T) {
	b := model.NewBuilder("MULTI")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"))
	b.Add("S", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("In1", 0, "G", 0)
	b.Connect("G", 0, "S", 0)
	b.Connect("G", 0, "S", 1)
	b.Connect("S", 0, "Out1", 0)
	p := plan(t, b.MustBuild(), ir.Config{})
	if p.Inlined["G"] {
		t.Fatal("G has two uses and must not inline")
	}
	if p.Roots["G"] == nil || p.Roots["S"] == nil {
		t.Fatal("both G and S should be roots")
	}
}

func TestBuildMustMaterializeBlocksFusion(t *testing.T) {
	p := plan(t, fuseChain(), ir.Config{Monitored: map[string]bool{"B": true}})
	if p.Inlined["B"] {
		t.Fatal("monitored B must not inline")
	}
	if !p.Inlined["G"] {
		t.Fatal("G still inlines into the materialized B")
	}
	if p.Roots["B"] == nil {
		t.Fatal("B should be a materialized root")
	}
}

// hoistModel drives a constant subtree into a live chain: K=2 -> Sqrt ->
// Gain(3), joined with In1. Built directly at the IR level (no O1 pass
// ran), the constant chain folds at plan time; sqrt(2)*3 costs two
// runtime operations, so it must hoist rather than stay an inline Go
// literal expression.
func hoistModel() *model.Model {
	b := model.NewBuilder("HOIST")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("K", "Constant", 0, 1, model.WithParam("Value", "2"))
	b.Add("R", "Sqrt", 1, 1, model.WithOperator("sqrt"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "3"))
	b.Add("S", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("K", 0, "R", 0)
	b.Connect("R", 0, "G", 0)
	b.Connect("In1", 0, "S", 0)
	b.Connect("G", 0, "S", 1)
	b.Connect("S", 0, "Out1", 0)
	return b.MustBuild()
}

func TestBuildHoistsConstantSubtree(t *testing.T) {
	p := plan(t, hoistModel(), ir.Config{})
	if p.Stats.HoistedExprs != 1 {
		t.Fatalf("HoistedExprs = %d, want 1 (sqrt(2)*3)", p.Stats.HoistedExprs)
	}
	h := p.Hoisted[0]
	// The hoisted value must be computed with the runtime's per-op
	// semantics: float64(sqrt(2)) * 3.
	want, _ := types.Mul(types.F64, mustMath(t, "sqrt", 2), types.FloatVal(types.F64, 3))
	if h.Val.F != want.F {
		t.Fatalf("hoisted value %v, want %v", h.Val.F, want.F)
	}
	// The root for S references the hoisted global, not a literal tree.
	var hoistRefs, lits int
	ir.Walk(p.Roots["S"].Expr, func(e ir.Expr) {
		switch e.(type) {
		case *ir.HoistRef:
			hoistRefs++
		case *ir.Lit:
			lits++
		}
	})
	if hoistRefs != 1 {
		t.Fatalf("S tree has %d hoist refs, want 1", hoistRefs)
	}
	if lits != 0 {
		t.Fatalf("S tree still holds %d literals, want 0", lits)
	}
}

func mustMath(t *testing.T, op string, x float64) types.Value {
	t.Helper()
	v, _ := types.MathUnary(op, types.F64, types.FloatVal(types.F64, x))
	return v
}

func TestBuildHoistDedup(t *testing.T) {
	// Two identical constant chains must share one global.
	b := model.NewBuilder("DEDUP")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	for _, sfx := range []string{"A", "B"} {
		b.Add("K"+sfx, "Constant", 0, 1, model.WithParam("Value", "2"))
		b.Add("R"+sfx, "Sqrt", 1, 1, model.WithOperator("sqrt"))
		b.Add("G"+sfx, "Gain", 1, 1, model.WithParam("Gain", "3"))
		b.Connect("K"+sfx, 0, "R"+sfx, 0)
		b.Connect("R"+sfx, 0, "G"+sfx, 0)
	}
	b.Add("S", "Sum", 3, 1, model.WithOperator("+++"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("In1", 0, "S", 0)
	b.Connect("GA", 0, "S", 1)
	b.Connect("GB", 0, "S", 2)
	b.Connect("S", 0, "Out1", 0)
	p := plan(t, b.MustBuild(), ir.Config{})
	if p.Stats.HoistedExprs != 1 {
		t.Fatalf("HoistedExprs = %d, want 1 (deduped)", p.Stats.HoistedExprs)
	}
}

// narrowModel: an int32 Saturation clamped to [-5, 100] feeding two
// lowered consumers. The Saturation itself is opaque (fact only); the
// Sum of the two saturated reads has interval [-10, 200] — int16.
func narrowModel() *model.Model {
	b := model.NewBuilder("NARROW")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1"))
	b.Add("Sat", "Saturation", 1, 1, model.WithParam("Min", "-5"), model.WithParam("Max", "100"))
	b.Add("S", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"))
	b.Add("B", "Bias", 1, 1, model.WithParam("Bias", "1"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Add("Out2", "Outport", 1, 0, model.WithParam("Port", "2"))
	b.Connect("In1", 0, "Sat", 0)
	b.Connect("Sat", 0, "S", 0)
	b.Connect("Sat", 0, "S", 1)
	b.Connect("S", 0, "G", 0)
	b.Connect("S", 0, "B", 0)
	b.Connect("G", 0, "Out1", 0)
	b.Connect("B", 0, "Out2", 0)
	return b.MustBuild()
}

func TestBuildNarrowsByInterval(t *testing.T) {
	p := plan(t, narrowModel(), ir.Config{})
	// S: [-10, 200] with both consumers (G, B) lowered -> int16 storage.
	if k, ok := p.NarrowedKind("S"); !ok || k != types.I16 {
		t.Fatalf("S narrowed to %v (ok=%v), want int16", k, ok)
	}
	if p.Roots["S"].Store != types.I16 || p.Roots["S"].Kind != types.I32 {
		t.Fatalf("S root kinds = %v/%v", p.Roots["S"].Kind, p.Roots["S"].Store)
	}
	// G and B feed opaque Outports: not narrowed.
	if _, ok := p.NarrowedKind("G"); ok {
		t.Fatal("G feeds an Outport and must not narrow")
	}
	if p.Stats.NarrowedSignals != 1 {
		t.Fatalf("NarrowedSignals = %d, want 1", p.Stats.NarrowedSignals)
	}
}

func TestBuildNarrowBlockedByOpaqueConsumer(t *testing.T) {
	// Same shape but S feeds a UnitDelay (opaque template reading the raw
	// variable): narrowing must decline.
	b := model.NewBuilder("NARROWBLOCK")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1"))
	b.Add("Sat", "Saturation", 1, 1, model.WithParam("Min", "-5"), model.WithParam("Max", "100"))
	b.Add("S", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("D", "UnitDelay", 1, 1)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("In1", 0, "Sat", 0)
	b.Connect("Sat", 0, "S", 0)
	b.Connect("Sat", 0, "S", 1)
	b.Connect("S", 0, "D", 0)
	b.Connect("D", 0, "Out1", 0)
	p := plan(t, b.MustBuild(), ir.Config{})
	if _, ok := p.NarrowedKind("S"); ok {
		t.Fatal("S feeds a stateful opaque actor and must not narrow")
	}
}

func TestBuildNarrowsF64ToF32Storage(t *testing.T) {
	// An F32 Gain widened into an F64 Sum path: the Cast(F32->F64) root
	// stores float32 when all consumers are lowered.
	b := model.NewBuilder("F32N")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F32), model.WithParam("Port", "1"))
	b.Add("G", "Gain", 1, 1, model.WithParam("Gain", "2"))
	b.Add("C", "DataTypeConversion", 1, 1, model.WithOutKind(types.F64))
	b.Add("S", "Sum", 2, 1, model.WithOperator("++"))
	b.Add("B", "Bias", 1, 1, model.WithParam("Bias", "1"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("In1", 0, "G", 0)
	b.Connect("G", 0, "C", 0)
	b.Connect("C", 0, "S", 0)
	b.Connect("C", 0, "S", 1)
	b.Connect("S", 0, "B", 0)
	b.Connect("B", 0, "Out1", 0)
	p := plan(t, b.MustBuild(), ir.Config{})
	if k, ok := p.NarrowedKind("C"); !ok || k != types.F32 {
		t.Fatalf("C narrowed to %v (ok=%v), want float32 storage", k, ok)
	}
	// The re-rooted tree is the F32 expression (no trailing widen).
	if p.Roots["C"].Expr.Kind() != types.F32 {
		t.Fatalf("C tree kind = %v, want F32", p.Roots["C"].Expr.Kind())
	}
}

func TestEvalConstMatchesTypesOps(t *testing.T) {
	// Folding sqrt(2)*3 must equal the staged types-ops computation, not
	// Go's exact compile-time arithmetic.
	two := types.FloatVal(types.F64, 2)
	three := types.FloatVal(types.F64, 3)
	tree := &ir.Bin{Op: "*", K: types.F64,
		A: &ir.Cast{From: types.F64, To: types.F64, X: &ir.Call{Op: "sqrt", X: &ir.Lit{Val: two}}},
		B: &ir.Lit{Val: three},
	}
	f := &folder{plan: &Plan{}, names: map[string]string{}}
	e, ops := f.foldConst(tree)
	if ops < 2 {
		t.Fatalf("ops = %d, want >= 2", ops)
	}
	s, _ := types.MathUnary("sqrt", types.F64, two)
	want, _ := types.Mul(types.F64, s, three)
	if got := e.(*ir.Lit).Val; got.F != want.F {
		t.Fatalf("folded %v, want %v", got.F, want.F)
	}
}

func TestIntervalArithmetic(t *testing.T) {
	add := binInterval(types.I32, "+",
		ir.Interval{Lo: -5, Hi: 100, OK: true}, ir.Interval{Lo: -5, Hi: 100, OK: true})
	if !add.OK || add.Lo != -10 || add.Hi != 200 {
		t.Fatalf("add interval = %+v", add)
	}
	// Overflow past the kind falls back to the kind's full range.
	big := ir.Interval{Lo: 0, Hi: 1 << 40, OK: true}
	mul := binInterval(types.I32, "*", big, big)
	lo, hi := kindRange(types.I32)
	if !mul.OK || mul.Lo != lo || mul.Hi != hi {
		t.Fatalf("overflowing mul = %+v, want full int32 range", mul)
	}
	// Casting a fitting interval through a wider kind preserves it.
	cv := castInterval(types.I8, types.I32, ir.Interval{Lo: -3, Hi: 7, OK: true})
	if !cv.OK || cv.Lo != -3 || cv.Hi != 7 {
		t.Fatalf("cast interval = %+v", cv)
	}
	// U64 storage can exceed int64: stays unknown.
	if u := clampToKind(types.U64, ir.Interval{}); u.OK {
		t.Fatalf("U64 clamp should stay unknown, got %+v", u)
	}
}
