package irplan

import (
	"math/bits"

	"accmos/internal/opt/ir"
	"accmos/internal/types"
)

// kindRange returns the inclusive int64 value range of an integer kind.
// U64's upper bound saturates at MaxInt64; narrowing never targets U64,
// and a saturated bound only makes the analysis more conservative.
func kindRange(k types.Kind) (int64, int64) {
	if k == types.Bool {
		return 0, 1
	}
	lo := k.MinInt()
	hiU := k.MaxInt()
	hi := int64(^uint64(0) >> 1)
	if hiU < uint64(1)<<63 {
		hi = int64(hiU)
	}
	return lo, hi
}

// inferIntervals computes a value interval for every materialized signal
// in schedule order: opaque actors contribute their analyzer facts
// (Saturation clamps, Sign, boolean outputs), lowered roots get the
// interval of their fused tree. The result keys actor names; missing or
// !OK entries mean unknown.
func inferIntervals(g *ir.Graph, p *Plan, subst map[string]ir.Expr) map[string]ir.Interval {
	out := make(map[string]ir.Interval, len(g.Nodes))
	for _, n := range g.Nodes {
		switch {
		case n.Lowered == nil:
			out[n.Name] = n.Fact
		case p.Inlined[n.Name]:
			// No storage; the tree is evaluated inside its consumer.
		default:
			out[n.Name] = exprInterval(g, subst[n.Name], out)
		}
	}
	return out
}

// exprInterval evaluates a conservative integer interval for e. Float
// and unknown-value positions return !OK.
func exprInterval(g *ir.Graph, e ir.Expr, env map[string]ir.Interval) ir.Interval {
	switch n := e.(type) {
	case *ir.Ref:
		d := g.ByName[n.Actor]
		if d == nil || n.Port != 0 {
			return ir.Interval{}
		}
		return env[n.Actor]
	case *ir.Lit:
		v := n.Val
		if v.Width() > 1 {
			return ir.Interval{}
		}
		if i, ok := intOfValue(v); ok {
			return ir.Point(i)
		}
		return ir.Interval{}
	case *ir.Bin:
		a := exprInterval(g, n.A, env)
		b := exprInterval(g, n.B, env)
		if !n.K.IsInteger() || !a.OK || !b.OK {
			return ir.Interval{}
		}
		return binInterval(n.K, n.Op, a, b)
	case *ir.Cast:
		x := exprInterval(g, n.X, env)
		return castInterval(n.From, n.To, x)
	case *ir.Cmp, *ir.Logic:
		return ir.Interval{Lo: 0, Hi: 1, OK: true}
	case *ir.Shift:
		x := exprInterval(g, n.X, env)
		if !x.OK {
			return clampToKind(n.K, ir.Interval{})
		}
		if n.Op == "right" && x.Lo >= 0 {
			return ir.Interval{Lo: x.Lo >> uint(n.N), Hi: x.Hi >> uint(n.N), OK: true}
		}
		if n.Op == "left" {
			lo, ok1 := shlChecked(x.Lo, n.N)
			hi, ok2 := shlChecked(x.Hi, n.N)
			if ok1 && ok2 && inKind(n.K, lo) && inKind(n.K, hi) {
				return ir.Interval{Lo: lo, Hi: hi, OK: true}
			}
		}
		return clampToKind(n.K, ir.Interval{})
	case *ir.BNot:
		return clampToKind(n.K, ir.Interval{})
	}
	// Call / Mod2 / HoistRef: float-valued or post-fold; no int interval.
	return ir.Interval{}
}

// intOfValue extracts a scalar integer-representable value.
func intOfValue(v types.Value) (int64, bool) {
	switch {
	case v.Kind == types.Bool:
		if v.B {
			return 1, true
		}
		return 0, true
	case v.Kind.IsSigned():
		return v.I, true
	case v.Kind.IsUnsigned():
		if v.U >= uint64(1)<<63 {
			return 0, false
		}
		return int64(v.U), true
	}
	return 0, false
}

// binInterval bounds an integer binary op in kind k. Any overflow —
// of the interval arithmetic itself or past the kind's range (where the
// runtime wraps) — falls back to the kind's full range.
func binInterval(k types.Kind, op string, a, b ir.Interval) ir.Interval {
	full := clampToKind(k, ir.Interval{})
	switch op {
	case "+":
		lo, ok1 := addChecked(a.Lo, b.Lo)
		hi, ok2 := addChecked(a.Hi, b.Hi)
		if ok1 && ok2 && inKind(k, lo) && inKind(k, hi) {
			return ir.Interval{Lo: lo, Hi: hi, OK: true}
		}
	case "-":
		lo, ok1 := addChecked(a.Lo, -b.Hi)
		hi, ok2 := addChecked(a.Hi, -b.Lo)
		if b.Hi == -1<<63 || b.Lo == -1<<63 {
			return full
		}
		if ok1 && ok2 && inKind(k, lo) && inKind(k, hi) {
			return ir.Interval{Lo: lo, Hi: hi, OK: true}
		}
	case "*":
		lo, hi := int64(1)<<62, -(int64(1) << 62)
		ok := true
		for _, x := range []int64{a.Lo, a.Hi} {
			for _, y := range []int64{b.Lo, b.Hi} {
				p, pok := mulChecked(x, y)
				if !pok {
					ok = false
					break
				}
				if p < lo {
					lo = p
				}
				if p > hi {
					hi = p
				}
			}
		}
		if ok && inKind(k, lo) && inKind(k, hi) {
			return ir.Interval{Lo: lo, Hi: hi, OK: true}
		}
	case "&":
		if a.Lo >= 0 && b.Lo >= 0 {
			hi := a.Hi
			if b.Hi < hi {
				hi = b.Hi
			}
			return ir.Interval{Lo: 0, Hi: hi, OK: true}
		}
	case "|", "^":
		if a.Lo >= 0 && b.Lo >= 0 {
			m := a.Hi
			if b.Hi > m {
				m = b.Hi
			}
			if m < int64(1)<<62 {
				n := bits.Len64(uint64(m))
				return ir.Interval{Lo: 0, Hi: int64(1)<<uint(n) - 1, OK: true}
			}
		}
	}
	return full
}

// castInterval converts an interval across a Cast.
func castInterval(from, to types.Kind, x ir.Interval) ir.Interval {
	switch {
	case to == types.Bool:
		return ir.Interval{Lo: 0, Hi: 1, OK: true}
	case !to.IsInteger():
		return ir.Interval{}
	case from == types.Bool:
		return ir.Interval{Lo: 0, Hi: 1, OK: true}
	case from.IsInteger():
		if x.OK {
			if lo, hi := kindRange(to); x.Lo >= lo && x.Hi <= hi {
				return x
			}
		}
		return clampToKind(to, ir.Interval{})
	}
	// float → int: cvtF2I saturates into the kind's range.
	return clampToKind(to, ir.Interval{})
}

// clampToKind intersects iv with k's representable range; an unknown iv
// becomes the kind's full range (runtime values always live there).
func clampToKind(k types.Kind, iv ir.Interval) ir.Interval {
	lo, hi := kindRange(k)
	if k == types.U64 {
		// Upper bound not representable as int64: stay unknown.
		return ir.Interval{}
	}
	if !iv.OK {
		return ir.Interval{Lo: lo, Hi: hi, OK: true}
	}
	if iv.Lo > lo {
		lo = iv.Lo
	}
	if iv.Hi < hi {
		hi = iv.Hi
	}
	return ir.Interval{Lo: lo, Hi: hi, OK: true}
}

func inKind(k types.Kind, v int64) bool {
	lo, hi := kindRange(k)
	return v >= lo && v <= hi
}

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if a == -1<<63 || b == -1<<63 || p/b != a {
		return 0, false
	}
	return p, true
}

func shlChecked(a int64, n int64) (int64, bool) {
	s := a << uint(n)
	if s>>uint(n) != a {
		return 0, false
	}
	return s, true
}
