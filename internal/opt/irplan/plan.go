// Package irplan is the O2 middle-end's planner: it takes the lowered
// expression graph from internal/opt/ir and decides
//
//   - fusion: which single-consumer producers get inlined into their
//     consumer's expression (the consumer then emits one fused Go
//     expression instead of N per-actor statements),
//   - hoisting: which constant subtrees are evaluated once at plan time
//     (with the engines' own bit-exact types ops, never Go's exact
//     compile-time constant arithmetic) and lifted out of the step loop
//     as initialized globals,
//   - narrowing: which materialized integer signals can be stored in a
//     smaller kind (int8/int16/int32 and unsigned counterparts, float32
//     for provably-f32 float signals) based on interval analysis, with
//     every reader widening back to the semantic kind.
//
// The planner only decides; internal/opt/iremit renders the decisions
// into Go. Both stages preserve bit-identity with O0: inlining keeps
// per-operation evaluation order and rounding, folding uses the same
// types ops the interpreter executes, and narrowing only fires when the
// value provably round-trips through the small kind.
package irplan

import (
	"fmt"

	"accmos/internal/opt/ir"
	"accmos/internal/types"
)

// Root is one materialized lowered signal: a variable assigned from a
// fused expression each step.
type Root struct {
	Name  string
	Index int
	// Kind is the semantic signal kind; Store is the storage kind
	// (different only when narrowed). Width > 1 emits an element loop.
	Kind  types.Kind
	Store types.Kind
	Width int
	// Expr is the fused tree. For float narrowing (F64 signal proven to
	// carry only float32 values) this is the pre-widening F32 tree.
	Expr ir.Expr
}

// Hoist is one loop-invariant global: computed at plan time, emitted as
// `var Name T` plus a modelInit assignment of the folded literal.
type Hoist struct {
	Name string
	Val  types.Value
}

// Stats summarizes what the planner decided, in the units the CLI,
// daemon metrics and benchmark reports expose.
type Stats struct {
	// LoweredActors counts actors the analyzer lowered (fused or root).
	LoweredActors int
	// FusedExprs counts producers inlined into their consumer — each one
	// is an actor statement eliminated from the step loop.
	FusedExprs int
	// HoistedExprs counts loop-invariant subtrees lifted out of the step
	// loop as precomputed globals.
	HoistedExprs int
	// NarrowedSignals counts materialized signals stored in a smaller
	// kind than their semantic kind.
	NarrowedSignals int
	// DeclineReasons aggregates why opaque actors stayed opaque.
	DeclineReasons map[string]int
}

// Plan is the full O2 decision set the code generator consumes.
type Plan struct {
	// Inlined marks actors whose expression was fused into their single
	// consumer; the generator emits no variable and no statement for
	// them (only their actor-coverage mark).
	Inlined map[string]bool
	// Roots maps materialized lowered actors to their fused assignment.
	Roots map[string]*Root
	// Hoisted lists loop-invariant globals in deterministic order.
	Hoisted []Hoist
	// Narrowed maps actor name → storage kind for narrowed signals, for
	// readers to widen through. Subset view of Roots.
	Narrowed map[string]types.Kind
	Stats    Stats
}

// NarrowedKind returns the storage kind for a narrowed actor signal.
func (p *Plan) NarrowedKind(actor string) (types.Kind, bool) {
	k, ok := p.Narrowed[actor]
	return k, ok
}

// Build runs the planning pipeline over one analyzed graph.
func Build(g *ir.Graph) *Plan {
	p := &Plan{
		Inlined:  make(map[string]bool),
		Roots:    make(map[string]*Root),
		Narrowed: make(map[string]types.Kind),
		Stats:    Stats{DeclineReasons: make(map[string]int)},
	}
	for _, n := range g.Nodes {
		if n.Lowered == nil {
			if n.Decline != "" {
				p.Stats.DeclineReasons[n.Decline]++
			}
			continue
		}
		p.Stats.LoweredActors++
	}

	// Fusion: walk in schedule order, substituting already-inlined
	// producers into each node's tree, then decide whether this node in
	// turn inlines into its sole consumer. Using the substituted tree
	// for the leaf test means a scalar chain never gets duplicated into
	// a vector consumer.
	subst := make(map[string]ir.Expr, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Lowered == nil {
			continue
		}
		tree := ir.Rewrite(n.Lowered, func(e ir.Expr) ir.Expr {
			if r, ok := e.(*ir.Ref); ok && p.Inlined[r.Actor] {
				return subst[r.Actor]
			}
			return e
		})
		subst[n.Name] = tree
		if n.MustMaterialize || n.EnableUses > 0 || len(n.UsedBy) != 1 {
			continue
		}
		c := g.ByName[n.UsedBy[0].Consumer]
		if c == nil || c.Lowered == nil {
			continue
		}
		// Width rule: an equal-width tree composes elementwise; anything
		// else must be a leaf (free to broadcast or re-read).
		if n.Width == c.Width || ir.IsLeaf(tree) {
			p.Inlined[n.Name] = true
		}
	}
	p.Stats.FusedExprs = len(p.Inlined)

	// Interval analysis runs on the pre-fold trees (folding replaces
	// literals with hoist references, losing the values).
	intervals := inferIntervals(g, p, subst)

	// Fold + hoist, then narrowing, per root in schedule order so hoist
	// names and narrowing decisions are deterministic.
	f := &folder{plan: p, names: make(map[string]string)}
	for _, n := range g.Nodes {
		if n.Lowered == nil || p.Inlined[n.Name] {
			continue
		}
		root := &Root{
			Name:  n.Name,
			Index: n.Index,
			Kind:  n.Kind,
			Store: n.Kind,
			Width: n.Width,
			Expr:  f.fold(subst[n.Name]),
		}
		p.Roots[n.Name] = root
		narrow(g, n, root, intervals[n.Name], p)
	}
	p.Stats.HoistedExprs = len(p.Hoisted)
	p.Stats.NarrowedSignals = len(p.Narrowed)
	return p
}

// narrow decides the storage kind for one root. Integer signals narrow
// when their interval fits a strictly smaller kind of the same
// signedness; F64 signals narrow to float32 storage when the fused tree
// is literally a float32 value widened at the end. Either way every
// consumer must be lowered (fused emission widens on read; an opaque
// template would read the raw narrow variable and miscompute).
func narrow(g *ir.Graph, n *ir.Node, root *Root, iv ir.Interval, p *Plan) {
	if n.MustMaterialize || n.EnableUses > 0 {
		return
	}
	for _, u := range n.UsedBy {
		c := g.ByName[u.Consumer]
		if c == nil || c.Lowered == nil {
			return
		}
	}
	if n.Kind == types.F64 {
		if c, ok := root.Expr.(*ir.Cast); ok && c.From == types.F32 && c.To == types.F64 {
			root.Store = types.F32
			root.Expr = c.X
			p.Narrowed[n.Name] = types.F32
		}
		return
	}
	if !n.Kind.IsInteger() || !iv.OK {
		return
	}
	var candidates []types.Kind
	if n.Kind.IsSigned() {
		candidates = []types.Kind{types.I8, types.I16, types.I32}
	} else {
		candidates = []types.Kind{types.U8, types.U16, types.U32}
	}
	for _, k := range candidates {
		if k.Bits() >= n.Kind.Bits() {
			break
		}
		if iv.Contains(kindRange(k)) {
			root.Store = k
			p.Narrowed[n.Name] = k
			return
		}
	}
}

// folder rewrites constant subtrees bottom-up, evaluating them with the
// engines' types ops (bit-exact with the generated runtime), and hoists
// every maximal folded subtree that eliminated two or more per-step
// operations into a named global. Single-operation folds stay inline as
// literals; either way no multi-operation all-literal Go expression is
// ever emitted, because Go would fold it at compile time with exact
// arbitrary-precision arithmetic instead of the runtime's per-operation
// rounding.
type folder struct {
	plan  *Plan
	names map[string]string // value key -> existing hoist name
}

// fold returns tree with constant subtrees replaced by Lit or HoistRef.
func (f *folder) fold(tree ir.Expr) ir.Expr {
	e, ops := f.foldConst(tree)
	if ops >= 2 {
		// The whole tree is one big invariant: hoist it too.
		return f.hoist(e.(*ir.Lit).Val)
	}
	return e
}

// foldConst folds e bottom-up. ops is the number of runtime operations
// the returned expression eliminated when it is constant (-1 when not
// constant).
func (f *folder) foldConst(e ir.Expr) (ir.Expr, int) {
	children := childExprs(e)
	if len(children) == 0 {
		if _, ok := e.(*ir.Lit); ok {
			return e, 0
		}
		return e, -1
	}
	folded := make([]ir.Expr, len(children))
	ops := make([]int, len(children))
	allConst := true
	for i, c := range children {
		folded[i], ops[i] = f.foldConst(c)
		if ops[i] < 0 {
			allConst = false
		}
	}
	if allConst {
		if v, ok := evalConst(e, folded); ok {
			total := 1
			for _, o := range ops {
				total += o
			}
			return &ir.Lit{Val: v}, total
		}
	}
	// Not constant here: any constant child that folded away two or more
	// operations becomes a hoisted global; cheaper folds stay inline.
	for i := range folded {
		if ops[i] >= 2 {
			folded[i] = f.hoist(folded[i].(*ir.Lit).Val)
		}
	}
	return rebuild(e, folded), -1
}

// hoist returns a HoistRef for v, reusing an existing global holding the
// same value.
func (f *folder) hoist(v types.Value) ir.Expr {
	key := v.Kind.String() + "|" + v.GoLiteral()
	if name, ok := f.names[key]; ok {
		return &ir.HoistRef{Name: name, K: v.Kind}
	}
	name := fmt.Sprintf("hx%d", len(f.plan.Hoisted))
	f.names[key] = name
	f.plan.Hoisted = append(f.plan.Hoisted, Hoist{Name: name, Val: v})
	return &ir.HoistRef{Name: name, K: v.Kind}
}

// childExprs lists e's direct subexpressions in evaluation order.
func childExprs(e ir.Expr) []ir.Expr {
	switch n := e.(type) {
	case *ir.Bin:
		return []ir.Expr{n.A, n.B}
	case *ir.Call:
		return []ir.Expr{n.X}
	case *ir.Mod2:
		return []ir.Expr{n.A, n.B}
	case *ir.Cast:
		return []ir.Expr{n.X}
	case *ir.Cmp:
		return []ir.Expr{n.A, n.B}
	case *ir.Logic:
		return n.Args
	case *ir.BNot:
		return []ir.Expr{n.X}
	case *ir.Shift:
		return []ir.Expr{n.X}
	}
	return nil
}

// rebuild clones e with new children (same shapes as childExprs).
func rebuild(e ir.Expr, ch []ir.Expr) ir.Expr {
	switch n := e.(type) {
	case *ir.Bin:
		return &ir.Bin{Op: n.Op, K: n.K, A: ch[0], B: ch[1]}
	case *ir.Call:
		return &ir.Call{Op: n.Op, X: ch[0]}
	case *ir.Mod2:
		return &ir.Mod2{A: ch[0], B: ch[1]}
	case *ir.Cast:
		return &ir.Cast{From: n.From, To: n.To, X: ch[0]}
	case *ir.Cmp:
		return &ir.Cmp{Op: n.Op, K: n.K, A: ch[0], B: ch[1]}
	case *ir.Logic:
		return &ir.Logic{Op: n.Op, Args: ch}
	case *ir.BNot:
		return &ir.BNot{K: n.K, X: ch[0]}
	case *ir.Shift:
		return &ir.Shift{Op: n.Op, N: n.N, K: n.K, X: ch[0]}
	}
	return e
}

// evalConst evaluates one IR node over literal children with the exact
// semantics of the generated runtime (via the types ops the Eval/Gen
// equivalence invariant already fuzz-verifies). ok=false declines the
// fold.
func evalConst(e ir.Expr, ch []ir.Expr) (types.Value, bool) {
	lit := func(i int) types.Value { return ch[i].(*ir.Lit).Val }
	switch n := e.(type) {
	case *ir.Bin:
		a, b := lit(0), lit(1)
		switch n.Op {
		case "+":
			v, _ := types.Add(n.K, a, b)
			return v, true
		case "-":
			v, _ := types.Sub(n.K, a, b)
			return v, true
		case "*":
			v, _ := types.Mul(n.K, a, b)
			return v, true
		case "/":
			v, _ := types.Div(n.K, a, b)
			return v, true
		case "&", "|", "^":
			return bitCombine(n.K, n.Op, a, b)
		}
	case *ir.Call:
		x := lit(0)
		if n.Op == "abs" {
			v, _ := types.Abs(types.F64, x)
			return v, true
		}
		// Domain errors (log of a negative, ...) still produce the exact
		// runtime value (NaN/Inf), so the fold stays valid.
		v, _ := types.MathUnary(n.Op, types.F64, x)
		return v, true
	case *ir.Mod2:
		v, _ := types.Mod(types.F64, lit(0), lit(1))
		return v, true
	case *ir.Cast:
		v, _ := types.Convert(lit(0), n.To)
		return v, true
	case *ir.Cmp:
		return types.BoolVal(relationalHolds(n.Op, types.Compare(lit(0), lit(1)))), true
	case *ir.Logic:
		conds := make([]bool, len(ch))
		for i := range ch {
			conds[i] = lit(i).B
		}
		return types.BoolVal(logicEval(n.Op, conds)), true
	case *ir.BNot:
		v, _ := types.Convert(lit(0), n.K)
		if n.K.IsSigned() {
			return types.IntVal(n.K, ^v.I), true
		}
		return types.UintVal(n.K, ^v.U), true
	case *ir.Shift:
		return shiftConst(n, lit(0)), true
	}
	return types.Value{}, false
}

// bitCombine mirrors the BitwiseOperator Eval over two kind-k values.
func bitCombine(k types.Kind, op string, a, b types.Value) (types.Value, bool) {
	if !k.IsInteger() {
		return types.Value{}, false
	}
	av, _ := types.Convert(a, k)
	bv, _ := types.Convert(b, k)
	if k.IsSigned() {
		switch op {
		case "&":
			return types.IntVal(k, av.I&bv.I), true
		case "|":
			return types.IntVal(k, av.I|bv.I), true
		case "^":
			return types.IntVal(k, av.I^bv.I), true
		}
	}
	switch op {
	case "&":
		return types.UintVal(k, av.U&bv.U), true
	case "|":
		return types.UintVal(k, av.U|bv.U), true
	case "^":
		return types.UintVal(k, av.U^bv.U), true
	}
	return types.Value{}, false
}

// shiftConst mirrors the Shift Eval (wrap-on-overflow left shifts).
func shiftConst(n *ir.Shift, x types.Value) types.Value {
	v, _ := types.Convert(x, n.K)
	if n.Op == "left" {
		if n.K.IsSigned() {
			return types.Value{Kind: n.K, I: types.WrapInt(n.K, v.I<<uint(n.N))}
		}
		return types.Value{Kind: n.K, U: types.WrapUint(n.K, v.U<<uint(n.N))}
	}
	if n.K.IsSigned() {
		return types.Value{Kind: n.K, I: v.I >> uint(n.N)}
	}
	return types.Value{Kind: n.K, U: v.U >> uint(n.N)}
}

// relationalHolds applies a model relational operator to a types.Compare
// result (-2 encodes NaN-incomparable), mirroring the actors package.
func relationalHolds(op string, c int) bool {
	switch op {
	case "==":
		return c == 0
	case "~=":
		return c != 0
	case "<":
		return c == -1
	case "<=":
		return c == -1 || c == 0
	case ">":
		return c == 1
	case ">=":
		return c == 1 || c == 0
	}
	return false
}

// logicEval mirrors the Logic actor's combination semantics.
func logicEval(op string, conds []bool) bool {
	switch op {
	case "AND", "NAND":
		out := true
		for _, c := range conds {
			out = out && c
		}
		return out != (op == "NAND")
	case "OR", "NOR":
		out := false
		for _, c := range conds {
			out = out || c
		}
		return out != (op == "NOR")
	case "XOR", "NXOR":
		out := false
		for _, c := range conds {
			out = out != c
		}
		return out != (op == "NXOR")
	case "NOT":
		return !conds[0]
	}
	return false
}
