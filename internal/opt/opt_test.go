package opt

import (
	"fmt"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/model"
	"accmos/internal/types"
)

func compile(t *testing.T, m *model.Model) *actors.Compiled {
	t.Helper()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatalf("compile %s: %v", m.Name, err)
	}
	return c
}

func optimize(t *testing.T, c *actors.Compiled, o Options) *Result {
	t.Helper()
	res, err := Optimize(c, o)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return res
}

func passChanged(res *Result, pass string) int {
	for _, p := range res.Passes {
		if p.Pass == pass {
			return p.Changed
		}
	}
	return -1
}

// liveMini is a tiny live path with a constant-fed saturation chain
// joining it: In1 -> MinMax(In1, Sat1(Sat0(K))) -> Out1.
func liveMini() *model.Model {
	b := model.NewBuilder("MINI")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("K", "Constant", 0, 1, model.WithParam("Value", "7"))
	b.Add("Sat0", "Saturation", 1, 1, model.WithParam("Min", "-4"), model.WithParam("Max", "4"))
	b.Add("Sat1", "Saturation", 1, 1, model.WithParam("Min", "-3"), model.WithParam("Max", "3"))
	b.Add("Join", "MinMax", 2, 1, model.WithOperator("min"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("K", 0, "Sat0", 0)
	b.Connect("Sat0", 0, "Sat1", 0)
	b.Connect("In1", 0, "Join", 0)
	b.Connect("Sat1", 0, "Join", 1)
	b.Connect("Join", 0, "Out1", 0)
	return b.MustBuild()
}

func TestO0PassesThrough(t *testing.T) {
	c := compile(t, liveMini())
	res := optimize(t, c, Options{Level: O0})
	if res.Compiled != c {
		t.Fatal("O0 must return the input model untouched")
	}
	if len(res.Passes) != 0 {
		t.Fatalf("O0 ran passes: %v", res.Passes)
	}
	if res.ActorsBefore != res.ActorsAfter {
		t.Fatalf("O0 changed actor count: %d -> %d", res.ActorsBefore, res.ActorsAfter)
	}
}

func TestConstFoldChain(t *testing.T) {
	c := compile(t, liveMini())
	res := optimize(t, c, Options{Level: O1})
	if n := passChanged(res, "constfold"); n < 2 {
		t.Fatalf("constfold changed %d sites, want >= 2 (Sat0, Sat1)", n)
	}
	// K=7 saturates to 4 then to 3; after DCE only the folded Sat1
	// constant survives on the dead branch.
	info := res.Compiled.Info("Sat1")
	if info == nil || info.Actor.Type != "Constant" {
		t.Fatalf("Sat1 not folded to a Constant: %+v", info)
	}
	if got := info.Actor.Param("Value", ""); got != "3" {
		t.Fatalf("Sat1 folded to %q, want 3", got)
	}
	for _, gone := range []string{"K", "Sat0"} {
		if res.Compiled.Info(gone) != nil {
			t.Fatalf("%s should be dead after folding", gone)
		}
	}
	if res.ActorsAfter != 4 { // In1, Sat1 (as Constant), Join, Out1
		t.Fatalf("ActorsAfter = %d, want 4", res.ActorsAfter)
	}
}

func TestCSEMergesDuplicates(t *testing.T) {
	b := model.NewBuilder("DUP")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("SgA", "Sign", 1, 1)
	b.Add("SgB", "Sign", 1, 1)
	b.Add("Join", "MinMax", 2, 1, model.WithOperator("max"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("In1", 0, "SgA", 0)
	b.Connect("In1", 0, "SgB", 0)
	b.Connect("SgA", 0, "Join", 0)
	b.Connect("SgB", 0, "Join", 1)
	b.Connect("Join", 0, "Out1", 0)
	c := compile(t, b.MustBuild())

	res := optimize(t, c, Options{Level: O1})
	if n := passChanged(res, "cse"); n != 1 {
		t.Fatalf("cse changed %d sites, want 1", n)
	}
	if res.ActorsAfter != 4 { // In1, one Sign, Join, Out1
		t.Fatalf("ActorsAfter = %d, want 4", res.ActorsAfter)
	}
}

func TestDCERemovesIslandAndPremarks(t *testing.T) {
	b := model.NewBuilder("ISLE")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("Lim", "Saturation", 1, 1, model.WithParam("Min", "-1"), model.WithParam("Max", "1"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Add("IK", "Constant", 0, 1, model.WithParam("Value", "5"))
	b.Add("ISg", "Sign", 1, 1)
	b.Connect("In1", 0, "Lim", 0)
	b.Connect("Lim", 0, "Out1", 0)
	b.Connect("IK", 0, "ISg", 0)
	c := compile(t, b.MustBuild())

	res := optimize(t, c, Options{Level: O1, Coverage: true})
	for _, gone := range []string{"IK", "ISg"} {
		if res.Compiled.Info(gone) != nil {
			t.Fatalf("%s should be removed", gone)
		}
	}
	if res.Premark == nil {
		t.Fatal("coverage run must premark the removed island's actor bits")
	}
	for _, gone := range []string{"IK", "ISg"} {
		i, ok := res.Layout.ActorIndex[gone]
		if !ok {
			t.Fatalf("original layout lost actor %s", gone)
		}
		if res.Premark.Actor[i] == 0 {
			t.Fatalf("actor bit for removed %s not premarked", gone)
		}
	}
	// The live path must not be premarked: it still executes.
	if i := res.Layout.ActorIndex["Lim"]; res.Premark.Actor[i] != 0 {
		t.Fatal("live actor Lim must not be premarked")
	}
}

func TestDCEKeepsBranchActorsUnderCoverage(t *testing.T) {
	b := model.NewBuilder("BRK")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	// Dead, but a branch actor: its condition bits depend on runtime
	// values, so coverage runs must keep executing it.
	b.Add("DSat", "Saturation", 1, 1, model.WithParam("Min", "-1"), model.WithParam("Max", "1"))
	b.Connect("In1", 0, "Out1", 0)
	b.Connect("In1", 0, "DSat", 0)
	c := compile(t, b.MustBuild())

	plain := optimize(t, c, Options{Level: O1})
	if plain.Compiled.Info("DSat") != nil {
		t.Fatal("plain run should remove the dead saturation")
	}
	cov := optimize(t, c, Options{Level: O1, Coverage: true})
	if cov.Compiled.Info("DSat") == nil {
		t.Fatal("coverage run must keep the dead branch actor")
	}
}

func TestDataStoresDisableRewiringPasses(t *testing.T) {
	b := model.NewBuilder("DS")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("K", "Constant", 0, 1, model.WithParam("Value", "2"))
	b.Add("Sat", "Saturation", 1, 1, model.WithParam("Min", "-1"), model.WithParam("Max", "1"))
	b.Add("SgA", "Sign", 1, 1)
	b.Add("SgB", "Sign", 1, 1)
	b.Add("Join", "MinMax", 3, 1, model.WithOperator("max"))
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Add("Mem", "DataStoreMemory", 0, 0, model.WithParam("Store", "st"), model.WithOutKind(types.I32))
	b.Connect("K", 0, "Sat", 0)
	b.Connect("In1", 0, "SgA", 0)
	b.Connect("In1", 0, "SgB", 0)
	b.Connect("Sat", 0, "Join", 0)
	b.Connect("SgA", 0, "Join", 1)
	b.Connect("SgB", 0, "Join", 2)
	b.Connect("Join", 0, "Out1", 0)
	c := compile(t, b.MustBuild())

	res := optimize(t, c, Options{Level: O1})
	if n := passChanged(res, "constfold"); n != 0 {
		t.Fatalf("constfold must decline on data-store models, changed %d", n)
	}
	if n := passChanged(res, "cse"); n != 0 {
		t.Fatalf("cse must decline on data-store models, changed %d", n)
	}
}

func TestMonitorAndStopActorsAreRoots(t *testing.T) {
	b := model.NewBuilder("ROOTS")
	b.Add("In1", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("Watch", "Sign", 1, 1)
	b.Add("Stop", "Sign", 1, 1)
	b.Add("Dead", "Sign", 1, 1)
	b.Add("Out1", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Connect("In1", 0, "Watch", 0)
	b.Connect("In1", 0, "Stop", 0)
	b.Connect("In1", 0, "Dead", 0)
	b.Connect("In1", 0, "Out1", 0)
	c := compile(t, b.MustBuild())

	res := optimize(t, c, Options{Level: O1, Monitor: []string{"Watch"}, StopOnActor: "Stop"})
	for _, kept := range []string{"Watch", "Stop"} {
		if res.Compiled.Info(kept) == nil {
			t.Fatalf("%s is observed and must survive DCE", kept)
		}
	}
	if res.Compiled.Info("Dead") != nil {
		t.Fatal("unobserved Dead should be eliminated")
	}
}

func TestOptShapesShrink(t *testing.T) {
	limits := map[string]int{"OPTC": 8, "OPTD": 12, "OPTI": 5}
	for _, name := range []string{"OPTC", "OPTD", "OPTI"} {
		c := compile(t, benchmodels.MustBuildOpt(name))
		res := optimize(t, c, Options{Level: O1})
		if res.ActorsAfter > limits[name] {
			t.Errorf("%s: %d -> %d actors, want <= %d (passes %v)",
				name, res.ActorsBefore, res.ActorsAfter, limits[name], res.Passes)
		}
		if res.ActorsBefore < 80 {
			t.Errorf("%s: only %d actors before optimization; the shape should be large", name, res.ActorsBefore)
		}
	}
}

// TestOpt2ShapesPlan checks each O2-sensitive shape survives O1 mostly
// intact (fusion must have something left to do) and that the middle-end
// counter the shape was built to exercise actually fires.
func TestOpt2ShapesPlan(t *testing.T) {
	wants := map[string]func(*Result) error{
		"OPTF": func(r *Result) error {
			if r.FusedExprs < 100 {
				return fmt.Errorf("fused %d exprs, want >= 100", r.FusedExprs)
			}
			return nil
		},
		"OPTV": func(r *Result) error {
			if r.FusedExprs < 80 {
				return fmt.Errorf("fused %d exprs, want >= 80", r.FusedExprs)
			}
			return nil
		},
		"OPTH": func(r *Result) error {
			if r.HoistedExprs < 1 {
				return fmt.Errorf("hoisted %d exprs, want >= 1", r.HoistedExprs)
			}
			if r.FusedExprs < 100 {
				return fmt.Errorf("fused %d exprs, want >= 100", r.FusedExprs)
			}
			return nil
		},
		"OPTN": func(r *Result) error {
			if r.NarrowedSignals < 40 {
				return fmt.Errorf("narrowed %d signals, want >= 40", r.NarrowedSignals)
			}
			return nil
		},
	}
	for _, name := range benchmodels.Opt2Names() {
		c := compile(t, benchmodels.MustBuildOpt(name))
		if len(c.Order) < 80 {
			t.Errorf("%s: only %d actors; the shape should be large", name, len(c.Order))
		}
		res := optimize(t, c, Options{Level: O2})
		// O1 must leave the bulk of the shape in place — these shapes
		// exist precisely because the O1 trio collapses before O2 runs.
		if res.ActorsAfter < len(c.Order)*2/3 {
			t.Errorf("%s: O1 passes removed too much (%d -> %d)", name, len(c.Order), res.ActorsAfter)
		}
		if err := wants[name](res); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if res.EffectiveActors != res.ActorsAfter-res.FusedExprs {
			t.Errorf("%s: EffectiveActors %d != %d - %d", name, res.EffectiveActors, res.ActorsAfter, res.FusedExprs)
		}
	}
}
