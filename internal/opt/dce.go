package opt

import (
	"accmos/internal/actors"
	"accmos/internal/diagnose"
	"accmos/internal/model"
)

// dce drops actors whose outputs transitively reach no observable root:
// no root output, data store, display sink, monitor, custom check or stop
// condition. Removal is schedule-order-safe for the survivors because a
// dead actor by construction has no edge into a live one, so live actors
// keep their exact relative execution order.
//
// With coverage on, a dead ungated actor still executes every step at O0
// and marks its actor bit, so removal pre-marks that bit; actors carrying
// condition/decision/MC-DC points (whose outcomes depend on runtime
// values) or an enable gate (whose execution is not static) are kept.
// With diagnosis on, actors carrying diagnosis rules are kept.
func (s *session) dce(c *actors.Compiled) (*model.Model, int, error) {
	keep := make(map[string]bool)
	var roots []string
	addRoot := func(n string) {
		if n != "" && !keep[n] {
			keep[n] = true
			roots = append(roots, n)
		}
	}
	for _, n := range ObservableRoots(c) {
		addRoot(n)
	}
	for _, info := range c.Inports {
		// Inports stay: the generated program's test-case arity and the
		// per-step input hashing contract must not change under -O.
		addRoot(info.Actor.Name)
	}
	for _, n := range s.o.Monitor {
		addRoot(n)
	}
	for i := range s.o.Custom {
		addRoot(s.o.Custom[i].Actor)
	}
	if s.o.StopOnActor != "" {
		// Engines disagree on spelling (interp matches the actor name,
		// codegen the path); accept either.
		for _, info := range c.Order {
			if info.Actor.Name == s.o.StopOnActor || info.Path == s.o.StopOnActor {
				addRoot(info.Actor.Name)
			}
		}
	}
	alive := Influencers(c, roots)
	for {
		changed := false
		for _, info := range c.Order {
			if alive[info.Actor.Name] || keep[info.Actor.Name] {
				continue
			}
			if !s.removable(info) {
				addRoot(info.Actor.Name)
				changed = true
			}
		}
		if !changed {
			break
		}
		alive = Influencers(c, roots)
	}
	drop := make(map[string]bool)
	for _, info := range c.Order {
		if !alive[info.Actor.Name] {
			drop[info.Actor.Name] = true
			if s.o.Coverage {
				s.pre.Actor(info.Actor.Name)
			}
		}
	}
	if len(drop) == 0 {
		return nil, 0, nil
	}
	m2 := rebuildModel(c.Model.Clone(),
		func(a *model.Actor) bool { return !drop[a.Name] },
		func(cn model.Connection) bool { return !drop[cn.SrcActor] && !drop[cn.DstActor] })
	return m2, len(drop), nil
}

// removable decides whether a dead actor may actually leave the schedule
// without changing what the run reports.
func (s *session) removable(info *actors.Info) bool {
	if s.o.Coverage {
		if info.Gated() {
			return false // actor-bit marking depends on the enable signal
		}
		if info.IsBranchActor() || info.ContainsBooleanLogic() || info.IsCombinationCondition() {
			return false // runtime-valued coverage points
		}
	}
	if s.o.Diagnose && len(diagnose.RulesFor(info)) > 0 {
		return false
	}
	return true
}
