package opt

import (
	"strconv"

	"accmos/internal/actors"
	"accmos/internal/diagnose"
	"accmos/internal/model"
	"accmos/internal/types"
)

// events captures what one Eval reported besides its value: coverage
// outcomes and diagnosis flags. Folding is only sound when these are
// step-independent, so a candidate is probed at two distant steps and must
// report identical events (and values) at both.
type events struct {
	branch   int
	decision int8
	conds    []bool
	flags    types.OpResult
}

func sameEvents(a, b events) bool {
	if a.branch != b.branch || a.decision != b.decision ||
		a.flags != b.flags || len(a.conds) != len(b.conds) {
		return false
	}
	for i := range a.conds {
		if a.conds[i] != b.conds[i] {
			return false
		}
	}
	return true
}

// constFold evaluates actors whose inputs are all compile-time constants
// once at compile time and replaces them with Constant sources. Replaced
// actors keep their names, so name-keyed instrumentation (actor bitmap
// slots, monitors, custom checks) keeps resolving against the original
// layout; their statically-known condition/decision/MC-DC outcomes are
// pre-marked when coverage is on.
func (s *session) constFold(c *actors.Compiled) (*model.Model, int, error) {
	if hasDataStores(c) {
		return nil, 0, nil // rescheduling hazard; see hasDataStores
	}
	konst := make(map[string]types.Value) // actor name -> constant port-0 output
	type fold struct {
		info *actors.Info
		val  types.Value
		ev   events
	}
	var folds []fold
	for _, info := range c.Order {
		switch info.Actor.Type {
		case "Constant", "Ground":
			if v, _, ok := probeAt(info, nil, 0); ok {
				konst[info.Actor.Name] = v
			}
			continue
		}
		if !s.foldable(info) {
			continue
		}
		in := make([]types.Value, info.NumIn())
		allConst := true
		for p, src := range info.InSrc {
			v, ok := konst[src.Actor]
			if !ok || src.Port != 0 {
				allConst = false
				break
			}
			in[p] = v
		}
		if !allConst {
			continue
		}
		v0, ev0, ok := probeAt(info, in, 0)
		if !ok {
			continue
		}
		// A second probe at a distant step catches step-dependent sources
		// (Step, Ramp, Clock, ...) and impure Evals.
		v1, ev1, ok := probeAt(info, in, 1_000_003)
		if !ok || !types.Equal(v0, v1) || !sameEvents(ev0, ev1) {
			continue
		}
		// The replacement Constant re-emits the value verbatim, so it must
		// already have the declared output kind and width.
		if v0.Kind != info.OutKinds[0] || v0.Width() != info.OutWidths[0] {
			continue
		}
		konst[info.Actor.Name] = v0
		folds = append(folds, fold{info, v0, ev0})
	}
	if len(folds) == 0 {
		return nil, 0, nil
	}
	m2 := c.Model.Clone()
	folded := make(map[string]bool, len(folds))
	for _, f := range folds {
		a := m2.Actor(f.info.Actor.Name)
		a.Type = "Constant"
		a.Operator = ""
		a.Params = map[string]string{
			"Value":       f.val.String(),
			"OutDataType": f.val.Kind.String(),
		}
		if w := f.val.Width(); w > 1 {
			a.Params["OutWidth"] = strconv.Itoa(w)
		}
		a.Inputs = nil
		folded[a.Name] = true
		if s.o.Coverage {
			s.replay(f.info, f.ev)
		}
	}
	kept := m2.Connections[:0]
	for _, cn := range m2.Connections {
		if !folded[cn.DstActor] {
			kept = append(kept, cn)
		}
	}
	m2.Connections = kept
	return m2, len(folds), nil
}

// foldable applies the structural soundness conditions; value/purity
// conditions are checked by the dual-step probe.
func (s *session) foldable(info *actors.Info) bool {
	switch info.Actor.Type {
	case "Inport", "Outport", "Constant", "Ground",
		"DataStoreRead", "DataStoreWrite", "DataStoreMemory":
		return false
	}
	if len(info.Actor.Outputs) != 1 {
		return false
	}
	if info.Spec.Eval == nil || info.Spec.Stateful || info.Spec.Init != nil || info.Spec.Update != nil {
		return false
	}
	if info.Gated() {
		// Enable state decides per step whether the actor runs (and whether
		// it is instrumented); that is not static.
		return false
	}
	if s.o.Diagnose && len(diagnose.RulesFor(info)) > 0 {
		// A diagnosis rule could fire on any step; replacing the actor
		// would silently drop those records.
		return false
	}
	return true
}

// probeAt evaluates one actor against fixed inputs at the given step,
// reporting its port-0 output and observation events. ok is false when the
// actor has no single output or its Eval panics.
func probeAt(info *actors.Info, in []types.Value, step int64) (v types.Value, ev events, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	ec := actors.EvalCtx{
		Info:  info,
		In:    in,
		Outs:  make([]types.Value, len(info.Actor.Outputs)),
		State: &actors.State{},
	}
	ec.Reset(step)
	info.Spec.Eval(&ec)
	ev = events{
		branch:   ec.Branch,
		decision: ec.Decision,
		conds:    append([]bool(nil), ec.Conds...),
		flags:    ec.Flags,
	}
	if len(ec.Outs) != 1 {
		return types.Value{}, ev, false
	}
	return ec.Outs[0], ev, true
}

// replay pre-marks the coverage outcomes a folded actor would have
// reported every step, mirroring the interpreter's instrument() gates.
func (s *session) replay(info *actors.Info, ev events) {
	name := info.Actor.Name
	if ev.branch >= 0 {
		s.pre.Branch(name, ev.branch)
	}
	if ev.decision >= 0 {
		s.pre.Decision(name, ev.decision == 1)
	}
	if len(ev.conds) >= 2 && info.IsCombinationCondition() {
		s.pre.MCDC(name, info.Operator, ev.conds)
	}
}
