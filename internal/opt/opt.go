// Package opt implements the optimizing middle-end: a pass pipeline over
// the compiled actor IR that runs between actors.Compile and any backend
// (generated code, interpreter, accelerated interpreter, rapid engine).
// Classic block-diagram code generators get their next multiplier from
// model-level optimization; since all four engines consume the same
// actors.Compiled, one pipeline speeds up every execution path.
//
// Passes are instrumentation-sound: with coverage or diagnosis enabled a
// pass either pre-marks the statically-known coverage bits of what it
// removed or declines to fire, so the equivalence hash and all
// diagnostic/coverage outputs are byte-identical to the unoptimized run.
// To keep bitmap shapes comparable, the coverage Layout returned by
// Optimize is always derived from the ORIGINAL compiled model; optimized
// actor names are a subset of the original names, so every name-keyed
// instrumentation site still resolves.
package opt

import (
	"fmt"

	"accmos/internal/actors"
	"accmos/internal/coverage"
	"accmos/internal/diagnose"
	"accmos/internal/graph"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/opt/ir"
	"accmos/internal/opt/irplan"
)

// Level selects how aggressively the pipeline rewrites the model.
type Level int

const (
	// O0 disables every pass: the compiled model passes through untouched.
	O0 Level = 0
	// O1 enables constant folding, CSE and dead-actor elimination.
	O1 Level = 1
	// O2 additionally runs the typed-lowering middle-end (ir → irplan):
	// chains of single-consumer arithmetic/logic/compare actors fuse
	// into single generated Go expressions, loop-invariant subtrees are
	// hoisted out of the step loop, and integer/float signal storage is
	// narrowed by inferred value range. O2 only changes the generated
	// program; the in-process engines execute the O1 pipeline's model,
	// which is what makes the four-engine equivalence oracle meaningful.
	O2 Level = 2
)

// String renders the level the way the CLI flag spells it.
func (l Level) String() string {
	switch {
	case l <= O0:
		return "O0"
	case l == O1:
		return "O1"
	}
	return "O2"
}

// Options tells the pipeline which observation features are active, since
// soundness depends on them: an actor is only removable when dropping it
// cannot change coverage bitmaps, diagnosis counts, monitor samples or
// stop conditions.
type Options struct {
	Level    Level
	Coverage bool
	Diagnose bool
	// Monitor lists actor names whose outputs are signal-monitored; they
	// are roots for dead-actor elimination.
	Monitor []string
	// Custom are custom check attachment points; their actors are roots.
	Custom []diagnose.CustomCheck
	// StopOnActor names (by actor name or path) the actor a stop
	// condition watches; it is a root.
	StopOnActor string
	// Trace receives one span per pass ("opt.constfold", ...). May be nil.
	Trace *obs.Tracer
}

// PassStat records how many sites one pass rewrote.
type PassStat struct {
	Pass    string `json:"pass"`
	Changed int    `json:"changed"`
}

// Result is the outcome of running the pipeline.
type Result struct {
	// Compiled is the optimized model (the input model at O0 or when no
	// pass fired).
	Compiled *actors.Compiled
	// Layout is the coverage layout of the ORIGINAL model. Both the
	// generated program and the interpreter must use it (not a layout of
	// the optimized model) so bitmap shapes match an O0 run bit for bit.
	Layout *coverage.Layout
	// Premark holds coverage bits whose outcomes the optimizer proved
	// statically and whose marking sites it removed; engines OR it into
	// their bitmaps before stepping. Nil when empty or coverage is off.
	Premark *coverage.Raw
	// ActorsBefore/ActorsAfter count scheduled actors around the pipeline.
	ActorsBefore int
	ActorsAfter  int
	// Passes lists per-pass rewrite counts in execution order.
	Passes []PassStat
	// Plan is the O2 fusion/hoist/narrow decision set for the code
	// generator; nil below O2. In-process engines ignore it.
	Plan *irplan.Plan
	// O2 counters (zero below O2): fused = producers inlined into their
	// consumer's expression, hoisted = loop-invariant globals, narrowed
	// = signals stored in a smaller kind.
	FusedExprs      int
	HoistedExprs    int
	NarrowedSignals int
	// EffectiveActors is the post-fusion statement count of the step
	// loop: ActorsAfter minus FusedExprs. It is the denominator
	// ns-per-actor-step reporting must use at O2 (a fused actor no
	// longer costs a statement), and equals ActorsAfter below O2.
	EffectiveActors int
}

// session carries per-run state shared by the passes.
type session struct {
	o   Options
	pre *coverage.Collector // premark bits, original layout
}

// Optimize runs the pass pipeline (constfold, cse, dce) over c and
// returns the optimized model plus everything the backends need to stay
// observationally identical to the unoptimized run.
func Optimize(c *actors.Compiled, o Options) (*Result, error) {
	res := &Result{
		Compiled:     c,
		Layout:       coverage.NewLayout(c),
		ActorsBefore: len(c.Order),
		ActorsAfter:  len(c.Order),
	}
	res.EffectiveActors = res.ActorsAfter
	if o.Level <= O0 {
		return res, nil
	}
	s := &session{o: o, pre: coverage.NewCollector(res.Layout)}
	cur := c
	passes := []struct {
		name string
		fn   func(*session, *actors.Compiled) (*model.Model, int, error)
	}{
		{"constfold", (*session).constFold},
		{"cse", (*session).cse},
		{"dce", (*session).dce},
	}
	for _, p := range passes {
		sp := o.Trace.Start("opt." + p.name)
		m2, changed, err := p.fn(s, cur)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("opt: %s: %w", p.name, err)
		}
		if changed > 0 {
			c2, cErr := actors.Compile(m2)
			if cErr != nil {
				sp.End()
				return nil, fmt.Errorf("opt: %s produced an uncompilable model: %w", p.name, cErr)
			}
			cur = c2
		}
		sp.End()
		res.Passes = append(res.Passes, PassStat{Pass: p.name, Changed: changed})
	}
	res.Compiled = cur
	res.ActorsAfter = len(cur.Order)
	res.EffectiveActors = res.ActorsAfter
	if o.Coverage {
		if set, _ := s.pre.Raw.Progress(); set > 0 {
			res.Premark = s.pre.Raw
		}
	}
	if o.Level >= O2 {
		sp := o.Trace.Start("opt.lower")
		cfg := ir.Config{
			Coverage:  o.Coverage,
			Diagnose:  o.Diagnose,
			Monitored: nameSet(o.Monitor),
			Custom:    make(map[string]bool, len(o.Custom)),
			StopOn:    o.StopOnActor,
		}
		for i := range o.Custom {
			cfg.Custom[o.Custom[i].Actor] = true
		}
		plan := irplan.Build(ir.Analyze(cur, cfg))
		sp.End()
		res.Plan = plan
		res.FusedExprs = plan.Stats.FusedExprs
		res.HoistedExprs = plan.Stats.HoistedExprs
		res.NarrowedSignals = plan.Stats.NarrowedSignals
		res.EffectiveActors = res.ActorsAfter - res.FusedExprs
		res.Passes = append(res.Passes,
			PassStat{Pass: "fuse", Changed: plan.Stats.FusedExprs},
			PassStat{Pass: "hoist", Changed: plan.Stats.HoistedExprs},
			PassStat{Pass: "narrow", Changed: plan.Stats.NarrowedSignals})
	}
	return res, nil
}

// nameSet builds a membership set over actor names/paths.
func nameSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}

// hasDataStores reports whether any data-store actor is scheduled. The
// relative schedule order of DataStoreRead vs DataStoreWrite among
// otherwise-unconnected actors is a pure topological tie-break;
// edge-rewriting passes (constant folding, CSE) could change node
// availability timing and flip a read/write interleaving, so they decline
// on such models. Dead-actor elimination is order-preserving for live
// actors (a dead actor never has an edge into a live one) and stays on.
func hasDataStores(c *actors.Compiled) bool {
	for _, info := range c.Order {
		switch info.Actor.Type {
		case "DataStoreRead", "DataStoreWrite", "DataStoreMemory":
			return true
		}
	}
	return false
}

// ObservableRoots returns the names of actors with externally observable
// effects: root outputs, data-store writers and declarations, and display
// sinks. Shared by dead-actor elimination and the lint DeadActors rule.
func ObservableRoots(c *actors.Compiled) []string {
	var roots []string
	for _, info := range c.Order {
		switch info.Actor.Type {
		case "Outport", "DataStoreWrite", "DataStoreMemory",
			"Scope", "Display", "ToWorkspace":
			roots = append(roots, info.Actor.Name)
		}
	}
	return roots
}

// Influencers returns every actor that transitively influences one of the
// named root actors through a data or enable edge, roots included.
func Influencers(c *actors.Compiled, roots []string) map[string]bool {
	rev := graph.New()
	for _, info := range c.Order {
		rev.AddNode(info.Actor.Name)
	}
	for _, info := range c.Order {
		for _, src := range info.InSrc {
			if src.Actor != "" {
				rev.AddEdge(info.Actor.Name, src.Actor)
			}
		}
		if info.Gated() {
			rev.AddEdge(info.Actor.Name, info.EnabledBy.Actor)
		}
	}
	return rev.Reachable(roots...)
}

// rebuildModel assembles a new model from src keeping only the actors and
// connections the predicates accept. Model keeps a private name index, so
// filtered copies go through New/AddActor rather than slicing.
func rebuildModel(src *model.Model, keepActor func(*model.Actor) bool, keepConn func(model.Connection) bool) *model.Model {
	out := model.New(src.Name)
	for _, a := range src.Actors {
		if !keepActor(a) {
			continue
		}
		if err := out.AddActor(a); err != nil {
			// src is a freshly cloned valid model; a collision here is a
			// pass bug, not an input condition.
			panic(err)
		}
	}
	for _, cn := range src.Connections {
		if keepConn(cn) {
			out.Connections = append(out.Connections, cn)
		}
	}
	return out
}
