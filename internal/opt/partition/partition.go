// Package partition cuts a scheduled actor graph into K balanced
// contiguous sub-graphs for goroutine-pipelined code generation — the
// SDF-partitioning approach of Fakih et al. (arXiv:1701.04217) adapted
// to AccMoS's static schedule: partition boundaries are fixed at compile
// time, so partitioned execution stays bit-identical to sequential.
//
// The schedule (actors.Compiled.Order) is already one valid topological
// order of the feedthrough graph, so any contiguous segmentation of it
// moves data strictly forward across partitions — except for the edges
// the scheduler deliberately dropped (inputs of stateful actors, which
// may point forward in schedule order) and data-store couplings (a read
// and a write of one store address the same global). Those become hard
// boundary constraints: a boundary is legal only when no state edge
// points backward across it and no data store has accessors on both
// sides. Within the legal boundary set, segmentation balances the
// per-partition compute weight (a per-actor cost model: transcendental
// math ≫ division ≫ add/mul, scaled by signal width) and then refines
// each boundary toward the legal position that cuts the fewest signal
// edges without giving up balance.
package partition

import (
	"fmt"
	"runtime"
	"strings"

	"accmos/internal/actors"
)

// MinActorsPerPartition is the auto-K threshold: a partition below this
// many actors pays more in per-step handoff than it wins in parallelism.
const MinActorsPerPartition = 48

// balanceSlack is how far (relative) a refined boundary may degrade the
// heavier neighbour segment in exchange for a smaller signal cut.
const balanceSlack = 1.15

// Plan is one partitioning decision for a scheduled model.
type Plan struct {
	// Requested is the partition count the caller asked for.
	Requested int
	// Usable is the partition count the cut produced (1 = sequential;
	// serial dependency structure or hard constraints can make a K-way
	// request collapse).
	Usable int
	// Assign maps schedule index -> partition (len == len(c.Order));
	// values are contiguous and non-decreasing. Nil when Usable < 2.
	Assign []int
	// Weights is the modelled compute weight per partition.
	Weights []int64
	// CutEdges counts signal edges whose producer and consumer landed in
	// different partitions (each is a value shipped between goroutines).
	CutEdges int
	// Balance is maxWeight/idealWeight: 1.0 is a perfect cut.
	Balance float64
	// Declined is a human-readable reason when partitioning fell back to
	// sequential ("" when Usable >= 2).
	Declined string
}

// AutoK picks a partition count from GOMAXPROCS bounded by the
// min-actors-per-partition threshold (at least 1).
func AutoK(c *actors.Compiled) int {
	k := runtime.GOMAXPROCS(0)
	if max := len(c.Order) / MinActorsPerPartition; k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Build partitions the scheduled graph into at most k contiguous
// segments. It never fails: when the requested cut is impossible the
// returned plan records Usable == 1 and the reason.
func Build(c *actors.Compiled, k int) *Plan {
	p := &Plan{Requested: k, Usable: 1}
	n := len(c.Order)
	if k < 2 {
		p.Declined = "fewer than 2 partitions requested"
		return p
	}
	if n < 2*k {
		p.Declined = fmt.Sprintf("%d actors cannot fill %d partitions", n, k)
		return p
	}

	w := weights(c)
	legal := legalBoundaries(c)
	nLegal := 0
	for _, ok := range legal {
		if ok {
			nLegal++
		}
	}
	if nLegal == 0 {
		p.Declined = "state edges and data-store couplings leave no legal cut point"
		return p
	}

	total := int64(0)
	for _, wi := range w {
		total += wi
	}

	// Greedy balanced segmentation: close segment s at the first legal
	// boundary once the prefix weight reaches s/k of the total.
	var bounds []int
	cum := int64(0)
	for i := 0; i < n-1 && len(bounds) < k-1; i++ {
		cum += w[i]
		if float64(cum) >= float64(total)*float64(len(bounds)+1)/float64(k) && legal[i] {
			bounds = append(bounds, i)
		}
	}
	if len(bounds) == 0 {
		p.Declined = "no legal boundary near any balance point"
		return p
	}

	bounds = refineBounds(c, w, legal, bounds, total)

	p.Usable = len(bounds) + 1
	p.Assign = assignFrom(bounds, n)
	p.Weights = segmentWeights(w, bounds, n)
	p.CutEdges = cutEdges(c, p.Assign)
	maxW := int64(0)
	for _, sw := range p.Weights {
		if sw > maxW {
			maxW = sw
		}
	}
	if total > 0 {
		p.Balance = float64(maxW) * float64(p.Usable) / float64(total)
	}
	if p.Usable < 2 {
		p.Assign = nil
		p.Declined = "cut produced a single usable partition"
	}
	return p
}

// Summary renders the plan for CLI/daemon reporting.
func (p *Plan) Summary() string {
	if p == nil {
		return ""
	}
	if p.Usable < 2 {
		return fmt.Sprintf("requested %d, sequential (%s)", p.Requested, p.Declined)
	}
	return fmt.Sprintf("requested %d, usable %d, cut %d signals, balance %.2f",
		p.Requested, p.Usable, p.CutEdges, p.Balance)
}

// weights models per-actor compute cost: transcendental math dominates,
// then division/sqrt/lookup, then plain arithmetic; vector actors scale
// by width. Pure-routing and codeless actors weigh nothing.
func weights(c *actors.Compiled) []int64 {
	w := make([]int64, len(c.Order))
	for i, info := range c.Order {
		w[i] = costOf(info)
	}
	return w
}

func costOf(info *actors.Info) int64 {
	var base int64
	switch info.Actor.Type {
	case "Math":
		switch info.Operator {
		case "reciprocal":
			base = 4
		default: // sin/cos/tan/exp/log/tanh/... all land in libm
			base = 8
		}
	case "Sqrt", "Polynomial", "Atan2", "SineWave", "SignalGenerator", "RandomNumber":
		base = 8
	case "PIDController":
		base = 6
	case "Lookup1D":
		base = 6
	case "Product":
		if strings.ContainsRune(info.Operator, '/') {
			base = 4
		} else {
			base = 2
		}
	case "Mod", "DiscreteFilter", "DiscreteDerivative", "RateLimiter", "MovingAverage",
		"DotProduct", "SumOfElements", "ProductOfElements", "Integrator", "FirstOrderLag":
		base = 3
	case "Outport", "Terminator", "DataStoreMemory", "Ground", "Constant", "Inport":
		base = 0
	default:
		base = 1
	}
	width := int64(info.OutWidth())
	if width < 1 {
		width = 1
	}
	return base * width
}

// legalBoundaries marks each cut position (after schedule index b) legal
// unless a dropped state edge points backward across it or a data store
// has accessors on both sides.
func legalBoundaries(c *actors.Compiled) []bool {
	n := len(c.Order)
	if n < 2 {
		return nil
	}
	legal := make([]bool, n-1)
	for i := range legal {
		legal[i] = true
	}
	forbid := func(lo, hi int) { // boundaries in [lo, hi) become illegal
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		for b := lo; b < hi; b++ {
			legal[b] = false
		}
	}
	// Backward edges: the scheduler drops edges into stateful actors, so
	// a stateful consumer can precede its driver. Its end-of-step update
	// needs the driver's same-step value, which a later pipeline stage
	// has not produced yet — both must share a partition.
	for i, info := range c.Order {
		for _, src := range info.InSrc {
			if src.Actor == "" {
				continue
			}
			if drv := c.ByName[src.Actor]; drv != nil && drv.Index > i {
				forbid(i, drv.Index)
			}
		}
	}
	// Data stores: every read and write of one store addresses the same
	// global in step order; splitting them across pipeline stages would
	// race. Pin all accessors of a store into one segment.
	stores := map[string][2]int{}
	for i, info := range c.Order {
		switch info.Actor.Type {
		case "DataStoreRead", "DataStoreWrite":
			name := actors.StoreName(info)
			if span, ok := stores[name]; ok {
				if i < span[0] {
					span[0] = i
				}
				if i > span[1] {
					span[1] = i
				}
				stores[name] = span
			} else {
				stores[name] = [2]int{i, i}
			}
		}
	}
	for _, span := range stores {
		forbid(span[0], span[1])
	}
	return legal
}

// refineBounds nudges each boundary toward the legal position (between
// its neighbours) that cuts the fewest signal edges, accepting only
// moves that keep both adjacent segments within balanceSlack of the
// ideal weight. Deterministic: boundaries are scanned left to right and
// ties prefer the earliest position.
func refineBounds(c *actors.Compiled, w []int64, legal []bool, bounds []int, total int64) []int {
	n := len(w)
	k := len(bounds) + 1
	ideal := float64(total) / float64(k)
	prefix := make([]int64, n+1)
	for i, wi := range w {
		prefix[i+1] = prefix[i] + wi
	}
	segOK := func(lo, hi int) bool { // segment covering [lo, hi] inclusive
		return float64(prefix[hi+1]-prefix[lo]) <= ideal*balanceSlack
	}
	for bi := range bounds {
		lo := 0
		if bi > 0 {
			lo = bounds[bi-1] + 1
		}
		hi := n - 2
		if bi < len(bounds)-1 {
			hi = bounds[bi+1] - 1
		}
		best, bestCut := bounds[bi], crossingEdges(c, bounds[bi])
		for b := lo; b <= hi; b++ {
			if !legal[b] || b == bounds[bi] {
				continue
			}
			segLo := lo
			segHi := n - 1
			if bi < len(bounds)-1 {
				segHi = bounds[bi+1]
			}
			if !segOK(segLo, b) || !segOK(b+1, segHi) {
				continue
			}
			if cut := crossingEdges(c, b); cut < bestCut {
				best, bestCut = b, cut
			}
		}
		bounds[bi] = best
	}
	return bounds
}

// crossingEdges counts signal edges spanning the boundary after index b.
func crossingEdges(c *actors.Compiled, b int) int {
	cut := 0
	for i, info := range c.Order {
		for _, src := range info.InSrc {
			if src.Actor == "" {
				continue
			}
			if drv := c.ByName[src.Actor]; drv != nil && drv.Index <= b && b < i {
				cut++
			}
		}
		if info.Gated() {
			if en := c.ByName[info.EnabledBy.Actor]; en != nil && en.Index <= b && b < i {
				cut++
			}
		}
	}
	return cut
}

func assignFrom(bounds []int, n int) []int {
	assign := make([]int, n)
	part := 0
	next := 0
	for i := 0; i < n; i++ {
		assign[i] = part
		if next < len(bounds) && i == bounds[next] {
			part++
			next++
		}
	}
	return assign
}

func segmentWeights(w []int64, bounds []int, n int) []int64 {
	out := make([]int64, len(bounds)+1)
	seg := 0
	for i := 0; i < n; i++ {
		out[seg] += w[i]
		if seg < len(bounds) && i == bounds[seg] {
			seg++
		}
	}
	return out
}

// cutEdges counts signal edges whose endpoints landed in different
// partitions under assign.
func cutEdges(c *actors.Compiled, assign []int) int {
	cut := 0
	for i, info := range c.Order {
		for _, src := range info.InSrc {
			if src.Actor == "" {
				continue
			}
			if drv := c.ByName[src.Actor]; drv != nil && assign[drv.Index] != assign[i] {
				cut++
			}
		}
		if info.Gated() {
			if en := c.ByName[info.EnabledBy.Actor]; en != nil && assign[en.Index] != assign[i] {
				cut++
			}
		}
	}
	return cut
}
