package partition_test

import (
	"fmt"
	"reflect"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/opt/partition"
	"accmos/internal/types"
)

func compile(t *testing.T, m *model.Model) *actors.Compiled {
	t.Helper()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatalf("compile %s: %v", m.Name, err)
	}
	return c
}

// wideModel builds nChains independent Inport -> Math^depth -> Outport
// chains: plenty of legal boundaries and weight everywhere.
func wideModel(t *testing.T, nChains, depth int) *actors.Compiled {
	t.Helper()
	b := model.NewBuilder("WIDE")
	for ci := 0; ci < nChains; ci++ {
		in := fmt.Sprintf("In%d", ci)
		b.Add(in, "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", fmt.Sprint(ci+1)))
		prev := in
		for d := 0; d < depth; d++ {
			name := fmt.Sprintf("M%d_%d", ci, d)
			b.Add(name, "Math", 1, 1, model.WithOperator("tanh"))
			b.Wire(prev, name, 0)
			prev = name
		}
		out := fmt.Sprintf("Out%d", ci)
		b.Add(out, "Outport", 1, 0, model.WithParam("Port", fmt.Sprint(ci+1)))
		b.Wire(prev, out, 0)
	}
	return compile(t, b.MustBuild())
}

func checkPlanShape(t *testing.T, c *actors.Compiled, p *partition.Plan) {
	t.Helper()
	if p.Usable < 2 {
		return
	}
	if len(p.Assign) != len(c.Order) {
		t.Fatalf("Assign len %d, want %d", len(p.Assign), len(c.Order))
	}
	prev := 0
	for i, a := range p.Assign {
		if a < prev || a > prev+1 {
			t.Fatalf("Assign not contiguous non-decreasing at %d: %d after %d", i, a, prev)
		}
		prev = a
	}
	if prev != p.Usable-1 {
		t.Fatalf("Assign tops out at %d, want %d partitions", prev+1, p.Usable)
	}
	if len(p.Weights) != p.Usable {
		t.Fatalf("Weights len %d, want %d", len(p.Weights), p.Usable)
	}
	for i, w := range p.Weights {
		if w <= 0 {
			t.Fatalf("partition %d has weight %d", i, w)
		}
	}
	if p.Balance < 1.0 {
		t.Fatalf("Balance %.3f < 1.0", p.Balance)
	}
}

func TestBuildBalancedCut(t *testing.T) {
	c := wideModel(t, 8, 6)
	for _, k := range []int{2, 3, 4} {
		p := partition.Build(c, k)
		if p.Usable != k {
			t.Fatalf("k=%d: usable %d (declined: %s)", k, p.Usable, p.Declined)
		}
		checkPlanShape(t, c, p)
		if p.Balance > 1.5 {
			t.Errorf("k=%d: balance %.3f too skewed for a uniform model", k, p.Balance)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	c := wideModel(t, 6, 5)
	a := partition.Build(c, 4)
	b := partition.Build(c, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two builds differ:\n%+v\n%+v", a, b)
	}
}

func TestBuildDeclinesTinyOrSequential(t *testing.T) {
	c := wideModel(t, 1, 2)
	for _, k := range []int{0, 1} {
		p := partition.Build(c, k)
		if p.Usable != 1 || p.Declined == "" {
			t.Fatalf("k=%d: want declined sequential plan, got %+v", k, p)
		}
	}
	p := partition.Build(c, 8)
	if p.Usable != 1 || p.Declined == "" {
		t.Fatalf("tiny model: want declined plan, got %+v", p)
	}
}

// A UnitDelay scheduled before its driver creates a backward state edge;
// the delay and its driver must land in one partition.
func TestStatefulPinnedTogether(t *testing.T) {
	b := model.NewBuilder("PIN")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	// Feedback loop: Sum = In + Delay(Sum); the delay breaks the cycle, so
	// the schedule places it before Sum and its input edge points forward.
	b.Add("Del", "UnitDelay", 1, 1)
	b.Add("Fb", "Sum", 2, 1, model.WithOperator("++"))
	b.Wire("In", "Fb", 0)
	b.Wire("Del", "Fb", 1)
	b.Wire("Fb", "Del", 0)
	prev := "Fb"
	for d := 0; d < 12; d++ {
		name := fmt.Sprintf("M%d", d)
		b.Add(name, "Math", 1, 1, model.WithOperator("exp"))
		b.Wire(prev, name, 0)
		prev = name
	}
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Wire(prev, "Out", 0)
	c := compile(t, b.MustBuild())

	p := partition.Build(c, 2)
	if p.Usable < 2 {
		t.Skipf("model too serial to cut: %s", p.Declined)
	}
	checkPlanShape(t, c, p)
	del := c.ByName["Del"].Index
	fb := c.ByName["Fb"].Index
	if p.Assign[del] != p.Assign[fb] {
		t.Fatalf("state edge split: Del in %d, Fb in %d", p.Assign[del], p.Assign[fb])
	}
}

// All accessors of one data store must share a partition.
func TestDataStorePinnedTogether(t *testing.T) {
	b := model.NewBuilder("DSPIN")
	b.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	b.Add("Mem", "DataStoreMemory", 0, 0, model.WithParam("Store", "acc"))
	b.Add("Rd", "DataStoreRead", 0, 1, model.WithParam("Store", "acc"), model.WithOutKind(types.F64))
	prev := "Rd"
	for d := 0; d < 10; d++ {
		name := fmt.Sprintf("M%d", d)
		b.Add(name, "Math", 1, 1, model.WithOperator("sin"))
		b.Wire(prev, name, 0)
		prev = name
	}
	b.Add("Mix", "Sum", 2, 1, model.WithOperator("++"))
	b.Wire("In", "Mix", 0)
	b.Wire(prev, "Mix", 1)
	b.Add("Wr", "DataStoreWrite", 1, 0, model.WithParam("Store", "acc"))
	b.Wire("Mix", "Wr", 0)
	b.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	b.Wire("Mix", "Out", 0)
	c := compile(t, b.MustBuild())

	p := partition.Build(c, 2)
	if p.Usable < 2 {
		t.Skipf("model too serial to cut: %s", p.Declined)
	}
	rd := c.ByName["Rd"].Index
	wr := c.ByName["Wr"].Index
	if p.Assign[rd] != p.Assign[wr] {
		t.Fatalf("data store split: Rd in %d, Wr in %d", p.Assign[rd], p.Assign[wr])
	}
}

func TestAutoK(t *testing.T) {
	small := wideModel(t, 1, 4)
	if k := partition.AutoK(small); k != 1 {
		t.Fatalf("AutoK on %d actors = %d, want 1", len(small.Order), k)
	}
	big := wideModel(t, 16, 20)
	k := partition.AutoK(big)
	if k < 1 {
		t.Fatalf("AutoK = %d", k)
	}
	if max := len(big.Order) / partition.MinActorsPerPartition; k > max && max >= 1 {
		t.Fatalf("AutoK = %d exceeds actors/threshold = %d", k, max)
	}
}

func TestSummary(t *testing.T) {
	c := wideModel(t, 8, 6)
	p := partition.Build(c, 2)
	if s := p.Summary(); s == "" {
		t.Fatal("empty summary")
	}
	var nilPlan *partition.Plan
	if s := nilPlan.Summary(); s != "" {
		t.Fatalf("nil summary %q", s)
	}
}
