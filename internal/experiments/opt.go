package experiments

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"time"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/interp"
	"accmos/internal/opt"
	"accmos/internal/opt/irplan"
	"accmos/internal/rapid"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
)

// OptRow is one (shape, engine) comparison of the optimizing middle-end:
// the same model simulated at -O0, -O1 and -O2 on one engine. The row
// with Model "TOTAL" is the aggregate O2 gate: the geomean AccMoS O1→O2
// speedup over the O2-sensitive shapes with its pass verdict.
type OptRow struct {
	Model  string
	Engine string
	Steps  int64

	// ActorsBefore/ActorsAfter are the scheduled actor counts around the
	// O1 pipeline (identical for every engine of one model).
	ActorsBefore int
	ActorsAfter  int
	Passes       []opt.PassStat

	// O2 middle-end fusion report (identical for every engine of one
	// model): how many actors the typed-lowering plan inlined, how many
	// invariant subexpressions it hoisted to init-time globals, how many
	// signals it stores narrower than their semantic kind, and the
	// post-fusion step-loop statement count that remains.
	FusedExprs      int
	HoistedExprs    int
	NarrowedSignals int
	ActorsEffective int

	O0, O1, O2                      time.Duration
	CompileO0, CompileO1, CompileO2 time.Duration // AccMoS only
	Speedup                         float64       // O0 / O1
	SpeedupO2                       float64       // O1 / O2

	// NsPerActorStep normalizes wall time by scheduled work: the per-level
	// cost of one actor evaluation. Roughly flat across levels when the
	// speedup comes purely from executing fewer actors. The O2 denominator
	// is ActorsEffective — fused actors emit no statement of their own.
	NsPerActorStepO0 float64
	NsPerActorStepO1 float64
	NsPerActorStepO2 float64

	// SpeedupOK is set on the TOTAL gate row: geomean O1→O2 AccMoS
	// speedup over the O2-sensitive shapes at or above the 1.3x bar.
	SpeedupOK bool

	// EquivOK reports the instrumented O0-vs-O1-vs-O2 oracle for this
	// model: identical output hashes on all four engines, plus
	// byte-identical coverage bitmaps and diagnosis aggregates on the
	// instrumented ones.
	EquivOK bool
}

// o2GeomeanBar is the aggregate acceptance bar: the AccMoS O1→O2
// speedup geomean over the O2-sensitive shapes must reach it.
const o2GeomeanBar = 1.3

// equivSteps bounds the instrumented verification runs: the oracle needs
// coverage and diagnosis parity, not wall-clock, so it never pays the
// full timing-step budget on the unoptimized instrumented interpreter.
const equivSteps = 20_000

// BenchOpt measures the optimizer benchmark shapes (the O1 trio plus the
// O2-sensitive quartet) at O0, O1 and O2 on all four engines. Timing runs
// are uninstrumented — the configuration a perf-sensitive sweep uses —
// and a separate instrumented pass checks the O0-vs-O1-vs-O2 equivalence
// oracle with coverage and diagnosis on, exercising the premark machinery
// end to end. O2 only changes the generated program, so the interpreted
// engines run the O1-optimized graph at both levels — their O2 columns
// document that the typed-lowering win is codegen-only.
func BenchOpt(cfg Config) ([]OptRow, error) {
	names := optBenchNames(cfg.Models)
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []OptRow
	for _, name := range names {
		m, err := benchmodels.BuildOpt(name)
		if err != nil {
			return nil, err
		}
		c, err := actors.Compile(m)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		set := testcase.NewRandomSet(len(c.Inports), cfg.Seed, -100, 100)
		or1, err := opt.Optimize(c, opt.Options{Level: opt.O1})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		or2, err := opt.Optimize(c, opt.Options{Level: opt.O2})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		cfg.logf("opt %s: %d -> %d actors (%v)", name, or1.ActorsBefore, or1.ActorsAfter, or1.Passes)
		cfg.logf("opt %s: O2 fused %d, hoisted %d, narrowed %d (%d effective actors)",
			name, or2.FusedExprs, or2.HoistedExprs, or2.NarrowedSignals, or2.EffectiveActors)

		equivOK, err := cfg.optEquivalent(dir, name, c, set)
		if err != nil {
			return nil, err
		}

		mk := func(engine string) OptRow {
			return OptRow{
				Model: name, Engine: engine, Steps: cfg.Steps,
				ActorsBefore: or1.ActorsBefore, ActorsAfter: or1.ActorsAfter,
				Passes: or1.Passes, EquivOK: equivOK,
				FusedExprs: or2.FusedExprs, HoistedExprs: or2.HoistedExprs,
				NarrowedSignals: or2.NarrowedSignals, ActorsEffective: or2.EffectiveActors,
			}
		}

		// AccMoS: generated binaries at all three levels (distinct cache
		// keys); only the O2 build carries the typed-lowering plan.
		acc := mk("AccMoS")
		for _, lv := range []struct {
			tag  string
			c    *actors.Compiled
			plan *irplan.Plan
			wall *time.Duration
			cmpl *time.Duration
		}{
			{"O0", c, nil, &acc.O0, &acc.CompileO0},
			{"O1", or1.Compiled, nil, &acc.O1, &acc.CompileO1},
			{"O2", or2.Compiled, or2.Plan, &acc.O2, &acc.CompileO2},
		} {
			prog, err := codegen.Generate(lv.c, codegen.Options{TestCases: set, Opt: lv.tag, Plan: lv.plan})
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", name, lv.tag, err)
			}
			bin, compileTime, _, err := cfg.build(prog, filepath.Join(dir, name+"_"+lv.tag))
			if err != nil {
				return nil, err
			}
			*lv.cmpl = compileTime
			res, err := harness.Run(bin, harness.RunOptions{Steps: cfg.Steps, Timeout: cfg.Timeout})
			if err != nil {
				return nil, err
			}
			*lv.wall = time.Duration(res.ExecNanos)
		}

		// The three interpreter-family engines.
		type runner func(cc *actors.Compiled) (*simresult.Results, error)
		engines := []struct {
			name string
			run  runner
		}{
			{"SSE", func(cc *actors.Compiled) (*simresult.Results, error) {
				e, err := interp.New(cc, interp.Options{})
				if err != nil {
					return nil, err
				}
				return e.Run(set, cfg.Steps)
			}},
			{"SSEac", func(cc *actors.Compiled) (*simresult.Results, error) {
				e, err := interp.NewAccel(cc)
				if err != nil {
					return nil, err
				}
				return e.Run(set, cfg.Steps)
			}},
			{"SSErac", func(cc *actors.Compiled) (*simresult.Results, error) {
				e, err := rapid.New(cc)
				if err != nil {
					return nil, err
				}
				return e.Run(set, cfg.Steps)
			}},
		}
		modelRows := []OptRow{acc}
		for _, eng := range engines {
			row := mk(eng.name)
			r0, err := eng.run(c)
			if err != nil {
				return nil, fmt.Errorf("%s %s O0: %w", name, eng.name, err)
			}
			r1, err := eng.run(or1.Compiled)
			if err != nil {
				return nil, fmt.Errorf("%s %s O1: %w", name, eng.name, err)
			}
			// O2 changes generated code only: the interpreted engines
			// execute or2.Compiled, the same O1-optimized graph.
			r2, err := eng.run(or2.Compiled)
			if err != nil {
				return nil, fmt.Errorf("%s %s O2: %w", name, eng.name, err)
			}
			if !simresult.SameOutputs(r0, r1) || !simresult.SameOutputs(r0, r2) {
				row.EquivOK = false
			}
			row.O0, row.O1, row.O2 = time.Duration(r0.ExecNanos), time.Duration(r1.ExecNanos), time.Duration(r2.ExecNanos)
			modelRows = append(modelRows, row)
		}
		for i := range modelRows {
			r := &modelRows[i]
			r.Speedup = ratio(r.O0, r.O1)
			r.SpeedupO2 = ratio(r.O1, r.O2)
			r.NsPerActorStepO0 = nsPerActorStep(r.O0, r.Steps, r.ActorsBefore)
			r.NsPerActorStepO1 = nsPerActorStep(r.O1, r.Steps, r.ActorsAfter)
			r.NsPerActorStepO2 = nsPerActorStep(r.O2, r.Steps, r.ActorsEffective)
			cfg.logf("opt %s %s: O0 %v O1 %v O2 %v (%.1fx, %.1fx)",
				r.Model, r.Engine, r.O0, r.O1, r.O2, r.Speedup, r.SpeedupO2)
		}
		rows = append(rows, modelRows...)
	}
	rows = append(rows, o2GateRow(rows))
	return rows, nil
}

// optBenchNames restricts the optimizer shape suite to an explicit
// -models subset. Names outside the suite are ignored, and a subset
// naming none of the shapes (e.g. a Table 2 list reused with -run all)
// falls back to the full suite rather than benchmarking nothing.
func optBenchNames(subset []string) []string {
	all := benchmodels.OptNames()
	if len(subset) == 0 {
		return all
	}
	want := make(map[string]bool, len(subset))
	for _, n := range subset {
		want[n] = true
	}
	var out []string
	for _, n := range all {
		if want[n] {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return all
	}
	return out
}

// o2GateRow aggregates the AccMoS O1→O2 speedup over the O2-sensitive
// shapes into the TOTAL acceptance row: the geomean must reach
// o2GeomeanBar with every per-model oracle green. The O1 trio is
// excluded by construction — it collapses to a handful of actors before
// the typed-lowering stage runs, so its O2 column is pure noise.
func o2GateRow(rows []OptRow) OptRow {
	sensitive := make(map[string]bool)
	for _, n := range benchmodels.Opt2Names() {
		sensitive[n] = true
	}
	logSum, n, equiv := 0.0, 0, true
	for _, r := range rows {
		if r.Engine != "AccMoS" || !sensitive[r.Model] {
			continue
		}
		if r.SpeedupO2 > 0 {
			logSum += math.Log(r.SpeedupO2)
			n++
		}
		equiv = equiv && r.EquivOK
	}
	gate := OptRow{Model: "TOTAL", Engine: "AccMoS", EquivOK: equiv}
	if n > 0 {
		gate.SpeedupO2 = math.Exp(logSum / float64(n))
		gate.SpeedupOK = equiv && gate.SpeedupO2 >= o2GeomeanBar
	}
	return gate
}

func nsPerActorStep(wall time.Duration, steps int64, actorCount int) float64 {
	if steps <= 0 || actorCount <= 0 {
		return 0
	}
	return float64(wall.Nanoseconds()) / (float64(steps) * float64(actorCount))
}

// optEquivalent runs the instrumented O0-vs-O1-vs-O2 oracle for one
// model: coverage + diagnosis on, every level, on the generated program
// and the interpreter (the instrumented engines), plus output-hash parity
// on the accelerator pair. The optimized runs feed the optimizer's
// original layout, premark bitmaps and (at O2) typed-lowering plan to the
// engines — exactly what the facade does.
func (cfg *Config) optEquivalent(dir, name string, c *actors.Compiled, set *testcase.Set) (bool, error) {
	type outcome struct {
		interp *simresult.Results
		gen    *simresult.Results
	}
	run := func(level opt.Level) (*outcome, error) {
		or, err := opt.Optimize(c, opt.Options{Level: level, Coverage: true, Diagnose: true})
		if err != nil {
			return nil, err
		}
		e, err := interp.New(or.Compiled, interp.Options{
			Coverage: true, Diagnose: true, Layout: or.Layout, Premark: or.Premark,
		})
		if err != nil {
			return nil, err
		}
		ir, err := e.Run(set, equivSteps)
		if err != nil {
			return nil, err
		}
		prog, err := codegen.Generate(or.Compiled, codegen.Options{
			Coverage: true, Diagnose: true, TestCases: set,
			Layout: or.Layout, Premark: or.Premark, Opt: level.String(),
			Plan: or.Plan,
		})
		if err != nil {
			return nil, err
		}
		bin, _, _, err := cfg.build(prog, filepath.Join(dir, name+"_eq_"+level.String()))
		if err != nil {
			return nil, err
		}
		gr, err := harness.Run(bin, harness.RunOptions{Steps: equivSteps, Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		return &outcome{interp: ir, gen: gr}, nil
	}
	o0, err := run(opt.O0)
	if err != nil {
		return false, fmt.Errorf("%s equivalence O0: %w", name, err)
	}
	o1, err := run(opt.O1)
	if err != nil {
		return false, fmt.Errorf("%s equivalence O1: %w", name, err)
	}
	o2, err := run(opt.O2)
	if err != nil {
		return false, fmt.Errorf("%s equivalence O2: %w", name, err)
	}
	ok := sameInstrumented(o0.interp, o1.interp) &&
		sameInstrumented(o0.gen, o1.gen) &&
		sameInstrumented(o0.interp, o2.interp) &&
		sameInstrumented(o0.gen, o2.gen) &&
		simresult.SameOutputs(o0.interp, o0.gen) &&
		simresult.SameOutputs(o1.interp, o1.gen) &&
		simresult.SameOutputs(o2.interp, o2.gen)
	return ok, nil
}

// sameInstrumented is the full O0-vs-O1 oracle on one instrumented
// engine: output hash, diagnosis aggregates, and byte-identical coverage
// bitmaps.
func sameInstrumented(a, b *simresult.Results) bool {
	if !simresult.SameOutputs(a, b) || a.DiagTotal != b.DiagTotal {
		return false
	}
	if len(a.DiagCounts) != len(b.DiagCounts) {
		return false
	}
	for k, v := range a.DiagCounts {
		if b.DiagCounts[k] != v {
			return false
		}
	}
	if (a.Coverage == nil) != (b.Coverage == nil) {
		return false
	}
	if a.Coverage != nil {
		if !bytes.Equal(a.Coverage.Actor, b.Coverage.Actor) ||
			!bytes.Equal(a.Coverage.Cond, b.Coverage.Cond) ||
			!bytes.Equal(a.Coverage.Dec, b.Coverage.Dec) ||
			!bytes.Equal(a.Coverage.MCDC, b.Coverage.MCDC) {
			return false
		}
	}
	return true
}
