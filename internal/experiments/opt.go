package experiments

import (
	"bytes"
	"fmt"
	"path/filepath"
	"time"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/interp"
	"accmos/internal/opt"
	"accmos/internal/rapid"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
)

// OptRow is one (shape, engine) comparison of the optimizing middle-end:
// the same model simulated at -O0 and -O1 on one engine.
type OptRow struct {
	Model  string
	Engine string
	Steps  int64

	// ActorsBefore/ActorsAfter are the scheduled actor counts around the
	// O1 pipeline (identical for every engine of one model).
	ActorsBefore int
	ActorsAfter  int
	Passes       []opt.PassStat

	O0, O1               time.Duration
	CompileO0, CompileO1 time.Duration // AccMoS only
	Speedup              float64       // O0 / O1

	// NsPerActorStep normalizes wall time by scheduled work: the per-level
	// cost of one actor evaluation. Roughly flat across levels when the
	// speedup comes purely from executing fewer actors.
	NsPerActorStepO0 float64
	NsPerActorStepO1 float64

	// EquivOK reports the instrumented O0-vs-O1 oracle for this model:
	// identical output hashes on all four engines, plus byte-identical
	// coverage bitmaps and diagnosis aggregates on the instrumented ones.
	EquivOK bool
}

// equivSteps bounds the instrumented verification runs: the oracle needs
// coverage and diagnosis parity, not wall-clock, so it never pays the
// full timing-step budget on the unoptimized instrumented interpreter.
const equivSteps = 20_000

// BenchOpt measures the optimizer benchmark shapes (OPTC, OPTD, OPTI) at
// O0 and O1 on all four engines. Timing runs are uninstrumented — the
// configuration a perf-sensitive sweep uses — and a separate instrumented
// pass checks the O0-vs-O1 equivalence oracle with coverage and diagnosis
// on, exercising the premark machinery end to end.
func BenchOpt(cfg Config) ([]OptRow, error) {
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var rows []OptRow
	for _, name := range benchmodels.OptNames() {
		m, err := benchmodels.BuildOpt(name)
		if err != nil {
			return nil, err
		}
		c, err := actors.Compile(m)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		set := testcase.NewRandomSet(len(c.Inports), cfg.Seed, -100, 100)
		or1, err := opt.Optimize(c, opt.Options{Level: opt.O1})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		cfg.logf("opt %s: %d -> %d actors (%v)", name, or1.ActorsBefore, or1.ActorsAfter, or1.Passes)

		equivOK, err := cfg.optEquivalent(dir, name, c, set)
		if err != nil {
			return nil, err
		}

		mk := func(engine string) OptRow {
			return OptRow{
				Model: name, Engine: engine, Steps: cfg.Steps,
				ActorsBefore: or1.ActorsBefore, ActorsAfter: or1.ActorsAfter,
				Passes: or1.Passes, EquivOK: equivOK,
			}
		}

		// AccMoS: generated binaries at both levels (distinct cache keys).
		acc := mk("AccMoS")
		for _, lv := range []struct {
			tag  string
			c    *actors.Compiled
			wall *time.Duration
			cmpl *time.Duration
		}{
			{"O0", c, &acc.O0, &acc.CompileO0},
			{"O1", or1.Compiled, &acc.O1, &acc.CompileO1},
		} {
			prog, err := codegen.Generate(lv.c, codegen.Options{TestCases: set, Opt: lv.tag})
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", name, lv.tag, err)
			}
			bin, compileTime, _, err := cfg.build(prog, filepath.Join(dir, name+"_"+lv.tag))
			if err != nil {
				return nil, err
			}
			*lv.cmpl = compileTime
			res, err := harness.Run(bin, harness.RunOptions{Steps: cfg.Steps, Timeout: cfg.Timeout})
			if err != nil {
				return nil, err
			}
			*lv.wall = time.Duration(res.ExecNanos)
		}

		// The three interpreter-family engines.
		type runner func(cc *actors.Compiled) (*simresult.Results, error)
		engines := []struct {
			name string
			run  runner
		}{
			{"SSE", func(cc *actors.Compiled) (*simresult.Results, error) {
				e, err := interp.New(cc, interp.Options{})
				if err != nil {
					return nil, err
				}
				return e.Run(set, cfg.Steps)
			}},
			{"SSEac", func(cc *actors.Compiled) (*simresult.Results, error) {
				e, err := interp.NewAccel(cc)
				if err != nil {
					return nil, err
				}
				return e.Run(set, cfg.Steps)
			}},
			{"SSErac", func(cc *actors.Compiled) (*simresult.Results, error) {
				e, err := rapid.New(cc)
				if err != nil {
					return nil, err
				}
				return e.Run(set, cfg.Steps)
			}},
		}
		modelRows := []OptRow{acc}
		for _, eng := range engines {
			row := mk(eng.name)
			r0, err := eng.run(c)
			if err != nil {
				return nil, fmt.Errorf("%s %s O0: %w", name, eng.name, err)
			}
			r1, err := eng.run(or1.Compiled)
			if err != nil {
				return nil, fmt.Errorf("%s %s O1: %w", name, eng.name, err)
			}
			if !simresult.SameOutputs(r0, r1) {
				row.EquivOK = false
			}
			row.O0, row.O1 = time.Duration(r0.ExecNanos), time.Duration(r1.ExecNanos)
			modelRows = append(modelRows, row)
		}
		for i := range modelRows {
			r := &modelRows[i]
			r.Speedup = ratio(r.O0, r.O1)
			r.NsPerActorStepO0 = nsPerActorStep(r.O0, r.Steps, r.ActorsBefore)
			r.NsPerActorStepO1 = nsPerActorStep(r.O1, r.Steps, r.ActorsAfter)
			cfg.logf("opt %s %s: O0 %v O1 %v (%.1fx)", r.Model, r.Engine, r.O0, r.O1, r.Speedup)
		}
		rows = append(rows, modelRows...)
	}
	return rows, nil
}

func nsPerActorStep(wall time.Duration, steps int64, actorCount int) float64 {
	if steps <= 0 || actorCount <= 0 {
		return 0
	}
	return float64(wall.Nanoseconds()) / (float64(steps) * float64(actorCount))
}

// optEquivalent runs the instrumented O0-vs-O1 oracle for one model:
// coverage + diagnosis on, both levels, on the generated program and the
// interpreter (the instrumented engines), plus output-hash parity on the
// accelerator pair. The O1 runs feed the optimizer's original layout and
// premark bitmaps to the engines — exactly what the facade does.
func (cfg *Config) optEquivalent(dir, name string, c *actors.Compiled, set *testcase.Set) (bool, error) {
	type outcome struct {
		interp *simresult.Results
		gen    *simresult.Results
	}
	run := func(level opt.Level) (*outcome, error) {
		or, err := opt.Optimize(c, opt.Options{Level: level, Coverage: true, Diagnose: true})
		if err != nil {
			return nil, err
		}
		e, err := interp.New(or.Compiled, interp.Options{
			Coverage: true, Diagnose: true, Layout: or.Layout, Premark: or.Premark,
		})
		if err != nil {
			return nil, err
		}
		ir, err := e.Run(set, equivSteps)
		if err != nil {
			return nil, err
		}
		prog, err := codegen.Generate(or.Compiled, codegen.Options{
			Coverage: true, Diagnose: true, TestCases: set,
			Layout: or.Layout, Premark: or.Premark, Opt: level.String(),
		})
		if err != nil {
			return nil, err
		}
		bin, _, _, err := cfg.build(prog, filepath.Join(dir, name+"_eq_"+level.String()))
		if err != nil {
			return nil, err
		}
		gr, err := harness.Run(bin, harness.RunOptions{Steps: equivSteps, Timeout: cfg.Timeout})
		if err != nil {
			return nil, err
		}
		return &outcome{interp: ir, gen: gr}, nil
	}
	o0, err := run(opt.O0)
	if err != nil {
		return false, fmt.Errorf("%s equivalence O0: %w", name, err)
	}
	o1, err := run(opt.O1)
	if err != nil {
		return false, fmt.Errorf("%s equivalence O1: %w", name, err)
	}
	ok := sameInstrumented(o0.interp, o1.interp) &&
		sameInstrumented(o0.gen, o1.gen) &&
		simresult.SameOutputs(o0.interp, o0.gen) &&
		simresult.SameOutputs(o1.interp, o1.gen)
	return ok, nil
}

// sameInstrumented is the full O0-vs-O1 oracle on one instrumented
// engine: output hash, diagnosis aggregates, and byte-identical coverage
// bitmaps.
func sameInstrumented(a, b *simresult.Results) bool {
	if !simresult.SameOutputs(a, b) || a.DiagTotal != b.DiagTotal {
		return false
	}
	if len(a.DiagCounts) != len(b.DiagCounts) {
		return false
	}
	for k, v := range a.DiagCounts {
		if b.DiagCounts[k] != v {
			return false
		}
	}
	if (a.Coverage == nil) != (b.Coverage == nil) {
		return false
	}
	if a.Coverage != nil {
		if !bytes.Equal(a.Coverage.Actor, b.Coverage.Actor) ||
			!bytes.Equal(a.Coverage.Cond, b.Coverage.Cond) ||
			!bytes.Equal(a.Coverage.Dec, b.Coverage.Dec) ||
			!bytes.Equal(a.Coverage.MCDC, b.Coverage.MCDC) {
			return false
		}
	}
	return true
}
