package experiments

import (
	"fmt"
	"io"
	"time"
)

// FormatTable2 prints the rows in the paper's Table 2 layout.
func FormatTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: Comparison of simulation time (%d steps)\n", stepsOf(rows))
	fmt.Fprintf(w, "%-6s %10s %10s %10s %10s %10s | %8s %8s %8s %s\n",
		"Model", "AccMoS", "SSE", "SSEac", "SSErac", "compile",
		"vs SSE", "vs ac", "vs rac", "outputs")
	var gSSE, gAc, gRac float64
	for _, r := range rows {
		ok := "match"
		if !r.HashOK {
			ok = "MISMATCH"
		}
		fmt.Fprintf(w, "%-6s %10s %10s %10s %10s %10s | %7.1fx %7.1fx %7.1fx %s\n",
			r.Model, fmtDur(r.AccMoS), fmtDur(r.SSE), fmtDur(r.SSEac), fmtDur(r.SSErac), fmtDur(r.Compile),
			r.SpeedupSSE, r.SpeedupAc, r.SpeedupRac, ok)
		gSSE += r.SpeedupSSE
		gAc += r.SpeedupAc
		gRac += r.SpeedupRac
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(w, "%-6s %54s | %7.1fx %7.1fx %7.1fx  (paper: 215.3x / 76.3x / 19.8x)\n",
			"mean", "", gSSE/n, gAc/n, gRac/n)
	}
}

// FormatRemoteTable2 prints the daemon-driven Table 2 variant: each
// model submitted twice to a running accmosd, proving the second
// request's latency excludes the compile.
func FormatRemoteTable2(w io.Writer, rows []RemoteRow) {
	fmt.Fprintln(w, "Table 2 (remote): cross-request compile amortization via accmosd")
	fmt.Fprintf(w, "%-6s %10s %12s %12s | %10s %12s %12s %6s\n",
		"Model", "steps", "cold", "cold cmpl", "warm", "warm cmpl", "amortized", "hit")
	for _, r := range rows {
		saved := r.Cold - r.Warm
		fmt.Fprintf(w, "%-6s %10d %12s %12s | %10s %12s %12s %6v\n",
			r.Model, r.Steps, fmtDur(r.Cold), fmtDur(r.ColdCompile),
			fmtDur(r.Warm), fmtDur(r.WarmCompile), fmtDur(saved), r.WarmHit)
	}
}

func stepsOf(rows []Table2Row) int64 {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Steps
}

// FormatTable3 prints the coverage comparison in the paper's Table 3
// layout: one line per (model, budget) with the four metrics for both
// engines.
func FormatTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Coverage of AccMoS and SSE within equal time budgets")
	fmt.Fprintf(w, "%-6s %8s | %-15s %-15s %-15s %-15s | %12s %12s\n",
		"Model", "Budget", "Actor (A/S)", "Cond (A/S)", "Dec (A/S)", "MC/DC (A/S)", "A steps", "S steps")
	for _, r := range rows {
		pair := func(a, s float64) string { return fmt.Sprintf("%5.1f%% /%5.1f%%", a, s) }
		fmt.Fprintf(w, "%-6s %8s | %s %s %s %s | %12d %12d\n",
			r.Model, fmtDur(r.Budget),
			pair(r.AccMoS.Report.Actor, r.SSE.Report.Actor),
			pair(r.AccMoS.Report.Cond, r.SSE.Report.Cond),
			pair(r.AccMoS.Report.Dec, r.SSE.Report.Dec),
			pair(r.AccMoS.Report.MCDC, r.SSE.Report.MCDC),
			r.AccMoS.Steps, r.SSE.Steps)
	}
}

// FormatOpt prints the optimizer benchmark: O0/O1/O2 wall clock per
// (shape, engine) with the actor reduction, the O2 fusion report, the
// equivalence verdict and the aggregate O2 gate row.
func FormatOpt(w io.Writer, rows []OptRow) {
	fmt.Fprintln(w, "Optimizing middle-end: O0 vs O1 vs O2 wall clock (uninstrumented timing runs)")
	fmt.Fprintf(w, "%-6s %-7s %10s | %10s %10s %10s | %7s %7s | %9s %9s %9s | %s\n",
		"Model", "Engine", "actors", "O0", "O1", "O2", "O0/O1", "O1/O2",
		"ns/a O0", "ns/a O1", "ns/a O2", "oracle")
	perModel := make(map[string]bool)
	for _, r := range rows {
		ok := "match"
		if !r.EquivOK {
			ok = "MISMATCH"
		}
		if r.Model == "TOTAL" {
			bar := "BELOW BAR"
			if r.SpeedupOK {
				bar = "ok (geomean >= 1.3x over O2-sensitive shapes, all oracles match)"
			}
			fmt.Fprintf(w, "%-6s %-7s %10s | %10s %10s %10s | %7s %6.2fx | %s\n",
				"total", r.Engine, "", "", "", "", "", r.SpeedupO2, bar)
			continue
		}
		fmt.Fprintf(w, "%-6s %-7s %4d->%-4d | %10s %10s %10s | %6.1fx %6.1fx | %9.1f %9.1f %9.1f | %s\n",
			r.Model, r.Engine, r.ActorsBefore, r.ActorsAfter,
			fmtDur(r.O0), fmtDur(r.O1), fmtDur(r.O2), r.Speedup, r.SpeedupO2,
			r.NsPerActorStepO0, r.NsPerActorStepO1, r.NsPerActorStepO2, ok)
		if !perModel[r.Model] {
			perModel[r.Model] = true
			fmt.Fprintf(w, "%-6s   lower: %d fused, %d hoisted, %d narrowed -> %d effective actors\n",
				"", r.FusedExprs, r.HoistedExprs, r.NarrowedSignals, r.ActorsEffective)
		}
	}
}

// FormatServe prints the worker-pool benchmark: spawn-per-run vs pooled
// wall clock for the same short-horizon sweep, with the pool counters and
// the bit-identity verdict.
func FormatServe(w io.Writer, rows []ServeRow) {
	fmt.Fprintln(w, "Worker pool: spawn-per-run vs warm serve-mode workers (sequential sweep)")
	fmt.Fprintf(w, "%-6s %5s %7s | %10s %10s %8s | %7s %7s | %s\n",
		"Model", "runs", "steps", "spawn", "pooled", "speedup", "spawns", "reuses", "outputs")
	var sum float64
	var n int
	for _, r := range rows {
		if r.Mode != "pooled" {
			continue
		}
		ok := "match"
		if !r.HashOK {
			ok = "MISMATCH"
		}
		var spawnWall time.Duration
		for _, s := range rows {
			if s.Model == r.Model && s.Mode == "spawn" {
				spawnWall = s.Wall
			}
		}
		fmt.Fprintf(w, "%-6s %5d %7d | %10s %10s %7.1fx | %7d %7d | %s\n",
			r.Model, r.Runs, r.Steps, fmtDur(spawnWall), fmtDur(r.Wall), r.Speedup,
			r.Spawns, r.Reuses, ok)
		sum += r.Speedup
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "%-6s %36s %7.1fx\n", "mean", "", sum/float64(n))
	}
}

// FormatBatch prints the batched lane-execution benchmark: one line per
// (model, suite size) with both modes' wall clocks, the speedup, and the
// bit-identity verdict.
func FormatBatch(w io.Writer, rows []BatchRow) {
	fmt.Fprintln(w, "Batched lanes: per-run serve frames vs one lane-vectorized request (one warm worker)")
	fmt.Fprintf(w, "%-6s %5s %7s | %10s %10s %8s | %s\n",
		"Model", "lanes", "steps", "pooled", "batch", "speedup", "outputs")
	for _, r := range rows {
		if r.Mode != "batch" {
			continue
		}
		ok := "match"
		if !r.HashOK {
			ok = "MISMATCH"
		}
		if r.Model == "TOTAL" {
			bar := "BELOW BAR"
			if r.SpeedupOK {
				bar = "ok (>=5x, all outputs match)"
			}
			fmt.Fprintf(w, "%-6s %13s | %10s %10s %7.1fx | %s\n",
				"total", "", "", fmtDur(r.Wall), r.Speedup, bar)
			continue
		}
		var pooledWall time.Duration
		for _, s := range rows {
			if s.Model == r.Model && s.Runs == r.Runs && s.Mode == "pooled" {
				pooledWall = s.Wall
			}
		}
		fmt.Fprintf(w, "%-6s %5d %7d | %10s %10s %7.1fx | %s\n",
			r.Model, r.Runs, r.Steps, fmtDur(pooledWall), fmtDur(r.Wall), r.Speedup, ok)
	}
}

// FormatPartition prints the pipelined step-loop benchmark: one line per
// (shape, width) with the sequential baseline, the cut's shape, the
// speedup and the bit-identity verdict, then the aggregate gate row.
func FormatPartition(w io.Writer, rows []PartitionRow) {
	fmt.Fprintln(w, "Partitioned step loop: sequential vs K-way goroutine pipeline (generated engine)")
	fmt.Fprintf(w, "%-6s %5s %7s | %10s %10s %8s | %4s %7s | %s\n",
		"Model", "K", "steps", "seq", "pipelined", "speedup", "cut", "balance", "outputs")
	seqWall := make(map[string]time.Duration)
	var cpus int
	for _, r := range rows {
		cpus = r.CPUs
		if r.Partitions == 1 {
			seqWall[r.Model] = r.Wall
			continue
		}
		ok := "match"
		if !r.EquivOK {
			ok = "MISMATCH"
		}
		if r.Model == "TOTAL" {
			bar := "BELOW BAR"
			switch {
			case r.SpeedupOK && r.CPUs < 2:
				bar = "ok (single-core host: speedup vacuous, all outputs match)"
			case r.SpeedupOK:
				bar = "ok (geomean >= 1.5x, all outputs match)"
			case !r.EquivOK:
				bar = "MISMATCH"
			}
			fmt.Fprintf(w, "%-6s %13s | %10s %10s %7.2fx | %s\n",
				"total", "", "", "", r.Speedup, bar)
			continue
		}
		fmt.Fprintf(w, "%-6s %5d %7d | %10s %10s %7.2fx | %4d %7.2f | %s\n",
			r.Model, r.Partitions, r.Steps, fmtDur(seqWall[r.Model]), fmtDur(r.Wall),
			r.Speedup, r.CutEdges, r.Balance, ok)
	}
	fmt.Fprintf(w, "Pipeline stages share this host's %d core(s) — that bounds the speedup column.\n", cpus)
}

// FormatCaseStudy prints the §4 error-injection study.
func FormatCaseStudy(w io.Writer, r *CaseStudyResult) {
	fmt.Fprintf(w, "Case study: injected errors in CSEV (charge rate %d/step, predicted overflow at step %d)\n",
		r.ChargeRate, r.PredictedStep)
	fmt.Fprintf(w, "  error 1 (quantity wrap on overflow, long-horizon):\n")
	fmt.Fprintf(w, "    AccMoS: detected at step %d in %s (+ compile %s)\n",
		r.OverflowAccMoS.Step, fmtDur(r.OverflowAccMoS.Wall), fmtDur(r.OverflowAccMoS.Compile))
	fmt.Fprintf(w, "    SSE:    detected at step %d in %s\n", r.OverflowSSE.Step, fmtDur(r.OverflowSSE.Wall))
	if r.OverflowAccMoS.Wall > 0 {
		red := 100 * (1 - float64(r.OverflowAccMoS.Wall)/float64(r.OverflowSSE.Wall))
		fmt.Fprintf(w, "    detection-time reduction: %.1f%% (paper: >99%%, 450.14s -> 0.74s)\n", red)
	}
	fmt.Fprintf(w, "  error 2 (charging-power downcast, immediate):\n")
	fmt.Fprintf(w, "    AccMoS: detected at step %d in %s (+ compile %s)\n",
		r.DowncastAccMoS.Step, fmtDur(r.DowncastAccMoS.Wall), fmtDur(r.DowncastAccMoS.Compile))
	fmt.Fprintf(w, "    SSE:    detected at step %d in %s (paper: both engines within 0.18-1.2s)\n",
		r.DowncastSSE.Step, fmtDur(r.DowncastSSE.Wall))
}

// FormatFigure1 prints the motivating measurement.
func FormatFigure1(w io.Writer, r *Figure1Result) {
	fmt.Fprintf(w, "Figure 1 motivation: overflow of the sample model (increment %d/step, detected at step %d)\n",
		r.Increment, r.DetectStep)
	fmt.Fprintf(w, "  SSE:    %s\n", fmtDur(r.SSE.Wall))
	fmt.Fprintf(w, "  AccMoS: %s (+ compile %s)\n", fmtDur(r.AccMoS.Wall), fmtDur(r.AccMoS.Compile))
	fmt.Fprintf(w, "  speedup: %.1fx (paper: 184.74s vs 0.37s, ~500x)\n", r.SpeedupWall)
}

func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
