package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Experiment tests use miniature scales: the goal is exercising the full
// pipelines (generation, compilation, four engines, reporting), not
// producing meaningful timings.

func TestTable2Small(t *testing.T) {
	rows, err := Table2(Config{
		Steps:  2000,
		Models: []string{"SPV", "CSEV"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.HashOK {
			t.Errorf("%s: engines disagree on outputs", r.Model)
		}
		if r.AccMoS <= 0 || r.SSE <= 0 || r.SSEac <= 0 || r.SSErac <= 0 {
			t.Errorf("%s: missing timings %+v", r.Model, r)
		}
		if r.SpeedupSSE <= 1 {
			t.Errorf("%s: AccMoS slower than SSE (%.2fx) — the headline result must hold even at small scale",
				r.Model, r.SpeedupSSE)
		}
	}
	var buf bytes.Buffer
	FormatTable2(&buf, rows)
	if !strings.Contains(buf.String(), "SPV") || !strings.Contains(buf.String(), "mean") {
		t.Errorf("formatted table incomplete:\n%s", buf.String())
	}
}

func TestTable3Small(t *testing.T) {
	rows, err := Table3(Config{
		Budgets: []time.Duration{50 * time.Millisecond},
		Models:  []string{"SPV"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.AccMoS.Steps == 0 || r.SSE.Steps == 0 {
		t.Fatalf("no steps executed: %+v", r)
	}
	if r.AccMoS.Steps <= r.SSE.Steps {
		t.Errorf("AccMoS executed %d steps vs SSE %d in the same budget; expected more",
			r.AccMoS.Steps, r.SSE.Steps)
	}
	if r.AccMoS.Report.Actor < r.SSE.Report.Actor {
		t.Errorf("AccMoS actor coverage %.1f%% below SSE %.1f%%",
			r.AccMoS.Report.Actor, r.SSE.Report.Actor)
	}
	var buf bytes.Buffer
	FormatTable3(&buf, rows)
	if !strings.Contains(buf.String(), "SPV") {
		t.Errorf("formatted table incomplete:\n%s", buf.String())
	}
}

func TestCaseStudySmall(t *testing.T) {
	res, err := CaseStudy(Config{ChargeRate: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverflowAccMoS.Step < 0 || res.OverflowSSE.Step < 0 {
		t.Fatalf("overflow not detected: %+v", res)
	}
	if res.OverflowAccMoS.Step != res.OverflowSSE.Step {
		t.Errorf("engines disagree on overflow step: AccMoS %d vs SSE %d",
			res.OverflowAccMoS.Step, res.OverflowSSE.Step)
	}
	if got, want := res.OverflowAccMoS.Step, res.PredictedStep; got < want-2 || got > want+2 {
		t.Errorf("overflow step %d, predicted %d", got, want)
	}
	if res.DowncastAccMoS.Step != 0 || res.DowncastSSE.Step != 0 {
		t.Errorf("downcast must be immediate: AccMoS %d SSE %d",
			res.DowncastAccMoS.Step, res.DowncastSSE.Step)
	}
	var buf bytes.Buffer
	FormatCaseStudy(&buf, res)
	if !strings.Contains(buf.String(), "error 1") {
		t.Errorf("formatted case study incomplete:\n%s", buf.String())
	}
}

func TestFigure1Small(t *testing.T) {
	res, err := Figure1(Config{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.SSE.Step != res.AccMoS.Step || res.SSE.Step < 0 {
		t.Fatalf("detection steps: SSE %d AccMoS %d", res.SSE.Step, res.AccMoS.Step)
	}
	want := int64(1) << 31 / (2 * 100_000)
	if res.DetectStep < want-2 || res.DetectStep > want+2 {
		t.Errorf("detect step %d, want ~%d", res.DetectStep, want)
	}
	var buf bytes.Buffer
	FormatFigure1(&buf, res)
	if !strings.Contains(buf.String(), "speedup") {
		t.Errorf("formatted figure incomplete:\n%s", buf.String())
	}
}
