package experiments

import (
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"time"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/codegen"
	"accmos/internal/harness"
	"accmos/internal/opt/partition"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
)

// PartitionRow is one (shape, K) measurement of the pipelined step loop:
// the same generated model run sequentially (Partitions 1, the baseline)
// and through a K-way goroutine pipeline. The row with Model "TOTAL" is
// the aggregate gate: geomean sequential-over-partitioned speedup across
// every partitioned row, vacuously passing on hosts that cannot overlap
// anything (see CPUs).
type PartitionRow struct {
	Model string
	Steps int64

	// Partitions is the usable cut width this row ran at (1 = the
	// sequential baseline row). CutEdges and Balance describe the cut:
	// how many signals cross a boundary, and max/mean partition cost.
	Partitions int
	CutEdges   int
	Balance    float64

	Wall    time.Duration
	Compile time.Duration

	// Speedup is sequential wall over this row's wall (1.0 on the
	// baseline row by construction).
	Speedup float64

	// SpeedupOK is set on the TOTAL gate row: geomean speedup at or
	// above the bar — or CPUs < 2, which makes the wall-clock half of
	// the gate vacuous while the equivalence half still binds.
	SpeedupOK bool

	// EquivOK reports the partitioned-vs-sequential oracle for this row:
	// identical output hashes on the timing runs plus byte-identical
	// coverage bitmaps and diagnosis aggregates on a separate
	// instrumented pass.
	EquivOK bool

	// CPUs is the host's usable core count — the ceiling on any
	// pipeline speedup, recorded so the committed baseline says whether
	// its speedup column means anything.
	CPUs int
}

// partitionGeomeanBar is the aggregate acceptance bar on multi-core
// hosts: overlapping partitions must buy at least this much on the
// partition-sensitive shapes.
const partitionGeomeanBar = 1.5

// partitionWidths are the cut widths each shape is measured at.
var partitionWidths = []int{2, 4}

// BenchPartition measures the partition benchmark shapes sequentially
// and at each pipeline width. Timing runs are uninstrumented; a separate
// instrumented pass (coverage + diagnosis on, equivSteps) checks the
// bit-identity oracle so the committed baseline always asserts
// correctness even where a single-core host makes the speedup column
// meaningless.
func BenchPartition(cfg Config) ([]PartitionRow, error) {
	names := partitionBenchNames(cfg.Models)
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	cpus := runtime.NumCPU()
	var rows []PartitionRow
	for _, name := range names {
		m, err := benchmodels.BuildPart(name)
		if err != nil {
			return nil, err
		}
		c, err := actors.Compile(m)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		set := testcase.NewRandomSet(len(c.Inports), cfg.Seed, -100, 100)

		run := func(plan *partition.Plan, tag string) (*simresult.Results, time.Duration, error) {
			prog, err := codegen.Generate(c, codegen.Options{TestCases: set, Partition: plan})
			if err != nil {
				return nil, 0, fmt.Errorf("%s %s: %w", name, tag, err)
			}
			bin, compileTime, _, err := cfg.build(prog, filepath.Join(dir, name+"_"+tag))
			if err != nil {
				return nil, 0, err
			}
			res, err := harness.Run(bin, harness.RunOptions{Steps: cfg.Steps, Timeout: cfg.Timeout})
			if err != nil {
				return nil, 0, err
			}
			return res, compileTime, nil
		}

		seqRes, seqCompile, err := run(nil, "P1")
		if err != nil {
			return nil, err
		}
		rows = append(rows, PartitionRow{
			Model: name, Steps: cfg.Steps, Partitions: 1,
			Wall: time.Duration(seqRes.ExecNanos), Compile: seqCompile,
			Speedup: 1, EquivOK: true, CPUs: cpus,
		})

		for _, k := range partitionWidths {
			plan := partition.Build(c, k)
			if plan.Usable < 2 {
				return nil, fmt.Errorf("%s: no usable %d-way cut: %s", name, k, plan.Declined)
			}
			parRes, parCompile, err := run(plan, fmt.Sprintf("P%d", plan.Usable))
			if err != nil {
				return nil, err
			}
			equivOK := simresult.SameOutputs(seqRes, parRes)
			if equivOK {
				equivOK, err = cfg.partitionEquivalent(dir, name, c, set, plan)
				if err != nil {
					return nil, err
				}
			}
			row := PartitionRow{
				Model: name, Steps: cfg.Steps, Partitions: plan.Usable,
				CutEdges: plan.CutEdges, Balance: plan.Balance,
				Wall: time.Duration(parRes.ExecNanos), Compile: parCompile,
				Speedup: ratio(time.Duration(seqRes.ExecNanos), time.Duration(parRes.ExecNanos)),
				EquivOK: equivOK, CPUs: cpus,
			}
			cfg.logf("partition %s %d-way: %v vs %v (%.2fx), cut %d, balance %.2f",
				name, plan.Usable, time.Duration(seqRes.ExecNanos), row.Wall, row.Speedup, row.CutEdges, row.Balance)
			rows = append(rows, row)
		}
	}
	rows = append(rows, partitionGateRow(rows, cpus))
	return rows, nil
}

// partitionBenchNames restricts the partition shape suite to an explicit
// -models subset; an unrelated subset falls back to the full suite.
func partitionBenchNames(subset []string) []string {
	all := benchmodels.PartNames()
	if len(subset) == 0 {
		return all
	}
	want := make(map[string]bool, len(subset))
	for _, n := range subset {
		want[n] = true
	}
	var out []string
	for _, n := range all {
		if want[n] {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return all
	}
	return out
}

// partitionGateRow aggregates the partitioned rows into the TOTAL
// acceptance row: geomean speedup over every K >= 2 row. The speedup half
// of the verdict only binds on hosts with at least two cores — a pipeline
// on one core is a context-switch tax by construction — but the
// equivalence half binds everywhere.
func partitionGateRow(rows []PartitionRow, cpus int) PartitionRow {
	logSum, n, equiv := 0.0, 0, true
	for _, r := range rows {
		equiv = equiv && r.EquivOK
		if r.Partitions < 2 {
			continue
		}
		if r.Speedup > 0 {
			logSum += math.Log(r.Speedup)
			n++
		}
	}
	gate := PartitionRow{Model: "TOTAL", Partitions: 0, EquivOK: equiv, CPUs: cpus}
	if n > 0 {
		gate.Speedup = math.Exp(logSum / float64(n))
		gate.SpeedupOK = equiv && (cpus < 2 || gate.Speedup >= partitionGeomeanBar)
	}
	return gate
}

// partitionEquivalent runs the instrumented oracle for one (model, plan):
// coverage + diagnosis on, sequential vs pipelined generated programs,
// compared down to the coverage bitmap bytes.
func (cfg *Config) partitionEquivalent(dir, name string, c *actors.Compiled, set *testcase.Set, plan *partition.Plan) (bool, error) {
	run := func(p *partition.Plan, tag string) (*simresult.Results, error) {
		prog, err := codegen.Generate(c, codegen.Options{
			Coverage: true, Diagnose: true, TestCases: set, Partition: p,
		})
		if err != nil {
			return nil, err
		}
		bin, _, _, err := cfg.build(prog, filepath.Join(dir, name+"_eq_"+tag))
		if err != nil {
			return nil, err
		}
		return harness.Run(bin, harness.RunOptions{Steps: equivSteps, Timeout: cfg.Timeout})
	}
	seq, err := run(nil, "P1")
	if err != nil {
		return false, fmt.Errorf("%s partition equivalence: %w", name, err)
	}
	par, err := run(plan, fmt.Sprintf("P%d", plan.Usable))
	if err != nil {
		return false, fmt.Errorf("%s partition equivalence: %w", name, err)
	}
	return sameInstrumented(seq, par), nil
}
