package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"accmos/internal/benchmodels"
	"accmos/internal/server"
	"accmos/internal/slx"
)

// Client drives an accmosd daemon over its HTTP API — the experiment
// harness's remote mode. Where the in-process Table 2 amortizes compiles
// within one invocation, the client proves the daemon amortizes them
// ACROSS requests: two identical submissions, one compile.
type Client struct {
	// BaseURL roots the daemon's API, e.g. "http://localhost:7070".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Poll is the job-status polling interval (default 50 ms).
	Poll time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) poll() time.Duration {
	if c.Poll > 0 {
		return c.Poll
	}
	return 50 * time.Millisecond
}

// retryAttempts and the backoff bounds shape doRetry: ~6 tries spanning
// a few seconds, enough to ride out a daemon restart without turning a
// hard outage into a long hang.
const (
	retryAttempts = 6
	retryBase     = 100 * time.Millisecond
	retryMax      = 2 * time.Second
)

// isDialError reports a connection-level failure that happened before
// the request reached the daemon — connection refused, no route, DNS.
// Only these are retried: a request that may have been processed (e.g.
// a reset mid-response) is never resent, so a POST can't double-submit.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// doRetry issues the request built by build, retrying transient dial
// failures with capped exponential backoff. build is called per attempt
// so request bodies are fresh each time.
func (c *Client) doRetry(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	backoff := retryBase
	for attempt := 1; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			return resp, nil
		}
		if attempt >= retryAttempts || !isDialError(err) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, err
		case <-time.After(backoff):
		}
		if backoff < retryMax {
			backoff *= 2
			if backoff > retryMax {
				backoff = retryMax
			}
		}
	}
}

// Submit posts one job and returns its id.
func (c *Client) Submit(ctx context.Context, req server.SubmitRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("experiments: encoding submission: %w", err)
	}
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimSuffix(c.BaseURL, "/")+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		httpReq.Header.Set("Content-Type", "application/json")
		return httpReq, nil
	})
	if err != nil {
		return "", fmt.Errorf("experiments: submitting job: %w", err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("experiments: daemon refused job: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}
	var ack server.SubmitResponse
	if err := json.Unmarshal(payload, &ack); err != nil {
		return "", fmt.Errorf("experiments: decoding submit response: %w", err)
	}
	return ack.ID, nil
}

// Job fetches one job's current view.
func (c *Client) Job(ctx context.Context, id string) (*server.JobView, error) {
	resp, err := c.doRetry(ctx, func() (*http.Request, error) {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet,
			strings.TrimSuffix(c.BaseURL, "/")+"/v1/jobs/"+id, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		return httpReq, nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: polling job %s: %w", id, err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("experiments: job %s: %s: %s", id, resp.Status, strings.TrimSpace(string(payload)))
	}
	var view server.JobView
	if err := json.Unmarshal(payload, &view); err != nil {
		return nil, fmt.Errorf("experiments: decoding job %s: %w", id, err)
	}
	return &view, nil
}

// Wait polls until the job reaches a terminal state.
func (c *Client) Wait(ctx context.Context, id string) (*server.JobView, error) {
	ticker := time.NewTicker(c.poll())
	defer ticker.Stop()
	for {
		view, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if view.State.Terminal() {
			return view, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("experiments: waiting for job %s: %w", id, ctx.Err())
		case <-ticker.C:
		}
	}
}

// Run submits and waits.
func (c *Client) Run(ctx context.Context, req server.SubmitRequest) (*server.JobView, error) {
	id, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, id)
}

// RemoteRow is one model's cross-request amortization measurement: the
// same submission issued twice against the daemon. Cold pays the
// compile; Warm must hit the cache.
type RemoteRow struct {
	Model string
	Steps int64

	// Cold/Warm are end-to-end run spans (queue wait excluded).
	Cold, Warm time.Duration
	// ColdCompile/WarmCompile are the traced compile-phase spans: warm
	// must be ~zero, proving the second request's latency excludes the
	// compile entirely.
	ColdCompile, WarmCompile time.Duration
	// WarmHit reports the daemon's cache served the second submission.
	WarmHit bool
}

// RemoteTable2 drives the Table 2 benchmark set through a running accmosd
// daemon, submitting every model twice to prove cross-request compile
// amortization. Models are serialized to SLX and travel over the wire
// like any third-party submission would.
func RemoteTable2(ctx context.Context, cfg Config, baseURL string) ([]RemoteRow, error) {
	cfg.fillDefaults()
	client := &Client{BaseURL: baseURL}
	rows := make([]RemoteRow, 0, len(cfg.Models))
	for _, name := range cfg.Models {
		m, err := benchmodels.Build(name)
		if err != nil {
			return nil, err
		}
		var doc bytes.Buffer
		if err := slx.Encode(&doc, m); err != nil {
			return nil, fmt.Errorf("experiments: serializing %s: %w", name, err)
		}
		req := server.SubmitRequest{
			Model:    doc.String(),
			Steps:    cfg.Steps,
			Coverage: true,
			Diagnose: true,
			Seed:     cfg.Seed,
			Lo:       -100,
			Hi:       100,
		}
		if cfg.Timeout > 0 {
			req.TimeoutMS = cfg.Timeout.Milliseconds()
		}
		row := RemoteRow{Model: name, Steps: cfg.Steps}
		cold, err := client.Run(ctx, req)
		if err != nil {
			return nil, err
		}
		if cold.State != server.JobDone {
			return nil, fmt.Errorf("experiments: %s cold job %s: %s", name, cold.ID, cold.Error)
		}
		warm, err := client.Run(ctx, req)
		if err != nil {
			return nil, err
		}
		if warm.State != server.JobDone {
			return nil, fmt.Errorf("experiments: %s warm job %s: %s", name, warm.ID, warm.Error)
		}
		row.Cold = time.Duration(cold.RunNanos)
		row.Warm = time.Duration(warm.RunNanos)
		row.ColdCompile = time.Duration(cold.Phases["compile"])
		row.WarmCompile = time.Duration(warm.Phases["compile"])
		row.WarmHit = warm.CacheHit
		cfg.logf("remote table2 %s: cold %v (compile %v) warm %v (compile %v, hit %v)",
			name, row.Cold, row.ColdCompile, row.Warm, row.WarmCompile, row.WarmHit)
		rows = append(rows, row)
	}
	return rows, nil
}
