package experiments

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"accmos/internal/codegen"
	"accmos/internal/coverage"
	"accmos/internal/harness"
)

// BatchRow is one (model, suite size, mode) measurement from the batched
// lane-execution benchmark: the same short-horizon sweep executed as one
// per-run serve frame per seed through a warm worker, and as a single
// lane-vectorized batch request over the same worker. Per-lane stepping
// is identical in both modes, so the wall-clock gap is the per-run frame
// round-trip plus result encode/decode the batch entry point amortizes.
type BatchRow struct {
	Model string
	Mode  string // "pooled" | "batch"
	Runs  int    // suite size (lanes per batch request)
	Steps int64

	Wall    time.Duration // whole-sweep wall clock for this mode
	Compile time.Duration // one-time compile (shared by both modes)

	// Speedup is pooled-mode wall over batch wall; SpeedupOK reports the
	// batch sweep cleared the 5x acceptance bar AND was bit-identical
	// (set on batch rows). HashOK alone reports the per-seed output
	// hashes matched across modes.
	Speedup   float64
	SpeedupOK bool
	HashOK    bool
}

// batchSuites are the sweep widths measured: the small end shows batch
// still wins at modest fan-out, the large end is the Table-2 sweep-scale
// case where per-run framing dominates a short-horizon suite.
var batchSuites = []int{16, 256}

// batchMaxSteps caps the per-run horizon: batching amortizes per-run
// serve-frame round-trips, which are only a visible fraction of runs
// short enough that stepping does not dominate (stepping itself is
// identical work in both modes, so longer horizons only dilute the
// quantity under measurement).
const batchMaxSteps = 4

// batchSpeedupBar is the acceptance threshold: the aggregate sweep
// total (all models, both suite widths) must clear it. Per-row speedups
// wobble with scheduler noise on small suites; the committed claim is
// about the total, so that is what SpeedupOK asserts (on the TOTAL row)
// alongside every row's hash equivalence.
const batchSpeedupBar = 5.0

// BenchBatch measures lane-vectorized batch execution: each configured
// model is compiled once, then for each suite size the sweep executes
// twice over a single warm serve-mode worker — one serve frame per seed,
// and one batch request covering every seed — with per-seed output
// hashes compared across modes. The worker is warmed (spawned and
// exercised) before either clock starts and both modes run strictly
// sequentially on it, so the comparison isolates per-run framing
// overhead: request/response frames, per-run scheduling, and per-run
// result handling that one batch request amortizes across all lanes.
func BenchBatch(cfg Config) ([]BatchRow, error) {
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	steps := cfg.Steps
	if steps > batchMaxSteps {
		steps = batchMaxSteps
	}

	var rows []BatchRow
	var pooledTotal, batchTotal time.Duration
	allHashOK := true
	for _, name := range cfg.Models {
		p, err := cfg.prepare(name)
		if err != nil {
			return nil, err
		}
		prog, err := codegen.Generate(p.c, codegen.Options{Coverage: true, TestCases: p.set})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		bin, compileTime, _, err := cfg.build(prog, dir)
		if err != nil {
			return nil, err
		}

		pool := harness.NewWorkerPool(1)
		for _, runs := range batchSuites {
			seeds := make([]uint64, runs)
			for i := range seeds {
				seeds[i] = cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
			}
			ro := harness.RunOptions{Steps: steps, Model: name, Timeout: cfg.Timeout}

			// Warm the worker outside both clocks: the one-time process
			// spawn is the serve pool's amortization (measured by the
			// serve benchmark), not the per-run framing measured here.
			warm := ro
			warm.SeedXor = seeds[0]
			if _, _, err := pool.RunContext(context.Background(), bin, warm); err != nil {
				pool.Close()
				return nil, fmt.Errorf("%s warmup: %w", name, err)
			}

			// Per-run baseline: one serve frame per seed on the warm
			// worker, sequentially.
			hashes := make([]uint64, runs)
			pooledCov := prog.Layout.NewRaw()
			start := time.Now()
			for i, seed := range seeds {
				o := ro
				o.SeedXor = seed
				res, _, err := pool.RunContext(context.Background(), bin, o)
				if err != nil {
					pool.Close()
					return nil, fmt.Errorf("%s pooled run %d: %w", name, i+1, err)
				}
				hashes[i] = res.OutputHash
				// Merge per-run coverage inside the clock: the real
				// pooled sweep path folds every run's bitmaps too.
				if res.Coverage != nil {
					if err := pooledCov.Merge(res.Coverage); err != nil {
						pool.Close()
						return nil, fmt.Errorf("%s pooled coverage merge: %w", name, err)
					}
				}
			}
			pooledWall := time.Since(start)

			// Batch: the whole sweep as one lane-vectorized request on
			// the same warm worker. A batch request covers runs x steps
			// of stepping, so the per-run timeout scales with the lane
			// count.
			bo := ro
			if bo.Timeout > 0 {
				bo.Timeout *= time.Duration(runs)
			}
			start = time.Now()
			lanes, cov, _, err := pool.RunBatch(context.Background(), bin, bo, seeds)
			batchWall := time.Since(start)
			if err != nil {
				pool.Close()
				return nil, fmt.Errorf("%s batch (%d lanes): %w", name, runs, err)
			}

			hashOK := len(lanes) == runs && sameCoverage(pooledCov, cov)
			for i := range lanes {
				if lanes[i].OutputHash != hashes[i] {
					hashOK = false
				}
			}
			speedup := ratio(pooledWall, batchWall)
			pooledTotal += pooledWall
			batchTotal += batchWall
			allHashOK = allHashOK && hashOK
			rows = append(rows,
				BatchRow{
					Model: name, Mode: "pooled", Runs: runs, Steps: steps,
					Wall: pooledWall, Compile: compileTime, HashOK: hashOK,
				},
				BatchRow{
					Model: name, Mode: "batch", Runs: runs, Steps: steps,
					Wall: batchWall, Compile: compileTime, HashOK: hashOK,
					Speedup: speedup,
				})
			cfg.logf("batch %s x%d: pooled %v batch %v (%.1fx)",
				name, runs, pooledWall, batchWall, speedup)
		}
		pool.Close()
	}
	total := ratio(pooledTotal, batchTotal)
	rows = append(rows, BatchRow{
		Model: "TOTAL", Mode: "batch", Steps: steps,
		Wall: batchTotal, HashOK: allHashOK,
		Speedup: total, SpeedupOK: total >= batchSpeedupBar && allHashOK,
	})
	return rows, nil
}

// sameCoverage reports whether two raw coverage records mark exactly
// the same points — the batch OR-merge oracle: one merged section from
// the lane-vectorized run must equal the fold of every sequential run.
func sameCoverage(a, b *coverage.Raw) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return bytes.Equal(a.Actor, b.Actor) && bytes.Equal(a.Cond, b.Cond) &&
		bytes.Equal(a.Dec, b.Dec) && bytes.Equal(a.MCDC, b.MCDC)
}
