package experiments

import (
	"context"
	"fmt"
	"time"

	"accmos/internal/codegen"
	"accmos/internal/harness"
)

// ServeRow is one (model, mode) measurement from the worker-pool
// benchmark: the same short-horizon sweep executed spawn-per-run and
// through a warm serve-mode worker. Per-run simulation work is identical
// in both modes, so the wall-clock gap is exactly the process startup the
// pool amortizes.
type ServeRow struct {
	Model string
	Mode  string // "spawn" | "pooled"
	Runs  int
	Steps int64

	Wall    time.Duration // whole-sweep wall clock for this mode
	Compile time.Duration // one-time compile (shared by both modes)

	// Pool counters (pooled rows only).
	Spawns, Reuses, Respawns int64

	// Speedup is spawn-mode wall over pooled wall; SpeedupOK reports the
	// pooled sweep was strictly faster AND bit-identical (set on pooled
	// rows). HashOK alone reports the per-seed output hashes matched.
	Speedup   float64
	SpeedupOK bool
	HashOK    bool
}

// serveRuns is the sweep width of the worker-pool benchmark: enough runs
// that one process startup per run dominates a short-horizon sweep.
const serveRuns = 16

// serveMaxSteps caps the per-run horizon: the benchmark measures startup
// amortization, which only shows on runs short enough that fork+exec is a
// visible fraction of each run.
const serveMaxSteps = 10_000

// BenchServe measures the warm worker pool: each configured model is
// compiled once, then a serveRuns-seed sweep executes twice — spawning a
// fresh process per run, and through one warm serve-mode worker — with
// per-seed output hashes compared across modes. Both modes run strictly
// sequentially, so the comparison isolates process startup.
func BenchServe(cfg Config) ([]ServeRow, error) {
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	steps := cfg.Steps
	if steps > serveMaxSteps {
		steps = serveMaxSteps
	}
	seeds := make([]uint64, serveRuns)
	for i := range seeds {
		seeds[i] = cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
	}

	var rows []ServeRow
	for _, name := range cfg.Models {
		p, err := cfg.prepare(name)
		if err != nil {
			return nil, err
		}
		prog, err := codegen.Generate(p.c, codegen.Options{Coverage: true, TestCases: p.set})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		bin, compileTime, _, err := cfg.build(prog, dir)
		if err != nil {
			return nil, err
		}

		ro := func(seed uint64) harness.RunOptions {
			return harness.RunOptions{Steps: steps, SeedXor: seed, Model: name, Timeout: cfg.Timeout}
		}

		spawnHashes := make([]uint64, len(seeds))
		start := time.Now()
		for i, seed := range seeds {
			res, err := harness.Run(bin, ro(seed))
			if err != nil {
				return nil, fmt.Errorf("%s spawn run %d: %w", name, i+1, err)
			}
			spawnHashes[i] = res.OutputHash
		}
		spawnWall := time.Since(start)

		pool := harness.NewWorkerPool(1)
		hashOK := true
		start = time.Now()
		for i, seed := range seeds {
			res, _, err := pool.RunContext(context.Background(), bin, ro(seed))
			if err != nil {
				pool.Close()
				return nil, fmt.Errorf("%s pooled run %d: %w", name, i+1, err)
			}
			if res.OutputHash != spawnHashes[i] {
				hashOK = false
			}
		}
		pooledWall := time.Since(start)
		st := pool.Stats()
		pool.Close()

		speedup := ratio(spawnWall, pooledWall)
		rows = append(rows,
			ServeRow{
				Model: name, Mode: "spawn", Runs: len(seeds), Steps: steps,
				Wall: spawnWall, Compile: compileTime, HashOK: hashOK,
			},
			ServeRow{
				Model: name, Mode: "pooled", Runs: len(seeds), Steps: steps,
				Wall: pooledWall, Compile: compileTime,
				Spawns: st.Spawns, Reuses: st.Reuses, Respawns: st.Respawns,
				Speedup: speedup, SpeedupOK: speedup > 1 && hashOK, HashOK: hashOK,
			})
		cfg.logf("serve %s: spawn %v pooled %v (%.1fx, %d reuses)",
			name, spawnWall, pooledWall, speedup, st.Reuses)
	}
	return rows, nil
}
