package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"accmos/internal/coverage"
	"accmos/internal/obs"
)

func TestMetricsConversion(t *testing.T) {
	m := NewMetrics(Config{Steps: 1000, Seed: 7})
	if m.Schema != MetricsSchema || m.Steps != 1000 || m.Seed != 7 {
		t.Fatalf("document header: %+v", m)
	}
	m.AddTable2([]Table2Row{{
		Model: "SPV", Steps: 1000,
		AccMoS: 2 * time.Millisecond, Compile: 80 * time.Millisecond,
		SSE: 200 * time.Millisecond, SSEac: 20 * time.Millisecond, SSErac: 4 * time.Millisecond,
		HashOK:         true,
		AccMoSTimeline: []obs.Snapshot{{Steps: 500}, {Steps: 1000, Final: true}},
	}})
	m.AddTable3([]Table3Row{{
		Model: "SPV", Budget: 500 * time.Millisecond,
		AccMoS: Table3Cell{Steps: 9000, Report: coverage.Report{Actor: 100}},
		SSE:    Table3Cell{Steps: 300, Report: coverage.Report{Actor: 40}},
	}})
	if len(m.Rows) != 6 {
		t.Fatalf("want 4 table2 + 2 table3 rows, got %d", len(m.Rows))
	}
	acc := m.Rows[0]
	if acc.Engine != "AccMoS" || acc.CompileNanos != (80*time.Millisecond).Nanoseconds() {
		t.Errorf("AccMoS row: %+v", acc)
	}
	if acc.StepsPerSec != 500_000 {
		t.Errorf("steps/sec: %v", acc.StepsPerSec)
	}
	if acc.HashOK == nil || !*acc.HashOK || len(acc.Timeline) != 2 {
		t.Errorf("AccMoS row lost timeline or hash check: %+v", acc)
	}
	t3 := m.Rows[4]
	if t3.Experiment != "table3" || t3.Coverage == nil || t3.Coverage.Actor != 100 {
		t.Errorf("table3 row: %+v", t3)
	}
	if t3.BudgetNanos != (500 * time.Millisecond).Nanoseconds() {
		t.Errorf("table3 budget: %v", t3.BudgetNanos)
	}
}

func TestMetricsWriteFile(t *testing.T) {
	m := NewMetrics(Config{Steps: 10})
	m.AddTable2([]Table2Row{{Model: "X", Steps: 10, AccMoS: time.Millisecond}})
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Metrics
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("written metrics are not valid JSON: %v", err)
	}
	if decoded.Schema != MetricsSchema || len(decoded.Rows) != 4 {
		t.Errorf("round trip: %+v", decoded)
	}
	if b[len(b)-1] != '\n' {
		t.Error("file should end with a newline")
	}
}
