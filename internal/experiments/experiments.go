// Package experiments reproduces the paper's evaluation (§4): Table 2
// (simulation time of AccMoS vs SSE, SSE Accelerator and SSE Rapid
// Accelerator on the ten benchmark models), Table 3 (coverage achieved by
// AccMoS vs SSE within equal wall-clock budgets), the error-injection case
// study on CSEV, and the Figure-1 motivating measurement. Step counts and
// budgets are scaled by configuration — the paper uses 50 M steps and
// 5/15/60 s budgets; defaults here are laptop-scale with the same shape.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"accmos/internal/actors"
	"accmos/internal/benchmodels"
	"accmos/internal/codegen"
	"accmos/internal/coverage"
	"accmos/internal/diagnose"
	"accmos/internal/harness"
	"accmos/internal/interp"
	"accmos/internal/obs"
	"accmos/internal/rapid"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
)

// Config controls experiment scale.
type Config struct {
	// Steps is the Table 2 simulation length (paper: 50_000_000).
	Steps int64
	// Budgets are the Table 3 wall-clock budgets (paper: 5s, 15s, 60s).
	Budgets []time.Duration
	// Models restricts the benchmark set (default: all ten).
	Models []string
	// WorkDir holds generated programs and binaries (default: temp dir).
	WorkDir string
	// Seed drives test-case generation.
	Seed uint64
	// ChargeRate tunes how long the case-study overflow stays latent.
	ChargeRate int64
	// Verbose prints progress to stderr.
	Verbose bool
	// Heartbeat, when positive, records coverage-over-time timelines for
	// the instrumented engines at this interval (generated-binary NDJSON
	// heartbeats for AccMoS, step-loop ticks for SSE) — the raw material
	// of the -metrics-json coverage timeline.
	Heartbeat time.Duration
	// Parallel runs this many benchmark-model rows concurrently in
	// Table2/Table3 (default 1, sequential — concurrent rows contend for
	// cores and shift absolute timings, so parallelism is opt-in for
	// smoke runs and CI, not paper-grade measurement).
	Parallel int
	// Timeout kills any generated-binary execution exceeding this
	// wall-clock deadline (0 = none), so one wedged model cannot hang a
	// whole experiment batch.
	Timeout time.Duration
}

func (c *Config) fillDefaults() {
	if c.Steps == 0 {
		c.Steps = 20_000
	}
	if len(c.Budgets) == 0 {
		c.Budgets = []time.Duration{200 * time.Millisecond, 600 * time.Millisecond, 2400 * time.Millisecond}
	}
	if len(c.Models) == 0 {
		c.Models = benchmodels.Names()
	}
	if c.Seed == 0 {
		c.Seed = 2024
	}
	if c.ChargeRate == 0 {
		c.ChargeRate = 10_000
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
}

// build compiles prog through the process-wide binary cache — so e.g.
// Table 3 reuses Table 2's binaries within one invocation, and the hit is
// reported in the metrics — unless the caller pinned a WorkDir for
// inspectable artifacts, which always gets a fresh build under dir.
func (c *Config) build(prog *codegen.Program, dir string) (bin string, compileTime time.Duration, hit bool, err error) {
	if c.WorkDir != "" {
		bin, compileTime, err = harness.Build(prog, dir)
		return bin, compileTime, false, err
	}
	return harness.DefaultCache.Build(prog, nil)
}

// runRows executes fn(0..n-1) with bounded parallelism, leaving callers'
// index-addressed row slices in deterministic order; the first error wins
// and the remaining rows are skipped. parallel <= 1 is a plain loop so
// sequential timing runs stay uncontended.
func runRows(n, parallel int, fn func(i int) error) error {
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if parallel > n {
		parallel = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				mu.Lock()
				failed := firstErr != nil
				mu.Unlock()
				if failed {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

func (c *Config) logf(format string, args ...interface{}) {
	if c.Verbose {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

func (c *Config) workDir() (string, func(), error) {
	if c.WorkDir != "" {
		return c.WorkDir, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "accmos-exp-")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// prepared bundles everything needed to run one benchmark model on all
// four engines.
type prepared struct {
	name string
	c    *actors.Compiled
	set  *testcase.Set
}

func (cfg *Config) prepare(name string) (*prepared, error) {
	m, err := benchmodels.Build(name)
	if err != nil {
		return nil, err
	}
	c, err := actors.Compile(m)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	set := testcase.NewRandomSet(len(c.Inports), cfg.Seed, -100, 100)
	return &prepared{name: name, c: c, set: set}, nil
}

// Table2Row is one line of the simulation-time comparison.
type Table2Row struct {
	Model   string
	Steps   int64
	AccMoS  time.Duration // execution time of the generated binary
	Compile time.Duration // one-time code generation + compilation
	SSE     time.Duration
	SSEac   time.Duration
	SSErac  time.Duration

	SpeedupSSE float64 // SSE / AccMoS
	SpeedupAc  float64
	SpeedupRac float64

	HashOK bool // all four engines produced the same output stream

	// CacheHit reports that the generated binary came from the build
	// cache (Compile is then the original build's amortised cost).
	CacheHit bool

	// Coverage-over-time timelines, recorded when Config.Heartbeat > 0.
	AccMoSTimeline []obs.Snapshot
	SSETimeline    []obs.Snapshot
}

// Table2 measures simulation time on every configured model. Rows are
// computed concurrently when Config.Parallel > 1; the row order (and each
// row's engine sequence) is identical to the sequential run.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	rows := make([]Table2Row, len(cfg.Models))
	err = runRows(len(cfg.Models), cfg.Parallel, func(i int) error {
		name := cfg.Models[i]
		p, err := cfg.prepare(name)
		if err != nil {
			return err
		}
		row := Table2Row{Model: name, Steps: cfg.Steps}

		// AccMoS: generate, compile (cached), execute with full
		// instrumentation.
		prog, err := codegen.Generate(p.c, codegen.Options{
			Coverage: true, Diagnose: true, TestCases: p.set,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		bin, compileTime, hit, err := cfg.build(prog, filepath.Join(dir, name))
		if err != nil {
			return err
		}
		row.Compile = compileTime
		row.CacheHit = hit
		accRes, err := harness.Run(bin, harness.RunOptions{
			Steps: cfg.Steps, Timeout: cfg.Timeout, Heartbeat: cfg.Heartbeat,
		})
		if err != nil {
			return err
		}
		row.AccMoS = time.Duration(accRes.ExecNanos)
		row.AccMoSTimeline = accRes.Timeline
		cfg.logf("table2 %s: AccMoS %v (compile %v, cached %v)", name, row.AccMoS, compileTime, hit)

		// SSE: full-service interpreter.
		sse, err := interp.New(p.c, interp.Options{
			Coverage: true, Diagnose: true, ProgressEvery: cfg.Heartbeat,
		})
		if err != nil {
			return err
		}
		sseRes, err := sse.Run(p.set, cfg.Steps)
		if err != nil {
			return err
		}
		row.SSE = time.Duration(sseRes.ExecNanos)
		row.SSETimeline = sseRes.Timeline
		cfg.logf("table2 %s: SSE %v", name, row.SSE)

		// SSE Accelerator mode.
		ac, err := interp.NewAccel(p.c)
		if err != nil {
			return err
		}
		acRes, err := ac.Run(p.set, cfg.Steps)
		if err != nil {
			return err
		}
		row.SSEac = time.Duration(acRes.ExecNanos)

		// SSE Rapid Accelerator mode.
		rc, err := rapid.New(p.c)
		if err != nil {
			return err
		}
		rcRes, err := rc.Run(p.set, cfg.Steps)
		if err != nil {
			return err
		}
		row.SSErac = time.Duration(rcRes.ExecNanos)
		cfg.logf("table2 %s: ac %v rac %v", name, row.SSEac, row.SSErac)

		row.HashOK = simresult.SameOutputs(accRes, sseRes) &&
			simresult.SameOutputs(accRes, acRes) &&
			simresult.SameOutputs(accRes, rcRes)
		row.SpeedupSSE = ratio(row.SSE, row.AccMoS)
		row.SpeedupAc = ratio(row.SSEac, row.AccMoS)
		row.SpeedupRac = ratio(row.SSErac, row.AccMoS)
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Table3Cell is the coverage achieved by one engine within one budget.
type Table3Cell struct {
	Steps  int64
	Report coverage.Report
}

// Table3Row compares coverage of AccMoS and SSE at one budget.
type Table3Row struct {
	Model  string
	Budget time.Duration
	AccMoS Table3Cell
	SSE    Table3Cell
}

// Table3 measures coverage within equal wall-clock budgets, using random
// test cases as the paper does. Budgets bound execution; AccMoS's one-time
// compilation is not charged against the budget (reported separately in
// Table 2).
func Table3(cfg Config) ([]Table3Row, error) {
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	rows := make([]Table3Row, len(cfg.Models)*len(cfg.Budgets))
	err = runRows(len(cfg.Models), cfg.Parallel, func(i int) error {
		name := cfg.Models[i]
		p, err := cfg.prepare(name)
		if err != nil {
			return err
		}
		layout := coverage.NewLayout(p.c)
		prog, err := codegen.Generate(p.c, codegen.Options{
			Coverage: true, Diagnose: true, TestCases: p.set,
		})
		if err != nil {
			return err
		}
		bin, _, _, err := cfg.build(prog, filepath.Join(dir, name))
		if err != nil {
			return err
		}
		sse, err := interp.New(p.c, interp.Options{Coverage: true, Diagnose: true})
		if err != nil {
			return err
		}
		for j, budget := range cfg.Budgets {
			row := Table3Row{Model: name, Budget: budget}
			accRes, err := harness.Run(bin, harness.RunOptions{Budget: budget, Timeout: cfg.Timeout})
			if err != nil {
				return err
			}
			row.AccMoS = Table3Cell{Steps: accRes.Steps, Report: layout.Report(accRes.Coverage)}
			sseRes, err := sse.RunFor(p.set, budget)
			if err != nil {
				return err
			}
			row.SSE = Table3Cell{Steps: sseRes.Steps, Report: layout.Report(sseRes.Coverage)}
			cfg.logf("table3 %s @%v: AccMoS %d steps / SSE %d steps", name, budget, accRes.Steps, sseRes.Steps)
			rows[i*len(cfg.Budgets)+j] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Detection describes one engine's detection of an injected error.
type Detection struct {
	Step    int64         // first step the diagnosis fired (-1 = not found)
	Wall    time.Duration // wall-clock simulation time until detection
	Compile time.Duration // AccMoS only
}

// CaseStudyResult reproduces the §4 error-injection study.
type CaseStudyResult struct {
	ChargeRate     int64
	PredictedStep  int64 // analytic overflow step of the quantity store
	OverflowAccMoS Detection
	OverflowSSE    Detection
	DowncastAccMoS Detection
	DowncastSSE    Detection
}

// CaseStudy injects the two CSEV errors and measures detection latency.
func CaseStudy(cfg Config) (*CaseStudyResult, error) {
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	m := benchmodels.CSEVInjected(cfg.ChargeRate)
	c, err := actors.Compile(m)
	if err != nil {
		return nil, err
	}
	set := testcase.NewRandomSet(len(c.Inports), cfg.Seed, -100, 100)
	res := &CaseStudyResult{
		ChargeRate:    cfg.ChargeRate,
		PredictedStep: benchmodels.OverflowStepOf(cfg.ChargeRate),
	}
	maxSteps := res.PredictedStep * 4

	measure := func(stop diagnose.Kind, actor, key string) (Detection, Detection, error) {
		// AccMoS.
		prog, err := codegen.Generate(c, codegen.Options{
			Diagnose: true, StopOnDiag: stop, StopOnActor: actor, TestCases: set,
		})
		if err != nil {
			return Detection{}, Detection{}, err
		}
		bin, compileTime, _, err := cfg.build(prog, filepath.Join(dir, "csev_"+string(stop)))
		if err != nil {
			return Detection{}, Detection{}, err
		}
		accRes, err := harness.Run(bin, harness.RunOptions{Steps: maxSteps, Timeout: cfg.Timeout})
		if err != nil {
			return Detection{}, Detection{}, err
		}
		acc := Detection{Step: firstDetect(accRes, key), Wall: time.Duration(accRes.ExecNanos), Compile: compileTime}
		// SSE.
		sse, err := interp.New(c, interp.Options{Diagnose: true, StopOnDiag: stop, StopOnActor: actor})
		if err != nil {
			return Detection{}, Detection{}, err
		}
		sseRes, err := sse.Run(set, maxSteps)
		if err != nil {
			return Detection{}, Detection{}, err
		}
		return acc, Detection{Step: firstDetect(sseRes, key), Wall: time.Duration(sseRes.ExecNanos)}, nil
	}

	res.OverflowAccMoS, res.OverflowSSE, err = measure(diagnose.WrapOnOverflow,
		"CSEVINJ_QuantityAdd", "CSEVINJ_QuantityAdd|WrapOnOverflow")
	if err != nil {
		return nil, err
	}
	res.DowncastAccMoS, res.DowncastSSE, err = measure(diagnose.Downcast,
		"CSEVINJ_ChargePower", "CSEVINJ_ChargePower|Downcast")
	if err != nil {
		return nil, err
	}
	return res, nil
}

func firstDetect(r *simresult.Results, key string) int64 {
	if step, ok := r.FirstDetect[key]; ok {
		return step
	}
	return -1
}

// Figure1Result is the motivating measurement: time to detect the
// long-horizon overflow of the Figure 1 sample model.
type Figure1Result struct {
	Increment   int64 // per-step accumulation of each input
	DetectStep  int64
	SSE         Detection
	AccMoS      Detection
	SpeedupWall float64
}

// Figure1 runs the motivating experiment. increment tunes latency: the
// combining Sum overflows int32 near step 2^31 / (2*increment).
func Figure1(cfg Config, increment int64) (*Figure1Result, error) {
	cfg.fillDefaults()
	dir, cleanup, err := cfg.workDir()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	c, err := actors.Compile(benchmodels.Figure1Model())
	if err != nil {
		return nil, err
	}
	set := &testcase.Set{Sources: []testcase.Source{
		{Kind: testcase.Const, Value: float64(increment)},
		{Kind: testcase.Const, Value: float64(increment)},
	}}
	maxSteps := int64(1)<<31/(2*increment) + 1000

	prog, err := codegen.Generate(c, codegen.Options{
		Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow, TestCases: set,
	})
	if err != nil {
		return nil, err
	}
	bin, compileTime, _, err := cfg.build(prog, filepath.Join(dir, "fig1"))
	if err != nil {
		return nil, err
	}
	accRes, err := harness.Run(bin, harness.RunOptions{Steps: maxSteps, Timeout: cfg.Timeout})
	if err != nil {
		return nil, err
	}
	sse, err := interp.New(c, interp.Options{Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow})
	if err != nil {
		return nil, err
	}
	sseRes, err := sse.Run(set, maxSteps)
	if err != nil {
		return nil, err
	}
	out := &Figure1Result{
		Increment:  increment,
		DetectStep: accRes.FirstDetectOf(diagnose.WrapOnOverflow),
		AccMoS: Detection{
			Step: accRes.FirstDetectOf(diagnose.WrapOnOverflow),
			Wall: time.Duration(accRes.ExecNanos), Compile: compileTime,
		},
		SSE: Detection{
			Step: sseRes.FirstDetectOf(diagnose.WrapOnOverflow),
			Wall: time.Duration(sseRes.ExecNanos),
		},
	}
	out.SpeedupWall = ratio(out.SSE.Wall, out.AccMoS.Wall)
	return out, nil
}
