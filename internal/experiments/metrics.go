package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"accmos/internal/coverage"
	"accmos/internal/obs"
)

// MetricsSchema versions the -metrics-json document so perf-trajectory
// tooling can detect incompatible changes.
const MetricsSchema = "accmos-metrics/v1"

// MetricRow is one machine-readable measurement: one (experiment, model,
// engine) triple with its wall time, throughput, one-time compile cost,
// coverage outcome and coverage-over-time timeline. Rows are the unit a
// perf dashboard tracks PR-over-PR.
type MetricRow struct {
	Experiment   string           `json:"experiment"`
	Model        string           `json:"model"`
	Engine       string           `json:"engine"`
	Steps        int64            `json:"steps"`
	WallNanos    int64            `json:"wallNanos"`
	StepsPerSec  float64          `json:"stepsPerSec"`
	CompileNanos int64            `json:"compileNanos,omitempty"`
	BudgetNanos  int64            `json:"budgetNanos,omitempty"`
	Coverage     *coverage.Report `json:"coverage,omitempty"`
	Timeline     []obs.Snapshot   `json:"timeline,omitempty"`
	HashOK       *bool            `json:"hashOK,omitempty"`
	// CacheHit marks AccMoS rows whose binary came from the build cache
	// (CompileNanos is then the original build's amortised cost).
	CacheHit bool `json:"cacheHit,omitempty"`
	// Optimizer fields, set on "opt" experiment rows: the level this row
	// ran at, the scheduled actor counts around the O1 pipeline, and wall
	// time normalized per actor evaluation at this row's level (the O2
	// denominator is the post-fusion ActorsEffective). O2 rows also carry
	// the typed-lowering fusion report.
	OptLevel        string  `json:"optLevel,omitempty"`
	ActorsBefore    int     `json:"actorsBefore,omitempty"`
	ActorsAfter     int     `json:"actorsAfter,omitempty"`
	ActorsEffective int     `json:"actorsEffective,omitempty"`
	FusedExprs      int     `json:"fusedExprs,omitempty"`
	HoistedExprs    int     `json:"hoistedExprs,omitempty"`
	NarrowedSignals int     `json:"narrowedSignals,omitempty"`
	NsPerActorStep  float64 `json:"nsPerActorStep,omitempty"`
	// Worker-pool fields, set on "serve" experiment rows: the execution
	// mode ("spawn" | "pooled"), the sweep width, the pool's process
	// counters, and — on pooled rows — the spawn-over-pooled speedup with
	// its pass verdict (strictly faster and bit-identical).
	Mode      string  `json:"mode,omitempty"`
	Runs      int     `json:"runs,omitempty"`
	Spawns    int64   `json:"spawns,omitempty"`
	Reuses    int64   `json:"reuses,omitempty"`
	Respawns  int64   `json:"respawns,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	SpeedupOK bool    `json:"speedupOK,omitempty"`
	// Partition fields, set on "partition" experiment rows: the pipeline
	// width this row ran at (1 = sequential baseline), the number of
	// signals crossing a cut boundary, and the cut's max/mean cost
	// balance. Speedup is sequential-over-partitioned; the TOTAL row's
	// SpeedupOK verdict is vacuous when the document's cpus field is 1.
	Partitions int     `json:"partitions,omitempty"`
	CutEdges   int     `json:"cutEdges,omitempty"`
	Balance    float64 `json:"balance,omitempty"`
	// Fleet fields, set on "fleet" experiment rows: runner count, the
	// job mix's routing counters, and retries off dead runners (zero on a
	// healthy run). WallNanos is the whole mix's makespan; Speedup is
	// over the single-node row.
	Nodes      int   `json:"nodes,omitempty"`
	WarmRoutes int64 `json:"warmRoutes,omitempty"`
	Transfers  int64 `json:"transfers,omitempty"`
	Retries    int64 `json:"retries,omitempty"`
}

// Metrics is the -metrics-json document: run configuration plus rows.
// Host-identifying fields are limited to the Go platform triple so
// committed baselines (BENCH_table2.json) diff cleanly.
type Metrics struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is the host's usable core count — the ceiling on any
	// parallelism speedup in these rows (fleet, serve, -parallel).
	CPUs  int         `json:"cpus"`
	Steps int64       `json:"steps"`
	Seed  uint64      `json:"seed"`
	Rows  []MetricRow `json:"rows"`
}

// NewMetrics starts a metrics document for one experiments invocation.
func NewMetrics(cfg Config) *Metrics {
	cfg.fillDefaults()
	return &Metrics{
		Schema:    MetricsSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Steps:     cfg.Steps,
		Seed:      cfg.Seed,
	}
}

// AddTable2 appends one row per (model, engine) from the Table 2 runs.
func (m *Metrics) AddTable2(rows []Table2Row) {
	for _, r := range rows {
		ok := r.HashOK
		m.Rows = append(m.Rows,
			MetricRow{
				Experiment: "table2", Model: r.Model, Engine: "AccMoS",
				Steps: r.Steps, WallNanos: r.AccMoS.Nanoseconds(),
				StepsPerSec:  stepsPerSec(r.Steps, r.AccMoS),
				CompileNanos: r.Compile.Nanoseconds(),
				Timeline:     r.AccMoSTimeline, HashOK: &ok,
				CacheHit: r.CacheHit,
			},
			MetricRow{
				Experiment: "table2", Model: r.Model, Engine: "SSE",
				Steps: r.Steps, WallNanos: r.SSE.Nanoseconds(),
				StepsPerSec: stepsPerSec(r.Steps, r.SSE),
				Timeline:    r.SSETimeline,
			},
			MetricRow{
				Experiment: "table2", Model: r.Model, Engine: "SSEac",
				Steps: r.Steps, WallNanos: r.SSEac.Nanoseconds(),
				StepsPerSec: stepsPerSec(r.Steps, r.SSEac),
			},
			MetricRow{
				Experiment: "table2", Model: r.Model, Engine: "SSErac",
				Steps: r.Steps, WallNanos: r.SSErac.Nanoseconds(),
				StepsPerSec: stepsPerSec(r.Steps, r.SSErac),
			})
	}
}

// AddTable3 appends one row per (model, budget, engine) from the Table 3
// coverage-within-budget runs.
func (m *Metrics) AddTable3(rows []Table3Row) {
	for _, r := range rows {
		accRep, sseRep := r.AccMoS.Report, r.SSE.Report
		m.Rows = append(m.Rows,
			MetricRow{
				Experiment: "table3", Model: r.Model, Engine: "AccMoS",
				Steps: r.AccMoS.Steps, WallNanos: r.Budget.Nanoseconds(),
				BudgetNanos: r.Budget.Nanoseconds(),
				StepsPerSec: stepsPerSec(r.AccMoS.Steps, r.Budget),
				Coverage:    &accRep,
			},
			MetricRow{
				Experiment: "table3", Model: r.Model, Engine: "SSE",
				Steps: r.SSE.Steps, WallNanos: r.Budget.Nanoseconds(),
				BudgetNanos: r.Budget.Nanoseconds(),
				StepsPerSec: stepsPerSec(r.SSE.Steps, r.Budget),
				Coverage:    &sseRep,
			})
	}
}

// AddOpt appends three rows per (model, engine) from the optimizer
// benchmark — one at each level, sharing the model's equivalence verdict,
// with the O2 rows carrying the fusion report — plus the one aggregate
// TOTAL gate row (geomean AccMoS O1→O2 speedup with its pass verdict).
func (m *Metrics) AddOpt(rows []OptRow) {
	for _, r := range rows {
		ok := r.EquivOK
		if r.Model == "TOTAL" {
			m.Rows = append(m.Rows, MetricRow{
				Experiment: "opt", Model: r.Model, Engine: r.Engine,
				HashOK: &ok, OptLevel: "O2",
				Speedup: r.SpeedupO2, SpeedupOK: r.SpeedupOK,
			})
			continue
		}
		m.Rows = append(m.Rows,
			MetricRow{
				Experiment: "opt", Model: r.Model, Engine: r.Engine,
				Steps: r.Steps, WallNanos: r.O0.Nanoseconds(),
				StepsPerSec:  stepsPerSec(r.Steps, r.O0),
				CompileNanos: r.CompileO0.Nanoseconds(),
				HashOK:       &ok, OptLevel: "O0",
				ActorsBefore: r.ActorsBefore, ActorsAfter: r.ActorsAfter,
				NsPerActorStep: r.NsPerActorStepO0,
			},
			MetricRow{
				Experiment: "opt", Model: r.Model, Engine: r.Engine,
				Steps: r.Steps, WallNanos: r.O1.Nanoseconds(),
				StepsPerSec:  stepsPerSec(r.Steps, r.O1),
				CompileNanos: r.CompileO1.Nanoseconds(),
				HashOK:       &ok, OptLevel: "O1",
				ActorsBefore: r.ActorsBefore, ActorsAfter: r.ActorsAfter,
				NsPerActorStep: r.NsPerActorStepO1,
			},
			MetricRow{
				Experiment: "opt", Model: r.Model, Engine: r.Engine,
				Steps: r.Steps, WallNanos: r.O2.Nanoseconds(),
				StepsPerSec:  stepsPerSec(r.Steps, r.O2),
				CompileNanos: r.CompileO2.Nanoseconds(),
				HashOK:       &ok, OptLevel: "O2",
				ActorsBefore: r.ActorsBefore, ActorsAfter: r.ActorsAfter,
				ActorsEffective: r.ActorsEffective,
				FusedExprs:      r.FusedExprs,
				HoistedExprs:    r.HoistedExprs,
				NarrowedSignals: r.NarrowedSignals,
				NsPerActorStep:  r.NsPerActorStepO2,
				Speedup:         r.SpeedupO2,
			})
	}
}

// AddServe appends one row per (model, mode) from the worker-pool
// benchmark. WallNanos is the whole-sweep wall clock; StepsPerSec is
// sweep throughput (runs x steps over the sweep wall), the number the
// pool is supposed to at least double on short-horizon sweeps.
func (m *Metrics) AddServe(rows []ServeRow) {
	for _, r := range rows {
		ok := r.HashOK
		m.Rows = append(m.Rows, MetricRow{
			Experiment: "serve", Model: r.Model, Engine: "AccMoS",
			Steps: r.Steps, WallNanos: r.Wall.Nanoseconds(),
			StepsPerSec:  stepsPerSec(int64(r.Runs)*r.Steps, r.Wall),
			CompileNanos: r.Compile.Nanoseconds(),
			HashOK:       &ok,
			Mode:         r.Mode, Runs: r.Runs,
			Spawns: r.Spawns, Reuses: r.Reuses, Respawns: r.Respawns,
			Speedup: r.Speedup, SpeedupOK: r.SpeedupOK,
		})
	}
}

// AddBatch appends one row per (model, suite size, mode) from the
// batched lane-execution benchmark. WallNanos is the whole-sweep wall
// clock; StepsPerSec is sweep throughput (runs x steps over the sweep
// wall). Batch rows carry the pooled-over-batch speedup and its pass
// verdict (>= the 5x acceptance bar and bit-identical).
func (m *Metrics) AddBatch(rows []BatchRow) {
	for _, r := range rows {
		ok := r.HashOK
		m.Rows = append(m.Rows, MetricRow{
			Experiment: "batch", Model: r.Model, Engine: "AccMoS",
			Steps: r.Steps, WallNanos: r.Wall.Nanoseconds(),
			StepsPerSec:  stepsPerSec(int64(r.Runs)*r.Steps, r.Wall),
			CompileNanos: r.Compile.Nanoseconds(),
			HashOK:       &ok,
			Mode:         r.Mode, Runs: r.Runs,
			Speedup: r.Speedup, SpeedupOK: r.SpeedupOK,
		})
	}
}

// AddPartition appends one row per (shape, width) from the pipelined
// step-loop benchmark, plus the aggregate TOTAL gate row. HashOK carries
// the row's instrumented equivalence verdict; the speedup half of the
// TOTAL verdict is vacuous when the document's cpus field is 1.
func (m *Metrics) AddPartition(rows []PartitionRow) {
	for _, r := range rows {
		ok := r.EquivOK
		m.Rows = append(m.Rows, MetricRow{
			Experiment: "partition", Model: r.Model, Engine: "AccMoS",
			Steps: r.Steps, WallNanos: r.Wall.Nanoseconds(),
			StepsPerSec:  stepsPerSec(r.Steps, r.Wall),
			CompileNanos: r.Compile.Nanoseconds(),
			HashOK:       &ok,
			Partitions:   r.Partitions, CutEdges: r.CutEdges, Balance: r.Balance,
			Speedup: r.Speedup, SpeedupOK: r.SpeedupOK,
		})
	}
}

// AddFleet appends one row per fleet size from the scaling benchmark.
// StepsPerSec here is jobs/sec over the mix's makespan (steps-per-sec
// is meaningless across heterogeneous models).
func (m *Metrics) AddFleet(rows []FleetRow) {
	for _, r := range rows {
		ok := r.HashOK
		m.Rows = append(m.Rows, MetricRow{
			Experiment: "fleet", Model: "mix", Engine: "AccMoS",
			WallNanos:   r.Wall.Nanoseconds(),
			StepsPerSec: r.JobsPerSec,
			HashOK:      &ok,
			Runs:        r.Jobs,
			Speedup:     r.Speedup,
			SpeedupOK:   r.Speedup >= 1,
			Nodes:       r.Nodes,
			WarmRoutes:  r.WarmRoutes,
			Transfers:   r.Transfers,
			Retries:     r.Retries,
		})
	}
}

func stepsPerSec(steps int64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(steps) / wall.Seconds()
}

// WriteFile serializes the document as indented JSON.
func (m *Metrics) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: encoding metrics: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}
