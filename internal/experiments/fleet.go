package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"accmos/internal/benchmodels"
	"accmos/internal/fleet"
	"accmos/internal/server"
	"accmos/internal/slx"
)

// FleetRow is one fleet-scaling measurement: the same repeat-heavy job
// mix pushed through a coordinator backed by N single-worker runners.
// Because routing is warm (repeat models pin to the node that compiled
// them), each model compiles exactly once per fleet regardless of N —
// adding runners parallelizes both the compiles and the runs, which is
// what the throughput column measures.
type FleetRow struct {
	Nodes   int
	Models  int
	Repeats int
	Jobs    int

	Wall       time.Duration
	JobsPerSec float64

	// Fleet routing counters observed after the mix: warm routes prove the
	// affinity scheduler worked; transfers count artifact ships to
	// spilled-to nodes; retries should be zero on a healthy run.
	WarmRoutes int64
	Transfers  int64
	Retries    int64

	// HashOK: every repeat of a model produced the same OutputHash, and
	// hashes match the single-node reference — the fleet is bit-identical
	// to one daemon.
	HashOK bool
	// Speedup is the 1-node wall over this row's wall (1.0 for the
	// single-node row itself). Bounded above by the host's core count:
	// the benchmark fleet shares one machine.
	Speedup float64
}

// fleetBenchRepeats is how many times each model is resubmitted — the
// repeat traffic that warm routing exists for.
const fleetBenchRepeats = 8

// fleetBenchModels bounds the model mix so the benchmark stays
// laptop-sized; the mix still spans several distinct program hashes so
// the ring has something to shard.
const fleetBenchModels = 4

// fleetStepScale multiplies cfg.Steps for fleet jobs so each run takes
// roughly a hundred milliseconds: long enough that the measured makespan
// reflects simulation work spread across nodes, not coordinator poll
// latency. Note the speedup column is bounded by the host's cores — the
// runners are in-process, so a single-core host shows ~1.0 by
// construction (see the cpus field in the metrics document).
const fleetStepScale = 1

// BenchFleet runs the job mix at 1, 2 and 4 runners and reports
// throughput scaling plus routing counters.
func BenchFleet(cfg Config) ([]FleetRow, error) {
	cfg.fillDefaults()
	names := cfg.Models
	if len(names) > fleetBenchModels {
		names = names[:fleetBenchModels]
	}
	docs := make(map[string]string, len(names))
	for _, name := range names {
		m, err := benchmodels.Build(name)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := slx.Encode(&buf, m); err != nil {
			return nil, fmt.Errorf("experiments: serializing %s: %w", name, err)
		}
		docs[name] = buf.String()
	}

	var rows []FleetRow
	var baseWall time.Duration
	var refHashes map[string]uint64
	for _, nodes := range []int{1, 2, 4} {
		row, hashes, err := runFleetMix(cfg, names, docs, nodes)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet bench at %d node(s): %w", nodes, err)
		}
		if nodes == 1 {
			baseWall = row.Wall
			refHashes = hashes
			row.Speedup = 1
		} else {
			if row.Wall > 0 {
				row.Speedup = float64(baseWall) / float64(row.Wall)
			}
			for name, h := range hashes {
				if refHashes[name] != h {
					row.HashOK = false
				}
			}
		}
		cfg.logf("fleet %d node(s): %d jobs in %v (%.1f jobs/s, warm %d, transfers %d, hashOK %v)",
			row.Nodes, row.Jobs, row.Wall, row.JobsPerSec, row.WarmRoutes, row.Transfers, row.HashOK)
		rows = append(rows, row)
	}
	return rows, nil
}

// serveOn starts an HTTP server for h on an ephemeral localhost port,
// returning its base URL and a shutdown func.
func serveOn(h http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func runFleetMix(cfg Config, names []string, docs map[string]string, nodes int) (FleetRow, map[string]uint64, error) {
	row := FleetRow{Nodes: nodes, Models: len(names), Repeats: fleetBenchRepeats, HashOK: true}

	coord, err := fleet.NewCoordinator(fleet.Config{
		PollEvery: 10 * time.Millisecond,
		DeadAfter: 5 * time.Second,
	})
	if err != nil {
		return row, nil, err
	}
	defer coord.Close()
	coordURL, stopCoord, err := serveOn(coord.Handler())
	if err != nil {
		return row, nil, err
	}
	defer stopCoord()

	// Single-worker runners: the fleet's concurrency is its node count,
	// so throughput scaling is attributable to sharding, not local
	// parallelism.
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	for i := 0; i < nodes; i++ {
		srv := server.New(server.Config{Workers: 1, PoolWorkers: -1})
		url, stopHTTP, err := serveOn(srv.Handler())
		if err != nil {
			return row, nil, err
		}
		actx, acancel := context.WithCancel(context.Background())
		agent := &fleet.Agent{Coordinator: coordURL, Advertise: url, Server: srv, Interval: 100 * time.Millisecond}
		go agent.Run(actx)
		stops = append(stops, func() {
			acancel()
			stopHTTP()
			dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer dcancel()
			srv.Drain(dctx)
		})
	}
	deadline := time.Now().Add(15 * time.Second)
	for coord.Health().LiveNodes < nodes {
		if time.Now().After(deadline) {
			return row, nil, fmt.Errorf("only %d of %d runners joined", coord.Health().LiveNodes, nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}

	client := &Client{BaseURL: coordURL, Poll: 10 * time.Millisecond}
	ctx := context.Background()
	steps := cfg.Steps * fleetStepScale
	submit := func(name string) (string, error) {
		return client.Submit(ctx, server.SubmitRequest{
			Model: docs[name], Steps: steps, Seed: cfg.Seed, Lo: -100, Hi: 100,
			Tenant: "bench",
		})
	}

	// Seed phase (un-timed): run each model once so its home node
	// compiles it. Without this every repeat dispatches before any holder
	// exists and all N nodes compile all M models — the measured phase
	// would time Go's compiler, not the fleet. Production traffic has the
	// same shape: repeat models arrive warm.
	hashes := make(map[string]uint64, len(names))
	for _, name := range names {
		id, err := submit(name)
		if err != nil {
			return row, nil, err
		}
		view, err := client.Wait(ctx, id)
		if err != nil {
			return row, nil, err
		}
		if view.State != server.JobDone || view.Result == nil {
			return row, nil, fmt.Errorf("seed job %s: %s: %s", id, view.State, view.Error)
		}
		hashes[name] = view.Result.OutputHash
	}

	// Measured phase: the repeat mix, submitted all at once.
	start := time.Now()
	var ids []string
	for r := 0; r < fleetBenchRepeats; r++ {
		for _, name := range names {
			id, err := submit(name)
			if err != nil {
				return row, nil, err
			}
			ids = append(ids, id)
		}
	}
	for i, id := range ids {
		view, err := client.Wait(ctx, id)
		if err != nil {
			return row, nil, err
		}
		if view.State != server.JobDone {
			return row, nil, fmt.Errorf("job %s: %s: %s", id, view.State, view.Error)
		}
		name := names[i%len(names)]
		if view.Result == nil {
			return row, nil, fmt.Errorf("job %s has no result", id)
		}
		if hashes[name] != view.Result.OutputHash {
			row.HashOK = false
		}
	}
	row.Wall = time.Since(start)
	row.Jobs = len(ids)
	if row.Wall > 0 {
		row.JobsPerSec = float64(row.Jobs) / row.Wall.Seconds()
	}

	resp, err := http.Get(coordURL + "/metrics")
	if err != nil {
		return row, nil, err
	}
	var mv fleet.MetricsView
	decErr := json.NewDecoder(resp.Body).Decode(&mv)
	resp.Body.Close()
	if decErr != nil {
		return row, nil, decErr
	}
	row.WarmRoutes = mv.WarmRoutes
	row.Transfers = mv.Transfers
	row.Retries = mv.Retries
	return row, hashes, nil
}

// FormatFleet renders the fleet-scaling table.
func FormatFleet(w io.Writer, rows []FleetRow) {
	fmt.Fprintf(w, "Fleet scaling: repeat-model mix through the coordinator (warm affinity routing)\n")
	fmt.Fprintf(w, "In-process runners share this host's %d core(s) — that bounds the speedup column.\n", runtime.NumCPU())
	fmt.Fprintf(w, "%-7s %-6s %-10s %-10s %-6s %-10s %-8s %-8s %-7s\n",
		"nodes", "jobs", "wall", "jobs/s", "warm", "transfers", "retries", "speedup", "hashOK")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d %-6d %-10v %-10.1f %-6d %-10d %-8d %-8.2f %-7v\n",
			r.Nodes, r.Jobs, r.Wall.Round(time.Millisecond), r.JobsPerSec,
			r.WarmRoutes, r.Transfers, r.Retries, r.Speedup, r.HashOK)
	}
}
