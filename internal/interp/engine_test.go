package interp

import (
	"strings"
	"testing"
	"time"

	"accmos/internal/actors"
	"accmos/internal/diagnose"
	"accmos/internal/model"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// accumulatorModel is the Figure-1 shape: two inputs accumulated through
// unit delays, then summed — overflows i32 after enough steps.
func accumulatorModel(t *testing.T) *actors.Compiled {
	t.Helper()
	m := model.NewBuilder("FIG1").
		Add("InA", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("InB", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "2")).
		Add("AccA", "Sum", 2, 1, model.WithOperator("++")).
		Add("DelayA", "UnitDelay", 1, 1).
		Add("AccB", "Sum", 2, 1, model.WithOperator("++")).
		Add("DelayB", "UnitDelay", 1, 1).
		Add("Total", "Sum", 2, 1, model.WithOperator("++")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("InA", "AccA", 0).
		Wire("DelayA", "AccA", 1).
		Wire("AccA", "DelayA", 0).
		Wire("InB", "AccB", 0).
		Wire("DelayB", "AccB", 1).
		Wire("AccB", "DelayB", 0).
		Wire("AccA", "Total", 0).
		Wire("AccB", "Total", 1).
		Wire("Total", "Out", 0).
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func constSet(vals ...float64) *testcase.Set {
	s := &testcase.Set{}
	for _, v := range vals {
		s.Sources = append(s.Sources, testcase.Source{Kind: testcase.Const, Value: v})
	}
	return s
}

func TestAccumulatorOverflowDetected(t *testing.T) {
	c := accumulatorModel(t)
	e, err := New(c, Options{Diagnose: true})
	if err != nil {
		t.Fatal(err)
	}
	// 1e6 per step per accumulator: wraps i32 (2^31) after ~2147 steps.
	res, err := e.Run(constSet(1e6, 1e6), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiagTotal == 0 {
		t.Fatal("expected overflow diagnostics")
	}
	// Total accumulates 2e6 per step, wrapping i32 at step ~2^31/2e6 = 1073.
	first := res.FirstDetectOf(diagnose.WrapOnOverflow)
	if first < 1000 || first > 1150 {
		t.Errorf("first overflow at step %d, want ~1073", first)
	}
}

func TestStopOnDiagStopsEarly(t *testing.T) {
	c := accumulatorModel(t)
	e, err := New(c, Options{Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(constSet(1e6, 1e6), 5000000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 2500 {
		t.Errorf("engine ran %d steps; StopOnDiag should halt near 2148", res.Steps)
	}
}

func TestAccumulatorValues(t *testing.T) {
	// With constant inputs 1 and 2, after step k the accumulators hold
	// (k+1) and 2(k+1), total 3(k+1). Validate via a monitored outport.
	c := accumulatorModel(t)
	e, err := New(c, Options{Monitor: []string{"Total"}, MaxMonitorSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(constSet(1, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	samples := res.Monitor["Total"]
	if len(samples) != 4 {
		t.Fatalf("monitor samples = %v", samples)
	}
	want := []string{"3", "6", "9", "12"}
	for i, w := range want {
		if samples[i].Value != w {
			t.Errorf("step %d total = %s, want %s", i, samples[i].Value, w)
		}
	}
	if res.MonitorHits["Total"] != 4 {
		t.Errorf("monitor hits = %d", res.MonitorHits["Total"])
	}
}

func switchModel(t *testing.T) *actors.Compiled {
	t.Helper()
	m := model.NewBuilder("SW").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("Hi", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "10")).
		Add("Lo", "Constant", 0, 1, model.WithOutKind(types.F64), model.WithParam("Value", "-10")).
		Add("Sw", "Switch", 3, 1, model.WithOperator(">="), model.WithParam("Threshold", "0")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("Hi", "Sw", 0).
		Wire("In", "Sw", 1).
		Wire("Lo", "Sw", 2).
		Wire("Sw", "Out", 0).
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSwitchConditionCoverage(t *testing.T) {
	c := switchModel(t)
	e, err := New(c, Options{Coverage: true})
	if err != nil {
		t.Fatal(err)
	}
	// Constant positive control: only branch 0 executes.
	res, err := e.Run(constSet(5), 10)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.Layout().Report(res.Coverage)
	if rep.CondCovered != 1 || rep.CondTotal != 2 {
		t.Errorf("one-sided control: cond %d/%d", rep.CondCovered, rep.CondTotal)
	}
	if rep.Actor != 100 {
		t.Errorf("all actors execute every step: actor%% = %g", rep.Actor)
	}
	// Alternating control: both branches execute.
	alt := &testcase.Set{Sources: []testcase.Source{{
		Kind: testcase.Pulse, Period: 2, Width: 1, High: 1, Low: -1,
	}}}
	res, err = e.Run(alt, 10)
	if err != nil {
		t.Fatal(err)
	}
	rep = e.Layout().Report(res.Coverage)
	if rep.CondCovered != 2 {
		t.Errorf("alternating control: cond %d/2", rep.CondCovered)
	}
}

func logicModel(t *testing.T) *actors.Compiled {
	t.Helper()
	m := model.NewBuilder("LG").
		Add("A", "Inport", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Port", "1")).
		Add("B", "Inport", 0, 1, model.WithOutKind(types.Bool), model.WithParam("Port", "2")).
		Add("And", "Logic", 2, 1, model.WithOperator("AND")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("A", "And", 0).
		Wire("B", "And", 1).
		Wire("And", "Out", 0).
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLogicDecisionAndMCDC(t *testing.T) {
	c := logicModel(t)
	e, err := New(c, Options{Coverage: true})
	if err != nil {
		t.Fatal(err)
	}
	// Inputs (1,1): decision true only; both conds determine while true.
	res, err := e.Run(constSet(1, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := e.Layout().Report(res.Coverage)
	if rep.DecCovered != 1 || rep.DecTotal != 2 {
		t.Errorf("dec %d/%d after TT only", rep.DecCovered, rep.DecTotal)
	}
	if rep.MCDCCovered != 0 || rep.MCDCTotal != 2 {
		t.Errorf("mcdc %d/%d after TT only", rep.MCDCCovered, rep.MCDCTotal)
	}
	// Exercise TT, TF, FT: full MC/DC for a 2-input AND.
	seq := &testcase.Set{Sources: []testcase.Source{
		{Kind: testcase.Table, Values: []float64{1, 1, 0}},
		{Kind: testcase.Table, Values: []float64{1, 0, 1}},
	}}
	res, err = e.Run(seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep = e.Layout().Report(res.Coverage)
	if rep.DecCovered != 2 {
		t.Errorf("dec %d/2 after TT,TF,FT", rep.DecCovered)
	}
	if rep.MCDCCovered != 2 {
		t.Errorf("mcdc %d/2 after TT,TF,FT", rep.MCDCCovered)
	}
}

func TestDataStoreRoundTrip(t *testing.T) {
	// quantity += In each step via DSRead -> Sum -> DSWrite; i32 store.
	m := model.NewBuilder("DS").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("DSM", "DataStoreMemory", 0, 0, model.WithParam("Store", "quantity"), model.WithOutKind(types.I32)).
		Add("Rd", "DataStoreRead", 0, 1, model.WithParam("Store", "quantity"), model.WithOutKind(types.I32)).
		Add("Add", "Sum", 2, 1, model.WithOperator("++")).
		Add("Wr", "DataStoreWrite", 1, 0, model.WithParam("Store", "quantity")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("Rd", "Add", 0).
		Wire("In", "Add", 1).
		Wire("Add", "Wr", 0).
		Wire("Add", "Out", 0).
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(c, Options{Diagnose: true, Monitor: []string{"Add"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(constSet(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	samples := res.Monitor["Add"]
	want := []string{"5", "10", "15", "20"}
	for i, w := range want {
		if samples[i].Value != w {
			t.Errorf("step %d = %s, want %s", i, samples[i].Value, w)
		}
	}
}

func TestDataStoreOverflowCaseStudyShape(t *testing.T) {
	// The CSEV case-study error 1: int store accumulating until overflow.
	m := model.NewBuilder("CS").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.I32), model.WithParam("Port", "1")).
		Add("DSM", "DataStoreMemory", 0, 0, model.WithParam("Store", "quantity"), model.WithOutKind(types.I32)).
		Add("Rd", "DataStoreRead", 0, 1, model.WithParam("Store", "quantity"), model.WithOutKind(types.I32)).
		Add("Add", "Sum", 2, 1, model.WithOperator("++")).
		Add("Wr", "DataStoreWrite", 1, 0, model.WithParam("Store", "quantity")).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Wire("Rd", "Add", 0).
		Wire("In", "Add", 1).
		Wire("Add", "Wr", 0).
		Wire("Add", "Out", 0).
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(c, Options{Diagnose: true, StopOnDiag: diagnose.WrapOnOverflow})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(constSet(1e6), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstDetectOf(diagnose.WrapOnOverflow) < 0 {
		t.Fatal("overflow not detected")
	}
	if res.Steps < 2000 || res.Steps > 2500 {
		t.Errorf("stopped at step %d, want ~2148", res.Steps)
	}
}

func TestCustomRangeAndDeltaChecks(t *testing.T) {
	c := switchModel(t)
	e, err := New(c, Options{Custom: []diagnose.CustomCheck{
		{Actor: "Sw", Name: "range", Kind: diagnose.RangeCheck, Lo: -5, Hi: 5},
		{Actor: "Sw", Name: "delta", Kind: diagnose.DeltaCheck, MaxDelta: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Output flips between +10 and -10: range violated every step, delta
	// violated on each flip.
	alt := &testcase.Set{Sources: []testcase.Source{{
		Kind: testcase.Pulse, Period: 2, Width: 1, High: 1, Low: -1,
	}}}
	res, err := e.Run(alt, 6)
	if err != nil {
		t.Fatal(err)
	}
	var rangeHits, deltaHits int64
	for k, n := range res.DiagCounts {
		if strings.Contains(k, "Custom") {
			_ = k
		}
		_ = n
	}
	for _, r := range res.Diags {
		if r.Kind != diagnose.Custom {
			continue
		}
		if strings.HasPrefix(r.Detail, "range:") {
			rangeHits++
		}
		if strings.HasPrefix(r.Detail, "delta:") {
			deltaHits++
		}
	}
	if rangeHits != 6 {
		t.Errorf("range check fired %d times, want 6", rangeHits)
	}
	if deltaHits != 5 {
		t.Errorf("delta check fired %d times, want 5 (every flip after the first step)", deltaHits)
	}
}

func TestCustomCallbackCheck(t *testing.T) {
	c := switchModel(t)
	e, err := New(c, Options{Custom: []diagnose.CustomCheck{{
		Actor: "Sw", Name: "cb", Kind: diagnose.CallbackCheck,
		Callback: func(step int64, v types.Value) (bool, string) {
			return v.AsFloat() > 0, "positive"
		},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(constSet(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.DiagTotal != 3 {
		t.Errorf("callback fired %d times, want 3", res.DiagTotal)
	}
}

func TestCustomCheckValidation(t *testing.T) {
	c := switchModel(t)
	if _, err := New(c, Options{Custom: []diagnose.CustomCheck{{
		Actor: "NoSuch", Name: "x", Kind: diagnose.RangeCheck,
	}}}); err == nil {
		t.Error("unknown actor in custom check must fail")
	}
	if _, err := New(c, Options{Custom: []diagnose.CustomCheck{{
		Actor: "Sw", Name: "bad", Kind: diagnose.RangeCheck, Lo: 2, Hi: 1,
	}}}); err == nil {
		t.Error("Lo > Hi must fail")
	}
}

func TestRunForBudget(t *testing.T) {
	c := accumulatorModel(t)
	e, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunFor(constSet(1, 1), 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps executed within budget")
	}
	if res.ExecNanos < int64(20*time.Millisecond) {
		t.Errorf("exec time %v too short for 30ms budget", time.Duration(res.ExecNanos))
	}
}

func TestDeterministicHash(t *testing.T) {
	c := accumulatorModel(t)
	e, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	set := testcase.NewRandomSet(2, 42, -100, 100)
	r1, err := e.Run(set, 500)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(set, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r1.OutputHash != r2.OutputHash || r1.OutputHash == 0 {
		t.Errorf("hashes differ or zero: %x vs %x", r1.OutputHash, r2.OutputHash)
	}
	// Different seed must (overwhelmingly) change the hash.
	r3, err := e.Run(testcase.NewRandomSet(2, 43, -100, 100), 500)
	if err != nil {
		t.Fatal(err)
	}
	if r3.OutputHash == r1.OutputHash {
		t.Error("different inputs produced identical hash")
	}
}

func TestTestcaseSourceCountMismatch(t *testing.T) {
	c := accumulatorModel(t)
	e, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(constSet(1), 10); err == nil {
		t.Fatal("source/inport count mismatch must error")
	}
}
