package interp

import (
	"fmt"
	"testing"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// chainCompiled builds an n-actor gain chain, the minimal per-actor-cost
// microbenchmark workload.
func chainCompiled(b *testing.B, n int) *actors.Compiled {
	b.Helper()
	mb := model.NewBuilder("CHAIN")
	mb.Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1"))
	prev := "In"
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("G%d", i)
		mb.Add(name, "Gain", 1, 1, model.WithParam("Gain", "1.0000001"))
		mb.Wire(prev, name, 0)
		prev = name
	}
	mb.Add("Out", "Outport", 1, 0, model.WithParam("Port", "1"))
	mb.Wire(prev, "Out", 0)
	c, err := actors.Compile(mb.MustBuild())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkSSEPerActorStep reports the interpreted engine's per-actor-step
// cost (map-resolved signals, boxed values, full instrumentation).
func BenchmarkSSEPerActorStep(b *testing.B) {
	const n = 100
	c := chainCompiled(b, n)
	e, err := New(c, Options{Coverage: true, Diagnose: true})
	if err != nil {
		b.Fatal(err)
	}
	set := testcase.NewRandomSet(1, 1, -1, 1)
	const steps = 1000
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(set, steps)
		if err != nil {
			b.Fatal(err)
		}
		total += res.ExecNanos
	}
	b.ReportMetric(float64(total)/float64(b.N)/float64(steps)/float64(n+2), "ns/actor-step")
}

// BenchmarkAccelPerActorStep reports the Accelerator-mode cost
// (slot-indexed closures + per-step host sync).
func BenchmarkAccelPerActorStep(b *testing.B) {
	const n = 100
	c := chainCompiled(b, n)
	e, err := NewAccel(c)
	if err != nil {
		b.Fatal(err)
	}
	set := testcase.NewRandomSet(1, 1, -1, 1)
	const steps = 5000
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(set, steps)
		if err != nil {
			b.Fatal(err)
		}
		total += res.ExecNanos
	}
	b.ReportMetric(float64(total)/float64(b.N)/float64(steps)/float64(n+2), "ns/actor-step")
}
