package interp

import (
	"testing"
	"time"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

func accelFixture(t *testing.T) *actors.Compiled {
	t.Helper()
	m := model.NewBuilder("AC").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "2")).
		Add("D", "UnitDelay", 1, 1).
		Add("Out", "Outport", 1, 0, model.WithParam("Port", "1")).
		Chain("In", "G", "D", "Out").
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAccelMatchesSSE(t *testing.T) {
	c := accelFixture(t)
	set := testcase.NewRandomSet(1, 5, -10, 10)
	sse, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sse.Run(set, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAccel(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ac.Run(set, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got.OutputHash != ref.OutputHash {
		t.Errorf("hash %x != %x", got.OutputHash, ref.OutputHash)
	}
	if got.Engine != "SSEac" {
		t.Errorf("engine = %q", got.Engine)
	}
	if got.Coverage != nil || got.DiagTotal != 0 {
		t.Error("Accelerator mode must not produce coverage or diagnostics")
	}
}

func TestAccelRunForBudget(t *testing.T) {
	c := accelFixture(t)
	ac, err := NewAccel(c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ac.RunFor(testcase.NewRandomSet(1, 5, -10, 10), 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps within budget")
	}
}

func TestAccelRepeatedRunsAreClean(t *testing.T) {
	// State, stores and the host goroutine must reset between runs.
	c := accelFixture(t)
	ac, err := NewAccel(c)
	if err != nil {
		t.Fatal(err)
	}
	set := testcase.NewRandomSet(1, 9, -10, 10)
	r1, err := ac.Run(set, 500)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ac.Run(set, 500)
	if err != nil {
		t.Fatal(err)
	}
	if r1.OutputHash != r2.OutputHash {
		t.Error("re-run with same inputs changed outputs (stale state?)")
	}
}

func TestEnginesWithNoOutports(t *testing.T) {
	// A model whose only sinks are terminators still simulates; the output
	// hash stays at the FNV offset in every engine.
	m := model.NewBuilder("NOOUT").
		Add("In", "Inport", 0, 1, model.WithOutKind(types.F64), model.WithParam("Port", "1")).
		Add("G", "Gain", 1, 1, model.WithParam("Gain", "3")).
		Add("T", "Terminator", 1, 0).
		Chain("In", "G", "T").
		MustBuild()
	c, err := actors.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	set := testcase.NewRandomSet(1, 2, -1, 1)
	sse, err := New(c, Options{Coverage: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sse.Run(set, 100)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := NewAccel(c)
	if err != nil {
		t.Fatal(err)
	}
	acRes, err := ac.Run(set, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputHash != acRes.OutputHash {
		t.Error("hashes differ on outport-free model")
	}
}
