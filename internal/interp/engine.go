// Package interp implements the interpreted simulation engines AccMoS is
// benchmarked against:
//
//   - Engine is the SSE substitute: a step-by-step tree-walking simulator
//     over boxed values with dynamic signal resolution, full runtime
//     diagnostics, coverage collection, signal monitoring and custom
//     signal diagnosis — the full-service, slow path.
//   - AccelEngine (accel.go) is the SSE Accelerator-mode substitute:
//     closure-compiled but still synchronising with a host every step, with
//     diagnostics and coverage unavailable.
//
// Both consume the same compiled model and test-case streams as the code
// generator, and produce bit-identical output hashes.
package interp

import (
	"fmt"
	"math"
	"time"

	"accmos/internal/actors"
	"accmos/internal/coverage"
	"accmos/internal/diagnose"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// Options configures an interpreted simulation.
type Options struct {
	// Coverage enables the four-metric coverage collection.
	Coverage bool
	// Diagnose enables calculation diagnosis per the rule library.
	Diagnose bool
	// Monitor lists actor names whose outputs are signal-monitored
	// (the collectList of Algorithm 1).
	Monitor []string
	// Custom lists custom signal diagnoses (§3.2.B).
	Custom []diagnose.CustomCheck
	// MaxDiagRecords bounds verbatim diagnostic records (default 64).
	MaxDiagRecords int
	// MaxMonitorSamples bounds per-actor monitor samples (default 16).
	MaxMonitorSamples int
	// StopOnDiag, when non-empty, stops the run at the end of the step in
	// which the first diagnosis of this kind fires — the paper's
	// error-detection-time measurement. StopOnActor optionally narrows the
	// trigger to one actor path.
	StopOnDiag  diagnose.Kind
	StopOnActor string

	// Progress receives periodic progress snapshots while the step loop
	// runs; ProgressEvery sets the interval (obs.DefaultInterval when
	// zero). Setting either enables progress reporting and the Timeline
	// in the results.
	Progress      func(obs.Snapshot)
	ProgressEvery time.Duration

	// Layout overrides the coverage layout (default: derived from c). The
	// optimizer passes the ORIGINAL model's layout so an optimized run's
	// bitmaps stay shape- and slot-identical to an O0 run. Every
	// scheduled actor must be present in the override.
	Layout *coverage.Layout
	// Premark holds coverage bits the optimizer proved statically for
	// removed instrumentation sites; they are OR-ed into the collector at
	// the start of every run.
	Premark *coverage.Raw
}

func (o *Options) fillDefaults() {
	if o.MaxDiagRecords == 0 {
		o.MaxDiagRecords = 64
	}
	if o.MaxMonitorSamples == 0 {
		o.MaxMonitorSamples = 16
	}
}

// Engine is the SSE-substitute interpreter.
type Engine struct {
	c    *actors.Compiled
	opts Options

	layout    *coverage.Layout
	collector *coverage.Collector
	sink      *diagnose.Sink

	ecs    []actors.EvalCtx
	states []actors.State
	rules  [][]diagnose.Kind

	// signals is the dynamic signal table — deliberately a map keyed by
	// source port, mirroring an interpreter resolving connections at run
	// time rather than compiling them away.
	signals map[model.PortRef]types.Value

	stores     map[string]types.Value
	storeKinds map[string]types.Kind

	stateful []int // indices of actors with an Update hook

	customByActor map[string][]int // actor name -> indices into opts.Custom
	lastValue     map[string]float64

	monitorSet  map[string]bool
	monitor     map[string][]simresult.MonitorSample
	monitorHits map[string]int64

	downcastSeen []bool
	stopFlag     bool

	// Conditional execution support: per-step disabled flags and typed
	// zero outputs written while an actor's enable signal is false.
	disabled []bool
	zeroOuts [][]types.Value
}

// New builds an engine for a compiled model.
func New(c *actors.Compiled, opts Options) (*Engine, error) {
	opts.fillDefaults()
	e := &Engine{
		c:             c,
		opts:          opts,
		signals:       make(map[model.PortRef]types.Value),
		stores:        make(map[string]types.Value),
		storeKinds:    make(map[string]types.Kind),
		customByActor: make(map[string][]int),
		lastValue:     make(map[string]float64),
		monitorSet:    make(map[string]bool),
		monitor:       make(map[string][]simresult.MonitorSample),
		monitorHits:   make(map[string]int64),
	}
	if opts.Layout != nil {
		for _, info := range c.Order {
			if _, ok := opts.Layout.ActorIndex[info.Actor.Name]; !ok {
				return nil, fmt.Errorf("interp: layout override is missing actor %q", info.Actor.Name)
			}
		}
		e.layout = opts.Layout
	} else {
		e.layout = coverage.NewLayout(c)
	}
	if opts.Premark != nil {
		// Validate once against the layout shape; reset() merges per run.
		if err := e.layout.NewRaw().Merge(opts.Premark); err != nil {
			return nil, fmt.Errorf("interp: premark bitmaps do not match the coverage layout: %w", err)
		}
	}
	e.sink = diagnose.NewSink(opts.MaxDiagRecords)

	e.ecs = make([]actors.EvalCtx, len(c.Order))
	e.states = make([]actors.State, len(c.Order))
	e.rules = make([][]diagnose.Kind, len(c.Order))
	e.downcastSeen = make([]bool, len(c.Order))
	e.disabled = make([]bool, len(c.Order))
	e.zeroOuts = make([][]types.Value, len(c.Order))

	for _, ds := range c.DataStores {
		name := actors.StoreName(ds)
		if _, dup := e.storeKinds[name]; dup {
			return nil, fmt.Errorf("interp: duplicate data store %q", name)
		}
		e.storeKinds[name] = actors.StoreKind(ds)
	}
	for i, info := range c.Order {
		ec := &e.ecs[i]
		ec.Info = info
		ec.In = make([]types.Value, info.NumIn())
		ec.Outs = make([]types.Value, len(info.Actor.Outputs))
		ec.State = &e.states[i]
		ec.DS = e
		if info.Spec.Update != nil {
			e.stateful = append(e.stateful, i)
		}
		e.zeroOuts[i] = make([]types.Value, len(info.Actor.Outputs))
		for p := range e.zeroOuts[i] {
			e.zeroOuts[i][p] = types.ZeroVector(info.OutKinds[p], info.OutWidths[p])
		}
		if e.opts.Diagnose {
			e.rules[i] = diagnose.RulesFor(info)
		}
		switch info.Actor.Type {
		case "DataStoreRead", "DataStoreWrite":
			name := actors.StoreName(info)
			if _, ok := e.storeKinds[name]; !ok {
				return nil, fmt.Errorf("interp: %s references unknown data store %q", info.Actor.Name, name)
			}
		}
	}
	for i := range opts.Custom {
		chk := &opts.Custom[i]
		if err := chk.Validate(); err != nil {
			return nil, err
		}
		info := c.Info(chk.Actor)
		if info == nil {
			return nil, fmt.Errorf("interp: custom check %q references unknown actor %q", chk.Name, chk.Actor)
		}
		if len(info.Actor.Outputs) == 0 || info.OutWidth() > 1 {
			return nil, fmt.Errorf("interp: custom check %q: actor %q must have a scalar output", chk.Name, chk.Actor)
		}
		e.customByActor[chk.Actor] = append(e.customByActor[chk.Actor], i)
	}
	for _, name := range opts.Monitor {
		if c.Info(name) == nil {
			return nil, fmt.Errorf("interp: monitor references unknown actor %q", name)
		}
		e.monitorSet[name] = true
	}
	return e, nil
}

// DSRead implements actors.DataStoreAccess.
func (e *Engine) DSRead(name string) types.Value { return e.stores[name] }

// DSWrite implements actors.DataStoreAccess, converting to the store kind.
func (e *Engine) DSWrite(name string, v types.Value) {
	k, ok := e.storeKinds[name]
	if !ok {
		return
	}
	cv, _ := types.Convert(v, k)
	e.stores[name] = cv
}

// reset prepares a fresh run.
func (e *Engine) reset() {
	for i, info := range e.c.Order {
		e.states[i] = actors.State{}
		if info.Spec.Init != nil {
			info.Spec.Init(info, &e.states[i])
		}
		e.downcastSeen[i] = false
	}
	for _, ds := range e.c.DataStores {
		e.stores[actors.StoreName(ds)] = actors.StoreInit(ds)
	}
	for k := range e.signals {
		delete(e.signals, k)
	}
	if e.opts.Coverage {
		e.collector = coverage.NewCollector(e.layout)
		if e.opts.Premark != nil {
			// Sizes were validated in New; Merge cannot fail here.
			_ = e.collector.Raw.Merge(e.opts.Premark)
		}
	} else {
		e.collector = nil
	}
	e.sink = diagnose.NewSink(e.opts.MaxDiagRecords)
	e.monitor = make(map[string][]simresult.MonitorSample)
	e.monitorHits = make(map[string]int64)
	for k := range e.lastValue {
		delete(e.lastValue, k)
	}
	e.stopFlag = false
}

// Run simulates the model for the given number of steps using the test
// cases, returning the results. It always runs at least one step.
func (e *Engine) Run(tcs *testcase.Set, steps int64) (*simresult.Results, error) {
	return e.run(tcs, steps, 0)
}

// RunFor simulates until the wall-clock budget elapses (checked every
// checkEvery steps; 1024 if zero), for the coverage-vs-time experiment.
func (e *Engine) RunFor(tcs *testcase.Set, budget time.Duration) (*simresult.Results, error) {
	return e.run(tcs, math.MaxInt64, budget)
}

func (e *Engine) run(tcs *testcase.Set, maxSteps int64, budget time.Duration) (*simresult.Results, error) {
	if len(tcs.Sources) != len(e.c.Inports) {
		return nil, fmt.Errorf("interp: %d test-case sources for %d inports", len(tcs.Sources), len(e.c.Inports))
	}
	if err := tcs.Validate(); err != nil {
		return nil, err
	}
	e.reset()
	streams := tcs.Streams()
	inportIdx := make([]int, len(e.c.Inports)) // order index of each inport
	for i, info := range e.c.Inports {
		inportIdx[i] = info.Index
	}
	outRefs := make([]model.PortRef, len(e.c.Outports))
	for i, info := range e.c.Outports {
		outRefs[i] = info.InSrc[0]
	}

	var rep *obs.Reporter
	if e.opts.Progress != nil || e.opts.ProgressEvery > 0 {
		rep = obs.NewReporter(e.c.Model.Name, "SSE", e.opts.ProgressEvery, e.opts.Progress)
	}
	progressSnapshot := func() (float64, int64) {
		cov := -1.0
		if e.collector != nil {
			cov = coverage.ProgressPercent(e.collector.Raw)
		}
		return cov, e.sink.Total
	}

	hash := uint64(simresult.FNVOffset)
	start := time.Now()
	var step int64
	const budgetCheckEvery = 1024
	for step = 0; step < maxSteps; step++ {
		if budget > 0 && step%budgetCheckEvery == 0 && time.Since(start) >= budget {
			break
		}
		if rep != nil && step%budgetCheckEvery == 0 {
			rep.MaybeTick(step, progressSnapshot)
		}
		// Feed inports.
		for i, oi := range inportIdx {
			e.ecs[oi].ExternalIn = types.FloatVal(types.F64, streams[i].At(step))
		}
		// Eval pass in execution order.
		for i := range e.c.Order {
			info := e.c.Order[i]
			ec := &e.ecs[i]
			if info.Gated() && !e.signals[info.EnabledBy].AsBool() {
				// Conditionally executed and currently disabled: outputs
				// reset to zero, state freezes, no instrumentation fires.
				for p := range e.zeroOuts[i] {
					e.signals[model.PortRef{Actor: info.Actor.Name, Port: p}] = e.zeroOuts[i][p]
				}
				e.disabled[i] = true
				continue
			}
			e.disabled[i] = false
			ec.Reset(step)
			for p := range ec.In {
				ec.In[p] = e.signals[info.InSrc[p]]
			}
			info.Spec.Eval(ec)
			for p := range ec.Outs {
				e.signals[model.PortRef{Actor: info.Actor.Name, Port: p}] = ec.Outs[p]
			}
			e.instrument(info, ec, step)
		}
		// Update pass: stateful commits using current-step inputs.
		for _, i := range e.stateful {
			if e.disabled[i] {
				continue
			}
			info := e.c.Order[i]
			ec := &e.ecs[i]
			ec.Flags = types.OpResult{}
			for p := range ec.In {
				ec.In[p] = e.signals[info.InSrc[p]]
			}
			info.Spec.Update(ec)
			if e.opts.Diagnose && len(e.rules[i]) > 0 {
				e.reportFlags(info, ec, step)
			}
		}
		// Fold root outputs into the equivalence hash.
		for _, ref := range outRefs {
			hash = hashValue(hash, e.signals[ref])
		}
		if e.stopFlag {
			step++
			break
		}
	}
	elapsed := time.Since(start)

	res := &simresult.Results{
		Model:      e.c.Model.Name,
		Engine:     "SSE",
		Steps:      step,
		ExecNanos:  elapsed.Nanoseconds(),
		OutputHash: hash,
	}
	if e.collector != nil {
		res.Coverage = e.collector.Raw
	}
	res.FromSink(e.sink)
	if len(e.monitor) > 0 {
		res.Monitor = e.monitor
		res.MonitorHits = e.monitorHits
	}
	if rep != nil {
		cov, diags := progressSnapshot()
		rep.Final(step, cov, diags)
		res.Timeline = rep.Timeline
	}
	return res, nil
}

// Layout exposes the coverage layout for report computation.
func (e *Engine) Layout() *coverage.Layout { return e.layout }

// instrument applies coverage, diagnosis, monitoring and custom checks
// after one actor evaluation.
func (e *Engine) instrument(info *actors.Info, ec *actors.EvalCtx, step int64) {
	name := info.Actor.Name
	if e.collector != nil {
		e.collector.Actor(name)
		if ec.Branch >= 0 {
			e.collector.Branch(name, ec.Branch)
		}
		if ec.Decision >= 0 {
			e.collector.Decision(name, ec.Decision == 1)
		}
		if len(ec.Conds) >= 2 && info.IsCombinationCondition() {
			e.collector.MCDC(name, info.Operator, ec.Conds)
		}
	}
	if e.opts.Diagnose && len(e.rules[info.Index]) > 0 {
		e.reportFlags(info, ec, step)
	}
	if len(e.customByActor) > 0 {
		if idxs, ok := e.customByActor[name]; ok && len(ec.Outs) > 0 {
			e.runCustom(info, idxs, ec.Outs[0], step)
		}
	}
	if e.monitorSet[name] && len(ec.Outs) > 0 {
		e.monitorHits[name]++
		if samples := e.monitor[name]; len(samples) < e.opts.MaxMonitorSamples {
			e.monitor[name] = append(samples, simresult.MonitorSample{
				Step: step, Value: ec.Outs[0].String(),
			})
		}
	}
}

// reportFlags converts raised flags into diagnostic records. Downcast is a
// static property reported once per actor, on first execution — both
// engines use this rule so their findings match.
func (e *Engine) reportFlags(info *actors.Info, ec *actors.EvalCtx, step int64) {
	rules := e.rules[info.Index]
	for _, k := range diagnose.FlagKinds(rules, ec.Flags) {
		e.report(diagnose.Record{Step: step, Actor: info.Path, Kind: k})
	}
	if !e.downcastSeen[info.Index] {
		for _, r := range rules {
			if r == diagnose.Downcast {
				e.downcastSeen[info.Index] = true
				e.report(diagnose.Record{
					Step: step, Actor: info.Path, Kind: diagnose.Downcast,
					Detail: "output type narrower than input type",
				})
				break
			}
		}
	}
}

func (e *Engine) report(r diagnose.Record) {
	e.sink.Report(r)
	if e.opts.StopOnDiag != "" && r.Kind == e.opts.StopOnDiag &&
		(e.opts.StopOnActor == "" || r.Actor == e.opts.StopOnActor) {
		e.stopFlag = true
	}
}

// runCustom evaluates custom signal diagnoses on an actor output.
func (e *Engine) runCustom(info *actors.Info, idxs []int, v types.Value, step int64) {
	for _, ci := range idxs {
		chk := &e.opts.Custom[ci]
		f := v.AsFloat()
		switch chk.Kind {
		case diagnose.RangeCheck:
			if f < chk.Lo || f > chk.Hi {
				e.report(diagnose.Record{
					Step: step, Actor: info.Path, Kind: diagnose.Custom,
					Detail: fmt.Sprintf("%s: value %g outside [%g, %g]", chk.Name, f, chk.Lo, chk.Hi),
				})
			}
		case diagnose.DeltaCheck:
			key := chk.Name + "|" + info.Actor.Name
			if prev, seen := e.lastValue[key]; seen {
				if d := math.Abs(f - prev); d > chk.MaxDelta {
					e.report(diagnose.Record{
						Step: step, Actor: info.Path, Kind: diagnose.Custom,
						Detail: fmt.Sprintf("%s: jump %g exceeds %g", chk.Name, d, chk.MaxDelta),
					})
				}
			}
			e.lastValue[key] = f
		case diagnose.CallbackCheck:
			if fired, detail := chk.Callback(step, v); fired {
				e.report(diagnose.Record{
					Step: step, Actor: info.Path, Kind: diagnose.Custom,
					Detail: chk.Name + ": " + detail,
				})
			}
		}
	}
}

// hashValue folds one signal value into the FNV-1a equivalence hash using
// the same canonical encoding as the generated runtime.
func hashValue(h uint64, v types.Value) uint64 {
	if v.Elems != nil {
		for _, el := range v.Elems {
			h = hashValue(h, el)
		}
		return h
	}
	var x uint64
	switch {
	case v.Kind == types.Bool:
		if v.B {
			x = 1
		}
	case v.Kind.IsSigned():
		x = uint64(v.I)
	case v.Kind.IsUnsigned():
		x = v.U
	case v.Kind == types.F32:
		x = uint64(math.Float32bits(float32(v.F)))
	default:
		x = math.Float64bits(v.F)
	}
	return simresult.HashU64(h, x)
}
