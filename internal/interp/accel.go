package interp

import (
	"fmt"
	"time"

	"accmos/internal/actors"
	"accmos/internal/model"
	"accmos/internal/obs"
	"accmos/internal/simresult"
	"accmos/internal/testcase"
	"accmos/internal/types"
)

// AccelEngine is the SSE Accelerator-mode substitute: the model is
// compiled once into a closure chain over a dense, slot-indexed signal
// array (no per-step connection resolution), but every step still
// synchronises with a host goroutine that receives the root outputs — the
// "frequent synchronization with Simulink and data transfer" the paper
// identifies as Accelerator mode's bottleneck. Runtime diagnostics,
// coverage collection, signal monitoring and custom diagnoses are
// unavailable, as in the real Accelerator mode.
type AccelEngine struct {
	c *actors.Compiled

	slots   []types.Value
	slotIdx map[model.PortRef]int

	ecs      []actors.EvalCtx
	states   []actors.State
	inIdx    [][]int // per actor, slot index per input
	outIdx   [][]int
	stateful []int

	inportOrder []int // actor order index per inport
	outSlots    []int // slot per root outport input

	// Conditional execution: enable slot per actor (-1 = always enabled),
	// per-step disabled flags, typed zero outputs.
	enableSlot []int
	disabled   []bool
	zeroOuts   [][]types.Value

	stores     map[string]types.Value
	storeKinds map[string]types.Kind

	// host synchronisation
	req chan []types.Value
	ack chan uint64

	// progress reporting (SetProgress)
	progress      func(obs.Snapshot)
	progressEvery time.Duration
}

// SetProgress enables periodic progress snapshots during Run/RunFor:
// every interval (obs.DefaultInterval when zero) the callback — which may
// be nil to only record the result Timeline — receives the live step
// count. Accelerator mode has no coverage or diagnostics, so snapshots
// report Coverage -1 and Diags 0.
func (e *AccelEngine) SetProgress(every time.Duration, fn func(obs.Snapshot)) {
	e.progressEvery = every
	e.progress = fn
}

// NewAccel compiles an accelerated engine for the model.
func NewAccel(c *actors.Compiled) (*AccelEngine, error) {
	e := &AccelEngine{
		c:          c,
		slotIdx:    make(map[model.PortRef]int),
		stores:     make(map[string]types.Value),
		storeKinds: make(map[string]types.Kind),
	}
	for _, info := range c.Order {
		for p := range info.Actor.Outputs {
			ref := model.PortRef{Actor: info.Actor.Name, Port: p}
			e.slotIdx[ref] = len(e.slots)
			e.slots = append(e.slots, types.Value{})
		}
	}
	e.ecs = make([]actors.EvalCtx, len(c.Order))
	e.states = make([]actors.State, len(c.Order))
	e.inIdx = make([][]int, len(c.Order))
	e.outIdx = make([][]int, len(c.Order))
	e.enableSlot = make([]int, len(c.Order))
	e.disabled = make([]bool, len(c.Order))
	e.zeroOuts = make([][]types.Value, len(c.Order))
	for _, ds := range c.DataStores {
		name := actors.StoreName(ds)
		e.storeKinds[name] = actors.StoreKind(ds)
	}
	for i, info := range c.Order {
		ec := &e.ecs[i]
		ec.Info = info
		ec.In = make([]types.Value, info.NumIn())
		ec.Outs = make([]types.Value, len(info.Actor.Outputs))
		ec.State = &e.states[i]
		ec.DS = e
		e.inIdx[i] = make([]int, info.NumIn())
		for p, src := range info.InSrc {
			idx, ok := e.slotIdx[src]
			if !ok {
				return nil, fmt.Errorf("accel: unresolved driver for %s:%d", info.Actor.Name, p)
			}
			e.inIdx[i][p] = idx
		}
		e.outIdx[i] = make([]int, len(info.Actor.Outputs))
		for p := range info.Actor.Outputs {
			e.outIdx[i][p] = e.slotIdx[model.PortRef{Actor: info.Actor.Name, Port: p}]
		}
		if info.Spec.Update != nil {
			e.stateful = append(e.stateful, i)
		}
		e.enableSlot[i] = -1
		if info.Gated() {
			idx, ok := e.slotIdx[info.EnabledBy]
			if !ok {
				return nil, fmt.Errorf("accel: unresolved enable signal for %s", info.Actor.Name)
			}
			e.enableSlot[i] = idx
		}
		e.zeroOuts[i] = make([]types.Value, len(info.Actor.Outputs))
		for p := range e.zeroOuts[i] {
			e.zeroOuts[i][p] = types.ZeroVector(info.OutKinds[p], info.OutWidths[p])
		}
		switch info.Actor.Type {
		case "DataStoreRead", "DataStoreWrite":
			name := actors.StoreName(info)
			if _, ok := e.storeKinds[name]; !ok {
				return nil, fmt.Errorf("accel: %s references unknown data store %q", info.Actor.Name, name)
			}
		}
	}
	for _, info := range c.Inports {
		e.inportOrder = append(e.inportOrder, info.Index)
	}
	for _, info := range c.Outports {
		e.outSlots = append(e.outSlots, e.slotIdx[info.InSrc[0]])
	}
	return e, nil
}

// DSRead implements actors.DataStoreAccess.
func (e *AccelEngine) DSRead(name string) types.Value { return e.stores[name] }

// DSWrite implements actors.DataStoreAccess.
func (e *AccelEngine) DSWrite(name string, v types.Value) {
	k, ok := e.storeKinds[name]
	if !ok {
		return
	}
	cv, _ := types.Convert(v, k)
	e.stores[name] = cv
}

func (e *AccelEngine) reset() {
	for i := range e.slots {
		e.slots[i] = types.Value{}
	}
	for i, info := range e.c.Order {
		e.states[i] = actors.State{}
		if info.Spec.Init != nil {
			info.Spec.Init(info, &e.states[i])
		}
	}
	for _, ds := range e.c.DataStores {
		e.stores[actors.StoreName(ds)] = actors.StoreInit(ds)
	}
}

// startHost launches the host goroutine that receives per-step output
// transfers and folds them into the equivalence hash.
func (e *AccelEngine) startHost() {
	e.req = make(chan []types.Value)
	e.ack = make(chan uint64)
	go func() {
		h := uint64(simresult.FNVOffset)
		for outs := range e.req {
			for _, v := range outs {
				h = hashValue(h, v)
			}
			e.ack <- h
		}
	}()
}

// Run simulates for the given number of steps.
func (e *AccelEngine) Run(tcs *testcase.Set, steps int64) (*simresult.Results, error) {
	return e.run(tcs, steps, 0)
}

// RunFor simulates until the wall-clock budget elapses.
func (e *AccelEngine) RunFor(tcs *testcase.Set, budget time.Duration) (*simresult.Results, error) {
	return e.run(tcs, 1<<62, budget)
}

func (e *AccelEngine) run(tcs *testcase.Set, maxSteps int64, budget time.Duration) (*simresult.Results, error) {
	if len(tcs.Sources) != len(e.c.Inports) {
		return nil, fmt.Errorf("accel: %d test-case sources for %d inports", len(tcs.Sources), len(e.c.Inports))
	}
	if err := tcs.Validate(); err != nil {
		return nil, err
	}
	e.reset()
	e.startHost()
	defer close(e.req)
	streams := tcs.Streams()
	outBuf := make([]types.Value, len(e.outSlots))

	var rep *obs.Reporter
	if e.progress != nil || e.progressEvery > 0 {
		rep = obs.NewReporter(e.c.Model.Name, "SSEac", e.progressEvery, e.progress)
	}
	noCoverage := func() (float64, int64) { return -1, 0 }

	var hash uint64 = simresult.FNVOffset
	start := time.Now()
	var step int64
	for step = 0; step < maxSteps; step++ {
		if budget > 0 && step%1024 == 0 && time.Since(start) >= budget {
			break
		}
		if rep != nil && step%1024 == 0 {
			rep.MaybeTick(step, noCoverage)
		}
		for i, oi := range e.inportOrder {
			e.ecs[oi].ExternalIn = types.FloatVal(types.F64, streams[i].At(step))
		}
		for i := range e.c.Order {
			ec := &e.ecs[i]
			if s := e.enableSlot[i]; s >= 0 && !e.slots[s].AsBool() {
				out := e.outIdx[i]
				for p := range out {
					e.slots[out[p]] = e.zeroOuts[i][p]
				}
				e.disabled[i] = true
				continue
			}
			e.disabled[i] = false
			ec.Step = step
			ec.Conds = ec.Conds[:0]
			in := e.inIdx[i]
			for p := range in {
				ec.In[p] = e.slots[in[p]]
			}
			ec.Info.Spec.Eval(ec)
			out := e.outIdx[i]
			for p := range out {
				e.slots[out[p]] = ec.Outs[p]
			}
		}
		for _, i := range e.stateful {
			if e.disabled[i] {
				continue
			}
			ec := &e.ecs[i]
			in := e.inIdx[i]
			for p := range in {
				ec.In[p] = e.slots[in[p]]
			}
			ec.Info.Spec.Update(ec)
		}
		// Per-step host synchronisation: transfer the root outputs and
		// wait for the host's acknowledgement before the next step.
		for i, s := range e.outSlots {
			outBuf[i] = e.slots[s]
		}
		e.req <- outBuf
		hash = <-e.ack
	}
	elapsed := time.Since(start)
	res := &simresult.Results{
		Model:      e.c.Model.Name,
		Engine:     "SSEac",
		Steps:      step,
		ExecNanos:  elapsed.Nanoseconds(),
		OutputHash: hash,
	}
	if rep != nil {
		rep.Final(step, -1, 0)
		res.Timeline = rep.Timeline
	}
	return res, nil
}
