package simresult

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestDecodeGeneratedMatchesJSON: for documents on the generated
// encoder's happy path, the fast scanner must produce exactly what
// encoding/json would — same fields, same coverage bitmaps.
func TestDecodeGeneratedMatchesJSON(t *testing.T) {
	docs := []string{
		// The no-coverage shape a batch lane emits.
		`{"model":"CSEV","engine":"AccMoS","steps":1500,"execNanos":812345,"outputHash":18446744073709551615,"diagTotal":0}`,
		// The coverage-carrying shape of a single run ("AA==" is one zero
		// byte, "AAE=" two bytes with the second bit set).
		`{"model":"SWEEP","engine":"AccMoS","steps":400,"execNanos":99,"outputHash":7,` +
			`"coverage":{"actor":"AAE=","cond":"AA==","dec":"AQ==","mcdc":"AA=="},"diagTotal":0}`,
		// Trailing newline, as read off the wire.
		`{"model":"X","engine":"AccMoS","steps":1,"execNanos":0,"outputHash":0,"diagTotal":3}` + "\n",
	}
	for _, doc := range docs {
		var fast, slow Results
		if !DecodeGenerated([]byte(doc), &fast) {
			t.Errorf("fast path rejected a canonical document: %s", doc)
			continue
		}
		if err := json.Unmarshal([]byte(doc), &slow); err != nil {
			t.Fatalf("reference decode failed: %v", err)
		}
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("fast decode diverges from encoding/json:\n fast %+v\n slow %+v\n doc %s", fast, slow, doc)
		}
	}
}

// TestDecodeGeneratedFallsBack: anything off the fixed-field-order happy
// path must return false WITHOUT modifying the destination, so the caller
// can hand the same struct to encoding/json.
func TestDecodeGeneratedFallsBack(t *testing.T) {
	docs := []struct {
		name string
		doc  string
	}{
		{"different field order", `{"engine":"AccMoS","model":"X","steps":1,"execNanos":0,"outputHash":0,"diagTotal":0}`},
		{"escaped model name", `{"model":"a\"b","engine":"AccMoS","steps":1,"execNanos":0,"outputHash":0,"diagTotal":0}`},
		{"diag records section", `{"model":"X","engine":"AccMoS","steps":1,"execNanos":0,"outputHash":0,"diagTotal":2,"diagCounts":{"overflow":2}}`},
		{"monitor section", `{"model":"X","engine":"AccMoS","steps":1,"execNanos":0,"outputHash":0,"diagTotal":0,"monitorHits":{"Acc":1}}`},
		{"negative number", `{"model":"X","engine":"AccMoS","steps":-1,"execNanos":0,"outputHash":0,"diagTotal":0}`},
		{"bad base64 bitmap", `{"model":"X","engine":"AccMoS","steps":1,"execNanos":0,"outputHash":0,"coverage":{"actor":"!!","cond":"AA==","dec":"AA==","mcdc":"AA=="},"diagTotal":0}`},
		{"truncated document", `{"model":"X","engine":"AccMoS","steps":1,"execNanos":0`},
		{"trailing garbage", `{"model":"X","engine":"AccMoS","steps":1,"execNanos":0,"outputHash":0,"diagTotal":0}{}`},
		{"not json at all", `boom: stack trace`},
	}
	for _, tc := range docs {
		sentinel := Results{Model: "UNTOUCHED", Steps: 42}
		got := sentinel
		if DecodeGenerated([]byte(tc.doc), &got) {
			t.Errorf("%s: fast path accepted a non-canonical document", tc.name)
			continue
		}
		if !reflect.DeepEqual(got, sentinel) {
			t.Errorf("%s: a rejected decode modified the destination: %+v", tc.name, got)
		}
	}
}
