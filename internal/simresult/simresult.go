// Package simresult defines the simulation result record every engine
// produces and the generated program emits as JSON — so one decoder and
// one comparison path serve the interpreter, the accelerated engines, and
// AccMoS-generated binaries alike.
package simresult

import (
	"fmt"
	"sort"

	"accmos/internal/coverage"
	"accmos/internal/diagnose"
	"accmos/internal/obs"
)

// MonitorSample is one recorded signal-monitor observation (the paper's
// outputCollect instrumentation).
type MonitorSample struct {
	Step  int64  `json:"step"`
	Value string `json:"value"`
}

// Results captures one simulation run. OutputHash is the FNV-1a hash
// chained over every root outport value at every step — the cross-engine
// equivalence oracle.
type Results struct {
	Model  string `json:"model"`
	Engine string `json:"engine"`
	Steps  int64  `json:"steps"`

	ExecNanos    int64 `json:"execNanos"`
	CompileNanos int64 `json:"compileNanos,omitempty"`

	OutputHash uint64 `json:"outputHash"`

	Coverage *coverage.Raw `json:"coverage,omitempty"`

	DiagTotal   int64                      `json:"diagTotal"`
	DiagCounts  map[string]int64           `json:"diagCounts,omitempty"`
	FirstDetect map[string]int64           `json:"firstDetect,omitempty"`
	Diags       []diagnose.Record          `json:"diags,omitempty"`
	Monitor     map[string][]MonitorSample `json:"monitor,omitempty"`
	MonitorHits map[string]int64           `json:"monitorHits,omitempty"`

	// Timeline holds the progress snapshots observed while the run
	// executed (heartbeats of a generated binary, or engine progress
	// ticks) — the coverage-over-time record. Populated host-side; a
	// generated program does not include it in its own JSON output.
	Timeline []obs.Snapshot `json:"timeline,omitempty"`
}

// FNV-1a 64-bit parameters, shared with the generated runtime.
const (
	FNVOffset = 14695981039346656037
	FNVPrime  = 1099511628211
)

// HashU64 folds one 64-bit word into an FNV-1a hash state, byte by byte,
// little-endian — identical to the generated runtime's hashU64.
func HashU64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (x >> (8 * i)) & 0xff
		h *= FNVPrime
	}
	return h
}

// FromSink copies a diagnosis sink's aggregates into r.
func (r *Results) FromSink(s *diagnose.Sink) {
	r.DiagTotal = s.Total
	r.Diags = s.Records
	if len(s.Counts) > 0 {
		r.DiagCounts = s.Counts
	}
	if len(s.FirstDetect) > 0 {
		r.FirstDetect = s.FirstDetect
	}
}

// FirstDetectOf returns the earliest step at which any diagnosis of the
// given kind fired on any actor, or -1.
func (r *Results) FirstDetectOf(kind diagnose.Kind) int64 {
	best := int64(-1)
	for key, step := range r.FirstDetect {
		if matchKind(key, kind) && (best < 0 || step < best) {
			best = step
		}
	}
	return best
}

func matchKind(key string, kind diagnose.Kind) bool {
	suffix := "|" + string(kind)
	return len(key) >= len(suffix) && key[len(key)-len(suffix):] == suffix
}

// DiagSummary renders the per-(actor, kind) counts deterministically.
func (r *Results) DiagSummary() []string {
	keys := make([]string, 0, len(r.DiagCounts))
	for k := range r.DiagCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s x%d (first at step %d)", k, r.DiagCounts[k], r.FirstDetect[k])
	}
	return out
}

// SameOutputs reports whether two runs produced identical output streams.
func SameOutputs(a, b *Results) bool {
	return a.Steps == b.Steps && a.OutputHash == b.OutputHash
}
