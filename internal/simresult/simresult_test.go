package simresult

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"accmos/internal/diagnose"
)

func TestHashU64KnownVector(t *testing.T) {
	// FNV-1a over eight zero bytes from the offset basis.
	h := HashU64(FNVOffset, 0)
	if h == FNVOffset || h == 0 {
		t.Errorf("h = %x", h)
	}
	// Determinism and sensitivity.
	if HashU64(FNVOffset, 1) == HashU64(FNVOffset, 2) {
		t.Error("collision on trivially different inputs")
	}
	if HashU64(FNVOffset, 7) != HashU64(FNVOffset, 7) {
		t.Error("nondeterministic")
	}
}

// Property: chaining is order-sensitive (a stream hash, not a set hash).
func TestQuickHashOrderSensitive(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return HashU64(HashU64(FNVOffset, a), b) != HashU64(HashU64(FNVOffset, b), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSinkAndQueries(t *testing.T) {
	s := diagnose.NewSink(8)
	s.Report(diagnose.Record{Step: 5, Actor: "M_A", Kind: diagnose.WrapOnOverflow})
	s.Report(diagnose.Record{Step: 9, Actor: "M_B", Kind: diagnose.WrapOnOverflow})
	s.Report(diagnose.Record{Step: 2, Actor: "M_C", Kind: diagnose.DivisionByZero})
	var r Results
	r.FromSink(s)
	if r.DiagTotal != 3 || len(r.Diags) != 3 {
		t.Errorf("totals: %d %d", r.DiagTotal, len(r.Diags))
	}
	if got := r.FirstDetectOf(diagnose.WrapOnOverflow); got != 5 {
		t.Errorf("FirstDetectOf overflow = %d", got)
	}
	if got := r.FirstDetectOf(diagnose.DivisionByZero); got != 2 {
		t.Errorf("FirstDetectOf div = %d", got)
	}
	if got := r.FirstDetectOf(diagnose.DomainError); got != -1 {
		t.Errorf("FirstDetectOf missing = %d", got)
	}
	sum := r.DiagSummary()
	if len(sum) != 3 {
		t.Errorf("summary = %v", sum)
	}
	// Deterministic ordering.
	if sum[0] > sum[1] || sum[1] > sum[2] {
		t.Errorf("summary not sorted: %v", sum)
	}
}

func TestJSONRoundTripExactHash(t *testing.T) {
	// uint64 hashes must survive JSON exactly (no float64 mangling).
	orig := Results{Model: "M", Engine: "AccMoS", Steps: 42, OutputHash: ^uint64(0) - 12345}
	b, err := json.Marshal(&orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.OutputHash != orig.OutputHash || back.Steps != orig.Steps {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestSameOutputs(t *testing.T) {
	a := &Results{Steps: 10, OutputHash: 7}
	b := &Results{Steps: 10, OutputHash: 7}
	c := &Results{Steps: 10, OutputHash: 8}
	d := &Results{Steps: 11, OutputHash: 7}
	if !SameOutputs(a, b) || SameOutputs(a, c) || SameOutputs(a, d) {
		t.Error("SameOutputs misbehaves")
	}
}
