package simresult

import (
	"bytes"
	"encoding/base64"

	"accmos/internal/coverage"
)

// DecodeGenerated parses the result document a generated binary emits,
// exploiting the fixed field order of the generated resultsJSON encoder
// (model, engine, steps, execNanos, outputHash, optional coverage,
// diagTotal, then optional diagnosis/monitor sections). It returns false
// without touching *r whenever the document deviates from that happy
// path — a diag-carrying run, an escaped string, a different producer —
// and the caller falls back to encoding/json. On a short-horizon batch
// the per-lane decode is the dominant harness cost, and this path is
// roughly an order of magnitude cheaper than reflection-based unmarshal.
func DecodeGenerated(b []byte, r *Results) bool {
	d := fastDoc{b: b}
	var out Results
	if !d.lit(`{"model":"`) {
		return false
	}
	model, ok := d.str()
	if !ok {
		return false
	}
	if !d.lit(`","engine":"`) {
		return false
	}
	engine, ok := d.str()
	if !ok {
		return false
	}
	if !d.lit(`","steps":`) {
		return false
	}
	steps, ok := d.num()
	if !ok {
		return false
	}
	if !d.lit(`,"execNanos":`) {
		return false
	}
	nanos, ok := d.num()
	if !ok {
		return false
	}
	if !d.lit(`,"outputHash":`) {
		return false
	}
	hash, ok := d.num()
	if !ok {
		return false
	}
	if d.lit(`,"coverage":{"actor":"`) {
		cov := &coverage.Raw{}
		for i, dst := range []*[]byte{&cov.Actor, &cov.Cond, &cov.Dec, &cov.MCDC} {
			enc, ok := d.str()
			if !ok {
				return false
			}
			raw, err := base64.StdEncoding.DecodeString(string(enc))
			if err != nil {
				return false
			}
			*dst = raw
			switch i {
			case 0:
				ok = d.lit(`","cond":"`)
			case 1:
				ok = d.lit(`","dec":"`)
			case 2:
				ok = d.lit(`","mcdc":"`)
			case 3:
				ok = d.lit(`"}`)
			}
			if !ok {
				return false
			}
		}
		out.Coverage = cov
	}
	if !d.lit(`,"diagTotal":`) {
		return false
	}
	diagTotal, ok := d.num()
	// Any trailing section (diag counts, monitors) drops to the slow path.
	if !ok || !d.lit(`}`) || len(bytes.TrimSpace(d.b)) != 0 {
		return false
	}
	out.Model = string(model)
	out.Engine = string(engine)
	out.Steps = int64(steps)
	out.ExecNanos = int64(nanos)
	out.OutputHash = hash
	out.DiagTotal = int64(diagTotal)
	*r = out
	return true
}

// fastDoc is a cursor over the undecoded remainder of the document.
type fastDoc struct{ b []byte }

// lit consumes the exact literal, reporting whether it was present.
func (d *fastDoc) lit(s string) bool {
	if len(d.b) < len(s) || string(d.b[:len(s)]) != s {
		return false
	}
	d.b = d.b[len(s):]
	return true
}

// str consumes up to the next closing quote, rejecting any string that
// needs unescaping.
func (d *fastDoc) str() ([]byte, bool) {
	i := bytes.IndexByte(d.b, '"')
	if i < 0 || bytes.IndexByte(d.b[:i], '\\') >= 0 {
		return nil, false
	}
	s := d.b[:i]
	d.b = d.b[i:]
	return s, true
}

// num consumes a non-negative decimal integer (the generated encoder
// never emits negative or fractional values for these fields).
func (d *fastDoc) num() (uint64, bool) {
	var v uint64
	n := 0
	for n < len(d.b) && d.b[n] >= '0' && d.b[n] <= '9' {
		v = v*10 + uint64(d.b[n]-'0')
		n++
	}
	if n == 0 || n > 20 {
		return 0, false
	}
	d.b = d.b[n:]
	return v, true
}
