package actors

import (
	"fmt"

	"accmos/internal/model"
	"accmos/internal/types"
)

// Discrete actors: blocks with per-step state. Stateful (non-feedthrough)
// blocks output previous state during Eval and commit the new state in
// Update, which every engine runs after the full Eval pass — exactly the
// delayed-assignment semantics Simulink gives UnitDelay and friends.

func init() {
	registerUnitDelayLike("UnitDelay")
	registerUnitDelayLike("Memory")
	registerDelay()
	registerDiscreteIntegrator()
	registerDiscreteDerivative()
	registerDiscreteFilter()
	registerZeroOrderHold()
	registerRateLimiter()
}

func registerUnitDelayLike(name string) {
	register(&Spec{
		Type: model.ActorType(name), MinIn: 1, MaxIn: 1, NumOut: 1,
		Stateful: true,
		OutKind:  func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: maxInWidth,
		Prepare: func(in *Info) error {
			ic, err := paramValue(in, "InitialCondition", in.OutKind(), "0")
			if err != nil {
				return err
			}
			in.Aux = ic
			return nil
		},
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{in.Aux.(types.Value)}
		},
		Eval: func(ec *EvalCtx) { ec.SetOut(ec.State.Vals[0]) },
		Update: func(ec *EvalCtx) {
			v, cr := types.Convert(ec.In[0], ec.Info.OutKind())
			ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
			ec.Flags.PrecisionLoss = ec.Flags.PrecisionLoss || cr.PrecisionLoss
			ec.State.Vals[0] = v
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			ic := gc.Info.Aux.(types.Value)
			sv := gc.V("state")
			gc.Prog.Global(fmt.Sprintf("var %s %s", sv, GoVarType(k, gc.Info.OutWidth())))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, initLiteral(ic, k, gc.Info.OutWidth())))
			gc.L("%s = %s", gc.Out[0], sv)
			if gc.Info.OutWidth() > 1 {
				gc.Prog.UpdateStmt(fmt.Sprintf("for i := 0; i < %d; i++ { %s[i] = %s }",
					gc.Info.OutWidth(), sv, Cast(gc.In[0]+"[i]", gc.Info.InKinds[0], k)))
			} else {
				gc.Prog.UpdateStmt(fmt.Sprintf("%s = %s", sv, Cast(gc.In[0], gc.Info.InKinds[0], k)))
			}
			return nil
		},
	})
}

// initLiteral renders an initial-condition literal, broadcasting scalars to
// vector widths.
func initLiteral(v types.Value, k types.Kind, width int) string {
	if width <= 1 || v.IsVector() {
		return v.GoLiteral()
	}
	vec := types.Value{Kind: k, Elems: make([]types.Value, width)}
	for i := range vec.Elems {
		vec.Elems[i] = v
	}
	return vec.GoLiteral()
}

func registerDelay() {
	register(&Spec{
		Type: "Delay", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		Stateful:   true,
		OutKind:    func(in *Info) types.Kind { return in.InKinds[0] },
		Prepare: func(in *Info) error {
			n, err := paramI64(in, "DelayLength", 1)
			if err != nil {
				return err
			}
			if n < 1 || n > 1<<20 {
				return fmt.Errorf("Delay DelayLength=%d out of range", n)
			}
			ic, err := paramValue(in, "InitialCondition", in.OutKind(), "0")
			if err != nil {
				return err
			}
			in.Aux = [2]interface{}{n, ic}
			return nil
		},
		Init: func(in *Info, st *State) {
			aux := in.Aux.([2]interface{})
			n := aux[0].(int64)
			ic := aux[1].(types.Value)
			st.Ring = make([]types.Value, n)
			for i := range st.Ring {
				st.Ring[i] = ic
			}
			st.Pos = 0
		},
		Eval: func(ec *EvalCtx) { ec.SetOut(ec.State.Ring[ec.State.Pos]) },
		Update: func(ec *EvalCtx) {
			v, cr := types.Convert(ec.In[0], ec.Info.OutKind())
			ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
			ec.State.Ring[ec.State.Pos] = v
			ec.State.Pos = (ec.State.Pos + 1) % len(ec.State.Ring)
		},
		Gen: func(gc *GenCtx) error {
			aux := gc.Info.Aux.([2]interface{})
			n := aux[0].(int64)
			ic := aux[1].(types.Value)
			k := gc.Info.OutKind()
			buf, pos := gc.V("ring"), gc.V("pos")
			gc.Prog.Global(fmt.Sprintf("var %s [%d]%s", buf, n, k.GoType()))
			gc.Prog.Global(fmt.Sprintf("var %s int", pos))
			gc.Prog.InitStmt(fmt.Sprintf("for i := range %s { %s[i] = %s }", buf, buf, ic.GoLiteral()))
			gc.Prog.InitStmt(fmt.Sprintf("%s = 0", pos))
			gc.L("%s = %s[%s]", gc.Out[0], buf, pos)
			gc.Prog.UpdateStmt(fmt.Sprintf("%s[%s] = %s", buf, pos, Cast(gc.In[0], gc.Info.InKinds[0], k)))
			gc.Prog.UpdateStmt(fmt.Sprintf("%s = (%s + 1) %% %d", pos, pos, n))
			return nil
		},
	})
}

func registerDiscreteIntegrator() {
	register(&Spec{
		Type: "DiscreteIntegrator", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		Stateful:   true,
		OutKind:    func(in *Info) types.Kind { return in.InKinds[0] },
		Prepare: func(in *Info) error {
			ic, err := paramValue(in, "InitialCondition", in.OutKind(), "0")
			if err != nil {
				return err
			}
			gain, err := paramValue(in, "Gain", in.OutKind(), "1")
			if err != nil {
				return err
			}
			in.Aux = [2]types.Value{ic, gain}
			return nil
		},
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{in.Aux.([2]types.Value)[0]}
		},
		Eval: func(ec *EvalCtx) { ec.SetOut(ec.State.Vals[0]) },
		Update: func(ec *EvalCtx) {
			// Forward Euler: state += K * u. Long-horizon integer
			// accumulation here is the paper's archetypal wrap-on-overflow
			// site.
			k := ec.Info.OutKind()
			gain := ec.Info.Aux.([2]types.Value)[1]
			inc, r1 := types.Mul(k, gain, ec.In[0])
			next, r2 := types.Add(k, ec.State.Vals[0], inc)
			ec.Flags.Merge(r1)
			ec.Flags.Merge(r2)
			ec.State.Vals[0] = next
		},
		Gen: func(gc *GenCtx) error {
			aux := gc.Info.Aux.([2]types.Value)
			k := gc.Info.OutKind()
			sv := gc.V("acc")
			gc.Prog.Global(fmt.Sprintf("var %s %s", sv, k.GoType()))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, aux[0].GoLiteral()))
			gc.L("%s = %s", gc.Out[0], sv)
			u := Cast(gc.In[0], gc.Info.InKinds[0], k)
			slot := gc.Prog.DiagSlot(gc.Info, "WrapOnOverflow")
			if k.IsInteger() && slot >= 0 {
				stmts := []string{
					"ovf := false",
					fmt.Sprintf("var inc %s", k.GoType()),
					fmt.Sprintf("var next %s", k.GoType()),
				}
				stmts = append(stmts, CheckedMulStmts(k, "inc", aux[1].GoLiteral(), u, "ovf", gc.V("di"))...)
				stmts = append(stmts, CheckedAddStmts(k, "next", sv, "inc", "ovf")...)
				stmts = append(stmts,
					fmt.Sprintf("if ovf { reportDiag(%d, step, \"\") }", slot),
					fmt.Sprintf("%s = next", sv))
				gc.Prog.UpdateStmt("{ " + joinStmts(stmts) + " }")
				return nil
			}
			inc := binExpr(k, aux[1].GoLiteral(), "*", u)
			next := binExpr(k, sv, "+", inc)
			if nanSlot := gc.Prog.DiagSlot(gc.Info, "NaNOrInf"); k.IsFloat() && nanSlot >= 0 {
				gc.Prog.Import("math")
				gc.Prog.UpdateStmt(fmt.Sprintf(
					"{ next := %s; if %s { reportDiag(%d, step, \"\") }; %s = next }",
					next, NaNOrInfCond("next", k), nanSlot, sv))
				return nil
			}
			gc.Prog.UpdateStmt(fmt.Sprintf("%s = %s", sv, next))
			return nil
		},
	})
}

func registerDiscreteDerivative() {
	register(&Spec{
		Type: "DiscreteDerivative", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(in *Info) types.Kind { return in.InKinds[0] },
		Prepare: func(in *Info) error {
			gain, err := paramValue(in, "Gain", in.OutKind(), "1")
			if err != nil {
				return err
			}
			in.Aux = gain
			return nil
		},
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{types.Zero(in.OutKind())}
		},
		Eval: func(ec *EvalCtx) {
			// y = K * (u - u_prev); feedthrough with internal state.
			k := ec.Info.OutKind()
			gain := ec.Info.Aux.(types.Value)
			diff, r1 := types.Sub(k, ec.In[0], ec.State.Vals[0])
			out, r2 := types.Mul(k, gain, diff)
			ec.Flags.Merge(r1)
			ec.Flags.Merge(r2)
			ec.SetOut(out)
		},
		Update: func(ec *EvalCtx) {
			v, _ := types.Convert(ec.In[0], ec.Info.OutKind())
			ec.State.Vals[0] = v
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			gain := gc.Info.Aux.(types.Value)
			sv := gc.V("prev")
			gc.Prog.Global(fmt.Sprintf("var %s %s", sv, k.GoType()))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, GoZero(k)))
			diff := binExpr(k, Cast(gc.In[0], gc.Info.InKinds[0], k), "-", sv)
			gc.L("%s = %s", gc.Out[0], binExpr(k, gain.GoLiteral(), "*", diff))
			gc.Prog.UpdateStmt(fmt.Sprintf("%s = %s", sv, Cast(gc.In[0], gc.Info.InKinds[0], k)))
			return nil
		},
	})
}

// filterAux holds the first-order IIR coefficients y = a*y_prev + b*u.
type filterAux struct{ a, b float64 }

func registerDiscreteFilter() {
	register(&Spec{
		Type: "DiscreteFilter", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(in *Info) types.Kind { return floatOrF64(in.InKinds[0]) },
		Prepare: func(in *Info) error {
			a, err := paramF64(in, "A", 0.5)
			if err != nil {
				return err
			}
			b, err := paramF64(in, "B", 0.5)
			if err != nil {
				return err
			}
			in.Aux = filterAux{a, b}
			return nil
		},
		Init: func(in *Info, st *State) {
			// Vals[0] = committed y_prev, Vals[1] = pending y.
			st.Vals = []types.Value{types.Zero(in.OutKind()), types.Zero(in.OutKind())}
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(filterAux)
			k := ec.Info.OutKind()
			y := a.a*ec.State.Vals[0].AsFloat() + a.b*ec.In[0].AsFloat()
			out, _ := types.Convert(types.FloatVal(types.F64, y), k)
			ec.State.Vals[1] = out
			ec.SetOut(out)
		},
		Update: func(ec *EvalCtx) { ec.State.Vals[0] = ec.State.Vals[1] },
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(filterAux)
			k := gc.Info.OutKind()
			sv := gc.V("y")
			gc.Prog.Global(fmt.Sprintf("var %s %s", sv, k.GoType()))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, GoZero(k)))
			expr := fmt.Sprintf("(%s*float64(%s) + %s*%s)",
				f64Lit(a.a), sv, f64Lit(a.b), CastToF64(gc.In[0], gc.Info.InKinds[0]))
			gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, k))
			gc.Prog.UpdateStmt(fmt.Sprintf("%s = %s", sv, gc.Out[0]))
			return nil
		},
	})
}

func registerZeroOrderHold() {
	register(&Spec{
		Type: "ZeroOrderHold", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(in *Info) types.Kind { return in.InKinds[0] },
		Prepare: func(in *Info) error {
			n, err := paramI64(in, "SampleSteps", 1)
			if err != nil {
				return err
			}
			if n < 1 {
				return fmt.Errorf("ZeroOrderHold SampleSteps must be >= 1, got %d", n)
			}
			in.Aux = n
			return nil
		},
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{types.Zero(in.OutKind())}
		},
		Eval: func(ec *EvalCtx) {
			n := ec.Info.Aux.(int64)
			if ec.Step%n == 0 {
				v, cr := types.Convert(ec.In[0], ec.Info.OutKind())
				ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
				ec.State.Vals[0] = v
			}
			ec.SetOut(ec.State.Vals[0])
		},
		Gen: func(gc *GenCtx) error {
			n := gc.Info.Aux.(int64)
			k := gc.Info.OutKind()
			sv := gc.V("hold")
			gc.Prog.Global(fmt.Sprintf("var %s %s", sv, k.GoType()))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, GoZero(k)))
			gc.Block(fmt.Sprintf("if step%%%d == 0", n), func() {
				gc.L("%s = %s", sv, Cast(gc.In[0], gc.Info.InKinds[0], k))
			})
			gc.L("%s = %s", gc.Out[0], sv)
			return nil
		},
	})
}

// rlAux holds RateLimiter parameters.
type rlAux struct{ up, down float64 }

func registerRateLimiter() {
	register(&Spec{
		Type: "RateLimiter", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(in *Info) types.Kind { return floatOrF64(in.InKinds[0]) },
		Prepare: func(in *Info) error {
			up, err := paramF64(in, "RisingLimit", 1)
			if err != nil {
				return err
			}
			down, err := paramF64(in, "FallingLimit", 1)
			if err != nil {
				return err
			}
			if up < 0 || down < 0 {
				return fmt.Errorf("RateLimiter limits must be non-negative (rising %g, falling %g)", up, down)
			}
			in.Aux = rlAux{up, down}
			return nil
		},
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{types.Zero(in.OutKind()), types.Zero(in.OutKind())}
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(rlAux)
			k := ec.Info.OutKind()
			prev := ec.State.Vals[0].AsFloat()
			u := ec.In[0].AsFloat()
			y := u
			if u > prev+a.up {
				y = prev + a.up
			} else if u < prev-a.down {
				y = prev - a.down
			}
			out, _ := types.Convert(types.FloatVal(types.F64, y), k)
			ec.State.Vals[1] = out
			ec.SetOut(out)
		},
		Update: func(ec *EvalCtx) { ec.State.Vals[0] = ec.State.Vals[1] },
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(rlAux)
			k := gc.Info.OutKind()
			sv := gc.V("rlPrev")
			gc.Prog.Global(fmt.Sprintf("var %s float64", sv))
			gc.Prog.InitStmt(fmt.Sprintf("%s = 0", sv))
			uv, yv := gc.V("rlU"), gc.V("rlY")
			gc.L("%s := %s", uv, CastToF64(gc.In[0], gc.Info.InKinds[0]))
			gc.L("%s := %s", yv, uv)
			gc.Block(fmt.Sprintf("if %s > %s+%s", uv, sv, f64Lit(a.up)), func() {
				gc.L("%s = %s + %s", yv, sv, f64Lit(a.up))
			})
			gc.Block(fmt.Sprintf("else if %s < %s-%s", uv, sv, f64Lit(a.down)), func() {
				gc.L("%s = %s - %s", yv, sv, f64Lit(a.down))
			})
			gc.L("%s = %s", gc.Out[0], Cast(yv, types.F64, k))
			gc.Prog.UpdateStmt(fmt.Sprintf("%s = float64(%s)", sv, gc.Out[0]))
			return nil
		},
	})
}
