package actors

import (
	"fmt"
	"math"
	"testing"

	"accmos/internal/model"
	"accmos/internal/types"
)

// rig evaluates one actor instance directly, bypassing the engines, so
// each actor type's Eval/Update semantics can be pinned in isolation.
type rig struct {
	t    *testing.T
	info *Info
	ec   EvalCtx
	st   State
	ds   map[string]types.Value
}

// DSRead / DSWrite give the rig a trivial data-store environment.
func (r *rig) DSRead(name string) types.Value { return r.ds[name] }
func (r *rig) DSWrite(name string, v types.Value) {
	cv, _ := types.Convert(v, types.I32)
	r.ds[name] = cv
}

// newRig compiles a one-actor model with constant drivers of the given
// kinds and prepares an EvalCtx around it.
func newRig(t *testing.T, typ model.ActorType, op string, inKinds []types.Kind, opts ...model.ActorOpt) *rig {
	t.Helper()
	b := model.NewBuilder("RIG")
	allOpts := append([]model.ActorOpt{}, opts...)
	if op != "" {
		allOpts = append(allOpts, model.WithOperator(op))
	}
	spec, err := Lookup(typ)
	if err != nil {
		t.Fatal(err)
	}
	nOut := spec.NumOut
	b.Add("X", typ, len(inKinds), nOut, allOpts...)
	for i, k := range inKinds {
		src := fmt.Sprintf("C%d", i)
		val := "1"
		if k == types.Bool {
			val = "true"
		}
		b.Add(src, "Constant", 0, 1, model.WithOutKind(k), model.WithParam("Value", val))
		b.Wire(src, "X", i)
	}
	if nOut > 0 {
		b.Add("T", "Terminator", 1, 0)
		b.Wire("X", "T", 0)
	}
	c, err := Compile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{t: t, info: c.Info("X"), ds: map[string]types.Value{}}
	r.ec.Info = r.info
	r.ec.In = make([]types.Value, len(inKinds))
	r.ec.Outs = make([]types.Value, nOut)
	r.ec.State = &r.st
	r.ec.DS = r
	if r.info.Spec.Init != nil {
		r.info.Spec.Init(r.info, &r.st)
	}
	return r
}

// eval runs one Eval at the given step.
func (r *rig) eval(step int64, ins ...types.Value) (types.Value, types.OpResult) {
	r.t.Helper()
	r.ec.Reset(step)
	copy(r.ec.In, ins)
	r.info.Spec.Eval(&r.ec)
	var out types.Value
	if len(r.ec.Outs) > 0 {
		out = r.ec.Outs[0]
	}
	return out, r.ec.Flags
}

// update runs the Update hook with the given current inputs.
func (r *rig) update(ins ...types.Value) types.OpResult {
	r.t.Helper()
	r.ec.Flags = types.OpResult{}
	copy(r.ec.In, ins)
	r.info.Spec.Update(&r.ec)
	return r.ec.Flags
}

func i32(v int64) types.Value    { return types.IntVal(types.I32, v) }
func f64v(v float64) types.Value { return types.FloatVal(types.F64, v) }
func bv(v bool) types.Value      { return types.BoolVal(v) }

// ---- sources ----

func TestEvalConstantAndGround(t *testing.T) {
	r := newRig(t, "Constant", "", nil, model.WithOutKind(types.I16), model.WithParam("Value", "-42"))
	out, _ := r.eval(0)
	if out.Kind != types.I16 || out.I != -42 {
		t.Errorf("constant = %v", out)
	}
	g := newRig(t, "Ground", "", nil, model.WithOutKind(types.F64))
	out, _ = g.eval(5)
	if out.F != 0 {
		t.Errorf("ground = %v", out)
	}
}

func TestEvalStepRampClock(t *testing.T) {
	r := newRig(t, "Step", "", nil,
		model.WithParam("StepTime", "3"), model.WithParam("Before", "-1"), model.WithParam("After", "2"))
	for step, want := range map[int64]float64{0: -1, 2: -1, 3: 2, 100: 2} {
		if out, _ := r.eval(step); out.F != want {
			t.Errorf("step@%d = %v, want %g", step, out, want)
		}
	}
	rp := newRig(t, "Ramp", "", nil, model.WithParam("Start", "10"), model.WithParam("Slope", "-2"))
	if out, _ := rp.eval(4); out.F != 2 {
		t.Errorf("ramp@4 = %v", out)
	}
	ck := newRig(t, "Clock", "", nil, model.WithParam("SampleTime", "0.25"))
	if out, _ := ck.eval(8); out.F != 2 {
		t.Errorf("clock@8 = %v", out)
	}
}

func TestEvalSineAndSignalGenerator(t *testing.T) {
	sw := newRig(t, "SineWave", "", nil,
		model.WithParam("Amplitude", "2"), model.WithParam("Frequency", "0.5"),
		model.WithParam("Phase", "1"), model.WithParam("Bias", "0.5"))
	out, _ := sw.eval(3)
	want := 2*math.Sin(0.5*3+1) + 0.5
	if out.F != want {
		t.Errorf("sine@3 = %v, want %g", out, want)
	}
	sq := newRig(t, "SignalGenerator", "square", nil,
		model.WithParam("Period", "10"), model.WithParam("Amplitude", "3"))
	if out, _ := sq.eval(2); out.F != 3 {
		t.Errorf("square@2 = %v", out)
	}
	if out, _ := sq.eval(7); out.F != -3 {
		t.Errorf("square@7 = %v", out)
	}
	st := newRig(t, "SignalGenerator", "sawtooth", nil,
		model.WithParam("Period", "8"), model.WithParam("Amplitude", "4"))
	if out, _ := st.eval(6); out.F != 3 {
		t.Errorf("sawtooth@6 = %v", out)
	}
}

func TestEvalPulseGenerator(t *testing.T) {
	r := newRig(t, "PulseGenerator", "", nil,
		model.WithParam("Period", "5"), model.WithParam("Width", "2"), model.WithParam("Amplitude", "7"))
	wants := []float64{7, 7, 0, 0, 0, 7, 7, 0}
	for step, want := range wants {
		if out, _ := r.eval(int64(step)); out.F != want {
			t.Errorf("pulse@%d = %v, want %g", step, out, want)
		}
	}
}

func TestEvalRandomNumberDeterministic(t *testing.T) {
	mk := func() *rig {
		return newRig(t, "RandomNumber", "", nil,
			model.WithParam("Seed", "5"), model.WithParam("Min", "-2"), model.WithParam("Max", "2"))
	}
	a, b := mk(), mk()
	for step := int64(0); step < 50; step++ {
		va, _ := a.eval(step)
		vb, _ := b.eval(step)
		if va.F != vb.F {
			t.Fatalf("nondeterministic at %d", step)
		}
		if va.F < -2 || va.F >= 2 {
			t.Fatalf("out of range: %g", va.F)
		}
	}
}

func TestEvalCounter(t *testing.T) {
	r := newRig(t, "Counter", "", nil,
		model.WithParam("Start", "10"), model.WithParam("Inc", "5"))
	out, _ := r.eval(0)
	if out.I != 10 {
		t.Errorf("counter@0 = %v", out)
	}
	r.update()
	out, _ = r.eval(1)
	if out.I != 15 {
		t.Errorf("counter@1 = %v", out)
	}
	// Wrap on overflow is flagged from the update.
	r.st.Vals[0] = i32(math.MaxInt32 - 2)
	res := r.update()
	if !res.Overflow {
		t.Error("counter wrap not flagged")
	}
}

// ---- math ----

func TestEvalSumSigns(t *testing.T) {
	r := newRig(t, "Sum", "+-+", []types.Kind{types.I32, types.I32, types.I32})
	out, res := r.eval(0, i32(10), i32(4), i32(1))
	if out.I != 7 || res.Any() {
		t.Errorf("10-4+1 = %v, %+v", out, res)
	}
	neg := newRig(t, "Sum", "-", []types.Kind{types.I32})
	out, _ = neg.eval(0, i32(9))
	if out.I != -9 {
		t.Errorf("-9 = %v", out)
	}
	_, res = r.eval(0, i32(math.MaxInt32), i32(-1), i32(0))
	if !res.Overflow {
		t.Error("overflow not flagged")
	}
}

func TestEvalProductDivide(t *testing.T) {
	r := newRig(t, "Product", "*/", []types.Kind{types.I32, types.I32})
	out, res := r.eval(0, i32(42), i32(6))
	if out.I != 7 || res.Any() {
		t.Errorf("42/6 = %v %+v", out, res)
	}
	out, res = r.eval(0, i32(42), i32(0))
	if out.I != 0 || !res.DivByZero {
		t.Errorf("42/0 = %v %+v", out, res)
	}
	rec := newRig(t, "Product", "/", []types.Kind{types.F64})
	out, _ = rec.eval(0, f64v(4))
	if out.F != 0.25 {
		t.Errorf("1/4 = %v", out)
	}
}

func TestEvalGainBiasAbsNeg(t *testing.T) {
	g := newRig(t, "Gain", "", []types.Kind{types.F64}, model.WithParam("Gain", "2.5"))
	if out, _ := g.eval(0, f64v(4)); out.F != 10 {
		t.Errorf("gain = %v", out)
	}
	bi := newRig(t, "Bias", "", []types.Kind{types.I32}, model.WithParam("Bias", "-3"))
	if out, _ := bi.eval(0, i32(10)); out.I != 7 {
		t.Errorf("bias = %v", out)
	}
	ab := newRig(t, "Abs", "", []types.Kind{types.I32})
	if out, _ := ab.eval(0, i32(-5)); out.I != 5 {
		t.Errorf("abs = %v", out)
	}
	um := newRig(t, "UnaryMinus", "", []types.Kind{types.F64})
	if out, _ := um.eval(0, f64v(2.5)); out.F != -2.5 {
		t.Errorf("neg = %v", out)
	}
}

func TestEvalMathOperators(t *testing.T) {
	cases := []struct {
		op   string
		in   float64
		want float64
	}{
		{"exp", 0, 1}, {"log", math.E, 1}, {"sqrt", 16, 4},
		{"sin", 0, 0}, {"cos", 0, 1}, {"tanh", 0, 0},
		{"square", 3, 9}, {"reciprocal", 4, 0.25},
	}
	for _, c := range cases {
		r := newRig(t, "Math", c.op, []types.Kind{types.F64})
		out, _ := r.eval(0, f64v(c.in))
		if math.Abs(out.F-c.want) > 1e-12 {
			t.Errorf("%s(%g) = %v, want %g", c.op, c.in, out, c.want)
		}
	}
	r := newRig(t, "Math", "log", []types.Kind{types.F64})
	if _, res := r.eval(0, f64v(-1)); !res.DomainErr {
		t.Error("log(-1) must flag domain error")
	}
}

func TestEvalMinMaxSignRounding(t *testing.T) {
	mn := newRig(t, "MinMax", "min", []types.Kind{types.F64, types.F64, types.F64})
	if out, _ := mn.eval(0, f64v(3), f64v(-1), f64v(2)); out.F != -1 {
		t.Errorf("min = %v", out)
	}
	mx := newRig(t, "MinMax", "max", []types.Kind{types.I32, types.I32})
	if out, _ := mx.eval(0, i32(3), i32(9)); out.I != 9 {
		t.Errorf("max = %v", out)
	}
	sg := newRig(t, "Sign", "", []types.Kind{types.F64})
	for in, want := range map[float64]float64{-3: -1, 0: 0, 7: 1} {
		if out, _ := sg.eval(0, f64v(in)); out.F != want {
			t.Errorf("sign(%g) = %v", in, out)
		}
	}
	fl := newRig(t, "Rounding", "floor", []types.Kind{types.F64})
	if out, _ := fl.eval(0, f64v(2.9)); out.F != 2 {
		t.Errorf("floor = %v", out)
	}
	fx := newRig(t, "Rounding", "fix", []types.Kind{types.F64})
	if out, _ := fx.eval(0, f64v(-2.9)); out.F != -2 {
		t.Errorf("fix = %v", out)
	}
}

func TestEvalPolynomialHorner(t *testing.T) {
	// Descending coefficients: 2x^2 - 3x + 1 at x=4 -> 21.
	r := newRig(t, "Polynomial", "", []types.Kind{types.F64}, model.WithParam("Coeffs", "[2 -3 1]"))
	if out, _ := r.eval(0, f64v(4)); out.F != 21 {
		t.Errorf("poly(4) = %v", out)
	}
}

func TestEvalModAndReduce(t *testing.T) {
	md := newRig(t, "Mod", "", []types.Kind{types.I32, types.I32})
	if out, _ := md.eval(0, i32(17), i32(5)); out.I != 2 {
		t.Errorf("17 mod 5 = %v", out)
	}
	if _, res := md.eval(0, i32(17), i32(0)); !res.DivByZero {
		t.Error("mod by zero must flag")
	}
	// Element reducers accept vector payloads directly (the rig's wiring
	// kinds stay scalar; Eval consumes whatever value arrives).
	vec := types.VectorVal(types.I32, i32(2), i32(3), i32(4))
	soe := newRig(t, "SumOfElements", "", []types.Kind{types.I32})
	if out, _ := soe.eval(0, vec); out.I != 9 {
		t.Errorf("sum of [2 3 4] = %v", out)
	}
	poe := newRig(t, "ProductOfElements", "", []types.Kind{types.I32})
	if out, _ := poe.eval(0, vec); out.I != 24 {
		t.Errorf("product of [2 3 4] = %v", out)
	}
	dp := newRig(t, "DotProduct", "", []types.Kind{types.I32, types.I32})
	if out, _ := dp.eval(0, vec, vec); out.I != 4+9+16 {
		t.Errorf("dot = %v", out)
	}
}

// ---- logic ----

func TestEvalLogicTruthTables(t *testing.T) {
	tt := []struct {
		op   string
		a, b bool
		want bool
	}{
		{"AND", true, true, true}, {"AND", true, false, false},
		{"OR", false, false, false}, {"OR", true, false, true},
		{"NAND", true, true, false}, {"NOR", false, false, true},
		{"XOR", true, false, true}, {"XOR", true, true, false},
		{"NXOR", true, true, true},
	}
	for _, c := range tt {
		r := newRig(t, "Logic", c.op, []types.Kind{types.Bool, types.Bool})
		out, _ := r.eval(0, bv(c.a), bv(c.b))
		if out.B != c.want {
			t.Errorf("%s(%v,%v) = %v", c.op, c.a, c.b, out.B)
		}
		if r.ec.Decision != boolToDec(c.want) {
			t.Errorf("%s decision reporting = %d", c.op, r.ec.Decision)
		}
		if len(r.ec.Conds) != 2 || r.ec.Conds[0] != c.a || r.ec.Conds[1] != c.b {
			t.Errorf("%s condition reporting = %v", c.op, r.ec.Conds)
		}
	}
	not := newRig(t, "Logic", "NOT", []types.Kind{types.Bool})
	if out, _ := not.eval(0, bv(true)); out.B {
		t.Error("NOT true = true")
	}
}

func boolToDec(b bool) int8 {
	if b {
		return 1
	}
	return 0
}

func TestEvalLogicNumericTruthiness(t *testing.T) {
	r := newRig(t, "Logic", "AND", []types.Kind{types.F64, types.I32})
	out, _ := r.eval(0, f64v(0.5), i32(3))
	if !out.B {
		t.Error("nonzero operands must be truthy")
	}
	out, _ = r.eval(0, f64v(0), i32(3))
	if out.B {
		t.Error("zero operand must be falsy")
	}
}

func TestEvalRelationalAndCompares(t *testing.T) {
	ops := map[string][3]bool{
		// results for (1,2), (2,2), (3,2)
		"==": {false, true, false},
		"~=": {true, false, true},
		"<":  {true, false, false},
		"<=": {true, true, false},
		">":  {false, false, true},
		">=": {false, true, true},
	}
	for op, wants := range ops {
		r := newRig(t, "RelationalOperator", op, []types.Kind{types.I32, types.I32})
		for i, a := range []int64{1, 2, 3} {
			out, _ := r.eval(0, i32(a), i32(2))
			if out.B != wants[i] {
				t.Errorf("%d %s 2 = %v, want %v", a, op, out.B, wants[i])
			}
		}
	}
	cz := newRig(t, "CompareToZero", ">", []types.Kind{types.F64})
	if out, _ := cz.eval(0, f64v(0.1)); !out.B {
		t.Error("0.1 > 0 failed")
	}
	cc := newRig(t, "CompareToConstant", "<=", []types.Kind{types.I32}, model.WithParam("Constant", "5"))
	if out, _ := cc.eval(0, i32(5)); !out.B {
		t.Error("5 <= 5 failed")
	}
}

func TestEvalRelationalNaN(t *testing.T) {
	nan := types.FloatVal(types.F64, math.NaN())
	eq := newRig(t, "RelationalOperator", "==", []types.Kind{types.F64, types.F64})
	if out, _ := eq.eval(0, nan, f64v(1)); out.B {
		t.Error("NaN == x must be false")
	}
	ne := newRig(t, "RelationalOperator", "~=", []types.Kind{types.F64, types.F64})
	if out, _ := ne.eval(0, nan, f64v(1)); !out.B {
		t.Error("NaN ~= x must be true")
	}
	lt := newRig(t, "RelationalOperator", "<", []types.Kind{types.F64, types.F64})
	if out, _ := lt.eval(0, nan, f64v(1)); out.B {
		t.Error("NaN < x must be false")
	}
}

func TestEvalBitwiseAndShift(t *testing.T) {
	bw := newRig(t, "BitwiseOperator", "XOR", []types.Kind{types.U8, types.U8})
	out, _ := bw.eval(0, types.UintVal(types.U8, 0b1100), types.UintVal(types.U8, 0b1010))
	if out.U != 0b0110 {
		t.Errorf("xor = %b", out.U)
	}
	nt := newRig(t, "BitwiseOperator", "NOT", []types.Kind{types.U8})
	out, _ = nt.eval(0, types.UintVal(types.U8, 0b1100))
	if out.U != 0b11110011 {
		t.Errorf("not = %b", out.U)
	}
	sh := newRig(t, "Shift", "left", []types.Kind{types.I8}, model.WithParam("Bits", "2"))
	out, res := sh.eval(0, types.IntVal(types.I8, 3))
	if out.I != 12 || res.Overflow {
		t.Errorf("3<<2 = %v %+v", out, res)
	}
	_, res = sh.eval(0, types.IntVal(types.I8, 100))
	if !res.Overflow {
		t.Error("100<<2 in i8 must flag overflow")
	}
	sr := newRig(t, "Shift", "right", []types.Kind{types.I32}, model.WithParam("Bits", "3"))
	if out, _ := sr.eval(0, i32(-64)); out.I != -8 {
		t.Errorf("-64>>3 = %v (arithmetic shift expected)", out)
	}
}

// ---- control ----

func TestEvalSwitchCriteria(t *testing.T) {
	ge := newRig(t, "Switch", ">=", []types.Kind{types.F64, types.F64, types.F64},
		model.WithParam("Threshold", "1"))
	out, _ := ge.eval(0, f64v(10), f64v(1), f64v(20))
	if out.F != 10 || ge.ec.Branch != 0 {
		t.Errorf("pass branch: %v br=%d", out, ge.ec.Branch)
	}
	out, _ = ge.eval(0, f64v(10), f64v(0.5), f64v(20))
	if out.F != 20 || ge.ec.Branch != 1 {
		t.Errorf("else branch: %v br=%d", out, ge.ec.Branch)
	}
	nz := newRig(t, "Switch", "~=0", []types.Kind{types.F64, types.I32, types.F64})
	if out, _ := nz.eval(0, f64v(1), i32(0), f64v(2)); out.F != 2 {
		t.Errorf("~=0 false: %v", out)
	}
}

func TestEvalMultiportSwitchAndIf(t *testing.T) {
	m := newRig(t, "MultiportSwitch", "", []types.Kind{types.I32, types.F64, types.F64, types.F64})
	out, res := m.eval(0, i32(2), f64v(10), f64v(20), f64v(30))
	if out.F != 20 || res.Any() || m.ec.Branch != 1 {
		t.Errorf("mps(2) = %v %+v br=%d", out, res, m.ec.Branch)
	}
	out, res = m.eval(0, i32(9), f64v(10), f64v(20), f64v(30))
	if out.F != 30 || !res.OutOfRange {
		t.Errorf("mps(9) clamps to last: %v %+v", out, res)
	}
	out, res = m.eval(0, i32(0), f64v(10), f64v(20), f64v(30))
	if out.F != 10 || !res.OutOfRange {
		t.Errorf("mps(0) clamps to first: %v %+v", out, res)
	}
	iff := newRig(t, "If", "", []types.Kind{types.Bool, types.F64, types.F64})
	if out, _ := iff.eval(0, bv(true), f64v(1), f64v(2)); out.F != 1 {
		t.Errorf("if true = %v", out)
	}
	if out, _ := iff.eval(0, bv(false), f64v(1), f64v(2)); out.F != 2 {
		t.Errorf("if false = %v", out)
	}
}

func TestEvalRelayHysteresis(t *testing.T) {
	r := newRig(t, "Relay", "", []types.Kind{types.F64},
		model.WithParam("OnPoint", "2"), model.WithParam("OffPoint", "-2"),
		model.WithParam("OnValue", "10"), model.WithParam("OffValue", "0"))
	seq := []struct {
		in   float64
		want float64
	}{
		{0, 0},   // starts off; between points holds off
		{3, 10},  // crosses on point
		{0, 10},  // holds on within the band
		{-3, 0},  // crosses off point
		{1.9, 0}, // holds off
	}
	for i, s := range seq {
		out, _ := r.eval(int64(i), f64v(s.in))
		if out.F != s.want {
			t.Errorf("relay step %d in %g = %v, want %g", i, s.in, out, s.want)
		}
	}
}

func TestEvalSaturationDeadZoneQuantizer(t *testing.T) {
	sat := newRig(t, "Saturation", "", []types.Kind{types.F64},
		model.WithParam("Min", "-1"), model.WithParam("Max", "1"))
	for in, want := range map[float64]float64{-5: -1, 0.5: 0.5, 5: 1} {
		out, _ := sat.eval(0, f64v(in))
		if out.F != want {
			t.Errorf("sat(%g) = %v", in, out)
		}
	}
	if _, _ = sat.eval(0, f64v(9)); sat.ec.Branch != 2 {
		t.Errorf("sat high branch = %d", sat.ec.Branch)
	}
	dz := newRig(t, "DeadZone", "", []types.Kind{types.F64},
		model.WithParam("Start", "-1"), model.WithParam("End", "1"))
	for in, want := range map[float64]float64{-3: -2, 0: 0, 0.9: 0, 4: 3} {
		out, _ := dz.eval(0, f64v(in))
		if out.F != want {
			t.Errorf("dz(%g) = %v, want %g", in, out, want)
		}
	}
	qz := newRig(t, "Quantizer", "", []types.Kind{types.F64}, model.WithParam("Interval", "0.5"))
	if out, _ := qz.eval(0, f64v(1.3)); out.F != 1.5 {
		t.Errorf("quantize(1.3) = %v", out)
	}
}

func TestEvalMergeHoldsLast(t *testing.T) {
	r := newRig(t, "Merge", "", []types.Kind{types.F64, types.F64})
	out, _ := r.eval(0, f64v(0), f64v(7))
	if out.F != 7 {
		t.Errorf("merge picks nonzero: %v", out)
	}
	out, _ = r.eval(1, f64v(0), f64v(0))
	if out.F != 7 {
		t.Errorf("merge holds last: %v", out)
	}
	out, _ = r.eval(2, f64v(3), f64v(9))
	if out.F != 3 {
		t.Errorf("merge prefers first nonzero: %v", out)
	}
}

// ---- discrete ----

func TestEvalUnitDelayAndMemory(t *testing.T) {
	for _, typ := range []model.ActorType{"UnitDelay", "Memory"} {
		r := newRig(t, typ, "", []types.Kind{types.I32}, model.WithParam("InitialCondition", "99"))
		out, _ := r.eval(0, i32(1))
		if out.I != 99 {
			t.Errorf("%s initial = %v", typ, out)
		}
		r.update(i32(5))
		out, _ = r.eval(1, i32(7))
		if out.I != 5 {
			t.Errorf("%s delayed = %v", typ, out)
		}
	}
}

func TestEvalDelayRing(t *testing.T) {
	r := newRig(t, "Delay", "", []types.Kind{types.I32},
		model.WithParam("DelayLength", "3"), model.WithParam("InitialCondition", "-1"))
	ins := []int64{10, 20, 30, 40, 50}
	wants := []int64{-1, -1, -1, 10, 20}
	for i := range ins {
		out, _ := r.eval(int64(i), i32(ins[i]))
		if out.I != wants[i] {
			t.Errorf("delay@%d = %v, want %d", i, out, wants[i])
		}
		r.update(i32(ins[i]))
	}
}

func TestEvalDiscreteIntegratorDerivativeFilter(t *testing.T) {
	ig := newRig(t, "DiscreteIntegrator", "", []types.Kind{types.F64},
		model.WithParam("Gain", "0.5"), model.WithParam("InitialCondition", "1"))
	out, _ := ig.eval(0, f64v(4))
	if out.F != 1 {
		t.Errorf("integrator initial = %v", out)
	}
	ig.update(f64v(4))
	out, _ = ig.eval(1, f64v(4))
	if out.F != 3 { // 1 + 0.5*4
		t.Errorf("integrator after update = %v", out)
	}
	dd := newRig(t, "DiscreteDerivative", "", []types.Kind{types.F64}, model.WithParam("Gain", "2"))
	out, _ = dd.eval(0, f64v(3))
	if out.F != 6 { // 2*(3-0)
		t.Errorf("derivative = %v", out)
	}
	dd.update(f64v(3))
	out, _ = dd.eval(1, f64v(5))
	if out.F != 4 { // 2*(5-3)
		t.Errorf("derivative after update = %v", out)
	}
	fl := newRig(t, "DiscreteFilter", "", []types.Kind{types.F64},
		model.WithParam("A", "0.5"), model.WithParam("B", "0.5"))
	out, _ = fl.eval(0, f64v(8))
	if out.F != 4 { // 0.5*0 + 0.5*8
		t.Errorf("filter = %v", out)
	}
	fl.update(f64v(8))
	out, _ = fl.eval(1, f64v(8))
	if out.F != 6 { // 0.5*4 + 0.5*8
		t.Errorf("filter step 2 = %v", out)
	}
}

func TestEvalZOHAndRateLimiter(t *testing.T) {
	z := newRig(t, "ZeroOrderHold", "", []types.Kind{types.F64}, model.WithParam("SampleSteps", "3"))
	wants := []float64{10, 10, 10, 40, 40}
	for i, in := range []float64{10, 20, 30, 40, 50} {
		out, _ := z.eval(int64(i), f64v(in))
		if out.F != wants[i] {
			t.Errorf("zoh@%d = %v, want %g", i, out, wants[i])
		}
	}
	rl := newRig(t, "RateLimiter", "", []types.Kind{types.F64},
		model.WithParam("RisingLimit", "1"), model.WithParam("FallingLimit", "2"))
	out, _ := rl.eval(0, f64v(10))
	if out.F != 1 { // rise limited from 0
		t.Errorf("rl rise = %v", out)
	}
	rl.update(f64v(10))
	out, _ = rl.eval(1, f64v(-10))
	if out.F != -1 { // fall limited from 1 by 2
		t.Errorf("rl fall = %v", out)
	}
}

// ---- routing & lookup ----

func TestEvalDataTypeConversion(t *testing.T) {
	r := newRig(t, "DataTypeConversion", "", []types.Kind{types.F64}, model.WithOutKind(types.I16))
	out, res := r.eval(0, f64v(3.75))
	if out.I != 3 || !res.PrecisionLoss {
		t.Errorf("3.75 -> i16 = %v %+v", out, res)
	}
	out, res = r.eval(0, f64v(70000))
	if !res.OutOfRange {
		t.Errorf("70000 -> i16 must flag out of range, got %v %+v", out, res)
	}
}

func TestEvalDataStoreReadWrite(t *testing.T) {
	// The rig's DS stub stores i32.
	w := newRig(t, "DataStoreWrite", "", []types.Kind{types.I32}, model.WithParam("Store", "q"))
	w.eval(0, i32(41))
	if w.ds["q"].I != 41 {
		t.Errorf("store = %v", w.ds["q"])
	}
	rd := newRig(t, "DataStoreRead", "", nil, model.WithParam("Store", "q"), model.WithOutKind(types.I32))
	rd.ds["q"] = i32(7)
	out, _ := rd.eval(0)
	if out.I != 7 {
		t.Errorf("read = %v", out)
	}
}

func TestEvalLookup1DInterpolation(t *testing.T) {
	r := newRig(t, "Lookup1D", "", []types.Kind{types.F64},
		model.WithParam("BreakPoints", "[0 10 20]"), model.WithParam("Table", "[0 100 400]"))
	cases := map[float64]float64{
		-5: 0, 0: 0, 5: 50, 10: 100, 15: 250, 20: 400, 99: 400,
	}
	for in, want := range cases {
		out, _ := r.eval(0, f64v(in))
		if out.F != want {
			t.Errorf("lut(%g) = %v, want %g", in, out, want)
		}
	}
}

func TestEvalLookupDirectClamping(t *testing.T) {
	r := newRig(t, "LookupDirect", "", []types.Kind{types.I32},
		model.WithParam("Table", "[10 20 30]"), model.WithOutKind(types.I32))
	out, res := r.eval(0, i32(2))
	if out.I != 20 || res.Any() {
		t.Errorf("lut[2] = %v %+v", out, res)
	}
	out, res = r.eval(0, i32(5))
	if out.I != 30 || !res.OutOfRange {
		t.Errorf("lut[5] = %v %+v (clamp + flag expected)", out, res)
	}
	out, res = r.eval(0, i32(0))
	if out.I != 10 || !res.OutOfRange {
		t.Errorf("lut[0] = %v %+v", out, res)
	}
}
