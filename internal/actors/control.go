package actors

import (
	"fmt"

	"accmos/internal/types"
)

// Control actors: branching and discontinuity blocks. These are the
// condition-coverage carriers (paper Algorithm 1 isBranchActor): Eval
// reports the executed branch index, Gen marks the condition bitmap inside
// each generated arm.

func init() {
	registerSwitch()
	registerMultiportSwitch()
	registerIf()
	registerMerge()
	registerRelay()
	registerSaturation()
	registerDeadZone()
	registerQuantizer()
}

// switchAux holds Switch parameters.
type switchAux struct{ threshold float64 }

func registerSwitch() {
	register(&Spec{
		Type: "Switch", MinIn: 3, MaxIn: 3, NumOut: 1,
		Operators:       []string{">=", ">", "~=0"},
		DefaultOperator: ">=",
		Branch:          true,
		BranchCount:     func(*Info) int { return 2 },
		OutKind: func(in *Info) types.Kind {
			return promote2(in.InKinds[0], in.InKinds[2])
		},
		OutWidth: func(in *Info) int {
			if in.InWidths[0] > in.InWidths[2] {
				return in.InWidths[0]
			}
			return in.InWidths[2]
		},
		Prepare: func(in *Info) error {
			if in.InWidths[1] > 1 {
				return fmt.Errorf("Switch control input must be scalar")
			}
			thr, err := paramF64(in, "Threshold", 0)
			if err != nil {
				return err
			}
			in.Aux = switchAux{thr}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(switchAux)
			ctrl := ec.In[1].AsFloat()
			var pass bool
			switch ec.Info.Operator {
			case ">=":
				pass = ctrl >= a.threshold
			case ">":
				pass = ctrl > a.threshold
			case "~=0":
				pass = ctrl != 0
			}
			k := ec.Info.OutKind()
			if pass {
				ec.Branch = 0
				ec.convertOutFrom(ec.In[0], k)
			} else {
				ec.Branch = 1
				ec.convertOutFrom(ec.In[2], k)
			}
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(switchAux)
			k := gc.Info.OutKind()
			ctrl := CastToF64(gc.In[1], gc.Info.InKinds[1])
			var cond string
			switch gc.Info.Operator {
			case ">=":
				cond = fmt.Sprintf("%s >= %s", ctrl, f64Lit(a.threshold))
			case ">":
				cond = fmt.Sprintf("%s > %s", ctrl, f64Lit(a.threshold))
			case "~=0":
				cond = fmt.Sprintf("%s != 0", ctrl)
			}
			gc.Block("if "+cond, func() {
				gc.CondCov(0)
				gc.ForEachOut(func(ix string) {
					gc.L("%s = %s", gc.OutElem(0, ix), castIn(gc, 0, ix, k))
				})
			})
			gc.Block("else", func() {
				gc.CondCov(1)
				gc.ForEachOut(func(ix string) {
					gc.L("%s = %s", gc.OutElem(0, ix), castIn(gc, 2, ix, k))
				})
			})
			return nil
		},
	})
}

// promote2 promotes two kinds, tolerating unresolved operands during the
// elaboration fixpoint (an Invalid side simply yields the other).
func promote2(a, b types.Kind) types.Kind {
	if a == types.Invalid {
		return b
	}
	if b == types.Invalid {
		return a
	}
	return types.Promote(a, b)
}

// convertOutFrom converts v to kind k and assigns output 0, accumulating
// flags (helper shared by the branching actors).
func (ec *EvalCtx) convertOutFrom(v types.Value, k types.Kind) {
	out, res := types.Convert(v, k)
	ec.Flags.OutOfRange = ec.Flags.OutOfRange || res.OutOfRange
	ec.Flags.PrecisionLoss = ec.Flags.PrecisionLoss || res.PrecisionLoss
	ec.Outs[0] = out
}

func registerMultiportSwitch() {
	register(&Spec{
		Type: "MultiportSwitch", MinIn: 2, MaxIn: 9, NumOut: 1,
		Branch:      true,
		BranchCount: func(in *Info) int { return in.NumIn() - 1 },
		OutKind: func(in *Info) types.Kind {
			k := types.Invalid
			for _, ik := range in.InKinds[1:] {
				k = promote2(k, ik)
			}
			return k
		},
		OutWidth: func(in *Info) int {
			w := 0
			for _, iw := range in.InWidths[1:] {
				if iw > w {
					w = iw
				}
			}
			return w
		},
		Prepare: func(in *Info) error {
			if in.InWidths[0] > 1 {
				return fmt.Errorf("MultiportSwitch control input must be scalar")
			}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			n := len(ec.In) - 1
			// Convert (not AsInt): out-of-range floats must saturate the
			// same way the generated cvtF2I helper does.
			iv, _ := types.Convert(ec.In[0], types.I64)
			idx := iv.I // 1-based data port index
			if idx < 1 {
				ec.Flags.OutOfRange = true
				idx = 1
			} else if idx > int64(n) {
				ec.Flags.OutOfRange = true
				idx = int64(n)
			}
			ec.Branch = int(idx - 1)
			ec.convertOutFrom(ec.In[idx], ec.Info.OutKind())
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			n := len(gc.In) - 1
			iv := gc.V("idx")
			gc.L("%s = %s", deferDecl(gc, iv, "int64"), Cast(gc.In[0], gc.Info.InKinds[0], types.I64))
			gc.Block(fmt.Sprintf("if %s < 1", iv), func() {
				gc.L("%s = 1", iv)
			})
			gc.Block(fmt.Sprintf("else if %s > %d", iv, n), func() {
				gc.L("%s = %d", iv, n)
			})
			gc.Block(fmt.Sprintf("switch %s", iv), func() {
				for p := 1; p <= n; p++ {
					gc.L("case %d:", p)
					gc.indent++
					gc.CondCov(p - 1)
					gc.ForEachOut(func(ix string) {
						gc.L("%s = %s", gc.OutElem(0, ix), castIn(gc, p, ix, k))
					})
					gc.indent--
				}
			})
			return nil
		},
	})
}

// deferDecl declares a variable and returns its name; small helper that
// keeps switch-style generation readable.
func deferDecl(gc *GenCtx, name, typ string) string {
	gc.L("var %s %s", name, typ)
	return name
}

func registerIf() {
	register(&Spec{
		Type: "If", MinIn: 3, MaxIn: 3, NumOut: 1,
		Branch:      true,
		BranchCount: func(*Info) int { return 2 },
		OutKind: func(in *Info) types.Kind {
			return promote2(in.InKinds[1], in.InKinds[2])
		},
		OutWidth: func(in *Info) int {
			if in.InWidths[1] > in.InWidths[2] {
				return in.InWidths[1]
			}
			return in.InWidths[2]
		},
		Prepare: func(in *Info) error {
			if in.InWidths[0] > 1 {
				return fmt.Errorf("If condition input must be scalar")
			}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			if ec.In[0].AsBool() {
				ec.Branch = 0
				ec.convertOutFrom(ec.In[1], k)
			} else {
				ec.Branch = 1
				ec.convertOutFrom(ec.In[2], k)
			}
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			gc.Block("if "+TruthExpr(gc.In[0], gc.Info.InKinds[0]), func() {
				gc.CondCov(0)
				gc.ForEachOut(func(ix string) {
					gc.L("%s = %s", gc.OutElem(0, ix), castIn(gc, 1, ix, k))
				})
			})
			gc.Block("else", func() {
				gc.CondCov(1)
				gc.ForEachOut(func(ix string) {
					gc.L("%s = %s", gc.OutElem(0, ix), castIn(gc, 2, ix, k))
				})
			})
			return nil
		},
	})
}

func registerMerge() {
	register(&Spec{
		Type: "Merge", MinIn: 2, MaxIn: 8, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(in *Info) types.Kind { return promoteInputs(in) },
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{types.Zero(in.OutKind())}
		},
		Eval: func(ec *EvalCtx) {
			// First non-zero input wins; when all inputs are zero the
			// previous output holds (a deterministic stand-in for
			// Simulink's conditional-execution Merge).
			k := ec.Info.OutKind()
			for _, v := range ec.In {
				if v.AsBool() {
					ec.convertOutFrom(v, k)
					ec.State.Vals[0] = ec.Out()
					return
				}
			}
			ec.SetOut(ec.State.Vals[0])
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			sv := gc.V("merge")
			gc.Prog.Global(fmt.Sprintf("var %s %s", sv, k.GoType()))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, GoZero(k)))
			cond := "if " + TruthExpr(gc.In[0], gc.Info.InKinds[0])
			gc.Block(cond, func() {
				gc.L("%s = %s", gc.Out[0], castIn(gc, 0, "", k))
				gc.L("%s = %s", sv, gc.Out[0])
			})
			for i := 1; i < len(gc.In); i++ {
				gc.Block("else if "+TruthExpr(gc.In[i], gc.Info.InKinds[i]), func() {
					gc.L("%s = %s", gc.Out[0], castIn(gc, i, "", k))
					gc.L("%s = %s", sv, gc.Out[0])
				})
			}
			gc.Block("else", func() {
				gc.L("%s = %s", gc.Out[0], sv)
			})
			return nil
		},
	})
}

// relayAux holds Relay parameters.
type relayAux struct{ onPoint, offPoint, onValue, offValue float64 }

func registerRelay() {
	register(&Spec{
		Type: "Relay", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly:  true,
		Branch:      true,
		BranchCount: func(*Info) int { return 2 },
		OutKind:     func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			on, err := paramF64(in, "OnPoint", 0.5)
			if err != nil {
				return err
			}
			off, err := paramF64(in, "OffPoint", -0.5)
			if err != nil {
				return err
			}
			onV, err := paramF64(in, "OnValue", 1)
			if err != nil {
				return err
			}
			offV, err := paramF64(in, "OffValue", 0)
			if err != nil {
				return err
			}
			if off > on {
				return fmt.Errorf("Relay OffPoint %g > OnPoint %g", off, on)
			}
			in.Aux = relayAux{on, off, onV, offV}
			return nil
		},
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{types.BoolVal(false)} // starts off
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(relayAux)
			u := ec.In[0].AsFloat()
			on := ec.State.Vals[0].B
			if u >= a.onPoint {
				on = true
			} else if u <= a.offPoint {
				on = false
			}
			ec.State.Vals[0] = types.BoolVal(on)
			if on {
				ec.Branch = 0
				ec.convertOutFrom(types.FloatVal(types.F64, a.onValue), ec.Info.OutKind())
			} else {
				ec.Branch = 1
				ec.convertOutFrom(types.FloatVal(types.F64, a.offValue), ec.Info.OutKind())
			}
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(relayAux)
			k := gc.Info.OutKind()
			sv := gc.V("relayOn")
			gc.Prog.Global(fmt.Sprintf("var %s bool", sv))
			gc.Prog.InitStmt(fmt.Sprintf("%s = false", sv))
			u := CastToF64(gc.In[0], gc.Info.InKinds[0])
			uv := gc.V("u")
			gc.L("%s := %s", uv, u)
			gc.Block(fmt.Sprintf("if %s >= %s", uv, f64Lit(a.onPoint)), func() {
				gc.L("%s = true", sv)
			})
			gc.Block(fmt.Sprintf("else if %s <= %s", uv, f64Lit(a.offPoint)), func() {
				gc.L("%s = false", sv)
			})
			gc.Block(fmt.Sprintf("if %s", sv), func() {
				gc.CondCov(0)
				gc.L("%s = %s", gc.Out[0], Cast(f64Lit(a.onValue), types.F64, k))
			})
			gc.Block("else", func() {
				gc.CondCov(1)
				gc.L("%s = %s", gc.Out[0], Cast(f64Lit(a.offValue), types.F64, k))
			})
			return nil
		},
	})
}

// satAux holds Saturation parameters in the output kind.
type satAux struct{ lo, hi types.Value }

func registerSaturation() {
	register(&Spec{
		Type: "Saturation", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly:  true,
		Branch:      true,
		BranchCount: func(*Info) int { return 3 },
		OutKind:     func(in *Info) types.Kind { return in.InKinds[0] },
		Prepare: func(in *Info) error {
			lo, err := paramValue(in, "Min", in.OutKind(), "-1")
			if err != nil {
				return err
			}
			hi, err := paramValue(in, "Max", in.OutKind(), "1")
			if err != nil {
				return err
			}
			if types.Compare(lo, hi) == 1 {
				return fmt.Errorf("Saturation Min %s > Max %s", lo, hi)
			}
			in.Aux = satAux{lo, hi}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(satAux)
			k := ec.Info.OutKind()
			v, cr := types.Convert(ec.In[0], k)
			ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
			switch {
			case types.Compare(v, a.lo) == -1:
				ec.Branch = 0
				ec.SetOut(a.lo)
			case types.Compare(v, a.hi) == 1:
				ec.Branch = 2
				ec.SetOut(a.hi)
			default:
				ec.Branch = 1
				ec.SetOut(v)
			}
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(satAux)
			k := gc.Info.OutKind()
			uv := gc.V("sat")
			gc.L("%s := %s", uv, castIn(gc, 0, "", k))
			gc.Block(fmt.Sprintf("if %s < %s", uv, a.lo.GoLiteral()), func() {
				gc.CondCov(0)
				gc.L("%s = %s", gc.Out[0], a.lo.GoLiteral())
			})
			gc.Block(fmt.Sprintf("else if %s > %s", uv, a.hi.GoLiteral()), func() {
				gc.CondCov(2)
				gc.L("%s = %s", gc.Out[0], a.hi.GoLiteral())
			})
			gc.Block("else", func() {
				gc.CondCov(1)
				gc.L("%s = %s", gc.Out[0], uv)
			})
			return nil
		},
	})
}

// dzAux holds DeadZone parameters in the output kind.
type dzAux struct{ start, end types.Value }

// DeadZoneBounds exposes a DeadZone actor's zone bounds for the code
// generator's diagnosis emission.
func DeadZoneBounds(in *Info) (start, end types.Value, ok bool) {
	a, ok := in.Aux.(dzAux)
	return a.start, a.end, ok
}

func registerDeadZone() {
	register(&Spec{
		Type: "DeadZone", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly:  true,
		Branch:      true,
		BranchCount: func(*Info) int { return 3 },
		OutKind:     func(in *Info) types.Kind { return in.InKinds[0] },
		Prepare: func(in *Info) error {
			start, err := paramValue(in, "Start", in.OutKind(), "-1")
			if err != nil {
				return err
			}
			end, err := paramValue(in, "End", in.OutKind(), "1")
			if err != nil {
				return err
			}
			if types.Compare(start, end) == 1 {
				return fmt.Errorf("DeadZone Start %s > End %s", start, end)
			}
			in.Aux = dzAux{start, end}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(dzAux)
			k := ec.Info.OutKind()
			v, cr := types.Convert(ec.In[0], k)
			ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
			switch {
			case types.Compare(v, a.start) == -1:
				ec.Branch = 0
				out, r := types.Sub(k, v, a.start)
				ec.Flags.Merge(r)
				ec.SetOut(out)
			case types.Compare(v, a.end) == 1:
				ec.Branch = 2
				out, r := types.Sub(k, v, a.end)
				ec.Flags.Merge(r)
				ec.SetOut(out)
			default:
				ec.Branch = 1
				ec.SetOut(types.Zero(k))
			}
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(dzAux)
			k := gc.Info.OutKind()
			uv := gc.V("dz")
			gc.L("%s := %s", uv, castIn(gc, 0, "", k))
			gc.Block(fmt.Sprintf("if %s < %s", uv, a.start.GoLiteral()), func() {
				gc.CondCov(0)
				gc.L("%s = %s", gc.Out[0], binExpr(k, uv, "-", a.start.GoLiteral()))
			})
			gc.Block(fmt.Sprintf("else if %s > %s", uv, a.end.GoLiteral()), func() {
				gc.CondCov(2)
				gc.L("%s = %s", gc.Out[0], binExpr(k, uv, "-", a.end.GoLiteral()))
			})
			gc.Block("else", func() {
				gc.CondCov(1)
				gc.L("%s = %s", gc.Out[0], GoZero(k))
			})
			return nil
		},
	})
}

func registerQuantizer() {
	register(&Spec{
		Type: "Quantizer", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(in *Info) types.Kind { return floatOrF64(in.InKinds[0]) },
		Prepare: func(in *Info) error {
			q, err := paramF64(in, "Interval", 0.5)
			if err != nil {
				return err
			}
			if q <= 0 {
				return fmt.Errorf("Quantizer Interval must be positive, got %g", q)
			}
			in.Aux = q
			return nil
		},
		Eval: func(ec *EvalCtx) {
			q := ec.Info.Aux.(float64)
			x := ec.In[0].AsFloat()
			v, res := types.MathUnary("round", types.F64, types.FloatVal(types.F64, x/q))
			ec.Flags.Merge(res)
			ec.convertOutFrom(types.FloatVal(types.F64, q*v.F), ec.Info.OutKind())
		},
		Gen: func(gc *GenCtx) error {
			q := gc.Info.Aux.(float64)
			gc.Prog.Import("math")
			x := CastToF64(gc.In[0], gc.Info.InKinds[0])
			expr := fmt.Sprintf("(%s * math.Round(%s / %s))", f64Lit(q), x, f64Lit(q))
			gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, gc.Info.OutKind()))
			return nil
		},
	})
}

// SaturationBounds exposes a prepared Saturation actor's [lo, hi] clamp
// values for analysis passes (the O2 width-inference facts). ok is false
// when the info is not an elaborated Saturation.
func SaturationBounds(in *Info) (lo, hi types.Value, ok bool) {
	a, isSat := in.Aux.(satAux)
	if !isSat {
		return types.Value{}, types.Value{}, false
	}
	return a.lo, a.hi, true
}
