package actors

import (
	"fmt"
	"math"

	"accmos/internal/types"
)

// Additional control-engineering actors beyond the paper's core set:
// a discrete PID controller, a sliding-window moving average, and the
// two-argument arctangent. Like every actor, the interpreter Eval and the
// generated code execute identical float64 operation sequences.

func init() {
	registerPID()
	registerMovingAverage()
	registerAtan2()
}

// pidAux holds PIDController gains.
type pidAux struct{ kp, ki, kd float64 }

func registerPID() {
	register(&Spec{
		Type: "PIDController", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			kp, err := paramF64(in, "Kp", 1)
			if err != nil {
				return err
			}
			ki, err := paramF64(in, "Ki", 0)
			if err != nil {
				return err
			}
			kd, err := paramF64(in, "Kd", 0)
			if err != nil {
				return err
			}
			in.Aux = pidAux{kp, ki, kd}
			return nil
		},
		Init: func(in *Info, st *State) {
			// Vals[0] = integral state, Vals[1] = previous error.
			st.Vals = []types.Value{types.Zero(types.F64), types.Zero(types.F64)}
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(pidAux)
			e := ec.In[0].AsFloat()
			i := ec.State.Vals[0].F
			prev := ec.State.Vals[1].F
			u := a.kp*e + i + a.kd*(e-prev)
			ec.SetOut(types.FloatVal(types.F64, u))
		},
		Update: func(ec *EvalCtx) {
			a := ec.Info.Aux.(pidAux)
			e := ec.In[0].AsFloat()
			ec.State.Vals[0] = types.FloatVal(types.F64, ec.State.Vals[0].F+a.ki*e)
			ec.State.Vals[1] = types.FloatVal(types.F64, e)
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(pidAux)
			iv, pv := gc.V("pidI"), gc.V("pidPrev")
			gc.Prog.Global(fmt.Sprintf("var %s float64", iv))
			gc.Prog.Global(fmt.Sprintf("var %s float64", pv))
			gc.Prog.InitStmt(fmt.Sprintf("%s = 0", iv))
			gc.Prog.InitStmt(fmt.Sprintf("%s = 0", pv))
			e := CastToF64(gc.In[0], gc.Info.InKinds[0])
			ev := gc.V("pidE")
			gc.L("%s := %s", ev, e)
			// Identical operation order to Eval: kp*e + I + kd*(e-prev).
			gc.L("%s = %s*%s + %s + %s*(%s-%s)",
				gc.Out[0], f64Lit(a.kp), ev, iv, f64Lit(a.kd), ev, pv)
			gc.Prog.UpdateStmt(fmt.Sprintf("{ e := %s; %s = %s + %s*e; %s = e }",
				e, iv, iv, f64Lit(a.ki), pv))
			return nil
		},
	})
}

func registerMovingAverage() {
	register(&Spec{
		Type: "MovingAverage", MinIn: 1, MaxIn: 1, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			n, err := paramI64(in, "Window", 8)
			if err != nil {
				return err
			}
			if n < 1 || n > 1<<16 {
				return fmt.Errorf("MovingAverage Window=%d out of range [1, 65536]", n)
			}
			in.Aux = n
			return nil
		},
		Init: func(in *Info, st *State) {
			n := in.Aux.(int64)
			st.Ring = make([]types.Value, n)
			for i := range st.Ring {
				st.Ring[i] = types.Zero(types.F64)
			}
			st.Pos = 0
			st.Vals = []types.Value{types.Zero(types.F64)} // running sum
		},
		Eval: func(ec *EvalCtx) {
			// Window includes the current sample: drop the oldest, add u.
			n := float64(len(ec.State.Ring))
			u := ec.In[0].AsFloat()
			sum := ec.State.Vals[0].F - ec.State.Ring[ec.State.Pos].F + u
			ec.SetOut(types.FloatVal(types.F64, sum/n))
		},
		Update: func(ec *EvalCtx) {
			u := ec.In[0].AsFloat()
			st := ec.State
			st.Vals[0] = types.FloatVal(types.F64, st.Vals[0].F-st.Ring[st.Pos].F+u)
			st.Ring[st.Pos] = types.FloatVal(types.F64, u)
			st.Pos = (st.Pos + 1) % len(st.Ring)
		},
		Gen: func(gc *GenCtx) error {
			n := gc.Info.Aux.(int64)
			buf, pos, sum := gc.V("maBuf"), gc.V("maPos"), gc.V("maSum")
			gc.Prog.Global(fmt.Sprintf("var %s [%d]float64", buf, n))
			gc.Prog.Global(fmt.Sprintf("var %s int", pos))
			gc.Prog.Global(fmt.Sprintf("var %s float64", sum))
			gc.Prog.InitStmt(fmt.Sprintf("for i := range %s { %s[i] = 0 }", buf, buf))
			gc.Prog.InitStmt(fmt.Sprintf("%s = 0", pos))
			gc.Prog.InitStmt(fmt.Sprintf("%s = 0", sum))
			u := CastToF64(gc.In[0], gc.Info.InKinds[0])
			gc.L("%s = (%s - %s[%s] + %s) / %d.0", gc.Out[0], sum, buf, pos, u, n)
			gc.Prog.UpdateStmt(fmt.Sprintf(
				"{ u := %s; %s = %s - %s[%s] + u; %s[%s] = u; %s = (%s + 1) %% %d }",
				u, sum, sum, buf, pos, buf, pos, pos, pos, n))
			return nil
		},
	})
}

func registerAtan2() {
	register(&Spec{
		Type: "Atan2", MinIn: 2, MaxIn: 2, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Eval: func(ec *EvalCtx) {
			y := ec.In[0].AsFloat()
			x := ec.In[1].AsFloat()
			ec.SetOut(types.FloatVal(types.F64, math.Atan2(y, x)))
		},
		Gen: func(gc *GenCtx) error {
			gc.Prog.Import("math")
			y := CastToF64(gc.In[0], gc.Info.InKinds[0])
			x := CastToF64(gc.In[1], gc.Info.InKinds[1])
			gc.L("%s = math.Atan2(%s, %s)", gc.Out[0], y, x)
			return nil
		},
	})
}
