package actors

import (
	"fmt"
	"strings"

	"accmos/internal/types"
)

// ProgramSink is implemented by the code generator; actor templates use it
// to register program-level artifacts beyond their inline statements.
type ProgramSink interface {
	// Global registers a package-level declaration (state variables).
	Global(decl string)
	// InitStmt registers a statement run by modelInit().
	InitStmt(stmt string)
	// UpdateStmt registers an end-of-step statement (state commit), run
	// after every actor's inline code within the same step.
	UpdateStmt(stmt string)
	// Import requests an import in the generated file ("math").
	Import(pkg string)
	// ExternalInput returns the Go expression carrying the test-case value
	// for the given Inport actor.
	ExternalInput(info *Info) string
	// BindOutput routes an Outport actor's input expression to the
	// program's outputs (result hashing + monitoring).
	BindOutput(info *Info, expr string)
	// DataStoreVar returns the Go variable name of the named data store.
	DataStoreVar(name string) string
	// DataStoreKind returns the declared kind of the named data store.
	DataStoreKind(name string) types.Kind
	// DiagSlot returns the diagnosis report slot for this actor and error
	// kind (a diagnose.Kind string), or -1 when that diagnosis is not
	// collected. Actor templates use it for checks that must live inside
	// state-update code (integrator and counter overflow).
	DiagSlot(info *Info, kind string) int
}

// GenCtx is passed to Spec.Gen. The framework pre-declares the output
// variables; Gen must assign every element of every output.
type GenCtx struct {
	Info *Info

	// In holds one Go expression per input port. Width-1 inputs are scalar
	// expressions; wider inputs are [N]T array variable names.
	In []string
	// Out holds the pre-declared output variable names.
	Out []string

	// Coverage instrumentation targets. Negative bases mean the metric is
	// not collected for this actor (or coverage is off).
	CoverageOn bool
	CondBase   int
	DecBase    int
	MCDCBase   int

	Prog ProgramSink

	lines  []string
	indent int
	errs   []error
}

// L emits one indented line of Go code.
func (gc *GenCtx) L(format string, args ...interface{}) {
	gc.lines = append(gc.lines,
		strings.Repeat("\t", gc.indent+1)+fmt.Sprintf(format, args...))
}

// Block emits "head {", runs fn one level deeper, then emits "}". A head
// starting with "else" fuses with the preceding block's closing brace
// ("} else ... {"), as Go's grammar requires.
func (gc *GenCtx) Block(head string, fn func()) {
	ind := strings.Repeat("\t", gc.indent+1)
	if strings.HasPrefix(head, "else") && len(gc.lines) > 0 && gc.lines[len(gc.lines)-1] == ind+"}" {
		gc.lines[len(gc.lines)-1] = ind + "} " + head + " {"
	} else {
		gc.L("%s {", head)
	}
	gc.indent++
	fn()
	gc.indent--
	gc.L("}")
}

// Errf records a generation error surfaced after Gen returns.
func (gc *GenCtx) Errf(format string, args ...interface{}) {
	gc.errs = append(gc.errs, fmt.Errorf(format, args...))
}

// Body returns the emitted code.
func (gc *GenCtx) Body() string {
	if len(gc.lines) == 0 {
		return ""
	}
	return strings.Join(gc.lines, "\n") + "\n"
}

// Err returns the first recorded error.
func (gc *GenCtx) Err() error {
	if len(gc.errs) > 0 {
		return gc.errs[0]
	}
	return nil
}

// V returns a per-actor unique identifier with the given suffix, for
// temporaries and state variables.
func (gc *GenCtx) V(suffix string) string {
	return fmt.Sprintf("a%d_%s", gc.Info.Index, suffix)
}

// InElem returns the element expression for input port p under loop index
// expression ix (e.g. "[i]"); scalar inputs broadcast.
func (gc *GenCtx) InElem(p int, ix string) string {
	if gc.Info.InWidths[p] > 1 {
		return gc.In[p] + ix
	}
	return gc.In[p]
}

// OutElem returns the element lvalue for output port p under index ix.
func (gc *GenCtx) OutElem(p int, ix string) string {
	if gc.Info.OutWidths[p] > 1 {
		return gc.Out[p] + ix
	}
	return gc.Out[p]
}

// ForEachOut runs fn once with ix "" for scalar output 0, or wraps fn in a
// loop over the output width with ix "[i]".
func (gc *GenCtx) ForEachOut(fn func(ix string)) {
	if gc.Info.OutWidth() <= 1 {
		fn("")
		return
	}
	gc.Block(fmt.Sprintf("for i := 0; i < %d; i++", gc.Info.OutWidth()), func() {
		fn("[i]")
	})
}

// CondCov emits a condition-coverage mark for branch index k if enabled.
func (gc *GenCtx) CondCov(k int) {
	if gc.CoverageOn && gc.CondBase >= 0 {
		gc.L("condBitmap[%d] = 1", gc.CondBase+k)
	}
}

// DecCov emits decision-coverage marks for the boolean expression held in
// variable b (records both outcomes over time).
func (gc *GenCtx) DecCov(b string) {
	if !gc.CoverageOn || gc.DecBase < 0 {
		return
	}
	gc.Block(fmt.Sprintf("if %s", b), func() {
		gc.L("decBitmap[%d] = 1", gc.DecBase)
	})
	gc.Block("else", func() {
		gc.L("decBitmap[%d] = 1", gc.DecBase+1)
	})
}

// Cast returns a Go expression converting expr from kind `from` to kind
// `to` with the exact semantics of types.Convert, so generated programs
// stay bit-identical with the interpreter. Float-to-integer conversions go
// through runtime helper functions (cvtF2I / cvtF2U) emitted in every
// generated program.
func Cast(expr string, from, to types.Kind) string {
	if from == to {
		return expr
	}
	switch {
	case to == types.Bool:
		if from == types.Bool {
			return expr
		}
		return fmt.Sprintf("(%s != 0)", expr)
	case from == types.Bool:
		return fmt.Sprintf("%s(b2i(%s))", to.GoType(), expr)
	case to.IsFloat() && from.IsFloat():
		if to == types.F32 {
			return fmt.Sprintf("float32(%s)", expr)
		}
		return fmt.Sprintf("float64(%s)", expr)
	case to.IsFloat():
		// integer -> float: always via float64 first, matching
		// Value.AsFloat followed by the float32 rounding in Convert.
		if to == types.F32 {
			return fmt.Sprintf("float32(float64(%s))", expr)
		}
		return fmt.Sprintf("float64(%s)", expr)
	case from.IsFloat():
		// float -> integer through the saturating+wrapping helper.
		if to.IsSigned() {
			return fmt.Sprintf("%s(cvtF2I(float64(%s)))", to.GoType(), expr)
		}
		return fmt.Sprintf("%s(cvtF2U(float64(%s)))", to.GoType(), expr)
	default:
		// integer <-> integer: Go conversion wraps exactly like WrapInt.
		return fmt.Sprintf("%s(%s)", to.GoType(), expr)
	}
}

// CastToF64 converts expr of kind k to a float64 expression.
func CastToF64(expr string, k types.Kind) string { return Cast(expr, k, types.F64) }

// GoZero returns the Go zero-value literal for kind k.
func GoZero(k types.Kind) string {
	if k == types.Bool {
		return "false"
	}
	return k.GoType() + "(0)"
}

// TruthExpr converts expr of kind k to a boolean Go expression
// (non-zero is true), matching Value.AsBool.
func TruthExpr(expr string, k types.Kind) string {
	if k == types.Bool {
		return expr
	}
	return fmt.Sprintf("(%s != 0)", expr)
}

// GoVarType returns the generated variable type for kind k and width w.
func GoVarType(k types.Kind, w int) string {
	if w > 1 {
		return fmt.Sprintf("[%d]%s", w, k.GoType())
	}
	return k.GoType()
}
