package actors

import (
	"fmt"
	"strings"

	"accmos/internal/types"
)

// Routing actors: signal composition, selection, type conversion, and the
// data-store family (the paper's case-study global variable mechanism).

func init() {
	registerMux()
	registerDemux()
	registerSelector()
	registerDataTypeConversion()
	registerDataStoreMemory()
	registerDataStoreRead()
	registerDataStoreWrite()
}

func registerMux() {
	register(&Spec{
		Type: "Mux", MinIn: 2, MaxIn: 16, NumOut: 1,
		OutKind: func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: func(in *Info) int {
			w := 0
			for _, iw := range in.InWidths {
				if iw == 0 {
					return 0
				}
				w += iw
			}
			return w
		},
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			out := types.Value{Kind: k, Elems: make([]types.Value, 0, ec.Info.OutWidth())}
			for _, v := range ec.In {
				for i := 0; i < v.Width(); i++ {
					e, cr := types.Convert(v.Elem(i), k)
					ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
					out.Elems = append(out.Elems, e)
				}
			}
			ec.SetOut(out)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			off := 0
			for p := range gc.In {
				w := gc.Info.InWidths[p]
				if w <= 1 {
					gc.L("%s[%d] = %s", gc.Out[0], off, castIn(gc, p, "", k))
					off++
					continue
				}
				for i := 0; i < w; i++ {
					gc.L("%s[%d] = %s", gc.Out[0], off,
						Cast(fmt.Sprintf("%s[%d]", gc.In[p], i), gc.Info.InKinds[p], k))
					off++
				}
			}
			return nil
		},
	})
}

func registerDemux() {
	register(&Spec{
		Type: "Demux", MinIn: 1, MaxIn: 1, VariableOut: true,
		OutKind: func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: func(in *Info) int {
			n := len(in.Actor.Outputs)
			if in.InWidths[0] == 0 || n == 0 {
				return 0
			}
			if in.InWidths[0]%n != 0 {
				return 1 // Prepare rejects this; keep resolution moving
			}
			return in.InWidths[0] / n
		},
		Prepare: func(in *Info) error {
			n := len(in.Actor.Outputs)
			if n == 0 {
				return fmt.Errorf("Demux needs at least one output")
			}
			if in.InWidths[0]%n != 0 {
				return fmt.Errorf("Demux input width %d not divisible by %d outputs", in.InWidths[0], n)
			}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			k := ec.Info.OutKind()
			n := len(ec.Outs)
			chunk := ec.In[0].Width() / n
			for o := 0; o < n; o++ {
				if chunk == 1 {
					ec.Outs[o] = ec.In[0].Elem(o)
				} else {
					v := types.Value{Kind: k, Elems: make([]types.Value, chunk)}
					for i := 0; i < chunk; i++ {
						v.Elems[i] = ec.In[0].Elem(o*chunk + i)
					}
					ec.Outs[o] = v
				}
			}
		},
		Gen: func(gc *GenCtx) error {
			n := len(gc.Out)
			chunk := gc.Info.InWidths[0] / n
			for o := 0; o < n; o++ {
				if chunk == 1 {
					gc.L("%s = %s[%d]", gc.Out[o], gc.In[0], o)
					continue
				}
				for i := 0; i < chunk; i++ {
					gc.L("%s[%d] = %s[%d]", gc.Out[o], i, gc.In[0], o*chunk+i)
				}
			}
			return nil
		},
	})
}

// selectorAux holds static selection indices (1-based), nil for dynamic.
type selectorAux struct{ indices []int }

func registerSelector() {
	register(&Spec{
		Type: "Selector", MinIn: 1, MaxIn: 2, NumOut: 1,
		OutKind: func(in *Info) types.Kind { return in.InKinds[0] },
		OutWidth: func(in *Info) int {
			if len(in.Actor.Inputs) == 2 {
				return 1 // dynamic single-element selection
			}
			s := in.Actor.Param("Indices", "")
			return len(strings.Fields(strings.Trim(s, "[]")))
		},
		Prepare: func(in *Info) error {
			if in.NumIn() == 2 {
				if in.InWidths[1] > 1 {
					return fmt.Errorf("Selector index input must be scalar")
				}
				in.Aux = selectorAux{}
				return nil
			}
			fs, err := paramF64Slice(in, "Indices")
			if err != nil {
				return err
			}
			idx := make([]int, len(fs))
			for i, f := range fs {
				idx[i] = int(f)
				if idx[i] < 1 || idx[i] > in.InWidths[0] {
					return fmt.Errorf("Selector index %d out of range [1,%d]", idx[i], in.InWidths[0])
				}
			}
			in.Aux = selectorAux{indices: idx}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			aux := ec.Info.Aux.(selectorAux)
			k := ec.Info.OutKind()
			if aux.indices == nil {
				// Dynamic: in1 is the 1-based element index; out-of-bounds
				// clamps and raises the array-out-of-bounds diagnosis.
				iv, _ := types.Convert(ec.In[1], types.I64)
				idx := iv.I
				w := int64(ec.In[0].Width())
				if idx < 1 {
					ec.Flags.OutOfRange = true
					idx = 1
				} else if idx > w {
					ec.Flags.OutOfRange = true
					idx = w
				}
				ec.SetOut(ec.In[0].Elem(int(idx - 1)))
				return
			}
			if len(aux.indices) == 1 {
				ec.SetOut(ec.In[0].Elem(aux.indices[0] - 1))
				return
			}
			out := types.Value{Kind: k, Elems: make([]types.Value, len(aux.indices))}
			for i, ix := range aux.indices {
				out.Elems[i] = ec.In[0].Elem(ix - 1)
			}
			ec.SetOut(out)
		},
		Gen: func(gc *GenCtx) error {
			aux := gc.Info.Aux.(selectorAux)
			if aux.indices == nil {
				w := gc.Info.InWidths[0]
				iv := gc.V("sel")
				gc.L("%s := %s", iv, Cast(gc.In[1], gc.Info.InKinds[1], types.I64))
				gc.Block(fmt.Sprintf("if %s < 1", iv), func() {
					gc.L("%s = 1", iv)
				})
				gc.Block(fmt.Sprintf("else if %s > %d", iv, w), func() {
					gc.L("%s = %d", iv, w)
				})
				gc.L("%s = %s[%s-1]", gc.Out[0], gc.In[0], iv)
				return nil
			}
			if len(aux.indices) == 1 {
				gc.L("%s = %s[%d]", gc.Out[0], gc.In[0], aux.indices[0]-1)
				return nil
			}
			for i, ix := range aux.indices {
				gc.L("%s[%d] = %s[%d]", gc.Out[0], i, gc.In[0], ix-1)
			}
			return nil
		},
	})
}

func registerDataTypeConversion() {
	register(&Spec{
		Type: "DataTypeConversion", MinIn: 1, MaxIn: 1, NumOut: 1,
		OutWidth: maxInWidth,
		// No OutKind default: the instance must state the target type,
		// which is the entire point of the block.
		Prepare: func(in *Info) error {
			if in.Actor.Param("OutDataType", "") == "" {
				return fmt.Errorf("DataTypeConversion requires OutDataType")
			}
			return nil
		},
		OutKind: func(in *Info) types.Kind { return types.Invalid },
		Eval: func(ec *EvalCtx) {
			v, cr := types.Convert(ec.In[0], ec.Info.OutKind())
			ec.Flags.OutOfRange = ec.Flags.OutOfRange || cr.OutOfRange
			ec.Flags.PrecisionLoss = ec.Flags.PrecisionLoss || cr.PrecisionLoss
			ec.SetOut(v)
		},
		Gen: func(gc *GenCtx) error {
			k := gc.Info.OutKind()
			gc.ForEachOut(func(ix string) {
				gc.L("%s = %s", gc.OutElem(0, ix), castIn(gc, 0, ix, k))
			})
			return nil
		},
	})
}

// storeName returns the data-store identifier an actor references.
func storeName(in *Info) string {
	return in.Actor.Param("Store", in.Actor.Name)
}

func registerDataStoreMemory() {
	register(&Spec{
		Type: "DataStoreMemory", MinIn: 0, MaxIn: 0, NumOut: 0,
		OutKind: nil,
		Prepare: func(in *Info) error {
			ks := in.Actor.Param("OutDataType", "double")
			k, err := types.ParseKind(ks)
			if err != nil {
				return err
			}
			iv, err := paramValue(in, "InitialValue", k, "0")
			if err != nil {
				return err
			}
			in.Aux = iv
			return nil
		},
		Eval: func(ec *EvalCtx) {},
		Gen:  func(gc *GenCtx) error { return nil }, // storage handled by the program
	})
}

// StoreKind returns the value kind of a DataStoreMemory actor.
func StoreKind(in *Info) types.Kind { return in.Aux.(types.Value).Kind }

// StoreInit returns the initial value of a DataStoreMemory actor.
func StoreInit(in *Info) types.Value { return in.Aux.(types.Value) }

// StoreName is the exported form of storeName for engines.
func StoreName(in *Info) string { return storeName(in) }

func registerDataStoreRead() {
	register(&Spec{
		Type: "DataStoreRead", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Eval: func(ec *EvalCtx) {
			ec.convertOut(ec.DS.DSRead(storeName(ec.Info)))
		},
		Gen: func(gc *GenCtx) error {
			name := storeName(gc.Info)
			sv := gc.Prog.DataStoreVar(name)
			gc.L("%s = %s", gc.Out[0], Cast(sv, gc.Prog.DataStoreKind(name), gc.Info.OutKind()))
			return nil
		},
	})
}

func registerDataStoreWrite() {
	register(&Spec{
		Type: "DataStoreWrite", MinIn: 1, MaxIn: 1, NumOut: 0,
		ScalarOnly: true,
		Eval: func(ec *EvalCtx) {
			ec.DS.DSWrite(storeName(ec.Info), ec.In[0])
		},
		Gen: func(gc *GenCtx) error {
			name := storeName(gc.Info)
			sv := gc.Prog.DataStoreVar(name)
			gc.L("%s = %s", sv, Cast(gc.In[0], gc.Info.InKinds[0], gc.Prog.DataStoreKind(name)))
			return nil
		},
	})
}
