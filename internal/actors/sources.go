package actors

import (
	"fmt"
	"math"

	"accmos/internal/types"
)

// Source actors: signal producers with no data inputs. Floating-point
// sources compute in float64 and convert to the output kind through the
// exact same path as types.Convert so the interpreter and generated code
// agree bit-for-bit.

func init() {
	registerConstant()
	registerInport()
	registerGround()
	registerStep()
	registerRamp()
	registerClock()
	registerSineWave()
	registerPulseGenerator()
	registerSignalGenerator()
	registerRandomNumber()
	registerCounter()
}

func registerConstant() {
	register(&Spec{
		Type: "Constant", MinIn: 0, MaxIn: 0, NumOut: 1,
		OutKind: func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			v, err := paramValue(in, "Value", in.OutKind(), "0")
			if err != nil {
				return err
			}
			if v.Width() != in.OutWidth() && in.OutWidth() > 1 {
				return fmt.Errorf("Constant value width %d != output width %d", v.Width(), in.OutWidth())
			}
			in.Aux = v
			return nil
		},
		Eval: func(ec *EvalCtx) { ec.SetOut(ec.Info.Aux.(types.Value)) },
		Gen: func(gc *GenCtx) error {
			v := gc.Info.Aux.(types.Value)
			gc.L("%s = %s", gc.Out[0], v.GoLiteral())
			if v.Kind.IsFloat() && needsMathImport(v) {
				gc.Prog.Import("math")
			}
			return nil
		},
	})
}

func needsMathImport(v types.Value) bool {
	check := func(f float64) bool { return math.IsNaN(f) || math.IsInf(f, 0) }
	if v.Elems != nil {
		for _, e := range v.Elems {
			if check(e.F) {
				return true
			}
		}
		return false
	}
	return check(v.F)
}

func registerInport() {
	register(&Spec{
		Type: "Inport", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Eval: func(ec *EvalCtx) {
			ec.convertOut(ec.ExternalIn)
		},
		Gen: func(gc *GenCtx) error {
			gc.L("%s = %s", gc.Out[0], gc.Prog.ExternalInput(gc.Info))
			return nil
		},
	})
}

func registerGround() {
	register(&Spec{
		Type: "Ground", MinIn: 0, MaxIn: 0, NumOut: 1,
		OutKind: func(*Info) types.Kind { return types.F64 },
		Eval: func(ec *EvalCtx) {
			ec.SetOut(types.ZeroVector(ec.Info.OutKind(), ec.Info.OutWidth()))
		},
		Gen: func(gc *GenCtx) error {
			gc.ForEachOut(func(ix string) {
				gc.L("%s = %s", gc.OutElem(0, ix), GoZero(gc.Info.OutKind()))
			})
			return nil
		},
	})
}

// stepAux holds Step parameters.
type stepAux struct {
	stepTime      int64
	before, after float64
}

func registerStep() {
	register(&Spec{
		Type: "Step", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			st, err := paramI64(in, "StepTime", 10)
			if err != nil {
				return err
			}
			before, err := paramF64(in, "Before", 0)
			if err != nil {
				return err
			}
			after, err := paramF64(in, "After", 1)
			if err != nil {
				return err
			}
			in.Aux = stepAux{st, before, after}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(stepAux)
			f := a.before
			if ec.Step >= a.stepTime {
				f = a.after
			}
			ec.convertOut(types.FloatVal(types.F64, f))
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(stepAux)
			k := gc.Info.OutKind()
			gc.Block(fmt.Sprintf("if step >= %d", a.stepTime), func() {
				gc.L("%s = %s", gc.Out[0], Cast(f64Lit(a.after), types.F64, k))
			})
			gc.Block("else", func() {
				gc.L("%s = %s", gc.Out[0], Cast(f64Lit(a.before), types.F64, k))
			})
			return nil
		},
	})
}

// rampAux holds Ramp parameters.
type rampAux struct{ start, slope float64 }

func registerRamp() {
	register(&Spec{
		Type: "Ramp", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			start, err := paramF64(in, "Start", 0)
			if err != nil {
				return err
			}
			slope, err := paramF64(in, "Slope", 1)
			if err != nil {
				return err
			}
			in.Aux = rampAux{start, slope}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(rampAux)
			f := a.start + a.slope*float64(ec.Step)
			ec.convertOut(types.FloatVal(types.F64, f))
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(rampAux)
			expr := fmt.Sprintf("(%s + %s*float64(step))", f64Lit(a.start), f64Lit(a.slope))
			gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, gc.Info.OutKind()))
			return nil
		},
	})
}

func registerClock() {
	register(&Spec{
		Type: "Clock", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			st, err := paramF64(in, "SampleTime", 1)
			if err != nil {
				return err
			}
			in.Aux = st
			return nil
		},
		Eval: func(ec *EvalCtx) {
			st := ec.Info.Aux.(float64)
			ec.convertOut(types.FloatVal(types.F64, float64(ec.Step)*st))
		},
		Gen: func(gc *GenCtx) error {
			st := gc.Info.Aux.(float64)
			expr := fmt.Sprintf("(float64(step) * %s)", f64Lit(st))
			gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, gc.Info.OutKind()))
			return nil
		},
	})
}

// sineAux holds SineWave parameters.
type sineAux struct{ amp, freq, phase, bias float64 }

func registerSineWave() {
	register(&Spec{
		Type: "SineWave", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			amp, err := paramF64(in, "Amplitude", 1)
			if err != nil {
				return err
			}
			freq, err := paramF64(in, "Frequency", 0.1)
			if err != nil {
				return err
			}
			phase, err := paramF64(in, "Phase", 0)
			if err != nil {
				return err
			}
			bias, err := paramF64(in, "Bias", 0)
			if err != nil {
				return err
			}
			in.Aux = sineAux{amp, freq, phase, bias}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(sineAux)
			f := a.amp*math.Sin(a.freq*float64(ec.Step)+a.phase) + a.bias
			ec.convertOut(types.FloatVal(types.F64, f))
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(sineAux)
			gc.Prog.Import("math")
			expr := fmt.Sprintf("(%s*math.Sin(%s*float64(step)+%s) + %s)",
				f64Lit(a.amp), f64Lit(a.freq), f64Lit(a.phase), f64Lit(a.bias))
			gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, gc.Info.OutKind()))
			return nil
		},
	})
}

// pulseAux holds PulseGenerator parameters.
type pulseAux struct {
	period, width int64
	amp           float64
}

func registerPulseGenerator() {
	register(&Spec{
		Type: "PulseGenerator", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			period, err := paramI64(in, "Period", 10)
			if err != nil {
				return err
			}
			if period <= 0 {
				return fmt.Errorf("PulseGenerator Period must be positive, got %d", period)
			}
			width, err := paramI64(in, "Width", (period+1)/2)
			if err != nil {
				return err
			}
			amp, err := paramF64(in, "Amplitude", 1)
			if err != nil {
				return err
			}
			in.Aux = pulseAux{period, width, amp}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(pulseAux)
			f := 0.0
			if ec.Step%a.period < a.width {
				f = a.amp
			}
			ec.convertOut(types.FloatVal(types.F64, f))
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(pulseAux)
			k := gc.Info.OutKind()
			gc.Block(fmt.Sprintf("if step%%%d < %d", a.period, a.width), func() {
				gc.L("%s = %s", gc.Out[0], Cast(f64Lit(a.amp), types.F64, k))
			})
			gc.Block("else", func() {
				gc.L("%s = %s", gc.Out[0], Cast("0.0", types.F64, k))
			})
			return nil
		},
	})
}

// sigGenAux holds SignalGenerator parameters.
type sigGenAux struct {
	period int64
	amp    float64
}

func registerSignalGenerator() {
	register(&Spec{
		Type: "SignalGenerator", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly:      true,
		Operators:       []string{"sine", "square", "sawtooth"},
		DefaultOperator: "sine",
		OutKind:         func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			period, err := paramI64(in, "Period", 100)
			if err != nil {
				return err
			}
			if period <= 0 {
				return fmt.Errorf("SignalGenerator Period must be positive, got %d", period)
			}
			amp, err := paramF64(in, "Amplitude", 1)
			if err != nil {
				return err
			}
			in.Aux = sigGenAux{period, amp}
			return nil
		},
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(sigGenAux)
			var f float64
			switch ec.Info.Operator {
			case "sine":
				f = a.amp * math.Sin(2*math.Pi*float64(ec.Step%a.period)/float64(a.period))
			case "square":
				if ec.Step%a.period < a.period/2 {
					f = a.amp
				} else {
					f = -a.amp
				}
			case "sawtooth":
				f = a.amp * float64(ec.Step%a.period) / float64(a.period)
			}
			ec.convertOut(types.FloatVal(types.F64, f))
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(sigGenAux)
			k := gc.Info.OutKind()
			switch gc.Info.Operator {
			case "sine":
				gc.Prog.Import("math")
				expr := fmt.Sprintf("(%s * math.Sin(2*math.Pi*float64(step%%%d)/float64(%d)))",
					f64Lit(a.amp), a.period, a.period)
				gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, k))
			case "square":
				gc.Block(fmt.Sprintf("if step%%%d < %d", a.period, a.period/2), func() {
					gc.L("%s = %s", gc.Out[0], Cast(f64Lit(a.amp), types.F64, k))
				})
				gc.Block("else", func() {
					gc.L("%s = %s", gc.Out[0], Cast(f64Lit(-a.amp), types.F64, k))
				})
			case "sawtooth":
				expr := fmt.Sprintf("(%s * float64(step%%%d) / float64(%d))", f64Lit(a.amp), a.period, a.period)
				gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, k))
			}
			return nil
		},
	})
}

// LCG constants shared between the interpreter and generated code. The
// generator is Knuth's MMIX linear congruential generator; the top 53 bits
// feed the float mantissa.
const (
	LCGMul = 6364136223846793005
	LCGInc = 1442695040888963407
)

// LCGNext advances an LCG state.
func LCGNext(s uint64) uint64 { return s*LCGMul + LCGInc }

// LCGFloat maps an LCG state to [0,1) exactly as the generated code does.
func LCGFloat(s uint64) float64 { return float64(s>>11) / 9007199254740992.0 }

// randAux holds RandomNumber parameters.
type randAux struct {
	seed     uint64
	min, max float64
}

func registerRandomNumber() {
	register(&Spec{
		Type: "RandomNumber", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		OutKind:    func(*Info) types.Kind { return types.F64 },
		Prepare: func(in *Info) error {
			seed, err := paramI64(in, "Seed", 1)
			if err != nil {
				return err
			}
			lo, err := paramF64(in, "Min", 0)
			if err != nil {
				return err
			}
			hi, err := paramF64(in, "Max", 1)
			if err != nil {
				return err
			}
			in.Aux = randAux{uint64(seed), lo, hi}
			return nil
		},
		Init: func(in *Info, st *State) { st.Seed = in.Aux.(randAux).seed },
		Eval: func(ec *EvalCtx) {
			a := ec.Info.Aux.(randAux)
			ec.State.Seed = LCGNext(ec.State.Seed)
			f := LCGFloat(ec.State.Seed)*(a.max-a.min) + a.min
			ec.convertOut(types.FloatVal(types.F64, f))
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(randAux)
			sv := gc.V("seed")
			gc.Prog.Global(fmt.Sprintf("var %s uint64", sv))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %d", sv, a.seed))
			gc.L("%s = %s*%d + %d", sv, sv, uint64(LCGMul), uint64(LCGInc))
			expr := fmt.Sprintf("(float64(%s>>11)/9007199254740992.0*((%s)-(%s)) + (%s))",
				sv, f64Lit(a.max), f64Lit(a.min), f64Lit(a.min))
			gc.L("%s = %s", gc.Out[0], Cast(expr, types.F64, gc.Info.OutKind()))
			return nil
		},
	})
}

// counterAux holds Counter parameters (values in the output kind).
type counterAux struct{ start, inc types.Value }

func registerCounter() {
	register(&Spec{
		Type: "Counter", MinIn: 0, MaxIn: 0, NumOut: 1,
		ScalarOnly: true,
		Stateful:   true,
		OutKind:    func(*Info) types.Kind { return types.I32 },
		Prepare: func(in *Info) error {
			start, err := paramValue(in, "Start", in.OutKind(), "0")
			if err != nil {
				return err
			}
			inc, err := paramValue(in, "Inc", in.OutKind(), "1")
			if err != nil {
				return err
			}
			in.Aux = counterAux{start, inc}
			return nil
		},
		Init: func(in *Info, st *State) {
			st.Vals = []types.Value{in.Aux.(counterAux).start}
		},
		Eval: func(ec *EvalCtx) { ec.SetOut(ec.State.Vals[0]) },
		Update: func(ec *EvalCtx) {
			a := ec.Info.Aux.(counterAux)
			next, res := types.Add(ec.Info.OutKind(), ec.State.Vals[0], a.inc)
			ec.Flags.Merge(res)
			ec.State.Vals[0] = next
		},
		Gen: func(gc *GenCtx) error {
			a := gc.Info.Aux.(counterAux)
			k := gc.Info.OutKind()
			sv := gc.V("count")
			gc.Prog.Global(fmt.Sprintf("var %s %s", sv, k.GoType()))
			gc.Prog.InitStmt(fmt.Sprintf("%s = %s", sv, a.start.GoLiteral()))
			gc.L("%s = %s", gc.Out[0], sv)
			slot := gc.Prog.DiagSlot(gc.Info, "WrapOnOverflow")
			switch {
			case k.IsInteger() && slot >= 0:
				stmts := append([]string{"ovf := false", fmt.Sprintf("var next %s", k.GoType())},
					CheckedAddStmts(k, "next", sv, a.inc.GoLiteral(), "ovf")...)
				stmts = append(stmts,
					fmt.Sprintf("if ovf { reportDiag(%d, step, \"\") }", slot),
					fmt.Sprintf("%s = next", sv))
				gc.Prog.UpdateStmt("{ " + joinStmts(stmts) + " }")
			case k.IsFloat():
				next := Cast(fmt.Sprintf("(float64(%s) + float64(%s))", sv, a.inc.GoLiteral()), types.F64, k)
				if nanSlot := gc.Prog.DiagSlot(gc.Info, "NaNOrInf"); nanSlot >= 0 {
					gc.Prog.Import("math")
					gc.Prog.UpdateStmt(fmt.Sprintf(
						"{ next := %s; if %s { reportDiag(%d, step, \"\") }; %s = next }",
						next, NaNOrInfCond("next", k), nanSlot, sv))
					break
				}
				gc.Prog.UpdateStmt(fmt.Sprintf("%s = %s", sv, next))
			default:
				gc.Prog.UpdateStmt(fmt.Sprintf("%s += %s", sv, a.inc.GoLiteral()))
			}
			return nil
		},
	})
}
