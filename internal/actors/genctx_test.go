package actors

import (
	"strings"
	"testing"

	"accmos/internal/types"
)

func TestCastEmission(t *testing.T) {
	cases := []struct {
		from, to types.Kind
		want     string
	}{
		{types.F64, types.F64, "x"},
		{types.I32, types.I64, "int64(x)"},
		{types.I64, types.I8, "int8(x)"},
		{types.U32, types.I32, "int32(x)"},
		{types.I32, types.F64, "float64(x)"},
		{types.I32, types.F32, "float32(float64(x))"}, // double-rounded like Convert
		{types.F64, types.F32, "float32(x)"},
		{types.F32, types.F64, "float64(x)"},
		{types.F64, types.I32, "int32(cvtF2I(float64(x)))"},
		{types.F32, types.U16, "uint16(cvtF2U(float64(x)))"},
		{types.I32, types.Bool, "(x != 0)"},
		{types.Bool, types.I32, "int32(b2i(x))"},
		{types.Bool, types.Bool, "x"},
	}
	for _, c := range cases {
		if got := Cast("x", c.from, c.to); got != c.want {
			t.Errorf("Cast(x, %v, %v) = %q, want %q", c.from, c.to, got, c.want)
		}
	}
}

func TestTruthExprAndZero(t *testing.T) {
	if got := TruthExpr("b", types.Bool); got != "b" {
		t.Errorf("TruthExpr bool = %q", got)
	}
	if got := TruthExpr("v", types.F64); got != "(v != 0)" {
		t.Errorf("TruthExpr f64 = %q", got)
	}
	if got := GoZero(types.Bool); got != "false" {
		t.Errorf("GoZero bool = %q", got)
	}
	if got := GoZero(types.I16); got != "int16(0)" {
		t.Errorf("GoZero i16 = %q", got)
	}
	if got := GoVarType(types.F32, 1); got != "float32" {
		t.Errorf("GoVarType scalar = %q", got)
	}
	if got := GoVarType(types.I8, 4); got != "[4]int8" {
		t.Errorf("GoVarType vector = %q", got)
	}
}

func TestGenCtxBlockElseFusion(t *testing.T) {
	gc := &GenCtx{}
	gc.Block("if x > 0", func() { gc.L("a()") })
	gc.Block("else if x < 0", func() { gc.L("b()") })
	gc.Block("else", func() { gc.L("c()") })
	body := gc.Body()
	if strings.Contains(body, "}\n\telse") {
		t.Errorf("else not fused with closing brace:\n%s", body)
	}
	for _, want := range []string{"} else if x < 0 {", "} else {"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
}

func TestGenCtxErrf(t *testing.T) {
	gc := &GenCtx{}
	if gc.Err() != nil {
		t.Error("fresh ctx has no error")
	}
	gc.Errf("boom %d", 7)
	gc.Errf("second")
	if gc.Err() == nil || !strings.Contains(gc.Err().Error(), "boom 7") {
		t.Errorf("Err() = %v", gc.Err())
	}
}

func TestCheckedStmtsShapes(t *testing.T) {
	add := CheckedAddStmts(types.I32, "r", "a", "b", "ovf")
	if len(add) != 2 || !strings.Contains(add[1], "^") {
		t.Errorf("signed add stmts = %v", add)
	}
	addU := CheckedAddStmts(types.U16, "r", "a", "b", "ovf")
	if !strings.Contains(addU[1], "r < a") {
		t.Errorf("unsigned add carry check = %v", addU)
	}
	addF := CheckedAddStmts(types.F64, "r", "a", "b", "ovf")
	if len(addF) != 1 {
		t.Errorf("float add needs no check: %v", addF)
	}
	mul := CheckedMulStmts(types.I16, "r", "a", "b", "ovf", "t")
	if len(mul) != 3 || !strings.Contains(mul[0], "int64(a) * int64(b)") {
		t.Errorf("i16 mul widening = %v", mul)
	}
	mul64 := CheckedMulStmts(types.I64, "r", "a", "b", "ovf", "t")
	if !strings.Contains(mul64[1], "r/a != b") {
		t.Errorf("i64 mul division check = %v", mul64)
	}
	div := CheckedDivStmts(types.I8, "r", "a", "b", "dbz", "ovf")
	if !strings.Contains(div[0], "== -128") {
		t.Errorf("i8 div MIN/-1 check = %v", div)
	}
	divF := CheckedDivStmts(types.F32, "r", "a", "b", "dbz", "")
	if !strings.Contains(divF[0], "dbz = true") {
		t.Errorf("float div zero flag = %v", divF)
	}
}
